package ego

import (
	"repro/internal/graph"
	"repro/internal/pairmap"
	"repro/internal/topk"
)

// SearchStats reports what a top-k search did, feeding Table II (exact
// computations) and the pruning ablations.
type SearchStats struct {
	Computed       int64 // vertices whose CB was computed exactly
	Pruned         int64 // vertices discarded by a bound without computation
	Reinserted     int64 // OptBSearch: vertices pushed back with a tighter bound
	BoundRefreshes int64 // OptBSearch: dynamic bound evaluations
	EdgesProcessed int64 // undirected edges processed once
	CreditOps      int64 // connector-credit map operations
}

// BaseBSearch is Algorithm 1: top-k ego-betweenness search under the static
// Lemma 2 bound. Vertices are visited in the total order ≺ (non-increasing
// static bound) and the search stops as soon as the k-th best exact score
// dominates the next static bound. Results are sorted by descending CB,
// ties by ascending vertex id.
//
// Faithful to the published algorithm, evidence is gathered by progressive
// oriented triangle enumeration: processing vertex u enumerates the
// triangles whose ≺-highest vertex is u, and each triangle triggers
// UptSMap-style scans of the incident neighborhoods to discover diamonds —
// the O(d_max)-per-triangle cost that Theorem 2 charges. Because every
// triangle containing u has its top vertex at or before u in the order, S_u
// is complete when u's own triangles have been enumerated, exactly the
// paper's invariant.
//
// One correction to the printed pseudocode (DESIGN.md §4): as published,
// UptSMap credits every diamond twice, once from each of its two triangles.
// The scans here apply a credit for pair (x, w) discovered from a triangle
// (·, connector, w) only when x > w, so across the diamond's two triangles
// exactly one credit fires.
func BaseBSearch(g graph.View, k int) ([]Result, SearchStats) {
	return BaseBSearchLabeled(g, k, nil)
}

// BaseBSearchLabeled is BaseBSearch on an internally relabeled graph whose
// external labels are ext (ext[v] = external id of internal vertex v, as in
// graph.Relabeled.Ext). The total order, the orientation, and every score
// tie-break run on external labels, and results carry external ids — so the
// output is bitwise identical to BaseBSearch on the unrelabeled graph. A nil
// ext means identity labels.
func BaseBSearchLabeled(g graph.View, k int, ext []int32) ([]Result, SearchStats) {
	var st SearchStats
	r := topk.NewBoundedLabeled(k, ext)
	order := graph.OrderOfLabeled(g, ext)
	o := graph.OrientLabeled(g, ext)
	maps := make([]*pairmap.Map, g.NumVertices())
	done := make([]bool, g.NumVertices())
	mapFor := func(v int32) *pairmap.Map {
		if maps[v] == nil {
			maps[v] = pairmap.NewWithCapacity(int(g.Degree(v)))
		}
		return maps[v]
	}
	// uptSMap scans N(p) for diamonds closed by triangle (p, a, b): every
	// x ∈ N(p) adjacent to exactly one of {a, b} forms a non-adjacent pair
	// with the other, connected through the adjacent one.
	uptSMap := func(p, a, b int32) {
		if done[p] {
			return
		}
		m := mapFor(p)
		for _, x := range g.Neighbors(p) {
			adjA := x == a || g.HasEdge(x, a)
			adjB := x == b || g.HasEdge(x, b)
			st.CreditOps++
			if adjA && !adjB && x > b {
				m.Add(pairmap.Key(x, b), 1)
			} else if adjB && !adjA && x > a {
				m.Add(pairmap.Key(x, a), 1)
			}
		}
	}
	marked := make([]bool, g.NumVertices())
	for idx, u := range order {
		ub := StaticUB(g.Degree(u))
		if min, ok := r.Min(); ok && min >= ub {
			st.Pruned = int64(len(order) - idx)
			break
		}
		// Enumerate the triangles owned by u (u is the ≺-top vertex).
		outU := o.OutNeighbors(u)
		for _, v := range outU {
			marked[v] = true
		}
		for _, v := range outU {
			for _, w := range o.OutNeighbors(v) {
				if !marked[w] {
					continue
				}
				// Triangle (u, v, w): markers for all three egos,
				// diamond scans for all three egos.
				if !done[w] {
					mapFor(w).SetMarker(pairmap.Key(u, v))
				}
				if !done[v] {
					mapFor(v).SetMarker(pairmap.Key(u, w))
				}
				mapFor(u).SetMarker(pairmap.Key(v, w))
				uptSMap(u, v, w)
				uptSMap(v, u, w)
				uptSMap(w, u, v)
				st.EdgesProcessed++ // one triangle enumerated
			}
		}
		for _, v := range outU {
			marked[v] = false
		}
		r.Add(u, ScoreEvidence(g.Degree(u), maps[u]))
		done[u] = true
		maps[u] = nil
		st.Computed++
	}
	return toResultsLabeled(r, ext), st
}

// OptBSearch is Algorithm 2: top-k search under the dynamic Lemma 3 bound.
// Candidates live in a max-heap keyed by their last-known bound. On pop the
// bound is re-evaluated against the evidence accumulated so far ("identified
// information"); if it has dropped by more than the gradient ratio θ ≥ 1 the
// vertex is pushed back (or pruned when it can no longer reach the top-k)
// instead of being computed. θ trades bound-refresh cost against exact
// computations; the paper's default is 1.05.
func OptBSearch(g graph.View, k int, theta float64) ([]Result, SearchStats) {
	return OptBSearchLabeled(g, k, theta, nil)
}

// OptBSearchLabeled is OptBSearch on an internally relabeled graph whose
// external labels are ext (see BaseBSearchLabeled). The candidate heap pops
// score ties by external label and results carry external ids, so the whole
// search trajectory — and the output — is bitwise identical to OptBSearch on
// the unrelabeled graph. A nil ext means identity labels.
func OptBSearchLabeled(g graph.View, k int, theta float64, ext []int32) ([]Result, SearchStats) {
	if theta < 1 {
		theta = 1
	}
	var st SearchStats
	e := newEvidence(g)
	r := topk.NewBoundedLabeled(k, ext)
	n := g.NumVertices()
	h := topk.NewMaxHeapLabeled(int(n), ext)
	for v := int32(0); v < n; v++ {
		h.Push(v, StaticUB(g.Degree(v)))
	}
	for h.Len() > 0 {
		top := h.Pop()
		v, tb := top.V, top.Score
		ub := ScoreEvidence(g.Degree(v), e.maps[v]) // Lemma 3 dynamic bound
		st.BoundRefreshes++
		if theta*ub < tb {
			// The bound dropped substantially: defer or prune.
			if min, ok := r.Min(); !ok || ub > min {
				h.Push(v, ub)
				st.Reinserted++
			} else {
				st.Pruned++
			}
			continue
		}
		if min, ok := r.Min(); ok && tb <= min {
			// tb is the largest bound left; nothing remaining can
			// enter the top-k.
			st.Pruned += int64(h.Len()) + 1
			break
		}
		e.ensureEgo(v)
		r.Add(v, e.finish(v))
		st.Computed++
	}
	st.EdgesProcessed = e.EdgesProcessed
	st.CreditOps = e.CreditOps
	return toResultsLabeled(r, ext), st
}

// TopKExact is the straightforward baseline: compute every vertex exactly
// and sort. It anchors correctness tests and the "compute all" reference
// point in the experiments.
func TopKExact(g graph.View, k int) []Result {
	cb := ComputeAll(g)
	r := topk.NewBounded(k)
	for v := int32(0); v < g.NumVertices(); v++ {
		r.Add(v, cb[v])
	}
	return toResults(r)
}

// TopKOf selects the k best of n scores read through at(v), sorted
// descending with ties by ascending id. The accessor form lets callers hold
// scores in any layout — the serving layer's chunked copy-on-write vector
// reads through it without flattening.
func TopKOf(n int32, at func(int32) float64, k int) []Result {
	r := topk.NewBounded(k)
	for v := int32(0); v < n; v++ {
		r.Add(v, at(v))
	}
	return toResults(r)
}

// TopKOfScores selects the k best vertices from a precomputed score vector
// (maintained scores, a frozen snapshot, …), sorted descending with ties by
// ascending id. Shared by Maintainer.TopK and the serving layer.
func TopKOfScores(scores []float64, k int) []Result {
	return TopKOf(int32(len(scores)), func(v int32) float64 { return scores[v] }, k)
}

func toResults(r *topk.Bounded) []Result {
	return toResultsLabeled(r, nil)
}

// toResultsLabeled extracts results translated to external ids. The Bounded
// must have been constructed with the same ext, so its tie-sort already ran
// on external labels and the translated list stays ordered.
func toResultsLabeled(r *topk.Bounded, ext []int32) []Result {
	items := r.Results()
	out := make([]Result, len(items))
	for i, it := range items {
		v := it.V
		if ext != nil {
			v = ext[v]
		}
		out[i] = Result{V: v, CB: it.Score}
	}
	return out
}

// Overlap returns |A ∩ B| / max(|A|, |B|) over the vertex sets of two result
// lists — the effectiveness metric of Fig. 11/12 (reported there as the
// overlap of top-k betweenness and top-k ego-betweenness).
func Overlap(a, b []Result) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[int32]struct{}, len(a))
	for _, x := range a {
		set[x.V] = struct{}{}
	}
	inter := 0
	for _, y := range b {
		if _, ok := set[y.V]; ok {
			inter++
		}
	}
	den := len(a)
	if len(b) > den {
		den = len(b)
	}
	return float64(inter) / float64(den)
}
