package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// WALVersion is the on-disk write-ahead-log format version.
const WALVersion = 1

// walMagic identifies a WAL file ("EBWL": Ego-BetWeenness Log).
var walMagic = [4]byte{'E', 'B', 'W', 'L'}

// walHeaderLen is the fixed file header: magic, version uint16, reserved
// uint16 (0).
const walHeaderLen = 8

// Batch is one durably logged edge-update batch, exactly as the client
// submitted it (including edges that will fail individually on apply — the
// application code skips those deterministically, so replay reproduces the
// live outcome).
type Batch struct {
	Seq    uint64
	Insert bool
	Edges  [][2]int32
}

// WAL record layout (little-endian), appended back to back after the file
// header:
//
//	payloadLen uint32 = 13 + 8*len(edges)
//	crc        uint32 (IEEE, over the payload)
//	payload:
//	  seq      uint64
//	  op       uint8 (1 insert, 0 delete)
//	  numEdges uint32
//	  edges    numEdges × (int32 u, int32 v)
const walRecordFixed = 13 // seq + op + numEdges

// walFileHeader returns the 8-byte WAL file header.
func walFileHeader() []byte {
	hdr := make([]byte, 0, walHeaderLen)
	hdr = append(hdr, walMagic[:]...)
	hdr = binary.LittleEndian.AppendUint16(hdr, WALVersion)
	return binary.LittleEndian.AppendUint16(hdr, 0)
}

// EncodeBatch serializes one WAL record.
func EncodeBatch(b Batch) []byte {
	payloadLen := walRecordFixed + 8*len(b.Edges)
	buf := make([]byte, 0, 8+payloadLen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	buf = binary.LittleEndian.AppendUint32(buf, 0) // crc backfilled below
	buf = binary.LittleEndian.AppendUint64(buf, b.Seq)
	op := byte(0)
	if b.Insert {
		op = 1
	}
	buf = append(buf, op)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Edges)))
	for _, e := range b.Edges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e[0]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e[1]))
	}
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(buf[8:]))
	return buf
}

// decodeRecord parses one record at the front of data. ok=false means data
// does not start with a complete, checksummed, self-consistent record — for
// an append-only log that marks the torn tail, whatever the underlying cause.
func decodeRecord(data []byte) (b Batch, size int, ok bool) {
	if len(data) < 8 {
		return Batch{}, 0, false
	}
	payloadLen := int(binary.LittleEndian.Uint32(data[0:4]))
	if payloadLen < walRecordFixed || len(data)-8 < payloadLen {
		return Batch{}, 0, false
	}
	payload := data[8 : 8+payloadLen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:8]) {
		return Batch{}, 0, false
	}
	numEdges := int(binary.LittleEndian.Uint32(payload[9:13]))
	if payloadLen != walRecordFixed+8*numEdges {
		return Batch{}, 0, false
	}
	b = Batch{
		Seq:    binary.LittleEndian.Uint64(payload[0:8]),
		Insert: payload[8] == 1,
	}
	if payload[8] > 1 {
		return Batch{}, 0, false
	}
	b.Edges = make([][2]int32, numEdges)
	for i := range b.Edges {
		off := walRecordFixed + 8*i
		b.Edges[i][0] = int32(binary.LittleEndian.Uint32(payload[off : off+4]))
		b.Edges[i][1] = int32(binary.LittleEndian.Uint32(payload[off+4 : off+8]))
	}
	return b, 8 + payloadLen, true
}

// DecodeWAL parses a whole WAL file image. It returns every complete valid
// record in order and the byte length of that valid prefix; valid <
// len(data) means the tail is torn or corrupt and should be truncated away
// (crash-recovery treats the first invalid record as the end of the log —
// in an append-only file nothing after a torn write can be trusted). A bad
// file header is a hard error: nothing in the file is usable.
func DecodeWAL(data []byte) (batches []Batch, valid int, err error) {
	if len(data) < walHeaderLen {
		return nil, 0, fmt.Errorf("store: wal truncated before header (%d bytes)", len(data))
	}
	if [4]byte(data[0:4]) != walMagic {
		return nil, 0, fmt.Errorf("store: bad wal magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != WALVersion {
		return nil, 0, fmt.Errorf("store: unsupported wal version %d (this build reads %d)", v, WALVersion)
	}
	if binary.LittleEndian.Uint16(data[6:8]) != 0 {
		return nil, 0, fmt.Errorf("store: corrupt wal header (reserved field)")
	}
	valid = walHeaderLen
	for valid < len(data) {
		b, size, ok := decodeRecord(data[valid:])
		if !ok {
			break
		}
		batches = append(batches, b)
		valid += size
	}
	return batches, valid, nil
}
