package bench

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/brandes"
	"repro/internal/dataset"
	"repro/internal/dynamic"
	"repro/internal/ego"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Fig6Row is one (dataset, k) point: search runtimes for both algorithms.
type Fig6Row struct {
	Dataset  string
	K        int
	BaseTime time.Duration
	OptTime  time.Duration
}

// Fig6 compares BaseBSearch and OptBSearch runtimes across k (paper
// Fig. 6). The paper's claim: OptBSearch wins on every dataset and k,
// by roughly 6-23x.
func Fig6(cfg Config) []Fig6Row {
	fmt.Fprintf(cfg.Out, "%-12s %8s %12s %12s %8s\n", "Dataset", "k", "BaseBSearch", "OptBSearch", "ratio")
	var rows []Fig6Row
	for _, name := range cfg.Datasets {
		g := dataset.MustLoad(name)
		for _, k := range cfg.Ks {
			row := Fig6Row{Dataset: name, K: k}
			row.BaseTime = timeIt(func() { ego.BaseBSearch(g, k) })
			row.OptTime = timeIt(func() { ego.OptBSearch(g, k, 1.05) })
			rows = append(rows, row)
			fmt.Fprintf(cfg.Out, "%-12s %8d %12s %12s %8.1fx\n", name, k,
				ms(row.BaseTime), ms(row.OptTime),
				float64(row.BaseTime)/float64(row.OptTime))
		}
	}
	return rows
}

// Fig7Row is one (dataset, theta) runtime point.
type Fig7Row struct {
	Dataset string
	Theta   float64
	Time    time.Duration
}

// Fig7 sweeps OptBSearch's gradient ratio θ (paper Fig. 7). The paper's
// claim: runtime varies only slightly with θ, mildly favoring 1.05.
func Fig7(cfg Config) []Fig7Row {
	fmt.Fprintf(cfg.Out, "%-12s %8s %12s\n", "Dataset", "theta", "OptBSearch")
	var rows []Fig7Row
	k := 500
	if len(cfg.Ks) > 0 {
		k = cfg.Ks[len(cfg.Ks)-1]
	}
	for _, name := range cfg.ThetaDS {
		g := dataset.MustLoad(name)
		for _, theta := range cfg.Thetas {
			d := timeIt(func() { ego.OptBSearch(g, k, theta) })
			rows = append(rows, Fig7Row{Dataset: name, Theta: theta, Time: d})
			fmt.Fprintf(cfg.Out, "%-12s %8.2f %12s\n", name, theta, ms(d))
		}
	}
	return rows
}

// Fig8Row reports average per-update latencies on one dataset, plus the
// two maintainers' memory footprints and the lazy recompute rate (the
// mechanism behind the paper's lazy-update win; see EXPERIMENTS.md for why
// wall-clock ordering differs at analog scale).
type Fig8Row struct {
	Dataset        string
	LocalInsert    time.Duration
	LazyInsert     time.Duration
	LocalDelete    time.Duration
	LazyDelete     time.Duration
	LocalMemBytes  int64
	LazyMemBytes   int64
	LazyRecomputes float64 // recomputed vertices per update
}

// Fig8 measures the maintenance algorithms on random edge updates (paper
// Fig. 8): for each dataset, cfg.Updates random existing edges are deleted
// and re-inserted (Local* maintains all vertices, Lazy* maintains the
// top-k). The paper's claims: lazy beats local, insert and delete cost
// about the same, and everything stays far below a second per update.
func Fig8(cfg Config) []Fig8Row {
	fmt.Fprintf(cfg.Out, "%-12s %14s %14s %14s %14s %10s %10s %9s\n",
		"Dataset", "LocalInsert", "LazyInsert", "LocalDelete", "LazyDelete",
		"local-mem", "lazy-mem", "recomp/op")
	var rows []Fig8Row
	for _, name := range cfg.Datasets {
		g := dataset.MustLoad(name)
		edges := pickEdges(g, cfg.Updates, 0xF16)
		row := Fig8Row{Dataset: name}

		m := dynamic.NewMaintainer(g)
		row.LocalDelete = perOp(len(edges), func() {
			for _, e := range edges {
				must(m.DeleteEdge(e[0], e[1]))
			}
		})
		row.LocalInsert = perOp(len(edges), func() {
			for _, e := range edges {
				must(m.InsertEdge(e[0], e[1]))
			}
		})
		row.LocalMemBytes = m.MemoryFootprint()

		lt := dynamic.NewLazyTopK(g, cfg.UpdateK)
		row.LazyDelete = perOp(len(edges), func() {
			for _, e := range edges {
				must(lt.DeleteEdge(e[0], e[1]))
			}
		})
		row.LazyInsert = perOp(len(edges), func() {
			for _, e := range edges {
				must(lt.InsertEdge(e[0], e[1]))
			}
		})
		row.LazyMemBytes = lt.MemoryFootprint()
		row.LazyRecomputes = float64(lt.Stats.Recomputed) / float64(2*len(edges))
		rows = append(rows, row)
		fmt.Fprintf(cfg.Out, "%-12s %14s %14s %14s %14s %9.1fMB %9.2fMB %9.2f\n", name,
			perOpStr(row.LocalInsert), perOpStr(row.LazyInsert),
			perOpStr(row.LocalDelete), perOpStr(row.LazyDelete),
			float64(row.LocalMemBytes)/1e6, float64(row.LazyMemBytes)/1e6,
			row.LazyRecomputes)
	}
	return rows
}

func perOp(n int, fn func()) time.Duration {
	if n == 0 {
		return 0
	}
	return timeIt(fn) / time.Duration(n)
}

func perOpStr(d time.Duration) string {
	return fmt.Sprintf("%.3fms/op", float64(d.Microseconds())/1000)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// pickEdges samples n distinct existing edges uniformly.
func pickEdges(g *graph.Graph, n int, seed uint64) [][2]int32 {
	all := g.Edges()
	rng := rand.New(rand.NewPCG(seed, 1))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// Fig9Row is one scalability point: runtime on a sampled subgraph.
type Fig9Row struct {
	Mode     string // "edges" or "vertices"
	Fraction float64
	BaseTime time.Duration
	OptTime  time.Duration
}

// Fig9 evaluates scalability on 20%-100% random edge and vertex samples of
// the scale dataset (paper Fig. 9). The paper's claim: OptBSearch grows
// smoothly with m and n while BaseBSearch climbs much more sharply.
func Fig9(cfg Config) []Fig9Row {
	g := dataset.MustLoad(cfg.ScaleDS)
	k := 500
	fmt.Fprintf(cfg.Out, "dataset=%s k=%d\n%-9s %6s %12s %12s\n",
		cfg.ScaleDS, k, "Mode", "frac", "BaseBSearch", "OptBSearch")
	var rows []Fig9Row
	for _, mode := range []string{"edges", "vertices"} {
		for _, frac := range cfg.Fractions {
			var sub *graph.Graph
			if mode == "edges" {
				sub = graph.SampleEdges(g, frac, 0xF19)
			} else {
				sub, _ = graph.SampleVertices(g, frac, 0xF19)
			}
			row := Fig9Row{Mode: mode, Fraction: frac}
			row.BaseTime = timeIt(func() { ego.BaseBSearch(sub, k) })
			row.OptTime = timeIt(func() { ego.OptBSearch(sub, k, 1.05) })
			rows = append(rows, row)
			fmt.Fprintf(cfg.Out, "%-9s %5.0f%% %12s %12s\n",
				mode, frac*100, ms(row.BaseTime), ms(row.OptTime))
		}
	}
	return rows
}

// Fig10Row is one (strategy, threads) parallel measurement.
type Fig10Row struct {
	Strategy     parallel.Strategy
	Threads      int
	Time         time.Duration
	Speedup      float64 // wall-clock vs the sequential baseline
	SpeedupBound float64 // machine-independent balance bound at t threads
}

// Fig10 evaluates VertexPEBW and EdgePEBW across thread counts (paper
// Fig. 10). The paper's claims: EdgePEBW is faster than VertexPEBW at every
// t, with speedups approaching 16 at t=16 (on 16 physical cores).
// Wall-clock speedup saturates at the host's CPU count — this container has
// one — so the table also reports the machine-independent speedup bound
// from the work-partition balance (DESIGN.md §5).
func Fig10(cfg Config) []Fig10Row {
	g := dataset.MustLoad(cfg.ScaleDS)
	baseline := timeIt(func() { ego.ComputeAll(g) })
	fmt.Fprintf(cfg.Out, "dataset=%s sequential=%s\n%-12s %8s %12s %9s %12s\n",
		cfg.ScaleDS, ms(baseline), "Algorithm", "threads", "time", "speedup", "balance-bnd")
	var rows []Fig10Row
	for _, strat := range []parallel.Strategy{parallel.VertexPEBW, parallel.EdgePEBW} {
		for _, t := range cfg.Threads {
			_, pst := parallel.ComputeAll(g, t, strat)
			row := Fig10Row{
				Strategy:     strat,
				Threads:      t,
				Time:         pst.Elapsed,
				Speedup:      float64(baseline) / float64(pst.Elapsed),
				SpeedupBound: pst.SpeedupBound(t),
			}
			rows = append(rows, row)
			fmt.Fprintf(cfg.Out, "%-12s %8d %12s %9.2fx %11.2fx\n",
				strat, t, ms(row.Time), row.Speedup, row.SpeedupBound)
		}
	}
	return rows
}

// Fig11Row is one effectiveness point: runtimes and top-k overlap.
type Fig11Row struct {
	Dataset string
	K       int
	BWTime  time.Duration
	EBWTime time.Duration
	Overlap float64
}

// Fig11 compares TopBW (parallel Brandes) against TopEBW (OptBSearch) on
// runtime and result overlap (paper Fig. 11). The paper's claims: TopEBW is
// at least two orders of magnitude faster, and the top-k overlap is
// generally above 60%.
func Fig11(cfg Config) []Fig11Row {
	fmt.Fprintf(cfg.Out, "%-12s %8s %12s %12s %9s %9s\n",
		"Dataset", "k", "TopBW", "TopEBW", "ratio", "overlap")
	var rows []Fig11Row
	for _, name := range cfg.EffDS {
		g := dataset.MustLoad(name)
		// Brandes' cost is k-independent: compute once per dataset.
		var bw []ego.Result
		bwMax := 0
		for _, k := range cfg.EffKs {
			if k > bwMax {
				bwMax = k
			}
		}
		bwTime := timeIt(func() { bw = brandes.TopK(g, bwMax, 0) })
		for _, k := range cfg.EffKs {
			var ebw []ego.Result
			ebwTime := timeIt(func() { ebw, _ = ego.OptBSearch(g, k, 1.05) })
			row := Fig11Row{
				Dataset: name, K: k, BWTime: bwTime, EBWTime: ebwTime,
				Overlap: ego.Overlap(bw[:min(k, len(bw))], ebw),
			}
			rows = append(rows, row)
			fmt.Fprintf(cfg.Out, "%-12s %8d %12s %12s %8.0fx %8.0f%%\n",
				name, k, ms(row.BWTime), ms(row.EBWTime),
				float64(row.BWTime)/float64(max(int64(1), int64(row.EBWTime))), row.Overlap*100)
		}
	}
	return rows
}

// Fig12 runs the Fig11 protocol on the DB and IR case-study graphs with the
// paper's k ∈ {10..250} grid (paper Fig. 12).
func Fig12(cfg Config) []Fig11Row {
	sub := cfg
	sub.EffDS = []string{dataset.DB, dataset.IR}
	sub.EffKs = cfg.CaseKs
	return Fig11(sub)
}
