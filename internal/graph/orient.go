package graph

// Oriented is the directed graph G+ obtained by orienting every undirected
// edge (u, v) from u to v when u ≺ v (Section II). Every undirected edge has
// exactly one owner — its ≺-smaller endpoint — which gives the parallel
// algorithms and the once-per-edge processing discipline a partition of E
// with no coordination. Out-neighbor lists are sorted by vertex identifier.
type Oriented struct {
	offsets []int64
	out     []int32
	rank    []int32 // rank in ≺; lower = earlier = higher degree
	n       int32
}

// Orient builds G+ from any view of g.
func Orient(g View) *Oriented {
	return orientWithRank(g, RankOf(g))
}

// OrientLabeled builds G+ under the OrderOfLabeled total order, so the
// orientation of a relabeled graph matches the unrelabeled one edge for
// edge (modulo the id translation). A nil ext is identical to Orient.
func OrientLabeled(g View, ext []int32) *Oriented {
	return orientWithRank(g, RankOfLabeled(g, ext))
}

func orientWithRank(g View, rank []int32) *Oriented {
	n := g.NumVertices()
	offsets := make([]int64, n+1)
	for v := int32(0); v < n; v++ {
		cnt := int64(0)
		for _, w := range g.Neighbors(v) {
			if rank[v] < rank[w] {
				cnt++
			}
		}
		offsets[v+1] = offsets[v] + cnt
	}
	out := make([]int32, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for v := int32(0); v < n; v++ {
		for _, w := range g.Neighbors(v) {
			if rank[v] < rank[w] {
				out[cursor[v]] = w
				cursor[v]++
			}
		}
	}
	return &Oriented{offsets: offsets, out: out, rank: rank, n: n}
}

// NumVertices returns the number of vertices.
func (o *Oriented) NumVertices() int32 { return o.n }

// OutNeighbors returns N+(v): the neighbors of v that come after v in ≺.
// The slice is sorted by identifier and must not be modified.
func (o *Oriented) OutNeighbors(v int32) []int32 {
	return o.out[o.offsets[v]:o.offsets[v+1]]
}

// OutDegree returns |N+(v)|.
func (o *Oriented) OutDegree(v int32) int32 {
	return int32(o.offsets[v+1] - o.offsets[v])
}

// Rank returns the ≺-rank of v (0 = first in the total order).
func (o *Oriented) Rank(v int32) int32 { return o.rank[v] }

// Edges returns the oriented edge list: each undirected edge appears exactly
// once as (owner, other) with owner ≺ other. The order groups edges by owner.
func (o *Oriented) Edges() [][2]int32 {
	edges := make([][2]int32, 0, len(o.out))
	for v := int32(0); v < o.n; v++ {
		for _, w := range o.OutNeighbors(v) {
			edges = append(edges, [2]int32{v, w})
		}
	}
	return edges
}

// MaxOutDegree returns the largest out-degree, a proxy for the arboricity
// bound used in the complexity analysis (for any graph the degeneracy-style
// orientation keeps out-degrees near O(α)).
func (o *Oriented) MaxOutDegree() int32 {
	var mx int32
	for v := int32(0); v < o.n; v++ {
		if d := o.OutDegree(v); d > mx {
			mx = d
		}
	}
	return mx
}
