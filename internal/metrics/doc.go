// Package metrics provides the agreement measures used by the effectiveness
// analysis (Section VI-B): top-k overlap, Jaccard similarity, and Spearman
// rank correlation between centrality score vectors. The paper reports only
// the overlap; Jaccard and Spearman extend the analysis to full-ranking
// agreement, which the EXPERIMENTS.md effectiveness section uses.
package metrics
