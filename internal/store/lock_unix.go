//go:build unix

package store

import (
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive flock(2) on f. flock locks
// are tied to the open file description: any process death releases them,
// and a second open of the same file — even within one process — conflicts.
func flockExclusive(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
