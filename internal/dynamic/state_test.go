package dynamic

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// script drives m (a *Maintainer or *LazyTopK via the closures) through a
// deterministic pseudo-random toggle sequence.
func runScript(t *testing.T, rng *rand.Rand, n int32, steps int,
	hasEdge func(u, v int32) bool, insert, del func(u, v int32) error) {
	t.Helper()
	for step := 0; step < steps; step++ {
		u, v := rng.Int32N(n), rng.Int32N(n)
		if u == v {
			continue
		}
		var err error
		if hasEdge(u, v) {
			err = del(u, v)
		} else {
			err = insert(u, v)
		}
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestLocalStateRoundTrip checks the tentpole property of the state codec at
// this layer: export → import reproduces a maintainer that is behaviorally
// identical to the original, not just at the moment of the snapshot but under
// continued updates (the recovery path replays a WAL tail on top of the
// imported state). Scores and evidence maps are compared exactly — the
// tables travel verbatim, so there is no tolerance to hide behind.
func TestLocalStateRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0x57A7E))
		g := gen.Random(seed, 26)
		m := NewMaintainer(g)
		n := g.NumVertices()
		runScript(t, rng, n, 40, m.Graph().HasEdge, m.InsertEdge, m.DeleteEdge)

		frozen := m.Graph().Freeze(1)
		st := m.ExportState()
		// Deep-copy the state the way the binary codec does, so the restored
		// maintainer shares nothing with the original.
		cp := &LocalState{
			Scores:     append([]float64(nil), st.Scores...),
			TableSizes: append([]uint32(nil), st.TableSizes...),
			Keys:       append([]uint64(nil), st.Keys...),
			Vals:       append([]int32(nil), st.Vals...),
			Dirty:      append([]int32(nil), st.Dirty...),
		}
		m2, err := NewMaintainerFromState(frozen, cp)
		if err != nil {
			t.Fatalf("seed %d: import: %v", seed, err)
		}

		// Same continued script on both; scores must stay bit-identical and
		// match recomputation (the restored evidence must be logically right,
		// not merely score-compatible).
		rng1 := rand.New(rand.NewPCG(seed, 0xBEEF))
		rng2 := rand.New(rand.NewPCG(seed, 0xBEEF))
		runScript(t, rng1, n, 40, m.Graph().HasEdge, m.InsertEdge, m.DeleteEdge)
		runScript(t, rng2, n, 40, m2.Graph().HasEdge, m2.InsertEdge, m2.DeleteEdge)
		for v := int32(0); v < n; v++ {
			if m.CB(v) != m2.CB(v) {
				t.Fatalf("seed %d: CB(%d) diverged: %v vs %v", seed, v, m.CB(v), m2.CB(v))
			}
		}
		assertMatchesScratch(t, m2, "post-import script")

		// The dirty-score bookkeeping must round-trip too: both maintainers
		// drain the same dirty set (order included — it is append order).
		d1, d2 := m.TakeDirtyScores(), m2.TakeDirtyScores()
		if len(d1) != len(d2) {
			t.Fatalf("seed %d: dirty drain %d vs %d vertices", seed, len(d1), len(d2))
		}
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Fatalf("seed %d: dirty drain differs at %d: %d vs %d", seed, i, d1[i], d2[i])
			}
		}
	}
}

// TestLazyStateRoundTrip is the ModeLazy analogue: export → import must
// reproduce identical Results() under continued updates, with the candidate
// heap rebuilt canonically from the cache.
func TestLazyStateRoundTrip(t *testing.T) {
	for seed := uint64(20); seed < 28; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0x1A2))
		g := gen.Random(seed, 26)
		k := 1 + int(seed%5)
		lt := NewLazyTopK(g, k)
		n := g.NumVertices()
		runScript(t, rng, n, 40, lt.Graph().HasEdge, lt.InsertEdge, lt.DeleteEdge)

		frozen := lt.Graph().Freeze(1)
		st := lt.ExportState()
		cp := &LazyState{
			Cached:  append([]float64(nil), st.Cached...),
			Stale:   append([]bool(nil), st.Stale...),
			Members: append([]int32(nil), st.Members...),
		}
		lt2, err := NewLazyTopKFromState(frozen, k, cp)
		if err != nil {
			t.Fatalf("seed %d: import: %v", seed, err)
		}

		rng1 := rand.New(rand.NewPCG(seed, 0xF00))
		rng2 := rand.New(rand.NewPCG(seed, 0xF00))
		runScript(t, rng1, n, 40, lt.Graph().HasEdge, lt.InsertEdge, lt.DeleteEdge)
		runScript(t, rng2, n, 40, lt2.Graph().HasEdge, lt2.InsertEdge, lt2.DeleteEdge)
		r1, r2 := lt.Results(), lt2.Results()
		if len(r1) != len(r2) {
			t.Fatalf("seed %d: result sizes %d vs %d", seed, len(r1), len(r2))
		}
		for i := range r1 {
			if r1[i].V != r2[i].V || math.Abs(r1[i].CB-r2[i].CB) > eps {
				t.Fatalf("seed %d: result %d diverged: %+v vs %+v", seed, i, r1[i], r2[i])
			}
		}
	}
}

// TestStateImportRejects enumerates the structural defects the import
// constructors must refuse — each one is a fallback-to-rebuild trigger in
// the recovery path, so it must be an error, never a panic or a silently
// wrong maintainer.
func TestStateImportRejects(t *testing.T) {
	g, err := graph.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	base := func() *LocalState { return NewMaintainer(g).ExportState() }

	localCases := map[string]func(st *LocalState){
		"short scores":       func(st *LocalState) { st.Scores = st.Scores[:2] },
		"short tables":       func(st *LocalState) { st.TableSizes = st.TableSizes[:2] },
		"keys/vals differ":   func(st *LocalState) { st.Vals = st.Vals[:len(st.Vals)-1] },
		"NaN score":          func(st *LocalState) { st.Scores[1] = math.NaN() },
		"table overrun":      func(st *LocalState) { st.TableSizes[0] += 8 },
		"trailing slots":     func(st *LocalState) { st.Keys = append(st.Keys, 0); st.Vals = append(st.Vals, 0) },
		"dirty out of range": func(st *LocalState) { st.Dirty = append(st.Dirty, 99) },
		"bad table size":     func(st *LocalState) { st.TableSizes[0] = 3 },
	}
	for name, corrupt := range localCases {
		st := base()
		// Detach from the live maintainer before corrupting.
		st.Scores = append([]float64(nil), st.Scores...)
		st.TableSizes = append([]uint32(nil), st.TableSizes...)
		st.Keys = append([]uint64(nil), st.Keys...)
		st.Vals = append([]int32(nil), st.Vals...)
		corrupt(st)
		if _, err := NewMaintainerFromState(g, st); err == nil {
			t.Errorf("local %s: accepted", name)
		}
	}

	lazyBase := func() *LazyState {
		st := NewLazyTopK(g, 2).ExportState()
		st.Cached = append([]float64(nil), st.Cached...)
		st.Stale = append([]bool(nil), st.Stale...)
		return st
	}
	lazyCases := map[string]func(st *LazyState){
		"short cache":         func(st *LazyState) { st.Cached = st.Cached[:1] },
		"short flags":         func(st *LazyState) { st.Stale = st.Stale[:1] },
		"Inf cache":           func(st *LazyState) { st.Cached[0] = math.Inf(1) },
		"member out of range": func(st *LazyState) { st.Members[0] = -1 },
		"member duplicated":   func(st *LazyState) { st.Members[1] = st.Members[0] },
		"too many members":    func(st *LazyState) { st.Members = []int32{0, 1, 2} },
	}
	for name, corrupt := range lazyCases {
		st := lazyBase()
		corrupt(st)
		if _, err := NewLazyTopKFromState(g, 2, st); err == nil {
			t.Errorf("lazy %s: accepted", name)
		}
	}
}
