// Command egobwd is the ego-betweenness query daemon: it serves the
// internal/server HTTP/JSON API, holding any number of named graphs in
// memory and answering top-k / per-vertex queries lock-free against
// immutable snapshots while edge updates stream in.
//
// Usage:
//
//	egobwd                            # serve on :8080, empty registry
//	egobwd -addr :9090                # another port
//	egobwd -preload dblp,ir           # pre-register dataset analogs
//	egobwd -preload dblp -mode lazy -k 50
//	egobwd -build-workers 8           # snapshot-build worker budget
//	egobwd -data-dir /var/lib/egobwd  # durable graphs: WAL + snapshots,
//	                                  # recovered on restart
//	egobwd -data-dir d -checkpoint-every 64 -checkpoint-bytes 16777216
//	egobwd -write-queue 256 -flush-interval 2ms
//	                                  # write pipeline: admission-queue
//	                                  # capacity and group-commit window
//	egobwd -compact-depth 4 -compact-dirty 0.1
//	                                  # overlay compaction policy: flatten
//	                                  # the snapshot's delta chain sooner
//	egobwd -relabel                   # degree-ordered internal relabeling:
//	                                  # recompute queries run on a hub-first
//	                                  # CSR, same external ids and results
//	egobwd -window 6h                 # temporal serving: graphs default to a
//	                                  # 6-hour sliding window; edges older
//	                                  # than that are expired through WAL-
//	                                  # recorded delete batches
//	egobwd -follow http://leader:8080 # read-only follower: bootstrap every
//	                                  # graph from the leader's checkpoints,
//	                                  # tail its WAL stream, serve reads at
//	                                  # bounded staleness; writes answer 403
//	                                  # with the leader's address
//
// Walkthrough (see README.md for the full API):
//
//	curl -X POST localhost:8080/graphs \
//	    -d '{"name":"demo","generator":{"model":"ba","n":5000,"mper":4,"seed":7}}'
//	curl 'localhost:8080/graphs/demo/topk?k=10'
//	curl -X POST localhost:8080/graphs/demo/edges -d '{"edges":[[1,4999]]}'
//	curl 'localhost:8080/graphs/demo/stats'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/ship"
)

// config collects the daemon's flags.
type config struct {
	addr         string
	preload      string
	mode         string
	k            int
	buildWorkers int
	dataDir      string
	ckptEvery    int
	ckptBytes    int64
	writeQueue   int
	flushEvery   time.Duration
	compactDepth int
	compactDirty float64
	relabel      bool
	window       time.Duration
	follow       string
	followEvery  time.Duration
	approxEps    float64
	approxConf   float64
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.preload, "preload", "", "comma-separated dataset names to register at startup (see egobw -dataset)")
	flag.StringVar(&cfg.mode, "mode", server.ModeLocal, "maintenance mode for preloaded graphs: local or lazy")
	flag.IntVar(&cfg.k, "k", 10, "maintained k for lazy-mode preloads")
	flag.IntVar(&cfg.buildWorkers, "build-workers", 0, "worker budget for snapshot builds (initial score computation and per-batch CSR export); 0 = GOMAXPROCS")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "directory for durable graphs (per-graph WAL + binary CSR snapshots); graphs recover on restart. Empty = in-memory only")
	flag.IntVar(&cfg.ckptEvery, "checkpoint-every", 0, "fold the WAL into a fresh snapshot after this many update batches (0 = default 16)")
	flag.Int64Var(&cfg.ckptBytes, "checkpoint-bytes", 0, "also checkpoint once a graph's WAL exceeds this many bytes (0 = default 4 MiB)")
	flag.IntVar(&cfg.writeQueue, "write-queue", 0, "per-graph write admission-queue capacity; a full queue answers 429 (0 = default 128)")
	flag.DurationVar(&cfg.flushEvery, "flush-interval", 0, "group-commit coalescing window: how long the writer waits for more batches after the first arrives (0 = commit whatever is queued immediately)")
	flag.IntVar(&cfg.compactDepth, "compact-depth", 0, "compact a graph's overlay chain into a fresh base CSR once it is this many layers deep (0 = default 8; 1 compacts after every drain)")
	flag.Float64Var(&cfg.compactDirty, "compact-dirty", 0, "also compact once the chain's dirty vertices reach this fraction of n (0 = default 0.25)")
	flag.BoolVar(&cfg.relabel, "relabel", false, "serve recompute top-k queries (algo=opt/base) on a degree-ordered relabeled CSR; external ids and results are unchanged")
	flag.DurationVar(&cfg.window, "window", 0, "default sliding window for created graphs (e.g. 6h): edges older than the window are expired through WAL-recorded delete batches; 0 = unwindowed. Per-graph \"window\" on create overrides")
	flag.StringVar(&cfg.follow, "follow", "", "run as a read-only follower of the leader at this base URL (e.g. http://leader:8080): graphs ship over from its checkpoints and WAL stream; local writes are rejected")
	flag.DurationVar(&cfg.followEvery, "follow-interval", 200*time.Millisecond, "how often a follower polls the leader's WAL stream (bounds read staleness)")
	flag.Float64Var(&cfg.approxEps, "approx-eps", 0, "default normalized error target for algo=approx top-k queries that leave eps unset, in (0, 1) (0 = package default 0.05)")
	flag.Float64Var(&cfg.approxConf, "approx-conf", 0, "default confidence for algo=approx top-k queries that leave conf unset, in (0, 1) (0 = package default 0.95)")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "egobwd:", err)
		os.Exit(1)
	}
}

// setup builds the server from cfg: registry options, crash recovery from
// the data directory, dataset preloads. Split from run so tests can exercise
// the boot path without serving.
func setup(cfg config) (*server.Server, error) {
	if cfg.follow != "" && cfg.preload != "" {
		return nil, fmt.Errorf("-preload is a write and a follower is read-only: drop -preload or preload on the leader at %s", cfg.follow)
	}
	if cfg.window < 0 {
		return nil, fmt.Errorf("-window must be non-negative, got %v", cfg.window)
	}
	if cfg.window > 0 && cfg.window < cfg.flushEvery {
		return nil, fmt.Errorf("-window %v is shorter than -flush-interval %v: edges would expire before the drain that admitted them", cfg.window, cfg.flushEvery)
	}
	regOpts := []server.RegistryOption{
		server.WithBuildWorkers(cfg.buildWorkers),
		server.WithWriteQueue(cfg.writeQueue),
		server.WithFlushInterval(cfg.flushEvery),
		server.WithCompactPolicy(cfg.compactDepth, cfg.compactDirty),
		server.WithRelabeling(cfg.relabel),
		server.WithWindow(cfg.window),
		server.WithApproxDefaults(cfg.approxEps, cfg.approxConf),
	}
	if cfg.dataDir != "" {
		regOpts = append(regOpts,
			server.WithDataDir(cfg.dataDir),
			server.WithCheckpointPolicy(cfg.ckptEvery, cfg.ckptBytes))
	}
	if cfg.follow != "" {
		regOpts = append(regOpts, server.WithLeader(cfg.follow))
	}
	srv := server.New(server.WithRegistryOptions(regOpts...))

	if cfg.dataDir != "" {
		infos, err := srv.Registry().Recover()
		if err != nil {
			// A per-graph failure poisons only that graph: log it, serve the
			// rest. Anything else (unreadable directory, foreign files) is
			// still fatal — the data dir itself is suspect.
			var recErr *server.RecoverError
			if !errors.As(err, &recErr) {
				return nil, fmt.Errorf("recover %s: %w", cfg.dataDir, err)
			}
			for _, f := range recErr.Failures {
				log.Printf("egobwd: recover %q failed, skipping: %v", f.Graph, f.Err)
			}
		}
		for _, info := range infos {
			line := fmt.Sprintf("egobwd: recovered %q mode=%s n=%d m=%d wal_seq=%d snapshot_seq=%d recover_path=%s",
				info.Name, info.Mode, info.N, info.M, info.WALSeq, info.SnapshotSeq, info.RecoverPath)
			if info.RecoverReason != "" {
				line += " reason=" + strconv.Quote(info.RecoverReason)
			}
			log.Print(line)
		}
	}

	for _, name := range strings.Split(cfg.preload, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		g, err := dataset.Load(name)
		if err != nil {
			return nil, fmt.Errorf("preload %q: %w", name, err)
		}
		info, err := srv.Registry().Add(name, g, cfg.mode, cfg.k)
		if errors.Is(err, server.ErrDuplicate) {
			// Already recovered from the data dir — the durable copy (with
			// its applied updates) wins over a fresh preload.
			log.Printf("egobwd: preload %q skipped: recovered from %s", name, cfg.dataDir)
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("preload %q: %w", name, err)
		}
		log.Printf("egobwd: preloaded %q mode=%s n=%d m=%d", info.Name, info.Mode, info.N, info.M)
	}
	return srv, nil
}

func run(cfg config) error {
	srv, err := setup(cfg)
	if err != nil {
		return err
	}
	// Release WAL handles and store locks on the way out; a crash skips
	// this, which is fine — recovery repairs the WAL tail and the kernel
	// drops the locks with the process.
	defer srv.Registry().Close()

	handler := srv.Handler()
	if cfg.dataDir != "" {
		// Durable nodes ship: expose checkpoints and the WAL stream so
		// followers (of this node, or of a follower of it) can sync.
		mux := http.NewServeMux()
		mux.Handle("/ship/", ship.NewHandler(srv.Registry()))
		mux.Handle("/", srv.Handler())
		handler = mux
	}
	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if cfg.follow != "" {
		fol := ship.NewFollower(ship.NewClient(cfg.follow, nil), srv.Registry(),
			ship.WithInterval(cfg.followEvery), ship.WithLogf(log.Printf))
		go fol.Run(ctx)
		log.Printf("egobwd: following %s every %s", cfg.follow, cfg.followEvery)
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("egobwd: serving on %s", cfg.addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Printf("egobwd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
