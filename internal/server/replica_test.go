package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ship"
	"repro/internal/store"
)

// The replication suite (DESIGN.md §13): a follower registry fed through
// the real shipping stack — ship handler over httptest, ship client,
// ship.Follower — must answer maintained-state queries bitwise identically
// to the leader at the same applied WAL sequence, survive leader restarts,
// reject local writes, and report staleness. Runs under -race in CI.

// shipPair wires a follower registry to a leader registry through an HTTP
// shipping server, returning the pieces tests drive directly.
type shipPair struct {
	leader  *Registry
	ts      *httptest.Server
	client  *ship.Client
	folReg  *Registry
	fol     *ship.Follower
	folDir  string // "" for a memory-only follower
	leadDir string
}

func newShipPair(t *testing.T, leadDir, folDir string) *shipPair {
	t.Helper()
	p := &shipPair{leadDir: leadDir, folDir: folDir}
	p.leader = durableRegistry(leadDir)
	t.Cleanup(func() { p.leader.Close() })
	p.ts = httptest.NewServer(ship.NewHandler(p.leader))
	t.Cleanup(p.ts.Close)
	p.client = ship.NewClient(p.ts.URL, nil)
	folOpts := []RegistryOption{WithLeader(p.ts.URL), WithBuildWorkers(2), WithCheckpointPolicy(3, 1<<20)}
	if folDir != "" {
		folOpts = append(folOpts, WithDataDir(folDir))
	}
	p.folReg = NewRegistry(folOpts...)
	t.Cleanup(func() { p.folReg.Close() })
	p.fol = ship.NewFollower(p.client, p.folReg)
	return p
}

// restartLeader simulates a leader crash: the old registry and shipping
// endpoint go away, a fresh registry recovers from the same directory and a
// fresh endpoint serves it, and the client is repointed.
func (p *shipPair) restartLeader(t *testing.T) {
	t.Helper()
	p.ts.Close()
	if err := p.leader.Close(); err != nil {
		t.Fatalf("close leader: %v", err)
	}
	p.leader = durableRegistry(p.leadDir)
	t.Cleanup(func() { p.leader.Close() })
	if _, err := p.leader.Recover(); err != nil {
		t.Fatalf("recover leader: %v", err)
	}
	p.ts = httptest.NewServer(ship.NewHandler(p.leader))
	t.Cleanup(p.ts.Close)
	p.client.SetBase(p.ts.URL)
}

// syncUntilCaughtUp drives SyncOnce until the follower's applied sequence
// reaches the leader's durable sequence for name.
func (p *shipPair) syncUntilCaughtUp(t *testing.T, name string) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(20 * time.Second)
	var lastErr error
	for {
		lastErr = p.fol.SyncOnce(ctx)
		st, err := p.leader.ShipStatus(name)
		if err != nil {
			t.Fatalf("ShipStatus: %v", err)
		}
		if seq, ok := p.folReg.ReplicaSeq(name); ok && seq >= st.Seq {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up on %q (last sync error: %v)", name, lastErr)
		}
		time.Sleep(time.Millisecond)
	}
}

// assertBitwiseEqual requires the maintained-state read paths — the ones
// that are deterministic replays of applyLocked, not recomputes over
// possibly differently-shaped overlays — to agree exactly between leader
// and follower.
func assertBitwiseEqual(t *testing.T, leader, follower *Registry, name, mode string, n int32) {
	t.Helper()
	algo := AlgoScores
	if mode == ModeLazy {
		algo = AlgoLazy
	}
	for _, k := range []int{1, 5, 10} {
		lr, err := leader.TopK(name, k, algo, 0)
		if err != nil {
			t.Fatalf("leader TopK(k=%d,%s): %v", k, algo, err)
		}
		fr, err := follower.TopK(name, k, algo, 0)
		if err != nil {
			t.Fatalf("follower TopK(k=%d,%s): %v", k, algo, err)
		}
		if !reflect.DeepEqual(lr.Results, fr.Results) {
			t.Fatalf("k=%d algo=%s diverged\nleader   %v\nfollower %v", k, algo, lr.Results, fr.Results)
		}
	}
	if mode != ModeLocal {
		return
	}
	for v := int32(0); v < n; v++ {
		lv, err := leader.EgoBetweenness(name, v)
		if err != nil {
			t.Fatalf("leader vertex %d: %v", v, err)
		}
		fv, err := follower.EgoBetweenness(name, v)
		if err != nil {
			t.Fatalf("follower vertex %d: %v", v, err)
		}
		if lv.CB != fv.CB {
			t.Fatalf("vertex %d: leader cb %v, follower cb %v", v, lv.CB, fv.CB)
		}
	}
}

// TestReplicaEquivalence is the core property: stream randomized batches
// into the leader, sync the follower at interleaved points, and require
// bitwise-equal maintained state at every common applied sequence — plus a
// clean-recompute check at the end (both modes, durable and memory-only
// followers).
func TestReplicaEquivalence(t *testing.T) {
	const nBatches = 24
	for _, mode := range []string{ModeLocal, ModeLazy} {
		for _, durable := range []bool{true, false} {
			t.Run(fmt.Sprintf("%s/durable=%v", mode, durable), func(t *testing.T) {
				rng := rand.New(rand.NewPCG(9, 0x5417))
				base := gen.BarabasiAlbert(70, 3, 9)
				script := makeScript(rng, graph.DynFromGraph(base), nBatches)
				folDir := ""
				if durable {
					folDir = t.TempDir()
				}
				p := newShipPair(t, t.TempDir(), folDir)
				if _, err := p.leader.Add("g", base, mode, 10); err != nil {
					t.Fatal(err)
				}

				for i, sb := range script {
					if _, err := p.leader.ApplyEdges("g", sb.edges, sb.insert); err != nil {
						t.Fatal(err)
					}
					if i%6 != 5 {
						continue
					}
					p.syncUntilCaughtUp(t, "g")
					assertBitwiseEqual(t, p.leader, p.folReg, "g", mode, base.NumVertices())
				}
				p.syncUntilCaughtUp(t, "g")
				assertBitwiseEqual(t, p.leader, p.folReg, "g", mode, base.NumVertices())

				// And the follower's answers are right, not just identical:
				// every algo agrees with a from-scratch recompute.
				want := stateAfter(base, script, nBatches)
				assertRecovered(t, p.folReg, "g", mode, want)

				// The follower is marked as a replica and reports no lag
				// once caught up.
				info, err := p.folReg.Info("g")
				if err != nil {
					t.Fatal(err)
				}
				if !info.Replica {
					t.Fatal("follower GraphInfo.Replica = false")
				}
				if info.ReplicaLagSeq != 0 {
					t.Fatalf("caught-up follower reports lag %d", info.ReplicaLagSeq)
				}
			})
		}
	}
}

// TestReplicaLeaderRestart kills the leader (registry closed, endpoint
// gone) after the follower is mid-stream, restarts it from disk, and
// requires the follower to resume and converge — including across a
// checkpoint the restarted leader takes, which supersedes the segment the
// follower was tailing.
func TestReplicaLeaderRestart(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 0xDEAD))
	base := gen.BarabasiAlbert(60, 3, 4)
	script := makeScript(rng, graph.DynFromGraph(base), 20)
	p := newShipPair(t, t.TempDir(), t.TempDir())
	if _, err := p.leader.Add("g", base, ModeLocal, 10); err != nil {
		t.Fatal(err)
	}
	for _, sb := range script[:8] {
		if _, err := p.leader.ApplyEdges("g", sb.edges, sb.insert); err != nil {
			t.Fatal(err)
		}
	}
	p.syncUntilCaughtUp(t, "g")

	p.restartLeader(t)
	for _, sb := range script[8:] {
		if _, err := p.leader.ApplyEdges("g", sb.edges, sb.insert); err != nil {
			t.Fatal(err)
		}
	}
	p.syncUntilCaughtUp(t, "g")
	assertBitwiseEqual(t, p.leader, p.folReg, "g", ModeLocal, base.NumVertices())
	assertRecovered(t, p.folReg, "g", ModeLocal, stateAfter(base, script, len(script)))
}

// TestReplicaFollowerRestart closes the follower registry and reopens it
// from its own disk: recovery adopts the local state (no re-bootstrap) and
// tailing resumes from the adopted sequence.
func TestReplicaFollowerRestart(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 0xF01))
	base := gen.BarabasiAlbert(60, 3, 6)
	script := makeScript(rng, graph.DynFromGraph(base), 16)
	folDir := t.TempDir()
	p := newShipPair(t, t.TempDir(), folDir)
	if _, err := p.leader.Add("g", base, ModeLocal, 10); err != nil {
		t.Fatal(err)
	}
	for _, sb := range script[:10] {
		if _, err := p.leader.ApplyEdges("g", sb.edges, sb.insert); err != nil {
			t.Fatal(err)
		}
	}
	p.syncUntilCaughtUp(t, "g")

	if err := p.folReg.Close(); err != nil {
		t.Fatal(err)
	}
	p.folReg = NewRegistry(WithLeader(p.ts.URL), WithDataDir(folDir), WithBuildWorkers(2), WithCheckpointPolicy(3, 1<<20))
	t.Cleanup(func() { p.folReg.Close() })
	infos, err := p.folReg.Recover()
	if err != nil {
		t.Fatalf("follower recover: %v", err)
	}
	if len(infos) != 1 || !infos[0].Replica {
		t.Fatalf("recovered follower infos = %+v, want one replica", infos)
	}
	p.fol = ship.NewFollower(p.client, p.folReg)

	for _, sb := range script[10:] {
		if _, err := p.leader.ApplyEdges("g", sb.edges, sb.insert); err != nil {
			t.Fatal(err)
		}
	}
	p.syncUntilCaughtUp(t, "g")
	assertBitwiseEqual(t, p.leader, p.folReg, "g", ModeLocal, base.NumVertices())
	assertRecovered(t, p.folReg, "g", ModeLocal, stateAfter(base, script, len(script)))
}

// TestReplicaReadOnly: a following registry rejects every client mutation
// with ErrReadOnly, and the HTTP layer turns that into 403 plus an X-Leader
// hint; reads keep working.
func TestReplicaReadOnly(t *testing.T) {
	base := gen.BarabasiAlbert(40, 3, 2)
	p := newShipPair(t, t.TempDir(), "")
	if _, err := p.leader.Add("g", base, ModeLocal, 10); err != nil {
		t.Fatal(err)
	}
	p.syncUntilCaughtUp(t, "g")

	if _, err := p.folReg.Add("h", base, ModeLocal, 10); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Add on follower: %v, want ErrReadOnly", err)
	}
	if err := p.folReg.Remove("g"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Remove on follower: %v, want ErrReadOnly", err)
	}
	if _, err := p.folReg.ApplyEdges("g", [][2]int32{{0, 1}}, true); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("ApplyEdges on follower: %v, want ErrReadOnly", err)
	}
	if _, err := p.folReg.TopK("g", 5, AlgoOpt, 0); err != nil {
		t.Fatalf("read on follower: %v", err)
	}

	srv := New(WithRegistryOptions(WithLeader(p.ts.URL), WithBuildWorkers(2)))
	defer srv.Registry().Close()
	fol2 := ship.NewFollower(p.client, srv.Registry())
	if err := fol2.SyncOnce(context.Background()); err != nil {
		t.Fatalf("HTTP follower sync: %v", err)
	}
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	body, _ := json.Marshal(map[string]any{"edges": [][2]int32{{0, 1}}})
	resp, err := http.Post(hts.URL+"/graphs/g/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("write on follower: status %d, want 403", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Leader"); got != p.ts.URL {
		t.Fatalf("X-Leader = %q, want %q", got, p.ts.URL)
	}
}

// TestReplicaLagFields: GraphInfo surfaces how far behind a follower is in
// batches (from the last shipping poll) and for how long it has been
// behind, and both clear once it catches up.
func TestReplicaLagFields(t *testing.T) {
	base := gen.BarabasiAlbert(40, 3, 3)
	p := newShipPair(t, t.TempDir(), "")
	if _, err := p.leader.Add("g", base, ModeLocal, 10); err != nil {
		t.Fatal(err)
	}
	p.syncUntilCaughtUp(t, "g")
	seq, _ := p.folReg.ReplicaSeq("g")

	p.folReg.NoteReplica("g", seq+5, false)
	time.Sleep(2 * time.Millisecond)
	info, err := p.folReg.Info("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplicaLagSeq != 5 {
		t.Fatalf("ReplicaLagSeq = %d, want 5", info.ReplicaLagSeq)
	}
	if info.ReplicaLagMS <= 0 {
		t.Fatalf("ReplicaLagMS = %v, want > 0", info.ReplicaLagMS)
	}

	p.folReg.NoteReplica("g", seq, true)
	info, err = p.folReg.Info("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplicaLagSeq != 0 || info.ReplicaLagMS != 0 {
		t.Fatalf("caught-up lag = (%d, %v), want (0, 0)", info.ReplicaLagSeq, info.ReplicaLagMS)
	}
}

// TestApplyReplicaContract: shipped batches must continue the local
// sequence exactly — gaps, duplicates, and rewinds are rejected before any
// state changes, and a non-replica entry refuses shipped batches entirely.
func TestApplyReplicaContract(t *testing.T) {
	base := gen.BarabasiAlbert(40, 3, 5)
	p := newShipPair(t, t.TempDir(), "")
	if _, err := p.leader.Add("g", base, ModeLocal, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := p.leader.ApplyEdges("g", [][2]int32{{0, 39}}, true); err != nil {
		t.Fatal(err)
	}
	p.syncUntilCaughtUp(t, "g")
	seq, _ := p.folReg.ReplicaSeq("g")

	for _, bad := range []uint64{seq, seq + 2} { // duplicate, gap
		err := p.folReg.ApplyReplica("g", []store.Batch{{Seq: bad, Insert: true, Edges: [][2]int32{{1, 2}}}})
		if err == nil {
			t.Fatalf("ApplyReplica accepted discontinuous seq %d (local %d)", bad, seq)
		}
	}
	if got, _ := p.folReg.ReplicaSeq("g"); got != seq {
		t.Fatalf("rejected batches moved the sequence: %d -> %d", seq, got)
	}

	// A registry that follows no leader has no replica entries.
	if err := p.leader.ApplyReplica("g", []store.Batch{{Seq: 99}}); err == nil {
		t.Fatal("ApplyReplica on a leader entry succeeded")
	}
}

// TestRecoverPartialFailure: one broken graph directory must not take down
// the boot — the healthy graphs recover and serve, and the failure is
// reported per graph in a *RecoverError that still unwraps sentinel-wise.
func TestRecoverPartialFailure(t *testing.T) {
	dir := t.TempDir()
	reg := durableRegistry(dir)
	for _, name := range []string{"good-a", "bad", "good-b"} {
		if _, err := reg.Add(name, gen.BarabasiAlbert(40, 3, 8), ModeLocal, 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt one graph's snapshot beyond recovery (the WAL too, so no
	// rebuild path can save it).
	badDir := store.GraphDir(dir, "bad")
	for _, path := range []string{store.SnapshotPath(badDir), store.WALPath(badDir)} {
		if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	reborn := durableRegistry(dir)
	defer reborn.Close()
	infos, err := reborn.Recover()
	if err == nil {
		t.Fatal("Recover reported success over a corrupt graph")
	}
	var recErr *RecoverError
	if !errors.As(err, &recErr) {
		t.Fatalf("Recover error %T, want *RecoverError: %v", err, err)
	}
	if len(recErr.Failures) != 1 || recErr.Failures[0].Graph != "bad" {
		t.Fatalf("failures = %+v, want exactly graph %q", recErr.Failures, "bad")
	}
	if len(infos) != 2 {
		t.Fatalf("recovered %d graphs, want 2 healthy ones", len(infos))
	}
	for _, name := range []string{"good-a", "good-b"} {
		if _, err := reborn.TopK(name, 5, AlgoOpt, 0); err != nil {
			t.Fatalf("healthy graph %q unreadable after partial recovery: %v", name, err)
		}
	}
	if _, err := reborn.Info("bad"); err == nil {
		t.Fatal("corrupt graph registered anyway")
	}
}

// TestRecoverLazyKFallbackReason: a persisted lazy graph whose header
// carries an invalid maintained k still boots (fallback k=10) but says so
// in recover_reason instead of silently changing the serving contract.
func TestRecoverLazyKFallbackReason(t *testing.T) {
	dir := t.TempDir()
	g := gen.BarabasiAlbert(40, 3, 12)
	gdir := store.GraphDir(dir, "g")
	snap := store.EncodeSnapshot(g, store.SnapshotMeta{Mode: 1 /* lazy */, LazyK: 0, Seq: 0})
	if err := store.InstallSnapshot(gdir, snap); err != nil {
		t.Fatal(err)
	}

	reg := durableRegistry(dir)
	defer reg.Close()
	infos, err := reg.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(infos) != 1 {
		t.Fatalf("recovered %d graphs, want 1", len(infos))
	}
	if !strings.Contains(infos[0].RecoverReason, "lazy-k 0 invalid") {
		t.Fatalf("recover_reason %q does not record the lazy-k fallback", infos[0].RecoverReason)
	}
	res, err := reg.TopK("g", 10, AlgoLazy, 0)
	if err != nil {
		t.Fatalf("TopK on fallback graph: %v", err)
	}
	if len(res.Results) == 0 {
		t.Fatal("fallback graph served no results")
	}
}

// TestRetryAfterDerivation: a full admission queue answers with a
// BacklogError whose RetryAfter reflects the actual backlog (queue depth ×
// coalescing window), bounded to [1s, 60s] — and the error still matches
// the ErrBacklog sentinel clients already check for.
func TestRetryAfterDerivation(t *testing.T) {
	reg := NewRegistry(WithBuildWorkers(1), WithWriteQueue(2), WithFlushInterval(500*time.Millisecond))
	defer reg.Close()
	if _, err := reg.Add("g", gen.BarabasiAlbert(40, 3, 1), ModeLocal, 10); err != nil {
		t.Fatal(err)
	}
	// Async writes pile up behind the first drain's coalescing window until
	// the queue rejects one.
	var be *BacklogError
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := reg.ApplyEdgesAck("g", [][2]int32{{0, 39}}, true, AckAsync)
		if errors.As(err, &be) {
			if !errors.Is(err, ErrBacklog) {
				t.Fatalf("BacklogError does not match ErrBacklog: %v", err)
			}
			break
		}
		if err != nil {
			t.Fatalf("ApplyEdgesAck: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}
	if be.RetryAfter < time.Second || be.RetryAfter > 60*time.Second {
		t.Fatalf("RetryAfter %v outside [1s, 60s]", be.RetryAfter)
	}
	if be.Graph != "g" || be.Capacity != 2 {
		t.Fatalf("BacklogError context = %+v", be)
	}
}
