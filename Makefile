# Targets mirror the CI workflow (.github/workflows/ci.yml); see README.md.

GO ?= go

.PHONY: build test bench bench-figs bench-smoke fuzz-smoke cover serve fmt vet clean

build:
	$(GO) build ./...

test: vet
	$(GO) test -race ./...

# Bench-regression harness: machine-readable ns/op for the hot paths
# (ComputeAll, OptBSearch, Maintainer.InsertEdge, snapshot build, the
# PR 3 persistence costs: snapshot codec, fsync'd WAL append, checkpoint,
# recovery — and the PR 4 write-throughput rows: durable-ack batches/sec
# at 1/4/16 concurrent writers vs the serialized group-limit-1 baseline),
# written to BENCH_PR4.json so the perf trajectory is tracked across PRs.
bench: build
	$(GO) run ./cmd/benchtab -prbench BENCH_PR4.json

# Regenerate the paper's tables and figures (quick grids; -full for the
# paper's grids). See EXPERIMENTS.md.
bench-figs: build
	$(GO) run ./cmd/benchtab -exp all

# Compile-and-run every Go benchmark once (the CI smoke step; not a
# measurement).
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Short fuzz runs of the persistence decoders (internal/store). `go test`
# accepts one -fuzz pattern per invocation, hence two runs. CI runs this
# non-gating, like bench-smoke; crank -fuzztime up for a real session.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/store -run '^$$' -fuzz FuzzDecodeSnapshot -fuzztime $(FUZZTIME)
	$(GO) test ./internal/store -run '^$$' -fuzz FuzzDecodeWAL -fuzztime $(FUZZTIME)

# Coverage profile over every package (atomic mode so it composes with
# -race); CI uploads coverage.out as a workflow artifact.
cover:
	$(GO) test -race -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Run the query-serving daemon on :8080 (README.md has the curl walkthrough).
serve:
	$(GO) run ./cmd/egobwd -addr :8080

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
