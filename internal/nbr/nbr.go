package nbr

// GallopRatio is the length ratio beyond which the adaptive kernels switch
// from the linear merge to galloping search: when |large| ≥ GallopRatio ·
// |small|, probing the large list beats scanning it.
const GallopRatio = 16

// HubDegree is the center degree at which callers that intersect one fixed
// neighborhood against many others should switch to a pre-marked bitset
// Register: the O(d) marking cost is amortized across the center's pair
// scans, and each scan then costs O(|other|) word probes with no merge.
const HubDegree = 64

// Strategy identifies which kernel the adaptive dispatch would run.
type Strategy uint8

const (
	// StrategyLinear is the two-pointer merge over both lists.
	StrategyLinear Strategy = iota
	// StrategyGallop probes the large list by exponential + binary search.
	StrategyGallop
	// StrategyBitset is the pre-marked Register probe (chosen by callers
	// holding a Register, not by Choose — marking has per-center cost).
	StrategyBitset
	// StrategyWord is the Register×Register word-parallel AND with
	// block-skipping summaries (chosen by callers holding two pre-marked
	// Registers, via ChooseHub — marking has per-side cost).
	StrategyWord
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyLinear:
		return "linear"
	case StrategyGallop:
		return "gallop"
	case StrategyBitset:
		return "bitset"
	default:
		return "word"
	}
}

// Choose returns the strategy the pairwise kernels use for lists of the
// given lengths. StrategyBitset is never returned here: it requires a
// Register pre-marked with one side, which only the caller can amortize.
func Choose(la, lb int) Strategy {
	if la > lb {
		la, lb = lb, la
	}
	if la > 0 && lb >= GallopRatio*la {
		return StrategyGallop
	}
	return StrategyLinear
}

// ChooseHub extends Choose for callers that can amortize Register marking
// across many scans of the same side(s). It is the central dispatch for the
// register strategies, replacing ad-hoc HubDegree comparisons at call
// sites:
//
//   - both lengths ≥ HubDegree → StrategyWord: mark both sides and run the
//     word-parallel AND (AndInto/AndCount);
//   - exactly one length ≥ HubDegree → StrategyBitset: mark that side once
//     and probe the others element-by-element (Register.IntersectInto);
//   - otherwise → whatever the pairwise Choose picks.
//
// Callers testing only one amortizable side pass 0 for the other length
// (ChooseHub(la, 0) == StrategyBitset ⇔ la qualifies as a hub center).
// As with StrategyBitset in Choose, the pairwise kernels never select
// StrategyWord on their own: both register strategies have a marking cost
// only the caller can amortize, so IntersectInto/IntersectCount dispatch
// exclusively between linear and gallop.
func ChooseHub(la, lb int) Strategy {
	if la >= HubDegree && lb >= HubDegree {
		return StrategyWord
	}
	if la >= HubDegree || lb >= HubDegree {
		return StrategyBitset
	}
	return Choose(la, lb)
}

// IntersectInto appends a ∩ b to dst and returns the extended slice. Both
// inputs must be strictly ascending; the appended run is ascending. dst may
// be nil or a reused scratch buffer (pass dst[:0] to reuse).
func IntersectInto(dst, a, b []int32) []int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= GallopRatio*len(a) {
		return gallopInto(dst, a, b)
	}
	return linearInto(dst, a, b)
}

// IntersectCount returns |a ∩ b| without materializing the intersection.
func IntersectCount(a, b []int32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) >= GallopRatio*len(a) {
		return gallopCount(a, b)
	}
	return linearCount(a, b)
}

// CommonMarkedCount returns |a ∩ b ∩ marked(r)| — the fused three-way
// kernel of the sampled estimator: with a center's neighborhood pre-marked
// in r, one call counts the connectors c(u, v) of a neighbor pair without
// materializing a ∩ b. Dispatch mirrors IntersectCount (linear merge vs
// galloping on the length ratio); each common element costs one extra word
// probe. Both lists must be strictly ascending and within r's Ensured
// capacity.
func CommonMarkedCount(r *Register, a, b []int32) int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	var n int32
	e := r.epoch
	words, stamps := r.words, r.stamps
	probe := func(v int32) bool {
		w := uint32(v) >> 6
		return stamps[w] == e && words[w]&(1<<(uint32(v)&63)) != 0
	}
	if len(b) >= GallopRatio*len(a) {
		lo := 0
		for _, x := range a {
			lo = gallopTo(b, lo, x)
			if lo >= len(b) {
				return n
			}
			if b[lo] == x {
				if probe(x) {
					n++
				}
				lo++
				if lo >= len(b) {
					return n
				}
			}
		}
		return n
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if probe(a[i]) {
				n++
			}
			i++
			j++
		}
	}
	return n
}

// ForEachCommon calls fn for every element of a ∩ b in ascending order,
// stopping early when fn returns false. It allocates nothing.
func ForEachCommon(a, b []int32, fn func(int32) bool) {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return
	}
	if len(b) >= GallopRatio*len(a) {
		lo := 0
		for _, x := range a {
			lo = gallopTo(b, lo, x)
			if lo >= len(b) {
				return
			}
			if b[lo] == x {
				if !fn(x) {
					return
				}
				lo++
				if lo >= len(b) {
					return
				}
			}
		}
		return
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if !fn(a[i]) {
				return
			}
			i++
			j++
		}
	}
}

// linearInto is the balanced two-pointer merge.
func linearInto(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

func linearCount(a, b []int32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// gallopTo returns the smallest index ≥ lo with b[idx] ≥ x (len(b) if none),
// by exponential probing from lo followed by binary search — the standard
// galloping primitive, O(log gap) per step.
func gallopTo(b []int32, lo int, x int32) int {
	step := 1
	hi := lo
	for hi < len(b) && b[hi] < x {
		lo = hi + 1
		hi = lo + step
		step <<= 1
	}
	if hi > len(b) {
		hi = len(b)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// gallopInto intersects the small ascending list a into the large ascending
// list b by galloping; the cursor into b only moves forward.
func gallopInto(dst, a, b []int32) []int32 {
	lo := 0
	for _, x := range a {
		lo = gallopTo(b, lo, x)
		if lo >= len(b) {
			break
		}
		if b[lo] == x {
			dst = append(dst, x)
			lo++
			if lo >= len(b) {
				break
			}
		}
	}
	return dst
}

func gallopCount(a, b []int32) int {
	n, lo := 0, 0
	for _, x := range a {
		lo = gallopTo(b, lo, x)
		if lo >= len(b) {
			break
		}
		if b[lo] == x {
			n++
			lo++
			if lo >= len(b) {
				break
			}
		}
	}
	return n
}
