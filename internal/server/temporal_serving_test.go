package server

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ship"
)

// The sliding-window serving suite (DESIGN.md §14): expiry must happen only
// through WAL-recorded delete batches synthesized by the leader's writer, so
// crash recovery, restarts, and shipped followers all replay the identical
// timeline — no clock ever runs anywhere but the leader's drain. Tests
// inject the clock (WithClock) and advance it explicitly; wall time only
// decides *when* an expiry batch is cut, never *what* it contains.

// fakeClock is the injectable unix-ms clock: frozen until a test advances it.
type fakeClock struct{ ms atomic.Int64 }

func (c *fakeClock) now() int64      { return c.ms.Load() }
func (c *fakeClock) set(ms int64)    { c.ms.Store(ms) }
func (c *fakeClock) advance(d int64) { c.ms.Add(d) }

// waitForM polls until graph name serves exactly m edges — expiry rides
// drains (a client write or the idle ticker), so crossing the window
// boundary becomes visible within a tick.
func waitForM(t *testing.T, reg *Registry, name string, m int64) GraphInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, err := reg.Info(name)
		if err != nil {
			t.Fatal(err)
		}
		if info.M == m {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("graph %q stuck at m=%d, want %d (expired=%d batches=%d)",
				name, info.M, m, info.ExpiredEdges, info.ExpiryBatches)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWindowedServing drives a windowed graph with an injected clock through
// inserts and window crossings and checks the served state, the expiry
// counters, and that timestamps are honored: client-stamped edges expire by
// their stamp, unstamped ones by receive time.
func TestWindowedServing(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1_000_000)
	base, _ := graph.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	reg := durableRegistry(t.TempDir(), WithClock(clk.now))
	defer reg.Close()

	const window = time.Minute
	info, err := reg.AddWindowed("g", base, ModeLocal, 10, window)
	if err != nil {
		t.Fatal(err)
	}
	if info.Window != "1m0s" {
		t.Fatalf("Window = %q, want 1m0s", info.Window)
	}
	if info.OldestEdgeAgeMS != 0 {
		t.Fatalf("fresh graph reports oldest age %v", info.OldestEdgeAgeMS)
	}

	// A batch stamped in the past (but inside the window) plus one stamped
	// at receive time.
	clk.advance(10_000) // t = +10s; initial edges now 10s old
	if _, err := reg.ApplyEdgesStamped("g", [][2]int32{{0, 2}}, []int64{clk.now() - 50_000}, true, AckDurable); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.ApplyEdges("g", [][2]int32{{1, 3}}, true); err != nil {
		t.Fatal(err)
	}
	info, _ = reg.Info("g")
	if info.M != 5 {
		t.Fatalf("m = %d, want 5", info.M)
	}
	if info.OldestEdgeAgeMS != 50_000 {
		t.Fatalf("oldest age = %v, want 50000 (the back-stamped edge)", info.OldestEdgeAgeMS)
	}

	// +11s: the back-stamped edge (stamp −50s) crosses the 60s window;
	// everything else is ≤ 21s old. The next drain must expire exactly it.
	clk.advance(11_000)
	if _, err := reg.ApplyEdges("g", [][2]int32{{0, 3}}, true); err != nil {
		t.Fatal(err)
	}
	info = waitForM(t, reg, "g", 5)
	if info.ExpiredEdges != 1 || info.ExpiryBatches != 1 {
		t.Fatalf("expired=%d batches=%d, want 1/1", info.ExpiredEdges, info.ExpiryBatches)
	}

	// Past the window for the creation-time edges: only the two later
	// inserts survive. No client write needed — the idle ticker cuts the
	// expiry batch.
	clk.advance(45_000) // initial edges now 66s old, {1,3} 56s, {0,3} 45s
	info = waitForM(t, reg, "g", 2)
	if info.ExpiredEdges != 4 {
		t.Fatalf("expired=%d, want 4", info.ExpiredEdges)
	}

	// An explicitly deleted edge must not resurrect as a later expiry.
	if _, err := reg.ApplyEdges("g", [][2]int32{{1, 3}}, false); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * 60_000)
	info = waitForM(t, reg, "g", 0)
	if info.ExpiredEdges != 5 {
		t.Fatalf("expired=%d after client delete, want 5 (deleted edge must not count)", info.ExpiredEdges)
	}
	if info.OldestEdgeAgeMS != 0 {
		t.Fatalf("empty graph reports oldest age %v", info.OldestEdgeAgeMS)
	}
}

// TestWindowedValidation pins the request-validation surface: windows
// shorter than the flush interval or 1ms, stamps on unwindowed graphs, on
// deletes, or with the wrong count are all rejected up front.
func TestWindowedValidation(t *testing.T) {
	reg := NewRegistry(WithBuildWorkers(2), WithFlushInterval(50*time.Millisecond))
	defer reg.Close()
	base, _ := graph.FromEdges(3, [][2]int32{{0, 1}})

	if _, err := reg.AddWindowed("w", base, ModeLocal, 10, 10*time.Millisecond); err == nil ||
		!strings.Contains(err.Error(), "flush interval") {
		t.Fatalf("window < flush accepted: %v", err)
	}
	if _, err := reg.AddWindowed("w", base, ModeLocal, 10, 100*time.Microsecond); err == nil {
		t.Fatal("sub-millisecond window accepted")
	}
	if _, err := reg.AddWindowed("w", base, ModeLocal, 10, -time.Second); err == nil {
		t.Fatal("negative window accepted")
	}

	if _, err := reg.AddWindowed("plain", base, ModeLocal, 10, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.ApplyEdgesStamped("plain", [][2]int32{{0, 2}}, []int64{5}, true, AckDurable); err == nil ||
		!strings.Contains(err.Error(), "not windowed") {
		t.Fatalf("stamps on unwindowed graph accepted: %v", err)
	}

	if _, err := reg.AddWindowed("win", base, ModeLocal, 10, time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.ApplyEdgesStamped("win", [][2]int32{{0, 1}}, []int64{5}, false, AckDurable); err == nil ||
		!strings.Contains(err.Error(), "insert batches only") {
		t.Fatalf("stamps on delete accepted: %v", err)
	}
	if _, err := reg.ApplyEdgesStamped("win", [][2]int32{{0, 2}, {1, 2}}, []int64{5}, true, AckDurable); err == nil ||
		!strings.Contains(err.Error(), "2 edges") {
		t.Fatalf("stamp count mismatch accepted: %v", err)
	}
}

// TestWindowedHTTP covers the HTTP surface: the window field on create
// (including the 400 on a window below the flush interval — the documented
// small fix), ts/stamps on edge batches, and the windowed fields of
// GraphInfo coming back over the wire.
func TestWindowedHTTP(t *testing.T) {
	clk := &fakeClock{}
	clk.set(500_000)
	srv := New(WithLogger(func(string, ...any) {}),
		WithRegistryOptions(WithBuildWorkers(2), WithClock(clk.now),
			WithFlushInterval(20*time.Millisecond), WithWindow(time.Hour)))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Registry().Close()

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	// Explicit window below the flush interval: clear 400.
	if code, body := post("/graphs", `{"name":"bad","edges":[[0,1]],"window":"1ms"}`); code != http.StatusBadRequest ||
		!strings.Contains(body, "flush interval") {
		t.Fatalf("short window: code=%d body=%s", code, body)
	}
	// Unparseable window: 400.
	if code, _ := post("/graphs", `{"name":"bad","edges":[[0,1]],"window":"soon"}`); code != http.StatusBadRequest {
		t.Fatalf("bad window string: code=%d", code)
	}
	// "none" opts out of the daemon-wide default window.
	if code, _ := post("/graphs", `{"name":"plain","edges":[[0,1]],"window":"none"}`); code != http.StatusCreated {
		t.Fatalf("window none: code=%d", code)
	}
	if info, _ := srv.Registry().Info("plain"); info.Window != "" {
		t.Fatalf("window none produced window %q", info.Window)
	}
	// Absent window inherits the default (1h here).
	if code, _ := post("/graphs", `{"name":"defaulted","edges":[[0,1]]}`); code != http.StatusCreated {
		t.Fatalf("default window: code=%d", code)
	}
	if info, _ := srv.Registry().Info("defaulted"); info.Window != "1h0m0s" {
		t.Fatalf("default window not inherited: %q", info.Window)
	}
	// Explicit window on create.
	if code, body := post("/graphs", `{"name":"win","edges":[[0,1],[1,2]],"window":"90s"}`); code != http.StatusCreated ||
		!strings.Contains(body, `"window": "1m30s"`) {
		t.Fatalf("windowed create: code=%d body=%s", code, body)
	}

	// ts and stamps are mutually exclusive; stamps on an unwindowed graph 400.
	if code, _ := post("/graphs/win/edges", `{"edges":[[0,2]],"ts":1,"stamps":[2]}`); code != http.StatusBadRequest {
		t.Fatalf("ts+stamps: code=%d", code)
	}
	if code, _ := post("/graphs/plain/edges", `{"edges":[[0,2]],"ts":400000}`); code != http.StatusBadRequest {
		t.Fatalf("ts on unwindowed graph: code=%d", code)
	}
	// A batch-level ts stamps every edge; a back-stamped batch past the
	// window expires on the next drain.
	if code, _ := post("/graphs/win/edges", fmt.Sprintf(`{"edges":[[0,3],[2,3]],"ts":%d}`, clk.now()-100_000)); code != http.StatusOK {
		t.Fatalf("stamped insert: code=%d", code)
	}
	waitForM(t, srv.Registry(), "win", 2) // the two creation-time edges survive
}

// windowedStep is one scripted step of the recovery/replication suites: a
// clock advance followed by client batches, with the expected live edge set
// maintained alongside (expiry = drop everything stamped before now−window).
type windowedStep struct {
	advanceMS int64
	insert    [][2]int32
	stamp     int64 // 0 = receive time
	delete    [][2]int32
}

// playWindowed applies the script to reg and mirrors it onto a stamp map,
// returning the expected live edge set after each window crossing settles.
func playWindowed(t *testing.T, reg *Registry, clk *fakeClock, name string,
	windowMS int64, stamps map[[2]int32]int64, script []windowedStep) *graph.Graph {
	t.Helper()
	for _, stp := range script {
		clk.advance(stp.advanceMS)
		if len(stp.insert) > 0 {
			var sv []int64
			ts := stp.stamp
			if ts == 0 {
				ts = clk.now()
			} else {
				sv = make([]int64, len(stp.insert))
				for i := range sv {
					sv[i] = ts
				}
			}
			if _, err := reg.ApplyEdgesStamped(name, stp.insert, sv, true, AckDurable); err != nil {
				t.Fatal(err)
			}
			for _, e := range stp.insert {
				stamps[e] = ts
			}
		}
		if len(stp.delete) > 0 {
			if _, err := reg.ApplyEdges(name, stp.delete, false); err != nil {
				t.Fatal(err)
			}
			for _, e := range stp.delete {
				delete(stamps, e)
			}
		}
		cutoff := clk.now() - windowMS
		for e, ts := range stamps {
			if ts < cutoff {
				delete(stamps, e)
			}
		}
		waitForM(t, reg, name, int64(len(stamps)))
	}
	var n int32
	edges := make([][2]int32, 0, len(stamps))
	for e := range stamps {
		edges = append(edges, e)
		if e[1]+1 > n {
			n = e[1] + 1
		}
	}
	info, err := reg.Info(name)
	if err != nil {
		t.Fatal(err)
	}
	if int32(info.N) > n {
		n = info.N
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// windowedScript is the shared timeline: stamped and receive-time inserts,
// client deletes, and three window crossings (the 60s window).
func windowedScript() []windowedStep {
	return []windowedStep{
		{advanceMS: 5_000, insert: [][2]int32{{0, 5}, {2, 5}}},
		{advanceMS: 10_000, insert: [][2]int32{{1, 6}, {4, 6}}, stamp: 990_000}, // back-stamped near the boundary
		{advanceMS: 20_000, insert: [][2]int32{{3, 7}}, delete: [][2]int32{{0, 1}}},
		{advanceMS: 30_000, insert: [][2]int32{{5, 6}}},  // t=+65s: creation edges and the back-stamp expire
		{advanceMS: 25_000, insert: [][2]int32{{2, 7}}},  // t=+90s: the +5s edges expire
		{advanceMS: 40_000, delete: [][2]int32{{5, 6}}},  // t=+130s: +20s and +65s edges expire
		{advanceMS: 100_000, insert: [][2]int32{{0, 3}}}, // t=+230s: everything older expires
	}
}

// TestWindowedRecoveryEquivalence kills a windowed durable registry at
// several points of the timeline and requires the reopened one to serve
// exactly the live edge set the WAL-recorded history implies — window
// config included — and to keep expiring afterwards.
func TestWindowedRecoveryEquivalence(t *testing.T) {
	const windowMS = 60_000
	for _, killAt := range []int{1, 4, 7} {
		t.Run(fmt.Sprintf("kill%d", killAt), func(t *testing.T) {
			clk := &fakeClock{}
			clk.set(1_000_000)
			dir := t.TempDir()
			base := gen.BarabasiAlbert(5, 2, 3)
			victim := durableRegistry(dir, WithClock(clk.now))
			if _, err := victim.AddWindowed("g", base, ModeLocal, 10, windowMS*time.Millisecond); err != nil {
				t.Fatal(err)
			}
			stamps := map[[2]int32]int64{}
			base.EachEdge(func(u, v int32) bool {
				stamps[[2]int32{u, v}] = clk.now()
				return true
			})
			want := playWindowed(t, victim, clk, "g", windowMS, stamps, windowedScript()[:killAt])
			victim.Close()

			reborn := durableRegistry(dir, WithClock(clk.now))
			defer reborn.Close()
			if _, err := reborn.Recover(); err != nil {
				t.Fatal(err)
			}
			assertRecovered(t, reborn, "g", ModeLocal, want)
			info, err := reborn.Info("g")
			if err != nil {
				t.Fatal(err)
			}
			if info.Window != "1m0s" {
				t.Fatalf("recovered window = %q, want 1m0s", info.Window)
			}

			// Retention keeps working on the recovered registry: play the
			// rest of the timeline and let it expire the old edges.
			want = playWindowed(t, reborn, clk, "g", windowMS, stamps, windowedScript()[killAt:])
			assertRecovered(t, reborn, "g", ModeLocal, want)
		})
	}
}

// TestWindowedExpiryCrashPoint kills the drain at the server-after-expiry
// point: the expiry batch was synthesized (and the in-memory sidecar already
// dropped the edges) but nothing reached the WAL. Recovery must come back
// with the edges still live — the synthesis was not durable — and re-expire
// them on the first post-recovery drain.
func TestWindowedExpiryCrashPoint(t *testing.T) {
	errBoom := errors.New("injected crash")
	clk := &fakeClock{}
	clk.set(1_000_000)
	dir := t.TempDir()
	base, _ := graph.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})

	var armed atomic.Bool
	victim := durableRegistry(dir, WithClock(clk.now), WithCrashHook(func(g, p string) error {
		if armed.Load() && p == crashAfterExpiry {
			return errBoom
		}
		return nil
	}))
	if _, err := victim.AddWindowed("g", base, ModeLocal, 10, time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.ApplyEdges("g", [][2]int32{{0, 2}}, true); err != nil {
		t.Fatal(err)
	}
	armed.Store(true)
	clk.advance(2 * 60_000) // everything is past the window now
	// The next drain synthesizes the expiry batch and dies on the injected
	// crash; either our write triggers it or the idle ticker beat us to it.
	if _, err := victim.ApplyEdges("g", [][2]int32{{1, 3}}, true); !errors.Is(err, errBoom) && !errors.Is(err, ErrStorage) {
		t.Fatalf("crash not injected: err = %v", err)
	}
	victim.Close()

	// Reopen with the clock rolled back inside the window: nothing of the
	// aborted expiry was durable, so all four pre-crash edges must be live.
	clk.set(1_000_000 + 10_000)
	reborn := durableRegistry(dir, WithClock(clk.now))
	defer reborn.Close()
	if _, err := reborn.Recover(); err != nil {
		t.Fatal(err)
	}
	info, err := reborn.Info("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.M != 4 {
		t.Fatalf("recovered m = %d, want 4 (aborted expiry must not be durable)", info.M)
	}
	// And crossing the window again now expires them for real.
	clk.advance(2 * 60_000)
	waitForM(t, reborn, "g", 0)
}

// TestApproxTemporalServing pins the approx tier against the sliding
// window: on a windowed graph under churn, algo=approx at a fixed seed is
// deterministic at every fixed applied sequence and never sees an expired
// edge. After each step settles, the windowed registry's approx answer must
// be bit-identical (results and telemetry) to that of a registry built
// fresh from only the live edges — a registry that has never held the
// expired ones, so any resurrection would break the equality.
func TestApproxTemporalServing(t *testing.T) {
	const windowMS = 60_000
	clk := &fakeClock{}
	clk.set(1_000_000)
	// Hub-heavy base so the estimator actually samples at this ε instead of
	// falling back to the exact kernel everywhere.
	base := gen.BarabasiAlbert(300, 8, 5)
	reg := durableRegistry(t.TempDir(), WithClock(clk.now))
	defer reg.Close()
	if _, err := reg.AddWindowed("g", base, ModeLocal, 10, windowMS*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	stamps := map[[2]int32]int64{}
	base.EachEdge(func(u, v int32) bool {
		stamps[[2]int32{u, v}] = clk.now()
		return true
	})

	q := TopKQuery{K: 20, Algo: AlgoApprox, Eps: 0.2, Seed: 11}
	// Every insert touches a vertex ≥ 300 (past the base), so none collides
	// with a pre-existing edge — a duplicate insert is a no-op and would not
	// re-stamp.
	script := []windowedStep{
		// Fresh hub-adjacent edges, then a back-stamped batch that will be
		// the first to cross the window.
		{advanceMS: 5_000, insert: [][2]int32{{0, 300}, {1, 300}, {2, 301}}},
		{advanceMS: 10_000, insert: [][2]int32{{0, 302}, {3, 302}}, stamp: 970_000},
		// t=+35s: the back-stamped batch crosses; the base stays live. A
		// client delete rides the same drain.
		{advanceMS: 20_000, delete: [][2]int32{{0, 300}}},
		// t=+70s: the base and the receive-stamped inserts all expire; only
		// this step's edges survive.
		{advanceMS: 35_000, insert: [][2]int32{{4, 303}, {5, 303}, {303, 304}}},
	}
	for i := range script {
		want := playWindowed(t, reg, clk, "g", windowMS, stamps, script[i:i+1])
		got, err := reg.TopKQ("g", q)
		if err != nil {
			t.Fatal(err)
		}
		fresh := NewRegistry(WithBuildWorkers(2))
		if _, err := fresh.Add("g", want, ModeLocal, 0); err != nil {
			t.Fatal(err)
		}
		wantRes, err := fresh.TopKQ("g", q)
		fresh.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Results, wantRes.Results) {
			t.Fatalf("step %d: windowed approx diverges from live-edge rebuild\n got %v\nwant %v",
				i, got.Results, wantRes.Results)
		}
		if got.ApproxSamples != wantRes.ApproxSamples || got.ApproxEpsAchieved != wantRes.ApproxEpsAchieved {
			t.Fatalf("step %d: approx telemetry diverges: %d/%v vs %d/%v", i,
				got.ApproxSamples, got.ApproxEpsAchieved, wantRes.ApproxSamples, wantRes.ApproxEpsAchieved)
		}
		// Same applied sequence, same seed: asking again is deterministic.
		again, err := reg.TopKQ("g", q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again.Results, got.Results) {
			t.Fatalf("step %d: repeat query at the same applied sequence diverges", i)
		}
	}
}

// TestWindowedReplicaEquivalence runs the windowed timeline on a shipped
// leader/follower pair: the follower receives expiry as ordinary delete
// batches in the WAL stream — it never consults a clock — and must be
// bitwise identical to the leader at every common applied sequence.
func TestWindowedReplicaEquivalence(t *testing.T) {
	const windowMS = 60_000
	for _, durable := range []bool{true, false} {
		t.Run(fmt.Sprintf("durable=%v", durable), func(t *testing.T) {
			clk := &fakeClock{}
			clk.set(1_000_000)
			p := &shipPair{leadDir: t.TempDir()}
			p.leader = durableRegistry(p.leadDir, WithClock(clk.now))
			t.Cleanup(func() { p.leader.Close() })
			p.ts = httptest.NewServer(ship.NewHandler(p.leader))
			t.Cleanup(p.ts.Close)
			p.client = ship.NewClient(p.ts.URL, nil)
			folOpts := []RegistryOption{WithLeader(p.ts.URL), WithBuildWorkers(2), WithCheckpointPolicy(3, 1<<20)}
			if durable {
				p.folDir = t.TempDir()
				folOpts = append(folOpts, WithDataDir(p.folDir))
			}
			p.folReg = NewRegistry(folOpts...)
			t.Cleanup(func() { p.folReg.Close() })
			p.fol = ship.NewFollower(p.client, p.folReg)

			// The script's inserts all touch vertices ≥ 5, so a 5-vertex base
			// guarantees none of them collides with a pre-existing edge (a
			// duplicate insert is a no-op and would not re-stamp).
			base := gen.BarabasiAlbert(5, 2, 3)
			if _, err := p.leader.AddWindowed("g", base, ModeLocal, 10, windowMS*time.Millisecond); err != nil {
				t.Fatal(err)
			}
			stamps := map[[2]int32]int64{}
			base.EachEdge(func(u, v int32) bool {
				stamps[[2]int32{u, v}] = clk.now()
				return true
			})
			script := windowedScript()
			for i := range script {
				playWindowed(t, p.leader, clk, "g", windowMS, stamps, script[i:i+1])
				p.syncUntilCaughtUp(t, "g")
				info, err := p.leader.Info("g")
				if err != nil {
					t.Fatal(err)
				}
				assertBitwiseEqual(t, p.leader, p.folReg, "g", ModeLocal, info.N)
			}
			// The follower adopted the window from the shipped checkpoint and
			// reports it, without ever synthesizing expiry itself.
			info, err := p.folReg.Info("g")
			if err != nil {
				t.Fatal(err)
			}
			if info.Window != "1m0s" {
				t.Fatalf("follower window = %q, want 1m0s", info.Window)
			}
			if info.ExpiryBatches != 0 {
				t.Fatalf("follower synthesized %d expiry batches; expiry is the leader's job", info.ExpiryBatches)
			}
		})
	}
}
