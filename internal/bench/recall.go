package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/approx"
	"repro/internal/dataset"
)

// RecallReport runs the approx tier's latency/recall frontier on the named
// datasets (k=100, the ε sweep of the BENCH frontier rows) and writes a
// human-readable table to w. It returns each dataset's recall@100 at the
// default ε, keyed by dataset name, so callers (the CI recall smoke) can
// gate on it.
func RecallReport(w io.Writer, names []string) (map[string]float64, error) {
	atDefault := make(map[string]float64, len(names))
	fmt.Fprintf(w, "%-8s %8s %10s %6s %14s %9s %11s %10s %13s\n",
		"dataset", "n", "m", "eps", "topk", "speedup", "recall@100", "samples", "eps_achieved")
	for _, name := range names {
		g, err := dataset.Load(name)
		if err != nil {
			return nil, err
		}
		e := PRBenchEntry{Dataset: name, N: g.NumVertices(), M: g.NumEdges()}
		measureApprox(&e, g)
		for _, p := range e.ApproxFrontier {
			fmt.Fprintf(w, "%-8s %8d %10d %6.3f %14s %8.1fx %11.3f %10d %13.4f\n",
				name, e.N, e.M, p.Eps, perOpStr(time.Duration(p.TopKNs)),
				p.Speedup, p.Recall, p.Samples, p.EpsAchieved)
		}
		atDefault[name] = e.ApproxRecallAt100
		fmt.Fprintf(w, "%-8s default eps %.2f: speedup %.1fx, recall@100 %.3f\n",
			name, approx.DefaultEps, e.ApproxSpeedupVsOpt, e.ApproxRecallAt100)
	}
	return atDefault, nil
}
