package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/ego"
	"repro/internal/graph"
)

// newTestServer returns a quiet test server and its base URL.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := New(WithLogger(func(string, ...any) {}))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// doJSON issues one request with a JSON body and decodes the JSON response
// into out (if non-nil), returning the status code.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// karateEdges is Zachary's karate club, a standard small graph with
// interesting ego-betweenness structure.
func karateEdges() [][2]int32 {
	return [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8}, {0, 10},
		{0, 11}, {0, 12}, {0, 13}, {0, 17}, {0, 19}, {0, 21}, {0, 31}, {1, 2},
		{1, 3}, {1, 7}, {1, 13}, {1, 17}, {1, 19}, {1, 21}, {1, 30}, {2, 3},
		{2, 7}, {2, 8}, {2, 9}, {2, 13}, {2, 27}, {2, 28}, {2, 32}, {3, 7},
		{3, 12}, {3, 13}, {4, 6}, {4, 10}, {5, 6}, {5, 10}, {5, 16}, {6, 16},
		{8, 30}, {8, 32}, {8, 33}, {9, 33}, {13, 33}, {14, 32}, {14, 33},
		{15, 32}, {15, 33}, {18, 32}, {18, 33}, {19, 33}, {20, 32}, {20, 33},
		{22, 32}, {22, 33}, {23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33},
		{24, 25}, {24, 27}, {24, 31}, {25, 31}, {26, 29}, {26, 33}, {27, 33},
		{28, 31}, {28, 33}, {29, 32}, {29, 33}, {30, 32}, {30, 33}, {31, 32},
		{31, 33}, {32, 33},
	}
}

// expectTopK checks a served top-k against a fresh from-scratch ComputeAll:
// the score sequence must equal the exact ranking's, and every returned
// vertex must carry its true exact CB. Vertex identity is only pinned where
// scores are untied (ties at the k-th place may validly resolve either way).
func expectTopK(t *testing.T, got []ego.Result, edges [][2]int32, k int) {
	t.Helper()
	g, err := graph.FromEdges(-1, edges)
	if err != nil {
		t.Fatal(err)
	}
	all := ego.ComputeAll(g)
	want := ego.TopKExact(g, k)
	if len(got) != len(want) {
		t.Fatalf("top-k length: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].CB-want[i].CB) > 1e-9 {
			t.Errorf("top-k[%d]: score %.6f, exact ranking has %.6f", i, got[i].CB, want[i].CB)
		}
		if math.Abs(got[i].CB-all[got[i].V]) > 1e-9 {
			t.Errorf("top-k[%d]: v=%d served with cb=%.6f but its exact cb is %.6f",
				i, got[i].V, got[i].CB, all[got[i].V])
		}
	}
}

// TestServeLifecycle drives the full workflow: load a graph, query top-k,
// stream in edge updates, observe the updated (and still exact) top-k, and
// watch the cache accounting across the snapshot swap.
func TestServeLifecycle(t *testing.T) {
	ts := newTestServer(t)
	edges := karateEdges()

	var info GraphInfo
	if code := doJSON(t, "POST", ts.URL+"/graphs", LoadRequest{Name: "karate", Edges: edges}, &info); code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
	if info.N != 34 || info.M != 78 || info.Epoch != 1 || info.Mode != ModeLocal {
		t.Fatalf("load: unexpected info %+v", info)
	}

	// Initial top-k must match a fresh exact computation.
	var tk TopKResult
	if code := doJSON(t, "GET", ts.URL+"/graphs/karate/topk?k=5", nil, &tk); code != http.StatusOK {
		t.Fatalf("topk: status %d", code)
	}
	if tk.Cached || tk.Epoch != 1 || tk.Algo != AlgoScores {
		t.Fatalf("topk: unexpected envelope %+v", tk)
	}
	expectTopK(t, tk.Results, edges, 5)

	// The identical query again must be a cache hit.
	if doJSON(t, "GET", ts.URL+"/graphs/karate/topk?k=5", nil, &tk); !tk.Cached {
		t.Fatal("second identical topk was not served from cache")
	}
	var st GraphStats
	doJSON(t, "GET", ts.URL+"/graphs/karate/stats", nil, &st)
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("cache accounting: hits=%d misses=%d, want 1/1", st.CacheHits, st.CacheMisses)
	}

	// Stream in a batch: two inserts (one of which is a duplicate and must
	// be reported, not applied) ...
	ins := [][2]int32{{16, 33}, {0, 1}, {4, 24}}
	var up UpdateResult
	if code := doJSON(t, "POST", ts.URL+"/graphs/karate/edges", EdgeBatch{Edges: ins}, &up); code != http.StatusOK {
		t.Fatalf("insert batch: status %d", code)
	}
	if up.Applied != 2 || len(up.Errors) != 1 || up.Errors[0].Edge != [2]int32{0, 1} {
		t.Fatalf("insert batch: unexpected result %+v", up)
	}
	if up.Epoch != 2 {
		t.Fatalf("insert batch: epoch %d, want 2", up.Epoch)
	}
	// ... and a deletion.
	if doJSON(t, "DELETE", ts.URL+"/graphs/karate/edges", EdgeBatch{Edges: [][2]int32{{0, 2}}}, &up); up.Applied != 1 || up.Epoch != 3 {
		t.Fatalf("delete batch: unexpected result %+v", up)
	}

	// The updated graph, recomputed from scratch, is the reference.
	edges = append(edges, [2]int32{16, 33}, [2]int32{4, 24})
	edges = removeEdge(edges, [2]int32{0, 2})

	// The post-update top-k must match a fresh exact computation, through
	// every serving algorithm.
	for _, algo := range []string{AlgoScores, AlgoOpt, AlgoBase} {
		url := fmt.Sprintf("%s/graphs/karate/topk?k=5&algo=%s", ts.URL, algo)
		if code := doJSON(t, "GET", url, nil, &tk); code != http.StatusOK {
			t.Fatalf("topk %s: status %d", algo, code)
		}
		if tk.Epoch != 3 || tk.Cached {
			t.Fatalf("topk %s: unexpected envelope %+v", algo, tk)
		}
		expectTopK(t, tk.Results, edges, 5)
	}

	// Per-vertex query agrees with direct computation on the same graph.
	g, err := graph.FromEdges(-1, edges)
	if err != nil {
		t.Fatal(err)
	}
	var vr VertexResult
	if code := doJSON(t, "GET", ts.URL+"/graphs/karate/vertices/33/ego-betweenness", nil, &vr); code != http.StatusOK {
		t.Fatalf("vertex: status %d", code)
	}
	if want := ego.EgoBetweenness(g, 33, nil); math.Abs(vr.CB-want) > 1e-9 {
		t.Errorf("vertex 33: got %.6f want %.6f", vr.CB, want)
	}
	if vr.Degree != g.Degree(33) || vr.Bound != ego.StaticUB(g.Degree(33)) {
		t.Errorf("vertex 33: unexpected payload %+v", vr)
	}

	// Stats reflect the structural state and the accounting so far.
	doJSON(t, "GET", ts.URL+"/graphs/karate/stats", nil, &st)
	if st.Inserts != 2 || st.Deletes != 1 || st.Epoch != 3 {
		t.Fatalf("stats: unexpected %+v", st)
	}
	if st.M != int64(len(edges)) {
		t.Fatalf("stats: m=%d want %d", st.M, len(edges))
	}
}

func removeEdge(edges [][2]int32, e [2]int32) [][2]int32 {
	out := edges[:0]
	for _, x := range edges {
		if x != e {
			out = append(out, x)
		}
	}
	return out
}

// TestServeLazyMode exercises a lazy-maintained graph: top-k served from the
// LazyTopK result set stays exact across updates, and larger k falls back to
// snapshot search.
func TestServeLazyMode(t *testing.T) {
	ts := newTestServer(t)
	edges := karateEdges()

	var info GraphInfo
	if code := doJSON(t, "POST", ts.URL+"/graphs", LoadRequest{Name: "kz", Edges: edges, Mode: ModeLazy, K: 8}, &info); code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
	if info.Mode != ModeLazy || info.LazyK != 8 {
		t.Fatalf("load: unexpected info %+v", info)
	}

	var tk TopKResult
	doJSON(t, "GET", ts.URL+"/graphs/kz/topk?k=8", nil, &tk)
	if tk.Algo != AlgoLazy {
		t.Fatalf("auto algo in lazy mode: got %q", tk.Algo)
	}
	expectTopK(t, tk.Results, edges, 8)

	var up UpdateResult
	doJSON(t, "POST", ts.URL+"/graphs/kz/edges", EdgeBatch{Edges: [][2]int32{{9, 13}, {16, 24}}}, &up)
	if up.Applied != 2 {
		t.Fatalf("insert: %+v", up)
	}
	edges = append(edges, [2]int32{9, 13}, [2]int32{16, 24})

	doJSON(t, "GET", ts.URL+"/graphs/kz/topk?k=8", nil, &tk)
	expectTopK(t, tk.Results, edges, 8)

	// k beyond the maintained set falls back to snapshot OptBSearch.
	doJSON(t, "GET", ts.URL+"/graphs/kz/topk?k=12", nil, &tk)
	if tk.Algo != AlgoOpt {
		t.Fatalf("fallback algo: got %q", tk.Algo)
	}
	expectTopK(t, tk.Results, edges, 12)

	// Explicitly requesting the lazy set with an oversized k is an error.
	var errResp map[string]string
	if code := doJSON(t, "GET", ts.URL+"/graphs/kz/topk?k=12&algo=lazy", nil, &errResp); code != http.StatusBadRequest {
		t.Fatalf("oversized lazy k: status %d", code)
	}
}

// TestServeGeneratorAndDataset loads via the generator and dataset sources.
func TestServeGeneratorAndDataset(t *testing.T) {
	ts := newTestServer(t)

	var info GraphInfo
	req := LoadRequest{Name: "ba", Generator: &GeneratorSpec{Model: "ba", N: 500, MPer: 3, Seed: 42}}
	if code := doJSON(t, "POST", ts.URL+"/graphs", req, &info); code != http.StatusCreated {
		t.Fatalf("generator load: status %d", code)
	}
	if info.N != 500 {
		t.Fatalf("generator load: n=%d", info.N)
	}

	var tk TopKResult
	if code := doJSON(t, "GET", ts.URL+"/graphs/ba/topk?k=10&algo=opt&theta=1.1", nil, &tk); code != http.StatusOK {
		t.Fatalf("topk: status %d", code)
	}
	if tk.Theta != 1.1 || len(tk.Results) != 10 {
		t.Fatalf("topk: unexpected %+v", tk)
	}

	var list struct {
		Graphs []GraphInfo `json:"graphs"`
	}
	doJSON(t, "GET", ts.URL+"/graphs", nil, &list)
	if len(list.Graphs) != 1 || list.Graphs[0].Name != "ba" {
		t.Fatalf("list: %+v", list)
	}

	if code := doJSON(t, "DELETE", ts.URL+"/graphs/ba", nil, nil); code != http.StatusOK {
		t.Fatalf("remove: status %d", code)
	}
	if ts2 := doJSON(t, "GET", ts.URL+"/graphs/ba/topk?k=3", nil, nil); ts2 != http.StatusNotFound {
		t.Fatalf("query after remove: status %d", ts2)
	}
}

// TestServeErrors covers the failure surface: bad bodies, duplicate names,
// unknown graphs/algos/vertices, empty batches.
func TestServeErrors(t *testing.T) {
	ts := newTestServer(t)

	post := func(body any) int { return doJSON(t, "POST", ts.URL+"/graphs", body, nil) }
	if code := post(map[string]any{"name": "x"}); code != http.StatusBadRequest {
		t.Errorf("no source: status %d", code)
	}
	if code := post(LoadRequest{Name: "", Edges: [][2]int32{{0, 1}}}); code != http.StatusBadRequest {
		t.Errorf("empty name: status %d", code)
	}
	if code := post(LoadRequest{Name: "x", Edges: [][2]int32{{0, 1}}, Mode: "bogus"}); code != http.StatusBadRequest {
		t.Errorf("bad mode: status %d", code)
	}
	if code := post(LoadRequest{Name: "g", Edges: [][2]int32{{0, 1}, {1, 2}}}); code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
	if code := post(LoadRequest{Name: "g", Edges: [][2]int32{{0, 1}}}); code != http.StatusConflict {
		t.Errorf("duplicate name: status %d", code)
	}

	if code := doJSON(t, "GET", ts.URL+"/graphs/nope/topk", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown graph: status %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/graphs/g/topk?k=0", nil, nil); code != http.StatusBadRequest {
		t.Errorf("k=0: status %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/graphs/g/topk?algo=bogus", nil, nil); code != http.StatusBadRequest {
		t.Errorf("bad algo: status %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/graphs/g/topk?theta=0.5", nil, nil); code != http.StatusBadRequest {
		t.Errorf("bad theta: status %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/graphs/g/vertices/99/ego-betweenness", nil, nil); code != http.StatusBadRequest {
		t.Errorf("vertex out of range: status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/graphs/g/edges", EdgeBatch{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", code)
	}

	// A request must not be able to turn into an absurd allocation: huge k
	// is clamped to the vertex count, and an edge naming a far-away vertex
	// id fails per-edge instead of growing the graph to it.
	var tk TopKResult
	if code := doJSON(t, "GET", ts.URL+"/graphs/g/topk?k=2000000000", nil, &tk); code != http.StatusOK {
		t.Errorf("huge k: status %d", code)
	} else if tk.K != 3 || len(tk.Results) != 3 {
		t.Errorf("huge k: got k=%d with %d results, want clamp to 3", tk.K, len(tk.Results))
	}
	var up UpdateResult
	doJSON(t, "POST", ts.URL+"/graphs/g/edges", EdgeBatch{Edges: [][2]int32{{0, 2000000000}}}, &up)
	if up.Applied != 0 || len(up.Errors) != 1 || !strings.Contains(up.Errors[0].Error, "growth limit") {
		t.Errorf("far vertex id: %+v", up)
	}
	if code := post(LoadRequest{Name: "big", Edges: [][2]int32{{0, 2000000000}}}); code != http.StatusBadRequest {
		t.Errorf("far vertex id in load: status %d", code)
	}
	if code := post(LoadRequest{Name: "neg", Generator: &GeneratorSpec{Model: "er", N: -2, M: 1}}); code != http.StatusBadRequest {
		t.Errorf("negative generator n: status %d", code)
	}
	if code := post(LoadRequest{Name: "negm", Generator: &GeneratorSpec{Model: "ba", N: 10, MPer: -1}}); code != http.StatusBadRequest {
		t.Errorf("negative generator mper: status %d", code)
	}
	if code := post(LoadRequest{Name: "huge", Generator: &GeneratorSpec{Model: "ba", N: 1000, MPer: 2000000000}}); code != http.StatusBadRequest {
		t.Errorf("oversized generator edge budget: status %d", code)
	}

	var health map[string]any
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &health); code != http.StatusOK || health["status"] != "ok" {
		t.Errorf("healthz: status %d payload %v", code, health)
	}
}

// TestEpochNotBumpedOnNoopBatch: a batch where every edge fails must not
// publish a new snapshot (the cache survives).
func TestEpochNotBumpedOnNoopBatch(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/graphs", LoadRequest{Name: "g", Edges: [][2]int32{{0, 1}, {1, 2}}}, nil)

	var tk TopKResult
	doJSON(t, "GET", ts.URL+"/graphs/g/topk?k=2", nil, &tk)

	var up UpdateResult
	doJSON(t, "POST", ts.URL+"/graphs/g/edges", EdgeBatch{Edges: [][2]int32{{0, 1}}}, &up)
	if up.Applied != 0 || up.Epoch != 1 || len(up.Errors) != 1 {
		t.Fatalf("noop batch: %+v", up)
	}
	doJSON(t, "GET", ts.URL+"/graphs/g/topk?k=2", nil, &tk)
	if !tk.Cached || tk.Epoch != 1 {
		t.Fatalf("cache should survive a no-op batch: %+v", tk)
	}
}
