// Package ego implements the paper's primary contribution: exact
// ego-betweenness computation and the two top-k search algorithms
// BaseBSearch (Algorithm 1) and OptBSearch (Algorithm 2/3).
//
// # The quantity
//
// Every pair of neighbors u, v of a vertex p is at distance ≤ 2 inside the
// ego network GE(p) (p itself links them), so Definition 2 collapses to
//
//	CB(p) = Σ over pairs {u,v} ⊆ N(p), (u,v) ∉ E of 1 / (c_p(u,v) + 1)
//
// where c_p(u,v) = |N(u) ∩ N(v) ∩ N(p)| counts the "connectors" — common
// neighbors of u and v other than p that lie inside N(p). Adjacent pairs
// contribute 0, pairs with no connector contribute exactly 1.
//
// # The evidence discipline
//
// All algorithms share one mechanism: per-vertex evidence maps S_u
// (pairmap.Map) filled by processing undirected edges exactly once each.
// Processing edge (a, b) with common-neighbor set C = N(a) ∩ N(b):
//
//   - marker: every w ∈ C learns that pair (a, b) is adjacent in GE(w);
//   - credits: every non-adjacent pair {p, q} ⊆ C gains one connector in
//     GE(a) (namely b) and one in GE(b) (namely a).
//
// A credit (center, pair, connector) is produced only by the edge
// (center, connector), so processing every edge of GE(u) at most once makes
// S_u exact; processing only some of them leaves S_u a partial lower bound,
// which is precisely the "identified information" Lemma 3 turns into the
// dynamic upper bound of OptBSearch. The same scoring function therefore
// computes both the exact CB (complete map) and the dynamic bound ũb
// (partial map).
package ego

import (
	"slices"

	"repro/internal/graph"
	"repro/internal/nbr"
	"repro/internal/pairmap"
)

// Result is a vertex with its exact ego-betweenness. The JSON form is what
// the serving API (internal/server) returns.
type Result struct {
	V  int32   `json:"v"`
	CB float64 `json:"cb"`
}

// StaticUB is the Lemma 2 upper bound ub(p) = d(d−1)/2: the value of CB(p)
// if every neighbor pair were non-adjacent with no connectors.
func StaticUB(d int32) float64 {
	return float64(d) * float64(d-1) / 2
}

// ScoreEvidence evaluates the CB formula over an evidence map for a vertex of
// degree d. With a complete map this is the exact ego-betweenness; with a
// partial map it is the Lemma 3 dynamic upper bound ũb. A nil map means no
// evidence and yields the Lemma 2 static bound.
//
// Derivation: start from d(d−1)/2 (every pair contributing 1), subtract 1
// for each identified adjacent pair (marker), and replace 1 by 1/(c+1) for
// each pair with c identified connectors.
// The evidence terms are folded through scoreTerms, so the returned value
// is a function of the evidence content alone — independent of hash-table
// iteration order and hence of the internal vertex labeling. This is what
// lets degree-relabeled serving return bit-identical scores to unrelabeled
// serving.
func ScoreEvidence(d int32, s *pairmap.Map) float64 {
	return StaticUB(d) + scoreTerms(s)
}

// scoreTerms evaluates the evidence adjustments of a map: −1 per marker
// (adjacent pair) and 1/(c+1) − 1 per pair with c identified connectors.
// The entries are first accumulated into an exact integer histogram over
// the connector counts, and the float sum then runs over the histogram in
// ascending-c order — a canonical evaluation order, so two maps holding
// the same evidence under different vertex labelings score bitwise
// identically. A nil map contributes nothing.
func scoreTerms(s *pairmap.Map) float64 {
	if s == nil {
		return 0
	}
	var markers int64
	var small [64]int64
	var big map[int32]int64
	s.Iterate(func(_ uint64, val int32) bool {
		switch {
		case val == pairmap.Marker:
			markers++
		case val < int32(len(small)):
			small[val]++
		default:
			if big == nil {
				big = make(map[int32]int64)
			}
			big[val]++
		}
		return true
	})
	adj := -float64(markers)
	for c, cnt := range small {
		if cnt != 0 {
			adj += float64(cnt) * (1/float64(c+1) - 1)
		}
	}
	if big != nil {
		cs := make([]int32, 0, len(big))
		for c := range big {
			cs = append(cs, c)
		}
		slices.Sort(cs)
		for _, c := range cs {
			adj += float64(big[c]) * (1/float64(c+1) - 1)
		}
	}
	return adj
}

// evidence is the shared engine: lazily allocated S maps, the global
// processed-edge set, and scratch buffers. Both search algorithms and the
// all-vertices computation drive it.
type evidence struct {
	g         graph.View
	maps      []*pairmap.Map
	processed *pairmap.Set
	done      []bool // exact CB already extracted; skip further credits
	comm      []int32
	comm2     []int32

	// Counters for the experiment harness (Table II, ablations).
	EdgesProcessed int64
	CreditOps      int64
	MarkerOps      int64
}

func newEvidence(g graph.View) *evidence {
	return &evidence{
		g:         g,
		maps:      make([]*pairmap.Map, g.NumVertices()),
		processed: pairmap.NewSet(1024),
		done:      make([]bool, g.NumVertices()),
	}
}

// mapFor returns the evidence map of v, allocating it on first use.
func (e *evidence) mapFor(v int32) *pairmap.Map {
	m := e.maps[v]
	if m == nil {
		m = pairmap.NewWithCapacity(int(e.g.Degree(v)))
		e.maps[v] = m
	}
	return m
}

// applyEdge applies the markers and credits of edge (a, b) whose common
// neighborhood is comm. Callers must have claimed the edge in e.processed.
func (e *evidence) applyEdge(a, b int32, comm []int32) {
	e.EdgesProcessed++
	key := pairmap.Key(a, b)
	for _, w := range comm {
		if !e.done[w] {
			e.mapFor(w).SetMarker(key)
			e.MarkerOps++
		}
	}
	creditA := !e.done[a]
	creditB := !e.done[b]
	if !creditA && !creditB {
		return
	}
	for i := 0; i < len(comm); i++ {
		for j := i + 1; j < len(comm); j++ {
			p, q := comm[i], comm[j]
			if e.g.HasEdge(p, q) {
				continue
			}
			pk := pairmap.Key(p, q)
			if creditA {
				e.mapFor(a).Add(pk, 1)
				e.CreditOps++
			}
			if creditB {
				e.mapFor(b).Add(pk, 1)
				e.CreditOps++
			}
		}
	}
}

// ensureEgo processes every not-yet-processed edge of GE(u): the d(u) edges
// incident to u and the edges between u's neighbors. Afterwards S_u is exact
// (see the package comment), so ScoreEvidence(d(u), S_u) = CB(u).
//
// The center's neighborhood N(u) is intersected against every neighbor's
// list, so strategy selection runs through nbr.ChooseHub: hub centers are
// marked once into a pooled bitset register and each scan probes it in
// O(d(v)); hub×hub pairs additionally mark the neighbor into a second
// register and intersect word-parallel (AndInto), which also accelerates
// the neighbor's ego-internal edge scans; smaller centers stay on the
// adaptive merge/gallop kernel, which needs no setup. Every kernel emits
// the identical ascending set, so routing never affects any score.
func (e *evidence) ensureEgo(u int32) {
	nu := e.g.Neighbors(u)
	var reg, reg2 *nbr.Register
	if nbr.ChooseHub(len(nu), 0) == nbr.StrategyBitset {
		reg = nbr.AcquireRegister(e.g.NumVertices())
		reg.Mark(nu)
		defer nbr.ReleaseRegister(reg)
		reg2 = nbr.AcquireRegister(e.g.NumVertices())
		defer nbr.ReleaseRegister(reg2)
	}
	for _, v := range nu {
		// T = N(v) ∩ N(u) serves two roles: it is the common
		// neighborhood of edge (u, v), and it lists the ego-internal
		// edges (v, w).
		nv := e.g.Neighbors(v)
		vMarked := false
		switch {
		case reg != nil && nbr.ChooseHub(len(nu), len(nv)) == nbr.StrategyWord:
			reg2.Unmark()
			reg2.Mark(nv)
			vMarked = true
			// Word AND when the summary scan is cheaper than probing
			// N(v) element-by-element; the spans shrink with relabeling.
			minSpan := reg.SpanWords()
			if s2 := reg2.SpanWords(); s2 < minSpan {
				minSpan = s2
			}
			if int(minSpan>>6) <= len(nv) {
				e.comm = reg.AndInto(e.comm[:0], reg2)
			} else {
				e.comm = reg.IntersectInto(e.comm[:0], nv)
			}
		case reg != nil:
			e.comm = reg.IntersectInto(e.comm[:0], nv)
		default:
			e.comm = nbr.IntersectInto(e.comm[:0], nv, nu)
		}
		if e.processed.Insert(pairmap.Key(u, v)) {
			e.applyEdge(u, v, e.comm)
		}
		for _, w := range e.comm {
			if w > v && e.processed.Insert(pairmap.Key(v, w)) {
				if vMarked {
					e.comm2 = reg2.IntersectInto(e.comm2[:0], e.g.Neighbors(w))
				} else {
					e.comm2 = nbr.CommonInto(e.comm2[:0], e.g, v, w)
				}
				e.applyEdge(v, w, e.comm2)
			}
		}
	}
}

// finish extracts the exact CB(u) — S_u must be complete — and releases the
// map, since no later computation reads it.
func (e *evidence) finish(u int32) float64 {
	cb := ScoreEvidence(e.g.Degree(u), e.maps[u])
	e.done[u] = true
	e.maps[u] = nil
	return cb
}
