package approx

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ego"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestEverettBorgattiOracle cross-checks the closed-form oracle against
// the evidence engine and the BFS reference on many random graphs — three
// independent implementations agreeing on every vertex.
func TestEverettBorgattiOracle(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		g := gen.Random(seed, 40)
		all := ego.ComputeAll(g)
		for v := int32(0); v < g.NumVertices(); v++ {
			if got := EverettBorgatti(g, v); math.Abs(got-all[v]) > 1e-9 {
				t.Fatalf("seed %d vertex %d: oracle %v, ComputeAll %v", seed, v, got, all[v])
			}
			if got, ref := EverettBorgatti(g, v), ego.ReferenceBFS(g, v); math.Abs(got-ref) > 1e-9 {
				t.Fatalf("seed %d vertex %d: oracle %v, BFS reference %v", seed, v, got, ref)
			}
		}
	}
}

// TestEverettBorgattiOnGenerators spot-checks the oracle on each
// generator family at a sampled set of vertices.
func TestEverettBorgattiOnGenerators(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"ba":  gen.BarabasiAlbert(300, 3, 2),
		"aff": gen.Affiliation(300, 120, 5, 1, 5),
		"ws":  gen.WattsStrogatz(300, 6, 0.1, 4),
	}
	for name, g := range graphs {
		all := ego.ComputeAll(g)
		for v := int32(0); v < g.NumVertices(); v += 13 {
			if got := EverettBorgatti(g, v); math.Abs(got-all[v]) > 1e-9 {
				t.Errorf("%s vertex %d: oracle %v, ComputeAll %v", name, v, got, all[v])
			}
		}
	}
}

// TestTopKExactOnSmallGraphs: when every vertex's pair count fits the
// Hoeffding budget the whole pool resolves on the exact path, so approx
// must equal the exhaustive top-k score for score.
func TestTopKExactOnSmallGraphs(t *testing.T) {
	// maxN = 30 keeps every pair count ≤ 29·28/2 = 406, under the default
	// Hoeffding budget of ~738, so no vertex can take the sampling path.
	for seed := uint64(0); seed < 30; seed++ {
		g := gen.Random(seed, 30)
		for _, k := range []int{1, 3, 10} {
			want := ego.TopKExact(g, k)
			got, st := TopK(g, k, Options{})
			if st.Sampled != 0 {
				t.Fatalf("seed %d: sampled %d vertices on a small graph", seed, st.Sampled)
			}
			if st.EpsAchieved != 0 {
				t.Fatalf("seed %d: eps achieved %v on all-exact path", seed, st.EpsAchieved)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d k=%d: %d results, want %d", seed, k, len(got), len(want))
			}
			for i := range want {
				if math.Abs(got[i].CB-want[i].CB) > 1e-9 {
					t.Fatalf("seed %d k=%d rank %d: %v, want %v", seed, k, i, got[i].CB, want[i].CB)
				}
			}
		}
	}
}

// TestTopKErrorBounds verifies the (ε, δ) contract against exact scores on
// a hub-heavy graph where sampling actually engages: every returned
// estimate must lie within ε·ub(p) of the true CB(p). The run is
// deterministic (fixed seed), so a pass is stable, and the per-vertex
// failure probability δ = 0.05 makes a >k-wide systematic violation
// astronomically unlikely to have been baked in.
func TestTopKErrorBounds(t *testing.T) {
	g := gen.BarabasiAlbert(1500, 12, 7)
	exact := ego.ComputeAll(g)
	for _, eps := range []float64{0.02, 0.1} {
		res, st := TopK(g, 25, Options{Eps: eps, Seed: 42})
		if st.Sampled == 0 {
			t.Fatalf("eps=%v: estimator never sampled (max degree %d)", eps, g.MaxDegree())
		}
		if st.EpsAchieved > eps+1e-12 {
			t.Fatalf("eps=%v: achieved %v", eps, st.EpsAchieved)
		}
		bad := 0
		for _, r := range res {
			tol := eps * ego.StaticUB(g.Degree(r.V))
			if math.Abs(r.CB-exact[r.V]) > tol+1e-9 {
				bad++
			}
		}
		if bad > 0 {
			t.Fatalf("eps=%v: %d/%d returned estimates outside ε·ub", eps, bad, len(res))
		}
	}
}

// TestTopKDeterministicAcrossWorkersAndViews pins the determinism
// contract: for a fixed seed, results and sample counts are bit-identical
// whatever the worker count and whichever view flavor (frozen CSR,
// overlay, dynamic graph) serves the same adjacency.
func TestTopKDeterministicAcrossWorkersAndViews(t *testing.T) {
	full := gen.BarabasiAlbert(800, 10, 3)

	// Overlay: freeze a base missing the highest-vertex edges, then
	// re-insert them through a DynGraph delta.
	var baseEdges, extraEdges [][2]int32
	graph.EachEdgeIn(full, func(u, v int32) bool {
		if v >= 700 {
			extraEdges = append(extraEdges, [2]int32{u, v})
		} else {
			baseEdges = append(baseEdges, [2]int32{u, v})
		}
		return true
	})
	base := graph.MustFromEdges(full.NumVertices(), baseEdges)
	dyn := graph.DynFromGraph(base)
	for _, e := range extraEdges {
		if err := dyn.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	overlay := dyn.FreezeOverlay(base)

	// Fully dynamic copy.
	dyn2 := graph.DynFromGraph(full)

	opt := Options{Seed: 99, Workers: 1}
	want, wantSt := TopK(full, 20, opt)
	for name, v := range map[string]graph.View{"overlay": overlay, "dyn": dyn2, "frozen-again": full} {
		for _, workers := range []int{1, 3, 8} {
			o := opt
			o.Workers = workers
			got, st := TopK(v, 20, o)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s workers=%d: results diverge\n got %v\nwant %v", name, workers, got, want)
			}
			if st.Samples != wantSt.Samples || st.Candidates != wantSt.Candidates {
				t.Fatalf("%s workers=%d: stats diverge: %+v vs %+v", name, workers, st, wantSt)
			}
		}
	}

	// A different seed must be allowed to answer differently (same top
	// set, but sample streams — and hence estimates — move).
	other, _ := TopK(full, 20, Options{Seed: 100})
	if reflect.DeepEqual(other, want) {
		t.Log("seed change produced identical estimates (possible but unlikely)")
	}
}

// TestTopKRecallSanity: on an affiliation graph (the bench family) a tight
// ε must recover most of the exact top-k.
func TestTopKRecallSanity(t *testing.T) {
	g := gen.Affiliation(2500, 1100, 5.5, 1, 9)
	exact := ego.TopKExact(g, 50)
	res, _ := TopK(g, 50, Options{Eps: 0.02, Seed: 1})
	if r := ego.Overlap(exact, res); r < 0.8 {
		t.Fatalf("recall@50 = %v, want ≥ 0.8", r)
	}
}

// TestTopKEdgeCases covers degenerate inputs.
func TestTopKEdgeCases(t *testing.T) {
	empty := graph.MustFromEdges(0, nil)
	if res, _ := TopK(empty, 5, Options{}); len(res) != 0 {
		t.Fatalf("empty graph: %v", res)
	}
	g := gen.Random(3, 30)
	if res, _ := TopK(g, 0, Options{}); len(res) != 0 {
		t.Fatalf("k=0: %v", res)
	}
	n := int(g.NumVertices())
	res, st := TopK(g, n+10, Options{})
	if len(res) != n {
		t.Fatalf("k>n returned %d results, want %d", len(res), n)
	}
	if st.Candidates != n {
		t.Fatalf("k>n candidates %d, want %d", st.Candidates, n)
	}
}

// TestEscalationSoundness builds a graph whose top hub hides behind many
// near-ties so the initial pool alone cannot certify the cut, and checks
// the escalation still finds the true top vertices.
func TestEscalationSoundness(t *testing.T) {
	g := gen.ChungLu(2000, 2.1, 8, 400, 11)
	exact := ego.TopKExact(g, 10)
	res, st := TopK(g, 10, Options{Eps: 0.02, Seed: 5})
	if r := ego.Overlap(exact, res); r < 0.8 {
		t.Fatalf("recall@10 = %v (stats %+v)", r, st)
	}
	if st.Candidates < 10 {
		t.Fatalf("candidates %d < k", st.Candidates)
	}
}

// BenchmarkTopK prices an approx k=100 query at the frontier ε points on
// a dataset-shaped skewed graph (the prbench approx rows' shape).
func BenchmarkTopK(b *testing.B) {
	g := dataset.MustLoad("dblp")
	for _, eps := range []float64{0.05, 0.1} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				TopK(g, 100, Options{Eps: eps})
			}
		})
	}
}
