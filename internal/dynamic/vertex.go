package dynamic

import "fmt"

// Vertex-level updates. Section IV of the paper treats vertex insertion and
// deletion as a series of edge insertions and deletions; these helpers
// package that series with the right ordering and error semantics.

// InsertVertex adds a new vertex connected to the given neighbors and
// returns its id. The neighbor edges are applied one at a time through
// LocalInsert, so all affected ego-betweennesses stay exact.
func (m *Maintainer) InsertVertex(neighbors []int32) (int32, error) {
	v := m.g.NumVertices()
	for _, u := range neighbors {
		if u == v {
			return -1, fmt.Errorf("dynamic: vertex cannot neighbor itself")
		}
	}
	if len(neighbors) == 0 {
		// An isolated vertex: just grow the state.
		m.g.EnsureVertices(v + 1)
		m.growTo(v + 1)
		return v, nil
	}
	for i, u := range neighbors {
		if err := m.InsertEdge(v, u); err != nil {
			// Roll back the partial series so the maintainer stays
			// consistent.
			for _, w := range neighbors[:i] {
				_ = m.DeleteEdge(v, w)
			}
			return -1, err
		}
	}
	return v, nil
}

// DeleteVertex removes every edge incident to v, leaving it isolated with
// CB(v) = 0. Vertex ids are stable, so v itself remains valid (and can be
// reconnected later).
func (m *Maintainer) DeleteVertex(v int32) error {
	if v < 0 || v >= m.g.NumVertices() {
		return fmt.Errorf("dynamic: vertex %d out of range", v)
	}
	nbrs := append([]int32(nil), m.g.Neighbors(v)...)
	for _, u := range nbrs {
		if err := m.DeleteEdge(v, u); err != nil {
			return err
		}
	}
	return nil
}

// InsertVertex adds a new vertex with the given neighbors to the lazily
// maintained graph and returns its id.
func (lt *LazyTopK) InsertVertex(neighbors []int32) (int32, error) {
	v := lt.g.NumVertices()
	for _, u := range neighbors {
		if u == v {
			return -1, fmt.Errorf("dynamic: vertex cannot neighbor itself")
		}
	}
	if len(neighbors) == 0 {
		lt.g.EnsureVertices(v + 1)
		lt.growTo(v + 1)
		return v, nil
	}
	for i, u := range neighbors {
		if err := lt.InsertEdge(v, u); err != nil {
			for _, w := range neighbors[:i] {
				_ = lt.DeleteEdge(v, w)
			}
			return -1, err
		}
	}
	return v, nil
}

// DeleteVertex disconnects v entirely under lazy maintenance.
func (lt *LazyTopK) DeleteVertex(v int32) error {
	if v < 0 || v >= lt.g.NumVertices() {
		return fmt.Errorf("dynamic: vertex %d out of range", v)
	}
	nbrs := append([]int32(nil), lt.g.Neighbors(v)...)
	for _, u := range nbrs {
		if err := lt.DeleteEdge(v, u); err != nil {
			return err
		}
	}
	return nil
}
