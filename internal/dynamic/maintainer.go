package dynamic

import (
	"fmt"

	"repro/internal/ego"
	"repro/internal/graph"
	"repro/internal/nbr"
	"repro/internal/pairmap"
)

// Maintainer keeps exact ego-betweennesses for every vertex under edge
// updates (the paper's LocalInsert / LocalDelete).
type Maintainer struct {
	g    *graph.DynGraph
	s    []*pairmap.Map // exact evidence maps, lazily allocated
	cb   []float64
	comm []int32       // scratch: common neighborhoods
	aux  []int32       // scratch: secondary intersections
	reg  *nbr.Register // scratch: L-membership bitset for endpoint scans

	// Dirty-score tracking for copy-on-write snapshot publication: the
	// vertices whose cb actually moved since the last TakeDirtyScores,
	// deduplicated. Every cb mutation goes through adjust, so a drain that
	// changed no score publishes no score copies at all.
	dirtyCB  []int32
	dirtySet []bool

	// Stats counts the work done, for the Fig. 8 analysis.
	Stats MaintainerStats
}

// adjust applies a delta to v's maintained score, recording v as dirty so
// the serving layer's chunked copy-on-write score vector copies only the
// chunks that actually changed. A zero delta is a no-op.
func (m *Maintainer) adjust(v int32, d float64) {
	if d == 0 {
		return
	}
	m.cb[v] += d
	if !m.dirtySet[v] {
		m.dirtySet[v] = true
		m.dirtyCB = append(m.dirtyCB, v)
	}
}

// TakeDirtyScores returns the vertices whose maintained score changed since
// the last call (deduplicated) and resets the tracking. The caller owns the
// returned slice.
func (m *Maintainer) TakeDirtyScores() []int32 {
	out := m.dirtyCB
	for _, v := range out {
		m.dirtySet[v] = false
	}
	m.dirtyCB = nil
	return out
}

// MaintainerStats tallies update work.
type MaintainerStats struct {
	Inserts       int64
	Deletes       int64
	TouchedPairs  int64 // evidence-map entries visited or changed
	AffectedVerts int64 // |{u, v} ∪ L| summed over updates
}

// NewMaintainer builds the maintainer from a static snapshot, computing all
// ego-betweennesses and taking ownership of the evidence maps.
func NewMaintainer(g *graph.Graph) *Maintainer {
	cb, maps := ego.ComputeAllWithMaps(g)
	return NewMaintainerFromScores(g, cb, maps)
}

// NewMaintainerFromScores builds the maintainer from an already-computed
// score vector and evidence maps (for example the parallel EdgePEBW
// engine's output), taking ownership of both. len(cb) and len(maps) must
// equal g.NumVertices().
func NewMaintainerFromScores(g *graph.Graph, cb []float64, maps []*pairmap.Map) *Maintainer {
	return &Maintainer{
		g: graph.DynFromGraph(g), s: maps, cb: cb,
		reg:      nbr.NewRegister(g.NumVertices()),
		dirtySet: make([]bool, g.NumVertices()),
	}
}

// Graph exposes the maintained graph (read-only use).
func (m *Maintainer) Graph() *graph.DynGraph { return m.g }

// CB returns the current exact ego-betweenness of v.
func (m *Maintainer) CB(v int32) float64 { return m.cb[v] }

// All returns the current exact ego-betweennesses (shared slice; read-only).
func (m *Maintainer) All() []float64 { return m.cb }

// MemoryFootprint returns the approximate heap bytes held by the evidence
// maps — the price of exact all-vertices maintenance that LazyTopK avoids
// (its footprint is O(n) scalars). Reported by the Fig. 8 experiment.
func (m *Maintainer) MemoryFootprint() int64 {
	var total int64
	for _, s := range m.s {
		if s != nil {
			total += s.MemoryFootprint()
		}
	}
	return total + int64(len(m.cb))*8
}

// TopK returns the current top-k by exact CB, sorted descending.
func (m *Maintainer) TopK(k int) []ego.Result {
	return ego.TopKOfScores(m.cb, k)
}

// mapFor returns the evidence map of v, allocating on first touch.
func (m *Maintainer) mapFor(v int32) *pairmap.Map {
	if m.s[v] == nil {
		m.s[v] = pairmap.New()
	}
	return m.s[v]
}

// getCount returns the connector count stored for key in S_v, treating a
// missing entry (or a never-allocated map) as zero.
func (m *Maintainer) getCount(v int32, key uint64) int32 {
	if m.s[v] == nil {
		return 0
	}
	c, _ := m.s[v].Get(key)
	return c
}

func (m *Maintainer) growTo(n int32) {
	for int32(len(m.cb)) < n {
		m.cb = append(m.cb, 0)
		m.s = append(m.s, nil)
		m.dirtySet = append(m.dirtySet, false)
	}
}

// InsertEdge performs LocalInsert (Algorithm 4): inserts (u, v) and repairs
// CB and the evidence maps of u, v, and every common neighbor, per
// Lemmas 4-5. Unknown endpoints grow the vertex set.
func (m *Maintainer) InsertEdge(u, v int32) error {
	if u == v {
		return fmt.Errorf("dynamic: self-loop (%d,%d)", u, v)
	}
	if u < 0 || v < 0 {
		return fmt.Errorf("dynamic: negative vertex in (%d,%d)", u, v)
	}
	mx := max(u, v) + 1
	if m.g.NumVertices() < mx {
		m.g.EnsureVertices(mx)
	}
	m.growTo(m.g.NumVertices())
	if m.g.HasEdge(u, v) {
		return fmt.Errorf("dynamic: edge (%d,%d) already present", u, v)
	}
	// L before the insert equals L after: w ∈ L is untouched by (u,v).
	m.comm = nbr.CommonInto(m.comm[:0], m.g, u, v)
	l := append([]int32(nil), m.comm...)
	if err := m.g.InsertEdge(u, v); err != nil {
		return err
	}
	m.Stats.Inserts++
	m.Stats.AffectedVerts += int64(len(l)) + 2

	// Lemma 4, part 1: pairs inside L gain the new connector (v for GE(u),
	// u for GE(v)).
	for i := 0; i < len(l); i++ {
		for j := i + 1; j < len(l); j++ {
			x, y := l[i], l[j]
			if m.g.HasEdge(x, y) {
				continue
			}
			key := pairmap.Key(x, y)
			cu := m.mapFor(u).Add(key, 1)
			m.adjust(u, 1/float64(cu+1)-1/float64(cu))
			cv := m.mapFor(v).Add(key, 1)
			m.adjust(v, 1/float64(cv+1)-1/float64(cv))
			m.Stats.TouchedPairs += 2
		}
	}
	// Lemma 4, part 2: brand-new pairs (v, x) in GE(u) and (u, x) in GE(v).
	m.insertEndpointPairs(u, v, l)
	m.insertEndpointPairs(v, u, l)

	// Lemma 5: common neighbors w ∈ L. A hub endpoint's neighborhood is
	// marked once into a pooled register, so each of the |L| scans against
	// it probes in O(d(w)) instead of re-merging the hub list.
	regU, regV := m.hubRegister(u, len(l)), m.hubRegister(v, len(l))
	for _, w := range l {
		keyUV := pairmap.Key(u, v)
		old := m.getCount(w, keyUV) // exact connector count of (u,v) in GE(w)
		m.adjust(w, -1/float64(old+1))
		m.mapFor(w).SetMarker(keyUV) // the pair is adjacent now
		m.Stats.TouchedPairs++
		m.commonGains(w, u, v, regV) // pairs (u,x) gain connector v
		m.commonGains(w, v, u, regU) // pairs (v,x) gain connector u
	}
	m.releaseHubRegisters(regU, regV)
	return nil
}

// hubRegister returns a pooled register with N(b) marked when b is hub-sized
// (per nbr.ChooseHub) and its neighborhood will be scanned against at least
// `scans` times — the break-even for paying the one-time mark. Returns nil
// otherwise; a non-nil register must go back through releaseHubRegisters.
func (m *Maintainer) hubRegister(b int32, scans int) *nbr.Register {
	nb := m.g.Neighbors(b)
	if scans < 2 || nbr.ChooseHub(len(nb), 0) != nbr.StrategyBitset {
		return nil
	}
	r := nbr.AcquireRegister(m.g.NumVertices())
	r.Mark(nb)
	return r
}

func (m *Maintainer) releaseHubRegisters(regs ...*nbr.Register) {
	for _, r := range regs {
		if r != nil {
			nbr.ReleaseRegister(r)
		}
	}
}

// insertEndpointPairs handles the new pairs (other, x) that appear in GE(p)
// when edge (p, other) is inserted: x ∈ L becomes an adjacent pair (marker),
// x ∉ L gets a fresh connector count. L-membership is tested against the
// maintainer's bitset register, marked once per call.
func (m *Maintainer) insertEndpointPairs(p, other int32, l []int32) {
	m.reg.Ensure(m.g.NumVertices())
	m.reg.Mark(l)
	defer m.reg.Unmark()
	for _, x := range m.g.Neighbors(p) {
		if x == other {
			continue
		}
		key := pairmap.Key(other, x)
		if m.reg.Contains(x) {
			m.mapFor(p).SetMarker(key)
			m.Stats.TouchedPairs++
			continue
		}
		// Connectors of (other, x) in GE(p): w ∈ N(p) adjacent to both.
		c := int32(0)
		m.aux = nbr.CommonInto(m.aux[:0], m.g, p, x)
		for _, w := range m.aux {
			if w != other && m.g.HasEdge(w, other) {
				c++
			}
		}
		if c > 0 {
			m.mapFor(p).Set(key, c)
		}
		m.adjust(p, 1/float64(c+1))
		m.Stats.TouchedPairs++
	}
}

// commonGains applies, for common neighbor w, the Lemma 5 term: every pair
// (a, x) with x ∈ N(w) ∩ N(b), x ≠ a, (a,x) ∉ E gains the connector b
// (where {a, b} = {u, v}). regB, when non-nil, holds N(b) pre-marked; the
// register probe emits the identical ascending intersection the merge
// kernel would, so routing never changes any float operation.
func (m *Maintainer) commonGains(w, a, b int32, regB *nbr.Register) {
	if regB != nil {
		m.aux = regB.IntersectInto(m.aux[:0], m.g.Neighbors(w))
	} else {
		m.aux = nbr.CommonInto(m.aux[:0], m.g, w, b)
	}
	for _, x := range m.aux {
		if x == a || m.g.HasEdge(a, x) {
			continue
		}
		c := m.mapFor(w).Add(pairmap.Key(a, x), 1)
		m.adjust(w, 1/float64(c+1)-1/float64(c))
		m.Stats.TouchedPairs++
	}
}

// DeleteEdge performs LocalDelete: removes (u, v) and repairs CB and the
// evidence maps per Lemmas 6-7.
func (m *Maintainer) DeleteEdge(u, v int32) error {
	if u < 0 || v < 0 || u == v || !m.g.HasEdge(u, v) {
		return fmt.Errorf("dynamic: edge (%d,%d) not present", u, v)
	}
	m.comm = nbr.CommonInto(m.comm[:0], m.g, u, v)
	l := append([]int32(nil), m.comm...)
	m.Stats.Deletes++
	m.Stats.AffectedVerts += int64(len(l)) + 2

	// Lemma 6, part 1: pairs inside L lose a connector in GE(u) and GE(v).
	for i := 0; i < len(l); i++ {
		for j := i + 1; j < len(l); j++ {
			x, y := l[i], l[j]
			if m.g.HasEdge(x, y) {
				continue
			}
			key := pairmap.Key(x, y)
			cu := m.getCount(u, key) // ≥ 1: v is a connector
			m.adjust(u, 1/float64(cu)-1/float64(cu+1))
			m.mapFor(u).Add(key, -1)
			cv := m.getCount(v, key)
			m.adjust(v, 1/float64(cv)-1/float64(cv+1))
			m.mapFor(v).Add(key, -1)
			m.Stats.TouchedPairs += 2
		}
	}
	// Lemma 6, part 2: pairs (v, x) leave GE(u), and (u, x) leave GE(v).
	m.deleteEndpointPairs(u, v, l)
	m.deleteEndpointPairs(v, u, l)

	// Lemma 7: common neighbors w ∈ L, hub endpoints pre-marked as in
	// Lemma 5.
	regU, regV := m.hubRegister(u, len(l)), m.hubRegister(v, len(l))
	for _, w := range l {
		// Pair (u, v) becomes non-adjacent in GE(w); its connector count
		// is |L ∩ N(w)|.
		c := int32(nbr.IntersectCount(l, m.g.Neighbors(w)))
		keyUV := pairmap.Key(u, v)
		if c > 0 {
			m.mapFor(w).Set(keyUV, c)
		} else {
			m.mapFor(w).Delete(keyUV)
		}
		m.adjust(w, 1/float64(c+1))
		m.Stats.TouchedPairs++
		m.commonLosses(w, u, v, regV) // pairs (u,x) lose connector v
		m.commonLosses(w, v, u, regU) // pairs (v,x) lose connector u
	}
	m.releaseHubRegisters(regU, regV)
	return m.g.DeleteEdge(u, v)
}

// deleteEndpointPairs removes from GE(p) every pair (other, x) when edge
// (p, other) is deleted. L-membership is tested against the maintainer's
// bitset register, marked once per call.
func (m *Maintainer) deleteEndpointPairs(p, other int32, l []int32) {
	m.reg.Ensure(m.g.NumVertices())
	m.reg.Mark(l)
	defer m.reg.Unmark()
	for _, x := range m.g.Neighbors(p) {
		if x == other {
			continue
		}
		key := pairmap.Key(other, x)
		if m.reg.Contains(x) {
			// Adjacent pair: marker entry, contribution was 0.
			m.mapFor(p).Delete(key)
		} else {
			c := m.getCount(p, key)
			m.adjust(p, -1/float64(c+1))
			if c > 0 {
				m.s[p].Delete(key)
			}
		}
		m.Stats.TouchedPairs++
	}
}

// commonLosses applies, for common neighbor w, the Lemma 7 term: every pair
// (a, x) with x ∈ N(w) ∩ N(b), x ≠ a, (a,x) ∉ E loses the connector b.
// regB as in commonGains.
func (m *Maintainer) commonLosses(w, a, b int32, regB *nbr.Register) {
	if regB != nil {
		m.aux = regB.IntersectInto(m.aux[:0], m.g.Neighbors(w))
	} else {
		m.aux = nbr.CommonInto(m.aux[:0], m.g, w, b)
	}
	for _, x := range m.aux {
		if x == a || m.g.HasEdge(a, x) {
			continue
		}
		key := pairmap.Key(a, x)
		c := m.getCount(w, key) // ≥ 1: b was a connector
		m.adjust(w, 1/float64(c)-1/float64(c+1))
		m.mapFor(w).Add(key, -1)
		m.Stats.TouchedPairs++
	}
}
