package ship

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/graph"
	"repro/internal/store"
)

// testSnapshot encodes a small valid snapshot image folding seq.
func testSnapshot(t *testing.T, seq uint64) []byte {
	t.Helper()
	g, err := graph.FromCSR([]int64{0, 2, 4, 6}, []int32{1, 2, 0, 2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	return store.EncodeSnapshot(g, store.SnapshotMeta{Seq: seq})
}

// batchRange encodes WAL records carrying sequences [from, to].
func batchRange(from, to uint64) []byte {
	var buf []byte
	for s := from; s <= to; s++ {
		buf = append(buf, store.EncodeBatch(store.Batch{
			Seq: s, Insert: true, Edges: [][2]int32{{int32(s), int32(s + 1)}},
		})...)
	}
	return buf
}

// fakeSource is an in-memory leader: one graph, a checkpoint image, and the
// current segment's record bytes. chunk>0 caps WALTail responses to simulate
// chunks that end mid-record.
type fakeSource struct {
	name    string
	snap    []byte
	segment uint64
	seq     uint64
	wal     []byte // headerless record bytes of the current segment
	chunk   int
}

func (s *fakeSource) ShipGraphs() []string { return []string{s.name} }

func (s *fakeSource) ShipStatus(g string) (Status, error) {
	if g != s.name {
		return Status{}, ErrUnknownGraph
	}
	return Status{Segment: s.segment, Seq: s.seq, WALBytes: int64(store.WALHeaderLen + len(s.wal))}, nil
}

func (s *fakeSource) ShipCheckpoint(g string) ([]byte, error) {
	if g != s.name {
		return nil, ErrUnknownGraph
	}
	return s.snap, nil
}

func (s *fakeSource) ShipWALTail(g string, segment uint64, offset int64) ([]byte, uint64, error) {
	if g != s.name {
		return nil, 0, ErrUnknownGraph
	}
	if segment != s.segment {
		return nil, 0, ErrSegmentGone
	}
	file := append(make([]byte, store.WALHeaderLen), s.wal...)
	if offset > int64(len(file)) {
		return nil, 0, fmt.Errorf("offset %d beyond segment end %d", offset, len(file))
	}
	data := file[offset:]
	if s.chunk > 0 && len(data) > s.chunk {
		data = data[:s.chunk]
	}
	return data, s.seq, nil
}

// checkpoint folds everything through seq into a fresh snapshot and starts a
// new empty segment, exactly like the leader's maybeCheckpoint.
func (s *fakeSource) checkpoint(t *testing.T, seq uint64) {
	s.snap = testSnapshot(t, seq)
	s.segment = seq
	s.wal = nil
	if seq > s.seq {
		s.seq = seq
	}
}

// fakeTarget records installs and applied sequences, enforcing the same
// continuity contract the real registry does.
type fakeTarget struct {
	installs  int
	seq       uint64
	have      bool
	applied   []uint64
	leaderSeq uint64
	caughtUp  bool
}

func (t *fakeTarget) ReplicaSeq(string) (uint64, bool) { return t.seq, t.have }

func (t *fakeTarget) InstallReplica(_ string, snap []byte) error {
	meta, err := store.PeekSnapshotMeta(snap)
	if err != nil {
		return err
	}
	t.installs++
	t.seq = meta.Seq
	t.have = true
	t.applied = nil
	return nil
}

func (t *fakeTarget) ApplyReplica(_ string, batches []store.Batch) error {
	for _, b := range batches {
		if b.Seq != t.seq+1 {
			return fmt.Errorf("apply seq %d after %d", b.Seq, t.seq)
		}
		t.seq = b.Seq
		t.applied = append(t.applied, b.Seq)
	}
	return nil
}

func (t *fakeTarget) NoteReplica(_ string, leaderSeq uint64, caughtUp bool) {
	t.leaderSeq, t.caughtUp = leaderSeq, caughtUp
}

// newPair wires source → handler → httptest server → client → follower.
func newPair(t *testing.T, src *fakeSource, tgt *fakeTarget, opts ...FollowerOption) (*Follower, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(NewHandler(src))
	t.Cleanup(srv.Close)
	return NewFollower(NewClient(srv.URL, srv.Client()), tgt, opts...), srv
}

func TestFollowerBootstrapAndTail(t *testing.T) {
	src := &fakeSource{name: "g", snap: testSnapshot(t, 2), segment: 2, seq: 6, wal: batchRange(3, 6)}
	tgt := &fakeTarget{}
	f, _ := newPair(t, src, tgt)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tgt.installs != 1 || tgt.seq != 6 || !tgt.caughtUp || tgt.leaderSeq != 6 {
		t.Fatalf("installs=%d seq=%d caughtUp=%v leaderSeq=%d", tgt.installs, tgt.seq, tgt.caughtUp, tgt.leaderSeq)
	}
	if want := []uint64{3, 4, 5, 6}; len(tgt.applied) != len(want) {
		t.Fatalf("applied %v, want %v", tgt.applied, want)
	}
	// Idle pass: no new records, still caught up, nothing re-applied.
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tgt.installs != 1 || len(tgt.applied) != 4 {
		t.Fatalf("idle pass mutated state: installs=%d applied=%v", tgt.installs, tgt.applied)
	}
}

// TestFollowerTornChunks: responses capped below record boundaries must never
// produce an error or a skipped record — the cursor only advances by complete
// records and the follower converges across fetches.
func TestFollowerTornChunks(t *testing.T) {
	src := &fakeSource{name: "g", snap: testSnapshot(t, 0), segment: 0, seq: 5, wal: batchRange(1, 5)}
	recLen := len(store.EncodeBatch(store.Batch{Seq: 1, Insert: true, Edges: [][2]int32{{1, 2}}}))
	src.chunk = recLen + 3 // every chunk ends mid-record
	tgt := &fakeTarget{}
	f, _ := newPair(t, src, tgt)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tgt.seq != 5 || !tgt.caughtUp {
		t.Fatalf("seq=%d caughtUp=%v after torn-chunk tailing", tgt.seq, tgt.caughtUp)
	}

	// A chunk too small for even one record stalls (zero progress) without
	// erroring or spinning; a later pass with more data resumes cleanly.
	src.seq, src.wal = 7, append(src.wal, batchRange(6, 7)...)
	src.chunk = 5
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tgt.seq != 5 || tgt.caughtUp {
		t.Fatalf("stalled pass advanced: seq=%d caughtUp=%v", tgt.seq, tgt.caughtUp)
	}
	src.chunk = 0
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tgt.seq != 7 || !tgt.caughtUp {
		t.Fatalf("resume failed: seq=%d caughtUp=%v", tgt.seq, tgt.caughtUp)
	}
}

// TestFollowerSegmentRollover: a leader checkpoint invalidates the tailed
// segment; the follower resyncs onto the new one without re-installing.
func TestFollowerSegmentRollover(t *testing.T) {
	src := &fakeSource{name: "g", snap: testSnapshot(t, 0), segment: 0, seq: 4, wal: batchRange(1, 4)}
	tgt := &fakeTarget{}
	f, _ := newPair(t, src, tgt)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	src.checkpoint(t, 4)
	src.seq, src.wal = 6, batchRange(5, 6)
	if err := f.SyncOnce(context.Background()); err != nil { // hits 410, schedules resync
		t.Fatal(err)
	}
	if err := f.SyncOnce(context.Background()); err != nil { // resyncs and tails
		t.Fatal(err)
	}
	if tgt.installs != 1 || tgt.seq != 6 || !tgt.caughtUp {
		t.Fatalf("installs=%d seq=%d caughtUp=%v; want resync without re-install", tgt.installs, tgt.seq, tgt.caughtUp)
	}
}

// TestFollowerCheckpointAhead: when the leader's segment starts beyond what
// the follower applied, only a fresh checkpoint restores a common prefix.
func TestFollowerCheckpointAhead(t *testing.T) {
	src := &fakeSource{name: "g", snap: testSnapshot(t, 0), segment: 0, seq: 3, wal: batchRange(1, 3)}
	tgt := &fakeTarget{}
	f, _ := newPair(t, src, tgt)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	src.checkpoint(t, 10) // leader advanced 4..10 and checkpointed while we were away
	src.seq, src.wal = 12, batchRange(11, 12)
	if err := f.SyncOnce(context.Background()); err != nil { // 410 → resync pending
		t.Fatal(err)
	}
	if err := f.SyncOnce(context.Background()); err != nil { // resync → re-bootstrap → tail
		t.Fatal(err)
	}
	if tgt.installs != 2 || tgt.seq != 12 || !tgt.caughtUp {
		t.Fatalf("installs=%d seq=%d caughtUp=%v; want checkpoint re-bootstrap", tgt.installs, tgt.seq, tgt.caughtUp)
	}
}

// TestFollowerCorruptStream: a record failing its CRC on the wire is a hard
// protocol error — the follower reports it and re-bootstraps from a
// checkpoint on the next pass rather than trusting anything downstream.
func TestFollowerCorruptStream(t *testing.T) {
	src := &fakeSource{name: "g", snap: testSnapshot(t, 0), segment: 0, seq: 3, wal: batchRange(1, 3)}
	src.wal[len(src.wal)-2] ^= 0x20
	tgt := &fakeTarget{}
	f, _ := newPair(t, src, tgt)
	err := f.SyncOnce(context.Background())
	if err == nil {
		t.Fatal("corrupt stream accepted")
	}
	if tgt.seq != 2 { // the two records before the corruption applied fine
		t.Fatalf("seq=%d before corruption handling, want 2", tgt.seq)
	}
	src.checkpoint(t, 3)
	src.seq, src.wal = 5, batchRange(4, 5)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tgt.installs != 2 || tgt.seq != 5 || !tgt.caughtUp {
		t.Fatalf("installs=%d seq=%d caughtUp=%v; want checkpoint re-bootstrap", tgt.installs, tgt.seq, tgt.caughtUp)
	}
}

// TestFollowerAdoptsLocalState: a follower restarting over an existing data
// directory resumes from its applied sequence — no re-install, no re-apply
// of records it already holds.
func TestFollowerAdoptsLocalState(t *testing.T) {
	src := &fakeSource{name: "g", snap: testSnapshot(t, 2), segment: 2, seq: 6, wal: batchRange(3, 6)}
	tgt := &fakeTarget{seq: 4, have: true}
	f, _ := newPair(t, src, tgt)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tgt.installs != 0 || tgt.seq != 6 || !tgt.caughtUp {
		t.Fatalf("installs=%d seq=%d caughtUp=%v; want adoption without install", tgt.installs, tgt.seq, tgt.caughtUp)
	}
	if want := []uint64{5, 6}; len(tgt.applied) != 2 || tgt.applied[0] != 5 {
		t.Fatalf("applied %v, want %v", tgt.applied, want)
	}
}

// TestFollowerLeaderRestart: the leader process dies and comes back at a new
// address; SetBase repoints the follower and tailing resumes where it left
// off (same segment, same offset).
func TestFollowerLeaderRestart(t *testing.T) {
	src := &fakeSource{name: "g", snap: testSnapshot(t, 0), segment: 0, seq: 3, wal: batchRange(1, 3)}
	tgt := &fakeTarget{}
	f, first := newPair(t, src, tgt)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	first.Close()
	if err := f.SyncOnce(context.Background()); err == nil {
		t.Fatal("sync against a dead leader must fail")
	}
	src.seq, src.wal = 5, append(src.wal, batchRange(4, 5)...)
	second := httptest.NewServer(NewHandler(src))
	defer second.Close()
	f.client.SetBase(second.URL)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tgt.installs != 1 || tgt.seq != 5 || !tgt.caughtUp {
		t.Fatalf("installs=%d seq=%d caughtUp=%v after leader restart", tgt.installs, tgt.seq, tgt.caughtUp)
	}
}

// TestProtocolErrorMapping: sentinels survive the HTTP round trip.
func TestProtocolErrorMapping(t *testing.T) {
	src := &fakeSource{name: "g", snap: testSnapshot(t, 0), segment: 0, seq: 0}
	srv := httptest.NewServer(NewHandler(src))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	ctx := context.Background()
	if _, err := c.Status(ctx, "nope"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown graph: %v", err)
	}
	if _, _, err := c.WALTail(ctx, "g", 99, int64(store.WALHeaderLen)); !errors.Is(err, ErrSegmentGone) {
		t.Fatalf("stale segment: %v", err)
	}
	if _, _, err := c.WALTail(ctx, "g", 0, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	names, err := c.Graphs(ctx)
	if err != nil || len(names) != 1 || names[0] != "g" {
		t.Fatalf("graphs = %v, %v", names, err)
	}
	st, err := c.Status(ctx, "g")
	if err != nil || st.WALBytes != int64(store.WALHeaderLen) {
		t.Fatalf("status = %+v, %v", st, err)
	}
}
