// Collaboration-network case study: the paper's Table III/IV experiment.
//
// Loads the DB co-authorship analog (overlapping community cliques, like
// DBLP), finds the top-10 "scholars" by ego-betweenness and by classic
// betweenness, and prints them side by side with the overlap marked — the
// bridge-scholar effect of the paper's Section VI-B.
//
//	go run ./examples/collaboration
package main

import (
	"fmt"
	"time"

	egobw "repro"
	"repro/internal/dataset"
)

func main() {
	g, err := egobw.LoadDataset("db")
	if err != nil {
		panic(err)
	}
	fmt.Println("co-authorship graph:", egobw.Stats(g))

	t0 := time.Now()
	ebw, _ := egobw.TopK(g, 10)
	tEBW := time.Since(t0)
	t0 = time.Now()
	bw := egobw.BetweennessTopK(g, 10, 0)
	tBW := time.Since(t0)

	inBW := map[int32]bool{}
	for _, r := range bw {
		inBW[r.V] = true
	}
	inEBW := map[int32]bool{}
	for _, r := range ebw {
		inEBW[r.V] = true
	}

	fmt.Printf("\nTopEBW %v vs TopBW %v (%.0fx faster)\n",
		tEBW.Round(time.Millisecond), tBW.Round(time.Millisecond),
		float64(tBW)/float64(tEBW))
	fmt.Printf("\n%-28s %4s %10s | %-28s %4s %12s\n",
		"Top-10 by ego-betweenness", "d", "CB", "Top-10 by betweenness", "d", "BT")
	for i := 0; i < 10; i++ {
		e, b := ebw[i], bw[i]
		fmt.Printf("%s%-27s %4d %10.1f | %s%-27s %4d %12.1f\n",
			mark(inBW[e.V]), dataset.ScholarName(e.V), g.Degree(e.V), e.CB,
			mark(inEBW[b.V]), dataset.ScholarName(b.V), g.Degree(b.V), b.CB)
	}
	fmt.Printf("\n'*' marks scholars in both top-10 lists: overlap %.0f%%\n",
		egobw.Overlap(ebw, bw)*100)
	fmt.Println("(the paper reports 80% on DB and 90% on IR — high-ego-betweenness")
	fmt.Println("scholars are the bridges between research communities)")
}

func mark(b bool) string {
	if b {
		return "*"
	}
	return " "
}
