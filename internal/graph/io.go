package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses the SNAP-style whitespace-separated edge-list format:
// one "u v" pair per line, lines starting with '#' or '%' are comments,
// blank lines are skipped. Vertex identifiers are non-negative integers; n
// is inferred as max(id)+1. Self-loops and duplicates are tolerated and
// normalized away by the builder.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var edges [][2]int32
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want two fields, got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", line)
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return FromEdges(-1, edges)
}

// WriteEdgeList writes g in the format accepted by ReadEdgeList, one
// undirected edge per line with u < v.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# undirected graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	var writeErr error
	g.EachEdge(func(u, v int32) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}

// magic identifies the compact binary snapshot format.
const magic uint32 = 0xE60B0001

// WriteBinary serializes g into a compact little-endian binary snapshot
// (magic, n, m, offsets, adjacency). It is ~10x faster to load than the text
// format and is used by the dataset cache.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []any{magic, g.n, g.m}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a snapshot produced by WriteBinary and validates
// its structural invariants before returning it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var m32 uint32
	if err := binary.Read(br, binary.LittleEndian, &m32); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if m32 != magic {
		return nil, fmt.Errorf("graph: bad magic %#x", m32)
	}
	var n int32
	var m int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: corrupt header n=%d m=%d", n, m)
	}
	offsets := make([]int64, n+1)
	if err := binary.Read(br, binary.LittleEndian, offsets); err != nil {
		return nil, err
	}
	adj := make([]int32, 2*m)
	if err := binary.Read(br, binary.LittleEndian, adj); err != nil {
		return nil, err
	}
	// adj was sized from the header's m, so FromCSR's offsets/adjacency
	// consistency checks also pin the decoded graph to the claimed m.
	return FromCSR(offsets, adj)
}
