// Package pairmap provides the compact hash structures that back the paper's
// per-vertex maps S_u. An S_u maps an unordered pair {i, j} of neighbors of u
// to the evidence gathered about the pair inside u's ego network:
//
//	val == 0  — marker: (i, j) ∈ E, the pair is adjacent in GE(u) and
//	            contributes 0 to CB(u)  (the paper's S̄E set);
//	val == c>0 — c connectors of the non-adjacent pair have been discovered
//	            (the paper's ŜE set; exact once all ego edges are processed);
//	absent    — no evidence; if S_u is complete the pair has no connector and
//	            contributes exactly 1  (the paper's S̈E set).
//
// Map is a linear-probing open-addressing table over packed uint64 pair keys
// with int32 values: two flat slices, no per-entry allocation, deletion via
// tombstones. Set is the same table without values, used to record globally
// processed edges.
package pairmap

import "fmt"

// Key packs an unordered vertex pair into a single uint64 with the smaller
// identifier in the upper half. Both identifiers must be non-negative and
// distinct; the result is never zero (zero is the table's empty sentinel,
// which is safe because min < max forces the low half to be ≥ 1 whenever the
// high half is 0).
func Key(i, j int32) uint64 {
	if i > j {
		i, j = j, i
	}
	return uint64(uint32(i))<<32 | uint64(uint32(j))
}

// Split unpacks a key produced by Key into (min, max).
func Split(k uint64) (int32, int32) {
	return int32(k >> 32), int32(uint32(k))
}

const (
	emptySlot uint64 = 0
	tombstone uint64 = ^uint64(0) // pair (2³²−1, 2³²−1) is invalid, safe sentinel
	// Marker is the stored value for adjacent pairs.
	Marker int32 = 0
)

// hash mixes a packed pair key (64-bit finalizer from MurmurHash3).
func hash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Map is an open-addressing uint64 → int32 hash map specialized for pair
// keys. The zero value is not usable; construct with New or NewWithCapacity.
type Map struct {
	keys  []uint64
	vals  []int32
	live  int // live entries
	dirty int // live entries + tombstones
}

// New returns an empty map with a small initial table.
func New() *Map { return NewWithCapacity(0) }

// NewWithCapacity returns an empty map sized to hold at least c entries
// without growing.
func NewWithCapacity(c int) *Map {
	size := 8
	for size*3 < c*4 { // keep load factor ≤ 0.75
		size <<= 1
	}
	return &Map{keys: make([]uint64, size), vals: make([]int32, size)}
}

// Len returns the number of live entries.
func (m *Map) Len() int { return m.live }

// Get returns the value stored for key k.
func (m *Map) Get(k uint64) (int32, bool) {
	mask := uint64(len(m.keys) - 1)
	i := hash(k) & mask
	for {
		switch m.keys[i] {
		case k:
			return m.vals[i], true
		case emptySlot:
			return 0, false
		}
		i = (i + 1) & mask
	}
}

// Set stores val for key k, inserting or overwriting.
func (m *Map) Set(k uint64, val int32) {
	m.ensure()
	mask := uint64(len(m.keys) - 1)
	i := hash(k) & mask
	firstTomb := -1
	for {
		switch m.keys[i] {
		case k:
			m.vals[i] = val
			return
		case tombstone:
			if firstTomb < 0 {
				firstTomb = int(i)
			}
		case emptySlot:
			if firstTomb >= 0 {
				m.keys[firstTomb] = k
				m.vals[firstTomb] = val
			} else {
				m.keys[i] = k
				m.vals[i] = val
				m.dirty++
			}
			m.live++
			return
		}
		i = (i + 1) & mask
	}
}

// SetMarker records that the pair is adjacent (value 0). Overwrites any
// previous value; markers are idempotent by design.
func (m *Map) SetMarker(k uint64) { m.Set(k, Marker) }

// IsMarker reports whether k is stored with the adjacent-pair marker.
func (m *Map) IsMarker(k uint64) bool {
	v, ok := m.Get(k)
	return ok && v == Marker
}

// Add adds delta to the connector count of k and returns the new count,
// inserting the entry at delta when absent. When the count reaches zero the
// entry is removed (the pair falls back to the "no evidence" state). Calling
// Add on a marker entry or driving a count negative indicates a logic error
// in the caller and panics.
func (m *Map) Add(k uint64, delta int32) int32 {
	cur, ok := m.Get(k)
	if ok && cur == Marker {
		panic(fmt.Sprintf("pairmap: Add on marker entry %d,%d", int32(k>>32), int32(uint32(k))))
	}
	next := cur + delta
	switch {
	case next < 0:
		panic(fmt.Sprintf("pairmap: negative count for entry %d,%d", int32(k>>32), int32(uint32(k))))
	case next == 0:
		if ok {
			m.Delete(k)
		}
		return 0
	default:
		m.Set(k, next)
		return next
	}
}

// Delete removes key k, reporting whether it was present.
func (m *Map) Delete(k uint64) bool {
	mask := uint64(len(m.keys) - 1)
	i := hash(k) & mask
	for {
		switch m.keys[i] {
		case k:
			m.keys[i] = tombstone
			m.live--
			return true
		case emptySlot:
			return false
		}
		i = (i + 1) & mask
	}
}

// Iterate calls fn for every live entry until fn returns false. Iteration
// order is unspecified. The map must not be mutated during iteration.
func (m *Map) Iterate(fn func(k uint64, val int32) bool) {
	for i, k := range m.keys {
		if k != emptySlot && k != tombstone {
			if !fn(k, m.vals[i]) {
				return
			}
		}
	}
}

// Reset removes all entries but keeps the allocated table.
func (m *Map) Reset() {
	for i := range m.keys {
		m.keys[i] = emptySlot
	}
	m.live, m.dirty = 0, 0
}

// MemoryFootprint returns the approximate heap bytes held by the table.
func (m *Map) MemoryFootprint() int64 {
	return int64(len(m.keys))*8 + int64(len(m.vals))*4
}

// Table exposes the raw open-addressing table: the key and value slot arrays,
// including empty and tombstone slots. The slices are shared with the map and
// must not be modified. Dumping the table verbatim (and restoring it with
// FromTable) round-trips the map without rehashing a single key — the basis
// of the O(load) maintainer-state snapshot codec.
func (m *Map) Table() (keys []uint64, vals []int32) {
	return m.keys, m.vals
}

// FromTable reconstructs a Map directly from raw slot arrays as produced by
// Table, taking ownership of both slices — no entry is rehashed, so the cost
// is one validation scan. The table must be structurally sound: power-of-two
// size ≥ 8, at least a quarter of the slots free (so probes terminate and the
// load invariant holds), and every live key a canonical pair Key(i, j) with
// 0 ≤ i < j < idBound. Deeper consistency (values matching any particular
// graph) is the caller's contract, normally discharged by the checksum layer
// above this codec.
func FromTable(keys []uint64, vals []int32, idBound int32) (*Map, error) {
	m := new(Map)
	if err := m.ResetFromTable(keys, vals, idBound); err != nil {
		return nil, err
	}
	return m, nil
}

// ResetFromTable initializes m in place from a verbatim table, under the same
// contract as FromTable. It exists so a caller restoring many tables (one per
// vertex at recovery) can lay the Map headers out in a single slab instead of
// paying one heap allocation per table.
func (m *Map) ResetFromTable(keys []uint64, vals []int32, idBound int32) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("pairmap: table has %d key slots, %d value slots", len(keys), len(vals))
	}
	if len(keys) < 8 || len(keys)&(len(keys)-1) != 0 {
		return fmt.Errorf("pairmap: table size %d is not a power of two ≥ 8", len(keys))
	}
	vals = vals[:len(keys)] // one bounds check for the whole scan
	// This scan is the per-slot cost of restoring a maintainer from a
	// snapshot, so the hot path is branch-lean: a valid occupied slot packs
	// hi < lo < idBound, and since idBound ≤ 2³¹−1 the unsigned comparisons
	// below subsume the hi ≥ 0 check (hi ≥ 2³¹ could never sit under lo).
	bound := uint64(uint32(idBound))
	live, dirty := 0, 0
	for i, k := range keys {
		if k == emptySlot {
			continue
		}
		if k == tombstone {
			dirty++
			continue
		}
		if hi, lo := k>>32, k&0xffffffff; hi >= lo || lo >= bound {
			shi, slo := Split(k)
			return fmt.Errorf("pairmap: slot %d holds invalid pair key (%d,%d) under bound %d", i, shi, slo, idBound)
		}
		if vals[i] < 0 {
			return fmt.Errorf("pairmap: slot %d holds negative count %d", i, vals[i])
		}
		live++
		dirty++
	}
	if dirty*4 > len(keys)*3 {
		return fmt.Errorf("pairmap: table occupancy %d/%d exceeds the 3/4 load bound", dirty, len(keys))
	}
	*m = Map{keys: keys, vals: vals, live: live, dirty: dirty}
	return nil
}

// ensure grows the table when live+tombstone occupancy crosses 3/4,
// rehashing live entries and dropping tombstones.
func (m *Map) ensure() {
	if (m.dirty+1)*4 <= len(m.keys)*3 {
		return
	}
	size := len(m.keys) * 2
	// If most dirt is tombstones, rehash at the same size instead.
	if m.live*4 <= len(m.keys) {
		size = len(m.keys)
	}
	oldKeys, oldVals := m.keys, m.vals
	m.keys = make([]uint64, size)
	m.vals = make([]int32, size)
	m.live, m.dirty = 0, 0
	for i, k := range oldKeys {
		if k != emptySlot && k != tombstone {
			m.Set(k, oldVals[i])
		}
	}
}
