package bench

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/server"
)

// Write-throughput measurement (PR 4): how many durable-ack edge batches
// per second the serving registry sustains, as a function of writer
// concurrency. The serialized baseline (group limit 1) is the pre-pipeline
// write path — every batch pays its own WAL fsync and its own O(n+m)
// snapshot export; the pipelined rows let the per-graph writer goroutine
// group-commit whatever the concurrent writers have queued, amortizing
// both costs across the group.

// writeBenchBatches is the total batch count per configuration; each batch
// inserts writeBenchEdges fresh edges (each batch attaches a brand-new
// vertex, so no insert ever collides with an existing edge).
const (
	writeBenchBatches = 192
	writeBenchEdges   = 4
)

// writeBatch builds the j-th benchmark batch against a base graph of n
// vertices: writeBenchEdges edges attaching new vertex n+j to existing
// vertices. Deterministic, disjoint across batches, always applied.
func writeBatch(n int32, j int) [][2]int32 {
	edges := make([][2]int32, writeBenchEdges)
	for i := range edges {
		edges[i] = [2]int32{(int32(j) + int32(i)*7919) % n, n + int32(j)}
	}
	return edges
}

// runWriteConfig streams writeBenchBatches durable batches through a fresh
// durable registry using the given writer concurrency, returning batches
// per second and the mean group-commit size the pipeline achieved.
func runWriteConfig(g *graph.Graph, dir string, writers, groupLimit int) (bps, groupMean float64) {
	opts := []server.RegistryOption{
		server.WithDataDir(dir),
		server.WithBuildWorkers(1),
		// Keep checkpoints out of the measurement: the bench isolates the
		// per-batch costs (fsync + snapshot export), not the fold policy.
		server.WithCheckpointPolicy(1<<20, 1<<40),
	}
	if groupLimit > 0 {
		opts = append(opts, server.WithGroupLimit(groupLimit))
	}
	reg := server.NewRegistry(opts...)
	defer reg.Close()
	if _, err := reg.Add("w", g, server.ModeLocal, 0); err != nil {
		panic(err)
	}
	n := g.NumVertices()

	var next atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= writeBenchBatches {
					return
				}
				res, err := reg.ApplyEdges("w", writeBatch(n, j), true)
				if err != nil {
					panic(err)
				}
				if res.Applied != writeBenchEdges {
					panic(fmt.Sprintf("bench: batch %d applied %d/%d edges", j, res.Applied, writeBenchEdges))
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)

	info, err := reg.Info("w")
	if err != nil {
		panic(err)
	}
	bps = float64(writeBenchBatches) / elapsed.Seconds()
	if info.GroupCommits > 0 {
		groupMean = float64(info.CoalescedBatches) / float64(info.GroupCommits)
	}
	return bps, groupMean
}

// measureWrites fills the write-throughput rows of one dataset entry.
func measureWrites(e *PRBenchEntry, g *graph.Graph) {
	dir, err := os.MkdirTemp("", "egobw-prbench-write-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	sub := func(name string) string { return dir + "/" + name }
	e.WriteSerialized16WBps, _ = runWriteConfig(g, sub("ser16"), 16, 1)
	e.WritePipelined1WBps, _ = runWriteConfig(g, sub("pipe1"), 1, 0)
	e.WritePipelined4WBps, _ = runWriteConfig(g, sub("pipe4"), 4, 0)
	e.WritePipelined16WBps, e.WriteGroupMean16W = runWriteConfig(g, sub("pipe16"), 16, 0)
	if e.WriteSerialized16WBps > 0 {
		e.WriteSpeedup16W = e.WritePipelined16WBps / e.WriteSerialized16WBps
	}
}
