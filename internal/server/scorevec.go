package server

// scoreVec is the ModeLocal snapshot's score vector in chunked
// copy-on-write form. Chunks are immutable once published: a drain builds
// the next vector by sharing every clean chunk with its predecessor and
// deep-copying only the chunks holding a score the maintainer actually
// changed, so publication costs O(dirty/chunk) instead of O(n). A drain
// that changed no score shares everything — the zero-copy fast path.

// scoreChunkShift/scoreChunkSize: 1024 float64 per chunk — 8 KiB, small
// enough that a single changed score costs little to re-publish, large
// enough that the chunk-pointer table stays tiny (n/1024 words).
const (
	scoreChunkShift = 10
	scoreChunkSize  = 1 << scoreChunkShift
)

type scoreVec struct {
	chunks [][]float64 // every chunk has len scoreChunkSize; tail zero-padded
	n      int32       // logical length
}

// newScoreVec copies a flat score vector into chunked form.
func newScoreVec(all []float64) *scoreVec {
	n := int32(len(all))
	s := &scoreVec{n: n, chunks: make([][]float64, (int(n)+scoreChunkSize-1)>>scoreChunkShift)}
	for i := range s.chunks {
		c := make([]float64, scoreChunkSize)
		copy(c, all[i<<scoreChunkShift:])
		s.chunks[i] = c
	}
	return s
}

// At returns the score of v.
func (s *scoreVec) At(v int32) float64 {
	return s.chunks[v>>scoreChunkShift][v&(scoreChunkSize-1)]
}

// Len returns the logical length.
func (s *scoreVec) Len() int32 { return s.n }

// withUpdates derives the successor vector from src (the maintainer's live
// flat vector, len = the new n) and the vertices whose score changed since
// the previous publication. Clean chunks are shared by pointer; dirty
// chunks — and any chunk newly needed because n grew — are copied from src.
// copied reports how many chunks were materialized. When nothing changed at
// all (no dirty vertex, same n) the receiver itself is returned with
// copied = 0: the published snapshot keeps the previous vector.
//
// New vertices start at score 0, which is exactly the zero padding the
// predecessor's tail chunk already holds, so growth inside an existing
// chunk is free; a new vertex whose score moved in the same drain is in
// dirty and lands in a copied chunk like any other change.
func (s *scoreVec) withUpdates(src []float64, dirty []int32) (next *scoreVec, copied int) {
	n := int32(len(src))
	if len(dirty) == 0 && n == s.n {
		return s, 0
	}
	nChunks := (int(n) + scoreChunkSize - 1) >> scoreChunkShift
	chunks := make([][]float64, nChunks)
	copy(chunks, s.chunks)
	refresh := func(ci int) {
		c := make([]float64, scoreChunkSize)
		copy(c, src[ci<<scoreChunkShift:])
		chunks[ci] = c
		copied++
	}
	for ci := len(s.chunks); ci < nChunks; ci++ {
		refresh(ci) // growth past the old chunk table
	}
	for _, v := range dirty {
		ci := int(v) >> scoreChunkShift
		if ci < len(s.chunks) && &chunks[ci][0] == &s.chunks[ci][0] {
			refresh(ci)
		}
	}
	return &scoreVec{chunks: chunks, n: n}, copied
}
