// Dynamic edge stream: maintaining the top-k under churn (Section IV).
//
// Simulates a friendship stream over a social graph — edges arriving and
// dissolving — while two maintainers track ego-betweenness: the exact
// all-vertices Maintainer (LocalInsert/LocalDelete) and the LazyTopK
// maintainer (LazyInsert/LazyDelete), which recomputes only what the top-k
// needs. The example cross-checks them and reports how much work laziness
// saved.
//
//	go run ./examples/dynamicstream
package main

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	egobw "repro"
)

func main() {
	g := egobw.GenerateBA(8000, 4, 7)
	fmt.Println("starting graph:", egobw.Stats(g))
	const k = 10
	const steps = 400

	local := egobw.NewMaintainer(g)
	lazy := egobw.NewLazyTopK(g, k)
	rng := rand.New(rand.NewPCG(99, 100))
	n := g.NumVertices()

	var inserted [][2]int32
	t0 := time.Now()
	ins, del := 0, 0
	for step := 0; step < steps; step++ {
		if len(inserted) > 0 && rng.Float64() < 0.4 {
			// Dissolve a previously created friendship.
			i := rng.IntN(len(inserted))
			e := inserted[i]
			inserted[i] = inserted[len(inserted)-1]
			inserted = inserted[:len(inserted)-1]
			if err := local.DeleteEdge(e[0], e[1]); err != nil {
				panic(err)
			}
			if err := lazy.DeleteEdge(e[0], e[1]); err != nil {
				panic(err)
			}
			del++
			continue
		}
		// New friendship between random users.
		u, v := rng.Int32N(n), rng.Int32N(n)
		if u == v || local.Graph().HasEdge(u, v) {
			continue
		}
		if err := local.InsertEdge(u, v); err != nil {
			panic(err)
		}
		if err := lazy.InsertEdge(u, v); err != nil {
			panic(err)
		}
		inserted = append(inserted, [2]int32{u, v})
		ins++
	}
	elapsed := time.Since(t0)

	fmt.Printf("\nprocessed %d inserts + %d deletes in %v (%.3f ms/update, both maintainers)\n",
		ins, del, elapsed.Round(time.Millisecond),
		float64(elapsed.Microseconds())/1000/float64(ins+del))

	// The two maintainers must agree on the top-k scores.
	want := local.TopK(k)
	got := lazy.Results()
	for i := range want {
		if math.Abs(want[i].CB-got[i].CB) > 1e-6 {
			panic(fmt.Sprintf("maintainers disagree at rank %d: %v vs %v",
				i+1, got[i], want[i]))
		}
	}
	fmt.Printf("\ntop-%d after the stream (lazy == exact, verified):\n", k)
	for i, r := range got {
		fmt.Printf("  %2d. vertex %-6d CB=%.2f\n", i+1, r.V, r.CB)
	}
	fmt.Printf("\nlazy maintainer recomputed %d vertices across %d updates (%.2f/update);\n",
		lazy.Stats.Recomputed, ins+del, float64(lazy.Stats.Recomputed)/float64(ins+del))
	fmt.Printf("%d vertices were handled by just flipping a staleness flag.\n",
		lazy.Stats.StaleMarked)
}
