// Command datagen writes synthetic graphs to edge-list files: either one of
// the registered dataset analogs or a raw generator with explicit
// parameters.
//
// Usage:
//
//	datagen -dataset dblp -out dblp.txt
//	datagen -model ba -n 10000 -param 3 -seed 7 -out ba.txt
//	datagen -model chunglu -n 10000 -gamma 2.3 -avgdeg 8 -out cl.txt
//
// With -temporal the same graph is emitted as a timestamped edge stream
// instead of an edge list: JSONL batches in the exact body shape of
// POST /graphs/{name}/edges on a windowed graph, arriving every
// -interval-ms with per-edge stamps back-dated by up to -skew-ms (seeded,
// so the stream is deterministic — replays produce the identical WAL).
//
//	datagen -model ba -n 10000 -temporal -batch 64 -interval-ms 100 \
//	    -skew-ms 2000 -out ba.stream.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	egobw "repro"
)

func main() {
	ds := flag.String("dataset", "", "registered dataset analog to emit")
	model := flag.String("model", "", "generator: er, ba, chunglu, ws, affiliation")
	n := flag.Int("n", 10000, "vertices")
	param := flag.Int("param", 3, "er: edges/vertex; ba: attachments; ws: ring degree; affiliation: communities per 2.5 vertices")
	gamma := flag.Float64("gamma", 2.5, "chunglu: power-law exponent")
	avgdeg := flag.Float64("avgdeg", 8, "chunglu: target average degree")
	beta := flag.Float64("beta", 0.1, "ws: rewiring probability")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	temporal := flag.Bool("temporal", false, "emit a timestamped JSONL edge stream (edge-batch request bodies) instead of an edge list")
	batch := flag.Int("batch", 64, "temporal: edges per batch")
	startMS := flag.Int64("start-ms", 1_000_000, "temporal: unix-ms arrival time of the first batch")
	intervalMS := flag.Int64("interval-ms", 100, "temporal: arrival spacing between batches")
	skewMS := flag.Int64("skew-ms", 0, "temporal: back-date each edge's stamp by up to this many ms before its batch's arrival (0 = batch-level ts only)")
	flag.Parse()

	g, err := build(*ds, *model, int32(*n), *param, *gamma, *avgdeg, *beta, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *temporal {
		nb, err := writeTemporal(w, g, *batch, *startMS, *intervalMS, *skewMS, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s as %d timestamped batches\n", egobw.Stats(g), nb)
		return
	}
	if err := egobw.SaveEdgeList(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", egobw.Stats(g))
}

// streamBatch is one emitted line: the body of POST /graphs/{name}/edges.
// Ts stamps the whole batch; Stamps (with -skew-ms) stamps per edge — the
// two are mutually exclusive, matching the server's validation.
type streamBatch struct {
	Edges  [][2]int32 `json:"edges"`
	Ts     int64      `json:"ts,omitempty"`
	Stamps []int64    `json:"stamps,omitempty"`
}

// writeTemporal chunks g's edges (canonical EachEdge order) into batches
// arriving intervalMS apart from startMS, back-dating each edge's stamp by a
// seeded uniform draw in [0, skewMS]. Late arrivals — edges whose stamp
// predates their batch — are what exercise a window's boundary handling, and
// the determinism is what makes the stream replayable bit-for-bit.
func writeTemporal(w io.Writer, g *egobw.Graph, batch int, startMS, intervalMS, skewMS int64, seed uint64) (int, error) {
	if batch <= 0 {
		return 0, fmt.Errorf("temporal: batch size %d must be positive", batch)
	}
	if intervalMS < 0 || skewMS < 0 {
		return 0, fmt.Errorf("temporal: interval and skew must be non-negative")
	}
	var edges [][2]int32
	g.EachEdge(func(u, v int32) bool {
		edges = append(edges, [2]int32{u, v})
		return true
	})
	rng := rand.New(rand.NewSource(int64(seed)))
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	batches := 0
	for off := 0; off < len(edges); off += batch {
		end := off + batch
		if end > len(edges) {
			end = len(edges)
		}
		b := streamBatch{Edges: edges[off:end]}
		arrival := startMS + int64(batches)*intervalMS
		if skewMS == 0 {
			b.Ts = arrival
		} else {
			b.Stamps = make([]int64, len(b.Edges))
			for i := range b.Stamps {
				b.Stamps[i] = arrival - rng.Int63n(skewMS+1)
			}
		}
		if err := enc.Encode(&b); err != nil {
			return batches, err
		}
		batches++
	}
	return batches, bw.Flush()
}

func build(ds, model string, n int32, param int, gamma, avgdeg, beta float64, seed uint64) (*egobw.Graph, error) {
	if ds != "" {
		return egobw.LoadDataset(ds)
	}
	switch model {
	case "er":
		return egobw.GenerateER(n, int64(n)*int64(param), seed), nil
	case "ba":
		return egobw.GenerateBA(n, param, seed), nil
	case "chunglu":
		return egobw.GenerateChungLu(n, gamma, avgdeg, n/20, seed), nil
	case "ws":
		return egobw.GenerateWS(n, param, beta, seed), nil
	case "affiliation":
		return egobw.GenerateAffiliation(n, int(n)*2/5, 5, 1, seed), nil
	case "":
		return nil, fmt.Errorf("need -dataset or -model")
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}
