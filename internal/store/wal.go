package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// WALVersion is the on-disk write-ahead-log format version.
const WALVersion = 1

// walMagic identifies a WAL file ("EBWL": Ego-BetWeenness Log).
var walMagic = [4]byte{'E', 'B', 'W', 'L'}

// walHeaderLen is the fixed file header: magic, version uint16, reserved
// uint16 (0).
const walHeaderLen = 8

// Batch is one durably logged edge-update batch, exactly as the client
// submitted it (including edges that will fail individually on apply — the
// application code skips those deterministically, so replay reproduces the
// live outcome).
type Batch struct {
	Seq    uint64
	Insert bool
	Edges  [][2]int32
}

// WAL record layout (little-endian), appended back to back after the file
// header:
//
//	payloadLen uint32 = 13 + 8*len(edges)
//	crc        uint32 (IEEE, over the payload)
//	payload:
//	  seq      uint64
//	  op       uint8 (1 insert, 0 delete)
//	  numEdges uint32
//	  edges    numEdges × (int32 u, int32 v)
const walRecordFixed = 13 // seq + op + numEdges

// walFileHeader returns the 8-byte WAL file header.
func walFileHeader() []byte {
	hdr := make([]byte, 0, walHeaderLen)
	hdr = append(hdr, walMagic[:]...)
	hdr = binary.LittleEndian.AppendUint16(hdr, WALVersion)
	return binary.LittleEndian.AppendUint16(hdr, 0)
}

// EncodeBatch serializes one WAL record.
func EncodeBatch(b Batch) []byte {
	payloadLen := walRecordFixed + 8*len(b.Edges)
	buf := make([]byte, 0, 8+payloadLen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	buf = binary.LittleEndian.AppendUint32(buf, 0) // crc backfilled below
	buf = binary.LittleEndian.AppendUint64(buf, b.Seq)
	op := byte(0)
	if b.Insert {
		op = 1
	}
	buf = append(buf, op)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Edges)))
	for _, e := range b.Edges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e[0]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e[1]))
	}
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(buf[8:]))
	return buf
}

// decodeRecord parses one record at the front of data. ok=false means data
// does not start with a complete, checksummed, self-consistent record — for
// an append-only log that marks the torn tail, whatever the underlying cause.
func decodeRecord(data []byte) (b Batch, size int, ok bool) {
	if len(data) < 8 {
		return Batch{}, 0, false
	}
	payloadLen := int(binary.LittleEndian.Uint32(data[0:4]))
	if payloadLen < walRecordFixed || len(data)-8 < payloadLen {
		return Batch{}, 0, false
	}
	payload := data[8 : 8+payloadLen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:8]) {
		return Batch{}, 0, false
	}
	numEdges := int(binary.LittleEndian.Uint32(payload[9:13]))
	if payloadLen != walRecordFixed+8*numEdges {
		return Batch{}, 0, false
	}
	b = Batch{
		Seq:    binary.LittleEndian.Uint64(payload[0:8]),
		Insert: payload[8] == 1,
	}
	if payload[8] > 1 {
		return Batch{}, 0, false
	}
	b.Edges = make([][2]int32, numEdges)
	for i := range b.Edges {
		off := walRecordFixed + 8*i
		b.Edges[i][0] = int32(binary.LittleEndian.Uint32(payload[off : off+4]))
		b.Edges[i][1] = int32(binary.LittleEndian.Uint32(payload[off+4 : off+8]))
	}
	return b, 8 + payloadLen, true
}

// DecodeWAL parses a whole WAL file image. It returns every complete valid
// record in order and the byte length of that valid prefix; valid <
// len(data) means the tail is torn or corrupt and should be truncated away
// (crash-recovery treats the first invalid record as the end of the log —
// in an append-only file nothing after a torn write can be trusted). A bad
// file header is a hard error: nothing in the file is usable.
//
// Sequence numbers within one WAL file are strictly increasing — the writer
// assigns prev+1 under its lock — so a record whose Seq does not exceed its
// predecessor's (a duplicate or a regression, e.g. a doubled or re-shipped
// segment spliced onto the file) also ends the valid prefix: replaying past
// it would double-apply batches. Like a torn tail, everything from the first
// such record on is untrusted and gets truncated away.
func DecodeWAL(data []byte) (batches []Batch, valid int, err error) {
	if len(data) < walHeaderLen {
		return nil, 0, fmt.Errorf("store: wal truncated before header (%d bytes)", len(data))
	}
	if [4]byte(data[0:4]) != walMagic {
		return nil, 0, fmt.Errorf("store: bad wal magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != WALVersion {
		return nil, 0, fmt.Errorf("store: unsupported wal version %d (this build reads %d)", v, WALVersion)
	}
	if binary.LittleEndian.Uint16(data[6:8]) != 0 {
		return nil, 0, fmt.Errorf("store: corrupt wal header (reserved field)")
	}
	valid = walHeaderLen
	for valid < len(data) {
		b, size, ok := decodeRecord(data[valid:])
		if !ok {
			break
		}
		if n := len(batches); n > 0 && b.Seq <= batches[n-1].Seq {
			break
		}
		batches = append(batches, b)
		valid += size
	}
	return batches, valid, nil
}

// DecodeStream decodes headerless WAL records from a shipped stream chunk —
// the follower side of WAL shipping, where the leader's self-delimiting
// CRC-checked record format doubles as the wire format. next is the sequence
// the first record must carry; every following record must carry exactly
// prev+1. consumed is how many leading bytes held complete records; a chunk
// ending mid-record is normal (the next poll re-fetches from consumed) and
// is not an error. Unlike local recovery, nothing here is repairable by
// truncation: a checksum failure, a malformed record, or any sequence
// mismatch on a complete record is a hard protocol error — the stream can no
// longer be trusted and the follower must resynchronize from a checkpoint.
func DecodeStream(data []byte, next uint64) (batches []Batch, consumed int, err error) {
	for consumed < len(data) {
		rem := data[consumed:]
		if len(rem) < 8 {
			break // incomplete length/crc prefix: wait for more bytes
		}
		payloadLen := int(binary.LittleEndian.Uint32(rem[0:4]))
		if payloadLen < walRecordFixed {
			return batches, consumed, fmt.Errorf("store: stream record at offset %d: payload length %d below minimum %d", consumed, payloadLen, walRecordFixed)
		}
		if len(rem)-8 < payloadLen {
			break // incomplete record body: wait for more bytes
		}
		b, size, ok := decodeRecord(rem)
		if !ok {
			return batches, consumed, fmt.Errorf("store: stream record at offset %d (seq %d expected): checksum or structure mismatch", consumed, next)
		}
		if b.Seq != next {
			return batches, consumed, fmt.Errorf("store: stream sequence %d where %d was expected", b.Seq, next)
		}
		batches = append(batches, b)
		consumed += size
		next++
	}
	return batches, consumed, nil
}
