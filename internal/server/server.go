// Package server implements the query-serving subsystem behind the egobwd
// daemon: a registry of named graphs, each pairing an immutable CSR snapshot
// with one of the paper's dynamic maintainers, exposed over an HTTP/JSON API.
//
// Concurrency model (DESIGN.md §6):
//
//   - Readers (top-k, per-vertex, stats) load the current snapshot with one
//     atomic pointer read and never block or be blocked by writers. A
//     snapshot is immutable: CSR graph, frozen exact-score vector (ModeLocal)
//     and a monotonically growing result cache keyed by (k, algo, θ).
//   - Writers (edge batches) enter a per-graph bounded admission queue
//     drained by a dedicated writer goroutine (DESIGN.md §9): each drain
//     group-commits everything waiting — one WAL fsync, the per-batch
//     applies through the maintainer (LocalInsert/LocalDelete or
//     LazyInsert/LazyDelete), then one exported and atomically published
//     snapshot with a bumped epoch. Swapping the pointer is also the cache
//     invalidation: the old snapshot's cache becomes unreachable with it.
//     A full queue rejects with 429 (backpressure); ack=async callers get
//     their response at admission instead of after the group commit.
//   - The one read shape that touches maintainer state, algo=lazy (LazyTopK
//     refreshes stale members on read), takes the same write lock.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Server wires the Registry to an http.Handler.
type Server struct {
	reg     *Registry
	regOpts []RegistryOption
	started time.Time
	logf    func(format string, args ...any)
}

// Option configures a Server.
type Option func(*Server)

// WithLogger routes request-path log lines (graph loads, update batches)
// through logf; the default is log.Printf. Pass a no-op to silence.
func WithLogger(logf func(format string, args ...any)) Option {
	return func(s *Server) { s.logf = logf }
}

// WithRegistryOptions forwards options to the Server's Registry (for
// example WithBuildWorkers).
func WithRegistryOptions(opts ...RegistryOption) Option {
	return func(s *Server) { s.regOpts = append(s.regOpts, opts...) }
}

// New returns a Server with an empty registry.
func New(opts ...Option) *Server {
	s := &Server{started: time.Now(), logf: log.Printf}
	for _, o := range opts {
		o(s)
	}
	s.reg = NewRegistry(s.regOpts...)
	return s
}

// Registry exposes the underlying registry (for preloading graphs in main).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the HTTP API:
//
//	GET    /healthz                                   liveness + uptime
//	GET    /graphs                                    list served graphs
//	POST   /graphs                                    load/generate a graph
//	GET    /graphs/{name}                             one graph's summary
//	DELETE /graphs/{name}                             drop a graph
//	GET    /graphs/{name}/topk?k=&algo=&theta=        top-k query
//	GET    /graphs/{name}/vertices/{v}/ego-betweenness
//	GET    /graphs/{name}/stats                       stats + serving counters
//	POST   /graphs/{name}/edges?ack=durable|async     insert edge batch
//	DELETE /graphs/{name}/edges?ack=durable|async     delete edge batch
//
// Edge batches answer 200 after their group commit (ack=durable, the
// default), 202 at admission (ack=async), or 429 with Retry-After when the
// graph's write queue is full.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /graphs", s.handleList)
	mux.HandleFunc("POST /graphs", s.handleLoad)
	mux.HandleFunc("GET /graphs/{name}", s.handleInfo)
	mux.HandleFunc("DELETE /graphs/{name}", s.handleRemove)
	mux.HandleFunc("GET /graphs/{name}/topk", s.handleTopK)
	mux.HandleFunc("GET /graphs/{name}/vertices/{v}/ego-betweenness", s.handleVertex)
	mux.HandleFunc("GET /graphs/{name}/stats", s.handleStats)
	mux.HandleFunc("POST /graphs/{name}/edges", s.handleEdges(true))
	mux.HandleFunc("DELETE /graphs/{name}/edges", s.handleEdges(false))
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// leaderHint attaches the leader's address to a read-only rejection, so a
// client holding only the follower's URL learns where writes go.
func (s *Server) leaderHint(w http.ResponseWriter) {
	if l := s.reg.Leader(); l != "" {
		w.Header().Set("X-Leader", l)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"graphs": s.reg.Len(),
		"uptime": time.Since(s.started).Round(time.Millisecond).String(),
	})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.reg.Infos()})
}

// GeneratorSpec selects one of the seeded synthetic models.
type GeneratorSpec struct {
	Model       string  `json:"model"` // er | ba | chunglu | ws | affiliation
	N           int32   `json:"n"`
	M           int64   `json:"m,omitempty"`           // er
	MPer        int     `json:"mper,omitempty"`        // ba
	Gamma       float64 `json:"gamma,omitempty"`       // chunglu
	AvgDeg      float64 `json:"avgdeg,omitempty"`      // chunglu
	MaxDeg      int32   `json:"maxdeg,omitempty"`      // chunglu (0 = uncapped)
	K           int     `json:"k,omitempty"`           // ws ring degree
	Beta        float64 `json:"beta,omitempty"`        // ws rewiring probability
	Communities int     `json:"communities,omitempty"` // affiliation
	MeanSize    float64 `json:"mean_size,omitempty"`   // affiliation
	P           float64 `json:"p,omitempty"`           // affiliation
	Seed        uint64  `json:"seed"`
}

// LoadRequest is the POST /graphs body. Exactly one source — Edges,
// Generator, or Dataset — must be set.
type LoadRequest struct {
	Name      string         `json:"name"`
	Edges     [][2]int32     `json:"edges,omitempty"`
	N         int32          `json:"n,omitempty"` // with Edges; 0 infers from endpoints
	Generator *GeneratorSpec `json:"generator,omitempty"`
	Dataset   string         `json:"dataset,omitempty"`
	Mode      string         `json:"mode,omitempty"` // local (default) | lazy
	K         int            `json:"k,omitempty"`    // lazy mode's maintained k

	// Window makes the graph temporal: a Go duration string ("6h", "90s")
	// sets the sliding window edges live in before the writer expires them
	// (DESIGN.md §14); "none" (or "0") forces unwindowed serving even when
	// the daemon runs with a default -window; absent inherits the default.
	Window string `json:"window,omitempty"`
}

// maxLoadVertices bounds the vertex count a single load request may name,
// whether via an explicit n, an edge endpoint (FromEdges infers n from the
// largest id, so one edge [0, 2e9] would otherwise allocate gigabytes of
// CSR offsets), or a generator parameter.
const maxLoadVertices = 1 << 24

// maxLoadEdges bounds the edge count a generator request may ask for — the
// generators preallocate proportionally to it (BarabasiAlbert sizes a
// buffer by n·mPer, ErdosRenyi by m), so it needs the same treatment as
// the vertex count.
const maxLoadEdges = 1 << 26

// maxRequestBody caps request body reads. The largest legitimate bodies
// are explicit edge lists; 64 MiB fits ~4M edges, well past what the
// vertex limits admit, while an attacker-streamed multi-gigabyte JSON
// array dies at the transport instead of materializing in memory.
const maxRequestBody = 64 << 20

// buildGraph materializes the requested graph source.
func buildGraph(req *LoadRequest) (*graph.Graph, error) {
	sources := 0
	if len(req.Edges) > 0 {
		sources++
	}
	if req.Generator != nil {
		sources++
	}
	if req.Dataset != "" {
		sources++
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of edges, generator, dataset must be given")
	}
	switch {
	case len(req.Edges) > 0:
		n := req.N
		if n == 0 {
			n = -1
		}
		if n > maxLoadVertices {
			return nil, fmt.Errorf("n %d exceeds the limit of %d vertices", n, maxLoadVertices)
		}
		for _, e := range req.Edges {
			if e[0] >= maxLoadVertices || e[1] >= maxLoadVertices {
				return nil, fmt.Errorf("edge (%d,%d) exceeds the limit of %d vertices", e[0], e[1], maxLoadVertices)
			}
		}
		return graph.FromEdges(n, req.Edges)
	case req.Dataset != "":
		return dataset.Load(req.Dataset)
	}
	gs := req.Generator
	if gs.N < 1 || gs.N > maxLoadVertices {
		return nil, fmt.Errorf("generator n must be in [1, %d], got %d", maxLoadVertices, gs.N)
	}
	if gs.M < 0 || gs.MPer < 0 || gs.MaxDeg < 0 || gs.K < 0 || gs.Communities < 0 {
		return nil, fmt.Errorf("generator size parameters must be non-negative")
	}
	// The generators preallocate proportionally to their edge budget, so
	// every per-model size knob must respect maxLoadEdges.
	switch {
	case gs.M > maxLoadEdges,
		int64(gs.N)*int64(gs.MPer) > maxLoadEdges,
		int64(gs.N)*int64(gs.K) > maxLoadEdges,
		gs.AvgDeg > float64(maxLoadEdges)/float64(gs.N),
		float64(gs.Communities)*gs.MeanSize*gs.MeanSize > float64(maxLoadEdges):
		return nil, fmt.Errorf("generator parameters imply more than the limit of %d edges", int64(maxLoadEdges))
	}
	switch gs.Model {
	case "er":
		return gen.ErdosRenyi(gs.N, gs.M, gs.Seed), nil
	case "ba":
		return gen.BarabasiAlbert(gs.N, gs.MPer, gs.Seed), nil
	case "chunglu":
		return gen.ChungLu(gs.N, gs.Gamma, gs.AvgDeg, gs.MaxDeg, gs.Seed), nil
	case "ws":
		return gen.WattsStrogatz(gs.N, gs.K, gs.Beta, gs.Seed), nil
	case "affiliation":
		return gen.Affiliation(gs.N, gs.Communities, gs.MeanSize, gs.P, gs.Seed), nil
	default:
		return nil, fmt.Errorf("unknown generator model %q", gs.Model)
	}
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req LoadRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	g, err := buildGraph(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var info GraphInfo
	switch req.Window {
	case "":
		info, err = s.reg.Add(req.Name, g, req.Mode, req.K)
	case "none", "0":
		info, err = s.reg.AddWindowed(req.Name, g, req.Mode, req.K, 0)
	default:
		window, perr := time.ParseDuration(req.Window)
		if perr != nil || window <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad window %q (want a positive duration like \"6h\", or \"none\")", req.Window))
			return
		}
		info, err = s.reg.AddWindowed(req.Name, g, req.Mode, req.K, window)
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrDuplicate) {
			status = http.StatusConflict
		} else if errors.Is(err, ErrReadOnly) {
			status = http.StatusForbidden
			s.leaderHint(w)
		}
		writeError(w, status, err)
		return
	}
	s.logf("server: loaded graph %q mode=%s n=%d m=%d", info.Name, info.Mode, info.N, info.M)
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.reg.Info(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Remove(name); err != nil {
		status := http.StatusNotFound
		if errors.Is(err, ErrReadOnly) {
			status = http.StatusForbidden
			s.leaderHint(w)
		}
		writeError(w, status, err)
		return
	}
	s.logf("server: removed graph %q", name)
	writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	q := r.URL.Query()
	k := 10
	if qs := q.Get("k"); qs != "" {
		v, err := strconv.Atoi(qs)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad k %q: %w", qs, err))
			return
		}
		k = v
	}
	tq := TopKQuery{K: k, Algo: q.Get("algo")}
	if qs := q.Get("theta"); qs != "" {
		v, err := strconv.ParseFloat(qs, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad theta %q (want float ≥ 1)", qs))
			return
		}
		// Range validation lives in Registry.TopKQ, so the HTTP and the
		// library surface reject exactly the same values — same for the
		// approx knobs below.
		tq.Theta = v
	}
	if qs := q.Get("eps"); qs != "" {
		v, err := strconv.ParseFloat(qs, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad eps %q (want float in (0, 1))", qs))
			return
		}
		tq.Eps = v
	}
	if qs := q.Get("conf"); qs != "" {
		v, err := strconv.ParseFloat(qs, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad conf %q (want float in (0, 1))", qs))
			return
		}
		tq.Conf = v
	}
	if qs := q.Get("seed"); qs != "" {
		v, err := strconv.ParseUint(qs, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad seed %q (want uint64)", qs))
			return
		}
		tq.Seed = v
	}
	res, err := s.reg.TopKQ(name, tq)
	if err != nil {
		status := http.StatusBadRequest
		if _, lookupErr := s.reg.Info(name); lookupErr != nil {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleVertex(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	v64, err := strconv.ParseInt(r.PathValue("v"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad vertex id %q: %w", r.PathValue("v"), err))
		return
	}
	res, err := s.reg.EgoBetweenness(name, int32(v64))
	if err != nil {
		status := http.StatusBadRequest
		if _, lookupErr := s.reg.Info(name); lookupErr != nil {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.reg.Stats(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// EdgeBatch is the body of POST/DELETE /graphs/{name}/edges. On a windowed
// graph an insert batch may carry timestamps (unix milliseconds): Stamps
// gives one per edge, Ts stamps the whole batch, and neither defaults to
// the leader's receive time. Unwindowed graphs and delete batches reject
// timestamps.
type EdgeBatch struct {
	Edges  [][2]int32 `json:"edges"`
	Ts     int64      `json:"ts,omitempty"`
	Stamps []int64    `json:"stamps,omitempty"`
}

func (s *Server) handleEdges(insert bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		var batch EdgeBatch
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&batch); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		if batch.Ts != 0 && batch.Stamps != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("ts and stamps are mutually exclusive"))
			return
		}
		stamps := batch.Stamps
		if stamps == nil && batch.Ts != 0 {
			stamps = make([]int64, len(batch.Edges))
			for i := range stamps {
				stamps[i] = batch.Ts
			}
		}
		res, err := s.reg.ApplyEdgesStamped(name, batch.Edges, stamps, insert, r.URL.Query().Get("ack"))
		if err != nil {
			// A full admission queue is backpressure, not failure: 429
			// with a pacing hint. A storage failure is the server's
			// fault, not the request's. (For a failed checkpoint the
			// batch itself is already durable and applied —
			// ApplyEdgesAck documents this — but the operator needs the
			// 500 more than the client needs the partial result.)
			status := http.StatusBadRequest
			var be *BacklogError
			if errors.As(err, &be) {
				// Retry-After derived from the actual backlog: queue depth,
				// group size, and the coalescing window (see retryAfter).
				status = http.StatusTooManyRequests
				secs := int64((be.RetryAfter + time.Second - 1) / time.Second)
				w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			} else if errors.Is(err, ErrBacklog) {
				status = http.StatusTooManyRequests
				w.Header().Set("Retry-After", "1")
			} else if errors.Is(err, ErrReadOnly) {
				status = http.StatusForbidden
				s.leaderHint(w)
			} else if errors.Is(err, ErrStorage) {
				status = http.StatusInternalServerError
			} else if _, lookupErr := s.reg.Info(name); lookupErr != nil {
				status = http.StatusNotFound
			}
			writeError(w, status, err)
			return
		}
		op := "insert"
		if !insert {
			op = "delete"
		}
		if res.Pending {
			s.logf("server: graph %q %s batch admitted async (%d edges)", name, op, len(batch.Edges))
			writeJSON(w, http.StatusAccepted, res)
			return
		}
		s.logf("server: graph %q %s batch: %d applied, %d failed, epoch %d",
			name, op, res.Applied, len(res.Errors), res.Epoch)
		writeJSON(w, http.StatusOK, res)
	}
}
