package graph

import "fmt"

// Stats summarizes a graph the way Table I of the paper does, plus the
// triangle count and degeneracy-style orientation width that drive the
// O(α·m·d_max) complexity discussion.
type Stats struct {
	N            int32   // vertices
	M            int64   // undirected edges
	DMax         int32   // maximum degree
	AvgDeg       float64 // 2m/n
	Triangles    int64   // number of triangles
	MaxOutDegree int32   // max out-degree of G+ (arboricity proxy)
}

// ComputeStats gathers Stats for g. Triangle counting uses the standard
// oriented enumeration: each triangle is found exactly once at its
// ≺-smallest... highest-ranked vertex, in O(Σ_v d+(v)²) ⊆ O(α·m) time.
func ComputeStats(g View) Stats {
	st := Stats{N: g.NumVertices(), M: g.NumEdges(), DMax: g.MaxDegree()}
	if st.N > 0 {
		st.AvgDeg = 2 * float64(st.M) / float64(st.N)
	}
	o := Orient(g)
	st.MaxOutDegree = o.MaxOutDegree()
	st.Triangles = CountTriangles(g, o)
	return st
}

// CountTriangles counts triangles using the orientation o of g: for every
// oriented edge (u, v), the common out-neighbors of u and v each close one
// triangle, and every triangle is counted exactly once this way.
func CountTriangles(g View, o *Oriented) int64 {
	var total int64
	for u := int32(0); u < g.NumVertices(); u++ {
		outU := o.OutNeighbors(u)
		for _, v := range outU {
			total += int64(CountCommonSorted(outU, o.OutNeighbors(v)))
		}
	}
	return total
}

// String renders Stats as a Table I style row.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d dmax=%d avg=%.2f triangles=%d maxout=%d",
		s.N, s.M, s.DMax, s.AvgDeg, s.Triangles, s.MaxOutDegree)
}
