package main

import (
	"strings"
	"testing"
)

// TestRunRejectsBadPreload: run must fail fast on an unknown dataset or an
// invalid maintenance mode instead of starting a half-configured server.
func TestRunRejectsBadPreload(t *testing.T) {
	err := run("127.0.0.1:0", "not-a-dataset", "local", 10, 0)
	if err == nil || !strings.Contains(err.Error(), "not-a-dataset") {
		t.Fatalf("unknown dataset: err = %v", err)
	}
	err = run("127.0.0.1:0", "ir", "bogus-mode", 10, 2)
	if err == nil || !strings.Contains(err.Error(), "bogus-mode") {
		t.Fatalf("bad mode: err = %v", err)
	}
}
