// Package topk provides the two ordered structures the search and
// maintenance algorithms are built on: Bounded, the size-k result set R kept
// as a min-heap so the current k-th best score (the pruning threshold) is
// O(1); and MaxHeap, the sorted candidate list H of OptBSearch keyed by
// upper bounds.
package topk
