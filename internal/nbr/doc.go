// Package nbr is the shared neighborhood-intersection kernel layer. Every
// hot path of the reproduction — the evidence engine behind the top-k
// searches, the dynamic maintainers' local repair scans, and the parallel
// PEBW workers — bottoms out in common-neighbor intersection over sorted
// adjacency lists. This package implements that core once, with three
// strategies selected adaptively:
//
//   - linear merge for size-balanced lists: one pass over both, O(|a|+|b|);
//   - galloping (exponential probe + binary search) when one list is much
//     longer than the other, O(|small| · log |large|);
//   - bitset registers for hub centers: the center's neighborhood is marked
//     once into a pooled bitset, and every subsequent intersection against
//     it costs O(|other|) probes — amortizing the marking cost across all
//     of the center's pair scans.
//
// All three strategies produce the identical ascending result set, so
// swapping one for another never changes any downstream score — the kernels
// differ only in how they walk the inputs, not in what they emit.
//
// The package is a leaf: it depends on nothing else in the repository, so
// every layer (graph, ego, dynamic, parallel, server) can use it without
// import cycles. Registers and scratch buffers are pooled (sync.Pool), so
// steady-state callers allocate nothing.
package nbr
