package nbr

// View is the neighbor-slice access the kernels need from a graph
// representation. It is satisfied structurally by graph.View — the frozen
// CSR, the copy-on-write overlay, and the mutable dynamic graph — without
// this package importing the graph package (graph itself builds on nbr).
// Implementations must return sorted ascending neighbor lists that the
// kernels may read but never modify.
type View interface {
	Degree(v int32) int32
	Neighbors(v int32) []int32
}

// CommonInto appends N(u) ∩ N(v) of the view to dst and returns the
// extended slice, dispatching on the adaptive merge/gallop kernels. It is
// the view-level entry point the evidence engines and maintainers use so
// they run identically on any representation.
func CommonInto(dst []int32, g View, u, v int32) []int32 {
	return IntersectInto(dst, g.Neighbors(u), g.Neighbors(v))
}

// CommonCount returns |N(u) ∩ N(v)| without materializing the intersection.
func CommonCount(g View, u, v int32) int {
	return IntersectCount(g.Neighbors(u), g.Neighbors(v))
}

// EachCommon calls fn for every w ∈ N(u) ∩ N(v) in ascending order,
// stopping early when fn returns false. It allocates nothing.
func EachCommon(g View, u, v int32, fn func(int32) bool) {
	ForEachCommon(g.Neighbors(u), g.Neighbors(v), fn)
}
