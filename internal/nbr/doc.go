// Package nbr is the shared neighborhood-intersection kernel layer. Every
// hot path of the reproduction — the evidence engine behind the top-k
// searches, the dynamic maintainers' local repair scans, and the parallel
// PEBW workers — bottoms out in common-neighbor intersection over sorted
// adjacency lists. This package implements that core once, with four
// strategies selected adaptively:
//
//   - linear merge for size-balanced lists: one pass over both, O(|a|+|b|);
//   - galloping (exponential probe + binary search) when one list is much
//     longer than the other, O(|small| · log |large|);
//   - bitset registers for hub centers: the center's neighborhood is marked
//     once into a pooled bitset, and every subsequent intersection against
//     it costs O(|other|) probes — amortizing the marking cost across all
//     of the center's pair scans;
//   - word-parallel AND for hub×hub pairs: with both neighborhoods marked
//     into Registers, AndInto/AndCount intersect 64 vertices per machine
//     word (OnesCount64/TrailingZeros64) and a one-bit-per-word summary
//     skips empty 64-word blocks, so sparse intersections never touch the
//     gaps between hub neighborhoods.
//
// All four strategies produce the identical ascending result set, so
// swapping one for another never changes any downstream score — the kernels
// differ only in how they walk the inputs, not in what they emit.
//
// Caller contract for strategy selection: the pairwise entry points
// (IntersectInto, IntersectCount, ForEachCommon, the view-level Common*)
// dispatch only between linear and gallop — Choose never returns
// StrategyBitset or StrategyWord, because both register strategies carry a
// marking cost that only a caller looping over many intersections of the
// same side can amortize. Such callers decide centrally through
// ChooseHub(la, lb): StrategyWord means "mark both sides, run the
// word-parallel AND", StrategyBitset means "mark the hub side once, probe
// the rest", and anything else defers to the pairwise kernels. Passing 0
// for one length asks about a single amortizable side.
//
// The package is a leaf: it depends on nothing else in the repository, so
// every layer (graph, ego, dynamic, parallel, server) can use it without
// import cycles. Registers and scratch buffers are pooled (sync.Pool), so
// steady-state callers allocate nothing; Register.Unmark is O(1) via an
// epoch counter, so recycling a register costs nothing even after marking
// millions of vertices.
package nbr
