package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// tiny returns a configuration that finishes in well under a second per
// experiment, for unit-testing the harness plumbing itself.
func tiny(out *bytes.Buffer) Config {
	t := Quick(out)
	t.Datasets = []string{"ir"}
	t.Ks = []int{20}
	t.EffKs = []int{20}
	t.CaseKs = []int{10}
	t.Thetas = []float64{1.05}
	t.Threads = []int{2}
	t.Fractions = []float64{0.3}
	t.Updates = 30
	t.UpdateK = 20
	t.ScaleDS = "ir"
	t.ThetaDS = []string{"ir"}
	t.EffDS = []string{"ir"}
	return t
}

func TestTable1ReportsAllDatasets(t *testing.T) {
	var buf bytes.Buffer
	rows := Table1(tiny(&buf))
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	for _, r := range rows {
		if r.Stats.N == 0 || r.Stats.M == 0 {
			t.Errorf("%s: empty stats", r.Name)
		}
	}
}

func TestTable2OptNeverComputesMore(t *testing.T) {
	var buf bytes.Buffer
	rows := Table2(tiny(&buf))
	for _, r := range rows {
		if r.OptComp > r.BaseComp {
			t.Errorf("%s k=%d: Opt computed %d > Base %d — Table II claim violated",
				r.Dataset, r.K, r.OptComp, r.BaseComp)
		}
		if r.OptComp < int64(r.K) {
			t.Errorf("%s k=%d: Opt computed %d < k", r.Dataset, r.K, r.OptComp)
		}
	}
}

func TestFig6OptWins(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig6(tiny(&buf))
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		// The paper's headline: OptBSearch is faster. Tolerate up to a
		// small constant factor of noise on tiny graphs.
		if float64(r.OptTime) > 3*float64(r.BaseTime) {
			t.Errorf("%s k=%d: Opt %v much slower than Base %v",
				r.Dataset, r.K, r.OptTime, r.BaseTime)
		}
	}
}

func TestFig8LaziesRun(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig8(tiny(&buf))
	for _, r := range rows {
		if r.LocalInsert <= 0 || r.LazyInsert < 0 || r.LocalDelete <= 0 || r.LazyDelete < 0 {
			t.Errorf("%s: non-positive timings: %+v", r.Dataset, r)
		}
	}
}

func TestFig9CoversBothModes(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig9(tiny(&buf))
	modes := map[string]int{}
	for _, r := range rows {
		modes[r.Mode]++
	}
	if modes["edges"] == 0 || modes["vertices"] == 0 {
		t.Fatalf("missing sampling mode: %v", modes)
	}
}

func TestFig10ReportsBounds(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig10(tiny(&buf))
	if len(rows) != 2 { // 2 strategies × 1 thread count
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SpeedupBound < 1 || r.Time <= 0 {
			t.Errorf("row %+v: bad bound or time", r)
		}
	}
}

func TestFig11OverlapInRange(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig11(tiny(&buf))
	for _, r := range rows {
		if r.Overlap < 0 || r.Overlap > 1 {
			t.Errorf("overlap %v out of range", r.Overlap)
		}
		if r.EBWTime > r.BWTime {
			t.Errorf("%s k=%d: TopEBW (%v) slower than TopBW (%v)",
				r.Dataset, r.K, r.EBWTime, r.BWTime)
		}
	}
}

func TestCaseStudyTables(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny(&buf)
	rows := Table4(cfg) // IR is the smaller case study
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	out := buf.String()
	if !strings.Contains(out, "Top-10 EBW") || !strings.Contains(out, "overlap") {
		t.Errorf("table output incomplete:\n%s", out)
	}
}

// TestExpiryDrainMeasures exercises the PR 9 drain-measurement protocol at
// one small tier: every sample must be counter-verified (the cohort really
// expired inside the timed drain) and the cohort row must cost at least the
// no-expiry baseline.
func TestExpiryDrainMeasures(t *testing.T) {
	g := dataset.MustLoad("ir")
	base := expiryDrain(g, 0)
	with := expiryDrain(g, 16)
	if base <= 0 || with <= 0 {
		t.Fatalf("no verified samples: b0=%d b16=%d", base, with)
	}
}

func TestRunDispatch(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table1", tiny(&buf)); err != nil {
		t.Fatal(err)
	}
	if err := Run("nope", tiny(&buf)); err == nil {
		t.Fatal("unknown experiment must error")
	}
	if buf.Len() == 0 {
		t.Fatal("no output written")
	}
}
