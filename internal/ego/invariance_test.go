package ego

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestIsomorphismInvariance: relabeling vertices by a random permutation
// must permute the CB vector identically — ego-betweenness is a structural
// quantity, independent of identifiers (which also exercises the id-based
// tie-breaking paths for hidden label dependencies).
func TestIsomorphismInvariance(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		g := gen.Random(seed, 40)
		n := g.NumVertices()
		rng := rand.New(rand.NewPCG(seed, 0x150))
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		rng.Shuffle(int(n), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })

		var relabeled [][2]int32
		g.EachEdge(func(u, v int32) bool {
			relabeled = append(relabeled, [2]int32{perm[u], perm[v]})
			return true
		})
		h := graph.MustFromEdges(n, relabeled)

		cbG := ComputeAll(g)
		cbH := ComputeAll(h)
		for v := int32(0); v < n; v++ {
			if math.Abs(cbG[v]-cbH[perm[v]]) > 1e-9 {
				t.Fatalf("seed %d: CB(%d)=%v but CB(perm=%d)=%v",
					seed, v, cbG[v], perm[v], cbH[perm[v]])
			}
		}
	}
}

// TestDisjointUnionInvariance: CB values inside one component must not
// change when an unrelated component is added to the graph.
func TestDisjointUnionInvariance(t *testing.T) {
	a := gen.ErdosRenyi(40, 120, 1)
	b := gen.BarabasiAlbert(30, 2, 2)
	var union [][2]int32
	a.EachEdge(func(u, v int32) bool {
		union = append(union, [2]int32{u, v})
		return true
	})
	off := a.NumVertices()
	b.EachEdge(func(u, v int32) bool {
		union = append(union, [2]int32{u + off, v + off})
		return true
	})
	u := graph.MustFromEdges(off+b.NumVertices(), union)

	cbA := ComputeAll(a)
	cbB := ComputeAll(b)
	cbU := ComputeAll(u)
	for v := int32(0); v < off; v++ {
		if math.Abs(cbU[v]-cbA[v]) > 1e-9 {
			t.Fatalf("component A vertex %d changed: %v vs %v", v, cbU[v], cbA[v])
		}
	}
	for v := int32(0); v < b.NumVertices(); v++ {
		if math.Abs(cbU[off+v]-cbB[v]) > 1e-9 {
			t.Fatalf("component B vertex %d changed: %v vs %v", v, cbU[off+v], cbB[v])
		}
	}
}

// TestKnownClosedForms pins CB on structured families where Definition 2
// has a closed form.
func TestKnownClosedForms(t *testing.T) {
	// Complete bipartite star-of-stars: wheel graph W_n (cycle + hub).
	// Hub of W_n (n ≥ 5 rim vertices): rim pairs adjacent on the cycle
	// contribute 0; non-adjacent rim pairs have no common rim neighbor in
	// the hub's ego except... rim vertices at cycle-distance 2 share one
	// rim neighbor, so c=1 → 1/2; farther pairs c=0 → 1.
	for _, n := range []int32{5, 6, 8, 11} {
		var edges [][2]int32
		for i := int32(0); i < n; i++ {
			edges = append(edges, [2]int32{n, i}) // hub = n
			edges = append(edges, [2]int32{i, (i + 1) % n})
		}
		g := graph.MustFromEdges(n+1, edges)
		cb := ComputeAll(g)
		pairs := float64(n) * float64(n-1) / 2
		adjacent := float64(n) // cycle edges
		distTwo := float64(n)  // each rim vertex has two at distance 2 → n pairs
		rest := pairs - adjacent - distTwo
		want := distTwo/2 + rest
		if n == 5 {
			// On C5, "distance 2" pairs are all non-adjacent pairs; each
			// such pair has exactly one rim connector.
			want = (pairs - adjacent) / 2
		}
		if math.Abs(cb[n]-want) > 1e-9 {
			t.Errorf("wheel W_%d hub: CB=%v, want %v", n, cb[n], want)
		}
		// Cross-check the closed form against the BFS oracle.
		if ref := ReferenceBFS(g, n); math.Abs(cb[n]-ref) > 1e-9 {
			t.Errorf("wheel W_%d hub: CB=%v, oracle %v", n, cb[n], ref)
		}
	}

	// Complete bipartite K_{2,m}: each left vertex sees m pairwise
	// non-adjacent right vertices, and no right pair has any connector
	// inside that ego — the other left vertex is not adjacent to this one,
	// so it is outside the ego network → CB(left) = C(m,2) exactly. Each
	// right vertex sees only the two left vertices, non-adjacent with no
	// connector in its ego → CB(right) = 1 exactly.
	for _, m := range []int32{2, 3, 5, 9} {
		var edges [][2]int32
		for r := int32(0); r < m; r++ {
			edges = append(edges, [2]int32{0, 2 + r}, [2]int32{1, 2 + r})
		}
		g := graph.MustFromEdges(m+2, edges)
		cb := ComputeAll(g)
		wantLeft := float64(m) * float64(m-1) / 2
		if math.Abs(cb[0]-wantLeft) > 1e-9 || math.Abs(cb[1]-wantLeft) > 1e-9 {
			t.Errorf("K_{2,%d} left: CB=%v,%v want %v", m, cb[0], cb[1], wantLeft)
		}
		for r := int32(0); r < m; r++ {
			if math.Abs(cb[2+r]-1) > 1e-9 {
				t.Errorf("K_{2,%d} right %d: CB=%v want 1", m, r, cb[2+r])
			}
			if ref := ReferenceBFS(g, 2+r); math.Abs(cb[2+r]-ref) > 1e-9 {
				t.Errorf("K_{2,%d} right %d: CB=%v oracle %v", m, r, cb[2+r], ref)
			}
		}
	}
}

// TestDegreeOnePendantContributesNothing: attaching a pendant leaf to v
// increases CB(v) by exactly the number of v's other neighbors not adjacent
// to ... each new pair (leaf, x) has no connector except through v, so the
// delta is Σ_{x} 1/(c_v(leaf,x)+1) = d_old(v) · 1 (leaf shares no common
// neighbors with anyone).
func TestDegreeOnePendantContributesNothing(t *testing.T) {
	for seed := uint64(30); seed < 40; seed++ {
		g := gen.Random(seed, 25)
		n := g.NumVertices()
		v := int32(0)
		before := EgoBetweenness(g, v, nil)
		var edges [][2]int32
		g.EachEdge(func(a, b int32) bool {
			edges = append(edges, [2]int32{a, b})
			return true
		})
		edges = append(edges, [2]int32{v, n}) // pendant leaf n
		h := graph.MustFromEdges(n+1, edges)
		after := EgoBetweenness(h, v, nil)
		want := before + float64(g.Degree(v))
		if math.Abs(after-want) > 1e-9 {
			t.Fatalf("seed %d: pendant delta: CB %v → %v, want %v",
				seed, before, after, want)
		}
		// And the leaf itself has CB 0.
		if lf := EgoBetweenness(h, n, nil); lf != 0 {
			t.Fatalf("leaf CB = %v", lf)
		}
	}
}
