package pairmap

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestKeyPacking(t *testing.T) {
	cases := [][2]int32{{0, 1}, {1, 0}, {5, 9}, {9, 5}, {0, 2147483647}}
	for _, c := range cases {
		k := Key(c[0], c[1])
		if k == emptySlot || k == tombstone {
			t.Fatalf("Key(%d,%d) collides with a sentinel", c[0], c[1])
		}
		lo, hi := Split(k)
		wantLo, wantHi := c[0], c[1]
		if wantLo > wantHi {
			wantLo, wantHi = wantHi, wantLo
		}
		if lo != wantLo || hi != wantHi {
			t.Fatalf("Split(Key(%d,%d)) = (%d,%d)", c[0], c[1], lo, hi)
		}
	}
	if Key(3, 7) != Key(7, 3) {
		t.Fatal("Key must be order-insensitive")
	}
}

func TestMapBasics(t *testing.T) {
	m := New()
	k := Key(1, 2)
	if _, ok := m.Get(k); ok {
		t.Fatal("empty map claims membership")
	}
	if got := m.Add(k, 1); got != 1 {
		t.Fatalf("Add = %d, want 1", got)
	}
	if got := m.Add(k, 2); got != 3 {
		t.Fatalf("Add = %d, want 3", got)
	}
	if v, ok := m.Get(k); !ok || v != 3 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	// Decrement back to zero removes the entry entirely.
	m.Add(k, -3)
	if _, ok := m.Get(k); ok {
		t.Fatal("entry survived decrement to zero")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after removal", m.Len())
	}
}

func TestMarkerSemantics(t *testing.T) {
	m := New()
	k := Key(4, 9)
	m.SetMarker(k)
	if !m.IsMarker(k) {
		t.Fatal("marker not set")
	}
	m.SetMarker(k) // idempotent
	if m.Len() != 1 {
		t.Fatalf("Len = %d after double mark", m.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add on a marker must panic")
		}
	}()
	m.Add(k, 1)
}

func TestNegativeCountPanics(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative count must panic")
		}
	}()
	m.Add(Key(1, 2), -1)
}

func TestDeleteAndTombstoneReuse(t *testing.T) {
	m := New()
	for i := int32(0); i < 100; i++ {
		m.Set(Key(i, i+1), i+1)
	}
	for i := int32(0); i < 100; i += 2 {
		if !m.Delete(Key(i, i+1)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if m.Delete(Key(0, 1)) {
		t.Fatal("double delete returned true")
	}
	if m.Len() != 50 {
		t.Fatalf("Len = %d, want 50", m.Len())
	}
	for i := int32(1); i < 100; i += 2 {
		if v, ok := m.Get(Key(i, i+1)); !ok || v != i+1 {
			t.Fatalf("survivor %d: got %d,%v", i, v, ok)
		}
	}
	// Reinsert into tombstoned slots.
	for i := int32(0); i < 100; i += 2 {
		m.Set(Key(i, i+1), 7)
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d after reinserts", m.Len())
	}
}

func TestIterate(t *testing.T) {
	m := New()
	want := map[uint64]int32{}
	for i := int32(0); i < 200; i++ {
		k := Key(i, i+100+i%3)
		m.Set(k, i)
		want[k] = i
	}
	got := map[uint64]int32{}
	m.Iterate(func(k uint64, v int32) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("iterated %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: got %d, want %d", k, got[k], v)
		}
	}
	// Early stop.
	count := 0
	m.Iterate(func(uint64, int32) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestReset(t *testing.T) {
	m := New()
	for i := int32(0); i < 50; i++ {
		m.Set(Key(i, i+1), 1)
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Len = %d after reset", m.Len())
	}
	if _, ok := m.Get(Key(3, 4)); ok {
		t.Fatal("entry survived reset")
	}
	m.Set(Key(3, 4), 9)
	if v, _ := m.Get(Key(3, 4)); v != 9 {
		t.Fatal("map unusable after reset")
	}
}

// TestQuickAgainstBuiltinMap drives random operation sequences against
// map[uint64]int32 as the oracle.
func TestQuickAgainstBuiltinMap(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		m := New()
		oracle := map[uint64]int32{}
		for op := 0; op < 2000; op++ {
			i := rng.Int32N(40)
			j := rng.Int32N(40)
			if i == j {
				continue
			}
			k := Key(i, j)
			switch rng.IntN(4) {
			case 0: // Add 1 (skip if oracle holds marker)
				if v, ok := oracle[k]; !ok || v != 0 {
					m.Add(k, 1)
					oracle[k] = oracle[k] + 1
				}
			case 1: // Set arbitrary positive
				v := rng.Int32N(100) + 1
				m.Set(k, v)
				oracle[k] = v
			case 2: // Delete
				if m.Delete(k) != (func() bool { _, ok := oracle[k]; return ok })() {
					return false
				}
				delete(oracle, k)
			case 3: // Marker
				m.SetMarker(k)
				oracle[k] = 0
			}
			if m.Len() != len(oracle) {
				return false
			}
		}
		for k, v := range oracle {
			got, ok := m.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(4)
	if s.Contains(Key(1, 2)) {
		t.Fatal("empty set claims membership")
	}
	if !s.Insert(Key(1, 2)) {
		t.Fatal("first insert returned false")
	}
	if s.Insert(Key(1, 2)) {
		t.Fatal("duplicate insert returned true")
	}
	for i := int32(0); i < 1000; i++ {
		s.Insert(Key(i, i+1))
	}
	// Key(1,2) was already present, so 1000 distinct keys total.
	if s.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", s.Len())
	}
	for i := int32(0); i < 1000; i++ {
		if !s.Contains(Key(i, i+1)) {
			t.Fatalf("lost key %d after growth", i)
		}
	}
	if s.Contains(Key(2000, 2001)) {
		t.Fatal("phantom membership")
	}
}

func TestMemoryFootprint(t *testing.T) {
	m := NewWithCapacity(1000)
	if m.MemoryFootprint() <= 0 {
		t.Fatal("footprint must be positive")
	}
}

// TestTableRoundTrip drives a map through a mixed insert/overwrite/delete
// history, dumps the raw table, rebuilds via FromTable, and checks the copy
// behaves identically — including tombstones and live counts surviving the
// round trip verbatim.
func TestTableRoundTrip(t *testing.T) {
	m := New()
	for i := int32(0); i < 300; i++ {
		m.Set(Key(i, i+7), i+1)
	}
	for i := int32(0); i < 300; i += 3 {
		m.Delete(Key(i, i+7))
	}
	m.SetMarker(Key(2, 5))

	keys, vals := m.Table()
	got, err := FromTable(append([]uint64(nil), keys...), append([]int32(nil), vals...), 1000)
	if err != nil {
		t.Fatalf("FromTable: %v", err)
	}
	if got.Len() != m.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), m.Len())
	}
	m.Iterate(func(k uint64, val int32) bool {
		v, ok := got.Get(k)
		if !ok || v != val {
			t.Fatalf("key %d: got (%d,%v), want (%d,true)", k, v, ok, val)
		}
		return true
	})
	// The rebuilt map must keep working as a hash table: insert enough new
	// entries to force growth, then verify old and new coexist.
	for i := int32(500); i < 900; i++ {
		got.Set(Key(i, i+1), 9)
	}
	if v, ok := got.Get(Key(1, 8)); !ok || v != 2 {
		t.Fatalf("lost pre-round-trip entry after growth: (%d,%v)", v, ok)
	}
	if !got.IsMarker(Key(2, 5)) {
		t.Fatal("marker entry lost in round trip")
	}
}

// TestFromTableRejects enumerates the structural defects FromTable must
// refuse: size/shape violations, non-canonical keys, out-of-bound vertices,
// negative counts, and over-full tables whose probes could not terminate.
func TestFromTableRejects(t *testing.T) {
	mk := func(edit func(keys []uint64, vals []int32)) ([]uint64, []int32) {
		keys := make([]uint64, 8)
		vals := make([]int32, 8)
		edit(keys, vals)
		return keys, vals
	}
	cases := []struct {
		name string
		keys []uint64
		vals []int32
	}{
		{name: "length mismatch", keys: make([]uint64, 8), vals: make([]int32, 4)},
		{name: "not power of two", keys: make([]uint64, 12), vals: make([]int32, 12)},
		{name: "too small", keys: make([]uint64, 4), vals: make([]int32, 4)},
	}
	addCase := func(name string, edit func(keys []uint64, vals []int32)) {
		k, v := mk(edit)
		cases = append(cases, struct {
			name string
			keys []uint64
			vals []int32
		}{name, k, v})
	}
	addCase("non-canonical key (hi ≥ lo)", func(keys []uint64, _ []int32) {
		keys[0] = uint64(9)<<32 | 3
	})
	addCase("vertex beyond bound", func(keys []uint64, _ []int32) {
		keys[0] = Key(1, 99)
	})
	addCase("negative count", func(keys []uint64, vals []int32) {
		keys[0], vals[0] = Key(1, 2), -1
	})
	addCase("over-full table", func(keys []uint64, _ []int32) {
		for i := range keys {
			keys[i] = tombstone
		}
	})
	for _, tc := range cases {
		if _, err := FromTable(tc.keys, tc.vals, 10); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The happy path with the same bound, as a control.
	keys, vals := mk(func(keys []uint64, vals []int32) {
		keys[0], vals[0] = Key(1, 2), 3
	})
	if _, err := FromTable(keys, vals, 10); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
}
