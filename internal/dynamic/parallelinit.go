package dynamic

import (
	"repro/internal/graph"
	"repro/internal/parallel"
)

// NewMaintainerParallel builds the exact maintainer with the initial
// all-vertices computation routed through the EdgePEBW parallel engine at
// the given worker budget (workers ≤ 1 falls back to the sequential
// construction). The evidence maps the engine produces are taken over
// directly, so the maintainer starts from the same state as the sequential
// path; scores can differ from it only in the last bits of the float
// summation order.
func NewMaintainerParallel(g *graph.Graph, workers int) *Maintainer {
	if workers <= 1 {
		return NewMaintainer(g)
	}
	cb, maps, _ := parallel.ComputeAllWithMaps(g, workers, parallel.EdgePEBW)
	return NewMaintainerFromScores(g, cb, maps)
}

// NewLazyTopKParallel builds the lazy top-k maintainer with the initial
// score vector computed by the EdgePEBW parallel engine (workers ≤ 1 falls
// back to the sequential construction).
func NewLazyTopKParallel(g *graph.Graph, k, workers int) *LazyTopK {
	if workers <= 1 {
		return NewLazyTopK(g, k)
	}
	cb, _, _ := parallel.ComputeAllWithMaps(g, workers, parallel.EdgePEBW)
	return NewLazyTopKFromScores(g, k, cb)
}
