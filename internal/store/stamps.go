package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/graph"
)

// Temporal section of a version-2 snapshot. A graph served with a sliding
// window persists its window length and the admission timestamp of every
// live edge alongside the CSR, so recovery (and a replica bootstrapping from
// a shipped checkpoint) resumes expiring exactly where the leader left off —
// no stamp is ever re-derived from a clock. The section mirrors the
// maintainer-state frame and is the last section of the file, after the
// maintainer state and relabel permutation when those are present:
//
//	[S+0]  magic      [4]byte "EBTS"
//	[S+4]  version    uint16 (TemporalVersion)
//	[S+6]  reserved   uint16 (must be 0)
//	[S+8]  n          uint32 (must equal the graph part's n)
//	[S+12] reserved   uint32 (must be 0)
//	[S+16] payloadLen uint64 = 16 + 8m, then the payload:
//	         windowMS uint64 (sliding window length, unix milliseconds)
//	         m        uint64 (must equal the graph part's m)
//	         stamps   m × int64 unix ms, one per edge in canonical CSR
//	                  order (ascending u, then ascending v, u < v)
//	[..]   crc        uint32 (IEEE, over the section from S through payload)
//
// Like its sibling sections, the CRC covers only the section: a corrupt
// temporal section never blocks loading the graph — recovery serves the
// graph unwindowed and surfaces the decode error instead of inventing
// stamps.
const (
	// TemporalVersion is the temporal-section format version.
	TemporalVersion = 1
)

var stampsMagic = [4]byte{'E', 'B', 'T', 'S'}

// TemporalState is the decoded temporal section: the graph's sliding-window
// length and one admission stamp per edge, in canonical CSR edge order.
type TemporalState struct {
	WindowMS uint64
	Stamps   []int64
}

// empty reports whether there is nothing to persist: no window configured.
// A windowed graph with zero edges still encodes (the window length itself
// must survive recovery).
func (ts *TemporalState) empty() bool {
	return ts == nil || ts.WindowMS == 0
}

// EncodeSnapshotFull serializes g, its metadata, and all optional trailing
// sections: maintainer state, relabel permutation, and temporal state. With
// none present it degrades to the bit-identical version-1 format.
func EncodeSnapshotFull(g *graph.Graph, meta SnapshotMeta, st *MaintainerState, perm []int32, ts *TemporalState) []byte {
	if st.empty() && len(perm) == 0 && ts.empty() {
		return EncodeSnapshot(g, meta)
	}
	n := int(g.NumVertices())
	extra := 0
	if !st.empty() {
		extra += 7 + stateSectionLen(n, st)
	}
	if len(perm) > 0 {
		extra += 7 + stateHeaderLen + 4*len(perm) + 4
	}
	if !ts.empty() {
		extra += 7 + stateHeaderLen + 16 + 8*len(ts.Stamps) + 4
	}
	buf := encodeGraphPart(g, meta, SnapshotVersionState, extra)
	if !st.empty() {
		for len(buf)%8 != 0 {
			buf = append(buf, 0)
		}
		buf = appendStateSection(buf, uint32(n), st)
	}
	if len(perm) > 0 {
		for len(buf)%8 != 0 {
			buf = append(buf, 0)
		}
		buf = appendPermSection(buf, uint32(n), perm)
	}
	if !ts.empty() {
		for len(buf)%8 != 0 {
			buf = append(buf, 0)
		}
		buf = appendStampsSection(buf, uint32(n), ts)
	}
	return buf
}

// appendStampsSection appends the framed temporal section to buf (whose
// length must already be 8-aligned, making the int64 payload mappable).
func appendStampsSection(buf []byte, n uint32, ts *TemporalState) []byte {
	start := len(buf)
	buf = append(buf, stampsMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, TemporalVersion)
	buf = append(buf, 0, 0)
	buf = binary.LittleEndian.AppendUint32(buf, n)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(16+8*len(ts.Stamps)))
	buf = binary.LittleEndian.AppendUint64(buf, ts.WindowMS)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(ts.Stamps)))
	buf = appendWords(buf, ts.Stamps)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// DecodeSnapshotStamps extracts the temporal section of a snapshot image, or
// (nil, nil) when the snapshot carries none (every version-1 file, and
// version-2 files checkpointed without a window). An error means the section
// is present but unusable — the caller serves the graph unwindowed and
// reports it, rather than expiring on fabricated stamps. The returned stamp
// slice aliases data zero-copy on little-endian hosts; the caller must not
// modify data afterwards.
func DecodeSnapshotStamps(data []byte) (*TemporalState, error) {
	version, n, graphLen, err := snapshotLayout(data)
	if err != nil {
		return nil, err
	}
	if version == SnapshotVersion {
		return nil, nil
	}
	m := binary.LittleEndian.Uint64(data[24:32])
	pos, err := skipSectionPadding(data, graphLen)
	if err != nil {
		return nil, err
	}
	for pos < uint64(len(data)) {
		if uint64(len(data))-pos < stateHeaderLen+4 {
			return nil, fmt.Errorf("store: temporal section truncated (%d trailing bytes)", uint64(len(data))-pos)
		}
		magic := [4]byte(data[pos : pos+4])
		payloadLen := binary.LittleEndian.Uint64(data[pos+16 : pos+24])
		if payloadLen > uint64(len(data))-pos-stateHeaderLen-4 {
			return nil, fmt.Errorf("store: snapshot section %q overruns the snapshot", magic[:])
		}
		sec := data[pos : pos+stateHeaderLen+payloadLen+4]
		if magic == stampsMagic {
			return decodeStampsSection(sec, n, m)
		}
		if magic != stateMagic && magic != permMagic {
			return nil, fmt.Errorf("store: unknown snapshot section magic %q", magic[:])
		}
		pos += stateHeaderLen + payloadLen + 4
		if pos, err = skipSectionPadding(data, pos); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// decodeStampsSection validates and decodes one framed temporal section
// against the graph part's n and m.
func decodeStampsSection(sec []byte, n, m uint64) (*TemporalState, error) {
	if v := binary.LittleEndian.Uint16(sec[4:6]); v != TemporalVersion {
		return nil, fmt.Errorf("store: unsupported temporal-section version %d (this build reads %d)", v, TemporalVersion)
	}
	if binary.LittleEndian.Uint16(sec[6:8]) != 0 || binary.LittleEndian.Uint32(sec[12:16]) != 0 {
		return nil, fmt.Errorf("store: corrupt temporal-section header (reserved fields)")
	}
	if secN := binary.LittleEndian.Uint32(sec[8:12]); uint64(secN) != n {
		return nil, fmt.Errorf("store: temporal section covers n=%d, snapshot graph has n=%d", secN, n)
	}
	payloadLen := binary.LittleEndian.Uint64(sec[16:24])
	if payloadLen < 16 || (payloadLen-16)%8 != 0 {
		return nil, fmt.Errorf("store: temporal payload is %d bytes, not 16+8m", payloadLen)
	}
	body, crcBytes := sec[:stateHeaderLen+payloadLen], sec[stateHeaderLen+payloadLen:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(crcBytes); got != want {
		return nil, fmt.Errorf("store: temporal-section checksum mismatch (file %#x, computed %#x)", want, got)
	}
	payload := body[stateHeaderLen:]
	ts := &TemporalState{WindowMS: binary.LittleEndian.Uint64(payload[0:8])}
	if ts.WindowMS == 0 {
		return nil, fmt.Errorf("store: temporal section with zero window")
	}
	secM := binary.LittleEndian.Uint64(payload[8:16])
	if secM != m {
		return nil, fmt.Errorf("store: temporal section stamps %d edges, snapshot graph has %d", secM, m)
	}
	if payloadLen != 16+8*secM {
		return nil, fmt.Errorf("store: temporal payload frames %d bytes, m=%d implies %d", payloadLen, secM, 16+8*secM)
	}
	ts.Stamps = aliasWords[int64](payload[16:], secM)
	return ts, nil
}
