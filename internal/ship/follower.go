package ship

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/store"
)

// followState is one graph's replication cursor. offset < 0 marks a cursor
// that lost its segment position (follower restart, leader checkpoint) and
// must resynchronize before tailing again.
type followState struct {
	bootstrapped bool   // local state exists and descends from a leader checkpoint
	segment      uint64 // WAL segment being tailed
	offset       int64  // next byte to fetch within the segment (<0: resync needed)
	next         uint64 // sequence the record at offset must carry
	applied      uint64 // last sequence applied locally
}

// Follower drives a Target from a leader's shipping endpoints: bootstrap
// from a checkpoint, tail the WAL stream, resynchronize across leader
// checkpoints and restarts. One sync pass per graph per interval; within a
// pass it loops until caught up, so a fresh or lagging follower converges at
// fetch speed rather than one chunk per tick.
//
// Not safe for concurrent use — run one Follower per Target, either via Run
// or by calling SyncOnce from a single goroutine (tests do the latter).
type Follower struct {
	client   *Client
	target   Target
	interval time.Duration
	graphs   []string // fixed set; empty = follow whatever the leader lists
	logf     func(format string, args ...any)
	state    map[string]*followState
}

// FollowerOption configures a Follower.
type FollowerOption func(*Follower)

// WithInterval sets the poll interval for Run (default 200ms).
func WithInterval(d time.Duration) FollowerOption {
	return func(f *Follower) {
		if d > 0 {
			f.interval = d
		}
	}
}

// WithGraphs pins the follower to an explicit graph set instead of
// discovering the leader's list each pass.
func WithGraphs(names ...string) FollowerOption {
	return func(f *Follower) { f.graphs = names }
}

// WithLogf routes follower progress and error lines (default: silent).
func WithLogf(logf func(format string, args ...any)) FollowerOption {
	return func(f *Follower) {
		if logf != nil {
			f.logf = logf
		}
	}
}

// NewFollower wires a client to a target.
func NewFollower(client *Client, target Target, opts ...FollowerOption) *Follower {
	f := &Follower{
		client:   client,
		target:   target,
		interval: 200 * time.Millisecond,
		logf:     func(string, ...any) {},
		state:    make(map[string]*followState),
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Run polls until ctx is cancelled. Per-graph errors are logged and retried
// next tick, never fatal — a follower outlives leader restarts by design.
func (f *Follower) Run(ctx context.Context) error {
	ticker := time.NewTicker(f.interval)
	defer ticker.Stop()
	for {
		if err := f.SyncOnce(ctx); err != nil && ctx.Err() == nil {
			f.logf("follow: %v", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// SyncOnce runs one full pass: enumerate graphs, then bootstrap/tail each
// until it is caught up with the leader's durable sequence. Per-graph
// failures don't stop the pass; the joined error reports them all.
func (f *Follower) SyncOnce(ctx context.Context) error {
	names := f.graphs
	if len(names) == 0 {
		var err error
		if names, err = f.client.Graphs(ctx); err != nil {
			return fmt.Errorf("listing leader graphs: %w", err)
		}
	}
	var errs []error
	for _, name := range names {
		if err := f.syncGraph(ctx, name); err != nil {
			errs = append(errs, fmt.Errorf("graph %s: %w", name, err))
		}
	}
	return errors.Join(errs...)
}

// syncGraph advances one graph's cursor as far as the leader's durable end.
func (f *Follower) syncGraph(ctx context.Context, name string) error {
	st := f.state[name]
	if st == nil {
		st = &followState{}
		// Adopt pre-existing local state (follower restart with a data dir):
		// trust the applied sequence, but the segment position is unknown
		// until a resync against the leader's status.
		if seq, ok := f.target.ReplicaSeq(name); ok {
			st.bootstrapped, st.applied, st.offset = true, seq, -1
			f.logf("follow %s: adopted local state at seq %d", name, seq)
		}
		f.state[name] = st
	}
	if !st.bootstrapped {
		if err := f.bootstrap(ctx, name, st); err != nil {
			return err
		}
	}
	if st.offset < 0 {
		if err := f.resync(ctx, name, st); err != nil {
			return err
		}
		if !st.bootstrapped { // resync decided a checkpoint is required
			if err := f.bootstrap(ctx, name, st); err != nil {
				return err
			}
		}
	}
	return f.tail(ctx, name, st)
}

// bootstrap installs the leader's current checkpoint and aims the cursor at
// the head of the segment it anchors.
func (f *Follower) bootstrap(ctx context.Context, name string, st *followState) error {
	data, err := f.client.Checkpoint(ctx, name)
	if err != nil {
		return fmt.Errorf("fetching checkpoint: %w", err)
	}
	meta, err := store.PeekSnapshotMeta(data)
	if err != nil {
		return fmt.Errorf("shipped checkpoint: %w", err)
	}
	if err := f.target.InstallReplica(name, data); err != nil {
		return fmt.Errorf("installing checkpoint: %w", err)
	}
	st.bootstrapped = true
	st.applied = meta.Seq
	st.segment = meta.Seq
	st.offset = store.WALHeaderLen
	st.next = meta.Seq + 1
	f.logf("follow %s: bootstrapped from checkpoint at seq %d (%d bytes)", name, meta.Seq, len(data))
	return nil
}

// resync re-aims a cursor whose segment position is stale or unknown. If the
// leader's current segment still starts at or before our applied sequence we
// tail it from the top (records ≤ applied are skipped on arrival); if the
// leader has checkpointed past us — or regressed behind us, meaning its
// history diverged from what we applied — only a fresh checkpoint restores a
// common prefix, so bootstrapped is cleared for the caller to re-bootstrap.
func (f *Follower) resync(ctx context.Context, name string, st *followState) error {
	ls, err := f.client.Status(ctx, name)
	if err != nil {
		return fmt.Errorf("fetching status for resync: %w", err)
	}
	if ls.Segment > st.applied || ls.Seq < st.applied {
		f.logf("follow %s: local seq %d outside leader segment [%d, %d]; re-bootstrapping",
			name, st.applied, ls.Segment, ls.Seq)
		st.bootstrapped = false
		return nil
	}
	st.segment = ls.Segment
	st.offset = store.WALHeaderLen
	st.next = ls.Segment + 1
	f.logf("follow %s: resynced to segment %d (local seq %d)", name, st.segment, st.applied)
	return nil
}

// tail fetches and applies WAL chunks until the cursor reaches the leader's
// durable sequence. Chunks ending mid-record advance by the complete prefix
// only; ErrSegmentGone triggers a resync; a decode hard error condemns the
// local stream state and forces a checkpoint re-bootstrap on the next pass.
func (f *Follower) tail(ctx context.Context, name string, st *followState) error {
	for {
		data, leaderSeq, err := f.client.WALTail(ctx, name, st.segment, st.offset)
		if errors.Is(err, ErrSegmentGone) {
			st.offset = -1
			f.logf("follow %s: segment %d gone; resyncing next pass", name, st.segment)
			return nil
		}
		if err != nil {
			return fmt.Errorf("fetching wal tail: %w", err)
		}
		batches, consumed, derr := store.DecodeStream(data, st.next)
		// On a hard decode error the valid prefix still applies below — those
		// records passed their checksums and sequence checks, and serving
		// them keeps readers fresher while the re-bootstrap runs.
		// Drop already-applied records (a resync tails the segment from its
		// head, overlapping what we hold) and apply the rest in order.
		fresh := batches
		for len(fresh) > 0 && fresh[0].Seq <= st.applied {
			fresh = fresh[1:]
		}
		if len(fresh) > 0 {
			if err := f.target.ApplyReplica(name, fresh); err != nil {
				return fmt.Errorf("applying %d batches at seq %d: %w", len(fresh), fresh[0].Seq, err)
			}
			st.applied = fresh[len(fresh)-1].Seq
		}
		if n := len(batches); n > 0 {
			st.next = batches[n-1].Seq + 1
		}
		st.offset += int64(consumed)
		if derr != nil {
			// The stream betrayed its contract; nothing downstream of the
			// checkpoint can be trusted anymore. Reinstall from scratch.
			st.bootstrapped = false
			st.offset = -1
			return fmt.Errorf("wal stream at segment %d: %w", st.segment, derr)
		}
		caughtUp := st.applied >= leaderSeq
		f.target.NoteReplica(name, leaderSeq, caughtUp)
		if caughtUp || consumed == 0 {
			return nil
		}
	}
}
