package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"strings"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/graph"
)

// TestWALStampedRoundTrip pins the version-2 record shape: stamped and
// stampless records interleave in one log and decode back exactly, stamp
// presence included.
func TestWALStampedRoundTrip(t *testing.T) {
	batches := []Batch{
		{Seq: 1, Insert: true, Edges: [][2]int32{{0, 1}, {2, 3}}, Stamps: []int64{1000, 2000}},
		{Seq: 2, Insert: false, Edges: [][2]int32{{0, 1}}},
		{Seq: 3, Insert: true, Edges: [][2]int32{}, Stamps: []int64{}},
		{Seq: 4, Insert: false, Edges: [][2]int32{{7, 9}}, Stamps: []int64{-5}},
	}
	img := walImage(batches...)
	got, valid, err := DecodeWAL(img)
	if err != nil {
		t.Fatal(err)
	}
	if valid != len(img) || len(got) != len(batches) {
		t.Fatalf("valid=%d len=%d batches=%d, want %d and %d", valid, len(img), len(got), len(img), len(batches))
	}
	for i, b := range got {
		want := batches[i]
		if b.Seq != want.Seq || b.Insert != want.Insert {
			t.Fatalf("batch %d = %+v, want %+v", i, b, want)
		}
		if (b.Stamps == nil) != (want.Stamps == nil) {
			t.Fatalf("batch %d stamp presence = %v, want %v", i, b.Stamps != nil, want.Stamps != nil)
		}
		if !reflect.DeepEqual(append([]int64{}, b.Stamps...), append([]int64{}, want.Stamps...)) {
			t.Fatalf("batch %d stamps = %v, want %v", i, b.Stamps, want.Stamps)
		}
	}
}

// TestWALVersion1Decode pins backward compatibility: a file written with the
// version-1 header and stampless records (what every pre-temporal build
// produced) still decodes in full.
func TestWALVersion1Decode(t *testing.T) {
	img := append([]byte(nil), walMagic[:]...)
	img = binary.LittleEndian.AppendUint16(img, 1)
	img = binary.LittleEndian.AppendUint16(img, 0)
	for _, b := range walBatches {
		if b.Stamps != nil {
			t.Fatal("v1 fixture must be stampless")
		}
		img = append(img, EncodeBatch(b)...)
	}
	got, valid, err := DecodeWAL(img)
	if err != nil {
		t.Fatal(err)
	}
	if valid != len(img) || len(got) != len(walBatches) {
		t.Fatalf("v1 image: valid=%d/%d, %d batches, want %d", valid, len(img), len(got), len(walBatches))
	}
	// A stamped record is a structural impossibility under the old header
	// only by convention; the decoder is record-driven, so it must still
	// reject a record whose op byte lies about the stamp block's length.
	rec := EncodeBatch(Batch{Seq: 9, Insert: true, Edges: [][2]int32{{1, 2}}})
	rec[8+8] |= walOpStamped // claim stamps without carrying them
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(rec[8:]))
	if _, _, ok := decodeRecord(rec); ok {
		t.Fatal("record claiming stamps without a stamp block accepted")
	}
}

// TestWALStampCountMismatchPanics pins the encoder guard: a batch whose
// stamp count disagrees with its edge count is a programming error, not an
// encodable state.
func TestWALStampCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched stamp count did not panic")
		}
	}()
	EncodeBatch(Batch{Seq: 1, Insert: true, Edges: [][2]int32{{0, 1}}, Stamps: []int64{1, 2}})
}

// temporalFixture returns a graph and a TemporalState stamping each of its
// edges in canonical CSR order.
func temporalFixture(t *testing.T) (*graph.Graph, *TemporalState) {
	t.Helper()
	g, err := graph.FromEdges(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	return g, &TemporalState{WindowMS: 3_600_000, Stamps: []int64{10, 20, 30, 40, 50}}
}

// TestTemporalSectionRoundTrip pins the EBTS section next to every
// combination of its sibling sections, and that the sibling decoders ignore
// it.
func TestTemporalSectionRoundTrip(t *testing.T) {
	g, ts := temporalFixture(t)
	perm := []int32{1, 3, 0, 4, 2}
	st := &MaintainerState{Local: dynamic.NewMaintainer(g).ExportState()}
	for name, tc := range map[string]struct {
		st   *MaintainerState
		perm []int32
	}{
		"stamps only":            {nil, nil},
		"state then stamps":      {st, nil},
		"perm then stamps":       {nil, perm},
		"state perm then stamps": {st, perm},
	} {
		t.Run(name, func(t *testing.T) {
			img := EncodeSnapshotFull(g, SnapshotMeta{Seq: 7}, tc.st, tc.perm, ts)
			if _, _, err := DecodeSnapshot(img); err != nil {
				t.Fatalf("graph part: %v", err)
			}
			got, err := DecodeSnapshotStamps(img)
			if err != nil {
				t.Fatal(err)
			}
			if got.WindowMS != ts.WindowMS || !slices.Equal(got.Stamps, ts.Stamps) {
				t.Fatalf("stamps = %+v, want %+v", got, ts)
			}
			state, err := DecodeSnapshotState(img)
			if err != nil || (state != nil) != (tc.st != nil) {
				t.Fatalf("state = %v (err %v), presence want %v", state, err, tc.st != nil)
			}
			gotPerm, err := DecodeSnapshotPerm(img)
			if err != nil || !slices.Equal(gotPerm, tc.perm) {
				t.Fatalf("perm = %v (err %v), want %v", gotPerm, err, tc.perm)
			}
		})
	}

	t.Run("absent from v1 and stampless v2", func(t *testing.T) {
		for _, img := range [][]byte{
			EncodeSnapshot(g, SnapshotMeta{}),
			EncodeSnapshotFull(g, SnapshotMeta{}, st, perm, nil),
		} {
			got, err := DecodeSnapshotStamps(img)
			if got != nil || err != nil {
				t.Fatalf("stamps = %v, err = %v; want nil, nil", got, err)
			}
		}
	})
}

// TestTemporalSectionCorruption checks section independence: damage to the
// EBTS section surfaces from DecodeSnapshotStamps while the graph and its
// sibling sections still load.
func TestTemporalSectionCorruption(t *testing.T) {
	g, ts := temporalFixture(t)
	st := &MaintainerState{Local: dynamic.NewMaintainer(g).ExportState()}
	img := EncodeSnapshotFull(g, SnapshotMeta{}, st, nil, ts)
	secLen := stateHeaderLen + 16 + 8*len(ts.Stamps) + 4

	cases := map[string]struct {
		mutate func([]byte)
		want   string
	}{
		"flipped stamp payload": {
			mutate: func(b []byte) { b[len(b)-12] ^= 0x04 },
			want:   "checksum",
		},
		"version skew": {
			mutate: func(b []byte) { b[len(b)-secLen+4] = 9 },
			want:   "version",
		},
		"wrong n": {
			mutate: func(b []byte) {
				off := len(b) - secLen
				binary.LittleEndian.PutUint32(b[off+8:off+12], 99)
				resealTemporal(b, off, secLen)
			},
			want: "covers n=99",
		},
		"wrong m": {
			mutate: func(b []byte) {
				off := len(b) - secLen
				binary.LittleEndian.PutUint64(b[off+stateHeaderLen+8:off+stateHeaderLen+16], 2)
				resealTemporal(b, off, secLen)
			},
			want: "stamps 2 edges",
		},
		"zero window": {
			mutate: func(b []byte) {
				off := len(b) - secLen
				binary.LittleEndian.PutUint64(b[off+stateHeaderLen:off+stateHeaderLen+8], 0)
				resealTemporal(b, off, secLen)
			},
			want: "zero window",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			data := append([]byte(nil), img...)
			tc.mutate(data)
			if _, _, err := DecodeSnapshot(data); err != nil {
				t.Fatalf("graph part should be unaffected: %v", err)
			}
			if _, err := DecodeSnapshotState(data); err != nil {
				t.Fatalf("state section should be unaffected: %v", err)
			}
			_, err := DecodeSnapshotStamps(data)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("stamps decode error = %v, want mention of %q", err, tc.want)
			}
		})
	}

	t.Run("truncated temporal section", func(t *testing.T) {
		data := append([]byte(nil), img[:len(img)-6]...)
		if _, _, err := DecodeSnapshot(data); err != nil {
			t.Fatalf("graph part should be unaffected: %v", err)
		}
		if _, err := DecodeSnapshotStamps(data); err == nil {
			t.Fatal("truncated temporal section accepted")
		}
	})
}

// resealTemporal recomputes the section CRC after a deliberate header/payload
// mutation, so the test exercises the semantic check rather than the CRC.
func resealTemporal(b []byte, off, secLen int) {
	binary.LittleEndian.PutUint32(b[off+secLen-4:off+secLen], crc32.ChecksumIEEE(b[off:off+secLen-4]))
}

// TestTemporalStoreRoundTrip pins the recovery contract: the window and
// stamps written at CreateWithStamps survive Open, a CheckpointFull replaces
// them, and a corrupt section degrades to StampsErr without failing Open.
func TestTemporalStoreRoundTrip(t *testing.T) {
	g, ts := temporalFixture(t)
	dir := t.TempDir()
	s, err := CreateWithStamps(dir, g, SnapshotMeta{}, ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.StampsErr != nil || rec.Stamps == nil {
		t.Fatalf("stamps = %v, err = %v", rec.Stamps, rec.StampsErr)
	}
	if rec.Stamps.WindowMS != ts.WindowMS || !slices.Equal(rec.Stamps.Stamps, ts.Stamps) {
		t.Fatalf("recovered %+v, want %+v", rec.Stamps, ts)
	}

	ts2 := &TemporalState{WindowMS: ts.WindowMS, Stamps: []int64{11, 21, 31, 41, 51}}
	if err := s2.CheckpointFull(g, SnapshotMeta{Seq: s2.Seq()}, nil, nil, ts2); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s3.Close()
	if rec.StampsErr != nil || !slices.Equal(rec.Stamps.Stamps, ts2.Stamps) {
		t.Fatalf("post-checkpoint stamps = %v (err %v), want %v", rec.Stamps, rec.StampsErr, ts2.Stamps)
	}

	// Corrupt the section in place: Open must still succeed, with the error
	// surfaced on StampsErr.
	path := filepath.Join(dir, snapshotFile)
	data, err := readFileShared(path)
	if err != nil {
		t.Fatal(err)
	}
	data = append([]byte(nil), data...)
	data[len(data)-12] ^= 0x04
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s4, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("Open failed on corrupt temporal section: %v", err)
	}
	defer s4.Close()
	if rec.StampsErr == nil || rec.Stamps != nil {
		t.Fatalf("stamps = %v, err = %v; want nil + error", rec.Stamps, rec.StampsErr)
	}
}

// TestStampedAppendReplaysStamps pins the write-path contract the expiry
// scheduler depends on: stamps handed to AppendBatches come back from the
// WAL tail on recovery, alongside stampless batches in the same group.
func TestStampedAppendReplaysStamps(t *testing.T) {
	g, ts := temporalFixture(t)
	dir := t.TempDir()
	s, err := CreateWithStamps(dir, g, SnapshotMeta{}, ts)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.AppendBatches([]BatchSpec{
		{Insert: true, Edges: [][2]int32{{1, 4}, {2, 4}}, Stamps: []int64{60, 70}},
		{Insert: false, Edges: [][2]int32{{0, 1}}},
	})
	if err != nil || first != 1 {
		t.Fatalf("append: first=%d err=%v", first, err)
	}
	s.Close()
	s2, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(rec.Tail) != 2 {
		t.Fatalf("tail has %d batches, want 2", len(rec.Tail))
	}
	if !slices.Equal(rec.Tail[0].Stamps, []int64{60, 70}) {
		t.Fatalf("tail stamps = %v, want [60 70]", rec.Tail[0].Stamps)
	}
	if rec.Tail[1].Stamps != nil {
		t.Fatalf("stampless batch grew stamps %v", rec.Tail[1].Stamps)
	}
}
