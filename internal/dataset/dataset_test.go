package dataset

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestRegistryComplete(t *testing.T) {
	if len(Names()) != 7 {
		t.Fatalf("registry has %d datasets, want 7", len(Names()))
	}
	for _, name := range Names() {
		info, err := Describe(name)
		if err != nil {
			t.Fatal(err)
		}
		if info.PaperN == 0 || info.PaperM == 0 || info.PaperDMax == 0 {
			t.Errorf("%s: paper statistics missing: %+v", name, info)
		}
	}
	if _, err := Describe("nope"); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestLoadValidatesAndCaches(t *testing.T) {
	g1, err := Load(Youtube)
	if err != nil {
		t.Fatal(err)
	}
	if err := g1.Validate(); err != nil {
		t.Fatal(err)
	}
	g2, _ := Load(Youtube)
	if g1 != g2 {
		t.Fatal("second load must return the cached graph")
	}
	if _, err := Load("nope"); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

// TestShapeFidelity checks the properties the substitutions are supposed to
// preserve: relative sizes, skew ordering, and clustering character.
func TestShapeFidelity(t *testing.T) {
	stats := map[string]graph.Stats{}
	for _, name := range Names() {
		stats[name] = graph.ComputeStats(MustLoad(name))
	}
	// WikiTalk is the skew outlier: highest dmax/avg ratio of the five.
	wkSkew := float64(stats[WikiTalk].DMax) / stats[WikiTalk].AvgDeg
	for _, other := range []string{Youtube, DBLP, Pokec, LiveJournal} {
		ratio := float64(stats[other].DMax) / stats[other].AvgDeg
		if wkSkew < ratio {
			t.Errorf("wikitalk skew %.1f below %s skew %.1f", wkSkew, other, ratio)
		}
	}
	// The collaboration graphs must be triangle-rich relative to edges.
	for _, name := range []string{DBLP, DB, IR} {
		st := stats[name]
		if float64(st.Triangles) < float64(st.M) {
			t.Errorf("%s: triangles (%d) below edges (%d); affiliation model should be clique-rich",
				name, st.Triangles, st.M)
		}
	}
	// Pokec is the densest of the five (paper: avg deg 27 vs 17/9/5/4).
	for _, other := range []string{Youtube, WikiTalk, DBLP, LiveJournal} {
		if stats[Pokec].AvgDeg <= stats[other].AvgDeg {
			t.Errorf("pokec avg deg %.1f not above %s %.1f",
				stats[Pokec].AvgDeg, other, stats[other].AvgDeg)
		}
	}
}

func TestScholarNameDeterministic(t *testing.T) {
	a, b := ScholarName(42), ScholarName(42)
	if a != b {
		t.Fatal("names must be deterministic")
	}
	if ScholarName(42) == ScholarName(43) {
		t.Fatal("distinct vertices should get distinct names")
	}
	if !strings.Contains(a, "-0042") {
		t.Fatalf("name %q should embed the vertex id", a)
	}
}

func TestScaleDefault(t *testing.T) {
	t.Setenv("EGOBW_SCALE", "")
	if Scale() != 1.0 {
		t.Fatalf("default scale = %v", Scale())
	}
	t.Setenv("EGOBW_SCALE", "2.5")
	if Scale() != 2.5 {
		t.Fatalf("scale = %v, want 2.5", Scale())
	}
	t.Setenv("EGOBW_SCALE", "bogus")
	if Scale() != 1.0 {
		t.Fatalf("bogus scale must fall back to 1.0")
	}
}
