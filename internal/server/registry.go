package server

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/approx"
	"repro/internal/dynamic"
	"repro/internal/ego"
	"repro/internal/graph"
	"repro/internal/store"
)

// Maintenance modes for a served graph.
const (
	// ModeLocal keeps the exact Maintainer (LocalInsert/LocalDelete):
	// every snapshot carries the exact score of every vertex, so top-k for
	// any k and per-vertex queries are O(1)-per-score reads. Costs the
	// evidence-map memory.
	ModeLocal = "local"
	// ModeLazy keeps the LazyTopK maintainer (LazyInsert/LazyDelete) for
	// one configured k: minimal memory, top-k answered from the lazily
	// maintained result set; other read shapes recompute on the snapshot.
	ModeLazy = "lazy"
)

// Top-k algorithms a query may select.
const (
	AlgoAuto   = "auto"   // scores in ModeLocal, lazy set in ModeLazy
	AlgoScores = "scores" // read the maintained exact scores (ModeLocal)
	AlgoLazy   = "lazy"   // the LazyTopK result set (ModeLazy, query k ≤ configured k)
	AlgoOpt    = "opt"    // OptBSearch on the snapshot CSR
	AlgoBase   = "base"   // BaseBSearch on the snapshot CSR
	AlgoApprox = "approx" // sampled estimator with (ε, δ) bounds (internal/approx)
)

// defaultTheta is the OptBSearch pruning parameter used when a query leaves
// θ unset (0). Any explicit θ < 1 is rejected instead of defaulted.
const defaultTheta = 1.05

// snapshot is the immutable unit of the epoch scheme. Readers obtain the
// current snapshot with one atomic pointer load and then work entirely on
// data that no writer will ever mutate: the graph view (a full CSR for
// epoch 1 and after compactions, a copy-on-write graph.Overlay for the
// cheap per-drain publications in between), the chunked copy-on-write score
// vector, and a result cache that lives and dies with the snapshot
// (swapping in a new snapshot is the cache invalidation).
type snapshot struct {
	epoch  uint64
	view   graph.View // *graph.Graph or *graph.Overlay
	scores *scoreVec  // exact CB per vertex at this epoch; nil in ModeLazy

	// relab is the degree-ordered relabeling of view (DESIGN.md §12),
	// non-nil only when the entry runs with relabeling and the view is a
	// fully compacted *graph.Graph — overlay snapshots keep it nil and the
	// search algorithms fall back to the external-id view. The recompute
	// algorithms (AlgoOpt/AlgoBase) run their kernels on relab.G, where hubs
	// occupy a dense low-id prefix, and translate back to external ids
	// through relab.Ext at extraction; everything else (scores, per-vertex
	// reads, stats, updates) stays in external-id space and never sees it.
	relab *graph.Relabeled

	// publishDur is how long this snapshot's publication took (the initial
	// all-vertices computation for epoch 1, the O(batch) overlay
	// publication for later epochs) and buildWorkers the worker budget the
	// entry compacts and freezes with — both surfaced through GraphInfo.
	publishDur   time.Duration
	buildWorkers int

	cache      sync.Map     // cacheKey -> cachedResult
	cacheCount atomic.Int64 // entries stored, enforcing maxCacheEntries
	statsOnce  sync.Once
	stats      graph.Stats
}

// withView copies the snapshot's identity — epoch, scores, publication
// telemetry — onto a different view of the same graph, carrying the
// relabeling that matches the new view (nil when it is an overlay).
// Compaction uses it to swap an overlay for its flattened CSR without
// changing what the snapshot answers. The result cache starts empty
// (sync.Map is not copyable); the entries were computed against an
// equivalent view, but re-deriving them is cheaper than a cache scheme
// that outlives snapshots.
func (s *snapshot) withView(v graph.View, relab *graph.Relabeled) *snapshot {
	return &snapshot{
		epoch: s.epoch, view: v, scores: s.scores, relab: relab,
		publishDur: s.publishDur, buildWorkers: s.buildWorkers,
	}
}

// maxCacheEntries caps a snapshot's result cache. The key space is
// client-chosen (every distinct θ is a distinct key), so without a cap a
// read-only graph — whose snapshot never swaps — would accumulate cached
// results forever. Past the cap queries still compute, just uncached.
const maxCacheEntries = 256

// cacheStore inserts res under key unless the cache is at capacity. The
// accounting reserves a slot first (Add) and rolls it back on either
// outcome that did not store a new entry — capacity exceeded, or another
// goroutine already holds the key — so concurrent misses can never push
// the cache past maxCacheEntries (a plain load-then-add check-then-act
// would let every goroutine at cap−1 pass the check at once).
func (s *snapshot) cacheStore(key cacheKey, res cachedResult) {
	if s.cacheCount.Add(1) > maxCacheEntries {
		s.cacheCount.Add(-1)
		return
	}
	if _, loaded := s.cache.LoadOrStore(key, res); loaded {
		s.cacheCount.Add(-1)
	}
}

// cachedResult is what the snapshot cache holds per key: the result list
// plus, for AlgoApprox, the estimator telemetry the payload echoes — a
// cache hit must report the same samples/ε-achieved the original
// computation did.
type cachedResult struct {
	res         []ego.Result
	samples     int64
	epsAchieved float64
}

// cacheKey identifies one top-k answer shape on a given snapshot. Floats
// (θ, ε, δ) are keyed by their bit patterns so any value compares
// exactly; the ε/δ/seed fields are zero except for AlgoApprox, whose
// answers depend on all three.
type cacheKey struct {
	k         int
	algo      string
	thetaBits uint64
	epsBits   uint64
	confBits  uint64
	seed      uint64
}

// Stats returns the Table-I style statistics of the snapshot, computed once
// per epoch on first demand.
func (s *snapshot) Stats() graph.Stats {
	s.statsOnce.Do(func() { s.stats = graph.ComputeStats(s.view) })
	return s.stats
}

// overlay returns the snapshot's view as an overlay, or nil when it is a
// full CSR.
func (s *snapshot) overlay() *graph.Overlay {
	ov, _ := s.view.(*graph.Overlay)
	return ov
}

// Acknowledgment modes for edge-update batches (DESIGN.md §9).
const (
	// AckDurable responds after the batch's group commit: the batch is in
	// the fsync'd WAL (on a durable registry) and the snapshot including it
	// is published. The default.
	AckDurable = "durable"
	// AckAsync responds on admission: the batch is queued for the writer
	// goroutine, its epoch pending. A crash between the ack and the group
	// commit loses the batch — the mode trades the durability guarantee for
	// enqueue-speed responses.
	AckAsync = "async"
)

// ErrBacklog marks an update rejected because the graph's admission queue
// is full — backpressure, not failure. The HTTP layer answers 429 with a
// Retry-After so well-behaved clients pace themselves.
var ErrBacklog = fmt.Errorf("write queue full")

// BacklogError is the concrete backpressure rejection: it matches ErrBacklog
// under errors.Is and carries the derived pacing hint — how long the queued
// work should take to drain — so the HTTP layer's Retry-After reflects the
// actual backlog instead of a constant.
type BacklogError struct {
	Graph      string
	Capacity   int
	RetryAfter time.Duration
}

func (b *BacklogError) Error() string {
	return fmt.Sprintf("server: graph %q: %v (capacity %d, retry in %v)",
		b.Graph, ErrBacklog, b.Capacity, b.RetryAfter)
}

// Is makes errors.Is(err, ErrBacklog) match, keeping every existing caller
// that tests for the sentinel working.
func (b *BacklogError) Is(target error) bool { return target == ErrBacklog }

// ErrReadOnly marks a mutation rejected because the registry runs as a
// read-only follower (WithLeader): graph loads, removals, and edge updates
// belong on the leader. The HTTP layer answers 403 with the leader's address
// so clients can redirect themselves.
var ErrReadOnly = fmt.Errorf("read-only replica")

// writeReq is one admitted edge batch waiting for the writer goroutine.
// done is nil for AckAsync (nobody listens); for AckDurable it carries the
// commit outcome and is buffered so the writer never blocks replying.
type writeReq struct {
	edges  [][2]int32
	insert bool
	// stamps carries one admission timestamp per edge (unix ms) on a
	// windowed graph's insert batches — client-provided or assigned at
	// admission — and rides the WAL record so every replay sees them.
	stamps []int64
	done   chan writeReply

	// res is filled by the writer inside the commit; carried here so the
	// group can be applied first and replied to as a whole afterwards.
	res UpdateResult
}

type writeReply struct {
	res UpdateResult
	err error
}

// reply delivers the outcome to a durable waiter; async requests drop it.
func (w *writeReq) reply(res UpdateResult, err error) {
	if w.done != nil {
		w.done <- writeReply{res: res, err: err}
	}
}

// entry is one served graph: the atomically swappable snapshot for readers,
// the mutable maintainer state for the writer side, and the write pipeline —
// a bounded admission queue drained by a dedicated writer goroutine that
// group-commits everything waiting (one WAL fsync, one snapshot publication
// per drain; DESIGN.md §9).
type entry struct {
	name    string
	mode    string
	workers int  // snapshot-build worker budget (≥ 1)
	relabel bool // degree-ordered relabeling on compacted views (DESIGN.md §12)

	// Compaction policy (DESIGN.md §10): flatten the overlay chain into a
	// fresh base CSR once its depth or its dirty-vertex share of n crosses
	// these bounds. The compactor runs in its own goroutine, off the write
	// path; compacting serializes it (one flatten at a time).
	maxDepth   int
	dirtyRatio float64
	compacting atomic.Bool

	snap atomic.Pointer[snapshot]

	// The admission queue. qmu guards qclosed against concurrent enqueues
	// (senders hold it shared, the closer exclusively — a channel must not
	// be closed under racing sends); stopped is closed when the writer
	// goroutine has drained the closed queue and exited.
	queue    chan *writeReq
	qmu      sync.RWMutex
	qclosed  bool
	stopped  chan struct{}
	flush    time.Duration // coalescing window after the first arrival
	maxGroup int           // largest group one drain may commit

	// mu serializes all mutation of the maintainer state below and every
	// snapshot publication. Readers never take it.
	mu    sync.Mutex
	local *dynamic.Maintainer // ModeLocal
	lazy  *dynamic.LazyTopK   // ModeLazy

	// removed marks an entry whose Remove completed: the durable store is
	// gone, and any straggler that looked the entry up before the removal
	// must fail instead of touching (and resurrecting) the deleted state.
	// Guarded by mu.
	removed bool
	// failed poisons the pipeline after any durability failure — a WAL
	// append or checkpoint error (which poisons the store too) or an
	// injected server-level crash: once a commit aborted mid-flight,
	// in-memory and durable state may disagree, so further commits must
	// fail rather than diverge. Admission checks it so an ack=async
	// caller is rejected up front (ErrStorage) instead of being answered
	// 202 for a batch the dead pipeline would silently drop. Written only
	// by the writer goroutine, loaded lock-free by enqueuers.
	failed atomic.Pointer[error]

	// st is the graph's durable store (nil without WithDataDir). Set once
	// before the entry is published, used only under mu; sinceCkpt counts
	// the batches appended since the last durable checkpoint.
	st        *store.Store
	sinceCkpt int

	// How this entry's maintainer came to be at recovery: "fast" when the
	// snapshot's maintainer-state section was imported (O(load) boot),
	// "rebuild" when scores and evidence were recomputed from the graph, ""
	// for entries that were never recovered. recoverReason says why a
	// rebuild happened. Set once in recoverOne before the entry is
	// published, immutable after.
	recoverPath   string
	recoverReason string

	// Accounting. Atomics, written from both read and write paths.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	inserts     atomic.Int64
	deletes     atomic.Int64

	// Approximate-tier accounting: AlgoApprox queries computed (cache hits
	// excluded) and the pair samples they drew in total.
	approxQueries atomic.Int64
	approxSamples atomic.Int64

	// Write-pipeline accounting: drains committed, batches carried by them
	// (coalescedBatches/groupCommits is the amortization factor), and
	// admissions rejected by backpressure.
	groupCommits     atomic.Int64
	coalescedBatches atomic.Int64
	writeRejects     atomic.Int64

	// Snapshot-publication accounting (DESIGN.md §10): compactions folded
	// (background or checkpoint-forced), the last compaction's wall-clock,
	// and the score entries the copy-on-write vector materialized across
	// all drains (chunk granularity — a drain that changed nothing adds 0).
	compactions   atomic.Int64
	lastCompactNs atomic.Int64
	scoresCopied  atomic.Int64

	// Lock-free mirrors of the store's accounting, refreshed after every
	// durable operation so GraphInfo never has to take mu.
	walSeq   atomic.Uint64
	walBytes atomic.Int64
	snapSeq  atomic.Uint64
	ckpts    atomic.Int64

	// Sliding-window serving (DESIGN.md §14). window > 0 makes the entry
	// temporal: inserts are stamped at admission (client stamp or receive
	// time), tidx keeps the edge→stamp sidecar, and every leader drain first
	// synthesizes a delete batch of the edges older than now−window, WAL'd
	// ahead of the group so durability, recovery, and replicas all see
	// expiry as ordinary replayed history. window and nowMS are set before
	// the entry is published and immutable after; tidx is guarded by mu.
	window time.Duration
	tidx   *graph.TemporalIndex
	nowMS  func() int64

	// Expiry accounting: edges expired and expiry batches synthesized by
	// this process, and the smallest live stamp (0 = no stamped edges) —
	// refreshed after every drain so GraphInfo derives the oldest edge's
	// age lock-free.
	expiredEdges  atomic.Int64
	expiryBatches atomic.Int64
	oldestStamp   atomic.Int64

	// Replication state (DESIGN.md §13). replica marks an entry driven by
	// WAL shipping instead of client writes (set once before publication).
	// replSeq is the last shipped batch sequence applied locally (the
	// walSeq mirror's equivalent for memory-only replicas); replLeaderSeq
	// the leader's durable sequence as of the last poll; replCaughtNano the
	// wall clock of the last caught-up poll — together they derive the
	// staleness figures GraphInfo reports, all lock-free.
	replica        bool
	replSeq        atomic.Uint64
	replLeaderSeq  atomic.Uint64
	replCaughtNano atomic.Int64
}

// ErrDuplicate marks an Add that lost to an existing graph of the same
// name, so the HTTP layer can distinguish a genuine conflict (409) from
// plain request validation failures (400).
var ErrDuplicate = fmt.Errorf("graph name already exists")

// ErrStorage marks a durability failure (WAL append, fsync, checkpoint) on
// an otherwise valid request, so the HTTP layer can answer 500 — the
// server's disk, not the client's request, is at fault.
var ErrStorage = fmt.Errorf("storage failure")

// maxBatchGrowth bounds how far one edge batch may grow the vertex set
// beyond the current maximum id. The maintainers grow the vertex set to
// max(u,v)+1 on insert, so without a bound a single request naming vertex
// 2e9 would allocate tens of gigabytes under the write lock.
const maxBatchGrowth = 4096

// Default checkpoint policy: snapshot + WAL truncation after this many
// batches or this many WAL bytes, whichever comes first.
const (
	defaultCheckpointBatches = 16
	defaultCheckpointBytes   = 4 << 20
)

// Default write-pipeline tuning: admission-queue capacity (also the group
// size cap unless WithGroupLimit lowers it) and the coalescing window.
const defaultWriteQueue = 128

// Default compaction policy: flatten the overlay chain once it is this many
// layers deep or once its dirty vertices reach this share of n, whichever
// trips first. Depth bounds the chain walk a read pays on a delta miss;
// the ratio bounds the memory the deltas duplicate.
const (
	defaultCompactDepth = 8
	defaultCompactDirty = 0.25
)

// Registry is a named collection of served graphs. Lookup is guarded by a
// read-write mutex; everything per-graph uses the entry's own scheme.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	workers int // snapshot-build worker budget applied to new graphs

	// Write pipeline (DESIGN.md §9).
	queueCap int
	flush    time.Duration
	maxGroup int

	// Overlay compaction policy (DESIGN.md §10).
	compactDepth int
	compactDirty float64

	// Degree-ordered relabeling (DESIGN.md §12).
	relabel bool

	// Persistence (DESIGN.md §8). Empty dataDir means in-memory only.
	dataDir     string
	ckptBatches int
	ckptBytes   int64
	crashHook   func(graph, point string) error

	// Replication (DESIGN.md §13). A non-empty leader URL makes this
	// registry a read-only follower: client mutations are rejected with
	// ErrReadOnly, and graphs arrive through the Target methods instead.
	leader string

	// Sliding-window serving (DESIGN.md §14): the default window applied to
	// graphs created without an explicit one (0 = unwindowed), and the
	// clock that stamps admissions and drives expiry cutoffs — wall clock
	// in production, injectable for deterministic tests.
	window time.Duration
	nowMS  func() int64

	// Approximate tier defaults (DESIGN.md §15): the ε / confidence an
	// AlgoApprox query gets when it leaves the knobs unset. Zero values
	// fall through to the package defaults (approx.DefaultEps/DefaultConf).
	approxEps  float64
	approxConf float64
}

// RegistryOption configures a Registry.
type RegistryOption func(*Registry)

// WithBuildWorkers sets the worker budget used to build graph snapshots:
// the initial all-vertices computation runs on the EdgePEBW parallel engine
// and the per-batch CSR export shards its row copy across this many
// goroutines. n ≤ 0 selects GOMAXPROCS.
func WithBuildWorkers(n int) RegistryOption {
	return func(r *Registry) { r.workers = n }
}

// WithApproxDefaults sets the ε / confidence that AlgoApprox queries get
// when they leave the knobs unset (0 keeps the package defaults). Values
// must lie in (0, 1); anything else is ignored rather than half-applied,
// matching how queries themselves are validated.
func WithApproxDefaults(eps, conf float64) RegistryOption {
	return func(r *Registry) {
		if eps > 0 && eps < 1 {
			r.approxEps = eps
		}
		if conf > 0 && conf < 1 {
			r.approxConf = conf
		}
	}
}

// WithDataDir makes the registry durable: every graph gets a WAL + snapshot
// store under dir, every update batch is logged before it is applied, and
// Recover reloads the whole registry after a restart or crash.
func WithDataDir(dir string) RegistryOption {
	return func(r *Registry) { r.dataDir = dir }
}

// WithCheckpointPolicy sets when a graph's WAL is folded into a fresh
// snapshot and truncated: after batches update batches or once the WAL
// exceeds bytes, whichever comes first. Non-positive values keep the
// defaults (16 batches, 4 MiB).
func WithCheckpointPolicy(batches int, bytes int64) RegistryOption {
	return func(r *Registry) {
		if batches > 0 {
			r.ckptBatches = batches
		}
		if bytes > 0 {
			r.ckptBytes = bytes
		}
	}
}

// WithWriteQueue sets the per-graph admission-queue capacity: how many
// update batches may wait for the writer goroutine before new admissions
// are rejected with ErrBacklog (HTTP 429). n ≤ 0 keeps the default (128).
func WithWriteQueue(n int) RegistryOption {
	return func(r *Registry) {
		if n > 0 {
			r.queueCap = n
		}
	}
}

// WithFlushInterval sets the group-commit coalescing window: after the
// first batch of a drain arrives, the writer waits up to d for more
// batches before committing the group. Zero (the default) commits whatever
// is already queued without waiting — lowest latency, with coalescing
// arising naturally under concurrent load; a positive window trades
// latency for larger groups on trickle workloads.
func WithFlushInterval(d time.Duration) RegistryOption {
	return func(r *Registry) {
		if d > 0 {
			r.flush = d
		}
	}
}

// WithGroupLimit caps how many batches one drain may fold into a single
// group commit. n ≤ 0 keeps the default (the queue capacity). Limit 1
// degenerates to the serialized one-batch-one-fsync-one-snapshot pipeline —
// the baseline the write-throughput benchmark compares against.
func WithGroupLimit(n int) RegistryOption {
	return func(r *Registry) {
		if n > 0 {
			r.maxGroup = n
		}
	}
}

// WithCompactPolicy sets when a graph's overlay chain is flattened into a
// fresh base CSR by the background compactor: once the chain is maxDepth
// layers deep, or once the dirty vertices across the chain reach dirtyRatio
// of the vertex count, whichever trips first. Non-positive values keep the
// defaults (depth 8, ratio 0.25). Depth 1 compacts after every drain —
// useful to benchmark the pre-overlay behavior, since every read then runs
// on a full CSR.
func WithCompactPolicy(maxDepth int, dirtyRatio float64) RegistryOption {
	return func(r *Registry) {
		if maxDepth > 0 {
			r.compactDepth = maxDepth
		}
		if dirtyRatio > 0 {
			r.compactDirty = dirtyRatio
		}
	}
}

// WithRelabeling toggles degree-ordered vertex relabeling on graphs this
// registry serves (DESIGN.md §12). When on, every fully compacted snapshot
// carries a permuted twin of its CSR in which vertices are renumbered by
// non-increasing degree, so hubs occupy a dense low-id prefix: bitset
// registers mark and intersect over short spans and the hottest adjacency
// rows pack together. The recompute top-k algorithms (algo=opt, algo=base)
// run on the permuted CSR and translate back at extraction; external ids —
// what updates name and queries return — never change, and results are
// bitwise identical with relabeling on or off. Checkpoints persist the
// permutation so recovery reuses the exact internal layout.
func WithRelabeling(on bool) RegistryOption {
	return func(r *Registry) { r.relabel = on }
}

// WithLeader makes the registry a read-only follower of the leader at url:
// Add, Remove, and ApplyEdgesAck reject with ErrReadOnly (the HTTP layer
// maps that to 403 plus the leader's address), while the ship.Target methods
// — InstallReplica, ApplyReplica — keep the served graphs converging on the
// leader's WAL stream. Reads are unrestricted; that is the point.
func WithLeader(url string) RegistryOption {
	return func(r *Registry) { r.leader = url }
}

// WithWindow sets the default sliding window applied to graphs created
// without an explicit one: edges older than window are expired by the
// graph's writer goroutine through WAL-recorded delete batches (DESIGN.md
// §14). Zero (the default) serves graphs unwindowed. A per-graph window on
// create overrides this default.
func WithWindow(d time.Duration) RegistryOption {
	return func(r *Registry) {
		if d > 0 {
			r.window = d
		}
	}
}

// WithClock replaces the wall clock that stamps admitted edges and drives
// expiry cutoffs with now (a unix-milliseconds function). It exists so
// tests can advance time deterministically; production uses the default
// wall clock.
func WithClock(now func() int64) RegistryOption {
	return func(r *Registry) {
		if now != nil {
			r.nowMS = now
		}
	}
}

// WithCrashHook installs a crash-injection hook on every graph store,
// invoked at each durability point with the graph name; a non-nil return
// aborts the operation exactly there, leaving the files as a real crash
// would. It exists for the crash-recovery test harness.
func WithCrashHook(h func(graph, point string) error) RegistryOption {
	return func(r *Registry) { r.crashHook = h }
}

// NewRegistry returns an empty registry. The default snapshot-build worker
// budget is GOMAXPROCS.
func NewRegistry(opts ...RegistryOption) *Registry {
	r := &Registry{
		entries:     make(map[string]*entry),
		ckptBatches: defaultCheckpointBatches,
		ckptBytes:   defaultCheckpointBytes,
	}
	for _, o := range opts {
		o(r)
	}
	if r.workers <= 0 {
		r.workers = runtime.GOMAXPROCS(0)
	}
	if r.queueCap <= 0 {
		r.queueCap = defaultWriteQueue
	}
	if r.maxGroup <= 0 || r.maxGroup > r.queueCap {
		r.maxGroup = r.queueCap
	}
	if r.compactDepth <= 0 {
		r.compactDepth = defaultCompactDepth
	}
	if r.compactDirty <= 0 {
		r.compactDirty = defaultCompactDirty
	}
	if r.nowMS == nil {
		r.nowMS = func() int64 { return time.Now().UnixMilli() }
	}
	return r
}

// newEntry builds an unpublished entry with its write pipeline initialized
// (the writer goroutine starts separately, once the entry is registered).
func (r *Registry) newEntry(name, mode string) *entry {
	return &entry{
		name: name, mode: mode, workers: r.workers,
		relabel:    r.relabel,
		maxDepth:   r.compactDepth,
		dirtyRatio: r.compactDirty,
		queue:      make(chan *writeReq, r.queueCap),
		stopped:    make(chan struct{}),
		flush:      r.flush,
		maxGroup:   r.maxGroup,
		nowMS:      r.nowMS,
	}
}

// Leader returns the leader URL this registry follows, or "" when it is a
// writable leader itself.
func (r *Registry) Leader() string { return r.leader }

// readOnlyErr rejects a client mutation on a follower registry.
func (r *Registry) readOnlyErr(op string) error {
	if r.leader == "" {
		return nil
	}
	return fmt.Errorf("server: %s: %w (leader: %s)", op, ErrReadOnly, r.leader)
}

// get returns the entry for name.
func (r *Registry) get(name string) (*entry, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("server: no graph named %q", name)
	}
	return e, nil
}

// Names lists the registered graphs, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Add registers g under name with the given maintenance mode (lazyK applies
// to ModeLazy), using the registry's default sliding window (usually none).
// Building the maintainer computes all initial scores, which for ModeLocal
// also populates the first snapshot's score vector.
func (r *Registry) Add(name string, g *graph.Graph, mode string, lazyK int) (GraphInfo, error) {
	return r.AddWindowed(name, g, mode, lazyK, r.window)
}

// AddWindowed is Add with an explicit sliding window: window > 0 makes the
// graph temporal — every initial edge is stamped with the creation time,
// admitted inserts are stamped on arrival, and the writer goroutine expires
// edges older than now−window through WAL-recorded delete batches (DESIGN.md
// §14). window == 0 serves the graph unwindowed regardless of the registry
// default. A window must be at least the group-commit flush interval: a
// shorter one would expire edges faster than drains occur, so it is rejected
// up front (the HTTP layer answers 400).
func (r *Registry) AddWindowed(name string, g *graph.Graph, mode string, lazyK int, window time.Duration) (GraphInfo, error) {
	if window < 0 {
		return GraphInfo{}, fmt.Errorf("server: window must be non-negative, got %v", window)
	}
	if window > 0 && window < time.Millisecond {
		return GraphInfo{}, fmt.Errorf("server: window %v is below the 1ms stamp resolution", window)
	}
	if window > 0 && window < r.flush {
		return GraphInfo{}, fmt.Errorf("server: window %v is shorter than the flush interval %v (edges would expire before the drain that admitted them)", window, r.flush)
	}
	if name == "" {
		return GraphInfo{}, fmt.Errorf("server: graph name must be non-empty")
	}
	if mode == "" {
		mode = ModeLocal
	}
	if mode != ModeLocal && mode != ModeLazy {
		return GraphInfo{}, fmt.Errorf("server: unknown mode %q (want %q or %q)", mode, ModeLocal, ModeLazy)
	}
	if err := r.readOnlyErr("load graph"); err != nil {
		return GraphInfo{}, err
	}
	// Building a maintainer computes every vertex's score — the most
	// expensive operation here — so fail the common duplicate case before
	// paying it. The final insert below re-checks under the write lock.
	r.mu.RLock()
	_, dup := r.entries[name]
	r.mu.RUnlock()
	if dup {
		return GraphInfo{}, fmt.Errorf("server: graph %q: %w", name, ErrDuplicate)
	}

	e := r.newEntry(name, mode)
	var initStamps *store.TemporalState
	if window > 0 {
		// Every edge of a windowed graph carries a stamp from birth: the
		// initial load is stamped with the creation time, and the stamps are
		// persisted alongside the first snapshot so a crash before the first
		// checkpoint still recovers a graph that keeps expiring correctly.
		e.window = window
		e.tidx = graph.NewTemporalIndex(int64(window / time.Millisecond))
		now := e.nowMS()
		g.EachEdge(func(u, v int32) bool {
			e.tidx.Stamp(u, v, now)
			return true
		})
		stamps, err := e.tidx.ExportStamps(g)
		if err != nil {
			return GraphInfo{}, fmt.Errorf("server: graph %q: %w", name, err)
		}
		initStamps = &store.TemporalState{WindowMS: uint64(window / time.Millisecond), Stamps: stamps}
		e.refreshTemporalLocked()
	}
	first := &snapshot{epoch: 1, view: g, buildWorkers: e.workers}
	t0 := time.Now()
	first.relab = e.makeRelab(g)
	if mode == ModeLocal {
		e.local = dynamic.NewMaintainerParallel(g, e.workers)
		first.scores = newScoreVec(e.local.All())
	} else {
		if lazyK < 1 {
			lazyK = 10
		}
		e.lazy = dynamic.NewLazyTopKParallel(g, lazyK, e.workers)
	}
	first.publishDur = time.Since(t0)
	// The initial all-vertices build is the moral equivalent of a
	// compaction: it produced the base CSR every later overlay sits on.
	e.lastCompactNs.Store(first.publishDur.Nanoseconds())
	e.snap.Store(first)

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return GraphInfo{}, fmt.Errorf("server: graph %q: %w", name, ErrDuplicate)
	}
	// Creating the store under r.mu keeps the name-reservation and the
	// directory creation atomic (two racing Adds must not both write the
	// same directory); the cost is one snapshot write while lookups wait.
	if r.dataDir != "" {
		st, err := store.CreateWithStamps(store.GraphDir(r.dataDir, name), g,
			e.persistMeta(0), initStamps, r.storeOptions(name)...)
		if err != nil {
			return GraphInfo{}, fmt.Errorf("server: graph %q: %w", name, err)
		}
		e.st = st
		e.mirrorPersist()
	}
	r.entries[name] = e
	go e.writerLoop(r)
	return e.info(), nil
}

// Remove drops the named graph, deleting its durable store (if any) with it.
//
// Ordering is the use-after-Remove fix: first unregister the name (new
// lookups fail), then close the admission queue and wait for the writer
// goroutine to drain and acknowledge every batch admitted before the close,
// and only then mark the entry removed and delete the store. A straggler
// that looked the entry up before the removal finds the queue closed (a
// writer) or the removed flag set (a lazy reader) and fails with not-found —
// it can no longer append to or checkpoint into the deleted directory,
// resurrecting it on disk.
func (r *Registry) Remove(name string) error {
	if err := r.readOnlyErr("remove graph"); err != nil {
		return err
	}
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("server: no graph named %q", name)
	}
	delete(r.entries, name)
	r.mu.Unlock()

	e.closeWrites()
	<-e.stopped

	e.mu.Lock()
	defer e.mu.Unlock()
	e.removed = true
	if e.st != nil {
		if err := e.st.Remove(); err != nil {
			return fmt.Errorf("server: graph %q: remove store: %w", name, err)
		}
	}
	return nil
}

// closeWrites shuts the admission queue: no new batch gets in, and the
// writer goroutine drains what was already admitted, then exits (closing
// e.stopped). Idempotent.
func (e *entry) closeWrites() {
	e.qmu.Lock()
	defer e.qmu.Unlock()
	if !e.qclosed {
		e.qclosed = true
		close(e.queue)
	}
}

// enqueue admits one batch into the write pipeline, failing fast when the
// graph is gone (not-found) or the queue is full (ErrBacklog). The shared
// qmu hold makes the closed-check-then-send atomic against closeWrites.
func (e *entry) enqueue(req *writeReq) error {
	e.qmu.RLock()
	defer e.qmu.RUnlock()
	if e.qclosed {
		return fmt.Errorf("server: no graph named %q", e.name)
	}
	if perr := e.failed.Load(); perr != nil {
		return fmt.Errorf("server: graph %q: %w: pipeline poisoned by earlier failure: %w", e.name, ErrStorage, *perr)
	}
	select {
	case e.queue <- req:
		return nil
	default:
		e.writeRejects.Add(1)
		return &BacklogError{Graph: e.name, Capacity: cap(e.queue), RetryAfter: e.retryAfter()}
	}
}

// retryAfter estimates how long a rejected writer should wait: the queued
// batches drain in ceil(depth/maxGroup) group commits, each taking at least
// the coalescing window. The 1s floor keeps the hint meaningful when the
// window is zero (drains are then bounded by fsync + publication, which the
// estimate cannot see); the 60s cap keeps a pathological configuration from
// parking clients for minutes.
func (e *entry) retryAfter() time.Duration {
	drains := (len(e.queue) + e.maxGroup - 1) / e.maxGroup
	est := time.Duration(drains) * e.flush
	if est < time.Second {
		return time.Second
	}
	if est > 60*time.Second {
		return 60 * time.Second
	}
	return est
}

// GraphInfo summarizes one served graph.
//
// PublishMS is how long the currently served snapshot's publication took:
// the initial all-vertices computation for epoch 1, the O(batch) overlay
// publication inside the write lock for later epochs. CompactMS is the last
// compaction's wall-clock — the O(n+m) flatten of the overlay chain into a
// fresh base CSR, run off the write path (or forced synchronously by a
// checkpoint). SnapshotBuildMS is kept for compatibility and mirrors
// CompactMS, which is what the pre-overlay field measured (a full CSR
// export per drain). BuildWorkers is the worker budget compactions and
// freezes shard across.
type GraphInfo struct {
	Name            string  `json:"name"`
	Mode            string  `json:"mode"`
	Epoch           uint64  `json:"epoch"`
	N               int32   `json:"n"`
	M               int64   `json:"m"`
	LazyK           int     `json:"lazy_k,omitempty"`
	BuildWorkers    int     `json:"build_workers"`
	PublishMS       float64 `json:"publish_ms"`
	CompactMS       float64 `json:"compact_ms"`
	SnapshotBuildMS float64 `json:"snapshot_build_ms"` // deprecated alias of compact_ms

	// Relabeled reports whether the graph serves with degree-ordered
	// relabeling (DESIGN.md §12): recompute queries run on a permuted CSR
	// whose dense low ids are the hubs, translated back at extraction.
	Relabeled bool `json:"relabeled,omitempty"`

	// Overlay accounting (DESIGN.md §10): how many delta layers the served
	// view stacks on its base CSR (0 = fully compacted), the dirty-vertex
	// total across those layers, how many compactions have folded the chain
	// since this process opened the graph, and how many score entries the
	// ModeLocal copy-on-write vector materialized across all drains (chunk
	// granularity; a drain that changed no score adds 0).
	OverlayDepth  int   `json:"overlay_depth"`
	DirtyVertices int   `json:"dirty_vertices,omitempty"`
	Compactions   int64 `json:"compactions"`
	ScoresCopied  int64 `json:"scores_copied,omitempty"`

	// Write-pipeline accounting (DESIGN.md §9): the admission queue's
	// capacity and current depth, how many group commits the writer
	// goroutine has published, how many batches those groups carried
	// (coalesced/commits is the fsync+snapshot amortization factor), and
	// how many admissions backpressure rejected.
	WriteQueueCap    int   `json:"write_queue_cap"`
	WriteQueueDepth  int   `json:"write_queue_depth"`
	GroupCommits     int64 `json:"group_commits"`
	CoalescedBatches int64 `json:"coalesced_batches"`
	WriteRejects     int64 `json:"write_rejects,omitempty"`

	// Persistence accounting (WithDataDir only): the last durable WAL batch
	// sequence, the current WAL size, the sequence folded into the on-disk
	// snapshot, and the checkpoints taken since this process opened the
	// graph.
	Persisted   bool   `json:"persisted,omitempty"`
	WALSeq      uint64 `json:"wal_seq,omitempty"`
	WALBytes    int64  `json:"wal_bytes,omitempty"`
	SnapshotSeq uint64 `json:"snapshot_seq,omitempty"`
	Checkpoints int64  `json:"checkpoints,omitempty"`

	// Sliding-window accounting (set only on windowed graphs, DESIGN.md
	// §14): the configured window, how many edges this process expired and
	// in how many synthesized expiry batches (leader-side; followers apply
	// the leader's expiry deletes as ordinary replayed deletes), and the age
	// of the oldest live edge — the retention bound a read here exhibits.
	Window          string  `json:"window,omitempty"`
	ExpiredEdges    int64   `json:"expired_edges,omitempty"`
	ExpiryBatches   int64   `json:"expiry_batches,omitempty"`
	OldestEdgeAgeMS float64 `json:"oldest_edge_age_ms,omitempty"`

	// Replication accounting (set only on follower-side entries, DESIGN.md
	// §13): ReplicaLagSeq is how many durable leader batches the local state
	// has not applied yet as of the last shipping poll, and ReplicaLagMS how
	// long ago the replica was last fully caught up — 0/absent while it is.
	// Together they bound the staleness a read served here can exhibit.
	Replica       bool    `json:"replica,omitempty"`
	ReplicaLagSeq uint64  `json:"replica_lag_seq,omitempty"`
	ReplicaLagMS  float64 `json:"replica_lag_ms,omitempty"`

	// Approximate-tier accounting (set once an AlgoApprox query has run):
	// queries computed on this entry (cache hits excluded) and the total
	// pair samples they drew.
	ApproxQueries int64 `json:"approx_queries,omitempty"`
	ApproxSamples int64 `json:"approx_samples,omitempty"`

	// Recovery accounting (set only on entries that came up via Recover):
	// "fast" when the checkpoint's maintainer-state section was imported
	// instead of recomputed, "rebuild" otherwise, with the reason for the
	// rebuild (version skew, corruption, pre-state-section snapshot, …).
	RecoverPath   string `json:"recover_path,omitempty"`
	RecoverReason string `json:"recover_reason,omitempty"`
}

func (e *entry) info() GraphInfo {
	return e.infoAt(e.snap.Load())
}

// infoAt summarizes the entry against one specific snapshot, so callers that
// already hold a snapshot report a single consistent epoch.
func (e *entry) infoAt(s *snapshot) GraphInfo {
	compactMS := float64(e.lastCompactNs.Load()) / 1e6
	gi := GraphInfo{
		Name: e.name, Mode: e.mode, Epoch: s.epoch,
		N: s.view.NumVertices(), M: s.view.NumEdges(),
		Relabeled:        e.relabel,
		BuildWorkers:     s.buildWorkers,
		PublishMS:        float64(s.publishDur.Microseconds()) / 1000,
		CompactMS:        compactMS,
		SnapshotBuildMS:  compactMS,
		Compactions:      e.compactions.Load(),
		ScoresCopied:     e.scoresCopied.Load(),
		WriteQueueCap:    cap(e.queue),
		WriteQueueDepth:  len(e.queue),
		GroupCommits:     e.groupCommits.Load(),
		CoalescedBatches: e.coalescedBatches.Load(),
		WriteRejects:     e.writeRejects.Load(),
	}
	if ov := s.overlay(); ov != nil {
		gi.OverlayDepth = ov.Depth()
		gi.DirtyVertices = ov.DirtyVertices()
	}
	if e.lazy != nil {
		gi.LazyK = e.lazy.K()
	}
	if e.st != nil {
		gi.Persisted = true
		gi.WALSeq = e.walSeq.Load()
		gi.WALBytes = e.walBytes.Load()
		gi.SnapshotSeq = e.snapSeq.Load()
		gi.Checkpoints = e.ckpts.Load()
	}
	if e.window > 0 {
		gi.Window = e.window.String()
		gi.ExpiredEdges = e.expiredEdges.Load()
		gi.ExpiryBatches = e.expiryBatches.Load()
		if oldest := e.oldestStamp.Load(); oldest != noOldestStamp {
			if age := e.nowMS() - oldest; age > 0 {
				gi.OldestEdgeAgeMS = float64(age)
			}
		}
	}
	if e.replica {
		gi.Replica = true
		rs := e.replSeq.Load()
		if ls := e.replLeaderSeq.Load(); ls > rs {
			gi.ReplicaLagSeq = ls - rs
			if t := e.replCaughtNano.Load(); t > 0 {
				gi.ReplicaLagMS = float64(time.Now().UnixNano()-t) / 1e6
			}
		}
	}
	gi.ApproxQueries = e.approxQueries.Load()
	gi.ApproxSamples = e.approxSamples.Load()
	gi.RecoverPath = e.recoverPath
	gi.RecoverReason = e.recoverReason
	return gi
}

// Info returns the summary of one graph.
func (r *Registry) Info(name string) (GraphInfo, error) {
	e, err := r.get(name)
	if err != nil {
		return GraphInfo{}, err
	}
	return e.info(), nil
}

// Infos returns the summaries of all graphs, sorted by name.
func (r *Registry) Infos() []GraphInfo {
	names := r.Names()
	out := make([]GraphInfo, 0, len(names))
	for _, n := range names {
		if gi, err := r.Info(n); err == nil {
			out = append(out, gi)
		}
	}
	return out
}

// GraphStats is the stats endpoint payload: snapshot statistics plus the
// serving-side accounting.
type GraphStats struct {
	GraphInfo
	DMax        int32   `json:"dmax"`
	AvgDeg      float64 `json:"avg_degree"`
	Triangles   int64   `json:"triangles"`
	Inserts     int64   `json:"inserts"`
	Deletes     int64   `json:"deletes"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
}

// Stats gathers the stats payload for name. The structural part is computed
// on (and cached in) the current snapshot, so it never blocks writers.
func (r *Registry) Stats(name string) (GraphStats, error) {
	e, err := r.get(name)
	if err != nil {
		return GraphStats{}, err
	}
	s := e.snap.Load()
	st := s.Stats()
	return GraphStats{
		GraphInfo:   e.infoAt(s),
		DMax:        st.DMax,
		AvgDeg:      st.AvgDeg,
		Triangles:   st.Triangles,
		Inserts:     e.inserts.Load(),
		Deletes:     e.deletes.Load(),
		CacheHits:   e.cacheHits.Load(),
		CacheMisses: e.cacheMisses.Load(),
	}, nil
}

// TopKResult is the top-k endpoint payload. The approx-tier fields are
// set only for AlgoApprox answers: the resolved ε / confidence / seed the
// estimator ran with, how many pair samples it drew, and the largest
// certified normalized half-width among the returned vertices.
type TopKResult struct {
	Graph             string       `json:"graph"`
	Epoch             uint64       `json:"epoch"`
	K                 int          `json:"k"`
	Algo              string       `json:"algo"`
	Theta             float64      `json:"theta,omitempty"`
	Eps               float64      `json:"eps,omitempty"`
	Conf              float64      `json:"conf,omitempty"`
	Seed              uint64       `json:"seed,omitempty"`
	ApproxSamples     int64        `json:"approx_samples,omitempty"`
	ApproxEpsAchieved float64      `json:"approx_eps_achieved,omitempty"`
	Cached            bool         `json:"cached"`
	Results           []ego.Result `json:"results"`
}

// TopKQuery is the full top-k query shape. Zero-valued knobs select the
// documented defaults (θ → defaultTheta; ε / Conf → the registry's
// WithApproxDefaults values or the approx package defaults; Seed →
// approx.DefaultSeed). Eps/Conf/Seed apply only to AlgoApprox — setting
// any of them steers an auto query to the approx tier, and combining them
// with an explicit exact algo is rejected.
type TopKQuery struct {
	K     int
	Algo  string
	Theta float64
	Eps   float64
	Conf  float64
	Seed  uint64
}

// TopK answers a top-k query with default approx knobs; see TopKQuery.
func (r *Registry) TopK(name string, k int, algo string, theta float64) (TopKResult, error) {
	return r.TopKQ(name, TopKQuery{K: k, Algo: algo, Theta: theta})
}

// TopKQ answers a top-k query. algo "auto" (or "") picks the cheapest
// exact strategy for the graph's mode — or the approx tier when an approx
// knob is set explicitly. All strategies except AlgoLazy are served
// lock-free from the current snapshot; AlgoLazy consults the LazyTopK
// maintainer under the write lock (its Results() call mutates lazy
// state). AlgoApprox always runs on the snapshot's external-id view (never
// the relabeled CSR), which with per-vertex seeded sample streams makes
// its answers identical across frozen, overlay, and relabeled snapshots of
// the same graph. Answers are cached per (k, algo, θ, ε, δ, seed) in the
// snapshot they were computed against, so an epoch swap invalidates them
// wholesale.
func (r *Registry) TopKQ(name string, q TopKQuery) (TopKResult, error) {
	e, err := r.get(name)
	if err != nil {
		return TopKResult{}, err
	}
	k, algo, theta := q.K, q.Algo, q.Theta
	if k < 1 {
		return TopKResult{}, fmt.Errorf("server: k must be ≥ 1, got %d", k)
	}
	snap := e.snap.Load()
	// Clamp k to the vertex count: k sizes result-set allocations all the
	// way down (topk.NewBounded and the search algorithms), so an absurd
	// query parameter must not translate into an absurd allocation.
	if n := int(snap.view.NumVertices()); k > n {
		k = n
	}
	approxKnobs := q.Eps != 0 || q.Conf != 0 || q.Seed != 0
	if algo == "" || algo == AlgoAuto {
		switch {
		case approxKnobs:
			algo = AlgoApprox
		case e.mode == ModeLazy:
			algo = AlgoLazy
			if e.lazy != nil && k > e.lazy.K() {
				algo = AlgoOpt // lazy set only holds its configured k
			}
		default:
			algo = AlgoScores
		}
	}
	if approxKnobs && algo != AlgoApprox {
		return TopKResult{}, fmt.Errorf("server: eps/conf/seed apply only to algo %q (got algo %q)", AlgoApprox, algo)
	}
	// θ: 0 (unset) selects the documented default; anything else below 1
	// is invalid — OptBSearch's pruning needs θ ≥ 1 — and is rejected
	// rather than silently rewritten, so a library caller asking for
	// θ=0.5 learns about it exactly like an HTTP caller does.
	switch {
	case theta == 0:
		theta = defaultTheta
	case theta < 1 || math.IsNaN(theta):
		return TopKResult{}, fmt.Errorf("server: theta must be ≥ 1 (got %v; 0 selects the default %v)", theta, defaultTheta)
	}
	// Approx knobs: resolve defaults before building the cache key, so a
	// query that spells the default out and one that leaves it unset share
	// an entry; out-of-range values are rejected like a bad θ is.
	eps, conf, seed := q.Eps, q.Conf, q.Seed
	if algo == AlgoApprox {
		if eps == 0 {
			if eps = r.approxEps; eps == 0 {
				eps = approx.DefaultEps
			}
		}
		if conf == 0 {
			if conf = r.approxConf; conf == 0 {
				conf = approx.DefaultConf
			}
		}
		if seed == 0 {
			seed = approx.DefaultSeed
		}
		if !(eps > 0 && eps < 1) || math.IsNaN(eps) {
			return TopKResult{}, fmt.Errorf("server: eps must be in (0, 1), got %v", q.Eps)
		}
		if !(conf > 0 && conf < 1) || math.IsNaN(conf) {
			return TopKResult{}, fmt.Errorf("server: conf must be in (0, 1), got %v", q.Conf)
		}
	}
	key := cacheKey{k: k, algo: algo}
	if algo == AlgoOpt {
		key.thetaBits = math.Float64bits(theta)
	}
	if algo == AlgoApprox {
		key.epsBits = math.Float64bits(eps)
		key.confBits = math.Float64bits(conf)
		key.seed = seed
	}

	if v, ok := snap.cache.Load(key); ok {
		e.cacheHits.Add(1)
		return e.topkResult(snap, key, theta, eps, conf, true, v.(cachedResult)), nil
	}
	e.cacheMisses.Add(1)

	var cr cachedResult
	switch algo {
	case AlgoScores:
		if snap.scores == nil {
			return TopKResult{}, fmt.Errorf("server: algo %q needs mode %q (graph %q is %q)", AlgoScores, ModeLocal, name, e.mode)
		}
		cr.res = ego.TopKOf(snap.scores.Len(), snap.scores.At, k)
	case AlgoOpt:
		if rl := snap.relab; rl != nil {
			cr.res, _ = ego.OptBSearchLabeled(rl.G, k, theta, rl.Ext)
		} else {
			cr.res, _ = ego.OptBSearch(snap.view, k, theta)
		}
	case AlgoBase:
		if rl := snap.relab; rl != nil {
			cr.res, _ = ego.BaseBSearchLabeled(rl.G, k, rl.Ext)
		} else {
			cr.res, _ = ego.BaseBSearch(snap.view, k)
		}
	case AlgoApprox:
		// Always the external-id view: estimates are a pure function of
		// (seed, external vertex id, adjacency), so frozen, overlay, and
		// relabeled snapshots of the same graph answer bit-identically.
		res, st := approx.TopK(snap.view, k, approx.Options{
			Eps: eps, Conf: conf, Seed: seed, Workers: e.workers,
		})
		cr = cachedResult{res: res, samples: st.Samples, epsAchieved: st.EpsAchieved}
		e.approxQueries.Add(1)
		e.approxSamples.Add(st.Samples)
	case AlgoLazy:
		if e.lazy == nil {
			return TopKResult{}, fmt.Errorf("server: algo %q needs mode %q (graph %q is %q)", AlgoLazy, ModeLazy, name, e.mode)
		}
		if k > e.lazy.K() {
			return TopKResult{}, fmt.Errorf("server: algo %q serves k ≤ %d, got %d", AlgoLazy, e.lazy.K(), k)
		}
		// Results() refreshes stale members, i.e. mutates maintainer
		// state: take the write lock. Inside it no swap can happen, so
		// the snapshot reloaded here is the one the lazy set matches.
		e.mu.Lock()
		if e.removed {
			e.mu.Unlock()
			return TopKResult{}, fmt.Errorf("server: no graph named %q", name)
		}
		full := e.lazy.Results()
		snap = e.snap.Load()
		e.mu.Unlock()
		if k < len(full) {
			full = full[:k]
		}
		cr.res = full
	default:
		return TopKResult{}, fmt.Errorf("server: unknown algo %q", algo)
	}
	snap.cacheStore(key, cr)
	return e.topkResult(snap, key, theta, eps, conf, false, cr), nil
}

func (e *entry) topkResult(s *snapshot, key cacheKey, theta, eps, conf float64, cached bool, cr cachedResult) TopKResult {
	tr := TopKResult{Graph: e.name, Epoch: s.epoch, K: key.k, Algo: key.algo, Cached: cached, Results: cr.res}
	switch key.algo {
	case AlgoOpt:
		tr.Theta = theta
	case AlgoApprox:
		tr.Eps = eps
		tr.Conf = conf
		tr.Seed = key.seed
		tr.ApproxSamples = cr.samples
		tr.ApproxEpsAchieved = cr.epsAchieved
	}
	return tr
}

// VertexResult is the per-vertex endpoint payload.
type VertexResult struct {
	Graph  string  `json:"graph"`
	Epoch  uint64  `json:"epoch"`
	V      int32   `json:"v"`
	CB     float64 `json:"cb"`
	Degree int32   `json:"degree"`
	Bound  float64 `json:"bound"` // Lemma 2 static upper bound d(d−1)/2
}

// egoScratch pools the recomputation scratch (center bitset register,
// neighborhood buffer, local evidence map) of the lock-free ModeLazy
// per-vertex read path, so the steady state allocates nothing per query.
// The scratch grows to any graph's vertex count and is safe to share
// across graphs; a sync.Pool keeps one per P under load.
var egoScratch = sync.Pool{New: func() any { return ego.NewScratch(0) }}

// EgoBetweenness answers a single-vertex query, lock-free on the current
// snapshot: from the frozen score vector in ModeLocal, by direct O(local)
// recomputation (with pooled scratch) in ModeLazy.
func (r *Registry) EgoBetweenness(name string, v int32) (VertexResult, error) {
	e, err := r.get(name)
	if err != nil {
		return VertexResult{}, err
	}
	snap := e.snap.Load()
	if v < 0 || v >= snap.view.NumVertices() {
		return VertexResult{}, fmt.Errorf("server: vertex %d out of range [0,%d)", v, snap.view.NumVertices())
	}
	var cb float64
	if snap.scores != nil {
		cb = snap.scores.At(v)
	} else {
		s := egoScratch.Get().(*ego.Scratch)
		cb = ego.EgoBetweenness(snap.view, v, s)
		egoScratch.Put(s)
	}
	d := snap.view.Degree(v)
	return VertexResult{Graph: e.name, Epoch: snap.epoch, V: v, CB: cb, Degree: d, Bound: ego.StaticUB(d)}, nil
}

// EdgeError reports one edge of a batch that could not be applied.
type EdgeError struct {
	Edge  [2]int32 `json:"edge"`
	Error string   `json:"error"`
}

// UpdateResult is the edge-update endpoint payload.
type UpdateResult struct {
	Graph   string      `json:"graph"`
	Epoch   uint64      `json:"epoch"` // epoch now serving (the floor at admission for async)
	Applied int         `json:"applied"`
	Errors  []EdgeError `json:"errors,omitempty"`
	Ack     string      `json:"ack,omitempty"`
	Pending bool        `json:"pending,omitempty"` // async: admitted, commit outstanding
}

// ApplyEdges applies a batch of edge insertions (insert=true) or deletions
// to the named graph with the default durable acknowledgment; see
// ApplyEdgesAck.
func (r *Registry) ApplyEdges(name string, edges [][2]int32, insert bool) (UpdateResult, error) {
	return r.ApplyEdgesAck(name, edges, insert, AckDurable)
}

// ApplyEdgesAck admits a batch of edge insertions (insert=true) or
// deletions into the named graph's write pipeline. The batch joins the
// graph's admission queue; the dedicated writer goroutine drains everything
// waiting into one group commit — one WAL fsync and one snapshot
// publication for the whole group, which amortizes today's two dominant
// per-batch write costs across every concurrently arriving batch. Edges
// that fail individually (duplicate insert, missing delete, self-loop) are
// reported in the result but do not abort the rest of the batch.
//
// ack selects when the call returns: AckDurable (or "") blocks until the
// group commit that carried the batch finished — on a durable registry the
// batch is then in the fsync'd WAL — while AckAsync returns at admission
// with Pending set and the served epoch as a floor. A full queue fails
// with ErrBacklog either way.
//
// On a durable registry an error wrapping ErrStorage from the group's WAL
// append means nothing of the batch was applied; an error from the
// checkpoint that may follow the apply means the batch itself is already
// durable and applied — the returned UpdateResult is valid alongside such
// an error.
func (r *Registry) ApplyEdgesAck(name string, edges [][2]int32, insert bool, ack string) (UpdateResult, error) {
	return r.ApplyEdgesStamped(name, edges, nil, insert, ack)
}

// ApplyEdgesStamped is ApplyEdgesAck with explicit admission timestamps
// (unix ms), one per edge. Stamps matter only for insert batches on a
// sliding-window graph — they decide when each edge expires; there a nil
// stamps assigns the receive time to the whole batch, and a client-supplied
// vector must match the edge count. On an unwindowed graph (and on deletes)
// stamps are meaningless and rejected when present, so a client that thinks
// it is feeding a temporal graph finds out instead of silently losing its
// timeline.
func (r *Registry) ApplyEdgesStamped(name string, edges [][2]int32, stamps []int64, insert bool, ack string) (UpdateResult, error) {
	e, err := r.get(name)
	if err != nil {
		return UpdateResult{}, err
	}
	if err := r.readOnlyErr("apply edges"); err != nil {
		return UpdateResult{}, err
	}
	if len(edges) == 0 {
		return UpdateResult{}, fmt.Errorf("server: empty edge batch")
	}
	if ack == "" {
		ack = AckDurable
	}
	if ack != AckDurable && ack != AckAsync {
		return UpdateResult{}, fmt.Errorf("server: unknown ack mode %q (want %q or %q)", ack, AckDurable, AckAsync)
	}
	if stamps != nil {
		switch {
		case e.window == 0:
			return UpdateResult{}, fmt.Errorf("server: graph %q is not windowed: timestamps are not accepted", name)
		case !insert:
			return UpdateResult{}, fmt.Errorf("server: timestamps apply to insert batches only")
		case len(stamps) != len(edges):
			return UpdateResult{}, fmt.Errorf("server: %d timestamps for %d edges", len(stamps), len(edges))
		}
	}
	if e.window > 0 && insert && stamps == nil {
		// Absent stamps mean "now": the leader's receive time, assigned at
		// admission so it rides the WAL record and every replay — recovery,
		// replicas — sees the identical timeline.
		now := e.nowMS()
		stamps = make([]int64, len(edges))
		for i := range stamps {
			stamps[i] = now
		}
	}
	req := &writeReq{edges: edges, stamps: stamps, insert: insert}
	if ack == AckDurable {
		req.done = make(chan writeReply, 1)
	}
	if err := e.enqueue(req); err != nil {
		return UpdateResult{}, err
	}
	if ack == AckAsync {
		return UpdateResult{
			Graph: name, Epoch: e.snap.Load().epoch, Ack: AckAsync, Pending: true,
		}, nil
	}
	rep := <-req.done
	rep.res.Ack = AckDurable
	return rep.res, rep.err
}

// writerLoop is the per-graph writer goroutine: it owns the drain side of
// the admission queue for the entry's lifetime, group-committing everything
// waiting, and exits once closeWrites both closed the queue and the loop
// drained it.
func (e *entry) writerLoop(r *Registry) {
	defer close(e.stopped)
	if e.window > 0 && !e.replica && r.leader == "" {
		e.windowedWriterLoop(r)
		return
	}
	for req := range e.queue {
		e.commitGroup(r, e.collectGroup(req))
	}
}

// windowedWriterLoop adds idle expiry to the plain drain loop: a ticker
// wakes the writer often enough that edges crossing the window boundary
// expire promptly even when no client writes arrive. A tick runs an
// expiry-only drain (commitGroup with an empty group); one that finds
// nothing past the cutoff commits nothing and costs nothing durable.
// Followers never take this path — their expiry arrives as the leader's
// replayed delete batches, keeping both sides bitwise-equal at every seq.
func (e *entry) windowedWriterLoop(r *Registry) {
	tick := e.window / 4
	if tick > time.Second {
		tick = time.Second
	}
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case req, ok := <-e.queue:
			if !ok {
				return
			}
			e.commitGroup(r, e.collectGroup(req))
		case <-ticker.C:
			e.commitGroup(r, nil)
		}
	}
}

// collectGroup gathers the batches of one group commit: the first request
// plus everything already queued (and, with a positive flush interval,
// everything arriving within the window), capped at maxGroup.
//
// With no flush window, the drain yields the scheduler once before
// committing a short group: a sender that just enqueued is scheduled with
// direct handoff (it readies this goroutine ahead of every other runnable
// writer), so without the yield a saturated single-P process degenerates
// into a one-producer ping-pong with groups of one while the remaining
// writers starve. One Gosched moves this goroutine behind the runnable
// writers, letting them land their batches first — bounded, timer-free
// coalescing.
func (e *entry) collectGroup(first *writeReq) []*writeReq {
	group := []*writeReq{first}
	if e.flush > 0 {
		timer := time.NewTimer(e.flush)
		defer timer.Stop()
		for len(group) < e.maxGroup {
			select {
			case req, ok := <-e.queue:
				if !ok {
					return group
				}
				group = append(group, req)
			case <-timer.C:
				return group
			}
		}
		return group
	}
	yielded := false
	for len(group) < e.maxGroup {
		select {
		case req, ok := <-e.queue:
			if !ok {
				return group
			}
			group = append(group, req)
		default:
			if yielded {
				return group
			}
			yielded = true
			runtime.Gosched()
		}
	}
	return group
}

// Server-level crash points, between the store's durability points and the
// in-memory stages of the group commit. The crash-recovery harness uses
// them to kill the pipeline after the group WAL append but before the apply
// or the snapshot publication — batches that are durable but were never
// applied (or never served) must still be recovered — and between the
// overlay publication and the compaction/checkpoint that would have
// followed, proving recovery never depends on a compaction having run.
// crashAfterExpiry kills a windowed drain after the expiry batch was
// synthesized but before anything reached the WAL: nothing of it is
// durable, so recovery must come back with the edges still live and
// re-expire them on the first post-recovery drain.
const (
	crashAfterExpiry   = "server-after-expiry"
	crashBeforeApply   = "server-before-apply"
	crashBeforePublish = "server-before-publish"
	crashAfterPublish  = "server-after-publish"
)

// serverCrash fires the registry-level crash hook at a pipeline point.
func (r *Registry) serverCrash(name, point string) error {
	if r.crashHook == nil {
		return nil
	}
	return r.crashHook(name, point)
}

// commitGroup is one drain of the write pipeline: expiry synthesis on a
// windowed leader, one WAL append covering every batch in the group (one
// fsync), the deterministic per-batch apply in admission order, one
// snapshot publication, one checkpoint-policy check — then the
// acknowledgments. A nil group is an expiry-only drain from the windowed
// writer's ticker; it commits nothing unless edges actually expired.
func (e *entry) commitGroup(r *Registry, group []*writeReq) {
	e.mu.Lock()
	if perr := e.failed.Load(); perr != nil {
		err := fmt.Errorf("server: graph %q: %w: pipeline poisoned by earlier failure: %w", e.name, ErrStorage, *perr)
		e.mu.Unlock()
		for _, req := range group {
			req.reply(UpdateResult{}, err)
		}
		return
	}

	// Expiry synthesis (DESIGN.md §14): on a windowed leader every drain
	// first turns the edges older than now−window into an ordinary delete
	// batch at the head of the group, so it reaches the WAL before anything
	// else this drain does — recovery, instant-recovery imports, and
	// shipped replicas replay expiry as plain history and never need a
	// clock of their own. ExpireBefore returns the edges in canonical order,
	// a deterministic function of the live edge set.
	if e.tidx != nil && !e.replica && r.leader == "" {
		cutoff := e.nowMS() - int64(e.window/time.Millisecond)
		if expired := e.tidx.ExpireBefore(cutoff); len(expired) > 0 {
			group = append([]*writeReq{{edges: expired, insert: false}}, group...)
			e.expiredEdges.Add(int64(len(expired)))
			e.expiryBatches.Add(1)
			if err := r.serverCrash(e.name, crashAfterExpiry); err != nil {
				e.abortGroup(group, err)
				return
			}
		}
	}
	if len(group) == 0 {
		e.mu.Unlock()
		return
	}

	// Group WAL append: per-batch records, one fsync. An error here means
	// nothing of the group was applied — and the store has poisoned
	// itself, so poison the pipeline too: admissions (notably ack=async
	// ones, which would otherwise be answered 202 and then silently
	// dropped) must start failing up front.
	if e.st != nil {
		specs := make([]store.BatchSpec, len(group))
		for i, req := range group {
			specs[i] = store.BatchSpec{Insert: req.insert, Edges: req.edges, Stamps: req.stamps}
		}
		if _, err := e.st.AppendBatches(specs); err != nil {
			e.failed.Store(&err)
			e.mirrorPersist()
			e.mu.Unlock()
			err = fmt.Errorf("server: graph %q: %w: %w", e.name, ErrStorage, err)
			for _, req := range group {
				req.reply(UpdateResult{}, err)
			}
			return
		}
	}
	if err := r.serverCrash(e.name, crashBeforeApply); err != nil {
		e.abortGroup(group, err)
		return
	}

	// Apply each batch through the maintainer, in admission order — the
	// same deterministic path WAL replay takes on recovery.
	applied := 0
	for _, req := range group {
		req.res = e.applyLocked(req.edges, req.stamps, req.insert)
		applied += req.res.Applied
	}
	e.refreshTemporalLocked()

	// One snapshot publication for the whole group: an O(batch) overlay on
	// the previous view, never a full CSR export (the compactor owns those).
	old := e.snap.Load()
	epoch := old.epoch
	if applied > 0 {
		if err := r.serverCrash(e.name, crashBeforePublish); err != nil {
			e.abortGroup(group, err)
			return
		}
		epoch = old.epoch + 1
		e.publishLocked(epoch)
		if err := r.serverCrash(e.name, crashAfterPublish); err != nil {
			e.abortGroup(group, err)
			return
		}
	}
	for _, req := range group {
		req.res.Epoch = epoch
	}
	e.groupCommits.Add(1)
	e.coalescedBatches.Add(int64(len(group)))

	// Checkpoint before the compaction check: a checkpoint that fires on
	// this drain forces its own synchronous flatten (fullGraphLocked), after
	// which the chain is gone and the background trigger no-ops — the other
	// order would materialize the same chain twice.
	ckErr := e.maybeCheckpoint(r.ckptBatches, r.ckptBytes, len(group))
	e.maybeCompactLocked()
	e.mu.Unlock()

	var groupErr error
	if ckErr != nil {
		// The group itself is durable and applied; only the fold failed —
		// but the store is poisoned now, so poison admissions as well.
		e.failed.Store(&ckErr)
		groupErr = fmt.Errorf("server: graph %q: %w: %w", e.name, ErrStorage, ckErr)
	}
	for _, req := range group {
		req.reply(req.res, groupErr)
	}
}

// abortGroup poisons the pipeline after an injected server-level crash and
// fails the whole group: past this point in-memory and durable state could
// disagree, so no further commit may run. Callers hold e.mu.
func (e *entry) abortGroup(group []*writeReq, cause error) {
	e.failed.Store(&cause)
	e.mu.Unlock()
	err := fmt.Errorf("server: graph %q: %w: %w", e.name, ErrStorage, cause)
	for _, req := range group {
		req.reply(UpdateResult{}, err)
	}
}

// applyLocked routes one batch through the graph's maintainer, skipping
// per-edge failures, and keeps the temporal sidecar of a windowed graph in
// step (stamping applied inserts, forgetting applied deletes). It is
// deliberately deterministic in the graph state and the batch alone — WAL
// replay calls it with the logged batches (and their logged stamps) to
// reproduce the live outcome exactly. Callers hold e.mu (or own the entry
// exclusively, as recovery does before publication).
func (e *entry) applyLocked(edges [][2]int32, stamps []int64, insert bool) UpdateResult {
	res := UpdateResult{Graph: e.name}
	// Inserts may grow the vertex set to max(u,v)+1, so bound how far one
	// batch can push it: ids beyond the limit fail per-edge instead of
	// allocating an arbitrarily large adjacency array under the lock.
	var curN int32
	if e.local != nil {
		curN = e.local.Graph().NumVertices()
	} else {
		curN = e.lazy.Graph().NumVertices()
	}
	limit := curN + maxBatchGrowth
	for i, ed := range edges {
		var opErr error
		if ed[0] >= limit || ed[1] >= limit {
			res.Errors = append(res.Errors, EdgeError{Edge: ed, Error: fmt.Sprintf(
				"server: vertex id exceeds growth limit %d (current n %d + %d per batch)",
				limit, curN, maxBatchGrowth)})
			continue
		}
		switch {
		case insert && e.local != nil:
			opErr = e.local.InsertEdge(ed[0], ed[1])
		case insert && e.lazy != nil:
			opErr = e.lazy.InsertEdge(ed[0], ed[1])
		case !insert && e.local != nil:
			opErr = e.local.DeleteEdge(ed[0], ed[1])
		default:
			opErr = e.lazy.DeleteEdge(ed[0], ed[1])
		}
		if opErr != nil {
			res.Errors = append(res.Errors, EdgeError{Edge: ed, Error: opErr.Error()})
			continue
		}
		res.Applied++
		if e.tidx != nil {
			if insert {
				var ts int64
				if stamps != nil {
					ts = stamps[i]
				}
				e.tidx.Stamp(ed[0], ed[1], ts)
			} else {
				e.tidx.Forget(ed[0], ed[1])
			}
		}
		if insert {
			e.inserts.Add(1)
		} else {
			e.deletes.Add(1)
		}
	}
	return res
}

// noOldestStamp is the oldestStamp mirror's "no live stamped edges"
// sentinel — outside any real unix-ms stamp a test clock would use.
const noOldestStamp = math.MinInt64

// refreshTemporalLocked re-mirrors the oldest live stamp after a drain (or
// recovery/replica apply) mutated the temporal sidecar, so GraphInfo reads
// it lock-free. Callers hold e.mu or own the entry exclusively.
func (e *entry) refreshTemporalLocked() {
	if e.tidx == nil {
		return
	}
	if oldest, ok := e.tidx.OldestStamp(); ok {
		e.oldestStamp.Store(oldest)
	} else {
		e.oldestStamp.Store(noOldestStamp)
	}
}

// dyn returns the maintainer's mutable graph.
func (e *entry) dyn() *graph.DynGraph {
	if e.local != nil {
		return e.local.Graph()
	}
	return e.lazy.Graph()
}

// publishLocked publishes the post-drain state as a copy-on-write snapshot:
// a graph.Overlay carrying only the adjacency lists this drain dirtied,
// layered on the previous view, and (in ModeLocal) a score vector sharing
// every chunk no score of which changed. Both costs are O(batch), so the
// write lock holds publication latency independent of the graph size — the
// O(n+m) work moved to the background compactor. Callers must hold e.mu.
func (e *entry) publishLocked(epoch uint64) {
	t0 := time.Now()
	old := e.snap.Load()
	s := &snapshot{epoch: epoch, view: e.dyn().FreezeOverlay(old.view), buildWorkers: e.workers}
	if e.local != nil {
		sv, copied := old.scores.withUpdates(e.local.All(), e.local.TakeDirtyScores())
		s.scores = sv
		if copied > 0 {
			e.scoresCopied.Add(int64(copied) * scoreChunkSize)
		}
	}
	s.publishDur = time.Since(t0)
	e.snap.Store(s)
}

// makeRelab builds the degree-ordered relabeling of a fully compacted view,
// or nil when the entry does not relabel. O(n log n + m); callers decide
// whether that runs under e.mu (checkpoint-forced flattens, recovery) or
// off-lock (the background compactor).
func (e *entry) makeRelab(g *graph.Graph) *graph.Relabeled {
	if !e.relabel {
		return nil
	}
	return graph.DegreeRelabel(g)
}

// relabFromPerm prefers a persisted permutation over recomputing the degree
// order, so a recovered graph serves with the exact pre-crash internal
// layout. An unusable permutation (wrong n after WAL replay grew the graph,
// or a corrupt section that decoded to a non-bijection) falls back to
// DegreeRelabel — any bijection serves correctly, so the fallback is never
// wrong, just a fresh layout.
func (e *entry) relabFromPerm(g *graph.Graph, perm []int32) *graph.Relabeled {
	if !e.relabel {
		return nil
	}
	if len(perm) > 0 {
		if rl, err := graph.RelabelFromPerm(g, perm); err == nil {
			return rl
		}
	}
	return graph.DegreeRelabel(g)
}

// buildFullSnapshot freezes the maintainer's current graph (and, in
// ModeLocal, its exact scores) into a fully compacted snapshot — a
// standalone CSR, no overlay. Recovery uses it to seed the first published
// view, passing the checkpointed permutation (if any) so the internal
// layout round-trips; the steady-state write path publishes overlays
// instead. It resets the maintainer's dirty tracking, which the freeze
// subsumes. Callers must hold e.mu or own the entry exclusively.
func (e *entry) buildFullSnapshot(epoch uint64, perm []int32) *snapshot {
	t0 := time.Now()
	dyn := e.dyn()
	dyn.TakeDirty()
	g := dyn.Freeze(e.workers)
	s := &snapshot{epoch: epoch, view: g, relab: e.relabFromPerm(g, perm), buildWorkers: e.workers}
	if e.local != nil {
		e.local.TakeDirtyScores()
		s.scores = newScoreVec(e.local.All())
	}
	s.publishDur = time.Since(t0)
	e.lastCompactNs.Store(s.publishDur.Nanoseconds())
	return s
}

// maybeCompactLocked checks the compaction policy against the just-published
// view and, when it trips, hands the flatten to a background goroutine — at
// most one per entry at a time. Callers hold e.mu; the compactor itself
// takes e.mu only for the final swap.
func (e *entry) maybeCompactLocked() {
	s := e.snap.Load()
	ov := s.overlay()
	if ov == nil {
		return
	}
	n := int(ov.NumVertices())
	if ov.Depth() < e.maxDepth && (n == 0 || float64(ov.DirtyVertices()) < e.dirtyRatio*float64(n)) {
		return
	}
	if e.compacting.Swap(true) {
		return // a flatten is already in flight; it will cover these layers
	}
	go e.compact(s)
}

// compact flattens the overlay chain of snap into a fresh base CSR and
// republishes. The O(n+m) Materialize reads only immutable state, so it
// runs with no lock held — readers keep reading, the writer keeps
// publishing layers on top. The swap then happens under e.mu: if the
// published snapshot is still snap, its view is simply replaced; if drains
// landed meanwhile, the layers they stacked on top are re-anchored onto the
// new base (sharing their delta maps), so their O(batch) publications
// survive the compaction. Epoch and scores are untouched — the graph the
// snapshot answers for is identical, only its representation changed.
func (e *entry) compact(snap *snapshot) {
	ov := snap.overlay()
	if ov == nil {
		e.compacting.Store(false)
		return
	}
	t0 := time.Now()
	g := ov.Materialize(e.workers)
	// The relabeling is O(n log n + m) like the flatten itself, so it is
	// built here, off-lock, and discarded on the rebase path (where the
	// published view stays an overlay).
	relab := e.makeRelab(g)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.compacting.Store(false)
	if e.removed {
		return
	}
	// Whatever happens below, drains may have stacked further layers while
	// this flatten ran (including on a checkpoint-forced base that makes
	// the Rebase miss) — re-check the policy on the way out so a too-deep
	// chain cannot outlive the last drain.
	defer e.maybeCompactLocked()
	cur := e.snap.Load()
	var nview graph.View
	if cur == snap {
		nview = g
	} else if curOv := cur.overlay(); curOv != nil {
		v, ok := curOv.Rebase(snap.view, g)
		if !ok {
			return // a checkpoint-forced compaction already replaced the chain
		}
		nview, relab = v, nil // still an overlay: no relabeled twin
	} else {
		return // already a full CSR
	}
	e.snap.Store(cur.withView(nview, relab))
	e.compactions.Add(1)
	e.lastCompactNs.Store(time.Since(t0).Nanoseconds())
}

// fullGraphLocked returns the full CSR of the published snapshot, forcing a
// synchronous compaction when the served view is an overlay — checkpoints
// need a standalone CSR for the unchanged on-disk format, and reusing the
// forced flatten as the published view means the work is paid once. Callers
// must hold e.mu.
func (e *entry) fullGraphLocked() *graph.Graph {
	s := e.snap.Load()
	if g, ok := s.view.(*graph.Graph); ok {
		return g
	}
	t0 := time.Now()
	g := s.overlay().Materialize(e.workers)
	e.snap.Store(s.withView(g, e.makeRelab(g)))
	e.compactions.Add(1)
	e.lastCompactNs.Store(time.Since(t0).Nanoseconds())
	return g
}
