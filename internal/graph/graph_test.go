package graph

import (
	"sort"
	"testing"
	"testing/quick"
)

func mustG(t *testing.T, n int32, edges [][2]int32) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesBasics(t *testing.T) {
	g := mustG(t, 5, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}})
	if g.NumVertices() != 5 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d, want 5, 4", g.NumVertices(), g.NumEdges())
	}
	if g.MaxDegree() != 2 {
		t.Errorf("dmax=%d, want 2", g.MaxDegree())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesDedupAndLoops(t *testing.T) {
	g := mustG(t, 3, [][2]int32{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}})
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d, want 2 (dup and loop dropped)", g.NumEdges())
	}
	if g.HasEdge(2, 2) {
		t.Error("self-loop survived")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge (0,1) missing or asymmetric")
	}
}

func TestFromEdgesInferN(t *testing.T) {
	g := mustG(t, -1, [][2]int32{{0, 7}, {3, 2}})
	if g.NumVertices() != 8 {
		t.Fatalf("inferred n=%d, want 8", g.NumVertices())
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges(3, [][2]int32{{0, 3}}); err == nil {
		t.Fatal("want error for out-of-range endpoint")
	}
	if _, err := FromEdges(3, [][2]int32{{-1, 2}}); err == nil {
		t.Fatal("want error for negative endpoint")
	}
}

func TestHasEdgeExhaustive(t *testing.T) {
	edges := [][2]int32{{0, 1}, {0, 2}, {0, 3}, {2, 3}, {4, 5}}
	g := mustG(t, 6, edges)
	want := map[[2]int32]bool{}
	for _, e := range edges {
		want[[2]int32{e[0], e[1]}] = true
		want[[2]int32{e[1], e[0]}] = true
	}
	for u := int32(0); u < 6; u++ {
		for v := int32(0); v < 6; v++ {
			if got := g.HasEdge(u, v); got != want[[2]int32{u, v}] {
				t.Errorf("HasEdge(%d,%d) = %v", u, v, got)
			}
		}
	}
}

func TestOrderAndRank(t *testing.T) {
	// Degrees: 0:3, 1:2, 2:2, 3:1, 4:0. Ties (1,2) break to larger id.
	g := mustG(t, 5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	order := g.Order()
	want := []int32{0, 2, 1, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	rank := g.Rank()
	for i, v := range order {
		if rank[v] != int32(i) {
			t.Errorf("rank[%d] = %d, want %d", v, rank[v], i)
		}
	}
	if !g.Before(2, 1) || g.Before(1, 2) {
		t.Error("tie-break: want 2 ≺ 1 (larger id first)")
	}
}

func TestEachEdgeOnce(t *testing.T) {
	g := mustG(t, 6, [][2]int32{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {4, 5}})
	seen := map[[2]int32]int{}
	g.EachEdge(func(u, v int32) bool {
		if u >= v {
			t.Fatalf("EachEdge yielded (%d,%d) with u >= v", u, v)
		}
		seen[[2]int32{u, v}]++
		return true
	})
	if int64(len(seen)) != g.NumEdges() {
		t.Fatalf("saw %d edges, want %d", len(seen), g.NumEdges())
	}
	for e, c := range seen {
		if c != 1 {
			t.Errorf("edge %v seen %d times", e, c)
		}
	}
}

func TestEachEdgeEarlyStop(t *testing.T) {
	g := mustG(t, 4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	count := 0
	g.EachEdge(func(u, v int32) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d, want 2", count)
	}
}

func TestOrientation(t *testing.T) {
	g := mustG(t, 4, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	o := Orient(g)
	// Every undirected edge appears exactly once in the oriented edge list,
	// from the ≺-earlier endpoint.
	total := 0
	for v := int32(0); v < 4; v++ {
		for _, w := range o.OutNeighbors(v) {
			total++
			if o.Rank(v) >= o.Rank(w) {
				t.Errorf("oriented edge (%d,%d) violates rank order", v, w)
			}
			if !g.HasEdge(v, w) {
				t.Errorf("oriented edge (%d,%d) not in graph", v, w)
			}
		}
	}
	if int64(total) != g.NumEdges() {
		t.Fatalf("oriented edges %d, want %d", total, g.NumEdges())
	}
	if got := len(o.Edges()); int64(got) != g.NumEdges() {
		t.Fatalf("Edges() length %d, want %d", got, g.NumEdges())
	}
}

func TestIntersectSorted(t *testing.T) {
	cases := []struct{ a, b, want []int32 }{
		{nil, nil, nil},
		{[]int32{1, 2, 3}, nil, nil},
		{[]int32{1, 3, 5}, []int32{2, 4, 6}, nil},
		{[]int32{1, 2, 3}, []int32{2, 3, 4}, []int32{2, 3}},
		{[]int32{5}, []int32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20,
			21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39, 40}, []int32{5}},
	}
	for i, c := range cases {
		got := IntersectSorted(nil, c.a, c.b)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: got %v, want %v", i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: got %v, want %v", i, got, c.want)
			}
		}
		if n := CountCommonSorted(c.a, c.b); n != len(c.want) {
			t.Fatalf("case %d: count %d, want %d", i, n, len(c.want))
		}
	}
}

// TestQuickIntersect checks merge and galloping intersection against a map
// oracle for arbitrary inputs, including the size-ratio threshold crossing.
func TestQuickIntersect(t *testing.T) {
	f := func(rawA, rawB []uint16) bool {
		a := sortedUnique(rawA)
		b := sortedUnique(rawB)
		inA := map[int32]bool{}
		for _, x := range a {
			inA[x] = true
		}
		var want []int32
		for _, x := range b {
			if inA[x] {
				want = append(want, x)
			}
		}
		got := IntersectSorted(nil, a, b)
		if len(got) != len(want) || CountCommonSorted(a, b) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func sortedUnique(raw []uint16) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, x := range raw {
		v := int32(x)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestCommonNeighbors(t *testing.T) {
	g := mustG(t, 5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 4}})
	got := g.CommonNeighbors(nil, 0, 1)
	want := []int32{2, 3}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("common(0,1) = %v, want %v", got, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := mustG(t, 3, [][2]int32{{0, 1}, {1, 2}})
	c := g.Clone()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() != g.NumEdges() || c.NumVertices() != g.NumVertices() {
		t.Fatal("clone differs")
	}
}

func TestStats(t *testing.T) {
	// Triangle plus a pendant: 1 triangle.
	g := mustG(t, 4, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	st := ComputeStats(g)
	if st.Triangles != 1 {
		t.Errorf("triangles = %d, want 1", st.Triangles)
	}
	if st.DMax != 3 || st.N != 4 || st.M != 4 {
		t.Errorf("stats = %+v", st)
	}
	// Complete graph K5: C(5,3) = 10 triangles.
	var edges [][2]int32
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			edges = append(edges, [2]int32{u, v})
		}
	}
	k5 := mustG(t, 5, edges)
	if st := ComputeStats(k5); st.Triangles != 10 {
		t.Errorf("K5 triangles = %d, want 10", st.Triangles)
	}
}
