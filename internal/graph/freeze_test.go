package graph

import (
	"math/rand/v2"
	"testing"
)

// TestFreezeMatchesFromAdjacency checks that the direct CSR export — serial
// and parallel — produces a graph identical to the general (sort + dedup)
// construction path, across random mutation histories.
func TestFreezeMatchesFromAdjacency(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 20; trial++ {
		n := int32(2 + rng.IntN(2000))
		d := NewDynGraph(n)
		for i := 0; i < 4*int(n); i++ {
			u, v := rng.Int32N(n), rng.Int32N(n)
			if u == v {
				continue
			}
			if d.HasEdge(u, v) {
				_ = d.DeleteEdge(u, v)
			} else {
				_ = d.InsertEdge(u, v)
			}
		}
		want, err := FromAdjacency(d.adj)
		if err != nil {
			t.Fatalf("trial %d: FromAdjacency: %v", trial, err)
		}
		for _, workers := range []int{1, 4} {
			got := d.Freeze(workers)
			if err := got.Validate(); err != nil {
				t.Fatalf("trial %d (workers=%d): invalid CSR: %v", trial, workers, err)
			}
			if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() ||
				got.MaxDegree() != want.MaxDegree() {
				t.Fatalf("trial %d (workers=%d): shape mismatch: got n=%d m=%d dmax=%d, want n=%d m=%d dmax=%d",
					trial, workers, got.NumVertices(), got.NumEdges(), got.MaxDegree(),
					want.NumVertices(), want.NumEdges(), want.MaxDegree())
			}
			for v := int32(0); v < n; v++ {
				gn, wn := got.Neighbors(v), want.Neighbors(v)
				if len(gn) != len(wn) {
					t.Fatalf("trial %d (workers=%d): vertex %d degree %d != %d", trial, workers, v, len(gn), len(wn))
				}
				for i := range gn {
					if gn[i] != wn[i] {
						t.Fatalf("trial %d (workers=%d): vertex %d neighbor %d: %d != %d",
							trial, workers, v, i, gn[i], wn[i])
					}
				}
			}
		}
	}
}
