package server

// This file is the persistence glue between the Registry and internal/store
// (DESIGN.md §8).
//
// Durability contract: the per-graph serialized writer appends every update
// batch to the graph's WAL (and fsyncs) before applying it, and periodically
// folds the WAL into a fresh binary CSR snapshot (the checkpoint). Since the
// version-2 snapshot format (DESIGN.md §11), a checkpoint also carries the
// live maintainer's state — scores, pair-evidence tables, dirty bookkeeping —
// in a separately checksummed section, so recovery has a fast path: load the
// CSR, import the maintainer state in O(load), and replay only the WAL tail
// through applyLocked, the same deterministic batch-application code the live
// writer uses. When the section is absent (a pre-v2 or never-checkpointed
// store), version-skewed, corrupt, or fails import validation, recovery falls
// back to rebuilding the maintainer from the graph — strictly slower, never
// wrong — and reports which path ran (GraphInfo.RecoverPath/RecoverReason).
// Either way the recovered top-k state matches a process that never crashed.

import (
	"fmt"
	"time"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/store"
)

// Maintenance-mode tags in persisted snapshot headers.
const (
	modeTagLocal uint8 = 0
	modeTagLazy  uint8 = 1
)

func modeToTag(mode string) uint8 {
	if mode == ModeLazy {
		return modeTagLazy
	}
	return modeTagLocal
}

func modeFromTag(tag uint8) (string, error) {
	switch tag {
	case modeTagLocal:
		return ModeLocal, nil
	case modeTagLazy:
		return ModeLazy, nil
	default:
		return "", fmt.Errorf("server: unknown persisted mode tag %d", tag)
	}
}

// storeOptions builds the per-graph store options, binding the registry's
// crash hook to the graph name.
func (r *Registry) storeOptions(name string) []store.Option {
	if r.crashHook == nil {
		return nil
	}
	return []store.Option{store.WithCrashHook(func(point string) error {
		return r.crashHook(name, point)
	})}
}

// persistMeta is the snapshot metadata for this entry at WAL sequence seq.
func (e *entry) persistMeta(seq uint64) store.SnapshotMeta {
	meta := store.SnapshotMeta{Mode: modeToTag(e.mode), Seq: seq}
	if e.lazy != nil {
		meta.LazyK = uint32(e.lazy.K())
	}
	return meta
}

// mirrorPersist refreshes the entry's lock-free persistence counters from
// the store. Callers hold e.mu.
func (e *entry) mirrorPersist() {
	if e.st == nil {
		return
	}
	e.walSeq.Store(e.st.Seq())
	e.walBytes.Store(e.st.WALBytes())
	e.snapSeq.Store(e.st.SnapshotSeq())
	e.ckpts.Store(e.st.Checkpoints())
}

// maintainerState exports the live maintainer's state for a checkpoint.
// The exported slices alias live maintainer internals and stay valid only
// until the next applied batch — callers hold e.mu and encode synchronously,
// which is exactly that window. Callers hold e.mu.
func (e *entry) maintainerState() *store.MaintainerState {
	switch {
	case e.local != nil:
		return &store.MaintainerState{Local: e.local.ExportState()}
	case e.lazy != nil:
		return &store.MaintainerState{Lazy: e.lazy.ExportState()}
	}
	return nil
}

// maybeCheckpoint folds the WAL into a fresh snapshot once the policy says
// so: every ckptBatches update batches (a group commit counts each batch it
// carried) or once the WAL passes ckptBytes. The on-disk format is a full
// CSR plus the maintainer-state section, unchanged by the overlay scheme:
// the checkpoint takes its graph from the compactor — fullGraphLocked forces
// a synchronous compaction when the served view is still an overlay chain,
// and the flattened CSR is republished so the work also pays down the read
// path. Callers hold e.mu.
func (e *entry) maybeCheckpoint(ckptBatches int, ckptBytes int64, batches int) error {
	if e.st == nil {
		return nil
	}
	defer e.mirrorPersist()
	e.sinceCkpt += batches
	if e.sinceCkpt < ckptBatches && e.st.WALBytes() < ckptBytes {
		return nil
	}
	// fullGraphLocked also (re)attaches the relabeling to the published
	// snapshot when the entry relabels, so the permutation checkpointed here
	// is exactly the layout the recompute queries serve with — recovery
	// restores both from the same section.
	g := e.fullGraphLocked()
	var perm []int32
	if rl := e.snap.Load().relab; rl != nil {
		perm = rl.Perm
	}
	// A windowed graph checkpoints its temporal sidecar alongside the CSR,
	// so recovery keeps expiring from the exact per-edge stamps. A sidecar
	// that cannot produce a stamp for every graph edge is a divergence bug,
	// treated like any other checkpoint failure (the pipeline poisons).
	var ts *store.TemporalState
	if e.tidx != nil {
		stamps, err := e.tidx.ExportStamps(g)
		if err != nil {
			return err
		}
		ts = &store.TemporalState{WindowMS: uint64(e.tidx.WindowMS()), Stamps: stamps}
	}
	if err := e.st.CheckpointFull(g, e.persistMeta(e.st.Seq()), e.maintainerState(), perm, ts); err != nil {
		return err
	}
	e.sinceCkpt = 0
	return nil
}

// Close shuts every graph's write pipeline — the admission queues stop
// accepting, the writer goroutines drain what was admitted and exit — and
// then releases every durable store: WAL handles and the per-directory
// locks that exclude a second opener. The registry must not serve
// afterwards. Clean daemon shutdown calls it; so do tests and examples that
// reopen a data dir in-process, where it stands in for the lock release a
// real process death performs automatically.
func (r *Registry) Close() error {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	for _, e := range entries {
		e.closeWrites()
		<-e.stopped
	}
	var first error
	for _, e := range entries {
		e.mu.Lock()
		if e.st != nil {
			if err := e.st.Close(); err != nil && first == nil {
				first = err
			}
		}
		e.mu.Unlock()
	}
	return first
}

// RecoverFailure is one graph Recover could not bring back.
type RecoverFailure struct {
	Graph string
	Err   error
}

func (f RecoverFailure) Error() string {
	return fmt.Sprintf("server: recover graph %q: %v", f.Graph, f.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (f RecoverFailure) Unwrap() error { return f.Err }

// RecoverError collects the per-graph failures of one Recover pass. It
// implements Unwrap() []error, so errors.Is/As reach into every failure —
// existing callers testing errors.Is(err, ErrDuplicate) keep working.
type RecoverError struct {
	Failures []RecoverFailure
}

func (e *RecoverError) Error() string {
	if len(e.Failures) == 1 {
		return e.Failures[0].Error()
	}
	return fmt.Sprintf("server: recover: %d graphs failed (first: %v)", len(e.Failures), e.Failures[0])
}

// Unwrap returns the per-graph failures for errors.Is/As traversal.
func (e *RecoverError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f
	}
	return errs
}

// Recover loads every graph persisted under the registry's data directory:
// latest snapshot, then the WAL tail replayed through the paper's
// maintainer. It returns the recovered graphs' summaries. Call it once,
// before serving traffic; recovering a name that is already registered is an
// error.
//
// One broken graph does not abort the boot: every remaining graph is still
// recovered and served, and the failures come back collected in a
// *RecoverError alongside the successful summaries — the daemon logs them
// and keeps the healthy graphs online rather than refusing to start over
// one bad directory.
func (r *Registry) Recover() ([]GraphInfo, error) {
	if r.dataDir == "" {
		return nil, nil
	}
	names, err := store.ListGraphs(r.dataDir)
	if err != nil {
		return nil, fmt.Errorf("server: recover: %w", err)
	}
	infos := make([]GraphInfo, 0, len(names))
	var failures []RecoverFailure
	for _, name := range names {
		gi, err := r.recoverOne(name)
		if err != nil {
			failures = append(failures, RecoverFailure{Graph: name, Err: err})
			continue
		}
		infos = append(infos, gi)
	}
	if len(failures) > 0 {
		return infos, &RecoverError{Failures: failures}
	}
	return infos, nil
}

// recoverOne brings one graph back from its store directory. When the
// snapshot carries a usable maintainer-state section the maintainer is
// imported from it in O(load) — the fast path; otherwise (pre-v2 snapshot,
// corrupt or version-skewed section, import validation failure) it is
// reconstructed on the snapshot graph, recomputing all scores and evidence.
// Either way the WAL tail is then replayed through applyLocked — the same
// deterministic code the live writer runs — so the final state equals the
// pre-crash state.
func (r *Registry) recoverOne(name string) (GraphInfo, error) {
	// Refuse before touching the store: opening would contend on the
	// directory lock the already-registered graph holds.
	r.mu.RLock()
	_, dup := r.entries[name]
	r.mu.RUnlock()
	if dup {
		return GraphInfo{}, fmt.Errorf("graph already registered: %w", ErrDuplicate)
	}
	st, rec, err := store.Open(store.GraphDir(r.dataDir, name), r.storeOptions(name)...)
	if err != nil {
		return GraphInfo{}, err
	}
	e, err := r.restoreEntry(name, st, rec)
	if err != nil {
		st.Close()
		return GraphInfo{}, err
	}
	if err := r.register(e); err != nil {
		st.Close()
		return GraphInfo{}, err
	}
	return e.info(), nil
}

// restoreEntry builds a served entry from a store's recovered state: the
// maintainer via fast-import or rebuild, the WAL tail replayed through
// applyLocked, the first snapshot published as a fully compacted CSR. It is
// the shared trunk of crash recovery (recoverOne) and replica installation
// (InstallReplica, where st may be nil for a memory-only follower). The
// entry is complete but unregistered; callers hand it to register.
func (r *Registry) restoreEntry(name string, st *store.Store, rec *store.Recovered) (*entry, error) {
	mode, err := modeFromTag(rec.Meta.Mode)
	if err != nil {
		return nil, err
	}
	e := r.newEntry(name, mode)
	e.st = st
	t0 := time.Now()
	e.recoverPath = "rebuild"
	switch {
	case rec.StateErr != nil:
		e.recoverReason = rec.StateErr.Error()
	case rec.State == nil:
		e.recoverReason = "no maintainer-state section in snapshot"
	}
	// Invalid persisted metadata must not fail the boot over a value the
	// rebuild path can substitute — but substituting silently would hide
	// that the served lazy-k is not what the checkpoint claimed, so the
	// fallback is recorded and survives into recover_reason whichever
	// maintainer path wins below.
	var metaReason string
	if mode == ModeLocal {
		if rec.State != nil && rec.StateErr == nil {
			if rec.State.Local == nil {
				e.recoverReason = "snapshot maintainer state is for the other maintenance mode"
			} else if m, err := dynamic.NewMaintainerFromState(rec.Graph, rec.State.Local); err != nil {
				e.recoverReason = fmt.Sprintf("maintainer-state import: %v", err)
			} else {
				e.local, e.recoverPath, e.recoverReason = m, "fast", ""
			}
		}
		if e.local == nil {
			e.local = dynamic.NewMaintainerParallel(rec.Graph, e.workers)
		}
	} else {
		lazyK := int(rec.Meta.LazyK)
		if lazyK < 1 {
			metaReason = fmt.Sprintf("persisted lazy-k %d invalid; serving fallback k=10", lazyK)
			lazyK = 10
		}
		if rec.State != nil && rec.StateErr == nil {
			if rec.State.Lazy == nil {
				e.recoverReason = "snapshot maintainer state is for the other maintenance mode"
			} else if lt, err := dynamic.NewLazyTopKFromState(rec.Graph, lazyK, rec.State.Lazy); err != nil {
				e.recoverReason = fmt.Sprintf("maintainer-state import: %v", err)
			} else {
				e.lazy, e.recoverPath, e.recoverReason = lt, "fast", ""
			}
		}
		if e.lazy == nil {
			e.lazy = dynamic.NewLazyTopKParallel(rec.Graph, lazyK, e.workers)
		}
	}
	if metaReason != "" {
		if e.recoverReason != "" {
			e.recoverReason += "; "
		}
		e.recoverReason += metaReason
	}
	// The temporal sidecar of a windowed graph is rebuilt from the
	// snapshot's stamps section before the tail replay, so replayed stamped
	// inserts land in it exactly as they did live. A missing or corrupt
	// section degrades the graph to unwindowed serving — strictly a
	// retention regression, never a correctness one — and is recorded.
	var tempReason string
	switch {
	case rec.StampsErr != nil:
		tempReason = fmt.Sprintf("temporal section unusable, serving unwindowed: %v", rec.StampsErr)
	case rec.Stamps != nil:
		ti, err := graph.NewTemporalIndexFromStamps(int64(rec.Stamps.WindowMS), rec.Graph, rec.Stamps.Stamps)
		if err != nil {
			tempReason = fmt.Sprintf("temporal sidecar rebuild failed, serving unwindowed: %v", err)
		} else {
			e.window = time.Duration(rec.Stamps.WindowMS) * time.Millisecond
			e.tidx = ti
		}
	}
	if tempReason != "" {
		if e.recoverReason != "" {
			e.recoverReason += "; "
		}
		e.recoverReason += tempReason
	}
	lastSeq := rec.Meta.Seq
	for _, b := range rec.Tail {
		e.applyLocked(b.Edges, b.Stamps, b.Insert)
		lastSeq = b.Seq
	}
	e.refreshTemporalLocked()
	// The epoch restarts at wal-seq+1, so it keeps advancing with the
	// batch sequence across restarts instead of snapping back to 1. The
	// recovered view is a fully compacted CSR: replay dirtied state that no
	// previous publication exists to overlay on. The checkpointed relabel
	// permutation (if any, and still a bijection after the tail replay)
	// restores the exact pre-crash internal layout.
	s := e.buildFullSnapshot(lastSeq+1, rec.Perm)
	s.publishDur = time.Since(t0)
	e.lastCompactNs.Store(s.publishDur.Nanoseconds())
	e.snap.Store(s)
	e.sinceCkpt = len(rec.Tail)
	e.replSeq.Store(lastSeq)
	if r.leader != "" {
		e.replica = true
		e.replCaughtNano.Store(time.Now().UnixNano())
	}
	e.mirrorPersist()
	return e, nil
}

// register publishes a completed entry under its name and starts its writer
// goroutine. On a name collision the entry is NOT registered and the caller
// still owns its resources (notably the store handle).
func (r *Registry) register(e *entry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.name]; dup {
		return fmt.Errorf("graph already registered: %w", ErrDuplicate)
	}
	r.entries[e.name] = e
	go e.writerLoop(r)
	return nil
}
