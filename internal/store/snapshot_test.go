package store

import (
	"bytes"
	"encoding/binary"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// -update regenerates the golden snapshot files under testdata/. Run it
// after a deliberate format change (and bump SnapshotVersion!); the golden
// tests otherwise pin the encoding byte for byte.
var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenCases are small fixed graphs with fixed metadata whose encodings
// are pinned under testdata/. Together they cover an empty graph, an
// isolated vertex, and a graph with degree variety.
var goldenCases = []struct {
	name  string
	meta  SnapshotMeta
	edges [][2]int32
	n     int32
}{
	{name: "empty", meta: SnapshotMeta{}, n: 0},
	{name: "triangle", meta: SnapshotMeta{Mode: 0, Seq: 3}, n: 3,
		edges: [][2]int32{{0, 1}, {1, 2}, {0, 2}}},
	{name: "star_isolated", meta: SnapshotMeta{Mode: 1, LazyK: 7, Seq: 42}, n: 6,
		edges: [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}}}, // vertex 5 isolated
	{name: "diamond", meta: SnapshotMeta{Mode: 1, LazyK: 2, Seq: 1}, n: 4,
		edges: [][2]int32{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}}},
}

func goldenGraph(t *testing.T, i int) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(goldenCases[i].n, goldenCases[i].edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sameGraph(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("graph shape (n=%d,m=%d), want (n=%d,m=%d)",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	gotOff, gotAdj := got.CSR()
	wantOff, wantAdj := want.CSR()
	if !equalInt64s(gotOff, wantOff) || !equalInt32s(gotAdj, wantAdj) {
		t.Fatalf("CSR mismatch:\n got %v %v\nwant %v %v", gotOff, gotAdj, wantOff, wantAdj)
	}
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInt32s(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotGolden pins the byte-stable encoding: every golden case must
// encode to exactly the bytes under testdata/ and decode back to the same
// graph and metadata.
func TestSnapshotGolden(t *testing.T) {
	for i, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			g := goldenGraph(t, i)
			enc := EncodeSnapshot(g, tc.meta)
			path := filepath.Join("testdata", tc.name+".snap")
			if *update {
				if err := os.WriteFile(path, enc, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(enc, golden) {
				t.Fatalf("encoding of %q drifted from golden file (%d vs %d bytes) — "+
					"a format change must bump SnapshotVersion and regenerate testdata with -update",
					tc.name, len(enc), len(golden))
			}
			dg, meta, err := DecodeSnapshot(golden)
			if err != nil {
				t.Fatalf("decode golden: %v", err)
			}
			if meta != tc.meta {
				t.Fatalf("meta = %+v, want %+v", meta, tc.meta)
			}
			sameGraph(t, dg, g)
		})
	}
}

// TestSnapshotRoundTripCanonical: decode(encode(x)) is identity and the
// encoding is canonical — re-encoding a decoded snapshot reproduces the
// input bytes exactly.
func TestSnapshotRoundTripCanonical(t *testing.T) {
	for i, tc := range goldenCases {
		g := goldenGraph(t, i)
		enc := EncodeSnapshot(g, tc.meta)
		dg, meta, err := DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if re := EncodeSnapshot(dg, meta); !bytes.Equal(re, enc) {
			t.Fatalf("%s: re-encoding is not canonical", tc.name)
		}
	}
}

// reseal recomputes the trailing CRC so corruption tests exercise the check
// they aim at instead of tripping the checksum first.
func reseal(data []byte) []byte {
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-4]))
	return data
}

func TestSnapshotVersionMismatch(t *testing.T) {
	g := goldenGraph(t, 1)
	enc := EncodeSnapshot(g, SnapshotMeta{})
	binary.LittleEndian.PutUint16(enc[4:6], SnapshotVersionState+1)
	reseal(enc)
	if _, _, err := DecodeSnapshot(enc); err == nil {
		t.Fatal("future version accepted")
	} else if want := "unsupported snapshot version"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("err = %v, want %q", err, want)
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	g := goldenGraph(t, 3)
	enc := EncodeSnapshot(g, SnapshotMeta{Seq: 9})

	cases := map[string][]byte{
		"empty":            {},
		"short header":     enc[:20],
		"truncated body":   enc[:len(enc)-8],
		"trailing garbage": append(append([]byte(nil), enc...), 0xAB),
		"bad magic": func() []byte {
			c := append([]byte(nil), enc...)
			c[0] ^= 0xFF
			return c
		}(),
		"flipped body byte": func() []byte {
			c := append([]byte(nil), enc...)
			c[snapFixedHeaderLen+3] ^= 0x01 // inside the offsets section
			return c
		}(),
		"reserved byte set": func() []byte {
			c := append([]byte(nil), enc...)
			c[7] = 1
			return reseal(c)
		}(),
		"asymmetric adjacency": func() []byte {
			// Resealed corruption of an adjacency entry: the CRC passes,
			// FromCSR's structural validation must catch it.
			c := append([]byte(nil), enc...)
			c[len(c)-4-4] ^= 0x02
			return reseal(c)
		}(),
	}
	for name, data := range cases {
		if _, _, err := DecodeSnapshot(data); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.ebws")
	g := goldenGraph(t, 2)
	meta := SnapshotMeta{Mode: 1, LazyK: 7, Seq: 42}
	if err := writeSnapshotFile(path, g, meta, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	rec, err := readSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != nil || rec.StateErr != nil {
		t.Fatalf("version-1 snapshot reports state %v (err %v), want none", rec.State, rec.StateErr)
	}
	if rec.Perm != nil || rec.PermErr != nil {
		t.Fatalf("version-1 snapshot reports perm %v (err %v), want none", rec.Perm, rec.PermErr)
	}
	if rec.Stamps != nil || rec.StampsErr != nil {
		t.Fatalf("version-1 snapshot reports stamps %v (err %v), want none", rec.Stamps, rec.StampsErr)
	}
	if rec.Meta != meta {
		t.Fatalf("meta = %+v, want %+v", rec.Meta, meta)
	}
	sameGraph(t, rec.Graph, g)
}
