// Command benchtab regenerates the paper's evaluation tables and figures on
// the synthetic dataset analogs.
//
// Usage:
//
//	benchtab -exp all            # every experiment, quick grids
//	benchtab -exp fig6 -full     # one experiment, the paper's full grids
//	benchtab -list               # what is available
//	benchtab -prbench BENCH.json # machine-readable regression suite
//
// EGOBW_SCALE=2 benchtab ... doubles every dataset's vertex count.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, table2, fig6..fig12, table3, table4, all)")
	full := flag.Bool("full", false, "use the paper's full parameter grids (slower)")
	list := flag.Bool("list", false, "list experiments and exit")
	prbench := flag.String("prbench", "", "write the machine-readable bench-regression JSON to this path and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.What)
		}
		return
	}
	if *prbench != "" {
		if err := bench.WritePRBench(*prbench, []string{"dblp", "ir"}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("benchtab: wrote %s\n", *prbench)
		return
	}
	cfg := bench.Quick(os.Stdout)
	if *full {
		cfg = bench.Full(os.Stdout)
	}
	if err := bench.Run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
