package graph

import (
	"math/rand/v2"
	"testing"
)

func TestDynInsertDelete(t *testing.T) {
	d := NewDynGraph(4)
	if err := d.InsertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.InsertEdge(0, 1); err == nil {
		t.Fatal("duplicate insert must fail")
	}
	if err := d.InsertEdge(2, 2); err == nil {
		t.Fatal("self-loop insert must fail")
	}
	if !d.HasEdge(1, 0) {
		t.Fatal("edge missing after insert")
	}
	if d.NumEdges() != 1 {
		t.Fatalf("m=%d, want 1", d.NumEdges())
	}
	if err := d.DeleteEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteEdge(0, 1); err == nil {
		t.Fatal("double delete must fail")
	}
	if d.HasEdge(0, 1) || d.NumEdges() != 0 {
		t.Fatal("edge survived delete")
	}
}

func TestDynGrowsVertices(t *testing.T) {
	d := NewDynGraph(2)
	if err := d.InsertEdge(1, 7); err != nil {
		t.Fatal(err)
	}
	if d.NumVertices() != 8 {
		t.Fatalf("n=%d, want 8", d.NumVertices())
	}
	if d.Degree(7) != 1 || d.Degree(5) != 0 {
		t.Fatal("degrees wrong after growth")
	}
}

func TestDynRoundTrip(t *testing.T) {
	g := mustG(t, 6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}})
	d := DynFromGraph(g)
	back := d.Freeze(1)
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() || back.NumVertices() != g.NumVertices() {
		t.Fatal("round trip changed shape")
	}
	g.EachEdge(func(u, v int32) bool {
		if !back.HasEdge(u, v) {
			t.Errorf("edge (%d,%d) lost", u, v)
		}
		return true
	})
}

// TestDynRandomizedAgainstMap drives a random edit script and checks every
// query against a map-of-sets oracle.
func TestDynRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	const n = 20
	d := NewDynGraph(n)
	oracle := map[[2]int32]bool{}
	key := func(u, v int32) [2]int32 {
		if u > v {
			u, v = v, u
		}
		return [2]int32{u, v}
	}
	for step := 0; step < 3000; step++ {
		u := rng.Int32N(n)
		v := rng.Int32N(n)
		if u == v {
			continue
		}
		k := key(u, v)
		if oracle[k] {
			if rng.Float64() < 0.5 {
				if err := d.DeleteEdge(u, v); err != nil {
					t.Fatalf("step %d: delete: %v", step, err)
				}
				delete(oracle, k)
			}
		} else {
			if err := d.InsertEdge(u, v); err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			oracle[k] = true
		}
		// Spot check queries.
		a, b := rng.Int32N(n), rng.Int32N(n)
		if a != b {
			if d.HasEdge(a, b) != oracle[key(a, b)] {
				t.Fatalf("step %d: HasEdge(%d,%d) disagrees with oracle", step, a, b)
			}
		}
		if int(d.NumEdges()) != len(oracle) {
			t.Fatalf("step %d: m=%d, oracle %d", step, d.NumEdges(), len(oracle))
		}
	}
	// Neighbor lists must remain sorted.
	for v := int32(0); v < n; v++ {
		nbrs := d.Neighbors(v)
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i-1] >= nbrs[i] {
				t.Fatalf("neighbors of %d unsorted: %v", v, nbrs)
			}
		}
	}
}

func TestDynCommonNeighbors(t *testing.T) {
	d := NewDynGraph(5)
	for _, e := range [][2]int32{{0, 2}, {0, 3}, {1, 2}, {1, 3}, {1, 4}} {
		if err := d.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	got := d.CommonNeighbors(nil, 0, 1)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("common = %v, want [2 3]", got)
	}
}

func TestDynClone(t *testing.T) {
	d := NewDynGraph(3)
	_ = d.InsertEdge(0, 1)
	c := d.Clone()
	_ = c.InsertEdge(1, 2)
	if d.HasEdge(1, 2) {
		t.Fatal("clone shares storage with original")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("clone lost edge")
	}
}
