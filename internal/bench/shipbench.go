package bench

// The PR 8 replication measurement: a leader and a follower wired through
// real HTTP — the leader serving both the client API and the shipping
// endpoint, the follower bootstrapping from the leader's checkpoint and
// tailing its WAL while the open-loop harness (internal/load) offers mixed
// load with reads on the follower and writes on the leader. This is the
// deployment shape DESIGN.md §13 describes, measured end to end rather
// than per kernel.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/server"
	"repro/internal/ship"
)

// shipSeedBatches is how many single-edge update batches land in the
// leader's WAL before the follower bootstraps, so the bootstrap row pays
// for a checkpoint install plus a realistic tail replay.
const shipSeedBatches = 64

// measureShip runs the replication benchmark for dataset graph g.
func measureShip(e *PRBenchEntry, g *graph.Graph) {
	leadDir, err := os.MkdirTemp("", "egobw-prbench-ship-lead-*")
	must(err)
	defer os.RemoveAll(leadDir)
	folDir, err := os.MkdirTemp("", "egobw-prbench-ship-fol-*")
	must(err)
	defer os.RemoveAll(folDir)

	// Leader: API + shipping endpoint on one httptest server, the mux shape
	// egobwd serves.
	leader := server.New(server.WithRegistryOptions(
		server.WithDataDir(leadDir), server.WithBuildWorkers(4)))
	defer leader.Registry().Close()
	leadMux := http.NewServeMux()
	leadMux.Handle("/ship/", ship.NewHandler(leader.Registry()))
	leadMux.Handle("/", leader.Handler())
	leadTS := httptest.NewServer(leadMux)
	defer leadTS.Close()

	name := e.Dataset
	if _, err := leader.Registry().Add(name, g, server.ModeLocal, 10); err != nil {
		panic(err)
	}
	seed := pickEdges(g, shipSeedBatches, 0x541B)
	for _, ed := range seed {
		if _, err := leader.Registry().ApplyEdges(name, [][2]int32{ed}, false); err != nil {
			panic(err)
		}
	}
	for _, ed := range seed {
		if _, err := leader.Registry().ApplyEdges(name, [][2]int32{ed}, true); err != nil {
			panic(err)
		}
	}

	follower := server.New(server.WithRegistryOptions(
		server.WithDataDir(folDir), server.WithLeader(leadTS.URL), server.WithBuildWorkers(4)))
	defer follower.Registry().Close()
	folTS := httptest.NewServer(follower.Handler())
	defer folTS.Close()

	client := ship.NewClient(leadTS.URL, nil)
	fol := ship.NewFollower(client, follower.Registry(), ship.WithInterval(10*time.Millisecond))

	// Bootstrap: checkpoint fetch + install + WAL catch-up to the leader's
	// durable sequence, driven to completion.
	ctx := context.Background()
	leadStatus, err := leader.Registry().ShipStatus(name)
	must(err)
	e.ShipBootstrapMS = float64(timeIt(func() {
		for {
			must(fol.SyncOnce(ctx))
			if seq, ok := follower.Registry().ReplicaSeq(name); ok && seq >= leadStatus.Seq {
				return
			}
		}
	})) / 1e6

	// Steady state: the follower loop tails continuously while the harness
	// offers open-loop load — reads against the follower, writes against
	// the leader.
	runCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() { defer close(done); fol.Run(runCtx) }()
	// Reads use the maintained-scores path (algo=scores) — the read a
	// replica exists to serve: O(top-k extraction) against state the
	// follower keeps current, not a full O(m^1.5) recompute per snapshot
	// (which at this arrival rate would just measure queue collapse).
	res, err := load.Run(ctx, load.Config{
		ReadURL:   folTS.URL,
		WriteURL:  leadTS.URL,
		Graph:     name,
		Rate:      1500,
		WriteFrac: 0.2,
		Batch:     4,
		Duration:  1200 * time.Millisecond,
		K:         100,
		Algo:      "scores",
		Seed:      7,
		Client:    &http.Client{Timeout: 10 * time.Second},
	})
	cancel()
	<-done
	must(err)

	e.FollowerReadP50Ns = int64(res.Reads.P50)
	e.FollowerReadP99Ns = int64(res.Reads.P99)
	if res.Duration > 0 {
		e.FollowerReadRPS = float64(res.Reads.Count) / res.Duration.Seconds()
	}
	e.ReplicaLagSeqSteady = res.LagSeqLast
	e.ReplicaLagMSSteady = res.LagMSMax
}
