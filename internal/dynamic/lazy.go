package dynamic

import (
	"fmt"
	"sort"

	"repro/internal/ego"
	"repro/internal/graph"
	"repro/internal/nbr"
)

// LazyTopK maintains the top-k ego-betweenness result set under edge updates
// without maintaining evidence maps (the paper's LazyInsert / LazyDelete,
// Algorithm 6). Every vertex carries a cached score and a staleness flag FG;
// a vertex is recomputed from scratch only when it could change the top-k.
//
// Invariants (the corrected version of the paper's scheme — DESIGN.md §4):
//
//   - a fresh (FG=false) cached score is the exact CB;
//   - a stale non-member's cached score is an upper bound of its true CB
//     (so the max-heap of candidates can soundly skip everything below the
//     current k-th score);
//   - a stale member's cached score is a lower bound of its true CB (only
//     deletions leave members stale, and deletions only increase a common
//     neighbor's CB), so min-over-members stays sound for pruning.
type LazyTopK struct {
	g       *graph.DynGraph
	k       int
	cached  []float64
	stale   []bool
	inR     []bool
	members []int32
	heap    *lazyHeap
	scratch *ego.Scratch
	comm    []int32 // scratch: common neighborhoods of the updated edge

	// Stats tallies the laziness at work, for the Fig. 8 analysis.
	Stats LazyStats
}

// LazyStats counts what the lazy maintainer actually did.
type LazyStats struct {
	Inserts     int64
	Deletes     int64
	Recomputed  int64 // exact per-vertex recomputations
	Swaps       int64 // membership changes of R
	StaleMarked int64 // vertices handled by only flipping FG
}

// lazyHeap is a max-heap over (vertex, cachedScore) with lazy invalidation:
// superseded entries are recognized by a per-vertex version counter and
// discarded on pop.
type lazyHeap struct {
	items []lazyItem
	ver   []int32
}

type lazyItem struct {
	v     int32
	score float64
	ver   int32
}

func (h *lazyHeap) push(v int32, score float64) {
	h.ver[v]++
	h.items = append(h.items, lazyItem{v: v, score: score, ver: h.ver[v]})
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(p, i) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *lazyHeap) less(i, j int) bool {
	if h.items[i].score != h.items[j].score {
		return h.items[i].score < h.items[j].score
	}
	return h.items[i].v < h.items[j].v
}

func (h *lazyHeap) pop() (lazyItem, bool) {
	for len(h.items) > 0 {
		top := h.items[0]
		last := len(h.items) - 1
		h.items[0] = h.items[last]
		h.items = h.items[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < last && h.less(big, l) {
				big = l
			}
			if r < last && h.less(big, r) {
				big = r
			}
			if big == i {
				break
			}
			h.items[i], h.items[big] = h.items[big], h.items[i]
			i = big
		}
		if top.ver == h.ver[top.v] {
			return top, true
		}
	}
	return lazyItem{}, false
}

// reinsert puts a still-valid popped item back without bumping its version.
func (h *lazyHeap) reinsert(item lazyItem) {
	h.items = append(h.items, item)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(p, i) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *lazyHeap) grow(n int32) {
	for int32(len(h.ver)) < n {
		h.ver = append(h.ver, 0)
	}
}

// NewLazyTopK initializes the maintainer: all scores computed exactly once,
// the k best become the result set R, everything else enters the candidate
// heap (the paper's sorted list H).
func NewLazyTopK(g *graph.Graph, k int) *LazyTopK {
	return NewLazyTopKFromScores(g, k, ego.ComputeAll(g))
}

// NewLazyTopKFromScores is NewLazyTopK over an already-computed exact score
// vector (for example the parallel EdgePEBW engine's output), taking
// ownership of it. len(cb) must equal g.NumVertices().
func NewLazyTopKFromScores(g *graph.Graph, k int, cb []float64) *LazyTopK {
	if k < 1 {
		k = 1
	}
	n := g.NumVertices()
	lt := &LazyTopK{
		g:       graph.DynFromGraph(g),
		k:       k,
		cached:  cb,
		stale:   make([]bool, n),
		inR:     make([]bool, n),
		heap:    &lazyHeap{ver: make([]int32, n)},
		scratch: ego.NewScratch(n),
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if lt.cached[order[i]] != lt.cached[order[j]] {
			return lt.cached[order[i]] > lt.cached[order[j]]
		}
		return order[i] < order[j]
	})
	for i, v := range order {
		if i < k {
			lt.inR[v] = true
			lt.members = append(lt.members, v)
		} else {
			lt.heap.push(v, lt.cached[v])
		}
	}
	return lt
}

// K returns the configured k.
func (lt *LazyTopK) K() int { return lt.k }

// MemoryFootprint returns the approximate heap bytes of the lazy state:
// O(n) scalars plus the candidate heap — no per-vertex evidence maps, the
// memory advantage over the exact Maintainer.
func (lt *LazyTopK) MemoryFootprint() int64 {
	return int64(len(lt.cached))*8 + int64(len(lt.stale)) + int64(len(lt.inR)) +
		int64(len(lt.members))*4 + int64(len(lt.heap.items))*24 + int64(len(lt.heap.ver))*4
}

// Graph exposes the maintained graph (read-only use).
func (lt *LazyTopK) Graph() *graph.DynGraph { return lt.g }

// refresh recomputes v exactly and republishes it to the candidate heap when
// it is not a member.
func (lt *LazyTopK) refresh(v int32) {
	lt.cached[v] = ego.EgoBetweenness(lt.g, v, lt.scratch)
	lt.stale[v] = false
	lt.Stats.Recomputed++
	if !lt.inR[v] {
		lt.heap.push(v, lt.cached[v])
	}
}

// minMember returns the member with the smallest exact CB, refreshing stale
// members as needed (stale member scores are lower bounds, so a fresh argmin
// is genuinely minimal; see the type comment).
func (lt *LazyTopK) minMember() (int32, float64) {
	for {
		best := int32(-1)
		bestVal := 0.0
		for _, v := range lt.members {
			if best < 0 || lt.cached[v] < bestVal {
				best, bestVal = v, lt.cached[v]
			}
		}
		if best < 0 {
			return -1, 0
		}
		if !lt.stale[best] {
			return best, bestVal
		}
		lt.refresh(best)
	}
}

// rebalance restores the top-k property: while the best candidate's upper
// bound beats the worst member, resolve it (refresh if stale, swap if truly
// better). Mirrors Algorithm 6 lines 4-8 with the termination fix.
func (lt *LazyTopK) rebalance() {
	for {
		// Fill R first if it is short (k larger than it used to be, or
		// vertex growth while R was underfull).
		if len(lt.members) < lt.k {
			item, ok := lt.heap.pop()
			if !ok {
				return
			}
			if lt.stale[item.v] {
				lt.refresh(item.v)
				continue
			}
			lt.inR[item.v] = true
			lt.members = append(lt.members, item.v)
			continue
		}
		item, ok := lt.heap.pop()
		if !ok {
			return
		}
		_, worst := lt.minMember()
		if item.score <= worst {
			// Upper bound cannot beat the k-th exact score: put the
			// entry back untouched and stop.
			lt.heap.reinsert(item)
			return
		}
		if lt.stale[item.v] {
			lt.refresh(item.v)
			continue
		}
		// Exact candidate beats the k-th member: swap.
		y, _ := lt.minMember()
		lt.swap(y, item.v)
	}
}

// swap demotes member out and promotes candidate in.
func (lt *LazyTopK) swap(out, in int32) {
	lt.inR[out] = false
	lt.inR[in] = true
	for i, v := range lt.members {
		if v == out {
			lt.members[i] = in
			break
		}
	}
	lt.heap.push(out, lt.cached[out])
	lt.Stats.Swaps++
}

func (lt *LazyTopK) growTo(n int32) {
	for int32(len(lt.cached)) < n {
		v := int32(len(lt.cached))
		lt.cached = append(lt.cached, 0)
		lt.stale = append(lt.stale, false)
		lt.inR = append(lt.inR, false)
		lt.heap.grow(v + 1)
		lt.heap.push(v, 0)
	}
}

// InsertEdge performs LazyInsert. Endpoint CBs can move either way, so a
// member endpoint is recomputed immediately and a non-member endpoint's
// cached score is raised to its degree bound and flagged stale. A common
// neighbor's CB only decreases: members are recomputed (they may fall out),
// non-members just get flagged (their old score stays a valid upper bound) —
// that is the lazy win.
func (lt *LazyTopK) InsertEdge(u, v int32) error {
	if u == v || u < 0 || v < 0 {
		return fmt.Errorf("dynamic: invalid edge (%d,%d)", u, v)
	}
	lt.g.EnsureVertices(max(u, v) + 1)
	lt.growTo(lt.g.NumVertices())
	if lt.g.HasEdge(u, v) {
		return fmt.Errorf("dynamic: edge (%d,%d) already present", u, v)
	}
	lt.comm = nbr.CommonInto(lt.comm[:0], lt.g, u, v)
	comm := lt.comm
	if err := lt.g.InsertEdge(u, v); err != nil {
		return err
	}
	lt.Stats.Inserts++
	lt.touchEndpoint(u)
	lt.touchEndpoint(v)
	for _, w := range comm {
		if lt.inR[w] {
			lt.refresh(w)
		} else {
			lt.stale[w] = true // score only decreased; cached stays an upper bound
			lt.Stats.StaleMarked++
		}
	}
	lt.rebalance()
	return nil
}

// DeleteEdge performs LazyDelete. A common neighbor's CB only increases:
// members stay members (flag only — their cached score becomes a lower
// bound), non-members get their cached score raised to the degree bound so
// the candidate heap can surface them if relevant.
func (lt *LazyTopK) DeleteEdge(u, v int32) error {
	if u < 0 || v < 0 || u == v || !lt.g.HasEdge(u, v) {
		return fmt.Errorf("dynamic: edge (%d,%d) not present", u, v)
	}
	lt.comm = nbr.CommonInto(lt.comm[:0], lt.g, u, v)
	comm := lt.comm
	if err := lt.g.DeleteEdge(u, v); err != nil {
		return err
	}
	lt.Stats.Deletes++
	lt.touchEndpoint(u)
	lt.touchEndpoint(v)
	for _, w := range comm {
		if lt.inR[w] {
			lt.stale[w] = true // stays in R; cached is now a lower bound
			lt.Stats.StaleMarked++
		} else {
			lt.raiseToBound(w)
		}
	}
	lt.rebalance()
	return nil
}

// touchEndpoint handles u or v of an update: the CB movement direction is
// unknown, so members are recomputed now and non-members get the Lemma 2
// degree bound as their cached upper bound.
func (lt *LazyTopK) touchEndpoint(p int32) {
	if lt.inR[p] {
		lt.refresh(p)
	} else {
		lt.raiseToBound(p)
	}
}

// raiseToBound marks a non-member stale with its cached score set to the
// static upper bound ub(p) = d(d−1)/2. The true CB may have moved in either
// direction, and only the degree bound is guaranteed to dominate it, so the
// cached value must become exactly that bound to keep the candidate-heap
// invariant (stale non-member cache ≥ true CB).
func (lt *LazyTopK) raiseToBound(p int32) {
	lt.stale[p] = true
	lt.cached[p] = ego.StaticUB(lt.g.Degree(p))
	lt.heap.push(p, lt.cached[p])
	lt.Stats.StaleMarked++
}

// Results returns the current top-k exactly, sorted by descending CB (ties
// by ascending id). Stale members are refreshed first, then the set is
// rebalanced until stable.
func (lt *LazyTopK) Results() []ego.Result {
	for _, v := range append([]int32(nil), lt.members...) {
		if lt.stale[v] {
			lt.refresh(v)
		}
	}
	lt.rebalance()
	out := make([]ego.Result, len(lt.members))
	for i, v := range lt.members {
		out[i] = ego.Result{V: v, CB: lt.cached[v]}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CB != out[j].CB {
			return out[i].CB > out[j].CB
		}
		return out[i].V < out[j].V
	})
	return out
}
