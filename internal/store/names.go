package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Graph names arrive from the HTTP API and may contain anything — path
// separators, dots, bytes hostile to a filesystem. Directory names use a
// conservative percent-encoding: [A-Za-z0-9_-] pass through, every other
// byte (including '.', so "." and ".." are impossible) becomes %XX. The
// mapping is injective, so distinct graphs never share a directory.

const hexDigits = "0123456789ABCDEF"

func safeNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
}

// encodeName maps a graph name to its directory name.
func encodeName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if safeNameByte(c) {
			b.WriteByte(c)
			continue
		}
		b.WriteByte('%')
		b.WriteByte(hexDigits[c>>4])
		b.WriteByte(hexDigits[c&0xF])
	}
	return b.String()
}

// decodeName inverts encodeName, rejecting directory names it never
// produces.
func decodeName(dir string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(dir); i++ {
		c := dir[i]
		switch {
		case c == '%':
			if i+2 >= len(dir) {
				return "", fmt.Errorf("store: truncated escape in directory name %q", dir)
			}
			hi := strings.IndexByte(hexDigits, dir[i+1])
			lo := strings.IndexByte(hexDigits, dir[i+2])
			if hi < 0 || lo < 0 {
				return "", fmt.Errorf("store: bad escape in directory name %q", dir)
			}
			dec := byte(hi<<4 | lo)
			if safeNameByte(dec) {
				// encodeName never escapes a safe byte; accepting the
				// non-canonical form would let two directories decode to
				// the same graph name.
				return "", fmt.Errorf("store: non-canonical escape in directory name %q", dir)
			}
			b.WriteByte(dec)
			i += 2
		case safeNameByte(c):
			b.WriteByte(c)
		default:
			return "", fmt.Errorf("store: unexpected byte %q in directory name %q", c, dir)
		}
	}
	return b.String(), nil
}

// GraphDir returns the per-graph store directory under dataDir.
func GraphDir(dataDir, name string) string {
	return filepath.Join(dataDir, encodeName(name))
}

// ListGraphs returns the graph names persisted under dataDir, sorted. A
// missing dataDir is an empty store, not an error; directory entries that
// encodeName never produces are reported as an error rather than silently
// skipped — a data directory holds acknowledged durable state, so anything
// unrecognized in it deserves eyes.
func ListGraphs(dataDir string) ([]string, error) {
	ents, err := os.ReadDir(dataDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", dataDir, err)
	}
	var names []string
	for _, ent := range ents {
		if !ent.IsDir() {
			return nil, fmt.Errorf("store: unexpected file %q in data dir %s", ent.Name(), dataDir)
		}
		name, err := decodeName(ent.Name())
		if err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
