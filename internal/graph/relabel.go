package graph

import (
	"fmt"
	"slices"
)

// Relabeled couples an internal CSR whose vertex ids were permuted — by
// DegreeRelabel, in non-increasing degree order — with the two directions of
// the id translation. External ids (the ones writers submit and queries
// return) never change; only the internal layout does, so hubs occupy a
// dense low-id prefix: their neighbor lists compress into few bitset words,
// bitset registers mark and intersect over short spans, and the hottest rows
// pack into the front of the adjacency array. The serving layer translates
// at its boundary and runs every kernel on G.
type Relabeled struct {
	G    *Graph
	Perm []int32 // Perm[external] = internal
	Ext  []int32 // Ext[internal] = external
}

// DegreeRelabel builds the degree-ordered relabeling of g: the vertex at
// position i of OrderOf(g) (non-increasing degree, ties by descending id)
// receives internal id i. O(n log n + m).
func DegreeRelabel(g *Graph) *Relabeled {
	order := OrderOf(g) // order[i] = external id of internal vertex i
	perm := make([]int32, g.n)
	for i, v := range order {
		perm[v] = int32(i)
	}
	return relabelCSR(g, perm, order)
}

// RelabelFromPerm rebuilds a Relabeled from a persisted permutation
// (Perm[external] = internal), validating that it is a bijection on g's
// vertex set. Any bijection yields a correct serving view — degree order is
// a performance heuristic, not a correctness requirement — so a recovered
// permutation from an older graph generation is usable as long as it still
// covers n vertices. The perm slice is retained by the result.
func RelabelFromPerm(g *Graph, perm []int32) (*Relabeled, error) {
	if int32(len(perm)) != g.n {
		return nil, fmt.Errorf("graph: relabel permutation covers %d vertices, graph has %d", len(perm), g.n)
	}
	ext := make([]int32, g.n)
	seen := make([]bool, g.n)
	for v, p := range perm {
		if p < 0 || p >= g.n {
			return nil, fmt.Errorf("graph: relabel permutation maps %d out of range to %d", v, p)
		}
		if seen[p] {
			return nil, fmt.Errorf("graph: relabel permutation maps two vertices to %d", p)
		}
		seen[p] = true
		ext[p] = int32(v)
	}
	return relabelCSR(g, perm, ext), nil
}

// relabelCSR materializes the permuted CSR: internal vertex i takes the
// neighbor list of external vertex ext[i], mapped through perm and re-sorted
// (a permutation does not preserve the ascending-list invariant).
func relabelCSR(g *Graph, perm, ext []int32) *Relabeled {
	n := g.n
	offsets := make([]int64, n+1)
	for i := int32(0); i < n; i++ {
		offsets[i+1] = offsets[i] + int64(g.Degree(ext[i]))
	}
	adj := make([]int32, offsets[n])
	for i := int32(0); i < n; i++ {
		row := adj[offsets[i]:offsets[i+1]]
		for j, w := range g.Neighbors(ext[i]) {
			row[j] = perm[w]
		}
		slices.Sort(row)
	}
	rg := &Graph{offsets: offsets, adj: adj, n: n, m: g.m, maxDeg: g.maxDeg}
	return &Relabeled{G: rg, Perm: perm, Ext: ext}
}
