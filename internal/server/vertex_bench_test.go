package server

import (
	"testing"

	"repro/internal/gen"
)

// BenchmarkLazyVertexQuery measures the ModeLazy per-vertex read path —
// a from-scratch EgoBetweenness recomputation on the lock-free snapshot.
// The pooled scratch (egoScratch) is the point: steady-state queries must
// not allocate, where the old code built a fresh register + evidence map
// per query on the hot read path.
func BenchmarkLazyVertexQuery(b *testing.B) {
	reg := NewRegistry(WithBuildWorkers(1))
	g := gen.BarabasiAlbert(2000, 4, 1)
	if _, err := reg.Add("g", g, ModeLazy, 10); err != nil {
		b.Fatal(err)
	}
	defer reg.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.EgoBetweenness("g", int32(i%2000)); err != nil {
			b.Fatal(err)
		}
	}
}
