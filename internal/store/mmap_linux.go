//go:build linux

package store

import (
	"os"
	"syscall"
)

// readFileShared returns the contents of path as a copy-on-write mapping of
// the page cache instead of a heap copy. This is what the snapshot format's
// 8-aligned word layout exists for: DecodeSnapshotState aliases its arrays
// straight out of this buffer, so a recovered maintainer's evidence tables
// are file-backed pages — no read copy, no conversion pass. The mapping is
// MAP_PRIVATE with write permission because an imported maintainer keeps
// mutating those tables in place: only the pages it actually dirties are
// duplicated, on first write. Nothing unmaps the buffer — it lives exactly
// as long as the recovered state it backs, one mapping per recovery.
func readFileShared(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size <= 0 || int64(int(size)) != size {
		// Empty (mmap would fail) or absurdly large: take the plain path,
		// which also produces the right errors for the decoder to report.
		return os.ReadFile(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
	if err != nil {
		// mmap is an optimization, never a requirement.
		return os.ReadFile(path)
	}
	return data, nil
}
