package bench

import (
	"fmt"

	"repro/internal/brandes"
	"repro/internal/dataset"
	"repro/internal/ego"
	"repro/internal/graph"
)

// Table1Row pairs a dataset's analog statistics with the paper's originals.
type Table1Row struct {
	Name  string
	Stats graph.Stats
	Info  dataset.Info
}

// Table1 prints the dataset statistics table (paper Table I), showing the
// analog's n/m/dmax next to the original's.
func Table1(cfg Config) []Table1Row {
	fmt.Fprintf(cfg.Out, "%-12s %10s %10s %8s %8s | %12s %12s %9s\n",
		"Dataset", "n", "m", "dmax", "avgdeg", "paper-n", "paper-m", "paper-dmax")
	var rows []Table1Row
	for _, name := range dataset.Names() {
		info, _ := dataset.Describe(name)
		st := graph.ComputeStats(dataset.MustLoad(name))
		rows = append(rows, Table1Row{Name: name, Stats: st, Info: info})
		fmt.Fprintf(cfg.Out, "%-12s %10d %10d %8d %8.2f | %12d %12d %9d\n",
			name, st.N, st.M, st.DMax, st.AvgDeg, info.PaperN, info.PaperM, info.PaperDMax)
	}
	return rows
}

// Table2Row reports exact-computation counts for one dataset and k.
type Table2Row struct {
	Dataset  string
	K        int
	BaseComp int64
	OptComp  int64
}

// Table2 prints the number of vertices computed exactly by BaseBSearch and
// OptBSearch (paper Table II). The paper's claim: OptBS computes strictly
// fewer vertices on every dataset and k.
func Table2(cfg Config) []Table2Row {
	fmt.Fprintf(cfg.Out, "%-12s %8s %10s %10s\n", "Dataset", "k", "BaseBS", "OptBS")
	var rows []Table2Row
	for _, name := range cfg.Datasets {
		g := dataset.MustLoad(name)
		for _, k := range cfg.Ks {
			_, bst := ego.BaseBSearch(g, k)
			_, ost := ego.OptBSearch(g, k, 1.05)
			rows = append(rows, Table2Row{Dataset: name, K: k, BaseComp: bst.Computed, OptComp: ost.Computed})
			fmt.Fprintf(cfg.Out, "%-12s %8d %10d %10d\n", name, k, bst.Computed, ost.Computed)
		}
	}
	return rows
}

// ScholarRow is one line of the Table III/IV case-study tables.
type ScholarRow struct {
	EBWName string
	EBWDeg  int32
	EBW     float64
	EBWBoth bool // also in the BW top-10 (the paper's '*')
	BWName  string
	BWDeg   int32
	BW      float64
	BWBoth  bool
}

// caseStudyTable builds the paper's side-by-side top-10 table for one
// case-study dataset: the ten highest ego-betweenness "scholars" next to
// the ten highest betweenness ones, with overlap marked.
func caseStudyTable(cfg Config, name string) []ScholarRow {
	g := dataset.MustLoad(name)
	ebw, _ := ego.OptBSearch(g, 10, 1.05)
	bw := brandes.TopK(g, 10, 0)
	inEBW := map[int32]bool{}
	for _, r := range ebw {
		inEBW[r.V] = true
	}
	inBW := map[int32]bool{}
	for _, r := range bw {
		inBW[r.V] = true
	}
	fmt.Fprintf(cfg.Out, "%-28s %5s %12s | %-28s %5s %14s\n",
		"Top-10 EBW", "d", "CB", "Top-10 BW", "d", "BT")
	rows := make([]ScholarRow, 0, 10)
	for i := range ebw {
		e, b := ebw[i], bw[i]
		row := ScholarRow{
			EBWName: dataset.ScholarName(e.V), EBWDeg: g.Degree(e.V), EBW: e.CB, EBWBoth: inBW[e.V],
			BWName: dataset.ScholarName(b.V), BWDeg: g.Degree(b.V), BW: b.CB, BWBoth: inEBW[b.V],
		}
		rows = append(rows, row)
		fmt.Fprintf(cfg.Out, "%s%-27s %5d %12.1f | %s%-27s %5d %14.1f\n",
			star(row.EBWBoth), row.EBWName, row.EBWDeg, row.EBW,
			star(row.BWBoth), row.BWName, row.BWDeg, row.BW)
	}
	overlap := ego.Overlap(ebw, bw)
	fmt.Fprintf(cfg.Out, "top-10 overlap: %.0f%%  (paper: 80%% on DB, 90%% on IR)\n", overlap*100)
	return rows
}

func star(b bool) string {
	if b {
		return "*"
	}
	return " "
}

// Table3 reproduces the DB case-study table (paper Table III).
func Table3(cfg Config) []ScholarRow { return caseStudyTable(cfg, dataset.DB) }

// Table4 reproduces the IR case-study table (paper Table IV).
func Table4(cfg Config) []ScholarRow { return caseStudyTable(cfg, dataset.IR) }
