package server

import (
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"sync"
	"testing"

	"repro/internal/gen"
)

// TestConcurrentReadersDuringWrites hammers one graph with parallel top-k /
// per-vertex / stats readers while a writer streams edge-update batches
// through it. Run under -race this validates the snapshot-swap discipline:
// readers only ever touch immutable snapshots, so no read is ever torn by a
// concurrent update. Afterwards the maintained scores are cross-checked
// against a from-scratch search on the final snapshot.
func TestConcurrentReadersDuringWrites(t *testing.T) {
	ts := newTestServer(t)

	g := gen.BarabasiAlbert(800, 3, 99)
	var info GraphInfo
	if code := doJSON(t, "POST", ts.URL+"/graphs", LoadRequest{Name: "churn", Edges: g.Edges()}, &info); code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
	n := info.N

	const (
		readers          = 4
		queriesPerReader = 60
		batches          = 25
		batchSize        = 8
	)

	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	// Writer: stream random insert/delete batches. Individual edges may
	// fail (duplicate/missing) — that is fine, the batch semantics report
	// and continue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewPCG(7, 7))
		for b := 0; b < batches; b++ {
			edges := make([][2]int32, batchSize)
			for i := range edges {
				u := rng.Int32N(n)
				v := rng.Int32N(n)
				for v == u {
					v = rng.Int32N(n)
				}
				edges[i] = [2]int32{u, v}
			}
			method := "POST"
			if b%3 == 2 {
				method = "DELETE"
			}
			var up UpdateResult
			if code := doJSON(t, method, ts.URL+"/graphs/churn/edges", EdgeBatch{Edges: edges}, &up); code != http.StatusOK {
				errs <- fmt.Errorf("writer batch %d: status %d", b, code)
				return
			}
		}
	}()

	// Readers: top-k with varying shapes, per-vertex queries, stats. Every
	// response must be internally consistent regardless of which epoch it
	// was served from.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed))
			for q := 0; q < queriesPerReader; q++ {
				switch q % 3 {
				case 0:
					k := 1 + rng.IntN(20)
					var tk TopKResult
					url := fmt.Sprintf("%s/graphs/churn/topk?k=%d", ts.URL, k)
					if code := doJSON(t, "GET", url, nil, &tk); code != http.StatusOK {
						errs <- fmt.Errorf("reader topk: status %d", code)
						return
					}
					if len(tk.Results) != k {
						errs <- fmt.Errorf("reader topk: got %d results, want %d", len(tk.Results), k)
						return
					}
					for i := 1; i < len(tk.Results); i++ {
						if tk.Results[i].CB > tk.Results[i-1].CB {
							errs <- fmt.Errorf("reader topk: results not sorted at %d", i)
							return
						}
					}
				case 1:
					v := rng.Int32N(n)
					var vr VertexResult
					url := fmt.Sprintf("%s/graphs/churn/vertices/%d/ego-betweenness", ts.URL, v)
					if code := doJSON(t, "GET", url, nil, &vr); code != http.StatusOK {
						errs <- fmt.Errorf("reader vertex: status %d", code)
						return
					}
					if vr.CB < 0 || vr.CB > vr.Bound+1e-9 {
						errs <- fmt.Errorf("reader vertex %d: cb %.4f outside [0, bound %.1f]", v, vr.CB, vr.Bound)
						return
					}
				default:
					var st GraphStats
					url := ts.URL + "/graphs/churn/stats"
					if code := doJSON(t, "GET", url, nil, &st); code != http.StatusOK {
						errs <- fmt.Errorf("reader stats: status %d", code)
						return
					}
				}
			}
		}(uint64(r + 1))
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Quiescent cross-check: the incrementally maintained scores and a
	// from-scratch OptBSearch on the final snapshot must agree exactly.
	var fromScores, fromSearch TopKResult
	doJSON(t, "GET", ts.URL+"/graphs/churn/topk?k=15&algo=scores", nil, &fromScores)
	doJSON(t, "GET", ts.URL+"/graphs/churn/topk?k=15&algo=opt", nil, &fromSearch)
	if fromScores.Epoch != fromSearch.Epoch {
		t.Fatalf("epoch moved between quiescent queries: %d vs %d", fromScores.Epoch, fromSearch.Epoch)
	}
	for i := range fromSearch.Results {
		a, b := fromScores.Results[i], fromSearch.Results[i]
		if a.V != b.V || math.Abs(a.CB-b.CB) > 1e-9 {
			t.Errorf("maintained vs recomputed top-k diverge at %d: (v=%d %.6f) vs (v=%d %.6f)",
				i, a.V, a.CB, b.V, b.CB)
		}
	}
}
