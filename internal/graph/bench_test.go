package graph

import (
	"math/rand/v2"
	"testing"
)

// Ablation: merge vs galloping intersection, the kernel choice DESIGN.md
// calls out. On lopsided inputs (hub list vs leaf list) galloping should
// win; on balanced inputs plain merging should.

func sortedRandom(n int, max int32, seed uint64) []int32 {
	rng := rand.New(rand.NewPCG(seed, 0))
	seen := map[int32]bool{}
	out := make([]int32, 0, n)
	for len(out) < n {
		v := rng.Int32N(max)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sortInt32(out)
	return out
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

func BenchmarkIntersectBalanced(b *testing.B) {
	x := sortedRandom(1000, 10000, 1)
	y := sortedRandom(1000, 10000, 2)
	var dst []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = IntersectSorted(dst[:0], x, y)
	}
}

func BenchmarkIntersectLopsided(b *testing.B) {
	small := sortedRandom(20, 100000, 3)
	big := sortedRandom(20000, 100000, 4)
	var dst []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = IntersectSorted(dst[:0], small, big)
	}
}

// BenchmarkIntersectLopsidedMergeOnly forces the merge path on the same
// lopsided input for comparison, by slicing under the galloping threshold.
func BenchmarkIntersectLopsidedMergeOnly(b *testing.B) {
	small := sortedRandom(20, 100000, 3)
	big := sortedRandom(20000, 100000, 4)
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Plain two-pointer merge, inlined.
		n = 0
		j, k := 0, 0
		for j < len(small) && k < len(big) {
			switch {
			case small[j] < big[k]:
				j++
			case small[j] > big[k]:
				k++
			default:
				n++
				j++
				k++
			}
		}
	}
	_ = n
}

func BenchmarkHasEdge(b *testing.B) {
	g := buildBenchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(int32(i%1000), int32((i*7)%1000))
	}
}

func BenchmarkOrient(b *testing.B) {
	g := buildBenchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Orient(g)
	}
}

func buildBenchGraph() *Graph {
	rng := rand.New(rand.NewPCG(9, 9))
	edges := make([][2]int32, 0, 5000)
	for len(edges) < 5000 {
		u, v := rng.Int32N(1000), rng.Int32N(1000)
		if u != v {
			edges = append(edges, [2]int32{u, v})
		}
	}
	g, err := FromEdges(1000, edges)
	if err != nil {
		panic(err)
	}
	return g
}
