package topk

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
)

// Tie-breaking contract, table-driven. The crash-recovery suite
// (internal/server) compares a recovered registry's top-k against a clean
// recompute, and equal ego-betweenness values are common (small integers
// over small cliques), so the comparison leans on exactly two guarantees
// pinned down here:
//
//  1. Results() ordering is a pure function of the held (vertex, score)
//     set: descending score, ties by ascending vertex id — independent of
//     insertion order.
//  2. Under capacity pressure an incoming score equal to the current
//     minimum never evicts (the incumbent stays), so every vertex scoring
//     strictly above the k-th score is always in the set; vertices tied at
//     the boundary are interchangeable between equally valid top-k sets.

func TestResultsOrderingDeterministic(t *testing.T) {
	cases := []struct {
		name  string
		items []Item
		want  []Item
	}{
		{
			name:  "distinct scores",
			items: []Item{{V: 4, Score: 1}, {V: 2, Score: 3}, {V: 9, Score: 2}},
			want:  []Item{{V: 2, Score: 3}, {V: 9, Score: 2}, {V: 4, Score: 1}},
		},
		{
			name:  "full tie orders by ascending id",
			items: []Item{{V: 9, Score: 5}, {V: 1, Score: 5}, {V: 4, Score: 5}},
			want:  []Item{{V: 1, Score: 5}, {V: 4, Score: 5}, {V: 9, Score: 5}},
		},
		{
			name:  "tie group inside distinct scores",
			items: []Item{{V: 7, Score: 2}, {V: 3, Score: 4}, {V: 5, Score: 2}, {V: 0, Score: 2}, {V: 8, Score: 6}},
			want:  []Item{{V: 8, Score: 6}, {V: 3, Score: 4}, {V: 0, Score: 2}, {V: 5, Score: 2}, {V: 7, Score: 2}},
		},
		{
			name:  "zero scores",
			items: []Item{{V: 2, Score: 0}, {V: 1, Score: 0}},
			want:  []Item{{V: 1, Score: 0}, {V: 2, Score: 0}},
		},
	}
	rng := rand.New(rand.NewPCG(11, 13))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Every insertion order must produce the same Results().
			for trial := 0; trial < 10; trial++ {
				perm := rng.Perm(len(tc.items))
				b := NewBounded(len(tc.items))
				for _, i := range perm {
					b.Add(tc.items[i].V, tc.items[i].Score)
				}
				if got := b.Results(); !reflect.DeepEqual(got, tc.want) {
					t.Fatalf("order %v: Results() = %v, want %v", perm, got, tc.want)
				}
			}
		})
	}
}

func TestBoundedTieEvictionPolicy(t *testing.T) {
	cases := []struct {
		name    string
		k       int
		stream  []Item
		want    []Item // expected Results()
		wantMin float64
	}{
		{
			name:    "equal score never evicts",
			k:       2,
			stream:  []Item{{V: 1, Score: 5}, {V: 2, Score: 5}, {V: 3, Score: 5}, {V: 4, Score: 5}},
			want:    []Item{{V: 1, Score: 5}, {V: 2, Score: 5}}, // first two stay
			wantMin: 5,
		},
		{
			// Among tied minima the heap order puts the smallest id at the
			// root, so that is the one a strictly higher score evicts.
			name:    "strictly higher evicts the smallest-id tied minimum",
			k:       2,
			stream:  []Item{{V: 1, Score: 5}, {V: 2, Score: 5}, {V: 3, Score: 6}},
			want:    []Item{{V: 3, Score: 6}, {V: 2, Score: 5}},
			wantMin: 5,
		},
		{
			name: "boundary tie keeps earlier arrival after churn",
			k:    3,
			stream: []Item{
				{V: 10, Score: 1}, {V: 11, Score: 9}, {V: 12, Score: 1},
				{V: 13, Score: 9}, {V: 14, Score: 1}, // tied with min 1: no eviction
				{V: 15, Score: 2}, // evicts one of the score-1 incumbents
			},
			want:    []Item{{V: 11, Score: 9}, {V: 13, Score: 9}, {V: 15, Score: 2}},
			wantMin: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBounded(tc.k)
			for _, it := range tc.stream {
				b.Add(it.V, it.Score)
			}
			if got := b.Results(); !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("Results() = %v, want %v", got, tc.want)
			}
			if min, ok := b.Min(); !ok || min != tc.wantMin {
				t.Fatalf("Min() = %v,%v, want %v", min, ok, tc.wantMin)
			}
		})
	}
}

// TestBoundedValidTopKUnderTies is the randomized statement of the property
// the recovery assertions rely on: whatever the insertion order, the
// resulting set contains every vertex scoring strictly above the k-th
// score, and its score multiset equals the sorted top-k of the input.
func TestBoundedValidTopKUnderTies(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 42))
	for trial := 0; trial < 100; trial++ {
		n := 5 + rng.IntN(60)
		k := 1 + rng.IntN(12)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.IntN(6)) // dense ties
		}
		b := NewBounded(k)
		for _, i := range rng.Perm(n) {
			b.Add(int32(i), scores[i])
		}
		got := b.Results()

		sorted := append([]float64(nil), scores...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		kk := min(k, n)
		if len(got) != kk {
			t.Fatalf("n=%d k=%d: %d results", n, k, len(got))
		}
		for i := 0; i < kk; i++ {
			if got[i].Score != sorted[i] {
				t.Fatalf("n=%d k=%d rank %d: score %v, want %v", n, k, i, got[i].Score, sorted[i])
			}
		}
		boundary := sorted[kk-1]
		inSet := map[int32]bool{}
		for _, r := range got {
			inSet[r.V] = true
		}
		for v, s := range scores {
			if s > boundary && !inSet[int32(v)] {
				t.Fatalf("n=%d k=%d: vertex %d (score %v > boundary %v) missing from %v", n, k, v, s, boundary, got)
			}
		}
	}
}
