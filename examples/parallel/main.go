// Parallel all-vertices computation: the paper's Section V algorithms.
//
// Computes every vertex's ego-betweenness with VertexPEBW and EdgePEBW
// across thread counts, reporting wall-clock time and the
// machine-independent balance bound that explains why edge partitioning
// scales better on skewed graphs (the paper's Fig. 10).
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"math"
	"runtime"
	"time"

	egobw "repro"
)

func main() {
	// Skewed graph: hubs make vertex partitioning lumpy.
	g := egobw.GenerateChungLu(20000, 2.0, 8, 2000, 5)
	fmt.Printf("graph: %v  (host has %d CPUs)\n", egobw.Stats(g), runtime.NumCPU())

	t0 := time.Now()
	want := egobw.ComputeAll(g)
	fmt.Printf("sequential ComputeAll: %v\n\n", time.Since(t0).Round(time.Millisecond))

	fmt.Printf("%-12s %8s %10s %14s\n", "strategy", "threads", "time", "balance-bound")
	for _, strat := range []egobw.Strategy{egobw.VertexPEBW, egobw.EdgePEBW} {
		for _, t := range []int{1, 4, 16} {
			got, st := egobw.ComputeAllParallel(g, t, strat)
			for v := range want {
				if math.Abs(got[v]-want[v]) > 1e-6 {
					panic("parallel result diverged from sequential")
				}
			}
			fmt.Printf("%-12v %8d %10v %13.2fx\n",
				strat, t, st.Elapsed.Round(time.Millisecond), st.SpeedupBound(t))
		}
	}
	fmt.Println("\nThe balance bound is the speedup the partition allows on t real")
	fmt.Println("CPUs: VertexPEBW is capped by its biggest hub, EdgePEBW stays near t.")
}
