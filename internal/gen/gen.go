// Package gen provides seeded synthetic graph generators. They stand in for
// the paper's SNAP datasets (see DESIGN.md §5): every algorithmic effect the
// paper measures — pruning effectiveness, bound tightness, update locality,
// parallel load imbalance, EBW/BW overlap — is driven by degree-distribution
// shape, skew, and triangle density, which these models control directly.
//
// All generators are deterministic functions of their parameters and seed.
package gen

import (
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/graph"
)

func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// ErdosRenyi samples a uniform G(n, m) graph: m distinct undirected edges
// chosen uniformly at random. Low clustering, no skew — the null model used
// by tests and ablations.
func ErdosRenyi(n int32, m int64, seed uint64) *graph.Graph {
	rng := newRNG(seed)
	maxM := int64(n) * int64(n-1) / 2
	if m > maxM {
		m = maxM
	}
	seen := make(map[uint64]struct{}, m)
	edges := make([][2]int32, 0, m)
	for int64(len(edges)) < m {
		u := rng.Int32N(n)
		v := rng.Int32N(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, [2]int32{u, v})
	}
	return graph.MustFromEdges(n, edges)
}

// BarabasiAlbert grows a preferential-attachment graph: each new vertex
// attaches to mPer existing vertices chosen proportionally to degree,
// yielding a power-law tail with exponent ≈ 3 and natural hubs. Models the
// social-network datasets (Youtube-like).
func BarabasiAlbert(n int32, mPer int, seed uint64) *graph.Graph {
	if mPer < 1 {
		mPer = 1
	}
	rng := newRNG(seed)
	// repeated-endpoint list: picking a uniform element is degree-
	// proportional sampling.
	targets := make([]int32, 0, 2*int(n)*mPer)
	edges := make([][2]int32, 0, int(n)*mPer)
	start := int32(mPer + 1)
	// Seed clique over the first mPer+1 vertices.
	for u := int32(0); u < start && u < n; u++ {
		for v := u + 1; v < start && v < n; v++ {
			edges = append(edges, [2]int32{u, v})
			targets = append(targets, u, v)
		}
	}
	chosen := make(map[int32]struct{}, mPer)
	picked := make([]int32, 0, mPer)
	for v := start; v < n; v++ {
		clear(chosen)
		picked = picked[:0]
		for len(chosen) < mPer && len(chosen) < int(v) {
			t := targets[rng.IntN(len(targets))]
			if _, dup := chosen[t]; dup {
				continue
			}
			chosen[t] = struct{}{}
			picked = append(picked, t) // keep draw order: map iteration is nondeterministic
		}
		for _, t := range picked {
			edges = append(edges, [2]int32{v, t})
			targets = append(targets, v, t)
		}
	}
	return graph.MustFromEdges(n, edges)
}

// ChungLu samples the Chung–Lu expected-degree model with a power-law weight
// sequence w_i ∝ (i+i0)^(−1/(gamma−1)) scaled to the requested average
// degree and capped at maxDeg. Edge (u, v) appears with probability
// min(1, w_u·w_v / Σw). gamma close to 2 yields extreme hubs (WikiTalk-like
// talk-page skew); gamma 2.5–3 matches typical social graphs. The sampler is
// the Miller–Hagberg O(n+m) skipping algorithm over weight-sorted vertices.
func ChungLu(n int32, gamma, avgDeg float64, maxDeg int32, seed uint64) *graph.Graph {
	if gamma <= 1.5 {
		gamma = 1.5
	}
	rng := newRNG(seed)
	// Power-law weights, largest first (i=0 is the biggest hub).
	w := make([]float64, n)
	exp := -1.0 / (gamma - 1)
	var sum float64
	for i := range w {
		w[i] = math.Pow(float64(i+1), exp)
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	capW := float64(maxDeg)
	sum = 0
	for i := range w {
		w[i] *= scale
		if capW > 0 && w[i] > capW {
			w[i] = capW
		}
		sum += w[i]
	}

	var edges [][2]int32
	// Miller–Hagberg: for each u, walk candidate partners v > u with
	// geometric skips calibrated to p = w_u*w_v/sum capped at 1.
	for u := int32(0); u < n-1; u++ {
		v := u + 1
		p := math.Min(1, w[u]*w[v]/sum)
		for v < n && p > 0 {
			if p < 1 {
				skip := math.Floor(math.Log(rng.Float64()) / math.Log(1-p))
				if skip > float64(n) {
					break
				}
				v += int32(skip)
			}
			if v >= n {
				break
			}
			q := math.Min(1, w[u]*w[v]/sum)
			if rng.Float64() < q/p {
				edges = append(edges, [2]int32{u, v})
			}
			p = q
			v++
		}
	}
	return graph.MustFromEdges(n, edges)
}

// WattsStrogatz builds the small-world model: a ring lattice where every
// vertex connects to its k nearest neighbors (k even), then each edge is
// rewired with probability beta. High clustering, near-uniform degrees — the
// opposite stress profile from ChungLu.
func WattsStrogatz(n int32, k int, beta float64, seed uint64) *graph.Graph {
	if k%2 == 1 {
		k++
	}
	rng := newRNG(seed)
	type edge = [2]int32
	seen := make(map[uint64]struct{})
	keyOf := func(u, v int32) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(u)<<32 | uint64(uint32(v))
	}
	var edges []edge
	add := func(u, v int32) bool {
		if u == v {
			return false
		}
		k := keyOf(u, v)
		if _, dup := seen[k]; dup {
			return false
		}
		seen[k] = struct{}{}
		edges = append(edges, edge{u, v})
		return true
	}
	for u := int32(0); u < n; u++ {
		for d := 1; d <= k/2; d++ {
			add(u, (u+int32(d))%n)
		}
	}
	// Rewire: replace (u,v) with (u,r) with probability beta.
	for i := range edges {
		if rng.Float64() >= beta {
			continue
		}
		u := edges[i][0]
		for try := 0; try < 16; try++ {
			r := rng.Int32N(n)
			if r == u || r == edges[i][1] {
				continue
			}
			if _, dup := seen[keyOf(u, r)]; dup {
				continue
			}
			delete(seen, keyOf(u, edges[i][1]))
			seen[keyOf(u, r)] = struct{}{}
			edges[i][1] = r
			break
		}
	}
	return graph.MustFromEdges(n, edges)
}

// Affiliation builds a collaboration-style graph from an author–community
// bipartite affiliation model: nCommunities communities with Zipf-distributed
// sizes; members of a community form a clique with probability density p
// (p=1 makes full cliques, like co-authorship on one paper). High clustering
// and overlapping cliques — the DBLP-like model for the case-study datasets.
func Affiliation(nAuthors int32, nCommunities int, meanSize float64, p float64, seed uint64) *graph.Graph {
	rng := newRNG(seed)
	seen := make(map[uint64]struct{})
	var edges [][2]int32
	for c := 0; c < nCommunities; c++ {
		// Zipf-ish community size ≥ 2: heavy tail over mean size.
		size := 2 + int(math.Floor(meanSize*math.Pow(rng.Float64(), 2)*2))
		if size > int(nAuthors) {
			size = int(nAuthors)
		}
		members := make(map[int32]struct{}, size)
		// Authors join communities with mild preferential skew so some
		// authors become prolific bridges (the Table III/IV effect).
		for len(members) < size {
			a := int32(math.Floor(math.Pow(rng.Float64(), 1.5) * float64(nAuthors)))
			if a >= nAuthors {
				a = nAuthors - 1
			}
			members[a] = struct{}{}
		}
		ms := make([]int32, 0, len(members))
		for a := range members {
			ms = append(ms, a)
		}
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		for i := 0; i < len(ms); i++ {
			for j := i + 1; j < len(ms); j++ {
				if p < 1 && rng.Float64() >= p {
					continue
				}
				key := uint64(ms[i])<<32 | uint64(uint32(ms[j]))
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				edges = append(edges, [2]int32{ms[i], ms[j]})
			}
		}
	}
	return graph.MustFromEdges(nAuthors, edges)
}

// Random returns a small random graph for property-based tests: an
// Erdős–Rényi sample whose size and density themselves are drawn from the
// seed. Guaranteed n ≥ 4.
func Random(seed uint64, maxN int32) *graph.Graph {
	rng := newRNG(seed)
	if maxN < 4 {
		maxN = 4
	}
	n := 4 + rng.Int32N(maxN-3)
	maxM := int64(n) * int64(n-1) / 2
	m := rng.Int64N(maxM + 1)
	return ErdosRenyi(n, m, seed^0xabcdef)
}
