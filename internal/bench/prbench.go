package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"time"

	"repro/internal/approx"
	"repro/internal/dataset"
	"repro/internal/dynamic"
	"repro/internal/ego"
	"repro/internal/graph"
	"repro/internal/nbr"
	"repro/internal/parallel"
	"repro/internal/store"
)

// PRBenchEntry is one dataset's regression measurements: ns/op for the
// hot-path operations this repository's PRs optimize, in a machine-readable
// shape so the perf trajectory can be tracked across PRs.
type PRBenchEntry struct {
	Dataset string `json:"dataset"`
	N       int32  `json:"n"`
	M       int64  `json:"m"`

	ComputeAllNs        int64   `json:"compute_all_ns_op"`
	OptBSearchK100Ns    int64   `json:"opt_bsearch_k100_ns_op"`
	MaintainerInsertNs  int64   `json:"maintainer_insert_edge_ns_op"`
	SnapshotExportLegNs int64   `json:"snapshot_export_legacy_ns"`       // sort+dedup FromAdjacency path
	SnapshotExportNs    int64   `json:"snapshot_export_freeze_ns"`       // direct CSR Freeze (1 worker)
	SnapshotBuild1WNs   int64   `json:"snapshot_build_1w_ns"`            // EdgePEBW engine + export, 1 worker
	SnapshotBuild4WNs   int64   `json:"snapshot_build_4w_ns"`            // EdgePEBW engine + export, 4 workers
	ExportSpeedup       float64 `json:"snapshot_export_speedup"`         // legacy / freeze wall-clock
	BuildSpeedup4W      float64 `json:"snapshot_build_speedup_4w"`       // 1w / 4w wall-clock
	BuildBalanceBound4W float64 `json:"snapshot_build_balance_bound_4w"` // machine-independent bound

	// Persistence (PR 3, internal/store): the durability costs the serving
	// layer adds. Encode/checkpoint run inside the write lock at every
	// checkpoint; the fsync'd WAL append runs on every update batch; recover
	// is the full restart path (snapshot load + exact maintainer rebuild +
	// 200-batch WAL tail replay), dominated by the ComputeAll rebuild.
	StoreSnapshotBytes    int64 `json:"store_snapshot_bytes"`
	StoreSnapshotEncodeNs int64 `json:"store_snapshot_encode_ns"`
	StoreSnapshotDecodeNs int64 `json:"store_snapshot_decode_ns"`
	StoreWALAppendNs      int64 `json:"store_wal_append_sync_ns_op"`
	StoreCheckpointNs     int64 `json:"store_checkpoint_ns"`
	StoreRecoverNs        int64 `json:"store_recover_ns"`

	// Instant recovery (PR 6, versioned maintainer-state snapshots): the
	// bytes the state section adds to a checkpoint, the cost of a
	// state-carrying checkpoint, and the fast restart path — snapshot load +
	// state import (no recompute) + the same 200-batch WAL tail replay the
	// rebuild row pays. The speedup is store_recover_ns over
	// store_recover_fast_ns: what the state section buys at boot.
	StoreStateBytes        int64   `json:"store_state_bytes"`
	StoreCheckpointStateNs int64   `json:"store_checkpoint_state_ns"`
	StoreRecoverFastNs     int64   `json:"store_recover_fast_ns"`
	StoreRecoverSpeedup    float64 `json:"store_recover_speedup"`

	// Write throughput (PR 4, the group-commit pipeline): durable-ack
	// batches/sec through a durable serving registry. The serialized row
	// (group limit 1) is the pre-pipeline baseline — one fsync and one
	// snapshot export per batch — under 16 concurrent writers; the
	// pipelined rows let the writer goroutine coalesce. The speedup is
	// pipelined-16w over serialized-16w on the same machine.
	WriteSerialized16WBps float64 `json:"write_serialized_16w_batches_per_sec"`
	WritePipelined1WBps   float64 `json:"write_pipelined_1w_batches_per_sec"`
	WritePipelined4WBps   float64 `json:"write_pipelined_4w_batches_per_sec"`
	WritePipelined16WBps  float64 `json:"write_pipelined_16w_batches_per_sec"`
	WriteSpeedup16W       float64 `json:"write_throughput_speedup_16w"`
	WriteGroupMean16W     float64 `json:"write_group_mean_16w"`

	// Snapshot publication (PR 5, delta-overlay snapshots): wall-clock to
	// publish one drain's result at 1/16/256-edge batches. The full-freeze
	// baseline is the pre-overlay write path — a complete O(n+m) CSR export
	// per drain; the overlay path copies only the adjacency rows the batch
	// dirtied, so its cost tracks the batch, not the graph. The compact row
	// is the O(n+m) flatten the background compactor pays off the write
	// path, and the overlay OptBSearch row prices the read-side chain-walk
	// penalty the compaction policy bounds.
	PublishFullB1Ns      int64   `json:"publish_full_freeze_b1_ns"`
	PublishOverlayB1Ns   int64   `json:"publish_overlay_b1_ns"`
	PublishFullB16Ns     int64   `json:"publish_full_freeze_b16_ns"`
	PublishOverlayB16Ns  int64   `json:"publish_overlay_b16_ns"`
	PublishFullB256Ns    int64   `json:"publish_full_freeze_b256_ns"`
	PublishOverlayB256Ns int64   `json:"publish_overlay_b256_ns"`
	PublishSpeedupB1     float64 `json:"publish_speedup_b1"`
	PublishSpeedupB16    float64 `json:"publish_speedup_b16"`
	PublishSpeedupB256   float64 `json:"publish_speedup_b256"`
	OverlayCompactNs     int64   `json:"overlay_compact_ns"`
	OptOverlayK100Ns     int64   `json:"opt_bsearch_k100_overlay_ns_op"`

	// Read-path kernels (PR 7): the overlay read tax is the chain-walk
	// penalty an OptBSearch pays on a 256-row overlay relative to the same
	// search on the frozen base CSR — the clean-vertex fast path (one dirty-
	// index word test, then the base row) is what keeps it near 1. The
	// relabel row is the same search on the degree-relabeled twin CSR, with
	// external-id translation at extraction, and relabel_build_ns what the
	// compactor pays to construct that twin. The hub rows price one hub×hub
	// intersection (degree-4096 neighborhoods over a 32Ki-id universe,
	// sparse common core): the scalar baseline marks one side and probes the
	// other element-by-element; the word row ANDs the two registers 64 bits
	// at a time under the block-skipping summary.
	OptRelabelK100Ns     int64   `json:"opt_bsearch_k100_relabel_ns_op"`
	RelabelBuildNs       int64   `json:"relabel_build_ns"`
	OverlayReadTax       float64 `json:"overlay_read_tax"`
	HubIntersectScalarNs int64   `json:"hub_intersect_scalar_ns_op"`
	HubIntersectWordNs   int64   `json:"hub_intersect_word_ns_op"`
	HubWordSpeedup       float64 `json:"hub_word_speedup"`

	// Replication (PR 8, snapshot/WAL-shipping read replicas): the whole
	// stack end to end — leader API + shipping endpoint over HTTP, follower
	// bootstrapping from the leader's checkpoint and tailing its WAL, the
	// open-loop harness offering mixed read/write load with reads on the
	// follower and writes on the leader. Bootstrap is checkpoint fetch +
	// install + catch-up to the leader's durable seq; the read percentiles
	// are HTTP round-trips against the follower under load; the lag rows are
	// what the follower reported at the end of the run (batches behind at
	// the last poll, milliseconds since it was last caught up).
	ShipBootstrapMS     float64 `json:"ship_bootstrap_ms"`
	FollowerReadP50Ns   int64   `json:"follower_read_p50_ns"`
	FollowerReadP99Ns   int64   `json:"follower_read_p99_ns"`
	FollowerReadRPS     float64 `json:"follower_read_rps"`
	ReplicaLagSeqSteady uint64  `json:"replica_lag_seq_steady"`
	ReplicaLagMSSteady  float64 `json:"replica_lag_ms_steady"`

	// Temporal sliding-window serving (PR 9): the retention tax. The drain
	// rows time one durable-ack probe drain while the synthesized expiry
	// batch it carries covers 0/16/256/2048 back-stamped edges — b0 is the
	// no-expiry baseline (fsync + single-edge apply + publish), and the
	// cost above it must track the expired count, not the graph, which is
	// what the ring-bucketed timestamp sidecar buys (O(expired) per drain,
	// DESIGN.md §14). expiry_per_edge_ns is (b2048 − b0)/2048. The read
	// rows are HTTP top-k percentiles against a 2s-window graph under
	// open-loop churn (skewed inserts + deletes of recent inserts), with
	// the expiry churn the run provoked recorded alongside.
	ExpiryDrainB0Ns       int64   `json:"expiry_drain_b0_ns"`
	ExpiryDrainB16Ns      int64   `json:"expiry_drain_b16_ns"`
	ExpiryDrainB256Ns     int64   `json:"expiry_drain_b256_ns"`
	ExpiryDrainB2048Ns    int64   `json:"expiry_drain_b2048_ns"`
	ExpiryPerEdgeNs       float64 `json:"expiry_per_edge_ns"`
	WindowedReadP50Ns     int64   `json:"windowed_read_p50_ns"`
	WindowedReadP99Ns     int64   `json:"windowed_read_p99_ns"`
	WindowedExpiryBatches int64   `json:"windowed_expiry_batches"`
	WindowedExpiredEdges  int64   `json:"windowed_expired_edges"`

	// Approximate serving tier (PR 10, internal/approx): the latency/recall
	// frontier of algo=approx. The headline rows are the default-ε point
	// (approx.DefaultEps); the frontier sweeps ε so the trade-off is visible
	// in one document. Speedups are paired: the exact OptBSearch baseline is
	// re-timed best-of-3 in the same stage, interleaved with the approx
	// runs, so the ratio is not polluted by cross-stage machine drift (the
	// overlay_read_tax lesson — see measureReadPath).
	ApproxTopKK100Ns   int64         `json:"approx_topk_k100_ns_op"`
	ApproxSpeedupVsOpt float64       `json:"approx_speedup_vs_opt"`
	ApproxRecallAt100  float64       `json:"approx_recall_at_100"`
	ApproxFrontier     []ApproxPoint `json:"approx_frontier"`
}

// ApproxPoint is one ε setting on the approx tier's latency/recall
// frontier: best-of-3 wall-clock for a k=100 query, recall against the
// exact top-100, and the estimator's own telemetry.
type ApproxPoint struct {
	Eps         float64 `json:"eps"`
	TopKNs      int64   `json:"topk_ns_op"`
	Speedup     float64 `json:"speedup_vs_opt"`
	Recall      float64 `json:"recall_at_100"`
	Samples     int64   `json:"samples"`
	EpsAchieved float64 `json:"eps_achieved"`
}

// PRBench is the bench-regression document (currently BENCH_PR5.json).
type PRBench struct {
	GeneratedAt string         `json:"generated_at"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Note        string         `json:"note"`
	Datasets    []PRBenchEntry `json:"datasets"`
}

// prBenchUpdates is how many random edge updates feed the maintainer
// measurement.
const prBenchUpdates = 200

// RunPRBench measures the regression suite on the named generated datasets.
func RunPRBench(names []string) PRBench {
	doc := PRBench{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note: "wall-clock speedups saturate at the host's physical core count; " +
			"snapshot_build_balance_bound_4w is the machine-independent speedup " +
			"bound from the EdgePEBW work partition (DESIGN.md §5)",
	}
	for _, name := range names {
		g := dataset.MustLoad(name)
		e := PRBenchEntry{Dataset: name, N: g.NumVertices(), M: g.NumEdges()}

		e.ComputeAllNs = int64(timeIt(func() { ego.ComputeAll(g) }))
		e.OptBSearchK100Ns = int64(timeIt(func() { ego.OptBSearch(g, 100, 1.05) }))

		// Maintainer.InsertEdge: delete a sample of existing edges, then
		// time re-inserting them (the steady-state update path).
		m := dynamic.NewMaintainer(g)
		edges := pickEdges(g, prBenchUpdates, 0xBE7)
		for _, ed := range edges {
			must(m.DeleteEdge(ed[0], ed[1]))
		}
		e.MaintainerInsertNs = int64(perOp(len(edges), func() {
			for _, ed := range edges {
				must(m.InsertEdge(ed[0], ed[1]))
			}
		}))

		// Snapshot export: the legacy sort+dedup construction versus the
		// direct CSR freeze used by the serving layer's write path.
		dyn := m.Graph()
		lists := make([][]int32, dyn.NumVertices())
		for v := int32(0); v < dyn.NumVertices(); v++ {
			lists[v] = dyn.Neighbors(v)
		}
		e.SnapshotExportLegNs = int64(timeIt(func() {
			if _, err := graph.FromAdjacency(lists); err != nil {
				panic(err)
			}
		}))
		e.SnapshotExportNs = int64(timeIt(func() { dyn.Freeze(1) }))
		if e.SnapshotExportNs > 0 {
			e.ExportSpeedup = float64(e.SnapshotExportLegNs) / float64(e.SnapshotExportNs)
		}

		// Full snapshot build (initial scores via the EdgePEBW engine plus
		// the CSR export) at 1 and 4 workers.
		var bound parallel.Stats
		e.SnapshotBuild1WNs = int64(timeIt(func() {
			parallel.ComputeAll(g, 1, parallel.EdgePEBW)
			dyn.Freeze(1)
		}))
		e.SnapshotBuild4WNs = int64(timeIt(func() {
			_, bound = parallel.ComputeAll(g, 4, parallel.EdgePEBW)
			dyn.Freeze(4)
		}))
		if e.SnapshotBuild4WNs > 0 {
			e.BuildSpeedup4W = float64(e.SnapshotBuild1WNs) / float64(e.SnapshotBuild4WNs)
		}
		e.BuildBalanceBound4W = bound.SpeedupBound(4)

		measureStore(&e, g, edges)
		measureWrites(&e, g)
		measurePublish(&e, g)
		measureReadPath(&e, g)
		measureShip(&e, g)
		measureWindow(&e, g)
		measureApprox(&e, g)

		doc.Datasets = append(doc.Datasets, e)
	}
	return doc
}

// measureStore times the persistence layer on dataset graph g: snapshot
// codec, fsync'd WAL appends (one single-edge delete batch per sampled
// edge), one checkpoint, and the full recovery path for a store whose WAL
// tail holds those batches.
func measureStore(e *PRBenchEntry, g *graph.Graph, edges [][2]int32) {
	dir, err := os.MkdirTemp("", "egobw-prbench-store-*")
	must(err)
	defer os.RemoveAll(dir)

	meta := store.SnapshotMeta{}
	enc := store.EncodeSnapshot(g, meta)
	e.StoreSnapshotBytes = int64(len(enc))
	e.StoreSnapshotEncodeNs = int64(timeIt(func() { store.EncodeSnapshot(g, meta) }))
	e.StoreSnapshotDecodeNs = int64(timeIt(func() {
		if _, _, err := store.DecodeSnapshot(enc); err != nil {
			panic(err)
		}
	}))

	st, err := store.Create(filepath.Join(dir, "g"), g, meta)
	must(err)
	e.StoreWALAppendNs = int64(perOp(len(edges), func() {
		for _, ed := range edges {
			if _, err := st.AppendBatch(false, [][2]int32{ed}); err != nil {
				panic(err)
			}
		}
	}))
	e.StoreCheckpointNs = int64(timeIt(func() {
		must(st.Checkpoint(g, store.SnapshotMeta{Seq: st.Seq()}))
	}))
	// Refill the WAL so recovery replays a realistic tail, then measure the
	// whole restart path the serving layer runs: open + exact maintainer
	// rebuild + deterministic batch replay.
	for _, ed := range edges {
		_, err := st.AppendBatch(false, [][2]int32{ed})
		must(err)
	}
	must(st.Close())
	replayTail := func(m *dynamic.Maintainer, tail []store.Batch) {
		for _, b := range tail {
			for _, ed := range b.Edges {
				if b.Insert {
					must(m.InsertEdge(ed[0], ed[1]))
				} else {
					must(m.DeleteEdge(ed[0], ed[1]))
				}
			}
		}
	}
	// Recovery is timed as the best of a few runs with a GC between them: a
	// single cold shot on a shared host folds unrelated GC pauses and page-
	// cache state into a one-time measurement, and both recovery rows (here
	// and the fast path below) get the identical treatment.
	recoverBest := func(recover func()) int64 {
		best := int64(math.MaxInt64)
		for i := 0; i < 3; i++ {
			runtime.GC()
			if t := int64(timeIt(recover)); t < best {
				best = t
			}
		}
		return best
	}
	e.StoreRecoverNs = recoverBest(func() {
		st2, rec, err := store.Open(filepath.Join(dir, "g"))
		must(err)
		replayTail(dynamic.NewMaintainer(rec.Graph), rec.Tail)
		must(st2.Close())
	})

	// The fast path (PR 6): an identically shaped store whose checkpoint
	// carries the maintainer state, so recovery imports it instead of
	// recomputing. The tail is the same 200 delete batches, replayed through
	// the same code — only the maintainer construction differs.
	mm := dynamic.NewMaintainer(g)
	mState := &store.MaintainerState{Local: mm.ExportState()}
	e.StoreStateBytes = int64(len(store.EncodeSnapshotWithState(g, meta, mState))) - int64(len(enc))
	stf, err := store.Create(filepath.Join(dir, "gf"), g, meta)
	must(err)
	for _, ed := range edges {
		_, err := stf.AppendBatch(false, [][2]int32{ed})
		must(err)
	}
	e.StoreCheckpointStateNs = int64(timeIt(func() {
		must(stf.CheckpointWithState(g, store.SnapshotMeta{Seq: stf.Seq()}, mState))
	}))
	for _, ed := range edges {
		_, err := stf.AppendBatch(false, [][2]int32{ed})
		must(err)
	}
	must(stf.Close())
	e.StoreRecoverFastNs = recoverBest(func() {
		st2, rec, err := store.Open(filepath.Join(dir, "gf"))
		must(err)
		if rec.State == nil || rec.State.Local == nil {
			panic("prbench: checkpointed maintainer state missing at recovery")
		}
		must(rec.StateErr)
		m2, err := dynamic.NewMaintainerFromState(rec.Graph, rec.State.Local)
		must(err)
		replayTail(m2, rec.Tail)
		must(st2.Close())
	})
	if e.StoreRecoverFastNs > 0 {
		e.StoreRecoverSpeedup = float64(e.StoreRecoverNs) / float64(e.StoreRecoverFastNs)
	}
}

// measurePublish times snapshot publication on dataset graph g at small,
// medium, and large batches: the pre-overlay full-freeze baseline (one
// complete CSR export per drain) against the copy-on-write overlay path
// (only the dirtied rows). Each round toggles a sampled edge set off and on
// so the graph returns to its original state; only the publication calls
// are on the clock. The overlay side publishes onto the base CSR each
// round, matching the steady state the compactor maintains.
func measurePublish(e *PRBenchEntry, g *graph.Graph) {
	const maxBatch = 256
	dyn := graph.DynFromGraph(g)
	all := pickEdges(g, maxBatch, 0x9E0)

	type cell struct {
		full, overlay *int64
		speedup       *float64
	}
	cells := map[int]cell{
		1:   {&e.PublishFullB1Ns, &e.PublishOverlayB1Ns, &e.PublishSpeedupB1},
		16:  {&e.PublishFullB16Ns, &e.PublishOverlayB16Ns, &e.PublishSpeedupB16},
		256: {&e.PublishFullB256Ns, &e.PublishOverlayB256Ns, &e.PublishSpeedupB256},
	}
	toggle := func(batch [][2]int32, insert bool) {
		for _, ed := range batch {
			if insert {
				must(dyn.InsertEdge(ed[0], ed[1]))
			} else {
				must(dyn.DeleteEdge(ed[0], ed[1]))
			}
		}
	}
	// publishRounds times `publish` across rounds of delete-then-reinsert
	// drains and returns ns per publication (mutation cost excluded).
	publishRounds := func(batch [][2]int32, rounds int, publish func()) int64 {
		var total time.Duration
		for r := 0; r < rounds; r++ {
			for _, insert := range []bool{false, true} {
				toggle(batch, insert)
				t0 := time.Now()
				publish()
				total += time.Since(t0)
			}
		}
		return int64(total) / int64(2*rounds)
	}
	for _, bs := range []int{1, 16, 256} {
		if bs > len(all) {
			continue // dataset smaller than the batch tier: leave the row zero
		}
		batch := all[:bs]
		c := cells[bs]
		*c.full = publishRounds(batch, 4, func() {
			dyn.TakeDirty() // the full freeze ignores (and so must drain) dirty state
			dyn.Freeze(1)
		})
		*c.overlay = publishRounds(batch, 64, func() { dyn.FreezeOverlay(g) })
		if *c.overlay > 0 {
			*c.speedup = float64(*c.full) / float64(*c.overlay)
		}
	}

	// The compactor's flatten, on a chain carrying maxBatch dirtied rows,
	// and the read-side penalty of searching through such an overlay.
	toggle(all, false)
	ov := dyn.FreezeOverlay(g) // immutable: safe to keep across the re-insert
	toggle(all, true)
	e.OverlayCompactNs = int64(timeIt(func() { ov.Materialize(1) }))
	e.OptOverlayK100Ns = int64(timeIt(func() { ego.OptBSearch(ov, 100, 1.05) }))
}

// measureReadPath times the PR 7 read-path kernels on dataset graph g: the
// overlay read tax, the degree-relabeled OptBSearch, and the hub×hub
// intersection kernels.
func measureReadPath(e *PRBenchEntry, g *graph.Graph) {
	// Overlay read tax, measured paired. The row used to be the ratio of
	// two single-shot measurements taken in different stages of the run
	// (opt_bsearch_k100_ns_op at the top of RunPRBench, the overlay row
	// inside measurePublish), so unrelated machine state — GC pressure and
	// page-cache residency left behind by whatever ran in between — landed
	// on one side of the ratio but not the other. That is how the dblp tax
	// "regressed" from ≈0.93 (BENCH_PR7) to ≈1.12 (BENCH_PR9) while both
	// absolute rows improved: a measurement artifact, not a read-path
	// change (the PR 9 TemporalIndex never touches this path — prbench
	// builds no windowed graphs before this stage). Interleaving the two
	// sides in one loop and keeping each side's best-of-3 makes the ratio
	// self-paired; the `benchtab -readtax-guard` check flags future drift.
	// The overlay is the same shape measurePublish priced: a chain carrying
	// 256 dirtied rows.
	dyn := graph.DynFromGraph(g)
	batch := pickEdges(g, 256, 0x9E0)
	for _, ed := range batch {
		must(dyn.DeleteEdge(ed[0], ed[1]))
	}
	ov := dyn.FreezeOverlay(g)
	frozenBest, overlayBest := int64(math.MaxInt64), int64(math.MaxInt64)
	for i := 0; i < 3; i++ {
		runtime.GC()
		if t := int64(timeIt(func() { ego.OptBSearch(g, 100, 1.05) })); t < frozenBest {
			frozenBest = t
		}
		if t := int64(timeIt(func() { ego.OptBSearch(ov, 100, 1.05) })); t < overlayBest {
			overlayBest = t
		}
	}
	if frozenBest > 0 {
		e.OverlayReadTax = float64(overlayBest) / float64(frozenBest)
	}

	var rl *graph.Relabeled
	e.RelabelBuildNs = int64(timeIt(func() { rl = graph.DegreeRelabel(g) }))
	e.OptRelabelK100Ns = int64(timeIt(func() { ego.OptBSearchLabeled(rl.G, 100, 1.05, rl.Ext) }))

	// Hub×hub kernels, the shape of internal/nbr's BenchmarkHubHub pair:
	// two degree-4096 neighborhoods over a 32Ki-id universe sharing a
	// 256-id core. Steady state: registers are marked once, only the
	// intersection op is on the clock.
	la, lb := hubPair()
	ra, rb := nbr.NewRegister(1<<15), nbr.NewRegister(1<<15)
	ra.Mark(la)
	rb.Mark(lb)
	const iters = 2000
	var dst []int32
	e.HubIntersectScalarNs = int64(perOp(iters, func() {
		for i := 0; i < iters; i++ {
			dst = ra.IntersectInto(dst[:0], lb)
		}
	}))
	e.HubIntersectWordNs = int64(perOp(iters, func() {
		for i := 0; i < iters; i++ {
			dst = ra.AndInto(dst[:0], rb)
		}
	}))
	if e.HubIntersectWordNs > 0 {
		e.HubWordSpeedup = float64(e.HubIntersectScalarNs) / float64(e.HubIntersectWordNs)
	}
}

// hubPair builds the two sorted hub neighborhoods of the hub×hub rows.
func hubPair() ([]int32, []int32) {
	rng := rand.New(rand.NewPCG(101, 103))
	draw := func(k int) map[int32]bool {
		set := make(map[int32]bool, k)
		for len(set) < k {
			set[int32(rng.IntN(1<<15))] = true
		}
		return set
	}
	shared := draw(256)
	list := func() []int32 {
		set := draw(3840)
		for v := range shared {
			set[v] = true
		}
		out := make([]int32, 0, len(set))
		for v := range set {
			out = append(out, v)
		}
		slices.Sort(out)
		return out
	}
	return list(), list()
}

// approxFrontierEps is the ε sweep the frontier rows cover, default point
// included.
var approxFrontierEps = []float64{0.02, approx.DefaultEps, 0.1}

// measureApprox prices the PR 10 approximate tier on dataset graph g: a
// k=100 approx query at each frontier ε against a same-stage exact
// OptBSearch baseline. Both sides are best-of-3 with the exact shot
// interleaved into the same loop, so the speedup is a paired ratio (same
// rationale as the overlay read tax above). Recall is against the exact
// top-100 vertex set.
func measureApprox(e *PRBenchEntry, g *graph.Graph) {
	const k = 100
	var exact []ego.Result
	optBest := int64(math.MaxInt64)
	measureOpt := func() {
		if t := int64(timeIt(func() { exact, _ = ego.OptBSearch(g, k, 1.05) })); t < optBest {
			optBest = t
		}
	}
	for _, eps := range approxFrontierEps {
		opts := approx.Options{Eps: eps}
		var res []ego.Result
		var st approx.Stats
		best := int64(math.MaxInt64)
		for i := 0; i < 3; i++ {
			runtime.GC()
			measureOpt()
			if t := int64(timeIt(func() { res, st = approx.TopK(g, k, opts) })); t < best {
				best = t
			}
		}
		e.ApproxFrontier = append(e.ApproxFrontier, ApproxPoint{
			Eps:         eps,
			TopKNs:      best,
			Recall:      ego.Overlap(exact, res),
			Samples:     st.Samples,
			EpsAchieved: st.EpsAchieved,
		})
	}
	// Fill speedups once the sweep is done, so every point divides by the
	// same (final, tightest) exact baseline.
	for i := range e.ApproxFrontier {
		p := &e.ApproxFrontier[i]
		if p.TopKNs > 0 {
			p.Speedup = float64(optBest) / float64(p.TopKNs)
		}
		if p.Eps == approx.DefaultEps {
			e.ApproxTopKK100Ns = p.TopKNs
			e.ApproxSpeedupVsOpt = p.Speedup
			e.ApproxRecallAt100 = p.Recall
		}
	}
}

// WritePRBench runs the regression suite and writes BENCH-style JSON to
// path.
func WritePRBench(path string, names []string) error {
	doc := RunPRBench(names)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	return nil
}
