package brandes

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

const eps = 1e-9

// TestPathGraph: on a path v0–v1–…–v(n−1), bc(vi) = i·(n−1−i) — every pair
// (left, right) routes through vi.
func TestPathGraph(t *testing.T) {
	const n = 7
	edges := make([][2]int32, n-1)
	for i := int32(0); i < n-1; i++ {
		edges[i] = [2]int32{i, i + 1}
	}
	g := graph.MustFromEdges(n, edges)
	bc := Betweenness(g)
	for i := int32(0); i < n; i++ {
		want := float64(i) * float64(n-1-i)
		if math.Abs(bc[i]-want) > eps {
			t.Errorf("path bc(%d) = %v, want %v", i, bc[i], want)
		}
	}
}

// TestStarGraph: the hub carries every leaf pair: (d choose 2); leaves 0.
func TestStarGraph(t *testing.T) {
	const d = 9
	edges := make([][2]int32, d)
	for i := int32(0); i < d; i++ {
		edges[i] = [2]int32{0, i + 1}
	}
	g := graph.MustFromEdges(d+1, edges)
	bc := Betweenness(g)
	if want := float64(d*(d-1)) / 2; math.Abs(bc[0]-want) > eps {
		t.Errorf("hub bc = %v, want %v", bc[0], want)
	}
	for i := 1; i <= d; i++ {
		if bc[i] != 0 {
			t.Errorf("leaf %d bc = %v, want 0", i, bc[i])
		}
	}
}

// TestCompleteGraph: no shortest path has interior vertices; all zero.
func TestCompleteGraph(t *testing.T) {
	var edges [][2]int32
	for u := int32(0); u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			edges = append(edges, [2]int32{u, v})
		}
	}
	g := graph.MustFromEdges(6, edges)
	for v, x := range Betweenness(g) {
		if x != 0 {
			t.Errorf("K6 bc(%d) = %v, want 0", v, x)
		}
	}
}

// TestCycleGraph: by symmetry every vertex of C_n has equal betweenness; for
// even n, each vertex lies on (n/2−1) pairs' unique paths plus split ties.
// For C6 the exact value is 2.5 per vertex: pairs at distance 2 through v
// contribute 1 each (2 such), the antipodal pair at distance 3 has two
// shortest paths, contributing 2·(1/2)·... — verified against hand counting.
func TestCycleGraph(t *testing.T) {
	const n = 6
	edges := make([][2]int32, n)
	for i := int32(0); i < n; i++ {
		edges[i] = [2]int32{i, (i + 1) % n}
	}
	g := graph.MustFromEdges(n, edges)
	bc := Betweenness(g)
	for v := 1; v < n; v++ {
		if math.Abs(bc[v]-bc[0]) > eps {
			t.Fatalf("cycle not symmetric: bc(%d)=%v bc(0)=%v", v, bc[v], bc[0])
		}
	}
	// Total betweenness = Σ over pairs (#interior vertices averaged over
	// shortest paths): pairs at distance 2: 6 pairs × 1 interior; distance
	// 3: 3 pairs × 2 paths × 2 interior / 2 paths = 3 × 2. Total = 12,
	// split evenly: 2 per vertex... verified numerically below against the
	// independent pair-by-pair count.
	total := 0.0
	for _, x := range bc {
		total += x
	}
	want := bruteForceTotal(g)
	if math.Abs(total-want) > eps {
		t.Errorf("cycle total bc = %v, brute force %v", total, want)
	}
}

// bruteForceTotal computes Σ_v bc(v) by enumerating all pairs and counting
// shortest paths explicitly (independent implementation, BFS per pair).
func bruteForceTotal(g *graph.Graph) float64 {
	n := g.NumVertices()
	total := 0.0
	for s := int32(0); s < n; s++ {
		for t := s + 1; t < n; t++ {
			paths := allShortestPaths(g, s, t)
			if len(paths) == 0 {
				continue
			}
			interior := 0
			for _, p := range paths {
				interior += len(p) - 2
			}
			total += float64(interior) / float64(len(paths))
		}
	}
	return total
}

// allShortestPaths enumerates every shortest s-t path (small graphs only).
func allShortestPaths(g *graph.Graph, s, t int32) [][]int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int32{s}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, x := range g.Neighbors(v) {
			if dist[x] < 0 {
				dist[x] = dist[v] + 1
				queue = append(queue, x)
			}
		}
	}
	if dist[t] < 0 {
		return nil
	}
	var out [][]int32
	var walk func(cur int32, path []int32)
	walk = func(cur int32, path []int32) {
		if cur == s {
			rev := make([]int32, len(path))
			for i, v := range path {
				rev[len(path)-1-i] = v
			}
			out = append(out, rev)
			return
		}
		for _, x := range g.Neighbors(cur) {
			if dist[x] == dist[cur]-1 {
				walk(x, append(path, x))
			}
		}
	}
	walk(t, []int32{t})
	return out
}

// TestAgainstBruteForce validates Brandes on random graphs against the
// pair-by-pair path enumeration.
func TestAgainstBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		g := gen.Random(seed, 14)
		bc := Betweenness(g)
		// Per-vertex brute force.
		n := g.NumVertices()
		want := make([]float64, n)
		for s := int32(0); s < n; s++ {
			for u := s + 1; u < n; u++ {
				paths := allShortestPaths(g, s, u)
				if len(paths) == 0 {
					continue
				}
				counts := make(map[int32]int)
				for _, p := range paths {
					for _, v := range p[1 : len(p)-1] {
						counts[v]++
					}
				}
				for v, c := range counts {
					want[v] += float64(c) / float64(len(paths))
				}
			}
		}
		for v := int32(0); v < n; v++ {
			if math.Abs(bc[v]-want[v]) > 1e-7 {
				t.Fatalf("seed %d: bc(%d) = %v, brute force %v", seed, v, bc[v], want[v])
			}
		}
	}
}

// TestParallelMatchesSequential checks the parallel merge across thread
// counts.
func TestParallelMatchesSequential(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 13)
	want := Betweenness(g)
	for _, threads := range []int{1, 2, 4, 0} {
		got := BetweennessParallel(g, threads)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-6 {
				t.Fatalf("t=%d: bc(%d) = %v, want %v", threads, v, got[v], want[v])
			}
		}
	}
}

// TestTopKOrdering: TopK must return descending scores matching the full
// computation.
func TestTopKOrdering(t *testing.T) {
	g := gen.ChungLu(200, 2.4, 6, 40, 17)
	bc := Betweenness(g)
	res := TopK(g, 10, 2)
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].CB > res[i-1].CB+eps {
			t.Fatalf("not descending at %d", i)
		}
	}
	// The first result must be the true max.
	maxBC := 0.0
	for _, x := range bc {
		if x > maxBC {
			maxBC = x
		}
	}
	if math.Abs(res[0].CB-maxBC) > 1e-6 {
		t.Fatalf("top-1 = %v, true max %v", res[0].CB, maxBC)
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Two separate paths; betweenness accumulates within components only.
	g := graph.MustFromEdges(6, [][2]int32{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	bc := Betweenness(g)
	if bc[1] != 1 || bc[4] != 1 {
		t.Errorf("middle vertices: %v, want 1 each", bc)
	}
	if bc[0] != 0 || bc[2] != 0 || bc[3] != 0 || bc[5] != 0 {
		t.Errorf("endpoints: %v, want 0", bc)
	}
}
