package server

import (
	"errors"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestMixedWorkloadStress runs every serving surface at once against a
// durable registry — top-k in all algorithms, per-vertex and stats reads,
// edge batches in both ack modes, Remove/re-Add churn — under -race, with
// two global assertions: every response's epoch is monotone per graph (per
// observer), and after a kill injected mid-drain the recovered registry
// still equals a from-scratch recompute of the durable history.
func TestMixedWorkloadStress(t *testing.T) {
	const scriptLen = 40
	dir := t.TempDir()
	var killArmed atomic.Bool
	errBoom := errors.New("injected mid-drain kill")
	victim := NewRegistry(
		WithDataDir(dir), WithBuildWorkers(2), WithCheckpointPolicy(7, 1<<20),
		WithCrashHook(func(g, p string) error {
			if killArmed.Load() && g == "main" && p == crashBeforeApply {
				return errBoom
			}
			return nil
		}))

	base := gen.BarabasiAlbert(70, 3, 11)
	rng := rand.New(rand.NewPCG(11, 0xE60B))
	script := makeScript(rng, graph.DynFromGraph(base), scriptLen+4)
	if _, err := victim.Add("main", base, ModeLocal, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Add("churn", gen.BarabasiAlbert(50, 3, 12), ModeLazy, 5); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: streams the script into "main" sequentially, alternating ack
	// modes. Durable responses must carry monotone epochs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := uint64(0)
		for i, sb := range script[:scriptLen] {
			if i%3 == 2 {
				if _, err := victim.ApplyEdgesAck("main", sb.edges, sb.insert, AckAsync); err != nil && !errors.Is(err, ErrBacklog) {
					t.Errorf("async write %d: %v", i, err)
					return
				}
				continue
			}
			res, err := victim.ApplyEdges("main", sb.edges, sb.insert)
			if err != nil {
				t.Errorf("durable write %d: %v", i, err)
				return
			}
			if res.Epoch < last {
				t.Errorf("writer epoch regressed %d -> %d", last, res.Epoch)
				return
			}
			last = res.Epoch
		}
	}()

	// Readers on "main": all snapshot algorithms, per-vertex, stats; each
	// observer's epochs must be non-decreasing.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed))
			algos := []string{AlgoScores, AlgoOpt, AlgoBase}
			last := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				var epoch uint64
				switch rng.IntN(3) {
				case 0:
					res, err := victim.TopK("main", 1+rng.IntN(10), algos[rng.IntN(len(algos))], 0)
					if err != nil {
						t.Errorf("reader topk: %v", err)
						return
					}
					epoch = res.Epoch
				case 1:
					vr, err := victim.EgoBetweenness("main", int32(rng.IntN(70)))
					if err != nil {
						t.Errorf("reader vertex: %v", err)
						return
					}
					epoch = vr.Epoch
				default:
					st, err := victim.Stats("main")
					if err != nil {
						t.Errorf("reader stats: %v", err)
						return
					}
					epoch = st.Epoch
				}
				if epoch < last {
					t.Errorf("reader epoch regressed %d -> %d", last, epoch)
					return
				}
				last = epoch
			}
		}(uint64(r + 100))
	}

	// Churn on the second graph: Remove / re-Add while writers (both ack
	// modes) and a lazy reader hammer it, all tolerating clean not-found
	// and backpressure errors — anything else is a bug.
	tolerable := func(err error) bool {
		return err == nil || errors.Is(err, ErrBacklog) ||
			strings.Contains(err.Error(), "no graph named")
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ack := AckDurable
			if w == 1 {
				ack = AckAsync
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := victim.ApplyEdgesAck("churn", [][2]int32{{int32(i % 50), int32(50 + i%13)}}, true, ack); !tolerable(err) {
					t.Errorf("churn writer: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := victim.TopK("churn", 3, AlgoLazy, 0); !tolerable(err) {
				t.Errorf("churn lazy reader: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for round := 0; round < 3; round++ {
			time.Sleep(2 * time.Millisecond)
			if err := victim.Remove("churn"); err != nil && !strings.Contains(err.Error(), "no graph named") {
				t.Errorf("churn remove: %v", err)
				return
			}
			if _, err := victim.Add("churn", gen.BarabasiAlbert(50, 3, uint64(13+round)), ModeLazy, 5); err != nil {
				t.Errorf("churn re-add: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}

	// Kill mid-drain: arm the hook, admit a fresh async burst, and use a
	// durable probe as the fence proving the pipeline died inside the group
	// commit (after the WAL append, before the apply).
	killArmed.Store(true)
	for _, sb := range script[scriptLen : scriptLen+3] {
		if _, err := victim.ApplyEdgesAck("main", sb.edges, sb.insert, AckAsync); err != nil {
			t.Fatal(err)
		}
	}
	probe := script[scriptLen+3]
	if _, err := victim.ApplyEdges("main", probe.edges, probe.insert); !errors.Is(err, ErrStorage) {
		t.Fatalf("probe after armed kill: err = %v, want ErrStorage", err)
	}
	victim.Close()

	// Recovery equivalence: whatever prefix of the admitted stream the WAL
	// reports durable (admission order == script order: one writer
	// goroutine, async and durable batches interleaved FIFO) must be what
	// the reopened registry serves.
	reborn := NewRegistry(WithDataDir(dir), WithBuildWorkers(2))
	infos, err := reborn.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	var mainSeq uint64
	found := false
	for _, gi := range infos {
		if gi.Name == "main" {
			mainSeq, found = gi.WALSeq, true
		}
	}
	if !found {
		t.Fatalf("graph \"main\" not recovered: %+v", infos)
	}
	if int(mainSeq) < scriptLen {
		t.Fatalf("recovered wal_seq %d, want ≥ %d (whole stress stream durable)", mainSeq, scriptLen)
	}
	assertRecovered(t, reborn, "main", ModeLocal, stateAfter(base, script, int(mainSeq)))
}
