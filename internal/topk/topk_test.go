package topk

import (
	"math/rand/v2"
	"sort"
	"testing"
)

func TestBoundedBasics(t *testing.T) {
	b := NewBounded(3)
	if b.Full() {
		t.Fatal("empty is not full")
	}
	if _, ok := b.Min(); ok {
		t.Fatal("Min defined before full")
	}
	b.Add(1, 10)
	b.Add(2, 5)
	b.Add(3, 7)
	if !b.Full() {
		t.Fatal("should be full")
	}
	if min, _ := b.Min(); min != 5 {
		t.Fatalf("min = %v, want 5", min)
	}
	b.Add(4, 6) // evicts 5
	if min, _ := b.Min(); min != 6 {
		t.Fatalf("min = %v, want 6", min)
	}
	b.Add(5, 1) // too small, ignored
	res := b.Results()
	want := []Item{{V: 1, Score: 10}, {V: 3, Score: 7}, {V: 4, Score: 6}}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("results = %v, want %v", res, want)
		}
	}
}

func TestBoundedTieKeepsIncumbent(t *testing.T) {
	b := NewBounded(1)
	b.Add(1, 5)
	b.Add(2, 5)
	if res := b.Results(); res[0].V != 1 {
		t.Fatalf("tie evicted incumbent: %v", res)
	}
}

func TestBoundedRemove(t *testing.T) {
	b := NewBounded(4)
	for i := int32(1); i <= 4; i++ {
		b.Add(i, float64(i))
	}
	if !b.Remove(2) {
		t.Fatal("remove failed")
	}
	if b.Remove(2) {
		t.Fatal("double remove succeeded")
	}
	if b.Len() != 3 || b.Full() {
		t.Fatal("size wrong after remove")
	}
	b.Add(9, 0.5)
	res := b.Results()
	if len(res) != 4 || res[3].V != 9 {
		t.Fatalf("results after refill: %v", res)
	}
}

// TestBoundedRandomizedAgainstSort compares with sorting on random streams.
func TestBoundedRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.IntN(10)
		n := 1 + rng.IntN(200)
		b := NewBounded(k)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.IntN(50)) // ties likely
			b.Add(int32(i), scores[i])
		}
		sorted := append([]float64(nil), scores...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		want := sorted[:min(k, n)]
		got := b.Results()
		if len(got) != len(want) {
			t.Fatalf("k=%d n=%d: got %d results", k, n, len(got))
		}
		for i := range want {
			if got[i].Score != want[i] {
				t.Fatalf("k=%d n=%d rank %d: %v want %v", k, n, i, got[i].Score, want[i])
			}
		}
	}
}

func TestMaxHeapOrdering(t *testing.T) {
	h := NewMaxHeap(0)
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	for i, v := range vals {
		h.Push(int32(i), v)
	}
	if h.Peek().Score != 9 {
		t.Fatalf("peek = %v, want 9", h.Peek().Score)
	}
	prev := h.Pop()
	for h.Len() > 0 {
		cur := h.Pop()
		if cur.Score > prev.Score {
			t.Fatalf("heap order violated: %v after %v", cur.Score, prev.Score)
		}
		prev = cur
	}
}

func TestMaxHeapTieBreak(t *testing.T) {
	h := NewMaxHeap(0)
	h.Push(3, 7)
	h.Push(9, 7)
	h.Push(5, 7)
	if got := h.Pop().V; got != 9 {
		t.Fatalf("tie pop = %d, want 9 (larger id first)", got)
	}
	if got := h.Pop().V; got != 5 {
		t.Fatalf("tie pop = %d, want 5", got)
	}
}

func TestNewBoundedClampsK(t *testing.T) {
	b := NewBounded(0)
	b.Add(1, 1)
	if b.K() != 1 || !b.Full() {
		t.Fatal("k must clamp to 1")
	}
}
