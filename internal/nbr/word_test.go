package nbr

import (
	"math/rand/v2"
	"slices"
	"testing"
)

// markedPair marks a and b into two pooled registers sized for span and
// hands them to fn, releasing them afterwards.
func markedPair(span int32, a, b []int32, fn func(ra, rb *Register)) {
	ra := AcquireRegister(span)
	rb := AcquireRegister(span)
	ra.Mark(a)
	rb.Mark(b)
	fn(ra, rb)
	ReleaseRegister(ra)
	ReleaseRegister(rb)
}

// spanOf returns 1 + the largest element of the lists (at least 1).
func spanOf(lists ...[]int32) int32 {
	span := int32(1)
	for _, l := range lists {
		for _, v := range l {
			if v >= span {
				span = v + 1
			}
		}
	}
	return span
}

// TestAndAgainstReference pins the word-parallel kernels against the naive
// reference and the scalar kernels on the adversarial shapes of the
// satellite checklist: dense runs, hits at word and summary-block
// boundaries, empty sides, and hub×hub lists.
func TestAndAgainstReference(t *testing.T) {
	run := func(lo, n int32) []int32 {
		out := make([]int32, 0, n)
		for i := int32(0); i < n; i++ {
			out = append(out, lo+i)
		}
		return out
	}
	rng := rand.New(rand.NewPCG(11, 17))
	hubA := sortedList(rng, 3000, 1<<18)
	hubB := sortedList(rng, 3000, 1<<18)

	cases := []struct {
		name string
		a, b []int32
	}{
		{"both empty", nil, nil},
		{"left empty", nil, []int32{0, 63, 64, 127}},
		{"right empty", []int32{0, 63, 64, 127}, nil},
		{"single common at zero", []int32{0}, []int32{0}},
		{"word boundary hits", []int32{63, 64, 127, 128, 191}, []int32{63, 64, 128, 192}},
		{"summary block boundary", []int32{4095, 4096, 8191, 8192}, []int32{4096, 8191, 12288}},
		{"dense run vs dense run", run(100, 500), run(400, 500)},
		{"dense run vs sparse", run(0, 4096), []int32{1, 64, 4095, 4097, 100000}},
		{"far apart blocks", []int32{5, 70000}, []int32{5, 70000, 70001}},
		{"disjoint blocks", run(0, 64), run(64, 64)},
		{"identical hubs", hubA, hubA},
		{"random hub x hub", hubA, hubB},
		{"last id only", []int32{1<<18 - 1}, []int32{0, 1<<18 - 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := naiveIntersect(tc.a, tc.b)
			span := spanOf(tc.a, tc.b)
			markedPair(span, tc.a, tc.b, func(ra, rb *Register) {
				got := ra.AndInto(nil, rb)
				if !slices.Equal(got, want) && (len(got) != 0 || len(want) != 0) {
					t.Errorf("AndInto = %v, want %v", got, want)
				}
				// Commutes, counts, and agrees with every scalar kernel.
				rev := rb.AndInto(nil, ra)
				if !slices.Equal(rev, got) {
					t.Errorf("AndInto not symmetric: %v vs %v", rev, got)
				}
				if c := ra.AndCount(rb); c != len(want) {
					t.Errorf("AndCount = %d, want %d", c, len(want))
				}
				if sc := ra.IntersectInto(nil, tc.b); !slices.Equal(sc, got) && (len(sc) != 0 || len(got) != 0) {
					t.Errorf("scalar probe %v disagrees with AndInto %v", sc, got)
				}
				if lin := linearInto(nil, tc.a, tc.b); !slices.Equal(lin, got) && (len(lin) != 0 || len(got) != 0) {
					t.Errorf("linear %v disagrees with AndInto %v", lin, got)
				}
			})
		})
	}
}

// TestAndRandomized drives the word kernels over random size mixes,
// including skews where the registers' spans differ wildly, and re-marks
// through epochs so the O(1) Unmark path is covered.
func TestAndRandomized(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	sizes := []int{0, 1, 7, 63, 64, 65, 300, 4000}
	ra := AcquireRegister(1)
	rb := AcquireRegister(1)
	defer ReleaseRegister(ra)
	defer ReleaseRegister(rb)
	for _, la := range sizes {
		for _, lb := range sizes {
			for trial := 0; trial < 3; trial++ {
				spanA := int32(max(4*la, 64))
				spanB := int32(max(4*lb, 64))
				if trial == 2 {
					spanB = 1 << 19 // wildly different spans
				}
				a := sortedList(rng, la, spanA)
				b := sortedList(rng, lb, spanB)
				ra.Ensure(spanA)
				rb.Ensure(spanB)
				ra.Mark(a)
				rb.Mark(b)
				want := naiveIntersect(a, b)
				got := ra.AndInto(nil, rb)
				if !slices.Equal(got, want) && (len(got) != 0 || len(want) != 0) {
					t.Fatalf("la=%d lb=%d trial=%d: AndInto = %v, want %v", la, lb, trial, got, want)
				}
				if c := rb.AndCount(ra); c != len(want) {
					t.Fatalf("la=%d lb=%d trial=%d: AndCount = %d, want %d", la, lb, trial, c, len(want))
				}
				ra.Unmark()
				rb.Unmark()
			}
		}
	}
}

// TestAndStaleEpochIsolation checks that bits marked in an earlier epoch
// never leak into a later intersection: words re-used across Unmark must
// read as empty until re-marked.
func TestAndStaleEpochIsolation(t *testing.T) {
	ra := NewRegister(1 << 16)
	rb := NewRegister(1 << 16)
	ra.Mark([]int32{1, 64, 4096, 50000})
	rb.Mark([]int32{1, 64, 4096, 50000})
	if got := ra.AndCount(rb); got != 4 {
		t.Fatalf("AndCount before Unmark = %d, want 4", got)
	}
	ra.Unmark()
	if got := ra.AndInto(nil, rb); len(got) != 0 {
		t.Fatalf("AndInto after one-sided Unmark = %v, want empty", got)
	}
	ra.Mark([]int32{64, 200})
	if got, want := ra.AndInto(nil, rb), []int32{64}; !slices.Equal(got, want) {
		t.Fatalf("AndInto after re-mark = %v, want %v", got, want)
	}
	if ra.Contains(50000) {
		t.Fatal("stale vertex still Contains after Unmark")
	}
}

// TestChooseHub pins the central hub dispatch table.
func TestChooseHub(t *testing.T) {
	cases := []struct {
		la, lb int
		want   Strategy
	}{
		{HubDegree, HubDegree, StrategyWord},
		{HubDegree + 100, HubDegree, StrategyWord},
		{HubDegree, 0, StrategyBitset},
		{0, HubDegree, StrategyBitset},
		{HubDegree - 1, HubDegree * 2, StrategyBitset},
		{HubDegree - 1, HubDegree - 1, StrategyLinear},
		{2, 2 * GallopRatio, StrategyGallop},
		{0, 0, StrategyLinear},
	}
	for _, tc := range cases {
		if got := ChooseHub(tc.la, tc.lb); got != tc.want {
			t.Errorf("ChooseHub(%d,%d) = %v, want %v", tc.la, tc.lb, got, tc.want)
		}
	}
	if StrategyWord.String() != "word" {
		t.Errorf("StrategyWord.String() = %q", StrategyWord.String())
	}
}

// FuzzAnd cross-checks the word-parallel kernels against the scalar paths
// on arbitrary byte-derived sorted lists, cycling registers through an
// extra epoch so stale-word re-zeroing is always in play.
func FuzzAnd(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{}, []byte{0, 0, 255})
	f.Add([]byte{63, 1, 255, 255}, []byte{63, 1, 1})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		a := bytesToSorted(ab)
		b := bytesToSorted(bb)
		want := naiveIntersect(a, b)
		span := spanOf(a, b)
		ra := NewRegister(span)
		rb := NewRegister(span)
		// Dirty both registers with the other list, then recycle: the
		// fuzzed intersection must see none of the stale bits.
		ra.Mark(b)
		rb.Mark(a)
		ra.Unmark()
		rb.Unmark()
		ra.Mark(a)
		rb.Mark(b)
		got := ra.AndInto(nil, rb)
		if !slices.Equal(got, want) && (len(got) != 0 || len(want) != 0) {
			t.Fatalf("AndInto(%v,%v) = %v, want %v", a, b, got, want)
		}
		if c := ra.AndCount(rb); c != len(want) {
			t.Fatalf("AndCount(%v,%v) = %d, want %d", a, b, c, len(want))
		}
	})
}

// legacyRegister is the pre-epoch implementation kept as the benchmark
// baseline: Unmark walks the remembered marked list and clears bit by bit.
type legacyRegister struct {
	words  []uint64
	marked []int32
}

func (r *legacyRegister) mark(vs []int32) {
	for _, v := range vs {
		r.words[uint32(v)>>6] |= 1 << (uint32(v) & 63)
	}
	r.marked = append(r.marked, vs...)
}

func (r *legacyRegister) unmark() {
	for _, v := range r.marked {
		r.words[uint32(v)>>6] &^= 1 << (uint32(v) & 63)
	}
	r.marked = r.marked[:0]
}

func (r *legacyRegister) count(list []int32) int {
	n := 0
	for _, v := range list {
		if r.words[uint32(v)>>6]&(1<<(uint32(v)&63)) != 0 {
			n++
		}
	}
	return n
}

// benchMarkSet is the mark → unmark recycle cycle both register designs
// run between kernel invocations; the sizes pin the satellite requirement
// that the epoch design does not regress the small-marks case (maintainer
// L-sets, leaf centers) while making hub-sized Unmark O(1).
func benchMarkSet(n int) []int32 {
	rng := rand.New(rand.NewPCG(77, uint64(n)))
	return sortedList(rng, n, 1<<16)
}

func BenchmarkMarkUnmarkEpoch(b *testing.B) {
	for _, n := range []int{8, 64, 1024} {
		b.Run(sizeName(n), func(b *testing.B) {
			vs := benchMarkSet(n)
			r := NewRegister(1 << 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Mark(vs)
				r.Unmark()
			}
		})
	}
}

func BenchmarkMarkUnmarkLegacy(b *testing.B) {
	for _, n := range []int{8, 64, 1024} {
		b.Run(sizeName(n), func(b *testing.B) {
			vs := benchMarkSet(n)
			r := &legacyRegister{words: make([]uint64, 1<<10)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.mark(vs)
				r.unmark()
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 8:
		return "marks=8"
	case 64:
		return "marks=64"
	default:
		return "marks=1024"
	}
}

// denseHubPair is the hub×hub micro-benchmark shape: two degree-4096
// neighborhoods over a 32Ki-id universe sharing a small common core — the
// regime the word-parallel kernel targets (dense hubs whose ids compress
// into a low prefix after degree-ordered relabeling, intersecting in a
// sparse common set).
func denseHubPair() ([]int32, []int32) {
	rng := rand.New(rand.NewPCG(101, 103))
	shared := sortedList(rng, 256, 1<<15)
	a := naiveUnion(shared, sortedList(rng, 3840, 1<<15))
	b := naiveUnion(shared, sortedList(rng, 3840, 1<<15))
	return a, b
}

func naiveUnion(a, b []int32) []int32 {
	set := make(map[int32]bool, len(a)+len(b))
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		set[v] = true
	}
	out := make([]int32, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// BenchmarkHubHubScalarProbe is the pre-word baseline: one side marked, the
// other probed element-by-element.
func BenchmarkHubHubScalarProbe(b *testing.B) {
	la, lb := denseHubPair()
	r := NewRegister(1 << 16)
	r.Mark(la)
	var dst []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = r.IntersectInto(dst[:0], lb)
	}
	_ = dst
}

// BenchmarkHubHubWordAnd is the word-parallel path on the same inputs.
func BenchmarkHubHubWordAnd(b *testing.B) {
	la, lb := denseHubPair()
	ra := NewRegister(1 << 16)
	rb := NewRegister(1 << 16)
	ra.Mark(la)
	rb.Mark(lb)
	var dst []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ra.AndInto(dst[:0], rb)
	}
	_ = dst
}
