// Command egobw is the library's CLI: top-k ego-betweenness search, exact
// per-vertex queries, all-vertices computation, and comparison against
// classic betweenness, over edge-list files or generated datasets.
//
// Usage:
//
//	egobw topk -k 10 -in graph.txt              # OptBSearch on a file
//	egobw topk -k 10 -dataset dblp -algo base   # BaseBSearch on an analog
//	egobw all -dataset ir -threads 4            # parallel all-vertices
//	egobw vertex -in graph.txt -v 42            # one vertex, exact
//	egobw compare -dataset ir -k 20             # EBW vs BW overlap
//	egobw stats -in graph.txt                   # Table-I style statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	egobw "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "topk":
		err = cmdTopK(args)
	case "all":
		err = cmdAll(args)
	case "vertex":
		err = cmdVertex(args)
	case "compare":
		err = cmdCompare(args)
	case "stats":
		err = cmdStats(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "egobw:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: egobw <topk|all|vertex|compare|stats> [flags]
  topk    -k K [-algo opt|base] [-theta θ] (-in FILE | -dataset NAME)
  all     [-threads T] [-strategy edge|vertex] (-in FILE | -dataset NAME)
  vertex  -v V (-in FILE | -dataset NAME)
  compare -k K [-threads T] (-in FILE | -dataset NAME)
  stats   (-in FILE | -dataset NAME)`)
}

// loadFlags adds the shared input flags to fs and returns a loader.
func loadFlags(fs *flag.FlagSet) func() (*egobw.Graph, error) {
	in := fs.String("in", "", "edge-list file (SNAP text format)")
	ds := fs.String("dataset", "", "generated dataset name (see benchtab)")
	return func() (*egobw.Graph, error) {
		switch {
		case *in != "" && *ds != "":
			return nil, fmt.Errorf("choose one of -in and -dataset")
		case *in != "":
			return egobw.LoadEdgeListFile(*in)
		case *ds != "":
			return egobw.LoadDataset(*ds)
		default:
			return nil, fmt.Errorf("need -in FILE or -dataset NAME")
		}
	}
}

func cmdTopK(args []string) error {
	fs := flag.NewFlagSet("topk", flag.ExitOnError)
	load := loadFlags(fs)
	k := fs.Int("k", 10, "how many vertices")
	algo := fs.String("algo", "opt", "search algorithm: opt or base")
	theta := fs.Float64("theta", egobw.DefaultTheta, "OptBSearch gradient ratio")
	fs.Parse(args)
	g, err := load()
	if err != nil {
		return err
	}
	opts := []egobw.Option{egobw.WithTheta(*theta)}
	switch *algo {
	case "opt":
	case "base":
		opts = append(opts, egobw.WithBaseSearch())
	default:
		return fmt.Errorf("unknown -algo %q", *algo)
	}
	t0 := time.Now()
	res, st := egobw.TopK(g, *k, opts...)
	fmt.Printf("# n=%d m=%d algo=%s elapsed=%v computed=%d pruned=%d\n",
		g.NumVertices(), g.NumEdges(), *algo, time.Since(t0).Round(time.Microsecond),
		st.Computed, st.Pruned)
	for i, r := range res {
		fmt.Printf("%4d  v=%-8d CB=%.4f\n", i+1, r.V, r.CB)
	}
	return nil
}

func cmdAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	load := loadFlags(fs)
	threads := fs.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
	strategy := fs.String("strategy", "edge", "parallel strategy: edge or vertex")
	fs.Parse(args)
	g, err := load()
	if err != nil {
		return err
	}
	strat := egobw.EdgePEBW
	if *strategy == "vertex" {
		strat = egobw.VertexPEBW
	} else if *strategy != "edge" {
		return fmt.Errorf("unknown -strategy %q", *strategy)
	}
	cb, st := egobw.ComputeAllParallel(g, *threads, strat)
	fmt.Printf("# n=%d m=%d strategy=%v threads=%d elapsed=%v balance-bound(t)=%.2fx\n",
		g.NumVertices(), g.NumEdges(), strat, st.Threads,
		st.Elapsed.Round(time.Microsecond), st.SpeedupBound(st.Threads))
	for v, x := range cb {
		fmt.Printf("%d %.4f\n", v, x)
	}
	return nil
}

func cmdVertex(args []string) error {
	fs := flag.NewFlagSet("vertex", flag.ExitOnError)
	load := loadFlags(fs)
	v := fs.Int("v", -1, "vertex id")
	fs.Parse(args)
	g, err := load()
	if err != nil {
		return err
	}
	if *v < 0 || int32(*v) >= g.NumVertices() {
		return fmt.Errorf("vertex %d out of range [0,%d)", *v, g.NumVertices())
	}
	fmt.Printf("CB(%d) = %.6f  (degree %d, bound %.1f)\n",
		*v, egobw.EgoBetweenness(g, int32(*v)), g.Degree(int32(*v)),
		float64(g.Degree(int32(*v)))*float64(g.Degree(int32(*v))-1)/2)
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	load := loadFlags(fs)
	k := fs.Int("k", 10, "how many vertices")
	threads := fs.Int("threads", 0, "Brandes workers (0 = GOMAXPROCS)")
	fs.Parse(args)
	g, err := load()
	if err != nil {
		return err
	}
	t0 := time.Now()
	ebw, _ := egobw.TopK(g, *k)
	tEBW := time.Since(t0)
	t0 = time.Now()
	bw := egobw.BetweennessTopK(g, *k, *threads)
	tBW := time.Since(t0)
	fmt.Printf("# TopEBW %v   TopBW %v   overlap %.0f%%\n",
		tEBW.Round(time.Microsecond), tBW.Round(time.Microsecond),
		egobw.Overlap(ebw, bw)*100)
	fmt.Printf("%4s %22s %22s\n", "rank", "ego-betweenness", "betweenness")
	for i := 0; i < *k && i < len(ebw) && i < len(bw); i++ {
		fmt.Printf("%4d   v=%-8d %9.2f   v=%-8d %9.2f\n",
			i+1, ebw[i].V, ebw[i].CB, bw[i].V, bw[i].CB)
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	load := loadFlags(fs)
	fs.Parse(args)
	g, err := load()
	if err != nil {
		return err
	}
	fmt.Println(egobw.Stats(g))
	return nil
}
