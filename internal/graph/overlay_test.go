package graph

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// assertViewEquiv requires two views to describe the same graph: identical
// shape, per-vertex degrees and neighbor lists, max degree, and a HasEdge
// sample over present and absent pairs.
func assertViewEquiv(t *testing.T, label string, got, want View) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("%s: n = %d, want %d", label, got.NumVertices(), want.NumVertices())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: m = %d, want %d", label, got.NumEdges(), want.NumEdges())
	}
	if got.MaxDegree() != want.MaxDegree() {
		t.Fatalf("%s: maxDeg = %d, want %d", label, got.MaxDegree(), want.MaxDegree())
	}
	n := want.NumVertices()
	for v := int32(0); v < n; v++ {
		gn, wn := got.Neighbors(v), want.Neighbors(v)
		if len(gn) != len(wn) || got.Degree(v) != want.Degree(v) {
			t.Fatalf("%s: degree(%d) = %d (len %d), want %d", label, v, got.Degree(v), len(gn), want.Degree(v))
		}
		for i := range wn {
			if gn[i] != wn[i] {
				t.Fatalf("%s: neighbors(%d)[%d] = %d, want %d", label, v, i, gn[i], wn[i])
			}
		}
		for _, w := range wn {
			if !got.HasEdge(v, w) {
				t.Fatalf("%s: HasEdge(%d,%d) = false, want true", label, v, w)
			}
		}
	}
	if n > 1 {
		for i := 0; i < 64; i++ {
			u, v := int32(i)%n, int32(i*7+1)%n
			if got.HasEdge(u, v) != want.HasEdge(u, v) {
				t.Fatalf("%s: HasEdge(%d,%d) = %v, want %v", label, u, v, got.HasEdge(u, v), want.HasEdge(u, v))
			}
		}
	}
}

// randomScriptStep applies one random valid mutation to d, occasionally
// growing the vertex set, and reports whether anything changed.
func randomScriptStep(rng *rand.Rand, d *DynGraph) bool {
	n := d.NumVertices()
	u, v := int32(rng.IntN(int(n))), int32(rng.IntN(int(n)))
	if rng.IntN(16) == 0 {
		v = n + int32(rng.IntN(3)) // grow, possibly with isolated gaps
	}
	if u == v {
		return false
	}
	if d.HasEdge(u, v) && rng.IntN(3) == 0 {
		return d.DeleteEdge(u, v) == nil
	}
	if !d.HasEdge(u, v) {
		return d.InsertEdge(u, v) == nil
	}
	return false
}

// TestOverlayViewEquivalence is the core property: for random update
// scripts, the chain of FreezeOverlay publications — interleaved with
// Materialize compactions and Rebase re-anchorings — always equals a
// from-scratch Freeze of the same dynamic graph.
func TestOverlayViewEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(seed, 0x0E61))
			d := NewDynGraph(24)
			// Seed a random base, then freeze it as the overlay's base CSR.
			for i := 0; i < 60; i++ {
				randomScriptStep(rng, d)
			}
			d.TakeDirty()
			var view View = d.Freeze(1)
			steps := 0
			for pub := 0; pub < 40; pub++ {
				for i := 0; i < 1+rng.IntN(5); i++ {
					if randomScriptStep(rng, d) {
						steps++
					}
				}
				view = d.FreezeOverlay(view)
				assertViewEquiv(t, fmt.Sprintf("pub %d (%d steps)", pub, steps), view, d.Freeze(1))
				if ov := view.(*Overlay); ov.Depth() >= 5 || rng.IntN(8) == 0 {
					compacted := ov.Materialize(2)
					assertViewEquiv(t, fmt.Sprintf("compact @ pub %d", pub), compacted, d.Freeze(1))
					if err := compacted.Validate(); err != nil {
						t.Fatalf("compacted CSR invalid: %v", err)
					}
					view = compacted
				}
			}
		})
	}
}

// TestOverlayRebase exercises the compactor's race repair: layers published
// after the materialized prefix are re-anchored onto the fresh base and
// must keep describing the newest state.
func TestOverlayRebase(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 0x0E61))
	d := NewDynGraph(30)
	for i := 0; i < 80; i++ {
		randomScriptStep(rng, d)
	}
	d.TakeDirty()
	base := d.Freeze(1)
	var view View = base

	// Three published layers; remember the middle one as the compacted-at
	// point, then stack two more on top (the "drains that raced ahead").
	var at View
	for pub := 0; pub < 5; pub++ {
		for i := 0; i < 3; i++ {
			randomScriptStep(rng, d)
		}
		view = d.FreezeOverlay(view)
		if pub == 2 {
			at = view
		}
	}
	want := d.Freeze(1)

	g := at.(*Overlay).Materialize(1)
	rebased, ok := view.(*Overlay).Rebase(at, g)
	if !ok {
		t.Fatal("Rebase: at not found in chain")
	}
	assertViewEquiv(t, "rebased", rebased, want)
	if depth := rebased.(*Overlay).Depth(); depth != 2 {
		t.Fatalf("rebased depth = %d, want 2 (the layers above the compaction point)", depth)
	}

	// Rebasing the compaction point itself yields the bare CSR.
	if v, ok := at.(*Overlay).Rebase(at, g); !ok || v != View(g) {
		t.Fatalf("Rebase(at, at) = %v, %v; want the bare CSR", v, ok)
	}
	// A view from a foreign chain is rejected.
	foreign := d.FreezeOverlay(base)
	if _, ok := foreign.Rebase(at, g); ok {
		t.Fatal("Rebase accepted a target outside the chain")
	}
}

// TestOverlayIsolatedGrowth: growing the vertex set past the base leaves
// untouched new vertices isolated, visible, and degree 0.
func TestOverlayIsolatedGrowth(t *testing.T) {
	d := NewDynGraph(4)
	mustEdge := func(u, v int32) {
		t.Helper()
		if err := d.InsertEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(0, 1)
	mustEdge(1, 2)
	d.TakeDirty()
	base := d.Freeze(1)

	mustEdge(2, 9) // grows to 10 vertices; 3..8 isolated
	ov := d.FreezeOverlay(base)
	if ov.NumVertices() != 10 || ov.NumEdges() != 3 {
		t.Fatalf("overlay shape (n=%d, m=%d), want (10, 3)", ov.NumVertices(), ov.NumEdges())
	}
	for v := int32(4); v < 9; v++ {
		if ov.Degree(v) != 0 || ov.Neighbors(v) != nil {
			t.Fatalf("vertex %d: degree %d, want isolated", v, ov.Degree(v))
		}
	}
	if !ov.HasEdge(9, 2) || ov.HasEdge(9, 3) {
		t.Fatal("edge visibility wrong after growth")
	}
	assertViewEquiv(t, "growth", ov, d.Freeze(1))
}

// TestFreezeOverlayIsOBatch: a publication after a tiny batch copies only
// the dirtied adjacency lists, not the graph.
func TestFreezeOverlayIsOBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 0x0E61))
	d := NewDynGraph(200)
	for i := 0; i < 600; i++ {
		randomScriptStep(rng, d)
	}
	d.TakeDirty()
	base := d.Freeze(1)
	if err := d.InsertEdge(0, 199); err != nil {
		t.Fatal(err)
	}
	ov := d.FreezeOverlay(base)
	if ov.DirtyVertices() != 2 {
		t.Fatalf("DirtyVertices = %d, want 2 (the batch endpoints)", ov.DirtyVertices())
	}
	if d.DirtyCount() != 0 {
		t.Fatalf("dirty tracking not drained: %d", d.DirtyCount())
	}
	// The overlay must be detached from later in-place mutations.
	if err := d.DeleteEdge(0, 199); err != nil {
		t.Fatal(err)
	}
	if !ov.HasEdge(0, 199) {
		t.Fatal("overlay aliases the mutable adjacency")
	}
}

// FuzzOverlayEquivalence drives the overlay chain with a fuzzer-chosen
// mutation script and checks it against a from-scratch freeze after every
// publication.
func FuzzOverlayEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xFF, 0x00, 0x80, 0x40, 0x20, 0x10})
	f.Add([]byte{9, 9, 9, 1, 1, 1, 200, 200})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		d := NewDynGraph(12)
		var view View = d.Freeze(1)
		for i := 0; i+1 < len(script); i += 2 {
			u := int32(script[i] % 14)
			v := int32(script[i+1] % 14)
			if u == v {
				continue
			}
			if d.HasEdge(u, v) {
				_ = d.DeleteEdge(u, v)
			} else {
				_ = d.InsertEdge(u, v)
			}
			if i%6 == 0 {
				view = d.FreezeOverlay(view)
			}
			if ov, ok := view.(*Overlay); ok && ov.Depth() > 6 {
				view = ov.Materialize(1)
			}
		}
		view = d.FreezeOverlay(view)
		assertViewEquiv(t, "fuzz", view, d.Freeze(1))
	})
}
