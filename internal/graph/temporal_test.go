package graph

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
)

func TestTemporalIndexBasics(t *testing.T) {
	ti := NewTemporalIndex(1000)
	ti.Stamp(3, 1, 100) // canonicalized to (1,3)
	ti.Stamp(0, 2, 250)
	ti.Stamp(4, 5, 900)
	if ti.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ti.Len())
	}
	if ts, ok := ti.StampOf(1, 3); !ok || ts != 100 {
		t.Fatalf("StampOf(1,3) = %d,%v", ts, ok)
	}
	if oldest, ok := ti.OldestStamp(); !ok || oldest != 100 {
		t.Fatalf("OldestStamp = %d,%v, want 100", oldest, ok)
	}

	// Re-stamping supersedes; the old bucket entry must not resurrect.
	ti.Stamp(1, 3, 950)
	if oldest, ok := ti.OldestStamp(); !ok || oldest != 250 {
		t.Fatalf("after re-stamp OldestStamp = %d,%v, want 250", oldest, ok)
	}

	got := ti.ExpireBefore(901)
	if !reflect.DeepEqual(got, [][2]int32{{0, 2}, {4, 5}}) {
		t.Fatalf("ExpireBefore = %v", got)
	}
	if ti.Len() != 1 {
		t.Fatalf("Len after expiry = %d, want 1", ti.Len())
	}
	if got := ti.ExpireBefore(901); len(got) != 0 {
		t.Fatalf("second expiry returned %v", got)
	}

	ti.Forget(3, 1)
	if ti.Len() != 0 {
		t.Fatalf("Len after forget = %d", ti.Len())
	}
	if _, ok := ti.OldestStamp(); ok {
		t.Fatal("OldestStamp on empty index reported a value")
	}
	if got := ti.ExpireBefore(1 << 40); len(got) != 0 {
		t.Fatalf("forgotten edge expired: %v", got)
	}
}

// TestTemporalIndexExpiryMatchesBruteForce cross-checks the bucketed sweep
// against a map-scan oracle across random stamp distributions (including
// heavy skew and negative stamps) and random interleaved deletes.
func TestTemporalIndexExpiryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		window := int64(1 + rng.Intn(5000))
		ti := NewTemporalIndex(window)
		oracle := map[[2]int32]int64{}
		for i := 0; i < 300; i++ {
			u, v := int32(rng.Intn(40)), int32(rng.Intn(40))
			if u == v {
				continue
			}
			e := canonical(u, v)
			switch {
			case rng.Intn(4) == 0 && len(oracle) > 0:
				ti.Forget(u, v)
				delete(oracle, e)
			default:
				ts := int64(rng.Intn(10000)) - 2000 // stamps may precede the epoch
				ti.Stamp(u, v, ts)
				oracle[e] = ts
			}
			if rng.Intn(10) == 0 {
				cutoff := int64(rng.Intn(10000)) - 2000
				got := ti.ExpireBefore(cutoff)
				var want [][2]int32
				for e, ts := range oracle {
					if ts < cutoff {
						want = append(want, e)
						delete(oracle, e)
					}
				}
				slices.SortFunc(want, func(a, b [2]int32) int {
					if a[0] != b[0] {
						return int(a[0]) - int(b[0])
					}
					return int(a[1]) - int(b[1])
				})
				if len(got) != 0 || len(want) != 0 {
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d cutoff %d: got %v, want %v", trial, cutoff, got, want)
					}
				}
				if ti.Len() != len(oracle) {
					t.Fatalf("trial %d: Len=%d oracle=%d", trial, ti.Len(), len(oracle))
				}
			}
		}
	}
}

func TestTemporalIndexExportRoundTrip(t *testing.T) {
	g, err := FromEdges(5, [][2]int32{{0, 1}, {0, 2}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	ti := NewTemporalIndex(60_000)
	stamps := map[[2]int32]int64{{0, 1}: 5, {0, 2}: 9, {1, 2}: 2, {3, 4}: 7}
	for e, ts := range stamps {
		ti.Stamp(e[0], e[1], ts)
	}
	exported, err := ti.ExportStamps(g)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{5, 9, 2, 7}; !slices.Equal(exported, want) {
		t.Fatalf("exported %v, want %v (canonical edge order)", exported, want)
	}

	ti2, err := NewTemporalIndexFromStamps(60_000, g, exported)
	if err != nil {
		t.Fatal(err)
	}
	if ti2.Len() != len(stamps) {
		t.Fatalf("rebuilt Len = %d, want %d", ti2.Len(), len(stamps))
	}
	for e, want := range stamps {
		if ts, ok := ti2.StampOf(e[0], e[1]); !ok || ts != want {
			t.Fatalf("rebuilt StampOf(%v) = %d,%v, want %d", e, ts, ok, want)
		}
	}

	// A graph edge the sidecar missed is a divergence, not a zero stamp.
	ti.Forget(3, 4)
	if _, err := ti.ExportStamps(g); err == nil {
		t.Fatal("export with a missing stamp succeeded")
	}
	if _, err := NewTemporalIndexFromStamps(60_000, g, exported[:3]); err == nil {
		t.Fatal("rebuild with short stamp vector succeeded")
	}
}
