package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTestGraph writes a small edge list and returns its path.
func writeTestGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	content := "# test graph\n0 1\n0 2\n0 3\n1 2\n2 3\n3 4\n4 5\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdTopK(t *testing.T) {
	path := writeTestGraph(t)
	for _, algo := range []string{"opt", "base"} {
		if err := cmdTopK([]string{"-in", path, "-k", "3", "-algo", algo}); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
	if err := cmdTopK([]string{"-in", path, "-algo", "nope"}); err == nil {
		t.Error("unknown algo must error")
	}
	if err := cmdTopK([]string{"-k", "3"}); err == nil {
		t.Error("missing input must error")
	}
	if err := cmdTopK([]string{"-in", path, "-dataset", "ir"}); err == nil {
		t.Error("both inputs must error")
	}
}

func TestCmdAll(t *testing.T) {
	path := writeTestGraph(t)
	for _, strat := range []string{"edge", "vertex"} {
		if err := cmdAll([]string{"-in", path, "-strategy", strat, "-threads", "2"}); err != nil {
			t.Errorf("%s: %v", strat, err)
		}
	}
	if err := cmdAll([]string{"-in", path, "-strategy", "nope"}); err == nil {
		t.Error("unknown strategy must error")
	}
}

func TestCmdVertex(t *testing.T) {
	path := writeTestGraph(t)
	if err := cmdVertex([]string{"-in", path, "-v", "0"}); err != nil {
		t.Error(err)
	}
	if err := cmdVertex([]string{"-in", path, "-v", "99"}); err == nil {
		t.Error("out-of-range vertex must error")
	}
	if err := cmdVertex([]string{"-in", path}); err == nil {
		t.Error("missing -v must error")
	}
}

func TestCmdCompare(t *testing.T) {
	path := writeTestGraph(t)
	if err := cmdCompare([]string{"-in", path, "-k", "3"}); err != nil {
		t.Error(err)
	}
}

func TestCmdStats(t *testing.T) {
	path := writeTestGraph(t)
	if err := cmdStats([]string{"-in", path}); err != nil {
		t.Error(err)
	}
	if err := cmdStats([]string{"-in", filepath.Join(t.TempDir(), "missing.txt")}); err == nil {
		t.Error("missing file must error")
	}
}
