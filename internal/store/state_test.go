package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/graph"
)

// stateOp is one scripted edge update used to build deterministic
// maintainer states for the golden files.
type stateOp struct {
	insert bool
	u, v   int32
}

// stateGoldenCases pin the version-2 encoding byte for byte. The maintainer
// states are built by running the paper's deterministic update algorithms
// over fixed scripts (the evidence tables' slot layout is a pure function of
// the insertion history), covering the satellite matrix: an empty graph, a
// state fresh after a single update batch, and a post-compaction shape where
// deletions have left tombstones and dirty bookkeeping behind.
var stateGoldenCases = []struct {
	name  string
	lazy  bool
	lazyK int
	n     int32
	edges [][2]int32
	ops   []stateOp
	meta  SnapshotMeta
}{
	{name: "v2_local_empty", n: 0, meta: SnapshotMeta{}},
	{name: "v2_local_batch", n: 5,
		edges: [][2]int32{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}},
		ops:   []stateOp{{true, 1, 3}, {true, 0, 3}, {false, 2, 3}},
		meta:  SnapshotMeta{Mode: 0, Seq: 3}},
	{name: "v2_lazy_compacted", lazy: true, lazyK: 2, n: 6,
		edges: [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}, {4, 5}},
		ops:   []stateOp{{false, 0, 1}, {true, 1, 4}, {true, 0, 1}, {false, 2, 3}},
		meta:  SnapshotMeta{Mode: 1, LazyK: 2, Seq: 4}},
}

// buildStateCase runs case i's script and returns the frozen graph plus the
// exported maintainer state, exactly as a serving-layer checkpoint would.
func buildStateCase(t *testing.T, i int) (*graph.Graph, *MaintainerState) {
	t.Helper()
	tc := stateGoldenCases[i]
	g, err := graph.FromEdges(tc.n, tc.edges)
	if err != nil {
		t.Fatal(err)
	}
	apply := func(insert, del func(u, v int32) error) {
		for _, op := range tc.ops {
			var err error
			if op.insert {
				err = insert(op.u, op.v)
			} else {
				err = del(op.u, op.v)
			}
			if err != nil {
				t.Fatalf("case %s op %+v: %v", tc.name, op, err)
			}
		}
	}
	if tc.lazy {
		lt := dynamic.NewLazyTopK(g, tc.lazyK)
		apply(lt.InsertEdge, lt.DeleteEdge)
		return lt.Graph().Freeze(1), &MaintainerState{Lazy: lt.ExportState()}
	}
	m := dynamic.NewMaintainer(g)
	apply(m.InsertEdge, m.DeleteEdge)
	return m.Graph().Freeze(1), &MaintainerState{Local: m.ExportState()}
}

// TestStateGolden pins the version-2 encoding byte for byte and proves the
// golden files decode into a usable maintainer state: graph part, state
// section, and an actual state import over the decoded graph.
func TestStateGolden(t *testing.T) {
	for i, tc := range stateGoldenCases {
		t.Run(tc.name, func(t *testing.T) {
			g, st := buildStateCase(t, i)
			enc := EncodeSnapshotWithState(g, tc.meta, st)
			path := filepath.Join("testdata", tc.name+".snap")
			if *update {
				if err := os.WriteFile(path, enc, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(enc, golden) {
				t.Fatalf("encoding of %q drifted from golden file (%d vs %d bytes) — "+
					"a format change must bump SnapshotVersionState/StateVersion and regenerate testdata with -update",
					tc.name, len(enc), len(golden))
			}
			dg, meta, err := DecodeSnapshot(golden)
			if err != nil {
				t.Fatalf("decode golden graph: %v", err)
			}
			if meta != tc.meta {
				t.Fatalf("meta = %+v, want %+v", meta, tc.meta)
			}
			sameGraph(t, dg, g)
			dst, err := DecodeSnapshotState(golden)
			if err != nil {
				t.Fatalf("decode golden state: %v", err)
			}
			if tc.lazy {
				if dst.Lazy == nil {
					t.Fatal("lazy case decoded without lazy state")
				}
				if _, err := dynamic.NewLazyTopKFromState(dg, tc.lazyK, dst.Lazy); err != nil {
					t.Fatalf("import decoded lazy state: %v", err)
				}
			} else {
				if dst.Local == nil {
					t.Fatal("local case decoded without local state")
				}
				if _, err := dynamic.NewMaintainerFromState(dg, dst.Local); err != nil {
					t.Fatalf("import decoded local state: %v", err)
				}
			}
		})
	}
}

// TestStateRoundTripCanonical: the v2 encoding is canonical — decoding the
// graph and the state and re-encoding them reproduces the input bytes, which
// is the invariant the fuzz targets lean on.
func TestStateRoundTripCanonical(t *testing.T) {
	for i, tc := range stateGoldenCases {
		g, st := buildStateCase(t, i)
		enc := EncodeSnapshotWithState(g, tc.meta, st)
		dg, meta, err := DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		dst, err := DecodeSnapshotState(enc)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if re := EncodeSnapshotWithState(dg, meta, dst); !bytes.Equal(re, enc) {
			t.Fatalf("%s: re-encoding is not canonical (%d in, %d out)", tc.name, len(enc), len(re))
		}
	}
}

// resealState recomputes the state section's trailing CRC (the file's last
// four bytes) so corruption tests reach the check they aim at.
func resealState(data []byte) []byte {
	start := bytes.LastIndex(data, stateMagic[:])
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[start:len(data)-4]))
	return data
}

// TestStateSectionCorruption is the codec half of the corruption matrix:
// every defect must (a) leave DecodeSnapshot of the graph part untouched and
// (b) turn DecodeSnapshotState into a descriptive error — never a panic,
// never a silently wrong state. The serving layer maps exactly this split
// onto its fast-vs-rebuild recovery decision.
func TestStateSectionCorruption(t *testing.T) {
	g, st := buildStateCase(t, 1) // v2_local_batch
	valid := EncodeSnapshotWithState(g, stateGoldenCases[1].meta, st)
	secAt := bytes.LastIndex(valid, stateMagic[:])
	if secAt < 0 || secAt%8 != 0 {
		t.Fatalf("state section offset %d, want 8-aligned", secAt)
	}

	cases := map[string]struct {
		mutate func(c []byte) []byte
		want   string
	}{
		"truncated section": {
			mutate: func(c []byte) []byte { return c[:len(c)-10] },
			want:   "maintainer-state payload",
		},
		"section chopped at header": {
			mutate: func(c []byte) []byte { return c[:secAt+8] },
			want:   "truncated",
		},
		"flipped crc": {
			mutate: func(c []byte) []byte { c[len(c)-1] ^= 0x01; return c },
			want:   "checksum mismatch",
		},
		"flipped payload byte": {
			mutate: func(c []byte) []byte { c[secAt+stateHeaderLen+2] ^= 0x40; return c },
			want:   "checksum mismatch",
		},
		"state version bump": {
			mutate: func(c []byte) []byte {
				binary.LittleEndian.PutUint16(c[secAt+4:secAt+6], StateVersion+1)
				return resealState(c)
			},
			want: "unsupported maintainer-state version",
		},
		"bad state magic": {
			mutate: func(c []byte) []byte { c[secAt] ^= 0xFF; return c },
			want:   "magic",
		},
		"mode tag unknown": {
			mutate: func(c []byte) []byte { c[secAt+6] = 9; return resealState(c) },
			want:   "mode tag",
		},
		"evidence/CSR mismatch": {
			mutate: func(c []byte) []byte {
				binary.LittleEndian.PutUint32(c[secAt+8:secAt+12], 999)
				return resealState(c)
			},
			want: "snapshot graph has",
		},
		"nonzero padding": {
			mutate: func(c []byte) []byte {
				// The graph part of this case ends 4 bytes before the 8-aligned
				// section start; scribble on the pad.
				c[secAt-1] = 0xAA
				return c
			},
			want: "padding",
		},
	}
	for name, tc := range cases {
		c := tc.mutate(append([]byte(nil), valid...))
		if _, _, err := DecodeSnapshot(c); err != nil {
			t.Errorf("%s: graph part no longer decodes: %v", name, err)
			continue
		}
		_, err := DecodeSnapshotState(c)
		if err == nil {
			t.Errorf("%s: corrupt state accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.want)
		}
	}
}

// TestCheckpointWithStateStoreCycle drives the full store lifecycle: create
// (v1), checkpoint with state (v2), reopen → the recovered state imports and
// matches the checkpointed maintainer, and the WAL tail appended after the
// checkpoint is handed back for replay on top of it.
func TestCheckpointWithStateStoreCycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	g, st := buildStateCase(t, 1)
	m0, err := dynamic.NewMaintainerFromState(g, st.Local)
	if err != nil {
		t.Fatal(err)
	}

	s, err := Create(dir, g, SnapshotMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendBatch(true, [][2]int32{{1, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointWithState(g, SnapshotMeta{Seq: s.Seq()}, st); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendBatch(false, [][2]int32{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.StateErr != nil {
		t.Fatalf("state decode error: %v", rec.StateErr)
	}
	if rec.State == nil || rec.State.Local == nil {
		t.Fatal("checkpointed maintainer state not recovered")
	}
	if len(rec.Tail) != 1 || rec.Tail[0].Insert {
		t.Fatalf("tail = %+v, want the one post-checkpoint delete", rec.Tail)
	}
	m1, err := dynamic.NewMaintainerFromState(rec.Graph, rec.State.Local)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < rec.Graph.NumVertices(); v++ {
		if m0.CB(v) != m1.CB(v) {
			t.Fatalf("recovered CB(%d) = %v, want %v", v, m1.CB(v), m0.CB(v))
		}
	}
}
