package ego

import "repro/internal/graph"

// ReferenceBFS computes CB(u) by literally executing Definition 2: it
// materializes the ego network GE(u), counts shortest paths between every
// pair of u's neighbors with BFS, and sums g_uv(u)/g_uv. It shares no code
// or combinatorial shortcut with the production kernels — it does not assume
// pairwise distances are ≤ 2 — which makes it an independent oracle for the
// cross-validation tests. O(d³) per vertex; use on small graphs only.
func ReferenceBFS(a graph.Adjacency, u int32) float64 {
	nbrs := a.Neighbors(u)
	d := len(nbrs)
	// Local ids: 0..d-1 for neighbors, d for u itself.
	localOf := make(map[int32]int, d+1)
	for i, v := range nbrs {
		localOf[v] = i
	}
	localOf[u] = d
	adj := make([][]int, d+1)
	for i, v := range nbrs {
		adj[i] = append(adj[i], d) // spoke to u
		adj[d] = append(adj[d], i)
		for _, w := range a.Neighbors(v) {
			if j, ok := localOf[w]; ok && j != d {
				adj[i] = append(adj[i], j)
			}
		}
	}

	// BFS from every ego vertex, recording distances and path counts.
	nv := d + 1
	dist := make([][]int, nv)
	sigma := make([][]float64, nv)
	for s := 0; s < nv; s++ {
		dist[s] = make([]int, nv)
		sigma[s] = make([]float64, nv)
		for i := range dist[s] {
			dist[s][i] = -1
		}
		dist[s][s] = 0
		sigma[s][s] = 1
		queue := []int{s}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range adj[x] {
				if dist[s][y] < 0 {
					dist[s][y] = dist[s][x] + 1
					queue = append(queue, y)
				}
				if dist[s][y] == dist[s][x]+1 {
					sigma[s][y] += sigma[s][x]
				}
			}
		}
	}

	// Sum b_st(u) over unordered neighbor pairs: the fraction of shortest
	// s-t paths on which u is an interior vertex.
	cb := 0.0
	for s := 0; s < d; s++ {
		for t := s + 1; t < d; t++ {
			if dist[s][t] < 0 || sigma[s][t] == 0 {
				continue
			}
			if dist[s][d] >= 0 && dist[d][t] >= 0 && dist[s][d]+dist[d][t] == dist[s][t] {
				cb += sigma[s][d] * sigma[d][t] / sigma[s][t]
			}
		}
	}
	return cb
}

// ComputeAllReference applies ReferenceBFS to every vertex. Test helper for
// whole-graph cross-validation on small inputs.
func ComputeAllReference(a graph.Adjacency) []float64 {
	n := a.NumVertices()
	out := make([]float64, n)
	for v := int32(0); v < n; v++ {
		out[v] = ReferenceBFS(a, v)
	}
	return out
}
