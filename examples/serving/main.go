// Serving walkthrough: the egobwd HTTP API end to end (internal/server).
//
// Starts the query-serving subsystem in-process on an ephemeral port, then
// drives it exactly the way an external client would: load a graph, query
// top-k, stream in edge updates while concurrent readers keep querying, and
// read back the cache/update accounting. Every request and response is
// printed, so this doubles as living API documentation.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/server"
)

func main() {
	// Start egobwd's handler on an ephemeral port (exactly what the
	// daemon binary serves; run `egobwd -addr :8080` for the real thing).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := server.New(server.WithLogger(func(string, ...any) {}))
	go http.Serve(ln, srv.Handler()) //nolint:errcheck // dies with the process
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// 1. Load a generated social graph, exact-maintainer mode.
	call("POST", base+"/graphs", `{
	  "name": "social",
	  "generator": {"model": "ba", "n": 4000, "mper": 4, "seed": 7}
	}`)

	// 2. Top-k queries — the second identical one is a cache hit.
	call("GET", base+"/graphs/social/topk?k=5", "")
	call("GET", base+"/graphs/social/topk?k=5", "")

	// 3. A per-vertex query.
	call("GET", base+"/graphs/social/vertices/0/ego-betweenness", "")

	// 4. Edge updates streaming in while readers keep querying: the
	// readers are never blocked — they read the previous immutable
	// snapshot until the writer publishes the next one.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			resp, err := http.Get(base + "/graphs/social/topk?k=5")
			if err != nil {
				panic(err)
			}
			resp.Body.Close()
		}
	}()
	call("POST", base+"/graphs/social/edges", `{"edges": [[1, 3999], [2, 3998], [0, 1]]}`)
	call("DELETE", base+"/graphs/social/edges", `{"edges": [[1, 3999]]}`)
	wg.Wait()

	// 5. The epoch moved, so the old cache is gone with its snapshot; this
	// query is only "cached" if one of the concurrent readers above
	// already warmed the new snapshot. The accounting shows up in stats.
	call("GET", base+"/graphs/social/topk?k=5", "")
	call("GET", base+"/graphs/social/stats", "")
	call("GET", base+"/healthz", "")

	// 5b. Delta-overlay snapshots under a write burst (DESIGN.md §10).
	// Each drain publishes an O(batch) copy-on-write overlay — watch
	// overlay_depth climb and publish_ms stay tiny — until the chain hits
	// the compaction policy (default: depth 8) and the background
	// compactor folds it into a fresh base CSR: compactions advances and
	// overlay_depth drops, all without ever blocking the writers.
	fmt.Println("\n--- write burst: overlay publication + background compaction ---")
	for i := 0; i < 12; i++ {
		u, v := 10+i, 3000+i
		body := fmt.Sprintf(`{"edges": [[%d, %d]]}`, u, v)
		resp, err := http.Post(base+"/graphs/social/edges", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			panic(err)
		}
		resp.Body.Close()
		if i == 5 || i == 11 {
			call("GET", base+"/graphs/social", "") // note overlay_depth / publish_ms
		}
	}
	// The compactor runs off the write path; poll briefly until its fold
	// lands (compactions > 0 and the served chain is short again).
	for i := 0; i < 100; i++ {
		resp, err := http.Get(base + "/graphs/social")
		if err != nil {
			panic(err)
		}
		var info struct {
			Compactions  int64 `json:"compactions"`
			OverlayDepth int   `json:"overlay_depth"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			panic(err)
		}
		resp.Body.Close()
		if info.Compactions > 0 && info.OverlayDepth < 8 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	call("GET", base+"/graphs/social", "") // note compactions / compact_ms

	// 6. Durability (README "Durable graphs", DESIGN.md §8): the same flow
	// against a -data-dir server, killed without shutdown and restarted.
	fmt.Println("\n--- durable restart (egobwd -data-dir) ---")
	dataDir, err := os.MkdirTemp("", "egobwd-example-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dataDir)

	durableOpts := func() []server.Option {
		return []server.Option{
			server.WithLogger(func(string, ...any) {}),
			server.WithRegistryOptions(
				server.WithDataDir(dataDir),
				server.WithCheckpointPolicy(2, 1<<20), // checkpoint every 2 batches
			),
		}
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv2 := server.New(durableOpts()...)
	go http.Serve(ln2, srv2.Handler()) //nolint:errcheck // dies with the listener
	base2 := "http://" + ln2.Addr().String()

	call("POST", base2+"/graphs", `{
	  "name": "durable",
	  "generator": {"model": "ba", "n": 2000, "mper": 3, "seed": 11}
	}`)
	// Three batches: the WAL is appended before each apply, and the third
	// lands after an automatic checkpoint (policy: every 2 batches).
	call("POST", base2+"/graphs/durable/edges", `{"edges": [[5, 1999]]}`)
	call("POST", base2+"/graphs/durable/edges", `{"edges": [[6, 1998]]}`)
	call("POST", base2+"/graphs/durable/edges", `{"edges": [[7, 1997]]}`)
	call("GET", base2+"/graphs/durable/topk?k=5", "")
	call("GET", base2+"/graphs/durable", "") // note wal_seq / snapshot_seq

	// "kill -9": close the listener with no shutdown of any kind — the WAL
	// and snapshot on disk are all that survives. Closing the registry
	// only releases the per-directory store locks, which a real process
	// death would release via the kernel; it flushes nothing.
	ln2.Close()
	srv2.Registry().Close()

	// Restart: a fresh server over the same data dir recovers the graph —
	// snapshot first, then the WAL tail replayed through the maintainer —
	// and serves the same top-k as before the kill.
	ln3, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv3 := server.New(durableOpts()...)
	if _, err := srv3.Registry().Recover(); err != nil {
		panic(err)
	}
	go http.Serve(ln3, srv3.Handler()) //nolint:errcheck // dies with the process
	base3 := "http://" + ln3.Addr().String()
	call("GET", base3+"/graphs/durable", "")
	call("GET", base3+"/graphs/durable/topk?k=5", "") // same answer as above
}

// call performs one HTTP request and pretty-prints the exchange.
func call(method, url, body string) {
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		panic(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, raw); err != nil {
		compact.Write(raw)
	}
	out := compact.String()
	if len(out) > 300 {
		out = out[:300] + "…"
	}
	fmt.Printf("\n%s %s\n  → %d %s\n", method, url, resp.StatusCode, out)
}
