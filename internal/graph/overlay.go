package graph

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Overlay is a copy-on-write read view: an immutable base CSR plus a short
// chain of delta layers, each holding the fully rebuilt sorted adjacency of
// only the vertices dirtied by one publication. Looking up a vertex walks
// the chain newest-first and falls back to the base, so every read — and
// therefore every kernel, search, and serving query — sees exactly the
// graph the newest layer describes while construction costs O(dirty), not
// O(n + m).
//
// Overlays are immutable once constructed and safe for concurrent readers;
// layering a new overlay on top never mutates the ones below. The chain is
// kept short by compaction (Materialize), which flattens everything into a
// fresh standalone CSR off the hot path.
type Overlay struct {
	base   *Graph
	parent *Overlay          // next-older layer; nil when delta sits on base
	delta  map[int32][]int32 // vertex -> rebuilt sorted adjacency at this layer
	n      int32
	m      int64
	depth  int32
	dirty  int // Σ layer sizes down the chain (upper bound on distinct dirty vertices)

	// idx is the dirty index shared by every overlay layered (transitively)
	// on the same base: one bit per base vertex, set when any layer of the
	// family rebuilt that vertex. A clean bit proves the base row is
	// current, so the overwhelming majority of reads at realistic batch
	// sizes cost one word test before falling through to the base CSR —
	// no per-layer map probes.
	idx *dirtyIndex

	// maxDeg is computed on first demand: deletions can lower the maximum
	// below the base's, so the exact value needs an O(n) scan, which only
	// the statistics path wants.
	maxDegOnce sync.Once
	maxDeg     int32
}

// dirtyIndex is a grow-only bitset over base vertex ids, shared across an
// overlay chain family. Writers OR bits in while publishing a new layer
// (atomically — readers of previously published overlays in the family may
// probe concurrently); readers treat a set bit as "walk the delta chain".
// Bits are never cleared, so a reader of an older overlay can see a bit
// set by a newer layer it doesn't contain — a false positive that only
// routes the read through the (correct) slow path.
type dirtyIndex struct {
	words []uint64
	limit int32 // ids ≥ limit (grown past the base) take the slow path
}

func newDirtyIndex(n int32) *dirtyIndex {
	return &dirtyIndex{words: make([]uint64, (int(n)+63)>>6), limit: n}
}

// markAll sets the bits of every vertex rebuilt by a new layer.
func (d *dirtyIndex) markAll(delta map[int32][]int32) {
	for v := range delta {
		if uint32(v) < uint32(d.limit) {
			atomic.OrUint64(&d.words[uint32(v)>>6], 1<<(uint32(v)&63))
		}
	}
}

// clean reports whether v is covered by the index and untouched by every
// layer of the family — in which case the base adjacency is authoritative.
// The unsigned compare sends negative ids down the slow path unchanged.
func (d *dirtyIndex) clean(v int32) bool {
	return uint32(v) < uint32(d.limit) &&
		atomic.LoadUint64(&d.words[uint32(v)>>6])&(1<<(uint32(v)&63)) == 0
}

// NewOverlay layers delta on a previous view, which must be either a frozen
// *Graph (the overlay then sits directly on the base) or an *Overlay (the
// chain grows by one layer). delta maps each dirtied vertex to its complete
// rebuilt neighbor list — sorted ascending, owned by the overlay from here
// on. n and m are the vertex and undirected-edge counts of the graph the
// new layer describes; n may exceed the base's when updates grew the vertex
// set (vertices in [base.n, n) absent from every delta are isolated).
func NewOverlay(prev View, n int32, m int64, delta map[int32][]int32) *Overlay {
	o := &Overlay{delta: delta, n: n, m: m}
	switch p := prev.(type) {
	case *Graph:
		o.base = p
		o.depth = 1
		o.dirty = len(delta)
		o.idx = newDirtyIndex(p.n)
	case *Overlay:
		o.base = p.base
		o.parent = p
		o.depth = p.depth + 1
		o.dirty = p.dirty + len(delta)
		o.idx = p.idx
	default:
		panic(fmt.Sprintf("graph: overlay base must be *Graph or *Overlay, got %T", prev))
	}
	o.idx.markAll(delta)
	return o
}

// Base returns the full CSR underneath the whole chain.
func (o *Overlay) Base() *Graph { return o.base }

// Depth returns the number of delta layers between this view and its base —
// the chain length a Neighbors miss walks, and one of the two compaction
// triggers.
func (o *Overlay) Depth() int { return int(o.depth) }

// DirtyVertices returns the total size of all delta layers down the chain.
// Re-dirtied vertices count once per layer, so this is an upper bound on the
// distinct vertices that differ from the base — cheap to maintain and good
// enough for the dirty-ratio compaction trigger.
func (o *Overlay) DirtyVertices() int { return o.dirty }

// NumVertices returns the number of vertices.
func (o *Overlay) NumVertices() int32 { return o.n }

// NumEdges returns the number of undirected edges.
func (o *Overlay) NumEdges() int64 { return o.m }

// Neighbors returns the sorted neighbor list of v: the newest delta that
// rebuilt v wins, otherwise the base list. Callers must not modify the
// returned slice.
//
// Vertices untouched by every layer of the chain family — the overwhelming
// majority at realistic batch sizes — resolve through the shared dirty
// index in one word test, returning the base CSR slice without walking the
// chain or probing any delta map.
func (o *Overlay) Neighbors(v int32) []int32 {
	if o.idx.clean(v) {
		return o.base.Neighbors(v)
	}
	for l := o; l != nil; l = l.parent {
		if nbrs, ok := l.delta[v]; ok {
			return nbrs
		}
	}
	if v < o.base.n {
		return o.base.Neighbors(v)
	}
	return nil // grown past the base and never touched: isolated
}

// Degree returns the degree of v.
func (o *Overlay) Degree(v int32) int32 { return int32(len(o.Neighbors(v))) }

// HasEdge reports whether the undirected edge (u, v) is present, by binary
// search of the smaller neighbor list.
func (o *Overlay) HasEdge(u, v int32) bool {
	if u == v || u < 0 || v < 0 || u >= o.n || v >= o.n {
		return false
	}
	nu, nv := o.Neighbors(u), o.Neighbors(v)
	if len(nu) > len(nv) {
		nu, v = nv, u
	}
	return containsSorted(nu, v)
}

// MaxDegree returns the maximum degree, computed once on first demand (the
// exact value needs a full scan — deletions may have lowered it below the
// base's maximum).
func (o *Overlay) MaxDegree() int32 {
	o.maxDegOnce.Do(func() {
		var mx int32
		for v := int32(0); v < o.n; v++ {
			if d := o.Degree(v); d > mx {
				mx = d
			}
		}
		o.maxDeg = mx
	})
	return o.maxDeg
}

// Materialize flattens the overlay into a fresh standalone CSR — the
// compaction step. It reads only immutable state, so it runs without any
// lock, concurrently with readers and with writers publishing further
// layers on top; up to `workers` goroutines share the row copy.
func (o *Overlay) Materialize(workers int) *Graph {
	return exportCSR(o.n, o.m, o.Neighbors, workers)
}

// Rebase re-anchors the layers published after `at` onto g, which must hold
// exactly the graph `at` described (its Materialize result). It walks the
// chain newest-first collecting layers until it reaches `at` — the compacted
// overlay itself or the old base — and rebuilds those layers, sharing their
// delta maps, on the new base. ok is false when `at` is not in this chain
// (a concurrent compaction already replaced it), in which case the caller
// must discard g.
func (o *Overlay) Rebase(at View, g *Graph) (v View, ok bool) {
	var layers []*Overlay
	cur := o
	for View(cur) != at {
		layers = append(layers, cur)
		if cur.parent == nil {
			if View(cur.base) != at {
				return nil, false
			}
			break
		}
		cur = cur.parent
	}
	var nv View = g
	for i := len(layers) - 1; i >= 0; i-- {
		l := layers[i]
		nv = NewOverlay(nv, l.n, l.m, l.delta)
	}
	return nv, true
}

// exportCSR builds an immutable CSR graph of n vertices and m undirected
// edges from per-vertex sorted neighbor lists, sharding the row copy across
// up to `workers` goroutines. It performs no sorting or validation — the
// rows must already satisfy the CSR contract — and is shared by
// DynGraph.Freeze and Overlay.Materialize.
func exportCSR(n int32, m int64, row func(int32) []int32, workers int) *Graph {
	offsets := make([]int64, n+1)
	var maxDeg int32
	for v := int32(0); v < n; v++ {
		deg := int32(len(row(v)))
		offsets[v+1] = offsets[v] + int64(deg)
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	adj := make([]int32, offsets[n])
	copyRows := func(lo, hi int32) {
		for v := lo; v < hi; v++ {
			copy(adj[offsets[v]:offsets[v+1]], row(v))
		}
	}
	if workers <= 1 || n < 1024 {
		copyRows(0, n)
	} else {
		var wg sync.WaitGroup
		chunk := (n + int32(workers) - 1) / int32(workers)
		for lo := int32(0); lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int32) {
				defer wg.Done()
				copyRows(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	return &Graph{offsets: offsets, adj: adj, n: n, m: m, maxDeg: maxDeg}
}
