package server

import (
	"math"
	"testing"

	"repro/internal/ego"
	"repro/internal/gen"
)

// TestParallelBuildMatchesSequential checks that a registry with a multi-
// worker build budget serves the same scores as a single-worker one, and
// that the build telemetry (worker count, snapshot build duration) is
// surfaced through GraphInfo across epochs.
func TestParallelBuildMatchesSequential(t *testing.T) {
	g := gen.BarabasiAlbert(800, 4, 99)
	want := ego.ComputeAll(g)

	for _, workers := range []int{1, 4} {
		reg := NewRegistry(WithBuildWorkers(workers))
		info, err := reg.Add("g", g, ModeLocal, 0)
		if err != nil {
			t.Fatalf("workers=%d: Add: %v", workers, err)
		}
		if info.BuildWorkers != workers {
			t.Errorf("workers=%d: BuildWorkers = %d", workers, info.BuildWorkers)
		}
		if info.SnapshotBuildMS < 0 {
			t.Errorf("workers=%d: negative SnapshotBuildMS %v", workers, info.SnapshotBuildMS)
		}
		res, err := reg.TopK("g", 10, AlgoScores, 0)
		if err != nil {
			t.Fatalf("workers=%d: TopK: %v", workers, err)
		}
		for _, r := range res.Results {
			if math.Abs(r.CB-want[r.V]) > 1e-9 {
				t.Errorf("workers=%d: CB(%d) = %v, want %v", workers, r.V, r.CB, want[r.V])
			}
		}

		// A write batch publishes a new snapshot; its build telemetry
		// must carry the same worker budget.
		up, err := reg.ApplyEdges("g", g.Edges()[:2], false)
		if err != nil {
			t.Fatalf("workers=%d: ApplyEdges: %v", workers, err)
		}
		if up.Applied == 0 {
			t.Fatalf("workers=%d: no edges applied", workers)
		}
		info2, err := reg.Info("g")
		if err != nil {
			t.Fatalf("workers=%d: Info: %v", workers, err)
		}
		if info2.Epoch != info.Epoch+1 {
			t.Errorf("workers=%d: epoch = %d, want %d", workers, info2.Epoch, info.Epoch+1)
		}
		if info2.BuildWorkers != workers {
			t.Errorf("workers=%d: post-batch BuildWorkers = %d", workers, info2.BuildWorkers)
		}
		// Post-batch snapshot must still serve exact maintained scores.
		vres, err := reg.EgoBetweenness("g", 5)
		if err != nil {
			t.Fatalf("workers=%d: EgoBetweenness: %v", workers, err)
		}
		if vres.CB < 0 || vres.CB > vres.Bound+1e-9 {
			t.Errorf("workers=%d: CB(5) = %v outside [0, %v]", workers, vres.CB, vres.Bound)
		}
	}
}

// TestParallelBuildLazyMode checks the lazy mode's parallel initial build.
func TestParallelBuildLazyMode(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, 17)
	seq := NewRegistry(WithBuildWorkers(1))
	par := NewRegistry(WithBuildWorkers(4))
	if _, err := seq.Add("g", g, ModeLazy, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := par.Add("g", g, ModeLazy, 8); err != nil {
		t.Fatal(err)
	}
	a, err := seq.TopK("g", 8, AlgoLazy, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.TopK("g", 8, AlgoLazy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("result sizes differ: %d vs %d", len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if a.Results[i].V != b.Results[i].V || math.Abs(a.Results[i].CB-b.Results[i].CB) > 1e-9 {
			t.Errorf("rank %d: sequential %v, parallel %v", i, a.Results[i], b.Results[i])
		}
	}
}
