package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/dynamic"
	"repro/internal/graph"
)

// Maintainer-state section of a version-2 snapshot (DESIGN.md §11). A v2
// snapshot is a v1-shaped graph part (own trailing CRC, version field 2)
// followed by zero padding to the next 8-byte boundary and one state section:
//
//	[S+0]  magic      [4]byte "EBMS"
//	[S+4]  version    uint16 (StateVersion)
//	[S+6]  mode       uint8 (0 = local/exact, 1 = lazy)
//	[S+7]  reserved   uint8 (must be 0)
//	[S+8]  n          uint32 (must equal the graph part's n)
//	[S+12] reserved   uint32 (must be 0)
//	[S+16] payloadLen uint64, then payloadLen bytes of payload
//	[..]   crc        uint32 (IEEE, over the section from S through payload)
//
// The section starts 8-aligned and its float64/uint64 arrays sit at 8-aligned
// file offsets, so the decoder views them zero-copy in the read buffer
// (lebytes.go) — state decode costs a validation scan, not a conversion pass.
// The graph part's CRC does not cover the section and the section's CRC does
// not cover the graph, so a corrupt or torn state section never blocks
// loading the CSR — recovery falls back to the rebuild path instead.
//
// Local (mode 0) payload — the flattened dynamic.LocalState:
//
//	scores     n × float64
//	tableSizes n × uint32, then 4 zero bytes if n is odd (8-align the keys)
//	totalSlots uint64 = Σ tableSizes
//	keys       totalSlots × uint64  (raw open-addressing slot arrays,
//	vals       totalSlots × int32    empty/tombstone slots included)
//	dirtyCount uint32
//	dirty      dirtyCount × int32
//
// Lazy (mode 1) payload — the flattened dynamic.LazyState:
//
//	cached      n × float64
//	stale       n × uint8 (0 or 1), then zero bytes to the next 4-boundary
//	memberCount uint32
//	members     memberCount × int32
const (
	// StateVersion is the maintainer-state section format version.
	StateVersion = 1
	// stateHeaderLen covers magic through payloadLen.
	stateHeaderLen = 24

	stateModeLocal uint8 = 0
	stateModeLazy  uint8 = 1
)

var stateMagic = [4]byte{'E', 'B', 'M', 'S'}

// MaintainerState is the decoded maintainer-state section: exactly one of
// the two fields is set, matching the maintenance mode the snapshot was
// checkpointed under.
type MaintainerState struct {
	Local *dynamic.LocalState
	Lazy  *dynamic.LazyState
}

// empty reports whether no state is carried at all.
func (st *MaintainerState) empty() bool {
	return st == nil || (st.Local == nil && st.Lazy == nil)
}

// EncodeSnapshotWithState serializes g, its metadata, and the maintainer
// state into a version-2 snapshot. A nil (or empty) state degrades to the
// version-1 format — EncodeSnapshot — so stores that never checkpointed
// maintainer state keep producing bit-identical v1 files.
func EncodeSnapshotWithState(g *graph.Graph, meta SnapshotMeta, st *MaintainerState) []byte {
	return EncodeSnapshotSections(g, meta, st, nil)
}

// appendStateSection appends the framed state section to buf (whose length
// must already be 8-aligned — the encoder pads; the alignment is what makes
// the section's word arrays mappable).
func appendStateSection(buf []byte, n uint32, st *MaintainerState) []byte {
	start := len(buf)
	buf = append(buf, stateMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, StateVersion)
	if st.Local != nil {
		buf = append(buf, stateModeLocal, 0)
	} else {
		buf = append(buf, stateModeLazy, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, n)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	lenAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, 0) // payloadLen backfilled
	payloadStart := len(buf)
	if st.Local != nil {
		buf = appendLocalPayload(buf, st.Local)
	} else {
		buf = appendLazyPayload(buf, st.Lazy)
	}
	binary.LittleEndian.PutUint64(buf[lenAt:lenAt+8], uint64(len(buf)-payloadStart))
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// stateSectionLen is the encoded byte length of the state section for an
// n-vertex graph: header, payload, and section CRC. The encoder preallocates
// with it so a checkpoint's image is built without buffer regrowth.
func stateSectionLen(n int, st *MaintainerState) int {
	if st.Local != nil {
		pad := 0
		if n%2 == 1 {
			pad = 4
		}
		return stateHeaderLen + 8*n + 4*n + pad + 8 + 12*len(st.Local.Keys) + 4 + 4*len(st.Local.Dirty) + 4
	}
	pad := (4 - (9*n)%4) % 4
	return stateHeaderLen + 8*n + n + pad + 4 + 4*len(st.Lazy.Members) + 4
}

func appendLocalPayload(buf []byte, st *dynamic.LocalState) []byte {
	buf = appendWords(buf, st.Scores)
	buf = appendWords(buf, st.TableSizes)
	if len(st.TableSizes)%2 == 1 {
		buf = append(buf, 0, 0, 0, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(st.Keys)))
	buf = appendWords(buf, st.Keys)
	buf = appendWords(buf, st.Vals)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Dirty)))
	return appendWords(buf, st.Dirty)
}

func appendLazyPayload(buf []byte, st *dynamic.LazyState) []byte {
	buf = appendWords(buf, st.Cached)
	for _, s := range st.Stale {
		if s {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	for len(buf)%4 != 0 {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Members)))
	return appendWords(buf, st.Members)
}

// DecodeSnapshotState extracts and decodes the maintainer-state section of a
// snapshot image. For a version-1 snapshot it returns (nil, nil): no section
// exists and none is expected. For a version-2 snapshot it returns the state
// or an error describing why the section is unusable (truncated, checksum
// mismatch, version skew, framing violation) — the caller treats any error
// as "rebuild instead". The graph part is only skimmed for its lengths, so
// this composes with DecodeSnapshot, which validates it fully; like every
// decoder at this trust boundary it never panics and bounds every allocation
// by the input length.
//
// On little-endian hosts the returned state's arrays alias data zero-copy
// (the point of the section's 8-aligned layout): the caller hands the buffer
// over to whatever consumes the state — the imported maintainer mutates and
// retains it — and must not reuse or modify data afterwards. Each recovery
// reads its own buffer, so this costs nothing and saves the copy of the
// largest thing in the file.
func DecodeSnapshotState(data []byte) (*MaintainerState, error) {
	version, n, graphLen, err := snapshotLayout(data)
	if err != nil {
		return nil, err
	}
	if version == SnapshotVersion {
		return nil, nil
	}
	start := graphLen
	for start%8 != 0 {
		if start >= uint64(len(data)) || data[start] != 0 {
			return nil, fmt.Errorf("store: maintainer state: nonzero padding after graph part")
		}
		start++
	}
	if uint64(len(data))-start < stateHeaderLen+4 {
		return nil, fmt.Errorf("store: maintainer state truncated (%d bytes after graph part)", uint64(len(data))-start)
	}
	sec := data[start:]
	if [4]byte(sec[0:4]) != stateMagic {
		if m := [4]byte(sec[0:4]); m == permMagic || m == stampsMagic {
			// A version-2 snapshot whose first section is the relabel
			// permutation or the temporal section: no maintainer state was
			// checkpointed and none is expected.
			return nil, nil
		}
		return nil, fmt.Errorf("store: bad maintainer-state magic %q", sec[0:4])
	}
	if v := binary.LittleEndian.Uint16(sec[4:6]); v != StateVersion {
		return nil, fmt.Errorf("store: unsupported maintainer-state version %d (this build reads %d)", v, StateVersion)
	}
	mode := sec[6]
	if sec[7] != 0 || binary.LittleEndian.Uint32(sec[12:16]) != 0 {
		return nil, fmt.Errorf("store: corrupt maintainer-state header (reserved fields)")
	}
	if secN := binary.LittleEndian.Uint32(sec[8:12]); uint64(secN) != n {
		return nil, fmt.Errorf("store: maintainer state covers n=%d, snapshot graph has n=%d", secN, n)
	}
	// The section frames its own length; bytes beyond it belong to later
	// sections (the relabel permutation) and are not examined here.
	payloadLen := binary.LittleEndian.Uint64(sec[16:24])
	if payloadLen > uint64(len(sec))-stateHeaderLen-4 {
		return nil, fmt.Errorf("store: maintainer-state payload frames %d bytes, %d remain",
			payloadLen, uint64(len(sec))-stateHeaderLen-4)
	}
	sec = sec[:stateHeaderLen+payloadLen+4]
	body, crcBytes := sec[:stateHeaderLen+payloadLen], sec[stateHeaderLen+payloadLen:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(crcBytes); got != want {
		return nil, fmt.Errorf("store: maintainer-state checksum mismatch (file %#x, computed %#x)", want, got)
	}
	payload := body[stateHeaderLen:]
	switch mode {
	case stateModeLocal:
		st, err := decodeLocalPayload(payload, n)
		if err != nil {
			return nil, err
		}
		return &MaintainerState{Local: st}, nil
	case stateModeLazy:
		st, err := decodeLazyPayload(payload, n)
		if err != nil {
			return nil, err
		}
		return &MaintainerState{Lazy: st}, nil
	default:
		return nil, fmt.Errorf("store: unknown maintainer-state mode tag %d", mode)
	}
}

func decodeLocalPayload(payload []byte, n uint64) (*dynamic.LocalState, error) {
	pad := uint64(0)
	if n%2 == 1 {
		pad = 4
	}
	fixed := 8*n + 4*n + pad + 8 // scores, tableSizes, pad, totalSlots
	if uint64(len(payload)) < fixed {
		return nil, fmt.Errorf("store: maintainer state: local payload %d bytes, fixed part needs %d", len(payload), fixed)
	}
	st := &dynamic.LocalState{
		Scores:     aliasWords[float64](payload, n),
		TableSizes: aliasWords[uint32](payload[8*n:], n),
	}
	pos := 8*n + 4*n
	var totalSlots uint64
	for _, sz := range st.TableSizes {
		totalSlots += uint64(sz)
	}
	for i := uint64(0); i < pad; i++ {
		if payload[pos] != 0 {
			return nil, fmt.Errorf("store: maintainer state: nonzero alignment padding")
		}
		pos++
	}
	if claimed := binary.LittleEndian.Uint64(payload[pos : pos+8]); claimed != totalSlots {
		return nil, fmt.Errorf("store: maintainer state frames %d evidence slots, tables sum to %d", claimed, totalSlots)
	}
	pos += 8
	// 12 bytes per slot plus the dirty-count field must fit in what remains;
	// checking via division (no overflowable multiply) before viewing keeps
	// every slice bounded by the input length.
	rest := uint64(len(payload)) - pos
	if rest < 4 || totalSlots > (rest-4)/12 {
		return nil, fmt.Errorf("store: maintainer state: %d evidence slots overrun the payload", totalSlots)
	}
	st.Keys = aliasWords[uint64](payload[pos:], totalSlots)
	pos += 8 * totalSlots
	st.Vals = aliasWords[int32](payload[pos:], totalSlots)
	pos += 4 * totalSlots
	dirtyCount := uint64(binary.LittleEndian.Uint32(payload[pos : pos+4]))
	pos += 4
	if uint64(len(payload))-pos != 4*dirtyCount {
		return nil, fmt.Errorf("store: maintainer state frames %d dirty scores, %d bytes remain", dirtyCount, uint64(len(payload))-pos)
	}
	st.Dirty = aliasWords[int32](payload[pos:], dirtyCount)
	return st, nil
}

func decodeLazyPayload(payload []byte, n uint64) (*dynamic.LazyState, error) {
	fixed := 8*n + n
	pad := (4 - fixed%4) % 4
	fixed += pad + 4 // alignment, memberCount
	if uint64(len(payload)) < fixed {
		return nil, fmt.Errorf("store: maintainer state: lazy payload %d bytes, fixed part needs %d", len(payload), fixed)
	}
	// Every stale byte must be 0/1 before the array may be viewed as []bool
	// (any other bit pattern in a Go bool is undefined behavior).
	for pos := 8 * n; pos < 9*n; pos++ {
		if payload[pos] > 1 {
			return nil, fmt.Errorf("store: maintainer state: staleness flag %#x is not 0/1", payload[pos])
		}
	}
	st := &dynamic.LazyState{
		Cached: aliasWords[float64](payload, n),
		Stale:  aliasBools(payload[8*n:], n),
	}
	pos := 9 * n
	for i := uint64(0); i < pad; i++ {
		if payload[pos] != 0 {
			return nil, fmt.Errorf("store: maintainer state: nonzero alignment padding")
		}
		pos++
	}
	memberCount := uint64(binary.LittleEndian.Uint32(payload[pos : pos+4]))
	pos += 4
	if uint64(len(payload))-pos != 4*memberCount {
		return nil, fmt.Errorf("store: maintainer state frames %d members, %d bytes remain", memberCount, uint64(len(payload))-pos)
	}
	st.Members = aliasWords[int32](payload[pos:], memberCount)
	return st, nil
}
