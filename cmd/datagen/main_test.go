package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

func TestBuildModels(t *testing.T) {
	for _, model := range []string{"er", "ba", "chunglu", "ws", "affiliation"} {
		g, err := build("", model, 200, 3, 2.5, 6, 0.1, 7)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if g.NumVertices() != 200 {
			t.Errorf("%s: n=%d", model, g.NumVertices())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", model, err)
		}
	}
}

func TestBuildDataset(t *testing.T) {
	g, err := build("ir", "", 0, 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty dataset")
	}
}

// TestTemporalStream pins the -temporal contract: every edge exactly once,
// stamps within [arrival−skew, arrival], per-batch arrival spacing, and a
// byte-identical stream on replay with the same seed.
func TestTemporalStream(t *testing.T) {
	g, err := build("", "ba", 100, 3, 0, 0, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	const (
		batch    = 16
		startMS  = 5_000
		interval = 250
		skew     = 1_000
	)
	var buf bytes.Buffer
	nb, err := writeTemporal(&buf, g, batch, startMS, interval, skew, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := int(g.NumEdges())
	wantBatches := (want + batch - 1) / batch
	if nb != wantBatches {
		t.Fatalf("batches = %d, want %d", nb, wantBatches)
	}

	seen := map[[2]int32]bool{}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for i := 0; sc.Scan(); i++ {
		var b streamBatch
		if err := json.Unmarshal(sc.Bytes(), &b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if b.Ts != 0 {
			t.Fatalf("batch %d: skewed stream must use per-edge stamps, got ts=%d", i, b.Ts)
		}
		if len(b.Stamps) != len(b.Edges) {
			t.Fatalf("batch %d: %d stamps for %d edges", i, len(b.Stamps), len(b.Edges))
		}
		arrival := int64(startMS + i*interval)
		for j, e := range b.Edges {
			if seen[e] {
				t.Fatalf("batch %d: duplicate edge %v", i, e)
			}
			seen[e] = true
			if s := b.Stamps[j]; s < arrival-skew || s > arrival {
				t.Fatalf("batch %d edge %d: stamp %d outside [%d,%d]", i, j, s, arrival-skew, arrival)
			}
		}
	}
	if len(seen) != want {
		t.Fatalf("stream carried %d distinct edges, graph has %d", len(seen), want)
	}

	var again bytes.Buffer
	if _, err := writeTemporal(&again, g, batch, startMS, interval, skew, 7); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("same seed produced a different stream")
	}

	// Zero skew degrades to batch-level ts.
	var flat bytes.Buffer
	if _, err := writeTemporal(&flat, g, batch, startMS, interval, 0, 7); err != nil {
		t.Fatal(err)
	}
	var first streamBatch
	line, _, _ := bufio.NewReader(&flat).ReadLine()
	if err := json.Unmarshal(line, &first); err != nil {
		t.Fatal(err)
	}
	if first.Ts != startMS || first.Stamps != nil {
		t.Fatalf("unskewed stream: ts=%d stamps=%v", first.Ts, first.Stamps)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build("", "", 10, 1, 2, 2, 0, 1); err == nil {
		t.Error("missing model and dataset must error")
	}
	if _, err := build("", "nope", 10, 1, 2, 2, 0, 1); err == nil {
		t.Error("unknown model must error")
	}
	if _, err := build("nope", "", 10, 1, 2, 2, 0, 1); err == nil {
		t.Error("unknown dataset must error")
	}
}
