// Package brandes implements Brandes' exact betweenness-centrality algorithm
// for unweighted, undirected graphs — the paper's effectiveness baseline
// (TopBW in Section VI-B). For every source vertex a BFS counts shortest
// paths, then a reverse sweep accumulates pair dependencies; the total cost
// is O(nm) time and O(n+m) space per the original analysis.
//
// The betweenness convention follows the standard undirected definition:
// each unordered pair {s, t} contributes once, i.e. the accumulated directed
// dependencies are halved. Top-k ordering is unaffected by this constant.
package brandes

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ego"
	"repro/internal/graph"
	"repro/internal/topk"
)

// Betweenness returns the exact betweenness centrality of every vertex.
func Betweenness(g *graph.Graph) []float64 {
	bc := make([]float64, g.NumVertices())
	w := acquireWorker(g)
	defer releaseWorker(w)
	for s := int32(0); s < g.NumVertices(); s++ {
		w.accumulate(s, bc)
	}
	half(bc)
	return bc
}

// BetweennessParallel fans the source loop out to t workers (t ≤ 0 selects
// GOMAXPROCS) with per-worker accumulators merged at the end — the standard
// source-parallel decomposition the paper uses for its 64-thread TopBW runs.
func BetweennessParallel(g *graph.Graph, t int) []float64 {
	if t <= 0 {
		t = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	partial := make([][]float64, t)
	var cursor atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < t; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			acc := make([]float64, n)
			w := acquireWorker(g)
			defer releaseWorker(w)
			for {
				s := cursor.Add(1) - 1
				if s >= n {
					break
				}
				w.accumulate(s, acc)
			}
			partial[id] = acc
		}(i)
	}
	wg.Wait()
	bc := make([]float64, n)
	for _, acc := range partial {
		for v, x := range acc {
			bc[v] += x
		}
	}
	half(bc)
	return bc
}

// TopK returns the k vertices with the highest betweenness (TopBW), sorted
// descending, computed with t parallel workers.
func TopK(g *graph.Graph, k, t int) []ego.Result {
	bc := BetweennessParallel(g, t)
	r := topk.NewBounded(k)
	for v := int32(0); v < g.NumVertices(); v++ {
		r.Add(v, bc[v])
	}
	items := r.Results()
	out := make([]ego.Result, len(items))
	for i, it := range items {
		out[i] = ego.Result{V: it.V, CB: it.Score}
	}
	return out
}

func half(bc []float64) {
	for i := range bc {
		bc[i] /= 2
	}
}

// worker holds the per-source BFS state, reused across sources and pooled
// across runs: every touched entry is reset after a source finishes, so a
// released worker's arrays are already in the pristine (-1 / 0) state and
// repeated TopK/Betweenness calls allocate nothing once the pool is warm.
type worker struct {
	g     *graph.Graph
	dist  []int32
	sigma []float64
	delta []float64
	queue []int32
	stack []int32
}

// workerPool recycles BFS workers. Workers grow to the largest graph seen;
// growth appends pristine entries so pooled state stays consistent.
var workerPool = sync.Pool{New: func() any { return &worker{} }}

func acquireWorker(g *graph.Graph) *worker {
	w := workerPool.Get().(*worker)
	w.g = g
	n := int(g.NumVertices())
	for len(w.dist) < n {
		w.dist = append(w.dist, -1)
	}
	for len(w.sigma) < n {
		w.sigma = append(w.sigma, 0)
	}
	for len(w.delta) < n {
		w.delta = append(w.delta, 0)
	}
	w.queue = w.queue[:0]
	w.stack = w.stack[:0]
	return w
}

func releaseWorker(w *worker) {
	w.g = nil
	workerPool.Put(w)
}

// accumulate runs one Brandes iteration from source s, adding the directed
// dependencies into bc.
func (w *worker) accumulate(s int32, bc []float64) {
	g := w.g
	w.queue = w.queue[:0]
	w.stack = w.stack[:0]
	w.dist[s] = 0
	w.sigma[s] = 1
	w.queue = append(w.queue, s)
	for head := 0; head < len(w.queue); head++ {
		v := w.queue[head]
		w.stack = append(w.stack, v)
		for _, x := range g.Neighbors(v) {
			if w.dist[x] < 0 {
				w.dist[x] = w.dist[v] + 1
				w.queue = append(w.queue, x)
			}
			if w.dist[x] == w.dist[v]+1 {
				w.sigma[x] += w.sigma[v]
			}
		}
	}
	// Reverse sweep: dependency accumulation over the BFS DAG.
	for i := len(w.stack) - 1; i >= 0; i-- {
		v := w.stack[i]
		for _, x := range g.Neighbors(v) {
			if w.dist[x] == w.dist[v]+1 {
				w.delta[v] += w.sigma[v] / w.sigma[x] * (1 + w.delta[x])
			}
		}
		if v != s {
			bc[v] += w.delta[v]
		}
	}
	// Reset only the touched entries.
	for _, v := range w.stack {
		w.dist[v] = -1
		w.sigma[v] = 0
		w.delta[v] = 0
	}
}
