// Package parallel implements Section V of the paper: parallel computation
// of all vertices' ego-betweennesses.
//
// Both algorithms parallelize the once-per-edge evidence pass of
// internal/ego. Each undirected edge is owned by its ≺-earlier endpoint
// (the orientation G+), so the edge set partitions with no coordination;
// only the evidence-map mutations need synchronization, which striped
// mutexes hashed on the target vertex provide.
//
//   - VertexPEBW hands workers whole vertices (a vertex's owned edges).
//     Out-degree skew makes some work units enormous on power-law graphs —
//     the load-imbalance problem the paper observes.
//   - EdgePEBW hands workers fixed-size chunks of the flat oriented edge
//     array through an atomic cursor, which balances load because the
//     distribution of per-edge work (common out-neighborhood sizes) is far
//     less skewed than vertex degrees.
//
// Per-worker work counters quantify that balance difference directly, which
// matters here because wall-clock speedup additionally depends on the host
// actually having multiple CPUs (see DESIGN.md §5).
package parallel
