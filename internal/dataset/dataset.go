// Package dataset is the registry of benchmark graphs: seeded synthetic
// analogs of the paper's five SNAP datasets (Table I) and the two DBLP
// case-study subgraphs (Section VI-B). DESIGN.md §5 records the substitution
// rationale; the short version is that the experiments measure effects of
// degree shape, skew, and triangle density, all of which the generator
// parameters below control, so the paper's qualitative results survive the
// scale-down.
//
// Sizes default to laptop scale and multiply with the EGOBW_SCALE
// environment variable (float, e.g. EGOBW_SCALE=4). Graphs are generated on
// first use and cached in memory for the life of the process.
package dataset

import (
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"sync"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Dataset names, mirroring Table I plus the two case-study subgraphs.
const (
	Youtube     = "youtube"
	WikiTalk    = "wikitalk"
	DBLP        = "dblp"
	Pokec       = "pokec"
	LiveJournal = "livejournal"
	DB          = "db" // database/data-mining co-authorship subgraph
	IR          = "ir" // information-retrieval co-authorship subgraph
)

// TableOne lists the five main datasets in the paper's Table I order.
var TableOne = []string{Youtube, WikiTalk, DBLP, Pokec, LiveJournal}

// CaseStudy lists the Section VI-B subgraphs.
var CaseStudy = []string{DB, IR}

// Info describes a registry entry.
type Info struct {
	Name        string
	Description string // what it stands in for
	PaperN      int64  // vertices in the paper's dataset
	PaperM      int64  // edges in the paper's dataset
	PaperDMax   int64
	build       func(scale float64) *graph.Graph
}

var registry = map[string]Info{
	Youtube: {
		Name:        Youtube,
		Description: "social network (Barabási–Albert heavy tail, avg deg ~5.3)",
		PaperN:      1134890, PaperM: 2987624, PaperDMax: 28754,
		build: func(s float64) *graph.Graph {
			n := scaleN(20000, s)
			return gen.ChungLu(n, 2.2, 5.3, n/25, dsSeed(1))
		},
	},
	WikiTalk: {
		Name:        WikiTalk,
		Description: "communication network (extreme talk-page skew, avg deg ~3.9)",
		PaperN:      2394385, PaperM: 4659565, PaperDMax: 100029,
		build: func(s float64) *graph.Graph {
			n := scaleN(24000, s)
			return gen.ChungLu(n, 1.9, 3.9, n/12, dsSeed(2))
		},
	},
	DBLP: {
		Name:        DBLP,
		Description: "collaboration network (affiliation cliques, avg deg ~9.1)",
		PaperN:      1843617, PaperM: 8350260, PaperDMax: 2213,
		build: func(s float64) *graph.Graph {
			n := scaleN(16000, s)
			return gen.Affiliation(n, int(n)/2, 5.5, 1, dsSeed(3))
		},
	},
	Pokec: {
		Name:        Pokec,
		Description: "social network (dense power law, avg deg ~27)",
		PaperN:      1632803, PaperM: 22301964, PaperDMax: 14854,
		build: func(s float64) *graph.Graph {
			n := scaleN(9000, s)
			return gen.ChungLu(n, 2.6, 27, n/12, dsSeed(4))
		},
	},
	LiveJournal: {
		Name:        LiveJournal,
		Description: "social network (largest, avg deg ~17)",
		PaperN:      3997962, PaperM: 34681189, PaperDMax: 14815,
		build: func(s float64) *graph.Graph {
			n := scaleN(24000, s)
			return gen.ChungLu(n, 2.45, 17.3, n/16, dsSeed(5))
		},
	},
	DB: {
		Name:        DB,
		Description: "DB/DM co-authorship case study (37,177 authors in the paper)",
		PaperN:      37177, PaperM: 131715, PaperDMax: 412,
		build: func(s float64) *graph.Graph {
			n := scaleN(9000, s)
			return gen.Affiliation(n, int(n)*2/5, 5, 1, dsSeed(6))
		},
	},
	IR: {
		Name:        IR,
		Description: "IR co-authorship case study (13,445 authors in the paper)",
		PaperN:      13445, PaperM: 37428, PaperDMax: 2510,
		build: func(s float64) *graph.Graph {
			n := scaleN(4500, s)
			return gen.Affiliation(n, int(n)*2/5, 4.5, 1, dsSeed(7))
		},
	},
}

// dsSeed derives per-dataset generator seeds.
func dsSeed(i uint64) uint64 { return 0xe60b<<16 | i }

func scaleN(base int32, s float64) int32 {
	n := int32(float64(base) * s)
	if n < 64 {
		n = 64
	}
	return n
}

// Scale returns the EGOBW_SCALE multiplier (default 1.0).
func Scale() float64 {
	if v := os.Getenv("EGOBW_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 1.0
}

// Names returns all registered dataset names.
func Names() []string {
	return append(append([]string(nil), TableOne...), CaseStudy...)
}

// Describe returns the registry entry for name.
func Describe(name string) (Info, error) {
	info, ok := registry[name]
	if !ok {
		return Info{}, fmt.Errorf("dataset: unknown name %q (have %v)", name, Names())
	}
	return info, nil
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*graph.Graph{}
)

// Load returns the named dataset at the current EGOBW_SCALE, generating it
// on first use.
func Load(name string) (*graph.Graph, error) {
	info, err := Describe(name)
	if err != nil {
		return nil, err
	}
	scale := Scale()
	key := fmt.Sprintf("%s@%g", name, scale)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[key]; ok {
		return g, nil
	}
	g := info.build(scale)
	cache[key] = g
	return g, nil
}

// MustLoad is Load that panics on unknown names; for the bench harness.
func MustLoad(name string) *graph.Graph {
	g, err := Load(name)
	if err != nil {
		panic(err)
	}
	return g
}

// ScholarName returns a deterministic pseudonym for vertex v of a
// case-study graph, used by the Table III/IV reproduction. Real author
// names are not available offline; the tables' point — the overlap between
// the top-10 by ego-betweenness and by betweenness — is a property of the
// graph, not the labels.
func ScholarName(v int32) string {
	first := []string{"Ada", "Grace", "Alan", "Edsger", "Barbara", "Donald",
		"Leslie", "Tony", "John", "Frances", "Ken", "Dennis", "Radia", "Shafi"}
	last := []string{"Tanaka", "Okafor", "Silva", "Novak", "Haddad", "Kim",
		"Garcia", "Ivanov", "Chen", "Mbeki", "Larsen", "Rossi", "Patel", "Dubois"}
	rng := rand.New(rand.NewPCG(uint64(v), 0x5c401a25))
	return fmt.Sprintf("%s %s-%04d",
		first[rng.IntN(len(first))], last[rng.IntN(len(last))], v)
}
