package graph

import "math/rand/v2"

// SampleEdges returns a subgraph over the same vertex set containing a
// uniformly random fraction frac ∈ (0, 1] of the edges. This matches the
// "randomly picking 20%–80% of the edges" protocol of the paper's
// scalability experiment (Fig. 9 left).
func SampleEdges(g *Graph, frac float64, seed uint64) *Graph {
	if frac >= 1 {
		return g.Clone()
	}
	rng := rand.New(rand.NewPCG(seed, 0x5eed))
	keep := make([][2]int32, 0, int(float64(g.NumEdges())*frac)+1)
	g.EachEdge(func(u, v int32) bool {
		if rng.Float64() < frac {
			keep = append(keep, [2]int32{u, v})
		}
		return true
	})
	sub, err := FromEdges(g.NumVertices(), keep)
	if err != nil {
		// Cannot happen: edges come from a valid graph.
		panic(err)
	}
	return sub
}

// SampleVertices returns the subgraph induced by a uniformly random fraction
// frac ∈ (0, 1] of the vertices, with identifiers compacted to a dense range
// (Fig. 9 right). The second return value maps new identifiers back to the
// original ones.
func SampleVertices(g *Graph, frac float64, seed uint64) (*Graph, []int32) {
	n := g.NumVertices()
	if frac >= 1 {
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(i)
		}
		return g.Clone(), ids
	}
	rng := rand.New(rand.NewPCG(seed, 0xfeed))
	newID := make([]int32, n)
	var orig []int32
	next := int32(0)
	for v := int32(0); v < n; v++ {
		if rng.Float64() < frac {
			newID[v] = next
			orig = append(orig, v)
			next++
		} else {
			newID[v] = -1
		}
	}
	var edges [][2]int32
	g.EachEdge(func(u, v int32) bool {
		if newID[u] >= 0 && newID[v] >= 0 {
			edges = append(edges, [2]int32{newID[u], newID[v]})
		}
		return true
	})
	sub, err := FromEdges(next, edges)
	if err != nil {
		panic(err)
	}
	return sub, orig
}
