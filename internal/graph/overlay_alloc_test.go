//go:build !race

package graph

import (
	"testing"
)

// TestOverlayCleanReadZeroAlloc pins the clean-vertex fast path's cost
// contract (DESIGN.md §12): reading a vertex no layer of the chain ever
// dirtied allocates nothing and returns the base CSR's own slice — one
// dirty-index word test, then the base row. The file is excluded under
// -race because the race runtime instruments allocations.
func TestOverlayCleanReadZeroAlloc(t *testing.T) {
	d := NewDynGraph(64)
	for v := int32(1); v < 64; v++ {
		if err := d.InsertEdge(0, v); err != nil {
			t.Fatal(err)
		}
		if v > 1 {
			if err := d.InsertEdge(v-1, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	d.TakeDirty()
	base := d.Freeze(1)

	// Two stacked layers dirtying only vertices 2 and 3: everything else
	// must resolve through the clean fast path.
	var view View = base
	if err := d.DeleteEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	view = d.FreezeOverlay(view)
	if err := d.InsertEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	ov := d.FreezeOverlay(view)

	var got []int32
	clean := int32(40)
	if allocs := testing.AllocsPerRun(100, func() {
		got = ov.Neighbors(clean)
	}); allocs != 0 {
		t.Fatalf("clean-vertex Neighbors allocates %v per read, want 0", allocs)
	}
	want := base.Neighbors(clean)
	if len(got) == 0 || len(got) != len(want) || &got[0] != &want[0] {
		t.Fatalf("clean-vertex read did not return the base CSR slice (got %p len %d, want %p len %d)",
			got, len(got), want, len(want))
	}

	// Dirty vertices still read correctly (and the chain walk still answers
	// through the newest layer).
	if ov.idx.clean(2) || ov.idx.clean(3) {
		t.Fatal("dirtied vertices report clean")
	}
	if !ov.HasEdge(2, 3) {
		t.Fatal("re-inserted edge (2,3) missing from the top layer")
	}
}
