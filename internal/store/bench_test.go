package store

import (
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Micro-benchmarks for the durability hot paths. The snapshot codec runs
// inside the serving layer's write lock at every checkpoint, and the WAL
// append runs on every update batch, so their costs bound the write-path
// latency the persistence layer adds (EXPERIMENTS.md has the dataset-scale
// numbers via `benchtab -prbench`).

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	return gen.BarabasiAlbert(5000, 4, 0xE60B)
}

func BenchmarkEncodeSnapshot(b *testing.B) {
	g := benchGraph(b)
	enc := EncodeSnapshot(g, SnapshotMeta{Seq: 1})
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeSnapshot(g, SnapshotMeta{Seq: 1})
	}
}

func BenchmarkDecodeSnapshot(b *testing.B) {
	enc := EncodeSnapshot(benchGraph(b), SnapshotMeta{Seq: 1})
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeSnapshot(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAppend(b *testing.B, sync bool) {
	s, err := Create(filepath.Join(b.TempDir(), "g"), benchGraph(b), SnapshotMeta{}, WithSync(sync))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	edges := [][2]int32{{1, 4001}, {2, 4002}, {3, 4003}, {4, 4004}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.AppendBatch(true, edges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppendSync(b *testing.B)   { benchAppend(b, true) }
func BenchmarkWALAppendNoSync(b *testing.B) { benchAppend(b, false) }

func BenchmarkStoreOpenReplay(b *testing.B) {
	dir := filepath.Join(b.TempDir(), "g")
	s, err := Create(dir, benchGraph(b), SnapshotMeta{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := s.AppendBatch(true, [][2]int32{{int32(i), 4100 + int32(i)}}); err != nil {
			b.Fatal(err)
		}
	}
	s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ { // Open repairs nothing here, so it is repeatable
		s2, rec, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		if len(rec.Tail) != 200 {
			b.Fatalf("tail = %d", len(rec.Tail))
		}
		s2.Close()
	}
}
