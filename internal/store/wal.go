package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// WALVersion is the on-disk write-ahead-log format version. Version 2 added
// the optional per-edge timestamp block (op bit 1); version-1 files contain
// only the stampless record shape and remain readable.
const WALVersion = 2

// walMagic identifies a WAL file ("EBWL": Ego-BetWeenness Log).
var walMagic = [4]byte{'E', 'B', 'W', 'L'}

// walHeaderLen is the fixed file header: magic, version uint16, reserved
// uint16 (0).
const walHeaderLen = 8

// Batch is one durably logged edge-update batch, exactly as the client
// submitted it (including edges that will fail individually on apply — the
// application code skips those deterministically, so replay reproduces the
// live outcome).
//
// Stamps, when non-nil, holds one unix-millisecond timestamp per edge. The
// leader assigns them at admission (client-provided or receive time) so that
// replay — crash recovery, instant import, and shipped replicas — sees the
// exact stamps the live writer applied and expires the same edges at the
// same sequence numbers.
type Batch struct {
	Seq    uint64
	Insert bool
	Edges  [][2]int32
	Stamps []int64
}

// WAL record layout (little-endian), appended back to back after the file
// header:
//
//	payloadLen uint32 = 13 + 8*len(edges)            (stampless)
//	                  = 13 + 16*len(edges)           (stamped)
//	crc        uint32 (IEEE, over the payload)
//	payload:
//	  seq      uint64
//	  op       uint8  (bit 0: 1 insert, 0 delete; bit 1: stamps present)
//	  numEdges uint32
//	  edges    numEdges × (int32 u, int32 v)
//	  stamps   numEdges × int64 unix ms   (only when op bit 1 is set)
//
// The record is self-describing: the stamp block's presence is declared by
// the op byte and cross-checked against payloadLen, so version-1 records
// (op ∈ {0,1}) decode unchanged.
const walRecordFixed = 13 // seq + op + numEdges

const (
	walOpInsert  = 0x01
	walOpStamped = 0x02
)

// walFileHeader returns the 8-byte WAL file header.
func walFileHeader() []byte {
	hdr := make([]byte, 0, walHeaderLen)
	hdr = append(hdr, walMagic[:]...)
	hdr = binary.LittleEndian.AppendUint16(hdr, WALVersion)
	return binary.LittleEndian.AppendUint16(hdr, 0)
}

// EncodeBatch serializes one WAL record.
func EncodeBatch(b Batch) []byte {
	if b.Stamps != nil && len(b.Stamps) != len(b.Edges) {
		panic(fmt.Sprintf("store: batch with %d edges but %d stamps", len(b.Edges), len(b.Stamps)))
	}
	payloadLen := walRecordFixed + 8*len(b.Edges)
	if b.Stamps != nil {
		payloadLen += 8 * len(b.Stamps)
	}
	buf := make([]byte, 0, 8+payloadLen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	buf = binary.LittleEndian.AppendUint32(buf, 0) // crc backfilled below
	buf = binary.LittleEndian.AppendUint64(buf, b.Seq)
	op := byte(0)
	if b.Insert {
		op |= walOpInsert
	}
	if b.Stamps != nil {
		op |= walOpStamped
	}
	buf = append(buf, op)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Edges)))
	for _, e := range b.Edges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e[0]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e[1]))
	}
	for _, ts := range b.Stamps {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ts))
	}
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(buf[8:]))
	return buf
}

// decodeRecord parses one record at the front of data. ok=false means data
// does not start with a complete, checksummed, self-consistent record — for
// an append-only log that marks the torn tail, whatever the underlying cause.
func decodeRecord(data []byte) (b Batch, size int, ok bool) {
	if len(data) < 8 {
		return Batch{}, 0, false
	}
	payloadLen := int(binary.LittleEndian.Uint32(data[0:4]))
	if payloadLen < walRecordFixed || len(data)-8 < payloadLen {
		return Batch{}, 0, false
	}
	payload := data[8 : 8+payloadLen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:8]) {
		return Batch{}, 0, false
	}
	op := payload[8]
	if op&^(walOpInsert|walOpStamped) != 0 {
		return Batch{}, 0, false
	}
	numEdges := int(binary.LittleEndian.Uint32(payload[9:13]))
	perEdge := 8
	if op&walOpStamped != 0 {
		perEdge = 16
	}
	if payloadLen != walRecordFixed+perEdge*numEdges {
		return Batch{}, 0, false
	}
	b = Batch{
		Seq:    binary.LittleEndian.Uint64(payload[0:8]),
		Insert: op&walOpInsert != 0,
	}
	b.Edges = make([][2]int32, numEdges)
	for i := range b.Edges {
		off := walRecordFixed + 8*i
		b.Edges[i][0] = int32(binary.LittleEndian.Uint32(payload[off : off+4]))
		b.Edges[i][1] = int32(binary.LittleEndian.Uint32(payload[off+4 : off+8]))
	}
	if op&walOpStamped != 0 {
		b.Stamps = make([]int64, numEdges)
		base := walRecordFixed + 8*numEdges
		for i := range b.Stamps {
			off := base + 8*i
			b.Stamps[i] = int64(binary.LittleEndian.Uint64(payload[off : off+8]))
		}
	}
	return b, 8 + payloadLen, true
}

// DecodeWAL parses a whole WAL file image. It returns every complete valid
// record in order and the byte length of that valid prefix; valid <
// len(data) means the tail is torn or corrupt and should be truncated away
// (crash-recovery treats the first invalid record as the end of the log —
// in an append-only file nothing after a torn write can be trusted). A bad
// file header is a hard error: nothing in the file is usable.
//
// Version-1 files (no stamped records) decode under the same loop: the
// record format is self-describing via the op byte, so accepting the old
// header version is all backward compatibility requires.
//
// Sequence numbers within one WAL file are strictly increasing — the writer
// assigns prev+1 under its lock — so a record whose Seq does not exceed its
// predecessor's (a duplicate or a regression, e.g. a doubled or re-shipped
// segment spliced onto the file) also ends the valid prefix: replaying past
// it would double-apply batches. Like a torn tail, everything from the first
// such record on is untrusted and gets truncated away.
func DecodeWAL(data []byte) (batches []Batch, valid int, err error) {
	if len(data) < walHeaderLen {
		return nil, 0, fmt.Errorf("store: wal truncated before header (%d bytes)", len(data))
	}
	if [4]byte(data[0:4]) != walMagic {
		return nil, 0, fmt.Errorf("store: bad wal magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v == 0 || v > WALVersion {
		return nil, 0, fmt.Errorf("store: unsupported wal version %d (this build reads ≤%d)", v, WALVersion)
	}
	if binary.LittleEndian.Uint16(data[6:8]) != 0 {
		return nil, 0, fmt.Errorf("store: corrupt wal header (reserved field)")
	}
	valid = walHeaderLen
	for valid < len(data) {
		b, size, ok := decodeRecord(data[valid:])
		if !ok {
			break
		}
		if n := len(batches); n > 0 && b.Seq <= batches[n-1].Seq {
			break
		}
		batches = append(batches, b)
		valid += size
	}
	return batches, valid, nil
}

// DecodeStream decodes headerless WAL records from a shipped stream chunk —
// the follower side of WAL shipping, where the leader's self-delimiting
// CRC-checked record format doubles as the wire format. next is the sequence
// the first record must carry; every following record must carry exactly
// prev+1. consumed is how many leading bytes held complete records; a chunk
// ending mid-record is normal (the next poll re-fetches from consumed) and
// is not an error. Unlike local recovery, nothing here is repairable by
// truncation: a checksum failure, a malformed record, or any sequence
// mismatch on a complete record is a hard protocol error — the stream can no
// longer be trusted and the follower must resynchronize from a checkpoint.
func DecodeStream(data []byte, next uint64) (batches []Batch, consumed int, err error) {
	for consumed < len(data) {
		rem := data[consumed:]
		if len(rem) < 8 {
			break // incomplete length/crc prefix: wait for more bytes
		}
		payloadLen := int(binary.LittleEndian.Uint32(rem[0:4]))
		if payloadLen < walRecordFixed {
			return batches, consumed, fmt.Errorf("store: stream record at offset %d: payload length %d below minimum %d", consumed, payloadLen, walRecordFixed)
		}
		if len(rem)-8 < payloadLen {
			break // incomplete record body: wait for more bytes
		}
		b, size, ok := decodeRecord(rem)
		if !ok {
			return batches, consumed, fmt.Errorf("store: stream record at offset %d (seq %d expected): checksum or structure mismatch", consumed, next)
		}
		if b.Seq != next {
			return batches, consumed, fmt.Errorf("store: stream sequence %d where %d was expected", b.Seq, next)
		}
		batches = append(batches, b)
		consumed += size
		next++
	}
	return batches, consumed, nil
}
