# Targets mirror the CI workflow (.github/workflows/ci.yml); see README.md.

GO ?= go

.PHONY: build test bench bench-figs bench-smoke serve fmt vet clean

build:
	$(GO) build ./...

test: vet
	$(GO) test -race ./...

# Bench-regression harness: machine-readable ns/op for the hot paths
# (ComputeAll, OptBSearch, Maintainer.InsertEdge, snapshot build), written
# to BENCH_PR2.json so the perf trajectory is tracked across PRs.
bench: build
	$(GO) run ./cmd/benchtab -prbench BENCH_PR2.json

# Regenerate the paper's tables and figures (quick grids; -full for the
# paper's grids). See EXPERIMENTS.md.
bench-figs: build
	$(GO) run ./cmd/benchtab -exp all

# Compile-and-run every Go benchmark once (the CI smoke step; not a
# measurement).
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Run the query-serving daemon on :8080 (README.md has the curl walkthrough).
serve:
	$(GO) run ./cmd/egobwd -addr :8080

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
