package egobw_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	egobw "repro"
	"repro/internal/paperex"
)

// TestPublicQuickstart exercises the README quickstart path end to end.
func TestPublicQuickstart(t *testing.T) {
	g, err := egobw.NewGraph(int32(paperex.NumVertices), paperex.Edges)
	if err != nil {
		t.Fatal(err)
	}
	top, st := egobw.TopK(g, 5)
	if len(top) != 5 || st.Computed == 0 {
		t.Fatalf("top = %v, stats = %+v", top, st)
	}
	for i, want := range paperex.Top5 {
		if top[i].V != want {
			t.Errorf("rank %d = %d, want %d", i+1, top[i].V, want)
		}
	}
}

func TestPublicOptions(t *testing.T) {
	g := mustPaper(t)
	var st egobw.SearchStats
	base, _ := egobw.TopK(g, 5, egobw.WithBaseSearch(), egobw.WithStats(&st))
	if st.Computed != paperex.BaseSearchComputed {
		t.Errorf("base computed %d, want %d", st.Computed, paperex.BaseSearchComputed)
	}
	opt, _ := egobw.TopK(g, 5, egobw.WithTheta(1.3))
	for i := range base {
		if math.Abs(base[i].CB-opt[i].CB) > 1e-9 {
			t.Errorf("rank %d: base %v, opt %v", i, base[i].CB, opt[i].CB)
		}
	}
}

func TestPublicComputeVariants(t *testing.T) {
	g := mustPaper(t)
	all := egobw.ComputeAll(g)
	par, pst := egobw.ComputeAllParallel(g, 2, egobw.EdgePEBW)
	if pst.Threads != 2 {
		t.Fatalf("stats = %+v", pst)
	}
	for v := range all {
		if math.Abs(all[v]-par[v]) > 1e-9 {
			t.Errorf("parallel CB(%d) = %v, want %v", v, par[v], all[v])
		}
		if single := egobw.EgoBetweenness(g, int32(v)); math.Abs(single-all[v]) > 1e-9 {
			t.Errorf("single CB(%d) = %v, want %v", v, single, all[v])
		}
	}
}

func TestPublicMaintainers(t *testing.T) {
	m := egobw.NewMaintainer(mustPaper(t))
	if err := m.InsertEdge(paperex.I, paperex.K); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.CB(paperex.I)-10.5) > 1e-9 {
		t.Errorf("CB(i) = %v, want 10.5", m.CB(paperex.I))
	}
	lt := egobw.NewLazyTopK(mustPaper(t), 1)
	if err := lt.InsertEdge(paperex.I, paperex.K); err != nil {
		t.Fatal(err)
	}
	if res := lt.Results(); res[0].V != paperex.I {
		t.Errorf("lazy top-1 = %v, want i", res)
	}
}

func TestPublicBetweennessAndOverlap(t *testing.T) {
	g := egobw.GenerateBA(300, 3, 5)
	ebw, _ := egobw.TopK(g, 20)
	bw := egobw.BetweennessTopK(g, 20, 2)
	ov := egobw.Overlap(ebw, bw)
	if ov < 0.3 {
		t.Errorf("EBW/BW top-20 overlap = %v; expected substantial agreement", ov)
	}
	bc := egobw.Betweenness(g)
	if len(bc) != 300 {
		t.Fatalf("betweenness size %d", len(bc))
	}
}

func TestPublicIO(t *testing.T) {
	g := mustPaper(t)
	var buf bytes.Buffer
	if err := egobw.SaveEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := egobw.LoadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatal("round trip lost edges")
	}
	if _, err := egobw.LoadEdgeList(strings.NewReader("not numbers\n")); err == nil {
		t.Fatal("want parse error")
	}
}

func TestPublicGeneratorsAndDatasets(t *testing.T) {
	if len(egobw.DatasetNames()) != 7 {
		t.Fatalf("datasets: %v", egobw.DatasetNames())
	}
	if _, err := egobw.LoadDataset("ir"); err != nil {
		t.Fatal(err)
	}
	if _, err := egobw.LoadDataset("bogus"); err == nil {
		t.Fatal("want unknown-dataset error")
	}
	for name, g := range map[string]*egobw.Graph{
		"er": egobw.GenerateER(100, 200, 1),
		"ba": egobw.GenerateBA(100, 2, 1),
		"cl": egobw.GenerateChungLu(100, 2.5, 5, 0, 1),
		"ws": egobw.GenerateWS(100, 4, 0.1, 1),
		"af": egobw.GenerateAffiliation(100, 40, 4, 1, 1),
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	sub := egobw.SampleEdges(egobw.GenerateER(100, 400, 2), 0.5, 3)
	if sub.NumEdges() == 0 || sub.NumEdges() >= 400 {
		t.Errorf("edge sample size %d", sub.NumEdges())
	}
	vs, ids := egobw.SampleVertices(egobw.GenerateER(100, 400, 2), 0.5, 3)
	if int32(len(ids)) != vs.NumVertices() {
		t.Error("vertex sample mapping size mismatch")
	}
}

func TestPublicStats(t *testing.T) {
	st := egobw.Stats(mustPaper(t))
	if st.N != int32(paperex.NumVertices) || st.M != 30 {
		t.Fatalf("stats = %+v", st)
	}
}

func mustPaper(t *testing.T) *egobw.Graph {
	t.Helper()
	g, err := egobw.NewGraph(int32(paperex.NumVertices), paperex.Edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
