package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"repro/internal/graph"
)

// Snapshot format versions this build writes and reads. Version 1 is the
// bare CSR snapshot; version 2 appends the maintainer-state section (see
// state.go) after an identically laid-out graph part. Creation and
// state-less checkpoints still write version 1, so old files, golden tests,
// and new files without maintainer state are bit-identical across the
// format extension; decoders reject any other version loudly instead of
// misreading it.
const (
	SnapshotVersion      = 1
	SnapshotVersionState = 2
)

// snapMagic identifies a snapshot file ("EBWS": Ego-BetWeenness Snapshot).
var snapMagic = [4]byte{'E', 'B', 'W', 'S'}

// SnapshotMeta is the serving metadata carried in a snapshot header.
type SnapshotMeta struct {
	// Mode is an application-defined maintenance-mode tag (the serving
	// layer stores 0 for local, 1 for lazy).
	Mode uint8
	// LazyK is the maintained k for lazy-mode graphs (0 otherwise).
	LazyK uint32
	// Seq is the last WAL batch sequence folded into this snapshot. WAL
	// records with Seq ≤ this are already reflected in the graph.
	Seq uint64
}

// Graph-part layout (all little-endian, fixed field order — the encoding of
// a given graph+meta is byte-stable, which the golden-file tests pin down):
//
//	[0]  magic    [4]byte "EBWS"
//	[4]  version  uint16
//	[6]  mode     uint8
//	[7]  reserved uint8 (must be 0)
//	[8]  lazyK    uint32
//	[12] seq      uint64
//	[20] n        uint32
//	[24] m        uint64
//	[32] offLen   uint64 = (n+1)*8, then offLen bytes of int64 offsets
//	[..] adjLen   uint64 = 2m*4,    then adjLen bytes of int32 adjacency
//	[..] crc      uint32 (IEEE, over every preceding byte of the graph part)
//
// A version-1 file ends exactly at the crc; a version-2 file continues with
// the 8-aligned maintainer-state section (state.go), whose own CRC covers
// only the section — so either half can be judged corrupt independently.
const (
	snapFixedHeaderLen = 40 // through the offLen field
	snapTrailerLen     = 4  // the crc
)

// EncodeSnapshot serializes g and its metadata into the version-1 snapshot
// format (no maintainer state). EncodeSnapshotWithState produces version 2.
func EncodeSnapshot(g *graph.Graph, meta SnapshotMeta) []byte {
	return encodeGraphPart(g, meta, SnapshotVersion, 0)
}

// encodeGraphPart serializes the CSR graph part, closing it with its CRC.
// extraCap reserves room beyond the graph part, so a state-carrying encoder
// appends its section without regrowing the buffer.
func encodeGraphPart(g *graph.Graph, meta SnapshotMeta, version uint16, extraCap int) []byte {
	offsets, adj := g.CSR()
	offLen := uint64(len(offsets)) * 8
	adjLen := uint64(len(adj)) * 4
	buf := make([]byte, 0, snapFixedHeaderLen+int(offLen)+8+int(adjLen)+snapTrailerLen+extraCap)
	buf = append(buf, snapMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, version)
	buf = append(buf, meta.Mode, 0)
	buf = binary.LittleEndian.AppendUint32(buf, meta.LazyK)
	buf = binary.LittleEndian.AppendUint64(buf, meta.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.NumVertices()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(g.NumEdges()))
	buf = binary.LittleEndian.AppendUint64(buf, offLen)
	buf = appendWords(buf, offsets)
	buf = binary.LittleEndian.AppendUint64(buf, adjLen)
	buf = appendWords(buf, adj)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// snapshotLayout skims a snapshot header far enough to situate its parts:
// the format version, the vertex count, and the byte length of the graph
// part (fixed header + sections + graph CRC). It validates the header fields
// it reads and that the graph part fits the input, so both full decoders can
// build on it without re-deriving overflow guards.
func snapshotLayout(data []byte) (version uint16, n, graphLen uint64, err error) {
	if len(data) < snapFixedHeaderLen+8+snapTrailerLen {
		return 0, 0, 0, fmt.Errorf("store: snapshot truncated (%d bytes)", len(data))
	}
	if [4]byte(data[0:4]) != snapMagic {
		return 0, 0, 0, fmt.Errorf("store: bad snapshot magic %q", data[0:4])
	}
	version = binary.LittleEndian.Uint16(data[4:6])
	if version != SnapshotVersion && version != SnapshotVersionState {
		return 0, 0, 0, fmt.Errorf("store: unsupported snapshot version %d (this build reads %d and %d)",
			version, SnapshotVersion, SnapshotVersionState)
	}
	if data[7] != 0 {
		return 0, 0, 0, fmt.Errorf("store: corrupt snapshot header (reserved byte %#x)", data[7])
	}
	n = uint64(binary.LittleEndian.Uint32(data[20:24]))
	if n > math.MaxInt32 {
		return 0, 0, 0, fmt.Errorf("store: snapshot n=%d beyond int32", n)
	}
	m := binary.LittleEndian.Uint64(data[24:32])
	offLen := binary.LittleEndian.Uint64(data[32:40])
	if offLen != (n+1)*8 {
		return 0, 0, 0, fmt.Errorf("store: snapshot offsets section is %d bytes, n=%d implies %d", offLen, n, (n+1)*8)
	}
	// Every graph-part length is determined by the header, so its total is
	// too; bounding it by the input (with overflow guarded via division)
	// rejects truncation before any allocation and bounds every allocation
	// below by len(data).
	if m > (math.MaxUint64-uint64(snapFixedHeaderLen)-offLen-8-snapTrailerLen)/8 {
		return 0, 0, 0, fmt.Errorf("store: snapshot m=%d overflows the graph part", m)
	}
	graphLen = uint64(snapFixedHeaderLen) + offLen + 8 + 8*m + snapTrailerLen
	if graphLen > uint64(len(data)) {
		return 0, 0, 0, fmt.Errorf("store: snapshot is %d bytes, header implies ≥ %d", len(data), graphLen)
	}
	if adjLen := binary.LittleEndian.Uint64(data[snapFixedHeaderLen+offLen : snapFixedHeaderLen+offLen+8]); adjLen != 8*m {
		return 0, 0, 0, fmt.Errorf("store: snapshot adjacency section is %d bytes, m=%d implies %d", adjLen, m, 8*m)
	}
	return version, n, graphLen, nil
}

// PeekSnapshotMeta validates a snapshot image's header far enough to read
// its serving metadata — notably Meta.Seq, which identifies the WAL segment
// that continues after this checkpoint — without decoding the CSR body. The
// shipping layer uses it to label a checkpoint it serves or fetched; the
// full structural validation still happens at DecodeSnapshot time.
func PeekSnapshotMeta(data []byte) (SnapshotMeta, error) {
	if _, _, _, err := snapshotLayout(data); err != nil {
		return SnapshotMeta{}, err
	}
	return SnapshotMeta{
		Mode:  data[6],
		LazyK: binary.LittleEndian.Uint32(data[8:12]),
		Seq:   binary.LittleEndian.Uint64(data[12:20]),
	}, nil
}

// DecodeSnapshot parses the graph part of a snapshot produced by
// EncodeSnapshot or EncodeSnapshotWithState, validating the version, every
// length prefix, the graph checksum, and finally the full CSR structural
// invariants. Corrupt, truncated, or trailing-garbage input returns an
// error; it never panics and never allocates more than the input itself
// implies. A version-2 file's maintainer-state section is deliberately not
// examined here — DecodeSnapshotState judges it separately, so state-section
// corruption can never block loading the graph.
func DecodeSnapshot(data []byte) (*graph.Graph, SnapshotMeta, error) {
	var meta SnapshotMeta
	version, n, graphLen, err := snapshotLayout(data)
	if err != nil {
		return nil, meta, err
	}
	if version == SnapshotVersion && graphLen != uint64(len(data)) {
		return nil, meta, fmt.Errorf("store: snapshot is %d bytes, header implies %d", len(data), graphLen)
	}
	meta.Mode = data[6]
	meta.LazyK = binary.LittleEndian.Uint32(data[8:12])
	meta.Seq = binary.LittleEndian.Uint64(data[12:20])
	body, crcBytes := data[:graphLen-snapTrailerLen], data[graphLen-snapTrailerLen:graphLen]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(crcBytes); got != want {
		return nil, meta, fmt.Errorf("store: snapshot checksum mismatch (file %#x, computed %#x)", want, got)
	}

	offsets := make([]int64, n+1)
	decodeWords(offsets, data[snapFixedHeaderLen:])
	pos := uint64(snapFixedHeaderLen) + (n+1)*8 + 8 // through the adjLen field
	adj := make([]int32, (graphLen-snapTrailerLen-pos)/4)
	decodeWords(adj, data[pos:])
	g, err := graph.FromCSR(offsets, adj)
	if err != nil {
		return nil, meta, fmt.Errorf("store: snapshot body: %w", err)
	}
	return g, meta, nil
}

// writeSnapshotFile atomically replaces path with the encoded snapshot:
// write to a temp file in the same directory, fsync, rename over path, fsync
// the directory. A crash at any point leaves either the old or the new
// snapshot fully intact, never a torn one. A non-nil hook is the crash-
// injection seam: CrashInStateWrite fires between the graph part and the
// maintainer-state section of the temp file (tearing the section exactly
// where a real crash could), CrashAfterSnapshotTmp once the temp file is
// durable, just before the rename; a non-nil return aborts there.
func writeSnapshotFile(path string, g *graph.Graph, meta SnapshotMeta, st *MaintainerState, perm []int32, ts *TemporalState, hook func(point string) error) error {
	img := EncodeSnapshotFull(g, meta, st, perm, ts)
	split := len(img)
	if !st.empty() || len(perm) > 0 || !ts.empty() {
		// The graph part's length is fully determined by g.
		offsets, adj := g.CSR()
		split = snapFixedHeaderLen + len(offsets)*8 + 8 + len(adj)*4 + snapTrailerLen
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot temp: %w", err)
	}
	if _, err := f.Write(img[:split]); err != nil {
		f.Close()
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if split < len(img) {
		if hook != nil {
			if err := hook(CrashInStateWrite); err != nil {
				f.Close()
				return err
			}
		}
		if _, err := f.Write(img[split:]); err != nil {
			f.Close()
			return fmt.Errorf("store: snapshot state write: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if hook != nil {
		if err := hook(CrashAfterSnapshotTmp); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// readSnapshotFile loads and decodes the snapshot at path into a Recovered
// (Tail and TornBytes left for the caller): the graph always, the optional
// sections — maintainer state, relabel permutation, temporal state — on a
// best-effort basis. Each section is nil either when the snapshot does not
// carry it (its error is then nil: nothing was expected) or when the section
// is unusable (the error says why; the graph still serves).
func readSnapshotFile(path string) (*Recovered, error) {
	data, err := readFileShared(path)
	if err != nil {
		return nil, err
	}
	g, meta, err := DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	rec := &Recovered{Meta: meta, Graph: g}
	rec.State, rec.StateErr = DecodeSnapshotState(data)
	rec.Perm, rec.PermErr = DecodeSnapshotPerm(data)
	rec.Stamps, rec.StampsErr = DecodeSnapshotStamps(data)
	return rec, nil
}

// syncDir fsyncs a directory so a just-renamed or just-created entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
