package graph

import "testing"

// Corrupted structures must be rejected by Validate — these tests exercise
// every failure branch by assembling invalid CSR states directly.
func TestValidateRejectsCorruption(t *testing.T) {
	valid := func() *Graph {
		return mustG(t, 3, [][2]int32{{0, 1}, {1, 2}})
	}

	t.Run("offsets length", func(t *testing.T) {
		g := valid()
		g.offsets = g.offsets[:len(g.offsets)-1]
		if g.Validate() == nil {
			t.Fatal("want error")
		}
	})
	t.Run("out of range neighbor", func(t *testing.T) {
		g := valid()
		g.adj[0] = 99
		if g.Validate() == nil {
			t.Fatal("want error")
		}
	})
	t.Run("self loop", func(t *testing.T) {
		g := valid()
		// vertex 0's only neighbor becomes itself.
		g.adj[0] = 0
		if g.Validate() == nil {
			t.Fatal("want error")
		}
	})
	t.Run("unsorted neighbors", func(t *testing.T) {
		g := mustG(t, 4, [][2]int32{{1, 0}, {1, 2}, {1, 3}})
		nbrs := g.Neighbors(1)
		nbrs[0], nbrs[1] = nbrs[1], nbrs[0]
		if g.Validate() == nil {
			t.Fatal("want error")
		}
	})
	t.Run("asymmetric", func(t *testing.T) {
		g := mustG(t, 4, [][2]int32{{0, 1}, {2, 3}})
		// Rewrite vertex 0's neighbor from 1 to 2 without updating 2.
		g.adj[g.offsets[0]] = 2
		if g.Validate() == nil {
			t.Fatal("want error")
		}
	})
	t.Run("edge count mismatch", func(t *testing.T) {
		g := valid()
		g.m = 99
		if g.Validate() == nil {
			t.Fatal("want error")
		}
	})
	t.Run("valid passes", func(t *testing.T) {
		if err := valid().Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFromAdjacencyAsymmetricInput: FromAdjacency must symmetrize one-sided
// adjacency lists.
func TestFromAdjacencyAsymmetricInput(t *testing.T) {
	g, err := FromAdjacency([][]int32{{1, 2}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(2, 0) {
		t.Fatal("one-sided adjacency not symmetrized")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRankIsInverseOfOrder on a larger random-ish instance.
func TestRankIsInverseOfOrder(t *testing.T) {
	g := mustG(t, 200, genRing(200))
	order := g.Order()
	rank := g.Rank()
	if len(order) != 200 || len(rank) != 200 {
		t.Fatal("length mismatch")
	}
	for i, v := range order {
		if rank[v] != int32(i) {
			t.Fatalf("rank[order[%d]] = %d", i, rank[v])
		}
	}
	// The order must be a permutation.
	seen := make([]bool, 200)
	for _, v := range order {
		if seen[v] {
			t.Fatalf("vertex %d repeated", v)
		}
		seen[v] = true
	}
}
