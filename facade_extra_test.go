package egobw_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	egobw "repro"
)

func TestPublicLoadEdgeListFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := egobw.LoadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	if _, err := egobw.LoadEdgeListFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestPublicApproxBetweenness(t *testing.T) {
	g := egobw.GenerateBA(400, 3, 9)
	exact := egobw.Betweenness(g)
	approx := egobw.BetweennessApprox(g, 100, 7, 2)
	rho, err := egobw.SpearmanRho(exact, approx)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.7 {
		t.Fatalf("rho = %v; approximation should track exact ranking", rho)
	}
}

func TestPublicJaccard(t *testing.T) {
	a := []egobw.Result{{V: 1}, {V: 2}, {V: 3}}
	b := []egobw.Result{{V: 2}, {V: 3}, {V: 4}}
	if got := egobw.Jaccard(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("jaccard = %v, want 0.5", got)
	}
}

// TestEBWApproxBWComparison is the effectiveness ablation the approx
// extension enables: ego-betweenness against exact BW and against sampled
// BW on the same graph. The point of the paper survives the ablation —
// ego-betweenness agrees with exact betweenness about as well as a
// substantial pivot sample does.
func TestEBWApproxBWComparison(t *testing.T) {
	g := egobw.GenerateChungLu(1200, 2.3, 8, 150, 88)
	ebw := egobw.ComputeAll(g)
	bw := egobw.Betweenness(g)
	approx := egobw.BetweennessApprox(g, 300, 1, 0)

	rhoEgo, err := egobw.SpearmanRho(bw, ebw)
	if err != nil {
		t.Fatal(err)
	}
	rhoApprox, err := egobw.SpearmanRho(bw, approx)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("spearman vs exact BW: ego=%.3f approx(25%% pivots)=%.3f", rhoEgo, rhoApprox)
	if rhoEgo < 0.6 {
		t.Errorf("ego-betweenness rank correlation %v too weak", rhoEgo)
	}
}
