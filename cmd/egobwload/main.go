// Command egobwload drives an egobwd deployment with open-loop load and
// reports latency percentiles. Arrivals are scheduled at a fixed offered
// rate independent of server responsiveness, so server-side queueing shows
// up in the percentiles rather than being absorbed by the client (no
// coordinated omission).
//
// Usage:
//
//	egobwload -read http://localhost:8080 -graph demo -rate 500 -duration 10s
//	egobwload -read http://follower:8081 -write http://leader:8080 \
//	    -graph demo -rate 1000 -write-frac 0.1 -batch 16 -duration 30s
//	egobwload -graph demo -rate 800 -write-frac 0.5 -delete-frac 0.25 \
//	    -stamp-skew-ms 30000 -duration 30s
//	                             # windowed churn mix: delete batches aimed at
//	                             # recent inserts, inserts back-stamped up to
//	                             # 30s so part of the stream expires early
//	egobwload ... -json          # machine-readable summary on stdout
//
// With -write pointing at a leader and -read at a follower the summary also
// reports the replication lag observed on the read target during the run.
// On a windowed graph the summary adds drain accounting — group commits vs
// synthesized expiry batches and edges expired — taken from the write
// target's GraphInfo counters over the run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/load"
)

func main() {
	var (
		cfg     load.Config
		asJSON  bool
		timeout time.Duration
	)
	flag.StringVar(&cfg.ReadURL, "read", "http://localhost:8080", "base URL top-k reads are sent to")
	flag.StringVar(&cfg.WriteURL, "write", "", "base URL edge writes are sent to (default: same as -read)")
	flag.StringVar(&cfg.Graph, "graph", "", "graph name (required)")
	flag.Float64Var(&cfg.Rate, "rate", 100, "offered arrivals per second, reads and writes combined")
	flag.Float64Var(&cfg.WriteFrac, "write-frac", 0, "fraction of arrivals that are edge writes, in [0,1]")
	flag.Float64Var(&cfg.DeleteFrac, "delete-frac", 0, "fraction of writes sent as delete batches targeting recently inserted edges, in [0,1]")
	flag.Int64Var(&cfg.StampSkewMS, "stamp-skew-ms", 0, "back-date inserted edges' timestamps by up to this many ms (windowed graphs only: skewed inserts expire early and provoke churn)")
	flag.DurationVar(&cfg.Duration, "duration", 10*time.Second, "how long to offer load")
	flag.IntVar(&cfg.K, "k", 0, "top-k size for reads (0 = server default)")
	flag.StringVar(&cfg.Algo, "algo", "", "topk algo parameter (0 = server default)")
	flag.IntVar(&cfg.Batch, "batch", 8, "edges per write request")
	flag.Int64Var(&cfg.Seed, "seed", 1, "rng seed for arrival classification and generated edges")
	flag.IntVar(&cfg.MaxOutstanding, "max-outstanding", 0, "in-flight request cap; arrivals past it are dropped, not queued (0 = 1024)")
	flag.DurationVar(&timeout, "timeout", 30*time.Second, "per-request timeout")
	flag.BoolVar(&asJSON, "json", false, "emit the summary as JSON instead of text")
	flag.Parse()

	if err := run(cfg, timeout, asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "egobwload:", err)
		os.Exit(1)
	}
}

func run(cfg load.Config, timeout time.Duration, asJSON bool) error {
	if cfg.Graph == "" {
		return fmt.Errorf("-graph is required")
	}
	cfg.Client = newClient(timeout)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := load.Run(ctx, cfg)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Printf("duration   %v  offered %.0f rps  achieved %.0f rps  dropped %d\n",
		res.Duration.Round(time.Millisecond), res.Offered, res.Achieved, res.Dropped)
	printClass("reads", res.Reads)
	printClass("writes", res.Writes)
	printClass("deletes", res.Deletes)
	if res.GroupCommits > 0 {
		fmt.Printf("drains     %d commits  %d expiry batches  %d edges expired\n",
			res.GroupCommits, res.ExpiryBatches, res.ExpiredEdges)
	}
	if res.LagSeqMax > 0 || res.LagMSMax > 0 {
		fmt.Printf("replica lag  max %d batches / %.1f ms  last %d batches\n",
			res.LagSeqMax, res.LagMSMax, res.LagSeqLast)
	}
	return nil
}

func newClient(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout}
}

func printClass(name string, m load.Metrics) {
	if m.Count == 0 && m.Errors == 0 && m.Throttled == 0 {
		return
	}
	fmt.Printf("%-7s %7d ok  %d err  %d throttled  p50 %v  p90 %v  p99 %v  max %v\n",
		name, m.Count, m.Errors, m.Throttled,
		m.P50.Round(time.Microsecond), m.P90.Round(time.Microsecond),
		m.P99.Round(time.Microsecond), m.Max.Round(time.Microsecond))
}
