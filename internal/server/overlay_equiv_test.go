package server

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/ego"
	"repro/internal/gen"
	"repro/internal/graph"
)

// The overlay-vs-freeze equivalence property at the serving layer: after
// any stream of update batches, every algorithm's answer over the published
// view (usually an overlay chain) equals the same query over a from-scratch
// Freeze of the mirrored graph. Runs in both maintenance modes under -race
// (the Makefile's test target), which also exercises the background
// compactor racing the writer.

// overlayRegistry disables the dirty-ratio trigger and sets a deep chain
// bound so the tests control exactly when compaction happens.
func overlayRegistry(depth int, extra ...RegistryOption) *Registry {
	opts := append([]RegistryOption{
		WithBuildWorkers(2),
		WithCompactPolicy(depth, 1e9), // absurd ratio: depth is the only trigger
	}, extra...)
	return NewRegistry(opts...)
}

func TestOverlayServingEquivalence(t *testing.T) {
	const nBatches = 30
	for _, mode := range []string{ModeLocal, ModeLazy} {
		for _, seed := range []uint64{3, 11} {
			t.Run(fmt.Sprintf("%s/seed%d", mode, seed), func(t *testing.T) {
				rng := rand.New(rand.NewPCG(seed, 0x0E65))
				base := gen.BarabasiAlbert(80, 3, seed)
				mirror := graph.DynFromGraph(base)
				script := makeScript(rng, mirror, nBatches)

				// Deep depth bound: the chain grows across many drains, so
				// the queries genuinely run over multi-layer overlays.
				reg := overlayRegistry(64)
				if _, err := reg.Add("g", base, mode, 10); err != nil {
					t.Fatal(err)
				}
				for i, sb := range script {
					if _, err := reg.ApplyEdges("g", sb.edges, sb.insert); err != nil {
						t.Fatal(err)
					}
					if i%5 != 4 {
						continue
					}
					want := stateAfter(base, script, i+1)
					info, err := reg.Info("g")
					if err != nil {
						t.Fatal(err)
					}
					if info.N != want.NumVertices() || info.M != want.NumEdges() {
						t.Fatalf("batch %d: served shape (n=%d,m=%d), want (n=%d,m=%d)",
							i, info.N, info.M, want.NumVertices(), want.NumEdges())
					}
					assertRecovered(t, reg, "g", mode, want)
				}
				// The chain must actually have been exercised.
				info, _ := reg.Info("g")
				if info.OverlayDepth == 0 {
					t.Fatal("no overlay was ever served — the test lost its subject")
				}
			})
		}
	}
}

// TestOverlayCompactionEquivalence drives drains with an aggressive depth
// bound so the background compactor keeps flattening underneath live
// queries, then checks answers and counters.
func TestOverlayCompactionEquivalence(t *testing.T) {
	const nBatches = 40
	rng := rand.New(rand.NewPCG(21, 0x0E65))
	base := gen.BarabasiAlbert(90, 3, 21)
	mirror := graph.DynFromGraph(base)
	script := makeScript(rng, mirror, nBatches)

	reg := overlayRegistry(2) // compact every other drain
	if _, err := reg.Add("g", base, ModeLocal, 0); err != nil {
		t.Fatal(err)
	}
	for _, sb := range script {
		if _, err := reg.ApplyEdges("g", sb.edges, sb.insert); err != nil {
			t.Fatal(err)
		}
		// Read under the compactor: correctness must not depend on whether
		// the flatten has landed yet.
		if _, err := reg.TopK("g", 5, AlgoOpt, 1.05); err != nil {
			t.Fatal(err)
		}
	}
	assertRecovered(t, reg, "g", ModeLocal, stateAfter(base, script, nBatches))

	// The compactor ran: wait out the in-flight flatten, then verify the
	// counters and that the served chain respects the bound.
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, err := reg.Info("g")
		if err != nil {
			t.Fatal(err)
		}
		if info.Compactions > 0 && info.OverlayDepth < 2 {
			if info.CompactMS != info.SnapshotBuildMS {
				t.Fatalf("snapshot_build_ms %v must alias compact_ms %v", info.SnapshotBuildMS, info.CompactMS)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compactor never caught up: %+v", info)
		}
		time.Sleep(5 * time.Millisecond)
	}
	assertRecovered(t, reg, "g", ModeLocal, stateAfter(base, script, nBatches))
}

// TestScoresCopyOnWrite pins the ModeLocal score-vector contract: a drain
// that changes no score copies nothing (the zero-change fast path), a drain
// that changes a few scores copies only their chunks, and the scores served
// through every read shape stay exact throughout.
func TestScoresCopyOnWrite(t *testing.T) {
	// > 1 chunk so partial copies are observable (n = 1500 → 2 chunks).
	base := gen.BarabasiAlbert(1500, 3, 7)
	reg := overlayRegistry(64)
	if _, err := reg.Add("g", base, ModeLocal, 0); err != nil {
		t.Fatal(err)
	}
	info, _ := reg.Info("g")
	if info.ScoresCopied != 0 {
		t.Fatalf("fresh graph scores_copied = %d, want 0", info.ScoresCopied)
	}

	// Zero-change drain: an edge between two brand-new isolated vertices
	// moves no score (both endpoints go from CB 0 to d(d−1)/2 = 0, and
	// they share no neighbors). The epoch must advance — the graph did
	// change — while the score vector is carried over untouched.
	n := info.N
	up, err := reg.ApplyEdges("g", [][2]int32{{n, n + 1}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if up.Applied != 1 {
		t.Fatalf("zero-change batch applied %d, want 1", up.Applied)
	}
	info2, _ := reg.Info("g")
	if info2.Epoch != info.Epoch+1 {
		t.Fatalf("epoch %d, want %d", info2.Epoch, info.Epoch+1)
	}
	if info2.ScoresCopied != 0 {
		t.Fatalf("zero-change drain copied %d score entries, want 0", info2.ScoresCopied)
	}
	if vr, err := reg.EgoBetweenness("g", n); err != nil || vr.CB != 0 {
		t.Fatalf("new vertex CB = %v (%v), want 0", vr.CB, err)
	}

	// A real update dirties scores near its endpoints: chunks are copied,
	// but far fewer entries than two full vectors' worth.
	if _, err := reg.ApplyEdges("g", base.Edges()[:2], false); err != nil {
		t.Fatal(err)
	}
	info3, _ := reg.Info("g")
	if info3.ScoresCopied == 0 {
		t.Fatal("score-changing drain copied nothing")
	}
	if total := int64(info3.N) * 2; info3.ScoresCopied >= total {
		t.Fatalf("scores_copied = %d, want < %d (the CoW must beat full copies)", info3.ScoresCopied, total)
	}

	// Exactness after partial copies: every maintained score equals a
	// from-scratch recompute.
	e, err := reg.get("g")
	if err != nil {
		t.Fatal(err)
	}
	snap := e.snap.Load()
	want := ego.ComputeAll(snap.view)
	for v := int32(0); v < snap.view.NumVertices(); v++ {
		if math.Abs(snap.scores.At(v)-want[v]) > scoreEps {
			t.Fatalf("score(%d) = %v, want %v", v, snap.scores.At(v), want[v])
		}
	}
}

// TestScoreVecChunks unit-tests the chunked vector's sharing discipline.
func TestScoreVecChunks(t *testing.T) {
	src := make([]float64, 2*scoreChunkSize+100)
	for i := range src {
		src[i] = float64(i)
	}
	s := newScoreVec(src)
	if s.Len() != int32(len(src)) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(src))
	}
	for i := range src {
		if s.At(int32(i)) != src[i] {
			t.Fatalf("At(%d) = %v, want %v", i, s.At(int32(i)), src[i])
		}
	}

	// No change: same vector back.
	if next, copied := s.withUpdates(src, nil); next != s || copied != 0 {
		t.Fatalf("no-op withUpdates: (%p, %d), want (%p, 0)", next, copied, s)
	}

	// One dirty vertex in chunk 1: chunks 0 and 2 shared, chunk 1 fresh.
	src[scoreChunkSize+5] = -1
	next, copied := s.withUpdates(src, []int32{scoreChunkSize + 5})
	if copied != 1 {
		t.Fatalf("copied = %d, want 1", copied)
	}
	if next.At(scoreChunkSize+5) != -1 || s.At(scoreChunkSize+5) != float64(scoreChunkSize+5) {
		t.Fatal("dirty chunk not copied-on-write")
	}
	if &next.chunks[0][0] != &s.chunks[0][0] || &next.chunks[2][0] != &s.chunks[2][0] {
		t.Fatal("clean chunks not shared")
	}

	// Growth: the first grown vertex lands in the existing tail chunk
	// (copied because its score moved) and a second, brand-new chunk
	// materializes; the untouched chunks keep sharing.
	grown := append(append([]float64(nil), src...), make([]float64, scoreChunkSize)...)
	grown[len(src)] = 42
	next2, copied2 := next.withUpdates(grown, []int32{int32(len(src))})
	if copied2 != 2 {
		t.Fatalf("growth copied = %d, want 2 (dirty tail chunk + new chunk)", copied2)
	}
	if next2.Len() != int32(len(grown)) || next2.At(int32(len(src))) != 42 {
		t.Fatal("growth not visible")
	}
	if &next2.chunks[1][0] != &next.chunks[1][0] {
		t.Fatal("growth invalidated a clean chunk")
	}
}
