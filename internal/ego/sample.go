package ego

import (
	"repro/internal/graph"
	"repro/internal/nbr"
)

// The center API exposes the per-pair term of the ego-betweenness sum to
// the sampled estimator (internal/approx) without re-marking the center's
// neighborhood per probe: BeginCenter marks N(p) once in the scratch
// register, PairContribution then prices any neighbor pair with one
// HasEdge probe plus one fused three-way intersection count, and EndCenter
// releases the marks. Between Begin and End the scratch must not be used
// by EgoBetweenness (it shares the register).

// BeginCenter marks N(p) into the scratch register and returns p's sorted
// neighbor list (aliasing the view's storage — callers must not modify
// it). Every BeginCenter must be paired with EndCenter.
func (s *Scratch) BeginCenter(a graph.Adjacency, p int32) []int32 {
	s.reg.Ensure(a.NumVertices())
	nu := a.Neighbors(p)
	s.reg.Mark(nu)
	return nu
}

// EndCenter releases the marks set by BeginCenter.
func (s *Scratch) EndCenter() { s.reg.Unmark() }

// MarkedOf appends the members of list that the current center's marks
// cover — list ∩ N(p) for the p of the last BeginCenter — to dst and
// returns it. The output keeps list's sorted order. This is the estimator's
// per-center preprocessing hook: restricting every neighbor's adjacency to
// the ego net once turns each sampled pair probe from a full-list
// intersection into a merge of two short restricted lists.
func (s *Scratch) MarkedOf(dst, list []int32) []int32 {
	return s.reg.IntersectInto(dst, list)
}

// PairContribution returns the term the neighbor pair {u, v} of the
// current center p contributes to CB(p), normalized per pair: 0 when u and
// v are adjacent, 1/(c_p(u,v)+1) otherwise, where c_p(u,v) =
// |N(u) ∩ N(v) ∩ N(p)| is counted against the register marked by
// BeginCenter. The value lies in [0, 1], so uniform pair sampling
// estimates CB(p) = ub(p) · E[PairContribution] with ub(p) = d(d−1)/2 —
// the bounded-range variable the estimator's concentration bounds need.
func (s *Scratch) PairContribution(a graph.Adjacency, u, v int32) float64 {
	if a.HasEdge(u, v) {
		return 0
	}
	c := nbr.CommonMarkedCount(s.reg, a.Neighbors(u), a.Neighbors(v))
	return 1 / float64(c+1)
}
