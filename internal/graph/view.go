package graph

import "sort"

// View is the read-only graph interface the whole query stack runs on: the
// ego-betweenness kernels, the top-k searches, the statistics, and the
// serving layer's snapshots all accept a View. Two production
// implementations exist — the frozen CSR *Graph (a compacted base) and
// *Overlay (a base plus copy-on-write deltas for the vertices dirtied since
// that base) — and the mutable *DynGraph satisfies it too, which the tests
// use to cross-check representations.
//
// Every implementation must present the same contract the CSR does: sorted
// ascending neighbor lists, symmetric loop-free adjacency, and Neighbors
// slices that the caller must not modify.
type View interface {
	Adjacency
	MaxDegree() int32
}

var (
	_ View = (*Graph)(nil)
	_ View = (*DynGraph)(nil)
	_ View = (*Overlay)(nil)
)

// OrderOf returns all vertices of a view sorted by the total order ≺
// (non-increasing degree, ties broken by descending identifier). Degrees
// are materialized once before sorting: on an overlay a Degree call walks
// the delta chain, and paying that per comparison would put an O(depth)
// factor on the sort's n·log n.
func OrderOf(a Adjacency) []int32 {
	n := a.NumVertices()
	deg := make([]int32, n)
	order := make([]int32, n)
	for v := int32(0); v < n; v++ {
		deg[v] = a.Degree(v)
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool {
		u, v := order[i], order[j]
		if deg[u] != deg[v] {
			return deg[u] > deg[v]
		}
		return u > v
	})
	return order
}

// RankOf returns rank[v] = position of v in OrderOf(a). Lower rank means
// earlier in ≺ (higher degree); it is the orientation key for G+.
func RankOf(a Adjacency) []int32 {
	return rankFromOrder(OrderOf(a))
}

// OrderOfLabeled is OrderOf with degree ties broken by descending external
// label ext[v] instead of the internal identifier. Running a search on a
// relabeled graph with its Ext labels therefore visits the same external
// vertices in the same ≺ positions as the unrelabeled run — the total order,
// and everything derived from it, is invariant under internal relabeling.
// A nil ext falls back to OrderOf.
func OrderOfLabeled(a Adjacency, ext []int32) []int32 {
	if ext == nil {
		return OrderOf(a)
	}
	n := a.NumVertices()
	deg := make([]int32, n)
	order := make([]int32, n)
	for v := int32(0); v < n; v++ {
		deg[v] = a.Degree(v)
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool {
		u, v := order[i], order[j]
		if deg[u] != deg[v] {
			return deg[u] > deg[v]
		}
		return ext[u] > ext[v]
	})
	return order
}

// RankOfLabeled is RankOf under the OrderOfLabeled total order.
func RankOfLabeled(a Adjacency, ext []int32) []int32 {
	return rankFromOrder(OrderOfLabeled(a, ext))
}

func rankFromOrder(order []int32) []int32 {
	rank := make([]int32, len(order))
	for i, v := range order {
		rank[v] = int32(i)
	}
	return rank
}

// EachEdgeIn calls fn exactly once for every undirected edge of a view,
// with u < v by identifier. Iteration stops early if fn returns false.
func EachEdgeIn(a Adjacency, fn func(u, v int32) bool) {
	n := a.NumVertices()
	for u := int32(0); u < n; u++ {
		for _, v := range a.Neighbors(u) {
			if v <= u {
				continue
			}
			if !fn(u, v) {
				return
			}
		}
	}
}
