package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/dynamic"
	"repro/internal/ego"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/store"
)

// PRBenchEntry is one dataset's regression measurements: ns/op for the
// hot-path operations this repository's PRs optimize, in a machine-readable
// shape so the perf trajectory can be tracked across PRs.
type PRBenchEntry struct {
	Dataset string `json:"dataset"`
	N       int32  `json:"n"`
	M       int64  `json:"m"`

	ComputeAllNs        int64   `json:"compute_all_ns_op"`
	OptBSearchK100Ns    int64   `json:"opt_bsearch_k100_ns_op"`
	MaintainerInsertNs  int64   `json:"maintainer_insert_edge_ns_op"`
	SnapshotExportLegNs int64   `json:"snapshot_export_legacy_ns"`       // sort+dedup FromAdjacency path
	SnapshotExportNs    int64   `json:"snapshot_export_freeze_ns"`       // direct CSR Freeze (1 worker)
	SnapshotBuild1WNs   int64   `json:"snapshot_build_1w_ns"`            // EdgePEBW engine + export, 1 worker
	SnapshotBuild4WNs   int64   `json:"snapshot_build_4w_ns"`            // EdgePEBW engine + export, 4 workers
	ExportSpeedup       float64 `json:"snapshot_export_speedup"`         // legacy / freeze wall-clock
	BuildSpeedup4W      float64 `json:"snapshot_build_speedup_4w"`       // 1w / 4w wall-clock
	BuildBalanceBound4W float64 `json:"snapshot_build_balance_bound_4w"` // machine-independent bound

	// Persistence (PR 3, internal/store): the durability costs the serving
	// layer adds. Encode/checkpoint run inside the write lock at every
	// checkpoint; the fsync'd WAL append runs on every update batch; recover
	// is the full restart path (snapshot load + exact maintainer rebuild +
	// 200-batch WAL tail replay), dominated by the ComputeAll rebuild.
	StoreSnapshotBytes    int64 `json:"store_snapshot_bytes"`
	StoreSnapshotEncodeNs int64 `json:"store_snapshot_encode_ns"`
	StoreSnapshotDecodeNs int64 `json:"store_snapshot_decode_ns"`
	StoreWALAppendNs      int64 `json:"store_wal_append_sync_ns_op"`
	StoreCheckpointNs     int64 `json:"store_checkpoint_ns"`
	StoreRecoverNs        int64 `json:"store_recover_ns"`

	// Write throughput (PR 4, the group-commit pipeline): durable-ack
	// batches/sec through a durable serving registry. The serialized row
	// (group limit 1) is the pre-pipeline baseline — one fsync and one
	// snapshot export per batch — under 16 concurrent writers; the
	// pipelined rows let the writer goroutine coalesce. The speedup is
	// pipelined-16w over serialized-16w on the same machine.
	WriteSerialized16WBps float64 `json:"write_serialized_16w_batches_per_sec"`
	WritePipelined1WBps   float64 `json:"write_pipelined_1w_batches_per_sec"`
	WritePipelined4WBps   float64 `json:"write_pipelined_4w_batches_per_sec"`
	WritePipelined16WBps  float64 `json:"write_pipelined_16w_batches_per_sec"`
	WriteSpeedup16W       float64 `json:"write_throughput_speedup_16w"`
	WriteGroupMean16W     float64 `json:"write_group_mean_16w"`
}

// PRBench is the bench-regression document (currently BENCH_PR4.json).
type PRBench struct {
	GeneratedAt string         `json:"generated_at"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Note        string         `json:"note"`
	Datasets    []PRBenchEntry `json:"datasets"`
}

// prBenchUpdates is how many random edge updates feed the maintainer
// measurement.
const prBenchUpdates = 200

// RunPRBench measures the regression suite on the named generated datasets.
func RunPRBench(names []string) PRBench {
	doc := PRBench{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note: "wall-clock speedups saturate at the host's physical core count; " +
			"snapshot_build_balance_bound_4w is the machine-independent speedup " +
			"bound from the EdgePEBW work partition (DESIGN.md §5)",
	}
	for _, name := range names {
		g := dataset.MustLoad(name)
		e := PRBenchEntry{Dataset: name, N: g.NumVertices(), M: g.NumEdges()}

		e.ComputeAllNs = int64(timeIt(func() { ego.ComputeAll(g) }))
		e.OptBSearchK100Ns = int64(timeIt(func() { ego.OptBSearch(g, 100, 1.05) }))

		// Maintainer.InsertEdge: delete a sample of existing edges, then
		// time re-inserting them (the steady-state update path).
		m := dynamic.NewMaintainer(g)
		edges := pickEdges(g, prBenchUpdates, 0xBE7)
		for _, ed := range edges {
			must(m.DeleteEdge(ed[0], ed[1]))
		}
		e.MaintainerInsertNs = int64(perOp(len(edges), func() {
			for _, ed := range edges {
				must(m.InsertEdge(ed[0], ed[1]))
			}
		}))

		// Snapshot export: the legacy sort+dedup construction versus the
		// direct CSR freeze used by the serving layer's write path.
		dyn := m.Graph()
		lists := make([][]int32, dyn.NumVertices())
		for v := int32(0); v < dyn.NumVertices(); v++ {
			lists[v] = dyn.Neighbors(v)
		}
		e.SnapshotExportLegNs = int64(timeIt(func() {
			if _, err := graph.FromAdjacency(lists); err != nil {
				panic(err)
			}
		}))
		e.SnapshotExportNs = int64(timeIt(func() { dyn.Freeze(1) }))
		if e.SnapshotExportNs > 0 {
			e.ExportSpeedup = float64(e.SnapshotExportLegNs) / float64(e.SnapshotExportNs)
		}

		// Full snapshot build (initial scores via the EdgePEBW engine plus
		// the CSR export) at 1 and 4 workers.
		var bound parallel.Stats
		e.SnapshotBuild1WNs = int64(timeIt(func() {
			parallel.ComputeAll(g, 1, parallel.EdgePEBW)
			dyn.Freeze(1)
		}))
		e.SnapshotBuild4WNs = int64(timeIt(func() {
			_, bound = parallel.ComputeAll(g, 4, parallel.EdgePEBW)
			dyn.Freeze(4)
		}))
		if e.SnapshotBuild4WNs > 0 {
			e.BuildSpeedup4W = float64(e.SnapshotBuild1WNs) / float64(e.SnapshotBuild4WNs)
		}
		e.BuildBalanceBound4W = bound.SpeedupBound(4)

		measureStore(&e, g, edges)
		measureWrites(&e, g)

		doc.Datasets = append(doc.Datasets, e)
	}
	return doc
}

// measureStore times the persistence layer on dataset graph g: snapshot
// codec, fsync'd WAL appends (one single-edge delete batch per sampled
// edge), one checkpoint, and the full recovery path for a store whose WAL
// tail holds those batches.
func measureStore(e *PRBenchEntry, g *graph.Graph, edges [][2]int32) {
	dir, err := os.MkdirTemp("", "egobw-prbench-store-*")
	must(err)
	defer os.RemoveAll(dir)

	meta := store.SnapshotMeta{}
	enc := store.EncodeSnapshot(g, meta)
	e.StoreSnapshotBytes = int64(len(enc))
	e.StoreSnapshotEncodeNs = int64(timeIt(func() { store.EncodeSnapshot(g, meta) }))
	e.StoreSnapshotDecodeNs = int64(timeIt(func() {
		if _, _, err := store.DecodeSnapshot(enc); err != nil {
			panic(err)
		}
	}))

	st, err := store.Create(filepath.Join(dir, "g"), g, meta)
	must(err)
	e.StoreWALAppendNs = int64(perOp(len(edges), func() {
		for _, ed := range edges {
			if _, err := st.AppendBatch(false, [][2]int32{ed}); err != nil {
				panic(err)
			}
		}
	}))
	e.StoreCheckpointNs = int64(timeIt(func() {
		must(st.Checkpoint(g, store.SnapshotMeta{Seq: st.Seq()}))
	}))
	// Refill the WAL so recovery replays a realistic tail, then measure the
	// whole restart path the serving layer runs: open + exact maintainer
	// rebuild + deterministic batch replay.
	for _, ed := range edges {
		_, err := st.AppendBatch(false, [][2]int32{ed})
		must(err)
	}
	must(st.Close())
	e.StoreRecoverNs = int64(timeIt(func() {
		st2, rec, err := store.Open(filepath.Join(dir, "g"))
		must(err)
		m := dynamic.NewMaintainer(rec.Graph)
		for _, b := range rec.Tail {
			for _, ed := range b.Edges {
				if b.Insert {
					must(m.InsertEdge(ed[0], ed[1]))
				} else {
					must(m.DeleteEdge(ed[0], ed[1]))
				}
			}
		}
		must(st2.Close())
	}))
}

// WritePRBench runs the regression suite and writes BENCH-style JSON to
// path.
func WritePRBench(path string, names []string) error {
	doc := RunPRBench(names)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	return nil
}
