package graph

import (
	"fmt"
	"sort"
)

// FromEdges builds an immutable Graph over n vertices from an undirected edge
// list. Self-loops are dropped and duplicate edges (in either direction) are
// collapsed. Endpoints must lie in [0, n). Pass n < 0 to infer n as
// max(endpoint)+1.
func FromEdges(n int32, edges [][2]int32) (*Graph, error) {
	if n < 0 {
		n = 0
		for _, e := range edges {
			if e[0] >= n {
				n = e[0] + 1
			}
			if e[1] >= n {
				n = e[1] + 1
			}
		}
	}
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e[0], e[1], n)
		}
	}

	deg := make([]int64, n+1)
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		deg[e[0]+1]++
		deg[e[1]+1]++
	}
	offsets := make([]int64, n+1)
	for v := int32(1); v <= n; v++ {
		offsets[v] = offsets[v-1] + deg[v]
	}
	adj := make([]int32, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		adj[cursor[u]] = v
		cursor[u]++
		adj[cursor[v]] = u
		cursor[v]++
	}

	// Sort each neighbor list and deduplicate in place, compacting the
	// adjacency array afterwards.
	write := int64(0)
	newOffsets := make([]int64, n+1)
	for v := int32(0); v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		nbrs := adj[lo:hi]
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		newOffsets[v] = write
		var prev int32 = -1
		for _, w := range nbrs {
			if w == prev {
				continue
			}
			adj[write] = w
			write++
			prev = w
		}
	}
	newOffsets[n] = write
	adj = adj[:write:write]

	g := &Graph{offsets: newOffsets, adj: adj, n: n, m: write / 2}
	for v := int32(0); v < n; v++ {
		if d := g.Degree(v); d > g.maxDeg {
			g.maxDeg = d
		}
	}
	return g, nil
}

// MustFromEdges is FromEdges that panics on error; intended for tests and
// hard-coded example graphs.
func MustFromEdges(n int32, edges [][2]int32) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// FromAdjacency builds a Graph from per-vertex neighbor lists. The lists do
// not have to be sorted or deduplicated; symmetry is enforced by treating
// every (v, w) entry as an undirected edge.
func FromAdjacency(lists [][]int32) (*Graph, error) {
	var edges [][2]int32
	for v, nbrs := range lists {
		for _, w := range nbrs {
			if int32(v) < w || (w < int32(v) && !contains32(lists[w], int32(v))) {
				edges = append(edges, [2]int32{int32(v), w})
			}
		}
	}
	return FromEdges(int32(len(lists)), edges)
}

func contains32(s []int32, x int32) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
