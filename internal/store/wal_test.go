package store

import (
	"bytes"
	"reflect"
	"testing"
)

func walImage(batches ...Batch) []byte {
	buf := walFileHeader()
	for _, b := range batches {
		buf = append(buf, EncodeBatch(b)...)
	}
	return buf
}

var walBatches = []Batch{
	{Seq: 1, Insert: true, Edges: [][2]int32{{0, 1}, {2, 3}}},
	{Seq: 2, Insert: false, Edges: [][2]int32{{0, 1}}},
	{Seq: 3, Insert: true, Edges: [][2]int32{}},
	{Seq: 4, Insert: true, Edges: [][2]int32{{7, 9}, {1, 5}, {5, 1}}},
}

func TestWALRoundTrip(t *testing.T) {
	img := walImage(walBatches...)
	got, valid, err := DecodeWAL(img)
	if err != nil {
		t.Fatal(err)
	}
	if valid != len(img) {
		t.Fatalf("valid = %d, want full image %d", valid, len(img))
	}
	if len(got) != len(walBatches) {
		t.Fatalf("decoded %d batches, want %d", len(got), len(walBatches))
	}
	for i := range got {
		if got[i].Seq != walBatches[i].Seq || got[i].Insert != walBatches[i].Insert ||
			!reflect.DeepEqual(append([][2]int32{}, got[i].Edges...), append([][2]int32{}, walBatches[i].Edges...)) {
			t.Fatalf("batch %d = %+v, want %+v", i, got[i], walBatches[i])
		}
	}
}

// TestWALTornTail: a record cut off mid-write (the only partial state a
// crash can leave in an append-only file) must terminate the valid prefix
// exactly at the last complete record.
func TestWALTornTail(t *testing.T) {
	complete := walImage(walBatches[:2]...)
	torn := append(append([]byte(nil), complete...), EncodeBatch(walBatches[2])[:5]...)
	got, valid, err := DecodeWAL(torn)
	if err != nil {
		t.Fatal(err)
	}
	if valid != len(complete) {
		t.Fatalf("valid = %d, want %d", valid, len(complete))
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d batches, want 2", len(got))
	}
}

// TestWALCorruptRecordEndsLog: a flipped byte inside a record invalidates
// its CRC; everything from that record on is dropped, even if later bytes
// happen to look like records.
func TestWALCorruptRecordEndsLog(t *testing.T) {
	img := walImage(walBatches...)
	hdrAndFirst := walHeaderLen + len(EncodeBatch(walBatches[0]))
	img[hdrAndFirst+10] ^= 0x40 // inside the second record's payload
	got, valid, err := DecodeWAL(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("decoded %d batches, want only the first", len(got))
	}
	if valid != hdrAndFirst {
		t.Fatalf("valid = %d, want %d", valid, hdrAndFirst)
	}
}

func TestWALHeaderRejections(t *testing.T) {
	good := walImage()
	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'
	badVersion := append([]byte(nil), good...)
	badVersion[4] = 0xFF
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:5],
		"bad magic":   badMagic,
		"bad version": badVersion,
	}
	for name, data := range cases {
		if _, _, err := DecodeWAL(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestWALRecordLengthLies: a record whose declared payload length disagrees
// with its edge count must not be trusted even if the CRC was forged to
// match.
func TestWALRecordLengthLies(t *testing.T) {
	rec := EncodeBatch(walBatches[0])
	// Shrink the declared edge count without shortening the payload.
	rec[8+8+1] = 1 // numEdges low byte: 2 → 1
	// decodeRecord must reject it (the CRC already fails; even a forged CRC
	// would hit the payloadLen/numEdges consistency check).
	if _, _, ok := decodeRecord(rec); ok {
		t.Fatal("inconsistent record accepted")
	}
	img := append(walFileHeader(), rec...)
	if got, valid, err := DecodeWAL(img); err != nil || len(got) != 0 || valid != walHeaderLen {
		t.Fatalf("got %d batches, valid=%d, err=%v; want torn at header", len(got), valid, err)
	}
}

// TestWALSeqRegressionEndsLog: a duplicated or regressing sequence — the
// shape a doubled or re-shipped segment leaves if it is ever spliced into a
// local log — must end the valid prefix at the last record before the
// regression, so recovery truncates the double-apply hazard away instead of
// replaying it.
func TestWALSeqRegressionEndsLog(t *testing.T) {
	for name, tail := range map[string]Batch{
		"duplicate":  {Seq: 2, Insert: true, Edges: [][2]int32{{4, 5}}},
		"regression": {Seq: 1, Insert: true, Edges: [][2]int32{{4, 5}}},
	} {
		t.Run(name, func(t *testing.T) {
			good := walImage(walBatches[:2]...)
			img := append(append([]byte(nil), good...), EncodeBatch(tail)...)
			// A record after the regression must not resurrect the log.
			img = append(img, EncodeBatch(Batch{Seq: 3, Insert: true, Edges: [][2]int32{{6, 7}}})...)
			got, valid, err := DecodeWAL(img)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 2 || got[1].Seq != 2 {
				t.Fatalf("decoded %d batches, want the 2 before the regression", len(got))
			}
			if valid != len(good) {
				t.Fatalf("valid = %d, want %d (regression truncated)", valid, len(good))
			}
		})
	}
}

// streamImage is a headerless record stream, the WAL-shipping wire format.
func streamImage(batches ...Batch) []byte {
	var buf []byte
	for _, b := range batches {
		buf = append(buf, EncodeBatch(b)...)
	}
	return buf
}

func TestDecodeStream(t *testing.T) {
	img := streamImage(walBatches...)
	got, consumed, err := DecodeStream(img, 1)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(img) || len(got) != len(walBatches) {
		t.Fatalf("consumed %d/%d bytes, %d batches", consumed, len(img), len(got))
	}

	// A chunk ending mid-record is an incomplete tail, not an error: the
	// complete prefix decodes, consumed points at the partial record, and the
	// next poll re-fetches from there.
	torn := img[:len(img)-3]
	got, consumed, err = DecodeStream(torn, 1)
	if err != nil {
		t.Fatalf("torn tail must not be a stream error: %v", err)
	}
	want := len(streamImage(walBatches[:3]...))
	if consumed != want || len(got) != 3 {
		t.Fatalf("torn stream: consumed %d (want %d), %d batches (want 3)", consumed, want, len(got))
	}
	// Resuming at the partial record with the leader's next bytes completes it.
	got, consumed, err = DecodeStream(img[want:], 4)
	if err != nil || len(got) != 1 || got[0].Seq != 4 || consumed != len(img)-want {
		t.Fatalf("resume after torn tail: %d batches, consumed %d, err %v", len(got), consumed, err)
	}
}

// TestDecodeStreamHardErrors: on the wire, unlike in local recovery, nothing
// is repairable by truncation — a corrupt record or any sequence mismatch on
// a complete record is a protocol error.
func TestDecodeStreamHardErrors(t *testing.T) {
	img := streamImage(walBatches[:2]...)
	corrupt := append([]byte(nil), img...)
	corrupt[len(corrupt)-1] ^= 0x10
	if _, _, err := DecodeStream(corrupt, 1); err == nil {
		t.Fatal("corrupt record accepted on the stream")
	}
	if _, _, err := DecodeStream(img, 2); err == nil {
		t.Fatal("stream starting at the wrong sequence accepted")
	}
	gap := streamImage(walBatches[0], walBatches[2]) // seq 1 then 3
	if batches, _, err := DecodeStream(gap, 1); err == nil {
		t.Fatal("sequence gap accepted on the stream")
	} else if len(batches) != 1 {
		t.Fatalf("the valid prefix before the gap should still decode, got %d batches", len(batches))
	}
	dup := streamImage(walBatches[0], walBatches[0])
	if _, _, err := DecodeStream(dup, 1); err == nil {
		t.Fatal("duplicated record accepted on the stream")
	}
}

func TestWALEncodeIsCanonical(t *testing.T) {
	for _, b := range walBatches {
		enc := EncodeBatch(b)
		dec, size, ok := decodeRecord(enc)
		if !ok || size != len(enc) {
			t.Fatalf("decodeRecord(%+v) failed", b)
		}
		if !bytes.Equal(EncodeBatch(dec), enc) {
			t.Fatalf("re-encoding of %+v is not canonical", b)
		}
	}
}
