package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"repro/internal/graph"
)

// SnapshotVersion is the on-disk snapshot format version this build writes
// and the only one it accepts. Bump it on any layout change; decoders reject
// other versions loudly instead of misreading them.
const SnapshotVersion = 1

// snapMagic identifies a snapshot file ("EBWS": Ego-BetWeenness Snapshot).
var snapMagic = [4]byte{'E', 'B', 'W', 'S'}

// SnapshotMeta is the serving metadata carried in a snapshot header.
type SnapshotMeta struct {
	// Mode is an application-defined maintenance-mode tag (the serving
	// layer stores 0 for local, 1 for lazy).
	Mode uint8
	// LazyK is the maintained k for lazy-mode graphs (0 otherwise).
	LazyK uint32
	// Seq is the last WAL batch sequence folded into this snapshot. WAL
	// records with Seq ≤ this are already reflected in the graph.
	Seq uint64
}

// Snapshot layout (all little-endian, fixed field order — the encoding of a
// given graph+meta is byte-stable, which the golden-file tests pin down):
//
//	[0]  magic    [4]byte "EBWS"
//	[4]  version  uint16
//	[6]  mode     uint8
//	[7]  reserved uint8 (must be 0)
//	[8]  lazyK    uint32
//	[12] seq      uint64
//	[20] n        uint32
//	[24] m        uint64
//	[32] offLen   uint64 = (n+1)*8, then offLen bytes of int64 offsets
//	[..] adjLen   uint64 = 2m*4,    then adjLen bytes of int32 adjacency
//	[..] crc      uint32 (IEEE, over every preceding byte)
const (
	snapFixedHeaderLen = 40 // through the offLen field
	snapTrailerLen     = 4  // the crc
)

// EncodeSnapshot serializes g and its metadata into the versioned,
// CRC-trailed snapshot format.
func EncodeSnapshot(g *graph.Graph, meta SnapshotMeta) []byte {
	offsets, adj := g.CSR()
	offLen := uint64(len(offsets)) * 8
	adjLen := uint64(len(adj)) * 4
	buf := make([]byte, 0, snapFixedHeaderLen+int(offLen)+8+int(adjLen)+snapTrailerLen)
	buf = append(buf, snapMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, SnapshotVersion)
	buf = append(buf, meta.Mode, 0)
	buf = binary.LittleEndian.AppendUint32(buf, meta.LazyK)
	buf = binary.LittleEndian.AppendUint64(buf, meta.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.NumVertices()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(g.NumEdges()))
	buf = binary.LittleEndian.AppendUint64(buf, offLen)
	for _, o := range offsets {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o))
	}
	buf = binary.LittleEndian.AppendUint64(buf, adjLen)
	for _, a := range adj {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(a))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeSnapshot parses a snapshot produced by EncodeSnapshot, validating
// the version, every length prefix, the checksum, and finally the full CSR
// structural invariants. Corrupt, truncated, or trailing-garbage input
// returns an error; it never panics and never allocates more than the input
// itself implies.
func DecodeSnapshot(data []byte) (*graph.Graph, SnapshotMeta, error) {
	var meta SnapshotMeta
	if len(data) < snapFixedHeaderLen+8+snapTrailerLen {
		return nil, meta, fmt.Errorf("store: snapshot truncated (%d bytes)", len(data))
	}
	if [4]byte(data[0:4]) != snapMagic {
		return nil, meta, fmt.Errorf("store: bad snapshot magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != SnapshotVersion {
		return nil, meta, fmt.Errorf("store: unsupported snapshot version %d (this build reads %d)", v, SnapshotVersion)
	}
	meta.Mode = data[6]
	if data[7] != 0 {
		return nil, meta, fmt.Errorf("store: corrupt snapshot header (reserved byte %#x)", data[7])
	}
	meta.LazyK = binary.LittleEndian.Uint32(data[8:12])
	meta.Seq = binary.LittleEndian.Uint64(data[12:20])
	n64 := uint64(binary.LittleEndian.Uint32(data[20:24]))
	m := binary.LittleEndian.Uint64(data[24:32])
	if n64 > math.MaxInt32 {
		return nil, meta, fmt.Errorf("store: snapshot n=%d beyond int32", n64)
	}
	offLen := binary.LittleEndian.Uint64(data[32:40])
	if offLen != (n64+1)*8 {
		return nil, meta, fmt.Errorf("store: snapshot offsets section is %d bytes, n=%d implies %d", offLen, n64, (n64+1)*8)
	}
	// Every section length is determined by the header, so the total file
	// size is too; requiring exact equality rejects truncation and trailing
	// garbage before any allocation, and bounds every allocation below by
	// len(data).
	total := uint64(snapFixedHeaderLen) + offLen + 8 + 8*m + snapTrailerLen
	if m > (math.MaxUint64-uint64(snapFixedHeaderLen)-offLen-8-snapTrailerLen)/8 || total != uint64(len(data)) {
		return nil, meta, fmt.Errorf("store: snapshot is %d bytes, header implies %d", len(data), total)
	}
	if adjLen := binary.LittleEndian.Uint64(data[snapFixedHeaderLen+offLen : snapFixedHeaderLen+offLen+8]); adjLen != 8*m {
		return nil, meta, fmt.Errorf("store: snapshot adjacency section is %d bytes, m=%d implies %d", adjLen, m, 8*m)
	}
	body, crcBytes := data[:len(data)-snapTrailerLen], data[len(data)-snapTrailerLen:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(crcBytes); got != want {
		return nil, meta, fmt.Errorf("store: snapshot checksum mismatch (file %#x, computed %#x)", want, got)
	}

	offsets := make([]int64, n64+1)
	pos := uint64(snapFixedHeaderLen)
	for i := range offsets {
		offsets[i] = int64(binary.LittleEndian.Uint64(data[pos : pos+8]))
		pos += 8
	}
	pos += 8 // adjLen field
	adj := make([]int32, 2*m)
	for i := range adj {
		adj[i] = int32(binary.LittleEndian.Uint32(data[pos : pos+4]))
		pos += 4
	}
	g, err := graph.FromCSR(offsets, adj)
	if err != nil {
		return nil, meta, fmt.Errorf("store: snapshot body: %w", err)
	}
	return g, meta, nil
}

// writeSnapshotFile atomically replaces path with the encoded snapshot:
// write to a temp file in the same directory, fsync, rename over path, fsync
// the directory. A crash at any point leaves either the old or the new
// snapshot fully intact, never a torn one. A non-nil hook is the crash-
// injection seam: it runs once the temp file is durable, just before the
// rename (CrashAfterSnapshotTmp), and a non-nil return aborts there.
func writeSnapshotFile(path string, g *graph.Graph, meta SnapshotMeta, hook func(point string) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot temp: %w", err)
	}
	if _, err := f.Write(EncodeSnapshot(g, meta)); err != nil {
		f.Close()
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if hook != nil {
		if err := hook(CrashAfterSnapshotTmp); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// readSnapshotFile loads and decodes the snapshot at path.
func readSnapshotFile(path string) (*graph.Graph, SnapshotMeta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, SnapshotMeta{}, err
	}
	g, meta, err := DecodeSnapshot(data)
	if err != nil {
		return nil, SnapshotMeta{}, fmt.Errorf("%s: %w", path, err)
	}
	return g, meta, nil
}

// syncDir fsyncs a directory so a just-renamed or just-created entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
