// Package ship implements snapshot/WAL-shipping replication (DESIGN.md §13):
// a leader exposes, per graph, its latest durable checkpoint plus an
// offset-addressed stream of its WAL tail, and a follower bootstraps from the
// checkpoint, then tails the stream and applies batches through the same
// deterministic application path crash recovery uses — serving lock-free
// reads at a bounded-staleness epoch on another process or machine.
//
// The wire format IS the storage format. A checkpoint travels as the
// snapshot file's bytes (internal/store's CRC-checked binary CSR image,
// maintainer-state section included, so the follower boots via the fast
// O(load) import path), and the WAL tail travels as raw WAL record bytes —
// the same self-delimiting, per-record CRC-checked layout the leader fsyncs
// locally. Nothing is re-encoded on either side.
//
// Addressing: a WAL stream position is (segment, offset). The segment is the
// sequence number folded into the leader's on-disk snapshot — every
// checkpoint truncates the WAL and thereby starts a new segment — and the
// offset is a plain byte offset into that segment's WAL file. When a
// follower presents a superseded segment the leader answers ErrSegmentGone
// (HTTP 410) and the follower resynchronizes: from the new segment's start
// when its applied sequence still reaches into it, from a fresh checkpoint
// when it does not.
//
// Failure contract: a chunk ending mid-record is normal (the next poll
// re-fetches from the last complete record), but a checksum failure or any
// sequence discontinuity on a complete record is a hard protocol error —
// the follower discards the stream and re-bootstraps from a checkpoint.
package ship

import (
	"errors"

	"repro/internal/store"
)

// Status is a leader's current shipping position for one graph.
type Status struct {
	// Segment identifies the current WAL segment: the batch sequence folded
	// into the leader's on-disk snapshot. It changes at every checkpoint.
	Segment uint64 `json:"segment"`
	// Seq is the last batch sequence the leader has made durable — the
	// high-water mark a caught-up follower converges to.
	Seq uint64 `json:"seq"`
	// WALBytes is the current segment's file length (header included): the
	// exclusive upper bound of fetchable offsets.
	WALBytes int64 `json:"wal_bytes"`
}

// Errors a Source reports and the HTTP layer maps to status codes (and the
// client maps back, so follower logic matches on these regardless of
// transport).
var (
	// ErrUnknownGraph: the leader serves no graph by that name (HTTP 404).
	ErrUnknownGraph = errors.New("ship: unknown graph")
	// ErrNotShippable: the graph exists but has no durable store — nothing
	// to checkpoint or tail (HTTP 409).
	ErrNotShippable = errors.New("ship: graph has no durable store to ship")
	// ErrSegmentGone: the requested WAL segment was superseded by a
	// checkpoint; the follower must resynchronize (HTTP 410).
	ErrSegmentGone = errors.New("ship: wal segment superseded by a checkpoint")
)

// Source is the leader side: what the shipping handler serves. The serving
// registry implements it lock-free — status from its atomic persistence
// mirrors, checkpoint and WAL bytes from independent read-only file handles
// (both files are safe to read concurrently with the writer: the snapshot is
// only ever replaced by rename, the WAL only appended to within a segment).
type Source interface {
	// ShipGraphs lists the graphs this leader can ship (durable ones).
	ShipGraphs() []string
	// ShipStatus reports the current segment, durable sequence, and segment
	// length for one graph.
	ShipStatus(graph string) (Status, error)
	// ShipCheckpoint returns the graph's current snapshot file image. Its
	// metadata (store.PeekSnapshotMeta) carries the sequence it folds —
	// which is also the segment its WAL tail continues from.
	ShipCheckpoint(graph string) ([]byte, error)
	// ShipWALTail returns the WAL bytes of segment from offset to the
	// current durable end (possibly empty), plus the leader's durable
	// sequence at read time. A superseded segment fails with ErrSegmentGone.
	ShipWALTail(graph string, segment uint64, offset int64) (data []byte, leaderSeq uint64, err error)
}

// Target is the follower side: what the Follower drives as batches arrive.
// The serving registry implements it; all methods must be safe for
// concurrent use with readers.
type Target interface {
	// ReplicaSeq reports the locally applied batch sequence for a graph, or
	// ok=false when the graph is not installed locally (first contact, or a
	// follower restarting without a data directory).
	ReplicaSeq(graph string) (seq uint64, ok bool)
	// InstallReplica (re)creates the local graph from a leader checkpoint
	// image, replacing any existing local state — the bootstrap and the
	// diverged-history resync both land here.
	InstallReplica(graph string, snapshot []byte) error
	// ApplyReplica applies shipped batches, in order, through the same
	// deterministic path crash recovery replays, and publishes the result.
	// Batches must continue the local sequence exactly (prev+1 each).
	ApplyReplica(graph string, batches []store.Batch) error
	// NoteReplica records replication progress for observability: the
	// leader's durable sequence as of the last poll and whether the local
	// state had fully caught up to it.
	NoteReplica(graph string, leaderSeq uint64, caughtUp bool)
}
