package store

import (
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/graph"
)

func permTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPermRoundTrip pins the recovery contract of the relabel section: a
// permutation checkpointed via CheckpointSections comes back verbatim from
// Open, with and without a maintainer-state section in front of it.
func TestPermRoundTrip(t *testing.T) {
	g := permTestGraph(t)
	perm := []int32{1, 3, 0, 4, 2}
	for name, st := range map[string]*MaintainerState{
		"perm only":       nil,
		"state then perm": {Local: dynamic.NewMaintainer(g).ExportState()},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Create(dir, g, SnapshotMeta{})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.CheckpointSections(g, SnapshotMeta{Seq: s.Seq()}, st, perm); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2, rec, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if rec.PermErr != nil {
				t.Fatalf("PermErr = %v", rec.PermErr)
			}
			if !slices.Equal(rec.Perm, perm) {
				t.Fatalf("recovered perm %v, want %v", rec.Perm, perm)
			}
			if st != nil && (rec.State == nil || rec.StateErr != nil) {
				t.Fatalf("state section lost next to perm: state=%v err=%v", rec.State, rec.StateErr)
			}
			if st == nil && (rec.State != nil || rec.StateErr != nil) {
				t.Fatalf("phantom state: state=%v err=%v", rec.State, rec.StateErr)
			}
		})
	}
}

// TestPermCorruption checks the independence contract: damage to the relabel
// section surfaces as PermErr while the graph (and any state section before
// it) still loads — and vice versa, a perm-only v2 image never confuses the
// state decoder.
func TestPermCorruption(t *testing.T) {
	g := permTestGraph(t)
	perm := []int32{1, 3, 0, 4, 2}
	st := &MaintainerState{Local: dynamic.NewMaintainer(g).ExportState()}
	img := EncodeSnapshotSections(g, SnapshotMeta{}, st, perm)

	cases := map[string]struct {
		mutate func([]byte)
		want   string
	}{
		"flipped perm payload": {
			mutate: func(b []byte) { b[len(b)-10] ^= 0x04 },
			want:   "checksum",
		},
		"bad perm magic": {
			mutate: func(b []byte) { b[len(b)-(stateHeaderLen+4*len(perm)+4)] = 'X' },
			want:   "magic",
		},
		"perm version skew": {
			mutate: func(b []byte) { b[len(b)-(stateHeaderLen+4*len(perm)+4)+4] = 9 },
			want:   "version",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			data := append([]byte(nil), img...)
			tc.mutate(data)
			if _, _, err := DecodeSnapshot(data); err != nil {
				t.Fatalf("graph part should be unaffected: %v", err)
			}
			if _, err := DecodeSnapshotState(data); err != nil {
				t.Fatalf("state section should be unaffected: %v", err)
			}
			_, err := DecodeSnapshotPerm(data)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("perm decode error = %v, want mention of %q", err, tc.want)
			}
		})
	}

	t.Run("truncated perm section", func(t *testing.T) {
		data := append([]byte(nil), img[:len(img)-6]...)
		if _, _, err := DecodeSnapshot(data); err != nil {
			t.Fatalf("graph part should be unaffected: %v", err)
		}
		if _, err := DecodeSnapshotState(data); err != nil {
			t.Fatalf("state section should be unaffected: %v", err)
		}
		if _, err := DecodeSnapshotPerm(data); err == nil {
			t.Fatal("truncated perm section accepted")
		}
	})

	t.Run("perm-only image has no state", func(t *testing.T) {
		data := EncodeSnapshotSections(g, SnapshotMeta{}, nil, perm)
		state, err := DecodeSnapshotState(data)
		if state != nil || err != nil {
			t.Fatalf("state = %v, err = %v; want nil, nil", state, err)
		}
		got, err := DecodeSnapshotPerm(data)
		if err != nil || !slices.Equal(got, perm) {
			t.Fatalf("perm = %v (err %v), want %v", got, err, perm)
		}
	})

	t.Run("corrupt perm never blocks Open", func(t *testing.T) {
		dir := t.TempDir()
		s, err := Create(dir, g, SnapshotMeta{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.CheckpointSections(g, SnapshotMeta{}, st, perm); err != nil {
			t.Fatal(err)
		}
		s.Close()
		path := filepath.Join(dir, snapshotFile)
		data, err := readFileShared(path)
		if err != nil {
			t.Fatal(err)
		}
		data = append([]byte(nil), data...)
		data[len(data)-10] ^= 0x04
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, rec, err := Open(dir)
		if err != nil {
			t.Fatalf("Open failed on corrupt perm: %v", err)
		}
		defer s2.Close()
		if rec.PermErr == nil || rec.Perm != nil {
			t.Fatalf("perm = %v, err = %v; want nil + error", rec.Perm, rec.PermErr)
		}
		if rec.State == nil || rec.StateErr != nil {
			t.Fatalf("state lost: %v (err %v)", rec.State, rec.StateErr)
		}
	})
}
