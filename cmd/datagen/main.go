// Command datagen writes synthetic graphs to edge-list files: either one of
// the registered dataset analogs or a raw generator with explicit
// parameters.
//
// Usage:
//
//	datagen -dataset dblp -out dblp.txt
//	datagen -model ba -n 10000 -param 3 -seed 7 -out ba.txt
//	datagen -model chunglu -n 10000 -gamma 2.3 -avgdeg 8 -out cl.txt
package main

import (
	"flag"
	"fmt"
	"os"

	egobw "repro"
)

func main() {
	ds := flag.String("dataset", "", "registered dataset analog to emit")
	model := flag.String("model", "", "generator: er, ba, chunglu, ws, affiliation")
	n := flag.Int("n", 10000, "vertices")
	param := flag.Int("param", 3, "er: edges/vertex; ba: attachments; ws: ring degree; affiliation: communities per 2.5 vertices")
	gamma := flag.Float64("gamma", 2.5, "chunglu: power-law exponent")
	avgdeg := flag.Float64("avgdeg", 8, "chunglu: target average degree")
	beta := flag.Float64("beta", 0.1, "ws: rewiring probability")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	g, err := build(*ds, *model, int32(*n), *param, *gamma, *avgdeg, *beta, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := egobw.SaveEdgeList(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", egobw.Stats(g))
}

func build(ds, model string, n int32, param int, gamma, avgdeg, beta float64, seed uint64) (*egobw.Graph, error) {
	if ds != "" {
		return egobw.LoadDataset(ds)
	}
	switch model {
	case "er":
		return egobw.GenerateER(n, int64(n)*int64(param), seed), nil
	case "ba":
		return egobw.GenerateBA(n, param, seed), nil
	case "chunglu":
		return egobw.GenerateChungLu(n, gamma, avgdeg, n/20, seed), nil
	case "ws":
		return egobw.GenerateWS(n, param, beta, seed), nil
	case "affiliation":
		return egobw.GenerateAffiliation(n, int(n)*2/5, 5, 1, seed), nil
	case "":
		return nil, fmt.Errorf("need -dataset or -model")
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}
