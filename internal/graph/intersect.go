package graph

import "repro/internal/nbr"

// IntersectSorted appends the intersection of two ascending int32 slices to
// dst and returns the extended slice. It is a thin veneer over the shared
// adaptive kernel layer (internal/nbr), which picks linear merge or
// galloping by the length ratio; callers that intersect one fixed hub
// neighborhood against many lists should use an nbr.Register directly.
func IntersectSorted(dst, a, b []int32) []int32 {
	return nbr.IntersectInto(dst, a, b)
}

// CountCommonSorted returns |a ∩ b| for two ascending slices without
// materializing the intersection.
func CountCommonSorted(a, b []int32) int {
	return nbr.IntersectCount(a, b)
}

// CommonNeighbors appends N(u) ∩ N(v) to dst and returns it. The result is
// ascending. dst may be nil or a reused scratch buffer.
func (g *Graph) CommonNeighbors(dst []int32, u, v int32) []int32 {
	return nbr.IntersectInto(dst, g.Neighbors(u), g.Neighbors(v))
}
