package server

// This file is the follower side of snapshot/WAL-shipping replication
// (DESIGN.md §13): the Registry implements ship.Target, so a ship.Follower
// can install leader checkpoints and apply shipped WAL batches into the same
// entries, snapshots, and read paths a leader serves from. Shipped batches
// run through applyLocked — the exact deterministic code the leader's writer
// and crash recovery use — which is what makes a caught-up replica's top-k
// bitwise identical to the leader's at the same applied sequence.

import (
	"fmt"
	"time"

	"repro/internal/ship"
	"repro/internal/store"
)

// The Registry is both halves of the shipping protocol: Source on a leader,
// Target on a follower.
var (
	_ ship.Source = (*Registry)(nil)
	_ ship.Target = (*Registry)(nil)
)

// ReplicaSeq reports the locally applied batch sequence for a graph, or
// ok=false when no such graph is installed — the follower's cue to
// bootstrap from a leader checkpoint instead of tailing.
func (r *Registry) ReplicaSeq(name string) (uint64, bool) {
	e, err := r.get(name)
	if err != nil {
		return 0, false
	}
	return e.replSeq.Load(), true
}

// InstallReplica (re)creates the local graph from a leader checkpoint image.
// Any existing entry under the name is dropped first — this is the path both
// for the initial bootstrap and for a follower whose history diverged from
// the leader's (the checkpoint is the leader's truth). On a durable follower
// the image is installed as the graph's snapshot file and recovered through
// store.Open — the identical fast-import path crash recovery takes — so a
// follower restart resumes from its own disk; without a data dir the image
// is decoded in memory and the entry serves non-durably.
func (r *Registry) InstallReplica(name string, snapshot []byte) error {
	if r.leader == "" {
		return fmt.Errorf("server: graph %q: install replica on a registry that follows no leader", name)
	}
	if err := r.dropEntry(name); err != nil {
		return fmt.Errorf("server: graph %q: drop stale replica: %w", name, err)
	}
	var (
		st  *store.Store
		rec *store.Recovered
	)
	if r.dataDir != "" {
		dir := store.GraphDir(r.dataDir, name)
		if err := store.InstallSnapshot(dir, snapshot); err != nil {
			return fmt.Errorf("server: graph %q: %w", name, err)
		}
		var err error
		st, rec, err = store.Open(dir, r.storeOptions(name)...)
		if err != nil {
			return fmt.Errorf("server: graph %q: open installed replica: %w", name, err)
		}
	} else {
		var err error
		if rec, err = decodeRecovered(snapshot); err != nil {
			return fmt.Errorf("server: graph %q: %w", name, err)
		}
	}
	e, err := r.restoreEntry(name, st, rec)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return fmt.Errorf("server: graph %q: %w", name, err)
	}
	if err := r.register(e); err != nil {
		if st != nil {
			st.Close()
		}
		return fmt.Errorf("server: graph %q: %w", name, err)
	}
	return nil
}

// decodeRecovered turns a checkpoint image into the store.Recovered shape
// restoreEntry consumes, for the memory-only follower path: graph and
// metadata are mandatory, the maintainer-state and permutation sections
// optional exactly as they are for store.Open.
func decodeRecovered(snapshot []byte) (*store.Recovered, error) {
	g, meta, err := store.DecodeSnapshot(snapshot)
	if err != nil {
		return nil, err
	}
	rec := &store.Recovered{Meta: meta, Graph: g}
	rec.State, rec.StateErr = store.DecodeSnapshotState(snapshot)
	rec.Perm, rec.PermErr = store.DecodeSnapshotPerm(snapshot)
	rec.Stamps, rec.StampsErr = store.DecodeSnapshotStamps(snapshot)
	return rec, nil
}

// dropEntry unregisters an entry and releases its resources without deleting
// its on-disk state: the internal removal InstallReplica needs (Remove is a
// client mutation — rejected on followers — and deletes the store). Missing
// entries are fine; the bootstrap path always starts here.
func (r *Registry) dropEntry(name string) error {
	r.mu.Lock()
	e, ok := r.entries[name]
	if ok {
		delete(r.entries, name)
	}
	r.mu.Unlock()
	if !ok {
		return nil
	}
	e.closeWrites()
	<-e.stopped
	e.mu.Lock()
	defer e.mu.Unlock()
	e.removed = true
	if e.st != nil {
		return e.st.Close()
	}
	return nil
}

// ApplyReplica applies shipped batches in order: append to the local WAL
// (group append, one fsync), apply each through applyLocked, publish one
// overlay snapshot for the lot, then run the same checkpoint and compaction
// policies a leader runs — so a long-lived follower's disk footprint and
// read-path shape stay bounded exactly like the leader's. Batches must
// continue the local sequence exactly; any discontinuity means the follower
// lost the plot and must re-bootstrap (the error tells it so).
func (r *Registry) ApplyReplica(name string, batches []store.Batch) error {
	if len(batches) == 0 {
		return nil
	}
	e, err := r.get(name)
	if err != nil {
		return err
	}
	if !e.replica {
		return fmt.Errorf("server: graph %q is not a replica", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.removed {
		return fmt.Errorf("server: no graph named %q", name)
	}
	if perr := e.failed.Load(); perr != nil {
		return fmt.Errorf("server: graph %q: %w: pipeline poisoned by earlier failure: %w", e.name, ErrStorage, *perr)
	}
	want := e.replSeq.Load()
	for i, b := range batches {
		if b.Seq != want+1+uint64(i) {
			return fmt.Errorf("server: graph %q: shipped batch sequence %d where %d was expected", name, b.Seq, want+1+uint64(i))
		}
	}
	if e.st != nil {
		specs := make([]store.BatchSpec, len(batches))
		for i, b := range batches {
			specs[i] = store.BatchSpec{Insert: b.Insert, Edges: b.Edges, Stamps: b.Stamps}
		}
		first, err := e.st.AppendBatches(specs)
		if err != nil {
			e.failed.Store(&err)
			e.mirrorPersist()
			return fmt.Errorf("server: graph %q: %w: %w", e.name, ErrStorage, err)
		}
		if first != batches[0].Seq {
			// The local WAL's next sequence disagrees with the stream's: the
			// local durable history is not the prefix the leader continued
			// from. Poison rather than serve a forked history.
			err := fmt.Errorf("server: graph %q: local wal assigned sequence %d to shipped batch %d — divergent history", name, first, batches[0].Seq)
			e.failed.Store(&err)
			return err
		}
	}
	applied := 0
	for _, b := range batches {
		// Stamps ride the shipped records verbatim, and the leader's expiry
		// deletes arrive as ordinary batches in the same stream — the
		// follower maintains its sidecar without ever consulting a clock, so
		// both sides hold the identical edge set at every common sequence.
		res := e.applyLocked(b.Edges, b.Stamps, b.Insert)
		applied += res.Applied
	}
	e.refreshTemporalLocked()
	e.replSeq.Store(batches[len(batches)-1].Seq)
	if applied > 0 {
		e.publishLocked(e.snap.Load().epoch + 1)
	}
	var ckErr error
	if e.st != nil {
		ckErr = e.maybeCheckpoint(r.ckptBatches, r.ckptBytes, len(batches))
	}
	e.maybeCompactLocked()
	if ckErr != nil {
		e.failed.Store(&ckErr)
		return fmt.Errorf("server: graph %q: %w: %w", e.name, ErrStorage, ckErr)
	}
	return nil
}

// NoteReplica records replication progress for GraphInfo's staleness fields.
func (r *Registry) NoteReplica(name string, leaderSeq uint64, caughtUp bool) {
	e, err := r.get(name)
	if err != nil {
		return
	}
	e.replLeaderSeq.Store(leaderSeq)
	if caughtUp {
		e.replCaughtNano.Store(time.Now().UnixNano())
	}
}
