package ego

import (
	"repro/internal/graph"
	"repro/internal/nbr"
	"repro/internal/pairmap"
)

// ComputeAll returns the exact ego-betweenness of every vertex of any view
// (frozen CSR, overlay, or dynamic graph). It processes every undirected
// edge exactly once (markers + credits, see the package comment) and then
// scores each vertex from its completed evidence map. Time O(α·m·d_max) in
// the worst case, space O(m·d_max), matching Theorem 2.
func ComputeAll(g graph.View) []float64 {
	cb, _ := ComputeAllWithMaps(g)
	return cb
}

// ComputeAllWithMaps is ComputeAll but also returns the completed evidence
// maps, which the dynamic maintenance algorithms take ownership of. maps[v]
// may be nil when vertex v accumulated no evidence (no edges inside GE(v)
// beyond the spokes); such vertices have CB(v) = d(d−1)/2.
func ComputeAllWithMaps(g graph.View) ([]float64, []*pairmap.Map) {
	e := newEvidence(g)
	var comm []int32
	graph.EachEdgeIn(g, func(u, v int32) bool {
		comm = nbr.CommonInto(comm[:0], g, u, v)
		e.applyEdge(u, v, comm)
		return true
	})
	cb := make([]float64, g.NumVertices())
	for v := int32(0); v < g.NumVertices(); v++ {
		cb[v] = ScoreEvidence(g.Degree(v), e.maps[v])
	}
	return cb, e.maps
}

// EgoBetweenness computes CB(u) for a single vertex from scratch using the
// per-vertex method (the core of the paper's EgoBWCal, Algorithm 3, without
// cross-vertex sharing). It works on any Adjacency (static or dynamic
// graph), allocating only a local evidence map, and is the recomputation
// primitive of the lazy maintainers. Scratch may be nil; passing a reused
// Scratch avoids per-call allocations.
func EgoBetweenness(a graph.Adjacency, u int32, s *Scratch) float64 {
	if s == nil {
		s = NewScratch(a.NumVertices())
	}
	s.reg.Ensure(a.NumVertices())
	nu := a.Neighbors(u)
	s.reg.Mark(nu)
	defer s.reg.Unmark()
	cb := StaticUB(int32(len(nu)))
	s.local.Reset()
	for _, v := range nu {
		// T = N(v) ∩ N(u), probed against the marked center bitset.
		t := s.buf[:0]
		for _, w := range a.Neighbors(v) {
			if w != u && s.reg.Contains(w) {
				t = append(t, w)
			}
		}
		// Each ego-internal edge (v, w) removes one unit (markers),
		// counted once by the w > v filter.
		for _, w := range t {
			if w > v {
				cb--
			}
		}
		// v is a connector for every non-adjacent pair in T.
		for i := 0; i < len(t); i++ {
			for j := i + 1; j < len(t); j++ {
				if !a.HasEdge(t[i], t[j]) {
					s.local.Add(pairmap.Key(t[i], t[j]), 1)
				}
			}
		}
		s.buf = t[:0]
	}
	// The marker subtractions above are exact integer steps; the connector
	// terms fold through the canonical histogram, so the result does not
	// depend on the map's iteration order (and hence on vertex labeling).
	cb += scoreTerms(s.local)
	return cb
}

// Scratch holds the reusable state of EgoBetweenness: the center bitset
// register and a neighborhood buffer from the kernel layer plus a local
// evidence map.
type Scratch struct {
	reg   *nbr.Register
	buf   []int32
	local *pairmap.Map
}

// NewScratch returns scratch space for graphs with up to n vertices; it
// grows automatically if the graph does.
func NewScratch(n int32) *Scratch {
	return &Scratch{reg: nbr.NewRegister(n), local: pairmap.New()}
}
