package topk

import "sort"

// Item is a vertex with a score (an exact ego-betweenness in R, an upper
// bound in H).
type Item struct {
	V     int32
	Score float64
}

// Bounded is the top-k result set R: a min-heap holding at most k items.
// The zero value is not usable; construct with NewBounded.
type Bounded struct {
	k     int
	items []Item
	ext   []int32 // optional external labels for score-tie ordering
}

// NewBounded returns an empty result set with capacity k (k ≥ 1).
func NewBounded(k int) *Bounded {
	return NewBoundedLabeled(k, nil)
}

// NewBoundedLabeled is NewBounded with score ties ordered by the external
// label ext[v] instead of the vertex id, making every tie decision — and
// therefore the selected set itself — invariant under internal relabeling.
// A nil ext means identity labels.
func NewBoundedLabeled(k int, ext []int32) *Bounded {
	if k < 1 {
		k = 1
	}
	return &Bounded{k: k, items: make([]Item, 0, k), ext: ext}
}

// label returns the tie-break key of v.
func (b *Bounded) label(v int32) int32 {
	if b.ext == nil {
		return v
	}
	return b.ext[v]
}

// Full reports whether k items are held.
func (b *Bounded) Full() bool { return len(b.items) == b.k }

// Len returns the current number of items.
func (b *Bounded) Len() int { return len(b.items) }

// K returns the capacity.
func (b *Bounded) K() int { return b.k }

// Min returns the smallest score currently held — the pruning threshold
// min_{v∈R} CB(v). It returns -Inf semantics via ok=false when R is not yet
// full, because no pruning is possible then.
func (b *Bounded) Min() (float64, bool) {
	if !b.Full() {
		return 0, false
	}
	return b.items[0].Score, true
}

// Add offers (v, score) to the result set. When full, the item replaces the
// current minimum only if it scores strictly higher (ties keep the
// incumbent, matching "any valid top-k" semantics under score ties).
func (b *Bounded) Add(v int32, score float64) {
	if len(b.items) < b.k {
		b.items = append(b.items, Item{V: v, Score: score})
		b.siftUp(len(b.items) - 1)
		return
	}
	if score <= b.items[0].Score {
		return
	}
	b.items[0] = Item{V: v, Score: score}
	b.siftDown(0)
}

// Remove deletes the entry for vertex v, reporting whether it was present.
// It is used by the lazy maintainers when membership changes.
func (b *Bounded) Remove(v int32) bool {
	for i := range b.items {
		if b.items[i].V == v {
			last := len(b.items) - 1
			b.items[i] = b.items[last]
			b.items = b.items[:last]
			if i < last {
				b.siftDown(i)
				b.siftUp(i)
			}
			return true
		}
	}
	return false
}

// Results returns the held items sorted by descending score, ties by
// ascending vertex id (external label when labeled) for deterministic
// output.
func (b *Bounded) Results() []Item {
	out := make([]Item, len(b.items))
	copy(out, b.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return b.label(out[i].V) < b.label(out[j].V)
	})
	return out
}

// Items returns the unsorted underlying items (shared slice; read-only).
func (b *Bounded) Items() []Item { return b.items }

func (b *Bounded) less(i, j int) bool {
	if b.items[i].Score != b.items[j].Score {
		return b.items[i].Score < b.items[j].Score
	}
	return b.label(b.items[i].V) < b.label(b.items[j].V)
}

func (b *Bounded) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !b.less(i, parent) {
			return
		}
		b.items[i], b.items[parent] = b.items[parent], b.items[i]
		i = parent
	}
}

func (b *Bounded) siftDown(i int) {
	n := len(b.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && b.less(l, small) {
			small = l
		}
		if r < n && b.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		b.items[i], b.items[small] = b.items[small], b.items[i]
		i = small
	}
}

// MaxHeap is the candidate list H of OptBSearch: a binary max-heap of
// (vertex, bound) pairs. Score ties pop the larger vertex identifier first,
// mirroring the degree-order tie direction of the paper's total order ≺.
type MaxHeap struct {
	items []Item
	ext   []int32 // optional external labels for score-tie ordering
}

// NewMaxHeap returns an empty heap with capacity hint c.
func NewMaxHeap(c int) *MaxHeap {
	return NewMaxHeapLabeled(c, nil)
}

// NewMaxHeapLabeled is NewMaxHeap with score ties popped by descending
// external label ext[v], so the pop sequence — the entire candidate visit
// order of OptBSearch — is invariant under internal relabeling. A nil ext
// means identity labels.
func NewMaxHeapLabeled(c int, ext []int32) *MaxHeap {
	return &MaxHeap{items: make([]Item, 0, c), ext: ext}
}

// label returns the tie-break key of v.
func (h *MaxHeap) label(v int32) int32 {
	if h.ext == nil {
		return v
	}
	return h.ext[v]
}

// Len returns the number of items.
func (h *MaxHeap) Len() int { return len(h.items) }

// Push inserts (v, score).
func (h *MaxHeap) Push(v int32, score float64) {
	h.items = append(h.items, Item{V: v, Score: score})
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.greater(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// Pop removes and returns the item with the highest score.
func (h *MaxHeap) Pop() Item {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && h.greater(l, big) {
			big = l
		}
		if r < last && h.greater(r, big) {
			big = r
		}
		if big == i {
			break
		}
		h.items[i], h.items[big] = h.items[big], h.items[i]
		i = big
	}
	return top
}

// Peek returns the current maximum without removing it.
func (h *MaxHeap) Peek() Item { return h.items[0] }

func (h *MaxHeap) greater(i, j int) bool {
	if h.items[i].Score != h.items[j].Score {
		return h.items[i].Score > h.items[j].Score
	}
	return h.label(h.items[i].V) > h.label(h.items[j].V)
}
