package dynamic

import (
	"math/rand/v2"
	"sort"
	"testing"
)

func newTestHeap(n int32) *lazyHeap {
	return &lazyHeap{ver: make([]int32, n)}
}

func TestLazyHeapPopOrder(t *testing.T) {
	h := newTestHeap(10)
	vals := []float64{3, 9, 1, 7, 5}
	for i, v := range vals {
		h.push(int32(i), v)
	}
	want := []float64{9, 7, 5, 3, 1}
	for _, w := range want {
		item, ok := h.pop()
		if !ok || item.score != w {
			t.Fatalf("pop = %v,%v want %v", item.score, ok, w)
		}
	}
	if _, ok := h.pop(); ok {
		t.Fatal("empty heap popped something")
	}
}

// TestLazyHeapVersioning: re-pushing a vertex invalidates its older entry.
func TestLazyHeapVersioning(t *testing.T) {
	h := newTestHeap(4)
	h.push(0, 100)
	h.push(1, 50)
	h.push(0, 10) // vertex 0 superseded: old 100-entry must be skipped
	item, ok := h.pop()
	if !ok || item.v != 1 || item.score != 50 {
		t.Fatalf("pop = %+v, want vertex 1 @ 50", item)
	}
	item, ok = h.pop()
	if !ok || item.v != 0 || item.score != 10 {
		t.Fatalf("pop = %+v, want vertex 0 @ 10", item)
	}
}

// TestLazyHeapReinsert: a popped item reinserted keeps its validity.
func TestLazyHeapReinsert(t *testing.T) {
	h := newTestHeap(3)
	h.push(0, 5)
	h.push(1, 3)
	item, _ := h.pop()
	h.reinsert(item)
	again, ok := h.pop()
	if !ok || again != item {
		t.Fatalf("reinserted item lost: %+v vs %+v", again, item)
	}
}

// TestLazyHeapTieOrder: equal scores pop smaller vertex last (deterministic).
func TestLazyHeapTieOrder(t *testing.T) {
	h := newTestHeap(5)
	h.push(2, 7)
	h.push(4, 7)
	h.push(1, 7)
	var order []int32
	for {
		item, ok := h.pop()
		if !ok {
			break
		}
		order = append(order, item.v)
	}
	if len(order) != 3 || order[0] != 4 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("tie order = %v, want [4 2 1]", order)
	}
}

// TestLazyHeapRandomizedAgainstSort: interleaved pushes and pops must
// respect a reference model (latest value per vertex, max-first).
func TestLazyHeapRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	const n = 50
	h := newTestHeap(n)
	latest := map[int32]float64{}
	for i := 0; i < 500; i++ {
		v := rng.Int32N(n)
		score := float64(rng.IntN(1000))
		h.push(v, score)
		latest[v] = score
	}
	type kv struct {
		v int32
		s float64
	}
	var want []kv
	for v, s := range latest {
		want = append(want, kv{v, s})
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].s != want[j].s {
			return want[i].s > want[j].s
		}
		return want[i].v > want[j].v
	})
	for _, w := range want {
		item, ok := h.pop()
		if !ok || item.v != w.v || item.score != w.s {
			t.Fatalf("pop = %+v, want %+v", item, w)
		}
	}
	if _, ok := h.pop(); ok {
		t.Fatal("heap should be drained")
	}
}
