# Targets mirror the CI workflow (.github/workflows/ci.yml); see README.md.

GO ?= go

.PHONY: build test bench serve fmt vet clean

build:
	$(GO) build ./...

test: vet
	$(GO) test -race ./...

# Regenerate the paper's tables and figures (quick grids; -full for the
# paper's grids). See EXPERIMENTS.md.
bench: build
	$(GO) run ./cmd/benchtab -exp all

# Run the query-serving daemon on :8080 (README.md has the curl walkthrough).
serve:
	$(GO) run ./cmd/egobwd -addr :8080

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
