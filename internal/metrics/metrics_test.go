package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTopKOverlap(t *testing.T) {
	cases := []struct {
		a, b []int32
		want float64
	}{
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, 1},
		{[]int32{1, 2, 3}, []int32{4, 5, 6}, 0},
		{[]int32{1, 2, 3, 4}, []int32{3, 4, 5, 6}, 0.5},
		{[]int32{1, 2}, []int32{1, 2, 3, 4}, 0.5},
		{nil, []int32{1}, 0},
	}
	for i, c := range cases {
		if got := TopKOverlap(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: %v, want %v", i, got, c.want)
		}
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []int32
		want float64
	}{
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, 1},
		{[]int32{1, 2}, []int32{3, 4}, 0},
		{[]int32{1, 2, 3}, []int32{2, 3, 4}, 0.5},
		{nil, nil, 1},
		{[]int32{1, 1, 2}, []int32{1, 2, 2}, 1}, // duplicates collapse
	}
	for i, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: %v, want %v", i, got, c.want)
		}
	}
}

func TestSpearmanPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 20, 30, 40, 50}
	rho, err := SpearmanRho(x, y)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Fatalf("rho = %v, err = %v, want 1", rho, err)
	}
	rev := []float64{50, 40, 30, 20, 10}
	rho, err = SpearmanRho(x, rev)
	if err != nil || math.Abs(rho+1) > 1e-12 {
		t.Fatalf("rho = %v, err = %v, want -1", rho, err)
	}
}

func TestSpearmanTies(t *testing.T) {
	// x has a tie; known value computed with fractional ranks by hand:
	// x ranks: (1.5, 1.5, 3, 4); y ranks: (1, 2, 3, 4).
	x := []float64{5, 5, 7, 9}
	y := []float64{1, 2, 3, 4}
	rho, err := SpearmanRho(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Pearson of (1.5,1.5,3,4) vs (1,2,3,4) = 0.9486832980505138.
	if math.Abs(rho-0.9486832980505138) > 1e-9 {
		t.Fatalf("rho = %v", rho)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, err := SpearmanRho([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := SpearmanRho([]float64{1}, []float64{2}); err == nil {
		t.Error("n<2 must error")
	}
	if _, err := SpearmanRho([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("constant ranking must error")
	}
}

// TestQuickSpearmanBounds: for arbitrary non-degenerate vectors, rho must
// land in [-1, 1], and rho(x, x) = 1.
func TestQuickSpearmanBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 3 {
			return true
		}
		x := make([]float64, len(raw))
		varies := false
		for i, v := range raw {
			x[i] = float64(v)
			if v != raw[0] {
				varies = true
			}
		}
		if !varies {
			return true
		}
		self, err := SpearmanRho(x, x)
		if err != nil || math.Abs(self-1) > 1e-9 {
			return false
		}
		y := make([]float64, len(x))
		for i := range y {
			y[i] = x[(i+1)%len(x)]
		}
		rho, err := SpearmanRho(x, y)
		if err != nil {
			// y may be constant only if x was; excluded above — but a
			// rotation of non-constant x stays non-constant.
			return false
		}
		return rho >= -1-1e-9 && rho <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
