package main

import "testing"

func TestBuildModels(t *testing.T) {
	for _, model := range []string{"er", "ba", "chunglu", "ws", "affiliation"} {
		g, err := build("", model, 200, 3, 2.5, 6, 0.1, 7)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if g.NumVertices() != 200 {
			t.Errorf("%s: n=%d", model, g.NumVertices())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", model, err)
		}
	}
}

func TestBuildDataset(t *testing.T) {
	g, err := build("ir", "", 0, 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty dataset")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build("", "", 10, 1, 2, 2, 0, 1); err == nil {
		t.Error("missing model and dataset must error")
	}
	if _, err := build("", "nope", 10, 1, 2, 2, 0, 1); err == nil {
		t.Error("unknown model must error")
	}
	if _, err := build("nope", "", 10, 1, 2, 2, 0, 1); err == nil {
		t.Error("unknown dataset must error")
	}
}
