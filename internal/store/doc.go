// Package store persists served graphs across process restarts (DESIGN.md
// §8). It has three layers:
//
//   - A versioned, length-prefixed, CRC-checked binary codec for frozen CSR
//     snapshots (EncodeSnapshot / DecodeSnapshot): the full graph plus the
//     maintenance metadata the serving layer needs to rebuild its maintainer
//     (mode tag, lazy k, and the WAL sequence folded into the snapshot).
//   - A per-graph write-ahead log of edge-update batches (EncodeBatch /
//     DecodeWAL): the serving layer's serialized writer appends every batch
//     before applying it, so an acknowledged update is never lost.
//   - Store, the per-graph directory tying both together: Create writes the
//     initial snapshot and an empty log, AppendBatch makes one batch
//     durable, Checkpoint atomically replaces the snapshot (temp file +
//     rename) and truncates the log, and Open recovers — latest snapshot
//     plus the ordered log tail that must be replayed on top of it.
//
// Both decoders are fuzzed: corrupt or truncated input fails with an error,
// never a panic, and a torn tail on the log (the only partial write a crash
// can produce, since snapshots are swapped in by rename) is detected by its
// CRC and repaired by truncation on Open.
//
// The recovery invariant: after Open, replaying Recovered.Tail through the
// same deterministic batch-application code the live writer uses yields
// exactly the state of a process that never crashed, because every
// acknowledged batch is either folded into the snapshot (Seq ≤ Meta.Seq) or
// present in the tail (Seq > Meta.Seq), in original order.
package store
