// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation section, driven by the internal/bench harness on quick grids
// (use cmd/benchtab -full for the paper's full parameter grids), plus
// micro-benchmarks for the core kernels. Dataset sizes multiply with
// EGOBW_SCALE.
package egobw_test

import (
	"io"
	"testing"

	egobw "repro"
	"repro/internal/bench"
)

func quietCfg() bench.Config { return bench.Quick(io.Discard) }

// BenchmarkTable1DatasetStats regenerates Table I (dataset statistics).
func BenchmarkTable1DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table1(quietCfg())
	}
}

// BenchmarkTable2ExactComputations regenerates Table II (vertices computed
// exactly by BaseBSearch vs OptBSearch).
func BenchmarkTable2ExactComputations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table2(quietCfg())
		if i == 0 {
			var base, opt int64
			for _, r := range rows {
				base += r.BaseComp
				opt += r.OptComp
			}
			b.ReportMetric(float64(base), "baseComputed")
			b.ReportMetric(float64(opt), "optComputed")
		}
	}
}

// BenchmarkFig6TopKSearch regenerates Fig. 6 (BaseBSearch vs OptBSearch
// runtime across k).
func BenchmarkFig6TopKSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig6(quietCfg())
		if i == 0 {
			var ratio float64
			for _, r := range rows {
				ratio += float64(r.BaseTime) / float64(r.OptTime)
			}
			b.ReportMetric(ratio/float64(len(rows)), "base/opt-ratio")
		}
	}
}

// BenchmarkFig7Theta regenerates Fig. 7 (OptBSearch runtime vs θ).
func BenchmarkFig7Theta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig7(quietCfg())
	}
}

// BenchmarkFig8Updates regenerates Fig. 8 (local vs lazy update latency).
func BenchmarkFig8Updates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig8(quietCfg())
	}
}

// BenchmarkFig9Scalability regenerates Fig. 9 (runtime on edge and vertex
// samples).
func BenchmarkFig9Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig9(quietCfg())
	}
}

// BenchmarkFig10Parallel regenerates Fig. 10 (VertexPEBW vs EdgePEBW across
// thread counts).
func BenchmarkFig10Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig10(quietCfg())
		if i == 0 {
			for _, r := range rows {
				if r.Threads == 16 {
					b.ReportMetric(r.SpeedupBound, r.Strategy.String()+"-bound@16")
				}
			}
		}
	}
}

// BenchmarkFig11Effectiveness regenerates Fig. 11 (TopBW vs TopEBW runtime
// and overlap).
func BenchmarkFig11Effectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig11(quietCfg())
		if i == 0 && len(rows) > 0 {
			var ov float64
			for _, r := range rows {
				ov += r.Overlap
			}
			b.ReportMetric(ov/float64(len(rows))*100, "overlap%")
		}
	}
}

// BenchmarkFig12CaseStudy regenerates Fig. 12 (DB/IR case study).
func BenchmarkFig12CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig12(quietCfg())
	}
}

// BenchmarkTable3TopScholarsDB regenerates Table III.
func BenchmarkTable3TopScholarsDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table3(quietCfg())
	}
}

// BenchmarkTable4TopScholarsIR regenerates Table IV.
func BenchmarkTable4TopScholarsIR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table4(quietCfg())
	}
}

// ---- micro-benchmarks for the core kernels ----

func benchGraph(b *testing.B) *egobw.Graph {
	b.Helper()
	return egobw.GenerateChungLu(5000, 2.4, 10, 200, 42)
}

// BenchmarkComputeAll measures the sequential all-vertices engine.
func BenchmarkComputeAll(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		egobw.ComputeAll(g)
	}
}

// BenchmarkSingleVertexHub measures one exact CB on the heaviest vertex.
func BenchmarkSingleVertexHub(b *testing.B) {
	g := benchGraph(b)
	hub := int32(0)
	for v := int32(1); v < g.NumVertices(); v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		egobw.EgoBetweenness(g, hub)
	}
}

// BenchmarkOptBSearchK100 measures the default search at k=100.
func BenchmarkOptBSearchK100(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		egobw.TopK(g, 100)
	}
}

// BenchmarkBaseBSearchK100 measures Algorithm 1 at k=100.
func BenchmarkBaseBSearchK100(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		egobw.TopK(g, 100, egobw.WithBaseSearch())
	}
}

// BenchmarkMaintainerInsertDelete measures one local-update cycle.
func BenchmarkMaintainerInsertDelete(b *testing.B) {
	g := benchGraph(b)
	m := egobw.NewMaintainer(g)
	edges := [][2]int32{{1, 2000}, {3, 3000}, {5, 4000}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		if err := m.InsertEdge(e[0], e[1]); err != nil {
			b.Fatal(err)
		}
		if err := m.DeleteEdge(e[0], e[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLazyInsertDelete measures one lazy-update cycle at k=50.
func BenchmarkLazyInsertDelete(b *testing.B) {
	g := benchGraph(b)
	lt := egobw.NewLazyTopK(g, 50)
	edges := [][2]int32{{1, 2000}, {3, 3000}, {5, 4000}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		if err := lt.InsertEdge(e[0], e[1]); err != nil {
			b.Fatal(err)
		}
		if err := lt.DeleteEdge(e[0], e[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBrandes measures the baseline on a small graph (O(nm) dominates
// quickly).
func BenchmarkBrandes(b *testing.B) {
	g := egobw.GenerateChungLu(1500, 2.4, 8, 100, 43)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		egobw.Betweenness(g)
	}
}
