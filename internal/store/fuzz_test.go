package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/graph"
)

// The decoders guard the trust boundary between the filesystem and the
// serving layer: whatever bytes a crash, a bad disk, or an operator's cp
// left behind, they must fail with an error — never panic, never
// over-allocate, never hand back a structurally invalid graph. Seed corpora
// (valid files plus near-miss mutations) live under testdata/fuzz/; CI runs
// both targets for a short smoke budget (non-gating), `go test -fuzz` runs
// them open-endedly.

func fuzzSnapshotSeeds() [][]byte {
	g1, _ := graph.FromEdges(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
	g2, _ := graph.FromEdges(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {3, 4}})
	empty, _ := graph.FromEdges(0, nil)
	valid := EncodeSnapshot(g1, SnapshotMeta{Mode: 1, LazyK: 7, Seq: 42})
	truncated := valid[:len(valid)-6]
	flipped := append([]byte(nil), EncodeSnapshot(g2, SnapshotMeta{})...)
	flipped[len(flipped)/2] ^= 0x10
	return [][]byte{
		valid,
		EncodeSnapshot(g2, SnapshotMeta{Seq: 1}),
		EncodeSnapshot(empty, SnapshotMeta{}),
		truncated,
		flipped,
		snapMagic[:],
		fuzzStateSeeds()[0], // a version-2 image: both decoders see it
		fuzzPermSeeds()[1],  // a version-2 image with state and perm sections
	}
}

// fuzzPermSeeds are the FuzzDecodeSnapshotPerm starting points: version-2
// images carrying the relabel section alone and alongside maintainer state,
// a torn and a bit-flipped one, a version-1 file (no section — must decode
// to nil, nil), and bare magic.
func fuzzPermSeeds() [][]byte {
	g, _ := graph.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	perm := []int32{2, 0, 3, 1}
	permOnly := EncodeSnapshotSections(g, SnapshotMeta{Seq: 3}, nil, perm)
	m := dynamic.NewMaintainer(g)
	both := EncodeSnapshotSections(g, SnapshotMeta{Seq: 5},
		&MaintainerState{Local: m.ExportState()}, perm)
	torn := permOnly[:len(permOnly)-5]
	flipped := append([]byte(nil), both...)
	flipped[len(flipped)-3] ^= 0x40
	return [][]byte{
		permOnly,
		both,
		torn,
		flipped,
		EncodeSnapshot(g, SnapshotMeta{}),
		permMagic[:],
	}
}

// FuzzDecodeSnapshotPerm hammers the relabel-section decoder: arbitrary
// bytes must yield a clean error or a permutation of the right length that
// can be offered to graph.RelabelFromPerm without panicking — a rejection
// there is exactly the recovery path's recompute fall-back, so it is
// acceptable; a panic never is.
func FuzzDecodeSnapshotPerm(f *testing.F) {
	for _, seed := range fuzzPermSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		perm, err := DecodeSnapshotPerm(data)
		if err != nil || perm == nil {
			return
		}
		g, _, err := DecodeSnapshot(data)
		if err != nil {
			return // graph part is judged independently; perm alone may pass
		}
		if int32(len(perm)) != g.NumVertices() {
			t.Fatalf("accepted perm has %d entries for an n=%d graph", len(perm), g.NumVertices())
		}
		_, _ = graph.RelabelFromPerm(g, perm)
	})
}

// fuzzStateSeeds are the FuzzDecodeMaintainerState starting points: valid
// version-2 images for both maintenance modes, a torn and a bit-flipped one,
// a version-1 file (no section — must decode to nil, nil), and bare magic.
func fuzzStateSeeds() [][]byte {
	g, _ := graph.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	m := dynamic.NewMaintainer(g)
	_ = m.InsertEdge(1, 3)
	_ = m.DeleteEdge(0, 1)
	local := EncodeSnapshotWithState(m.Graph().Freeze(1), SnapshotMeta{Seq: 2},
		&MaintainerState{Local: m.ExportState()})
	lt := dynamic.NewLazyTopK(g, 2)
	_ = lt.DeleteEdge(0, 2)
	lazy := EncodeSnapshotWithState(lt.Graph().Freeze(1), SnapshotMeta{Mode: 1, LazyK: 2, Seq: 1},
		&MaintainerState{Lazy: lt.ExportState()})
	torn := local[:len(local)-8]
	flipped := append([]byte(nil), lazy...)
	flipped[len(flipped)-2] ^= 0x20
	return [][]byte{
		local,
		lazy,
		torn,
		flipped,
		EncodeSnapshot(g, SnapshotMeta{}),
		stateMagic[:],
	}
}

// TestSeedCorpora keeps the on-disk fuzz seed corpora (testdata/fuzz/<Fuzz
// target>/) in sync with the in-code seeds: -update rewrites them, normal
// runs verify they exist and carry the current format. `go test` always
// executes corpus files as regression inputs, and `go test -fuzz` mutates
// from them.
func TestSeedCorpora(t *testing.T) {
	for target, seeds := range map[string][][]byte{
		"FuzzDecodeSnapshot":        fuzzSnapshotSeeds(),
		"FuzzDecodeMaintainerState": fuzzStateSeeds(),
		"FuzzDecodeSnapshotPerm":    fuzzPermSeeds(),
		"FuzzDecodeWAL":             fuzzWALSeeds(),
	} {
		dir := filepath.Join("testdata", "fuzz", target)
		if *update {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for i, seed := range seeds {
				body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
				path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
				if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("seed corpus for %s (regenerate with -update): %v", target, err)
		}
		if len(ents) < len(seeds) {
			t.Fatalf("seed corpus for %s has %d files, want ≥ %d (regenerate with -update)",
				target, len(ents), len(seeds))
		}
	}
}

func FuzzDecodeSnapshot(f *testing.F) {
	for _, seed := range fuzzSnapshotSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, meta, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// Accepted input must be fully self-consistent: a valid graph whose
		// canonical re-encoding reproduces the input byte for byte. For a
		// version-2 image the canonical form includes the state section, so
		// the check only closes when that section decodes too (its own
		// corruption is FuzzDecodeMaintainerState's department).
		if err := g.Validate(); err != nil {
			t.Fatalf("decoded graph invalid: %v", err)
		}
		switch binary.LittleEndian.Uint16(data[4:6]) {
		case SnapshotVersion:
			if re := EncodeSnapshot(g, meta); !bytes.Equal(re, data) {
				t.Fatalf("accepted snapshot is not canonical: %d in, %d re-encoded", len(data), len(re))
			}
		case SnapshotVersionState:
			st, stErr := DecodeSnapshotState(data)
			perm, permErr := DecodeSnapshotPerm(data)
			if stErr == nil && permErr == nil && (st != nil || perm != nil) {
				if re := EncodeSnapshotSections(g, meta, st, perm); !bytes.Equal(re, data) {
					t.Fatalf("accepted v2 snapshot is not canonical: %d in, %d re-encoded", len(data), len(re))
				}
			}
		}
	})
}

// FuzzDecodeMaintainerState hammers the state-section decoder: arbitrary
// bytes must yield a clean error or a state that (a) re-encodes canonically
// alongside its graph and (b) can be offered to the import constructors
// without panicking — an import error is exactly the recovery path's
// fall-back-to-rebuild signal, so it is acceptable; a panic never is.
func FuzzDecodeMaintainerState(f *testing.F) {
	for _, seed := range fuzzStateSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeSnapshotState(data)
		if err != nil {
			return
		}
		if st == nil {
			return // version-1 image: no section exists and none is expected
		}
		g, meta, err := DecodeSnapshot(data)
		if err != nil {
			return // graph part is judged independently; state alone may pass
		}
		perm, permErr := DecodeSnapshotPerm(data)
		if permErr == nil {
			if re := EncodeSnapshotSections(g, meta, st, perm); !bytes.Equal(re, data) {
				t.Fatalf("accepted state section is not canonical: %d in, %d re-encoded", len(data), len(re))
			}
		}
		if st.Local != nil {
			_, _ = dynamic.NewMaintainerFromState(g, st.Local)
		}
		if st.Lazy != nil {
			_, _ = dynamic.NewLazyTopKFromState(g, int(meta.LazyK), st.Lazy)
		}
	})
}

func fuzzWALSeeds() [][]byte {
	valid := walImage(
		Batch{Seq: 1, Insert: true, Edges: [][2]int32{{0, 1}, {2, 3}}},
		Batch{Seq: 2, Insert: false, Edges: [][2]int32{{0, 1}}},
		Batch{Seq: 3, Insert: true, Edges: nil},
	)
	torn := valid[:len(valid)-4]
	flipped := append([]byte(nil), valid...)
	flipped[walHeaderLen+9] ^= 0x01
	stamped := walImage(
		Batch{Seq: 1, Insert: true, Edges: [][2]int32{{0, 1}, {2, 3}}, Stamps: []int64{1000, 2000}},
		Batch{Seq: 2, Insert: false, Edges: [][2]int32{{0, 1}}},
	)
	v1 := append([]byte(nil), valid...)
	v1[4] = 1 // the pre-temporal header version; records are stampless
	return [][]byte{valid, torn, flipped, walFileHeader(), walMagic[:], stamped, v1}
}

func FuzzDecodeWAL(f *testing.F) {
	for _, seed := range fuzzWALSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		batches, valid, err := DecodeWAL(data)
		if err != nil {
			if len(batches) != 0 || valid != 0 {
				t.Fatalf("error with partial results: %d batches, valid=%d", len(batches), valid)
			}
			return
		}
		if valid < walHeaderLen || valid > len(data) {
			t.Fatalf("valid prefix %d out of range [%d, %d]", valid, walHeaderLen, len(data))
		}
		// The valid prefix must re-encode to exactly its own bytes: the
		// decode → encode → decode cycle is the torn-tail repair path. The
		// header is carried over verbatim — repair truncates in place and
		// never rewrites it — so version-1 corpus files keep exercising the
		// backward-compatible record decode.
		img := append([]byte(nil), data[:walHeaderLen]...)
		for _, b := range batches {
			img = append(img, EncodeBatch(b)...)
		}
		if !bytes.Equal(img, data[:valid]) {
			t.Fatalf("valid prefix is not canonical (%d bytes in, %d re-encoded)", valid, len(img))
		}
		if re, revalid, err := DecodeWAL(img); err != nil || revalid != len(img) || len(re) != len(batches) {
			t.Fatalf("repaired log does not re-decode cleanly: %v", err)
		}
	})
}
