package egobw_test

import (
	"fmt"

	egobw "repro"
)

// The running example of the paper (Fig. 1): find the three vertices with
// the highest ego-betweenness.
func ExampleTopK() {
	edges := [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {0, 5},
		{1, 2}, {1, 3}, {1, 4},
		{2, 3}, {2, 4}, {2, 5}, {2, 6}, {2, 7},
		{3, 6}, {3, 7}, {3, 8},
		{4, 6}, {4, 8}, {4, 9},
		{5, 7}, {5, 8}, {5, 10}, {5, 13},
		{6, 8},
		{7, 8},
		{8, 9},
		{9, 10},
		{13, 14}, {13, 15}, {13, 11}, {13, 12},
	}
	g, err := egobw.NewGraph(16, edges)
	if err != nil {
		panic(err)
	}
	top, _ := egobw.TopK(g, 3)
	for i, r := range top {
		fmt.Printf("%d: vertex %d CB=%.2f\n", i+1, r.V, r.CB)
	}
	// Output:
	// 1: vertex 5 CB=11.00
	// 2: vertex 13 CB=10.00
	// 3: vertex 8 CB=8.00
}

// Maintaining exact ego-betweennesses while the graph changes.
func ExampleMaintainer() {
	g, _ := egobw.NewGraph(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	m := egobw.NewMaintainer(g) // star: center 0 has CB = 3
	fmt.Printf("CB(0) = %.1f\n", m.CB(0))
	_ = m.InsertEdge(1, 2) // pair (1,2) now adjacent: one unit less
	fmt.Printf("CB(0) = %.1f\n", m.CB(0))
	// Output:
	// CB(0) = 3.0
	// CB(0) = 2.0
}

// Tracking only the top-k lazily under updates.
func ExampleLazyTopK() {
	g, _ := egobw.NewGraph(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {3, 4}})
	lt := egobw.NewLazyTopK(g, 1)
	fmt.Printf("top: vertex %d\n", lt.Results()[0].V)
	// Wire vertex 3 into a bigger bridge than 0.
	_ = lt.InsertEdge(3, 1)
	_ = lt.InsertEdge(3, 2)
	top := lt.Results()[0]
	fmt.Printf("top: vertex %d CB=%.2f\n", top.V, top.CB)
	// Output:
	// top: vertex 0
	// top: vertex 3 CB=3.50
}

// Computing a single vertex's ego-betweenness without touching the rest of
// the graph.
func ExampleEgoBetweenness() {
	// A path a-b-c: the middle vertex routes one pair.
	g, _ := egobw.NewGraph(3, [][2]int32{{0, 1}, {1, 2}})
	fmt.Println(egobw.EgoBetweenness(g, 1))
	fmt.Println(egobw.EgoBetweenness(g, 0))
	// Output:
	// 1
	// 0
}
