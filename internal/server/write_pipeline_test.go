package server

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/store"
)

// waitFor polls cond (every millisecond, up to ~5 s) and fails the test if
// it never becomes true. The write pipeline is asynchronous, so tests that
// observe its side effects need a fence.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestGroupCommitCoalesces: async batches admitted while the writer holds a
// coalescing window end up in one group commit — one snapshot epoch, one
// WAL append covering per-batch records — and a durable batch admitted
// behind them is acknowledged only after everything before it committed.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(WithDataDir(dir), WithBuildWorkers(1),
		WithFlushInterval(300*time.Millisecond), WithCheckpointPolicy(1000, 1<<30))
	defer reg.Close()
	base := gen.BarabasiAlbert(200, 3, 42)
	if _, err := reg.Add("g", base, ModeLocal, 0); err != nil {
		t.Fatal(err)
	}
	m0 := base.NumEdges()

	// Six async single-edge inserts of new edges; they land in the writer's
	// open window. Then one durable insert: its ack fences the whole queue.
	async := [][2]int32{{0, 190}, {1, 191}, {2, 192}, {3, 193}, {4, 194}, {5, 195}}
	for _, e := range async {
		res, err := reg.ApplyEdgesAck("g", [][2]int32{e}, true, AckAsync)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Pending || res.Ack != AckAsync {
			t.Fatalf("async response %+v, want pending", res)
		}
	}
	res, err := reg.ApplyEdges("g", [][2]int32{{6, 196}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pending || res.Ack != AckDurable || res.Applied != 1 {
		t.Fatalf("durable response %+v", res)
	}

	info, err := reg.Info("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.M != m0+7 {
		t.Fatalf("m = %d, want %d", info.M, m0+7)
	}
	if info.CoalescedBatches != 7 {
		t.Fatalf("coalesced_batches = %d, want 7", info.CoalescedBatches)
	}
	if info.GroupCommits >= 7 {
		t.Fatalf("group_commits = %d, want < 7 (no coalescing happened)", info.GroupCommits)
	}
	if info.WALSeq != 7 {
		t.Fatalf("wal_seq = %d, want 7 (one WAL record per batch)", info.WALSeq)
	}
	// One published epoch per group commit, on top of the initial epoch 1.
	if info.Epoch != 1+uint64(info.GroupCommits) {
		t.Fatalf("epoch = %d, want %d (1 + %d group commits)", info.Epoch, 1+info.GroupCommits, info.GroupCommits)
	}
}

// TestConcurrentDurableWritersCoalesce: many goroutines issuing durable
// batches against one graph all succeed, see monotone epochs, and the WAL
// carries every batch exactly once.
func TestConcurrentDurableWritersCoalesce(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(WithDataDir(dir), WithBuildWorkers(1), WithCheckpointPolicy(1000, 1<<30))
	defer reg.Close()
	base := gen.BarabasiAlbert(300, 3, 7)
	if _, err := reg.Add("g", base, ModeLocal, 0); err != nil {
		t.Fatal(err)
	}
	m0 := base.NumEdges()

	const writers = 8
	const perWriter = 5
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			last := uint64(0)
			for i := 0; i < perWriter; i++ {
				// Distinct new edge per (writer, i): the second endpoint
				// is past the base vertex set, so the insert grows the
				// graph and can never collide with an existing edge.
				e := [2]int32{int32(w), int32(300 + w*perWriter + i)}
				res, err := reg.ApplyEdges("g", [][2]int32{e}, true)
				if err != nil {
					errs <- err
					return
				}
				if res.Applied != 1 || len(res.Errors) != 0 {
					errs <- fmt.Errorf("writer %d batch %d: %+v", w, i, res)
					return
				}
				if res.Epoch < last {
					errs <- fmt.Errorf("writer %d: epoch regressed %d -> %d", w, last, res.Epoch)
					return
				}
				last = res.Epoch
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	info, err := reg.Info("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.M != m0+writers*perWriter {
		t.Fatalf("m = %d, want %d", info.M, m0+int64(writers*perWriter))
	}
	if info.WALSeq != writers*perWriter {
		t.Fatalf("wal_seq = %d, want %d", info.WALSeq, writers*perWriter)
	}
	if info.CoalescedBatches != writers*perWriter {
		t.Fatalf("coalesced_batches = %d, want %d", info.CoalescedBatches, writers*perWriter)
	}
}

// TestBackpressure fills the admission queue behind a deliberately blocked
// writer goroutine and requires the overflow admission to fail fast with
// ErrBacklog (not block, not get lost) and the accounting to record it.
func TestBackpressure(t *testing.T) {
	block := make(chan struct{})
	reg := NewRegistry(WithBuildWorkers(1), WithWriteQueue(2),
		WithCrashHook(func(g, p string) error {
			if p == crashBeforeApply {
				<-block // closed channel reads return immediately after release
			}
			return nil
		}))
	defer reg.Close()
	defer close(block)
	if _, err := reg.Add("g", gen.BarabasiAlbert(100, 3, 1), ModeLocal, 0); err != nil {
		t.Fatal(err)
	}

	// First batch: the writer takes it and parks inside the commit.
	if _, err := reg.ApplyEdgesAck("g", [][2]int32{{0, 90}}, true, AckAsync); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "writer to take the first batch", func() bool {
		info, err := reg.Info("g")
		return err == nil && info.WriteQueueDepth == 0
	})
	// Two more fill the queue; the fourth must bounce.
	for i := 0; i < 2; i++ {
		if _, err := reg.ApplyEdgesAck("g", [][2]int32{{1, int32(91 + i)}}, true, AckAsync); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.ApplyEdgesAck("g", [][2]int32{{2, 93}}, true, AckAsync); !errors.Is(err, ErrBacklog) {
		t.Fatalf("overflow admission: err = %v, want ErrBacklog", err)
	}
	info, err := reg.Info("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.WriteQueueCap != 2 || info.WriteQueueDepth != 2 || info.WriteRejects != 1 {
		t.Fatalf("info = cap %d depth %d rejects %d, want 2/2/1",
			info.WriteQueueCap, info.WriteQueueDepth, info.WriteRejects)
	}
}

// TestBackpressureHTTP: the same overflow over HTTP answers 429 with a
// Retry-After header, and an async admission answers 202.
func TestBackpressureHTTP(t *testing.T) {
	block := make(chan struct{})
	s := New(WithLogger(func(string, ...any) {}), WithRegistryOptions(
		WithBuildWorkers(1), WithWriteQueue(1),
		WithCrashHook(func(g, p string) error {
			if p == crashBeforeApply {
				<-block
			}
			return nil
		})))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	defer close(block)
	if _, err := s.Registry().Add("g", gen.BarabasiAlbert(100, 3, 1), ModeLocal, 0); err != nil {
		t.Fatal(err)
	}

	post := func(edge [2]int32) *http.Response {
		t.Helper()
		body := fmt.Sprintf(`{"edges":[[%d,%d]]}`, edge[0], edge[1])
		resp, err := http.Post(ts.URL+"/graphs/g/edges?ack=async", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post([2]int32{0, 90}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first async admission: status %d, want 202", resp.StatusCode)
	}
	waitFor(t, "writer to take the first batch", func() bool {
		info, err := s.Registry().Info("g")
		return err == nil && info.WriteQueueDepth == 0
	})
	if resp := post([2]int32{1, 91}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue fill: status %d, want 202", resp.StatusCode)
	}
	resp := post([2]int32{2, 92})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
}

// TestAckModeValidation: an unknown ack mode is a request error on both
// surfaces.
func TestAckModeValidation(t *testing.T) {
	ts := newTestServer(t)
	var info GraphInfo
	if code := doJSON(t, "POST", ts.URL+"/graphs", LoadRequest{Name: "g", Edges: karateEdges()}, &info); code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/graphs/g/edges?ack=eventually", EdgeBatch{Edges: [][2]int32{{0, 20}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad ack mode: status %d, want 400", code)
	}
}

// TestAsyncAdmissionAfterPoisonRejected: once a durability failure poisons
// the pipeline, ack=async admissions must fail with ErrStorage up front —
// the old behavior answered 202 at admission and then silently dropped
// every batch in the dead writer, unbounded data loss with no signal.
func TestAsyncAdmissionAfterPoisonRejected(t *testing.T) {
	errBoom := errors.New("disk on fire")
	armed := false
	reg := NewRegistry(WithDataDir(t.TempDir()), WithBuildWorkers(1),
		WithCrashHook(func(g, p string) error {
			if armed && p == store.CrashBeforeWALAppend {
				return errBoom
			}
			return nil
		}))
	defer reg.Close()
	if _, err := reg.Add("g", gen.BarabasiAlbert(60, 3, 1), ModeLocal, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.ApplyEdges("g", [][2]int32{{0, 55}}, true); err != nil {
		t.Fatal(err)
	}
	armed = true
	if _, err := reg.ApplyEdges("g", [][2]int32{{1, 56}}, true); !errors.Is(err, ErrStorage) || !errors.Is(err, errBoom) {
		t.Fatalf("poisoning write: err = %v, want ErrStorage wrapping the cause", err)
	}
	res, err := reg.ApplyEdgesAck("g", [][2]int32{{2, 57}}, true, AckAsync)
	if !errors.Is(err, ErrStorage) {
		t.Fatalf("async admission after poison: res = %+v err = %v, want ErrStorage", res, err)
	}
	if res.Pending {
		t.Fatal("async admission after poison reported pending")
	}
}

// TestRemoveConcurrentWithWrites is the use-after-Remove regression test:
// writers and lazy readers racing a Remove must fail cleanly (not found /
// backlog), and the durable directory must stay deleted — the old code let
// a straggler holding the entry append to the removed store, resurrecting
// the on-disk directory.
func TestRemoveConcurrentWithWrites(t *testing.T) {
	dir := t.TempDir()
	for round := 0; round < 4; round++ {
		reg := NewRegistry(WithDataDir(dir), WithBuildWorkers(1), WithCheckpointPolicy(2, 1<<30))
		base := gen.BarabasiAlbert(80, 3, uint64(round))
		if _, err := reg.Add("g", base, ModeLazy, 5); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		stop := make(chan struct{})
		// Writers: hammer updates with both ack modes until the graph goes
		// away under them.
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ack := AckDurable
				if w%2 == 1 {
					ack = AckAsync
				}
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					_, err := reg.ApplyEdgesAck("g", [][2]int32{{int32(w), int32(40 + i%39)}}, i%2 == 0, ack)
					if err != nil && !errors.Is(err, ErrBacklog) {
						if !strings.Contains(err.Error(), "no graph named") {
							t.Errorf("writer %d: unexpected error %v", w, err)
						}
						return
					}
				}
			}(w)
		}
		// Lazy reader: algo=lazy touches maintainer state under the write
		// lock — exactly the straggler the removed flag must turn away.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := reg.TopK("g", 3, AlgoLazy, 0); err != nil {
					if !strings.Contains(err.Error(), "no graph named") {
						t.Errorf("lazy reader: unexpected error %v", err)
					}
					return
				}
			}
		}()

		time.Sleep(5 * time.Millisecond) // let the race build up
		if err := reg.Remove("g"); err != nil {
			t.Fatal(err)
		}
		gdir := store.GraphDir(dir, "g")
		if _, err := os.Stat(gdir); !os.IsNotExist(err) {
			t.Fatalf("round %d: store dir survives Remove: %v", round, err)
		}
		close(stop)
		wg.Wait()
		// The heart of the regression: after every straggler has run its
		// course, the deleted directory must not have been resurrected.
		if _, err := os.Stat(gdir); !os.IsNotExist(err) {
			t.Fatalf("round %d: store dir resurrected after Remove: %v", round, err)
		}
		reg.Close()
	}
}

// TestCacheCapConcurrent is the cacheStore regression test: concurrent
// misses on distinct keys from many goroutines must never push the
// per-snapshot result cache past maxCacheEntries, and the counter must
// match the entries actually stored.
func TestCacheCapConcurrent(t *testing.T) {
	s := &snapshot{}
	const workers = 16
	const perWorker = 64 // workers*perWorker = 1024 distinct keys >> cap 256
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.cacheStore(cacheKey{k: w*perWorker + i}, cachedResult{})
			}
		}(w)
	}
	wg.Wait()
	stored := 0
	s.cache.Range(func(any, any) bool { stored++; return true })
	if stored > maxCacheEntries {
		t.Fatalf("cache holds %d entries, cap is %d", stored, maxCacheEntries)
	}
	if got := s.cacheCount.Load(); got != int64(stored) {
		t.Fatalf("cacheCount = %d, stored = %d", got, stored)
	}

	// Same-key stampede: N goroutines racing one key must store it once and
	// account for it once.
	s2 := &snapshot{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s2.cacheStore(cacheKey{k: 1}, cachedResult{})
		}()
	}
	wg.Wait()
	if got := s2.cacheCount.Load(); got != 1 {
		t.Fatalf("same-key stampede: cacheCount = %d, want 1", got)
	}
}

// TestThetaValidation pins the unified θ contract on both surfaces: 0 (or
// unset) selects the documented default 1.05, anything else below 1 is an
// explicit error — no more silent rewriting on the Go API.
func TestThetaValidation(t *testing.T) {
	s := New(WithLogger(func(string, ...any) {}))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	reg := s.Registry()
	var info GraphInfo
	if code := doJSON(t, "POST", ts.URL+"/graphs", LoadRequest{Name: "g", Edges: karateEdges()}, &info); code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}

	cases := []struct {
		theta   float64
		algo    string
		wantErr bool
		served  float64 // θ the opt search must report back
	}{
		{theta: 0, algo: AlgoOpt, served: defaultTheta},
		{theta: 1, algo: AlgoOpt, served: 1},
		{theta: 1.5, algo: AlgoOpt, served: 1.5},
		{theta: 0.5, algo: AlgoOpt, wantErr: true},
		{theta: -3, algo: AlgoOpt, wantErr: true},
		{theta: math.NaN(), algo: AlgoOpt, wantErr: true},
		{theta: 0.5, algo: AlgoScores, wantErr: true}, // validated even where θ is unused
		{theta: 0, algo: AlgoScores},
	}
	// reg is the httptest server's registry: exercising the same instance
	// on both surfaces keeps the comparison honest.
	for _, tc := range cases {
		name := fmt.Sprintf("go/theta=%v/algo=%s", tc.theta, tc.algo)
		// Go API surface.
		res, err := reg.TopK("g", 3, tc.algo, tc.theta)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: no error", name)
			}
		} else if err != nil {
			t.Errorf("%s: %v", name, err)
		} else if tc.algo == AlgoOpt && res.Theta != tc.served {
			t.Errorf("%s: served theta %v, want %v", name, res.Theta, tc.served)
		}

		// HTTP surface (NaN has no query-string spelling; skip it there).
		if math.IsNaN(tc.theta) {
			continue
		}
		url := fmt.Sprintf("%s/graphs/g/topk?k=3&algo=%s", ts.URL, tc.algo)
		if tc.theta != 0 {
			url += fmt.Sprintf("&theta=%g", tc.theta)
		}
		var tk TopKResult
		code := doJSON(t, "GET", url, nil, &tk)
		if tc.wantErr && code != http.StatusBadRequest {
			t.Errorf("http %s: status %d, want 400", name, code)
		}
		if !tc.wantErr && code != http.StatusOK {
			t.Errorf("http %s: status %d, want 200", name, code)
		}
		if !tc.wantErr && tc.algo == AlgoOpt && tk.Theta != tc.served {
			t.Errorf("http %s: served theta %v, want %v", name, tk.Theta, tc.served)
		}
	}
}
