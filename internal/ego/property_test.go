package ego

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestCrossValidateComputeAll cross-checks ComputeAll against the
// independent Definition-2 BFS oracle on many random graphs.
func TestCrossValidateComputeAll(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		g := gen.Random(seed, 40)
		got := ComputeAll(g)
		want := ComputeAllReference(g)
		for v := range got {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				t.Fatalf("seed %d: CB(%d) = %v, oracle %v (n=%d m=%d)",
					seed, v, got[v], want[v], g.NumVertices(), g.NumEdges())
			}
		}
	}
}

// TestCrossValidateSingleVertex cross-checks the per-vertex kernel (the
// lazy maintainers' recomputation primitive) against ComputeAll.
func TestCrossValidateSingleVertex(t *testing.T) {
	s := NewScratch(0)
	for seed := uint64(100); seed < 140; seed++ {
		g := gen.Random(seed, 60)
		all := ComputeAll(g)
		for v := int32(0); v < g.NumVertices(); v++ {
			if got := EgoBetweenness(g, v, s); math.Abs(got-all[v]) > 1e-9 {
				t.Fatalf("seed %d: vertex %d: per-vertex %v != all %v", seed, v, got, all[v])
			}
		}
	}
}

// TestSearchesAgreeWithExhaustive verifies that both search algorithms
// return a valid top-k (score multiset equal to exhaustive sort) across
// random graphs and k values, and that OptBSearch never computes more
// vertices than BaseBSearch prunes down to n.
func TestSearchesAgreeWithExhaustive(t *testing.T) {
	for seed := uint64(200); seed < 240; seed++ {
		g := gen.Random(seed, 50)
		n := int(g.NumVertices())
		for _, k := range []int{1, 2, 3, n / 2, n, n + 5} {
			if k < 1 {
				k = 1
			}
			want := TopKExact(g, k)
			base, bst := BaseBSearch(g, k)
			opt, ost := OptBSearch(g, k, 1.05)
			assertSameScores(t, "BaseBSearch", seed, k, want, base)
			assertSameScores(t, "OptBSearch", seed, k, want, opt)
			if bst.Computed > int64(n) || ost.Computed > int64(n) {
				t.Fatalf("seed %d k=%d: computed more than n vertices", seed, k)
			}
		}
	}
}

// assertSameScores compares result lists by their score sequences (vertex
// identity can differ under ties; scores cannot).
func assertSameScores(t *testing.T, name string, seed uint64, k int, want, got []Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s seed %d k=%d: got %d results, want %d", name, seed, k, len(got), len(want))
	}
	for i := range want {
		if math.Abs(want[i].CB-got[i].CB) > 1e-9 {
			t.Fatalf("%s seed %d k=%d: rank %d score %v, want %v",
				name, seed, k, i, got[i].CB, want[i].CB)
		}
	}
}

// TestThetaInsensitivity: theta trades work, never answers. All theta values
// must give identical score sequences.
func TestThetaInsensitivity(t *testing.T) {
	for seed := uint64(300); seed < 315; seed++ {
		g := gen.Random(seed, 60)
		want, _ := OptBSearch(g, 8, 1)
		for _, theta := range []float64{1.05, 1.10, 1.20, 1.30, 2.0, 10.0} {
			got, _ := OptBSearch(g, 8, theta)
			assertSameScores(t, "theta", seed, 8, want, got)
		}
	}
}

// TestQuickCBBounds is a testing/quick property: for arbitrary edge sets,
// 0 ≤ CB(v) ≤ d(v)(d(v)−1)/2 (Lemma 2), and CB(v) equals the bound exactly
// when no two neighbors of v are adjacent or co-connected.
func TestQuickCBBounds(t *testing.T) {
	f := func(rawEdges [][2]uint8) bool {
		edges := make([][2]int32, 0, len(rawEdges))
		for _, e := range rawEdges {
			edges = append(edges, [2]int32{int32(e[0] % 32), int32(e[1] % 32)})
		}
		g, err := graph.FromEdges(32, edges)
		if err != nil {
			return false
		}
		cb := ComputeAll(g)
		for v := int32(0); v < g.NumVertices(); v++ {
			if cb[v] < -1e-12 || cb[v] > StaticUB(g.Degree(v))+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStarAndClique pins the two extreme topologies: a star center has
// CB = d(d−1)/2 (every leaf pair routed through the center), every clique
// vertex has CB = 0 (no pair needs an intermediary).
func TestQuickStarAndClique(t *testing.T) {
	f := func(sz uint8) bool {
		d := int32(sz%30) + 2
		// Star with d leaves: center is 0.
		star := make([][2]int32, d)
		for i := int32(0); i < d; i++ {
			star[i] = [2]int32{0, i + 1}
		}
		sg := graph.MustFromEdges(d+1, star)
		cb := ComputeAll(sg)
		if math.Abs(cb[0]-StaticUB(d)) > 1e-9 {
			return false
		}
		for v := int32(1); v <= d; v++ {
			if cb[v] != 0 {
				return false
			}
		}
		// Clique on d+1 vertices: everybody 0.
		var kedges [][2]int32
		for u := int32(0); u <= d; u++ {
			for v := u + 1; v <= d; v++ {
				kedges = append(kedges, [2]int32{u, v})
			}
		}
		kg := graph.MustFromEdges(d+1, kedges)
		for _, x := range ComputeAll(kg) {
			if x != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestComputeAllOnGenerators smoke-tests every generator family and
// cross-validates a sample of vertices against the per-vertex kernel.
func TestComputeAllOnGenerators(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"er":  gen.ErdosRenyi(300, 900, 1),
		"ba":  gen.BarabasiAlbert(300, 3, 2),
		"cl":  gen.ChungLu(300, 2.3, 6, 60, 3),
		"ws":  gen.WattsStrogatz(300, 6, 0.1, 4),
		"aff": gen.Affiliation(300, 120, 5, 1, 5),
	}
	s := NewScratch(300)
	for name, g := range graphs {
		cb := ComputeAll(g)
		for v := int32(0); v < g.NumVertices(); v += 17 {
			if got := EgoBetweenness(g, v, s); math.Abs(got-cb[v]) > 1e-9 {
				t.Errorf("%s: vertex %d: %v != %v", name, v, got, cb[v])
			}
		}
	}
}

// TestEmptyAndTinyGraphs covers degenerate inputs.
func TestEmptyAndTinyGraphs(t *testing.T) {
	empty := graph.MustFromEdges(0, nil)
	if got := ComputeAll(empty); len(got) != 0 {
		t.Errorf("empty graph: got %d scores", len(got))
	}
	single := graph.MustFromEdges(1, nil)
	if got := ComputeAll(single); len(got) != 1 || got[0] != 0 {
		t.Errorf("single vertex: got %v", got)
	}
	pair := graph.MustFromEdges(2, [][2]int32{{0, 1}})
	for _, cb := range ComputeAll(pair) {
		if cb != 0 {
			t.Errorf("K2: nonzero CB %v", cb)
		}
	}
	res, st := BaseBSearch(empty, 3)
	if len(res) != 0 || st.Computed != 0 {
		t.Errorf("BaseBSearch on empty graph: %v %+v", res, st)
	}
	res, _ = OptBSearch(single, 5, 1.05)
	if len(res) != 1 || res[0].CB != 0 {
		t.Errorf("OptBSearch on single vertex: %v", res)
	}
}

// TestOverlapMetric checks the Fig. 11 overlap helper.
func TestOverlapMetric(t *testing.T) {
	a := []Result{{V: 1}, {V: 2}, {V: 3}, {V: 4}}
	b := []Result{{V: 3}, {V: 4}, {V: 5}, {V: 6}}
	if got := Overlap(a, b); got != 0.5 {
		t.Errorf("overlap = %v, want 0.5", got)
	}
	if got := Overlap(a, nil); got != 0 {
		t.Errorf("overlap with empty = %v, want 0", got)
	}
	if got := Overlap(a, a); got != 1 {
		t.Errorf("self overlap = %v, want 1", got)
	}
}
