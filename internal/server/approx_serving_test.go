package server

import (
	"math"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/ego"
	"repro/internal/gen"
	"repro/internal/graph"
)

// approxTestGraph returns a hub-heavy graph whose top vertices exceed the
// default Hoeffding budget, so AlgoApprox actually samples.
func approxTestGraph() *graph.Graph {
	return gen.BarabasiAlbert(900, 10, 21)
}

// TestApproxServingEquivalenceAcrossViews pins the acceptance contract:
// with a fixed seed, algo=approx answers bit-identically whether the
// snapshot serves a frozen CSR, an overlay chain, or a relabeled CSR —
// and whatever the build-worker budget.
func TestApproxServingEquivalenceAcrossViews(t *testing.T) {
	full := approxTestGraph()

	// Split off a tail of edges to apply through the write pipeline, so
	// the overlay registry's served view is a real delta chain.
	var baseEdges, extraEdges [][2]int32
	graph.EachEdgeIn(full, func(u, v int32) bool {
		if (u+v)%17 == 0 {
			extraEdges = append(extraEdges, [2]int32{u, v})
		} else {
			baseEdges = append(baseEdges, [2]int32{u, v})
		}
		return true
	})
	base := graph.MustFromEdges(full.NumVertices(), baseEdges)

	q := TopKQuery{K: 25, Algo: AlgoApprox, Eps: 0.05, Seed: 7}

	frozen := NewRegistry(WithBuildWorkers(1))
	if _, err := frozen.Add("g", full, ModeLocal, 0); err != nil {
		t.Fatal(err)
	}
	want, err := frozen.TopKQ("g", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Results) != 25 {
		t.Fatalf("got %d results, want 25", len(want.Results))
	}

	relabeled := NewRegistry(WithBuildWorkers(4), WithRelabeling(true))
	if _, err := relabeled.Add("g", full, ModeLocal, 0); err != nil {
		t.Fatal(err)
	}

	overlay := NewRegistry(WithBuildWorkers(4), WithCompactPolicy(1000, 1.0))
	if _, err := overlay.Add("g", base, ModeLazy, 25); err != nil {
		t.Fatal(err)
	}
	if _, err := overlay.ApplyEdges("g", extraEdges, true); err != nil {
		t.Fatal(err)
	}
	if info, err := overlay.Info("g"); err != nil || info.OverlayDepth == 0 {
		t.Fatalf("overlay registry did not produce an overlay view (info %+v, err %v)", info, err)
	}

	for name, reg := range map[string]*Registry{"relabeled": relabeled, "overlay": overlay} {
		got, err := reg.TopKQ("g", q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got.Results, want.Results) {
			t.Fatalf("%s: approx results diverge from frozen\n got %v\nwant %v", name, got.Results, want.Results)
		}
		if got.ApproxSamples != want.ApproxSamples || got.ApproxEpsAchieved != want.ApproxEpsAchieved {
			t.Fatalf("%s: telemetry diverges: %d/%v vs %d/%v", name,
				got.ApproxSamples, got.ApproxEpsAchieved, want.ApproxSamples, want.ApproxEpsAchieved)
		}
	}
}

// TestApproxQueryKnobsAndCache covers knob resolution, validation, the
// per-snapshot cache, and the GraphInfo counters.
func TestApproxQueryKnobsAndCache(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Add("g", approxTestGraph(), ModeLocal, 0); err != nil {
		t.Fatal(err)
	}

	first, err := reg.TopKQ("g", TopKQuery{K: 10, Algo: AlgoApprox})
	if err != nil {
		t.Fatal(err)
	}
	if first.Eps != 0.05 || first.Conf != 0.95 || first.Seed != 1 {
		t.Fatalf("defaults not resolved: %+v", first)
	}
	if first.ApproxSamples == 0 {
		t.Fatal("estimator drew no samples on a hub-heavy graph")
	}
	if first.Cached {
		t.Fatal("first query reported cached")
	}

	// Identical query → cache hit carrying the same telemetry.
	second, err := reg.TopKQ("g", TopKQuery{K: 10, Algo: AlgoApprox})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical approx query missed the cache")
	}
	if second.ApproxSamples != first.ApproxSamples || second.ApproxEpsAchieved != first.ApproxEpsAchieved {
		t.Fatalf("cached telemetry diverges: %+v vs %+v", second, first)
	}
	if !reflect.DeepEqual(second.Results, first.Results) {
		t.Fatal("cached results diverge")
	}

	// A different seed is a different cache entry (and likely different
	// estimates).
	reseeded, err := reg.TopKQ("g", TopKQuery{K: 10, Algo: AlgoApprox, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reseeded.Cached {
		t.Fatal("seed=2 hit the seed=1 cache entry")
	}

	// Setting a knob steers an auto query to the approx tier.
	auto, err := reg.TopKQ("g", TopKQuery{K: 10, Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Algo != AlgoApprox || auto.Eps != 0.1 {
		t.Fatalf("auto+eps did not select approx: %+v", auto)
	}

	// Counters: 3 computed queries (first, reseeded, auto), 1 cache hit.
	info, err := reg.Info("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.ApproxQueries != 3 {
		t.Fatalf("approx_queries = %d, want 3", info.ApproxQueries)
	}
	if info.ApproxSamples < first.ApproxSamples {
		t.Fatalf("approx_samples = %d < first query's %d", info.ApproxSamples, first.ApproxSamples)
	}

	// Validation: out-of-range knobs and knobs on exact algos are rejected.
	for _, bad := range []TopKQuery{
		{K: 5, Algo: AlgoApprox, Eps: 1.5},
		{K: 5, Algo: AlgoApprox, Eps: -0.1},
		{K: 5, Algo: AlgoApprox, Conf: 1},
		{K: 5, Algo: AlgoApprox, Eps: math.NaN()},
		{K: 5, Algo: AlgoOpt, Eps: 0.05},
		{K: 5, Algo: AlgoScores, Seed: 3},
	} {
		if _, err := reg.TopKQ("g", bad); err == nil {
			t.Fatalf("query %+v was accepted", bad)
		}
	}

	// Approx answers approximate the exact ranking (loose sanity: overlap
	// with the exact top set well above chance).
	exact, err := reg.TopKQ("g", TopKQuery{K: 10, Algo: AlgoScores})
	if err != nil {
		t.Fatal(err)
	}
	if r := ego.Overlap(exact.Results, first.Results); r < 0.5 {
		t.Fatalf("approx overlap with exact top-10 = %v", r)
	}
}

// TestApproxHTTP exercises the eps/conf/seed query knobs end to end.
func TestApproxHTTP(t *testing.T) {
	ts := newTestServer(t)
	if code := doJSON(t, "POST", ts.URL+"/graphs", &LoadRequest{
		Name: "g",
		Generator: &GeneratorSpec{
			Model: "ba", N: 900, MPer: 10, Seed: 21,
		},
	}, nil); code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}

	var res TopKResult
	url := ts.URL + "/graphs/g/topk?algo=approx&k=15&eps=0.1&conf=0.9&seed=7"
	if code := doJSON(t, "GET", url, nil, &res); code != http.StatusOK {
		t.Fatalf("topk: status %d", code)
	}
	if res.Algo != AlgoApprox || res.Eps != 0.1 || res.Conf != 0.9 || res.Seed != 7 {
		t.Fatalf("knobs not echoed: %+v", res)
	}
	if len(res.Results) != 15 || res.ApproxSamples == 0 {
		t.Fatalf("payload incomplete: %+v", res)
	}

	// Determinism over HTTP: the same URL answers identically (cached or
	// not, the values cannot move for a fixed seed).
	var again TopKResult
	doJSON(t, "GET", url, nil, &again)
	if !reflect.DeepEqual(again.Results, res.Results) {
		t.Fatal("same-seed HTTP answers diverge")
	}

	for _, bad := range []string{
		"/graphs/g/topk?algo=approx&eps=2",
		"/graphs/g/topk?algo=approx&eps=abc",
		"/graphs/g/topk?algo=approx&conf=1.0",
		"/graphs/g/topk?algo=approx&seed=-1",
		"/graphs/g/topk?algo=opt&eps=0.05",
	} {
		if code := doJSON(t, "GET", ts.URL+bad, nil, nil); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, code)
		}
	}
}

// TestApproxWorksInLazyMode: the approx tier needs only the snapshot view,
// so it serves any k in ModeLazy — including k beyond the maintained set.
func TestApproxWorksInLazyMode(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Add("g", approxTestGraph(), ModeLazy, 5); err != nil {
		t.Fatal(err)
	}
	res, err := reg.TopKQ("g", TopKQuery{K: 50, Algo: AlgoApprox})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 50 {
		t.Fatalf("got %d results, want 50", len(res.Results))
	}
}

// TestApproxTheta ensures θ still validates on the approx tier (shared
// contract) but is not echoed in approx payloads.
func TestApproxTheta(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Add("g", approxTestGraph(), ModeLocal, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.TopKQ("g", TopKQuery{K: 5, Algo: AlgoApprox, Theta: 0.5}); err == nil {
		t.Fatal("theta 0.5 accepted")
	}
	res, err := reg.TopKQ("g", TopKQuery{K: 5, Algo: AlgoApprox, Theta: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta != 0 {
		t.Fatalf("approx payload echoed theta: %+v", res)
	}
}
