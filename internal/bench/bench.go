// Package bench regenerates every table and figure of the paper's
// evaluation section (Section VI) on the dataset analogs. Each experiment
// prints rows shaped like the paper's and returns the measured series so
// tests and the benchtab CLI can assert on them.
//
// Two configurations exist: Quick (subset of datasets and parameters, for
// CI and testing.B benchmarks) and Full (the paper's parameter grids).
// EXPERIMENTS.md records paper-reported versus measured values.
package bench

import (
	"fmt"
	"io"
	"time"
)

// Config selects datasets and parameter grids for the experiments.
type Config struct {
	Out       io.Writer
	Datasets  []string  // Table II / Fig 6, 8 datasets
	Ks        []int     // top-k grid (Fig 6, Table II)
	EffKs     []int     // effectiveness grid (Fig 11)
	CaseKs    []int     // case-study grid (Fig 12)
	Thetas    []float64 // Fig 7 grid
	Threads   []int     // Fig 10 grid
	Fractions []float64 // Fig 9 sampling grid
	Updates   int       // Fig 8: number of random insertions/deletions
	UpdateK   int       // Fig 8: k for the lazy maintainer
	ScaleDS   string    // Fig 9/10 dataset
	ThetaDS   []string  // Fig 7 datasets
	EffDS     []string  // Fig 11 datasets
}

// Quick returns a configuration small enough for CI: every experiment runs,
// on reduced grids.
func Quick(out io.Writer) Config {
	return Config{
		Out:       out,
		Datasets:  []string{"youtube", "dblp", "ir"},
		Ks:        []int{50, 500},
		EffKs:     []int{50, 200},
		CaseKs:    []int{10, 100},
		Thetas:    []float64{1.05, 1.30},
		Threads:   []int{1, 4, 16},
		Fractions: []float64{0.2, 0.6, 1.0},
		Updates:   200,
		UpdateK:   100,
		ScaleDS:   "youtube",
		ThetaDS:   []string{"youtube"},
		EffDS:     []string{"ir"},
	}
}

// Full returns the paper's parameter grids on all dataset analogs.
func Full(out io.Writer) Config {
	return Config{
		Out:       out,
		Datasets:  []string{"youtube", "wikitalk", "dblp", "pokec", "livejournal"},
		Ks:        []int{50, 100, 200, 500, 1000, 2000},
		EffKs:     []int{50, 100, 200, 500, 1000, 2000},
		CaseKs:    []int{10, 50, 100, 150, 200, 250},
		Thetas:    []float64{1.05, 1.10, 1.15, 1.20, 1.25, 1.30},
		Threads:   []int{1, 4, 8, 12, 16},
		Fractions: []float64{0.2, 0.4, 0.6, 0.8, 1.0},
		// The paper uses 1,000 random updates; 200 gives the same mean at
		// analog scale in a fraction of the wall-clock (EXPERIMENTS.md).
		Updates: 200,
		UpdateK: 500,
		ScaleDS: "livejournal",
		ThetaDS: []string{"wikitalk", "livejournal"},
		EffDS:   []string{"wikitalk", "pokec"},
	}
}

// Experiments maps experiment ids to their runners, in paper order.
var Experiments = []struct {
	ID   string
	What string
	Run  func(Config)
}{
	{"table1", "dataset statistics (Table I)", func(c Config) { Table1(c) }},
	{"table2", "exact computations Base vs Opt (Table II)", func(c Config) { Table2(c) }},
	{"fig6", "BaseBSearch vs OptBSearch runtime (Fig. 6)", func(c Config) { Fig6(c) }},
	{"fig7", "OptBSearch runtime vs theta (Fig. 7)", func(c Config) { Fig7(c) }},
	{"fig8", "update algorithm runtimes (Fig. 8)", func(c Config) { Fig8(c) }},
	{"fig9", "scalability on subgraph samples (Fig. 9)", func(c Config) { Fig9(c) }},
	{"fig10", "parallel algorithms (Fig. 10)", func(c Config) { Fig10(c) }},
	{"fig11", "TopBW vs TopEBW runtime and overlap (Fig. 11)", func(c Config) { Fig11(c) }},
	{"fig12", "case study runtime and overlap (Fig. 12)", func(c Config) { Fig12(c) }},
	{"table3", "top-10 scholars on DB (Table III)", func(c Config) { Table3(c) }},
	{"table4", "top-10 scholars on IR (Table IV)", func(c Config) { Table4(c) }},
}

// Run executes one experiment by id; "all" runs everything in paper order.
func Run(id string, cfg Config) error {
	if id == "all" {
		for _, e := range Experiments {
			fmt.Fprintf(cfg.Out, "\n===== %s — %s =====\n", e.ID, e.What)
			e.Run(cfg)
		}
		return nil
	}
	for _, e := range Experiments {
		if e.ID == id {
			e.Run(cfg)
			return nil
		}
	}
	return fmt.Errorf("bench: unknown experiment %q", id)
}

// timeIt measures one execution of fn.
func timeIt(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}
