package ego

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/paperex"
)

const eps = 1e-9

func almost(a, b float64) bool { return math.Abs(a-b) <= eps }

// TestPaperExampleComputeAll checks every CB value of the Fig. 1 running
// example against ComputeAll (Examples 1-3 of the paper).
func TestPaperExampleComputeAll(t *testing.T) {
	g := paperex.New()
	cb := ComputeAll(g)
	for v, want := range paperex.CB {
		if !almost(cb[v], want) {
			t.Errorf("CB(%s) = %v, want %v", paperex.Names[v], cb[v], want)
		}
	}
}

// TestPaperExampleSingleVertex checks the per-vertex kernel on the same
// ground truth, on both graph representations.
func TestPaperExampleSingleVertex(t *testing.T) {
	g := paperex.New()
	dg := graph.DynFromGraph(g)
	s := NewScratch(g.NumVertices())
	for v, want := range paperex.CB {
		if got := EgoBetweenness(g, v, s); !almost(got, want) {
			t.Errorf("static: CB(%s) = %v, want %v", paperex.Names[v], got, want)
		}
		if got := EgoBetweenness(dg, v, nil); !almost(got, want) {
			t.Errorf("dynamic: CB(%s) = %v, want %v", paperex.Names[v], got, want)
		}
	}
}

// TestPaperExampleReferenceBFS validates the independent Definition-2 oracle
// itself against the paper's values.
func TestPaperExampleReferenceBFS(t *testing.T) {
	g := paperex.New()
	for v, want := range paperex.CB {
		if got := ReferenceBFS(g, v); !almost(got, want) {
			t.Errorf("CB(%s) = %v, want %v", paperex.Names[v], got, want)
		}
	}
}

// TestPaperExampleExampleOneDetail re-derives the b_uv(d) breakdown of
// Example 1: g_ci = 3 shortest paths in GE(d), b_ci(d) = 1/3.
func TestPaperExampleExampleOneDetail(t *testing.T) {
	g := paperex.New()
	// Connectors of the non-adjacent pair (c, i) inside N(d): g and h.
	comm := g.CommonNeighbors(nil, paperex.C, paperex.I)
	inND := 0
	for _, w := range comm {
		if g.HasEdge(w, paperex.D) {
			inND++
		}
	}
	if inND != 2 {
		t.Fatalf("connectors of (c,i) in N(d) = %d, want 2 (g and h)", inND)
	}
	if g.HasEdge(paperex.C, paperex.I) {
		t.Fatal("(c,i) must not be an edge")
	}
}

// TestBaseBSearchPaperExample reproduces Example 3: the top-5 set, and the
// exact number of ego-betweenness computations (10 of 16 vertices) before
// the static bound terminates the scan.
func TestBaseBSearchPaperExample(t *testing.T) {
	g := paperex.New()
	res, st := BaseBSearch(g, 5)
	assertTop5(t, res)
	if st.Computed != paperex.BaseSearchComputed {
		t.Errorf("BaseBSearch computed %d vertices, want %d", st.Computed, paperex.BaseSearchComputed)
	}
	if st.Pruned != int64(int(paperex.NumVertices)-paperex.BaseSearchComputed) {
		t.Errorf("BaseBSearch pruned %d vertices, want %d", st.Pruned, int(paperex.NumVertices)-paperex.BaseSearchComputed)
	}
}

// TestOptBSearchPaperExample reproduces Example 4's outcome: the same top-5,
// with no more exact computations than BaseBSearch (the paper's run does 6
// versus 10; our identified-information sharing is a superset of the
// paper's, so the count may be even lower but never higher).
func TestOptBSearchPaperExample(t *testing.T) {
	g := paperex.New()
	for _, theta := range []float64{1.0, 1.05, 1.30} {
		res, st := OptBSearch(g, 5, theta)
		assertTop5(t, res)
		if st.Computed > paperex.BaseSearchComputed {
			t.Errorf("theta=%v: OptBSearch computed %d vertices, want ≤ %d",
				theta, st.Computed, paperex.BaseSearchComputed)
		}
	}
}

func assertTop5(t *testing.T, res []Result) {
	t.Helper()
	if len(res) != 5 {
		t.Fatalf("got %d results, want 5", len(res))
	}
	for i, want := range paperex.Top5 {
		if res[i].V != want {
			t.Errorf("rank %d = %s, want %s", i+1, paperex.Names[res[i].V], paperex.Names[want])
		}
		if !almost(res[i].CB, paperex.CB[want]) {
			t.Errorf("rank %d score = %v, want %v", i+1, res[i].CB, paperex.CB[want])
		}
	}
}

// TestOnceDiscipline asserts the engine's core safety property on the
// example graph: every undirected edge is processed at most once even when
// every vertex's ego is ensured.
func TestOnceDiscipline(t *testing.T) {
	g := paperex.New()
	e := newEvidence(g)
	for v := int32(0); v < g.NumVertices(); v++ {
		e.ensureEgo(v)
	}
	if e.EdgesProcessed > g.NumEdges() {
		t.Errorf("processed %d edges, graph has only %d", e.EdgesProcessed, g.NumEdges())
	}
}

// TestDynamicBoundDominatesCB asserts Lemma 3 on the example graph: at any
// prefix of processing, the partial-evidence score is an upper bound of the
// true CB for every vertex.
func TestDynamicBoundDominatesCB(t *testing.T) {
	g := paperex.New()
	truth := ComputeAll(g)
	e := newEvidence(g)
	check := func(stage string) {
		for v := int32(0); v < g.NumVertices(); v++ {
			ub := ScoreEvidence(g.Degree(v), e.maps[v])
			if ub < truth[v]-eps {
				t.Errorf("%s: ũb(%s)=%v < CB=%v", stage, paperex.Names[v], ub, truth[v])
			}
		}
	}
	check("initial")
	for _, u := range []int32{paperex.C, paperex.I, paperex.F, paperex.X} {
		e.ensureEgo(u)
		check("after ego " + paperex.Names[u])
	}
}

// TestStaticUB spot checks Lemma 2 values from Fig. 2.
func TestStaticUB(t *testing.T) {
	g := paperex.New()
	want := map[int32]float64{
		paperex.C: 21, paperex.I: 15, paperex.F: 15, paperex.D: 15,
		paperex.X: 10, paperex.E: 10, paperex.H: 6, paperex.G: 6,
		paperex.B: 6, paperex.A: 6, paperex.J: 3, paperex.K: 1,
	}
	for v, ub := range want {
		if got := StaticUB(g.Degree(v)); got != ub {
			t.Errorf("ub(%s) = %v, want %v", paperex.Names[v], got, ub)
		}
	}
}

// TestProcessingOrderMatchesFig2 checks that Order() visits the ten
// computed vertices of Fig. 2 in the paper's exact sequence.
func TestProcessingOrderMatchesFig2(t *testing.T) {
	g := paperex.New()
	want := []int32{paperex.C, paperex.I, paperex.F, paperex.D, paperex.X,
		paperex.E, paperex.H, paperex.G, paperex.B, paperex.A}
	order := g.Order()
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order[%d] = %s, want %s", i, paperex.Names[order[i]], paperex.Names[v])
		}
	}
}
