// Package load is an open-loop load generator for the egobwd HTTP API:
// requests arrive on a fixed schedule derived from the offered rate,
// regardless of how fast the server answers, so queueing delay shows up in
// the measured latencies instead of silently throttling the client (the
// coordinated-omission trap closed-loop harnesses fall into). Reads and
// writes can target different base URLs — the shape a replica deployment
// needs, where writes go to the leader and reads to a follower — and the
// engine samples the read target's replication lag while it runs.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Config parameterizes one load run.
type Config struct {
	ReadURL   string        // base URL top-k reads are sent to
	WriteURL  string        // base URL edge writes are sent to; "" = ReadURL
	Graph     string        // graph name on both targets
	Rate      float64       // offered arrivals per second (reads + writes)
	WriteFrac float64       // fraction of arrivals that are writes, in [0,1]
	Duration  time.Duration // how long to offer load
	K         int           // top-k size for reads (0 = server default)
	Algo      string        // topk algo parameter ("" = server default)
	Batch     int           // edges per write request (0 = 8)
	Seed      int64         // rng seed for arrival classification and edges
	Client    *http.Client  // nil = a client with a 30s timeout

	// DeleteFrac is the fraction of writes (not of all arrivals) sent as
	// delete batches, in [0,1]. Deletes target edges this run recently
	// inserted, so most of them hit; the leftovers are no-ops the server
	// reports per edge without failing the batch.
	DeleteFrac float64

	// StampSkewMS back-dates each inserted edge's timestamp by a uniform
	// draw in [0, StampSkewMS] — on a windowed graph that makes part of the
	// stream expire early, which is how the harness provokes steady expiry
	// churn. Requires a windowed graph (the server rejects stamps
	// otherwise); 0 sends unstamped inserts that work everywhere.
	StampSkewMS int64

	// MaxOutstanding bounds in-flight requests (0 = 1024). An open-loop
	// arrival that finds the window full is dropped and counted rather than
	// queued — blocking the scheduler would turn the harness closed-loop.
	MaxOutstanding int
}

// Metrics summarizes one request class.
type Metrics struct {
	Count     int           `json:"count"`     // completed requests
	Errors    int           `json:"errors"`    // transport errors + non-2xx (except 429)
	Throttled int           `json:"throttled"` // 429 backpressure responses
	P50       time.Duration `json:"p50_ns"`
	P90       time.Duration `json:"p90_ns"`
	P99       time.Duration `json:"p99_ns"`
	Max       time.Duration `json:"max_ns"`
}

// Result is the run summary.
type Result struct {
	Duration time.Duration `json:"duration_ns"` // wall clock, start to last completion
	Offered  float64       `json:"offered_rps"`
	Achieved float64       `json:"achieved_rps"` // completed (reads+writes) / duration
	Dropped  int           `json:"dropped"`      // arrivals skipped at the outstanding cap
	Reads    Metrics       `json:"reads"`
	Writes   Metrics       `json:"writes"`  // insert batches
	Deletes  Metrics       `json:"deletes"` // delete batches (DeleteFrac > 0)

	// Write-target drain accounting over the run (GraphInfo counter deltas):
	// GroupCommits is every writer drain that committed something; on a
	// windowed graph ExpiryBatches of those carried a synthesized expiry
	// batch covering ExpiredEdges edges — the apply-vs-expiry split that
	// tells whether retention kept up with the offered churn.
	GroupCommits  int64 `json:"group_commits,omitempty"`
	ExpiryBatches int64 `json:"expiry_batches,omitempty"`
	ExpiredEdges  int64 `json:"expired_edges,omitempty"`

	// Replication lag observed on the read target while the run was live;
	// all zero when the read target is not a replica.
	LagSeqMax  uint64  `json:"lag_seq_max,omitempty"`
	LagMSMax   float64 `json:"lag_ms_max,omitempty"`
	LagSeqLast uint64  `json:"lag_seq_last,omitempty"`
}

// sink accumulates one request class under a lock; quantiles are computed
// once at the end from the sorted sample.
type sink struct {
	mu        sync.Mutex
	lats      []time.Duration
	errors    int
	throttled int
}

func (s *sink) ok(d time.Duration) {
	s.mu.Lock()
	s.lats = append(s.lats, d)
	s.mu.Unlock()
}

func (s *sink) fail(throttled bool) {
	s.mu.Lock()
	if throttled {
		s.throttled++
	} else {
		s.errors++
	}
	s.mu.Unlock()
}

func (s *sink) metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{Count: len(s.lats), Errors: s.errors, Throttled: s.throttled}
	if len(s.lats) == 0 {
		return m
	}
	sort.Slice(s.lats, func(i, j int) bool { return s.lats[i] < s.lats[j] })
	m.P50 = quantile(s.lats, 0.50)
	m.P90 = quantile(s.lats, 0.90)
	m.P99 = quantile(s.lats, 0.99)
	m.Max = s.lats[len(s.lats)-1]
	return m
}

// quantile reads the q-th quantile from an ascending sample (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// graphInfo is the slice of the server's GraphInfo the harness needs.
type graphInfo struct {
	N             int32   `json:"n"`
	Window        string  `json:"window"`
	GroupCommits  int64   `json:"group_commits"`
	ExpiryBatches int64   `json:"expiry_batches"`
	ExpiredEdges  int64   `json:"expired_edges"`
	ReplicaLagSeq uint64  `json:"replica_lag_seq"`
	ReplicaLagMS  float64 `json:"replica_lag_ms"`
}

// edgeLog remembers recently inserted edges so delete batches can aim at
// edges that actually exist; a bounded ring, sampled without removal (a
// double delete is a per-edge no-op on the server).
type edgeLog struct {
	mu   sync.Mutex
	ring [][2]int32
	next int
}

const edgeLogCap = 4096

func (l *edgeLog) add(edges [][2]int32) {
	l.mu.Lock()
	for _, e := range edges {
		if len(l.ring) < edgeLogCap {
			l.ring = append(l.ring, e)
		} else {
			l.ring[l.next] = e
			l.next = (l.next + 1) % edgeLogCap
		}
	}
	l.mu.Unlock()
}

// sample fills out with logged edges; returns false while the log is empty
// (the caller inserts instead — nothing to delete yet).
func (l *edgeLog) sample(rng *rand.Rand, out [][2]int32) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) == 0 {
		return false
	}
	for i := range out {
		out[i] = l.ring[rng.Intn(len(l.ring))]
	}
	return true
}

// Run offers cfg.Rate arrivals per second for cfg.Duration and reports what
// came back. It returns an error only when the run cannot start (bad config,
// graph missing on a target); per-request failures are counted in the result.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("load: rate %v must be positive", cfg.Rate)
	}
	if cfg.WriteFrac < 0 || cfg.WriteFrac > 1 {
		return nil, fmt.Errorf("load: write fraction %v outside [0,1]", cfg.WriteFrac)
	}
	if cfg.DeleteFrac < 0 || cfg.DeleteFrac > 1 {
		return nil, fmt.Errorf("load: delete fraction %v outside [0,1]", cfg.DeleteFrac)
	}
	if cfg.StampSkewMS < 0 {
		return nil, fmt.Errorf("load: stamp skew %dms must be non-negative", cfg.StampSkewMS)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("load: duration %v must be positive", cfg.Duration)
	}
	if cfg.Graph == "" {
		return nil, fmt.Errorf("load: graph name required")
	}
	if cfg.WriteURL == "" {
		cfg.WriteURL = cfg.ReadURL
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 8
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 1024
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}

	info, err := fetchInfo(ctx, hc, cfg.ReadURL, cfg.Graph)
	if err != nil {
		return nil, fmt.Errorf("load: read target: %w", err)
	}
	writeInfo := info
	if cfg.WriteFrac > 0 && cfg.WriteURL != cfg.ReadURL {
		if writeInfo, err = fetchInfo(ctx, hc, cfg.WriteURL, cfg.Graph); err != nil {
			return nil, fmt.Errorf("load: write target: %w", err)
		}
	}
	if info.N < 2 && cfg.WriteFrac > 0 {
		return nil, fmt.Errorf("load: graph %q has %d vertices; need ≥2 to generate edges", cfg.Graph, info.N)
	}
	if cfg.StampSkewMS > 0 && writeInfo.Window == "" {
		return nil, fmt.Errorf("load: graph %q is not windowed; stamp skew needs a window to expire into", cfg.Graph)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	readURL := fmt.Sprintf("%s/graphs/%s/topk", cfg.ReadURL, cfg.Graph)
	if cfg.K > 0 || cfg.Algo != "" {
		readURL += fmt.Sprintf("?k=%d&algo=%s", cfg.K, cfg.Algo)
	}
	writeURL := fmt.Sprintf("%s/graphs/%s/edges", cfg.WriteURL, cfg.Graph)

	res := &Result{Offered: cfg.Rate}
	var reads, writes, deletes sink
	var inserted edgeLog
	var wg sync.WaitGroup
	slots := make(chan struct{}, cfg.MaxOutstanding)

	// Lag sampler: polls the read target's GraphInfo while the run is live.
	lagDone := make(chan struct{})
	lagCtx, lagStop := context.WithCancel(ctx)
	go func() {
		defer close(lagDone)
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-lagCtx.Done():
				return
			case <-tick.C:
				gi, err := fetchInfo(lagCtx, hc, cfg.ReadURL, cfg.Graph)
				if err != nil {
					continue
				}
				res.LagSeqLast = gi.ReplicaLagSeq
				if gi.ReplicaLagSeq > res.LagSeqMax {
					res.LagSeqMax = gi.ReplicaLagSeq
				}
				if gi.ReplicaLagMS > res.LagMSMax {
					res.LagMSMax = gi.ReplicaLagMS
				}
			}
		}
	}()

	interval := time.Duration(float64(time.Second) / cfg.Rate)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	timer := time.NewTimer(0)
	defer timer.Stop()

sched:
	for next := start; next.Before(deadline); next = next.Add(interval) {
		timer.Reset(time.Until(next))
		select {
		case <-ctx.Done():
			break sched
		case <-timer.C:
		}
		isWrite := cfg.WriteFrac > 0 && rng.Float64() < cfg.WriteFrac
		var (
			edges    [][2]int32
			stamps   []int64
			isDelete bool
		)
		if isWrite {
			edges = make([][2]int32, cfg.Batch)
			if cfg.DeleteFrac > 0 && rng.Float64() < cfg.DeleteFrac {
				isDelete = inserted.sample(rng, edges)
			}
			if !isDelete {
				for i := range edges {
					u := rng.Int31n(info.N)
					v := rng.Int31n(info.N - 1)
					if v >= u {
						v++
					}
					edges[i] = [2]int32{u, v}
				}
				if cfg.StampSkewMS > 0 {
					now := time.Now().UnixMilli()
					stamps = make([]int64, len(edges))
					for i := range stamps {
						stamps[i] = now - rng.Int63n(cfg.StampSkewMS+1)
					}
				}
				inserted.add(edges)
			}
		}
		select {
		case slots <- struct{}{}:
		default:
			res.Dropped++
			continue
		}
		wg.Add(1)
		go func() {
			defer func() { <-slots; wg.Done() }()
			switch {
			case isDelete:
				doWrite(ctx, hc, http.MethodDelete, writeURL, edges, nil, &deletes)
			case isWrite:
				doWrite(ctx, hc, http.MethodPost, writeURL, edges, stamps, &writes)
			default:
				doRead(ctx, hc, readURL, &reads)
			}
		}()
	}
	wg.Wait()
	lagStop()
	<-lagDone

	res.Duration = time.Since(start)
	res.Reads = reads.metrics()
	res.Writes = writes.metrics()
	res.Deletes = deletes.metrics()
	if res.Duration > 0 {
		res.Achieved = float64(res.Reads.Count+res.Writes.Count+res.Deletes.Count) / res.Duration.Seconds()
	}
	// Drain accounting: how many writer drains the run provoked on the write
	// target, and how many of them carried expiry work.
	if cfg.WriteFrac > 0 {
		if after, err := fetchInfo(ctx, hc, cfg.WriteURL, cfg.Graph); err == nil {
			res.GroupCommits = after.GroupCommits - writeInfo.GroupCommits
			res.ExpiryBatches = after.ExpiryBatches - writeInfo.ExpiryBatches
			res.ExpiredEdges = after.ExpiredEdges - writeInfo.ExpiredEdges
		}
	}
	return res, nil
}

func fetchInfo(ctx context.Context, hc *http.Client, base, graph string) (*graphInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/graphs/%s", base, graph), nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("graph %q: %s: %s", graph, resp.Status, bytes.TrimSpace(body))
	}
	var gi graphInfo
	if err := json.NewDecoder(resp.Body).Decode(&gi); err != nil {
		return nil, fmt.Errorf("graph %q: decode info: %w", graph, err)
	}
	return &gi, nil
}

func doRead(ctx context.Context, hc *http.Client, url string, s *sink) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		s.fail(false)
		return
	}
	t0 := time.Now()
	resp, err := hc.Do(req)
	if err != nil {
		s.fail(false)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.fail(resp.StatusCode == http.StatusTooManyRequests)
		return
	}
	s.ok(time.Since(t0))
}

func doWrite(ctx context.Context, hc *http.Client, method, url string, edges [][2]int32, stamps []int64, s *sink) {
	payload := map[string]any{"edges": edges}
	if stamps != nil {
		payload["stamps"] = stamps
	}
	body, err := json.Marshal(payload)
	if err != nil {
		s.fail(false)
		return
	}
	req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
	if err != nil {
		s.fail(false)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := hc.Do(req)
	if err != nil {
		s.fail(false)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		s.fail(resp.StatusCode == http.StatusTooManyRequests)
		return
	}
	s.ok(time.Since(t0))
}
