package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestErdosRenyiShape(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if g.NumVertices() != 100 || g.NumEdges() != 300 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Requesting more edges than possible clamps to the complete graph.
	k := ErdosRenyi(10, 1000, 2)
	if k.NumEdges() != 45 {
		t.Fatalf("clamp: m=%d, want 45", k.NumEdges())
	}
}

func TestDeterminism(t *testing.T) {
	for name, mk := range map[string]func(seed uint64) *graph.Graph{
		"er":  func(s uint64) *graph.Graph { return ErdosRenyi(200, 500, s) },
		"ba":  func(s uint64) *graph.Graph { return BarabasiAlbert(200, 3, s) },
		"cl":  func(s uint64) *graph.Graph { return ChungLu(200, 2.3, 6, 50, s) },
		"ws":  func(s uint64) *graph.Graph { return WattsStrogatz(200, 6, 0.2, s) },
		"aff": func(s uint64) *graph.Graph { return Affiliation(200, 80, 5, 1, s) },
	} {
		a, b := mk(7), mk(7)
		if a.NumEdges() != b.NumEdges() {
			t.Errorf("%s: same seed, different m: %d vs %d", name, a.NumEdges(), b.NumEdges())
		}
		equal := true
		a.EachEdge(func(u, v int32) bool {
			if !b.HasEdge(u, v) {
				equal = false
				return false
			}
			return true
		})
		if !equal {
			t.Errorf("%s: same seed, different edges", name)
		}
		c := mk(8)
		if c.NumEdges() == a.NumEdges() {
			// Different seeds may coincidentally match in m; check edges.
			same := true
			a.EachEdge(func(u, v int32) bool {
				if !c.HasEdge(u, v) {
					same = false
					return false
				}
				return true
			})
			if same {
				t.Errorf("%s: different seed produced identical graph", name)
			}
		}
	}
}

func TestBarabasiAlbertDegrees(t *testing.T) {
	g := BarabasiAlbert(2000, 3, 11)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := graph.ComputeStats(g)
	if st.AvgDeg < 4 || st.AvgDeg > 8 {
		t.Errorf("avg degree %v outside plausible range for mPer=3", st.AvgDeg)
	}
	// Preferential attachment must create hubs: dmax well above average.
	if float64(st.DMax) < 4*st.AvgDeg {
		t.Errorf("dmax=%d too small for a BA graph (avg %v)", st.DMax, st.AvgDeg)
	}
}

func TestChungLuSkewControl(t *testing.T) {
	flat := ChungLu(2000, 3.0, 8, 0, 21)
	skew := ChungLu(2000, 1.9, 8, 0, 21)
	sf := graph.ComputeStats(flat)
	ss := graph.ComputeStats(skew)
	if ss.DMax <= sf.DMax {
		t.Errorf("gamma=1.9 dmax (%d) should exceed gamma=3.0 dmax (%d)", ss.DMax, sf.DMax)
	}
	// Average degree should land near the request (loose band: the cap and
	// min(1, ·) truncation bias it down).
	if sf.AvgDeg < 4 || sf.AvgDeg > 12 {
		t.Errorf("avg degree %v far from requested 8", sf.AvgDeg)
	}
	// maxDeg cap must bind.
	capped := ChungLu(2000, 1.9, 8, 40, 21)
	if got := graph.ComputeStats(capped).DMax; got > 80 {
		t.Errorf("capped dmax=%d, expected near 40", got)
	}
}

func TestWattsStrogatzShape(t *testing.T) {
	g := WattsStrogatz(500, 6, 0.1, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := graph.ComputeStats(g)
	// Ring lattice keeps m = n*k/2 exactly (rewiring preserves edge count
	// except for abandoned rewires, which keep the original edge).
	if st.M != 1500 {
		t.Errorf("m=%d, want 1500", st.M)
	}
	// Small beta keeps strong clustering: plenty of triangles.
	if st.Triangles < 500 {
		t.Errorf("triangles=%d, too few for beta=0.1 lattice", st.Triangles)
	}
}

func TestAffiliationClustering(t *testing.T) {
	g := Affiliation(1000, 400, 6, 1, 9)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := graph.ComputeStats(g)
	er := ErdosRenyi(1000, st.M, 9)
	ste := graph.ComputeStats(er)
	if st.Triangles <= 3*ste.Triangles {
		t.Errorf("affiliation triangles (%d) should dwarf ER triangles (%d)", st.Triangles, ste.Triangles)
	}
}

func TestRandomGraphBounds(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		g := Random(seed, 25)
		if g.NumVertices() < 4 || g.NumVertices() > 25 {
			t.Fatalf("seed %d: n=%d outside [4,25]", seed, g.NumVertices())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
