package graph

import (
	"fmt"
	"sort"
)

// TemporalIndex is the edge→admission-stamp sidecar of a sliding-window
// graph. It answers the one question the expiry scheduler asks every drain —
// "which live edges are older than the cutoff?" — in time proportional to
// the answer, not the graph: edges are ring-bucketed by coarse time
// (granularity ≈ window/64), so a drain pops whole expired buckets and only
// ever filters the single bucket the cutoff falls into.
//
// Deletions are lazy. Removing or re-stamping an edge updates only the
// stamps map; the bucket entry it leaves behind is recognized as stale
// (its stamp no longer matches the map) and discarded when its bucket is
// next scanned. Stale entries are bounded by total insertions between
// expiry sweeps, and each is dropped exactly once.
//
// The index is not goroutine-safe; the serving layer mutates it under the
// same per-graph write lock as the graph itself.
type TemporalIndex struct {
	windowMS int64
	gran     int64
	stamps   map[[2]int32]int64
	buckets  map[int64][]stampedEdge
	keys     []int64 // sorted live bucket keys
}

type stampedEdge struct {
	e  [2]int32
	ts int64
}

// temporalBuckets is the target number of buckets spanning one window: fine
// enough that the boundary bucket holds ~1/64 of the window's edges, coarse
// enough that whole-bucket pops dominate.
const temporalBuckets = 64

// NewTemporalIndex returns an empty index for a window of windowMS
// milliseconds (which must be positive).
func NewTemporalIndex(windowMS int64) *TemporalIndex {
	if windowMS <= 0 {
		panic(fmt.Sprintf("graph: temporal window %dms must be positive", windowMS))
	}
	gran := windowMS / temporalBuckets
	if gran == 0 {
		gran = 1
	}
	return &TemporalIndex{
		windowMS: windowMS,
		gran:     gran,
		stamps:   make(map[[2]int32]int64),
		buckets:  make(map[int64][]stampedEdge),
	}
}

// NewTemporalIndexFromStamps rebuilds an index from a graph and its per-edge
// stamps in canonical edge order (ascending u, then ascending v, u < v) —
// the shape the snapshot's temporal section persists. It errors when the
// stamp count disagrees with the edge count.
func NewTemporalIndexFromStamps(windowMS int64, g *Graph, stamps []int64) (*TemporalIndex, error) {
	if int64(len(stamps)) != g.NumEdges() {
		return nil, fmt.Errorf("graph: %d stamps for %d edges", len(stamps), g.NumEdges())
	}
	t := NewTemporalIndex(windowMS)
	i := 0
	g.EachEdge(func(u, v int32) bool {
		t.Stamp(u, v, stamps[i])
		i++
		return true
	})
	return t, nil
}

// WindowMS returns the configured window length in milliseconds.
func (t *TemporalIndex) WindowMS() int64 { return t.windowMS }

// Len returns the number of live stamped edges.
func (t *TemporalIndex) Len() int { return len(t.stamps) }

// canonical orders an edge's endpoints ascending.
func canonical(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

// bucketKey floors ts onto the bucket grid (toward negative infinity, so
// pre-epoch test stamps bucket consistently).
func (t *TemporalIndex) bucketKey(ts int64) int64 {
	k := ts / t.gran
	if ts < 0 && ts%t.gran != 0 {
		k--
	}
	return k
}

// Stamp records (or re-records) the admission stamp of edge (u,v). A
// previous stamp for the same edge is superseded; its bucket entry goes
// stale.
func (t *TemporalIndex) Stamp(u, v int32, ts int64) {
	e := canonical(u, v)
	t.stamps[e] = ts
	k := t.bucketKey(ts)
	b, ok := t.buckets[k]
	if !ok {
		i := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= k })
		t.keys = append(t.keys, 0)
		copy(t.keys[i+1:], t.keys[i:])
		t.keys[i] = k
	}
	t.buckets[k] = append(b, stampedEdge{e: e, ts: ts})
}

// Forget drops edge (u,v) from the index (an explicit client delete). Its
// bucket entry goes stale and is discarded on the next scan of that bucket.
func (t *TemporalIndex) Forget(u, v int32) {
	delete(t.stamps, canonical(u, v))
}

// StampOf returns the live stamp of edge (u,v).
func (t *TemporalIndex) StampOf(u, v int32) (int64, bool) {
	ts, ok := t.stamps[canonical(u, v)]
	return ts, ok
}

// ExpireBefore removes every live edge stamped strictly before cutoff and
// returns them in canonical order (ascending u, then v) — a deterministic
// function of the live edge set, independent of insertion history or map
// iteration. Cost is O(expired + boundary-bucket size), never O(edges).
func (t *TemporalIndex) ExpireBefore(cutoff int64) [][2]int32 {
	var out [][2]int32
	for len(t.keys) > 0 {
		k := t.keys[0]
		if k*t.gran >= cutoff {
			break // this bucket and all later ones start at or after cutoff
		}
		b := t.buckets[k]
		if (k+1)*t.gran <= cutoff {
			// Entirely below cutoff: pop the whole bucket.
			for _, se := range b {
				if ts, ok := t.stamps[se.e]; ok && ts == se.ts {
					delete(t.stamps, se.e)
					out = append(out, se.e)
				}
			}
			delete(t.buckets, k)
			t.keys = t.keys[1:]
			continue
		}
		// Boundary bucket: filter entries below cutoff, keep the rest.
		keep := b[:0]
		for _, se := range b {
			ts, ok := t.stamps[se.e]
			if !ok || ts != se.ts {
				continue // stale
			}
			if se.ts < cutoff {
				delete(t.stamps, se.e)
				out = append(out, se.e)
			} else {
				keep = append(keep, se)
			}
		}
		if len(keep) == 0 {
			delete(t.buckets, k)
			t.keys = t.keys[1:]
		} else {
			t.buckets[k] = keep
		}
		break
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// OldestStamp returns the smallest live stamp, or false for an empty index.
// It compacts fully-stale leading buckets as it scans, so repeated calls on
// an idle graph stay cheap.
func (t *TemporalIndex) OldestStamp() (int64, bool) {
	for len(t.keys) > 0 {
		k := t.keys[0]
		b := t.buckets[k]
		keep := b[:0]
		oldest, found := int64(0), false
		for _, se := range b {
			ts, ok := t.stamps[se.e]
			if !ok || ts != se.ts {
				continue // stale
			}
			keep = append(keep, se)
			if !found || se.ts < oldest {
				oldest = se.ts
				found = true
			}
		}
		if !found {
			delete(t.buckets, k)
			t.keys = t.keys[1:]
			continue
		}
		t.buckets[k] = keep
		return oldest, true
	}
	return 0, false
}

// ExportStamps returns g's per-edge stamps in canonical edge order — the
// temporal section's persisted shape. Every edge of g must be stamped; an
// unstamped edge is a sidecar/graph divergence and errors.
func (t *TemporalIndex) ExportStamps(g *Graph) ([]int64, error) {
	out := make([]int64, 0, g.NumEdges())
	var missing [2]int32
	ok := true
	g.EachEdge(func(u, v int32) bool {
		ts, found := t.stamps[[2]int32{u, v}]
		if !found {
			missing = [2]int32{u, v}
			ok = false
			return false
		}
		out = append(out, ts)
		return true
	})
	if !ok {
		return nil, fmt.Errorf("graph: edge (%d,%d) has no temporal stamp", missing[0], missing[1])
	}
	return out, nil
}
