package brandes

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/metrics"
)

// TestApproxAllPivotsIsExact: sampling every vertex as a pivot must
// reproduce exact betweenness (scale factor 1).
func TestApproxAllPivotsIsExact(t *testing.T) {
	g := gen.ErdosRenyi(120, 400, 3)
	exact := Betweenness(g)
	approx := BetweennessApprox(g, int(g.NumVertices()), 9, 2)
	for v := range exact {
		if math.Abs(exact[v]-approx[v]) > 1e-6 {
			t.Fatalf("bc(%d) = %v, exact %v", v, approx[v], exact[v])
		}
	}
}

// TestApproxRankQuality: with a quarter of the sources sampled, the
// estimated ranking must still correlate strongly with the exact one.
func TestApproxRankQuality(t *testing.T) {
	g := gen.BarabasiAlbert(800, 3, 5)
	exact := Betweenness(g)
	approx := BetweennessApprox(g, 200, 17, 0)
	rho, err := metrics.SpearmanRho(exact, approx)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.8 {
		t.Fatalf("spearman rho = %v, want ≥ 0.8 for 25%% pivots", rho)
	}
}

// TestApproxDeterministicSeed: same seed, same estimate; different seed,
// (almost surely) different estimate.
func TestApproxDeterministicSeed(t *testing.T) {
	g := gen.ErdosRenyi(150, 500, 4)
	a := BetweennessApprox(g, 30, 42, 2)
	b := BetweennessApprox(g, 30, 42, 4) // thread count must not matter
	diff := false
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-9 {
			diff = true
		}
	}
	if diff {
		t.Fatal("same seed produced different estimates across thread counts")
	}
	c := BetweennessApprox(g, 30, 43, 2)
	same := true
	for v := range a {
		if math.Abs(a[v]-c[v]) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical estimates")
	}
}

func TestApproxDegenerate(t *testing.T) {
	g := gen.ErdosRenyi(10, 15, 6)
	if got := BetweennessApprox(g, 0, 1, 1); len(got) != 10 {
		t.Fatalf("pivots=0 must clamp to n; got %d values", len(got))
	}
	if got := BetweennessApprox(g, 1000, 1, 1); len(got) != 10 {
		t.Fatalf("pivots>n must clamp to n; got %d values", len(got))
	}
}

// TestSamplePivotsDistinct: the partial Fisher–Yates draw must produce
// distinct in-range vertices, and drawing all n must yield a permutation.
func TestSamplePivotsDistinct(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0xA110C8))
	for _, tc := range []struct{ n, pivots int }{
		{10, 1}, {10, 10}, {1000, 30}, {1000, 999}, {5000, 128},
	} {
		got := samplePivots(rng, int32(tc.n), tc.pivots)
		if len(got) != tc.pivots {
			t.Fatalf("n=%d pivots=%d: got %d sources", tc.n, tc.pivots, len(got))
		}
		seen := make(map[int32]bool, len(got))
		for _, v := range got {
			if v < 0 || v >= int32(tc.n) {
				t.Fatalf("n=%d: source %d out of range", tc.n, v)
			}
			if seen[v] {
				t.Fatalf("n=%d pivots=%d: duplicate source %d", tc.n, tc.pivots, v)
			}
			seen[v] = true
		}
	}
}

// BenchmarkSamplePivots measures the pivot draw at serving-relevant
// shapes: the allocation must track pivots, not n (the old full-Perm draw
// paid O(n) per call regardless of how few pivots were wanted).
func BenchmarkSamplePivots(b *testing.B) {
	for _, tc := range []struct {
		name   string
		n      int32
		pivots int
	}{
		{"n=16k/pivots=64", 16_000, 64},
		{"n=1M/pivots=256", 1_000_000, 256},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewPCG(7, 0xA110C8))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				samplePivots(rng, tc.n, tc.pivots)
			}
		})
	}
}
