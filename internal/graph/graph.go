package graph

import (
	"fmt"
	"math"
)

// Graph is an immutable undirected graph in CSR form. The neighbor list of
// every vertex is sorted ascending, which the intersection and adjacency
// kernels rely on.
type Graph struct {
	offsets []int64 // len n+1; adj[offsets[v]:offsets[v+1]] are v's neighbors
	adj     []int32 // concatenated sorted neighbor lists; len 2m
	n       int32
	m       int64
	maxDeg  int32
}

// NumVertices returns the number of vertices n.
func (g *Graph) NumVertices() int32 { return g.n }

// NumEdges returns the number of undirected edges m.
func (g *Graph) NumEdges() int64 { return g.m }

// MaxDegree returns the maximum vertex degree d_max.
func (g *Graph) MaxDegree() int32 { return g.maxDeg }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int32 {
	return int32(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbor list of v as a shared slice view.
// Callers must not modify the returned slice.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the undirected edge (u, v) is present. It binary
// searches the smaller of the two neighbor lists, so it costs
// O(log min(d(u), d(v))).
func (g *Graph) HasEdge(u, v int32) bool {
	if u == v {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	return containsSorted(g.Neighbors(u), v)
}

// containsSorted reports whether x occurs in the ascending slice s.
func containsSorted(s []int32, x int32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

// Before reports the paper's total order u ≺ v: u precedes v when u has the
// strictly larger degree, or equal degrees and the larger identifier. The
// highest-ranked vertex of the graph is therefore the one with the highest
// degree (ties broken toward larger IDs), matching Section II of the paper.
func (g *Graph) Before(u, v int32) bool {
	du, dv := g.Degree(u), g.Degree(v)
	if du != dv {
		return du > dv
	}
	return u > v
}

// Order returns all vertices sorted by the total order ≺ (non-increasing
// degree, ties broken by descending identifier). BaseBSearch processes
// vertices in exactly this order.
func (g *Graph) Order() []int32 { return OrderOf(g) }

// Rank returns rank[v] = position of v in Order(). Lower rank means earlier
// in ≺ (higher degree). It is the orientation key for G+.
func (g *Graph) Rank() []int32 { return RankOf(g) }

// EachEdge calls fn exactly once for every undirected edge, with u < v by
// identifier. Iteration stops early if fn returns false.
func (g *Graph) EachEdge(fn func(u, v int32) bool) { EachEdgeIn(g, fn) }

// Edges materializes the undirected edge set with u < v per pair.
func (g *Graph) Edges() [][2]int32 {
	edges := make([][2]int32, 0, g.m)
	g.EachEdge(func(u, v int32) bool {
		edges = append(edges, [2]int32{u, v})
		return true
	})
	return edges
}

// Validate checks the structural invariants of the CSR representation:
// sorted, deduplicated, loop-free, symmetric adjacency. It is used by tests
// and by loaders of untrusted input.
func (g *Graph) Validate() error {
	if int32(len(g.offsets))-1 != g.n {
		return fmt.Errorf("graph: offsets length %d does not match n=%d", len(g.offsets), g.n)
	}
	var total int64
	// Symmetry by merge instead of per-edge binary search: the sweep below
	// visits directed edges (v,w) in ascending v for every fixed w, so in a
	// symmetric graph each visit consumes exactly the next unconsumed slot of
	// N(w) — cur[w] walks N(w) in lockstep. Any asymmetry desynchronizes a
	// cursor from its list and fails the equality check, either at the stray
	// entry itself or at the next edge that reaches past it; since every one
	// of the len(adj) visits consumes one distinct slot, all-checks-pass
	// implies every slot was matched. O(n+2m) total.
	cur := make([]int64, g.n)
	for v := int32(0); v < g.n; v++ {
		cur[v] = g.offsets[v]
	}
	for v := int32(0); v < g.n; v++ {
		nbrs := g.Neighbors(v)
		total += int64(len(nbrs))
		for i, w := range nbrs {
			if w < 0 || w >= g.n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if w == v {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if i > 0 && nbrs[i-1] >= w {
				return fmt.Errorf("graph: neighbors of %d not strictly ascending at position %d", v, i)
			}
			if c := cur[w]; c >= g.offsets[w+1] || g.adj[c] != v {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", v, w)
			}
			cur[w]++
		}
	}
	if total != 2*g.m {
		return fmt.Errorf("graph: adjacency entries %d != 2m=%d", total, 2*g.m)
	}
	return nil
}

// CSR exposes the raw CSR arrays: offsets (len n+1) and the concatenated
// sorted adjacency (len 2m). The slices are shared with the graph and must
// not be modified. It is the export hook for binary snapshot codecs.
func (g *Graph) CSR() (offsets []int64, adj []int32) {
	return g.offsets, g.adj
}

// FromCSR reconstructs a Graph from raw CSR arrays as produced by CSR(),
// taking ownership of both slices. Every structural invariant is validated
// before the graph is returned, so it is safe on untrusted (decoded) input:
// offsets must start at 0, be non-decreasing, and end at len(adj); adjacency
// lists must be strictly ascending, loop-free, in-range, and symmetric.
func FromCSR(offsets []int64, adj []int32) (*Graph, error) {
	if len(offsets) < 1 {
		return nil, fmt.Errorf("graph: CSR offsets empty (want length n+1 ≥ 1)")
	}
	if int64(len(offsets)-1) > int64(math.MaxInt32) {
		return nil, fmt.Errorf("graph: CSR names %d vertices, beyond int32", len(offsets)-1)
	}
	n := int32(len(offsets) - 1)
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: CSR offsets must start at 0, got %d", offsets[0])
	}
	if offsets[n] != int64(len(adj)) {
		return nil, fmt.Errorf("graph: CSR offsets end at %d, adjacency has %d entries", offsets[n], len(adj))
	}
	if len(adj)%2 != 0 {
		return nil, fmt.Errorf("graph: CSR adjacency length %d is odd (want 2m)", len(adj))
	}
	g := &Graph{offsets: offsets, adj: adj, n: n, m: int64(len(adj)) / 2}
	for v := int32(0); v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return nil, fmt.Errorf("graph: CSR offsets decrease at vertex %d", v)
		}
		if d := g.Degree(v); d > g.maxDeg {
			g.maxDeg = d
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	offsets := make([]int64, len(g.offsets))
	copy(offsets, g.offsets)
	adj := make([]int32, len(g.adj))
	copy(adj, g.adj)
	return &Graph{offsets: offsets, adj: adj, n: g.n, m: g.m, maxDeg: g.maxDeg}
}
