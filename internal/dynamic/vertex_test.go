package dynamic

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/paperex"
)

// TestInsertVertexMatchesScratch: adding a vertex wired to several
// neighbors must leave every CB equal to a from-scratch recomputation.
func TestInsertVertexMatchesScratch(t *testing.T) {
	m := NewMaintainer(paperex.New())
	v, err := m.InsertVertex([]int32{paperex.C, paperex.D, paperex.I})
	if err != nil {
		t.Fatal(err)
	}
	if v != int32(paperex.NumVertices) {
		t.Fatalf("new id = %d, want %d", v, paperex.NumVertices)
	}
	assertMatchesScratch(t, m, "insert vertex")
	// The new vertex's own CB: neighbors c,d,i — (c,d) adjacent, (c,i) and
	// (d,i): d-i adjacent, c-i not adjacent with no connectors inside
	// {c,d,i}... connectors of (c,i) within N(v): d (d adj c, d adj i).
	want := 0.5
	if math.Abs(m.CB(v)-want) > 1e-9 {
		t.Errorf("CB(new) = %v, want %v", m.CB(v), want)
	}
}

// TestDeleteVertexIsolates: removing a vertex zeroes it and restores the
// rest to the graph-without-it values.
func TestDeleteVertexIsolates(t *testing.T) {
	m := NewMaintainer(paperex.New())
	if err := m.DeleteVertex(paperex.X); err != nil {
		t.Fatal(err)
	}
	if m.CB(paperex.X) != 0 {
		t.Errorf("CB(x) = %v after deletion", m.CB(paperex.X))
	}
	if m.Graph().Degree(paperex.X) != 0 {
		t.Error("x still has neighbors")
	}
	assertMatchesScratch(t, m, "delete vertex")
	// f lost its spoke to x: CB(f) recomputable from scratch — covered by
	// assertMatchesScratch; sanity: it must have changed from 11.
	if math.Abs(m.CB(paperex.F)-11) < 1e-9 {
		t.Error("CB(f) unchanged although (f,x) was removed")
	}
}

func TestInsertVertexIsolated(t *testing.T) {
	m := NewMaintainer(paperex.New())
	v, err := m.InsertVertex(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.CB(v) != 0 || m.Graph().Degree(v) != 0 {
		t.Error("isolated vertex must have zero degree and CB")
	}
	assertMatchesScratch(t, m, "isolated vertex")
}

func TestInsertVertexRollsBackOnError(t *testing.T) {
	m := NewMaintainer(paperex.New())
	before := append([]float64(nil), m.All()...)
	// Duplicate neighbor forces a mid-series failure after some edges
	// succeeded; the series must roll back.
	if _, err := m.InsertVertex([]int32{paperex.A, paperex.B, paperex.A}); err == nil {
		t.Fatal("duplicate neighbor must fail")
	}
	for v, want := range before {
		if math.Abs(m.CB(int32(v))-want) > 1e-9 {
			t.Errorf("rollback: CB(%d) = %v, want %v", v, m.CB(int32(v)), want)
		}
	}
}

func TestDeleteVertexErrors(t *testing.T) {
	m := NewMaintainer(paperex.New())
	if err := m.DeleteVertex(-1); err == nil {
		t.Error("negative id must fail")
	}
	if err := m.DeleteVertex(999); err == nil {
		t.Error("out-of-range id must fail")
	}
}

// TestLazyVertexOpsMatchLocal drives vertex-level churn through both
// maintainers and compares top-k results.
func TestLazyVertexOpsMatchLocal(t *testing.T) {
	g := gen.Random(77, 25)
	k := 4
	m := NewMaintainer(g)
	lt := NewLazyTopK(g, k)

	v1, err := m.InsertVertex([]int32{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := lt.InsertVertex([]int32{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("id mismatch: %d vs %d", v1, v2)
	}
	compareTopK(t, m, lt, k, "after insert vertex")

	if err := m.DeleteVertex(0); err != nil {
		t.Fatal(err)
	}
	if err := lt.DeleteVertex(0); err != nil {
		t.Fatal(err)
	}
	compareTopK(t, m, lt, k, "after delete vertex")
}

func compareTopK(t *testing.T, m *Maintainer, lt *LazyTopK, k int, stage string) {
	t.Helper()
	want := m.TopK(k)
	got := lt.Results()
	if len(want) != len(got) {
		t.Fatalf("%s: sizes %d vs %d", stage, len(got), len(want))
	}
	for i := range want {
		if math.Abs(want[i].CB-got[i].CB) > 1e-6 {
			t.Fatalf("%s: rank %d: lazy %v local %v", stage, i, got[i].CB, want[i].CB)
		}
	}
}
