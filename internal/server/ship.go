package server

// This file is the leader side of snapshot/WAL-shipping replication
// (DESIGN.md §13): the Registry implements ship.Source so the shipping
// handler can serve checkpoints and WAL tails without touching the write
// path. Everything here is lock-free with respect to e.mu — positions come
// from the entry's atomic persistence mirrors, bytes from independent
// read-only opens of files the writer only ever renames over (the snapshot)
// or appends to within a segment (the WAL). The one race that matters — a
// checkpoint truncating the WAL between our position check and our read —
// is caught by re-checking the segment mirror after the read: the mirrors
// are updated after every durable operation, so a segment that still
// matches brackets the read in one WAL incarnation.

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/ship"
	"repro/internal/store"
)

// maxShipChunk caps one WAL-tail response. A follower further behind simply
// fetches again; the cap bounds the leader's per-request allocation and
// keeps a slow receiver from holding a huge buffer alive.
const maxShipChunk = 1 << 20

// shipEntry resolves a graph for shipping: it must exist and be durable.
func (r *Registry) shipEntry(name string) (*entry, error) {
	e, err := r.get(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ship.ErrUnknownGraph, name)
	}
	if e.st == nil {
		return nil, fmt.Errorf("%w: %q", ship.ErrNotShippable, name)
	}
	return e, nil
}

// ShipGraphs lists the durable graphs this registry can ship, sorted.
func (r *Registry) ShipGraphs() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.entries))
	for n, e := range r.entries {
		if e.st != nil { // set once before publication, safe to read
			names = append(names, n)
		}
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// ShipStatus reports the current shipping position from the entry's atomic
// mirrors. The three loads are not one consistent cut — a checkpoint may
// land between them — but each field is monotonic within its meaning and
// the follower treats the whole Status as advisory, re-validating against
// ShipWALTail's segment check before trusting any byte.
func (r *Registry) ShipStatus(name string) (ship.Status, error) {
	e, err := r.shipEntry(name)
	if err != nil {
		return ship.Status{}, err
	}
	return ship.Status{
		Segment:  e.snapSeq.Load(),
		Seq:      e.walSeq.Load(),
		WALBytes: e.walBytes.Load(),
	}, nil
}

// ShipCheckpoint returns the graph's current snapshot file image. Checkpoints
// replace the file by rename, so one open captures one complete image —
// either the old checkpoint or the new one, never a mix; the decode check is
// pure paranoia (and catches on-disk corruption before it ships).
func (r *Registry) ShipCheckpoint(name string) ([]byte, error) {
	e, err := r.shipEntry(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(store.SnapshotPath(e.st.Dir()))
	if err != nil {
		return nil, fmt.Errorf("ship: read checkpoint for %q: %w", name, err)
	}
	if _, err := store.PeekSnapshotMeta(data); err != nil {
		return nil, fmt.Errorf("ship: checkpoint for %q unreadable: %w", name, err)
	}
	return data, nil
}

// ShipWALTail returns the WAL bytes of segment from offset up to the durable
// end (at most maxShipChunk of them) plus the leader's durable sequence. The
// segment mirror is checked before and after the file read: a checkpoint
// completing in between truncates the file under us, and the second check
// turns whatever ReadAt saw into ErrSegmentGone instead of shipped garbage.
func (r *Registry) ShipWALTail(name string, segment uint64, offset int64) ([]byte, uint64, error) {
	e, err := r.shipEntry(name)
	if err != nil {
		return nil, 0, err
	}
	if offset < store.WALHeaderLen {
		return nil, 0, fmt.Errorf("ship: offset %d inside the wal header (first record at %d)", offset, store.WALHeaderLen)
	}
	if e.snapSeq.Load() != segment {
		return nil, 0, fmt.Errorf("%w: segment %d (current %d)", ship.ErrSegmentGone, segment, e.snapSeq.Load())
	}
	end := e.walBytes.Load()
	leaderSeq := e.walSeq.Load()
	if offset >= end {
		if e.snapSeq.Load() != segment {
			return nil, 0, fmt.Errorf("%w: segment %d", ship.ErrSegmentGone, segment)
		}
		if offset > end {
			return nil, 0, fmt.Errorf("ship: offset %d beyond durable end %d", offset, end)
		}
		return nil, leaderSeq, nil
	}
	n := end - offset
	if n > maxShipChunk {
		n = maxShipChunk
	}
	f, err := os.Open(store.WALPath(e.st.Dir()))
	if err != nil {
		return nil, 0, fmt.Errorf("ship: open wal for %q: %w", name, err)
	}
	defer f.Close()
	buf := make([]byte, n)
	m, rerr := f.ReadAt(buf, offset)
	if e.snapSeq.Load() != segment {
		return nil, 0, fmt.Errorf("%w: segment %d checkpointed away mid-read", ship.ErrSegmentGone, segment)
	}
	if rerr != nil && m < len(buf) {
		// The segment is unchanged yet the durable range read short — not a
		// protocol condition, just an I/O failure worth retrying.
		return nil, 0, fmt.Errorf("ship: read wal for %q at %d: %w", name, offset, rerr)
	}
	return buf[:m], leaderSeq, nil
}
