package nbr

import (
	"math/bits"
	"sync"
)

// Register is a reusable bitset over vertex identifiers, the third
// intersection strategy. A caller that intersects one fixed neighborhood
// (the "center") against many other lists marks the center once and then
// probes: each probe is one word access, so a scan over list costs
// O(|list|) regardless of the center's degree — the right trade exactly
// when the center is a hub (degree ≥ HubDegree) whose list would otherwise
// be re-walked by every merge.
//
// Clearing is generation-based: every word carries an epoch stamp, and a
// word's bits count only while its stamp equals the register's current
// epoch. Unmark on a hub-sized mark set therefore just bumps the epoch —
// O(1) no matter how many vertices were marked — and Mark lazily re-zeroes
// any stale word it touches. Mark sets spanning fewer than
// directClearWords words are instead cleared in place (the remembered
// touched-word list is walked and zeroed), which keeps every stamp
// current so the next cycle's marks skip all stamp and summary
// maintenance — the small-marks case is as cheap as the pre-epoch
// eager-clearing design.
//
// On top of the bit words sits a one-bit-per-word summary (bit b of
// sum[s] set ⇔ word s·64+b was marked this epoch). The summary is what
// makes the word-parallel Register×Register kernels (AndInto, AndCount)
// skip empty 64-word blocks — 4096 vertex ids per summary word — so
// sparse hub×hub intersections never touch the gaps. Direct clearing
// leaves summary bits (and the span) as an over-approximation: a stale
// summary bit only routes the AND to a zeroed word, which contributes
// nothing; the next epoch bump invalidates it wholesale.
type Register struct {
	words     []uint64 // bit per vertex; valid only where stamps matches epoch
	stamps    []uint32 // generation stamp per word
	sum       []uint64 // summary: bit per word, valid under sumStamps
	sumStamps []uint32 // generation stamp per summary word
	epoch     uint32   // current generation; stamp≠epoch reads as empty
	span      int32    // 1 + highest word index marked this epoch
	touched   []int32  // distinct words stamped this epoch, while ≤ cap
	overflow  bool     // touched list abandoned; Unmark must bump the epoch
}

// directClearWords is the touched-word count up to which Unmark clears
// words in place instead of bumping the epoch. Below hub scale the walk is
// a handful of plain stores and leaves every stamp current, so the next
// cycle's marks skip all stamp/summary maintenance; above it the O(1)
// epoch bump wins.
const directClearWords = 2 * HubDegree

// NewRegister returns a Register that can mark vertices in [0, n).
func NewRegister(n int32) *Register {
	r := &Register{epoch: 1}
	r.Ensure(n)
	return r
}

// Ensure grows the register to cover vertices in [0, n).
func (r *Register) Ensure(n int32) {
	need := (int(n) + 63) >> 6
	if need > len(r.words) {
		grownW := make([]uint64, need)
		copy(grownW, r.words)
		r.words = grownW
		grownS := make([]uint32, need)
		copy(grownS, r.stamps)
		r.stamps = grownS
	}
	needSum := (need + 63) >> 6
	if needSum > len(r.sum) {
		grownW := make([]uint64, needSum)
		copy(grownW, r.sum)
		r.sum = grownW
		grownS := make([]uint32, needSum)
		copy(grownS, r.sumStamps)
		r.sumStamps = grownS
	}
}

// Mark sets the bits of vs. Vertices already marked are fine to re-mark.
// Callers must have Ensured capacity for every id in vs.
//
// All stamp, summary, and span maintenance hides inside the first touch of
// a stale word: a hit on an already-stamped word — a repeat vertex, a
// dense relabel-compressed neighbor run sharing words, or any word cleared
// in place by a small Unmark — is one compare plus one OR.
func (r *Register) Mark(vs []int32) {
	e := r.epoch
	words, stamps := r.words, r.stamps
	for _, v := range vs {
		w := uint32(v) >> 6
		bit := uint64(1) << (uint32(v) & 63)
		if stamps[w] == e {
			words[w] |= bit
			continue
		}
		stamps[w] = e
		words[w] = bit
		r.stampedFresh(int32(w))
	}
}

// stampedFresh records bookkeeping for a word that was just stamped into
// the current epoch: the direct-clear touched list, the block summary, and
// the span. It is deliberately out of Mark's inline loop — the fast path
// (already-stamped word) pays nothing for it.
func (r *Register) stampedFresh(w int32) {
	if !r.overflow {
		if len(r.touched) < directClearWords {
			r.touched = append(r.touched, w)
		} else {
			r.overflow = true
			r.touched = r.touched[:0]
		}
	}
	s := w >> 6
	sb := uint64(1) << (uint32(w) & 63)
	if r.sumStamps[s] == r.epoch {
		r.sum[s] |= sb
	} else {
		r.sumStamps[s] = r.epoch
		r.sum[s] = sb
	}
	if w >= r.span {
		r.span = w + 1
	}
}

// Unmark forgets every marked vertex: in a handful of plain stores while
// the mark set spans at most directClearWords words, in O(1) by advancing
// the epoch once it outgrew that — stale words are then re-zeroed lazily
// by the next Mark that touches them. Every 2³² epoch bumps the stamp
// space wraps and is reset exactly, an amortized-free full clear.
func (r *Register) Unmark() {
	if !r.overflow {
		// The touched list and stamps survive: the words are zero and still
		// carry the current epoch, so the next cycle marks through the
		// stampless fast path with nothing to re-append. The summary and
		// span stay as over-approximations until the next epoch bump.
		for _, w := range r.touched {
			r.words[w] = 0
		}
		return
	}
	r.overflow = false
	r.touched = r.touched[:0]
	r.epoch++
	r.span = 0
	if r.epoch == 0 {
		clear(r.stamps)
		clear(r.sumStamps)
		r.epoch = 1
	}
}

// Contains reports whether v is marked. v must be within Ensured capacity.
func (r *Register) Contains(v int32) bool {
	w := uint32(v) >> 6
	return r.stamps[w] == r.epoch && r.words[w]&(1<<(uint32(v)&63)) != 0
}

// IntersectInto appends list ∩ marked to dst and returns it. The appended
// run preserves list's order (ascending when list is ascending), matching
// the merge and galloping kernels exactly.
func (r *Register) IntersectInto(dst, list []int32) []int32 {
	e := r.epoch
	words, stamps := r.words, r.stamps
	for _, v := range list {
		w := uint32(v) >> 6
		if stamps[w] == e && words[w]&(1<<(uint32(v)&63)) != 0 {
			dst = append(dst, v)
		}
	}
	return dst
}

// Count returns |list ∩ marked|.
func (r *Register) Count(list []int32) int {
	n := 0
	e := r.epoch
	words, stamps := r.words, r.stamps
	for _, v := range list {
		w := uint32(v) >> 6
		if stamps[w] == e && words[w]&(1<<(uint32(v)&63)) != 0 {
			n++
		}
	}
	return n
}

// SpanWords returns an upper bound on the word span of the marked set: at
// least 1 + the highest word index holding a marked vertex (0 when nothing
// was marked since the last epoch bump). It bounds the scan of the
// word-parallel kernels and is the profitability input for call-site
// gating: after degree-ordered relabeling hub neighborhoods compress into
// a low-id prefix, so their spans — and the AND scans over them — shrink
// with them.
func (r *Register) SpanWords() int32 { return r.span }

// liveSum returns the summary word s, or 0 when it is stale this epoch.
func (r *Register) liveSum(s int32) uint64 {
	if r.sumStamps[s] != r.epoch {
		return 0
	}
	return r.sum[s]
}

// AndInto appends marked(r) ∩ marked(o) to dst in ascending order and
// returns it — the word-parallel hub×hub kernel. It ANDs the two summary
// bitmaps to find 64-bit words live in both registers (skipping empty
// 64-word blocks wholesale), ANDs those words, and decodes set bits with
// TrailingZeros64. Cost is O(min(span)/64) summary words plus one word AND
// per block where both sides hold vertices, independent of the degrees.
//
// A summary bit live in both registers implies both underlying words carry
// the current epoch (a word's summary bit is set exactly when the word is
// freshly stamped), so the word AND below never reads a stale word; the
// scan stops at the smaller span because an id marked in only one register
// cannot be in the intersection.
func (r *Register) AndInto(dst []int32, o *Register) []int32 {
	lim := r.span
	if o.span < lim {
		lim = o.span
	}
	for s := int32(0); s<<6 < lim; s++ {
		sw := r.liveSum(s) & o.liveSum(s)
		for sw != 0 {
			w := s<<6 + int32(bits.TrailingZeros64(sw))
			sw &= sw - 1
			word := r.words[w] & o.words[w]
			base := w << 6
			for word != 0 {
				dst = append(dst, base+int32(bits.TrailingZeros64(word)))
				word &= word - 1
			}
		}
	}
	return dst
}

// AndCount returns |marked(r) ∩ marked(o)| via OnesCount64 over the common
// words, without materializing the intersection.
func (r *Register) AndCount(o *Register) int {
	lim := r.span
	if o.span < lim {
		lim = o.span
	}
	n := 0
	for s := int32(0); s<<6 < lim; s++ {
		sw := r.liveSum(s) & o.liveSum(s)
		for sw != 0 {
			w := s<<6 + int32(bits.TrailingZeros64(sw))
			sw &= sw - 1
			n += bits.OnesCount64(r.words[w] & o.words[w])
		}
	}
	return n
}

// registerPool recycles Registers across kernel invocations. Pooled
// registers keep their arrays, so a steady-state acquire is
// allocation-free once the pool has warmed to the graph's vertex count.
var registerPool = sync.Pool{New: func() any { return &Register{epoch: 1} }}

// AcquireRegister returns a cleared pooled Register covering [0, n).
func AcquireRegister(n int32) *Register {
	r := registerPool.Get().(*Register)
	r.Ensure(n)
	return r
}

// ReleaseRegister clears r and returns it to the pool.
func ReleaseRegister(r *Register) {
	r.Unmark()
	registerPool.Put(r)
}
