//go:build !unix

package store

import "os"

// flockExclusive is a no-op where flock(2) is unavailable: the store still
// works, it just cannot exclude a second opener at the OS level.
func flockExclusive(_ *os.File) error { return nil }
