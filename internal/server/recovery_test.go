package server

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ego"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/store"
)

// The crash-recovery suite: build a graph, stream randomized update batches
// into a durable registry, kill it at an arbitrary point — including mid-
// checkpoint, via the injectable crash hook — reopen from disk, and require
// that every served top-k answer equals a from-scratch EgoBetweenness
// recompute of the graph the durable history implies. Runs under -race in
// CI (the Makefile's test target), which also exercises the lock-free
// persistence counters.

// scoreEps absorbs float drift between incremental maintenance (the
// recovered replay) and a from-scratch recomputation; ego-betweenness sums
// 1/c terms in different orders on the two paths.
const scoreEps = 1e-6

// scriptBatch is one pre-generated update batch.
type scriptBatch struct {
	insert bool
	edges  [][2]int32
}

// makeScript generates nBatches randomized batches against mirror, mutating
// mirror along the way so deletions target edges that exist. Roughly one
// edge in eight is deliberately invalid (duplicate insert, absent delete,
// self-loop) to exercise the per-edge error tolerance on both the live and
// the replay path.
func makeScript(rng *rand.Rand, mirror *graph.DynGraph, nBatches int) []scriptBatch {
	script := make([]scriptBatch, 0, nBatches)
	for b := 0; b < nBatches; b++ {
		sb := scriptBatch{insert: rng.IntN(3) != 0} // 2:1 inserts to deletes
		for e := 0; e < 1+rng.IntN(4); e++ {
			n := mirror.NumVertices()
			u, v := int32(rng.IntN(int(n))), int32(rng.IntN(int(n)))
			if rng.IntN(8) != 0 {
				// Aim for a valid edge; 8 tries, then take what we have.
				for try := 0; try < 8; try++ {
					if u != v && mirror.HasEdge(u, v) != sb.insert {
						break
					}
					u, v = int32(rng.IntN(int(n))), int32(rng.IntN(int(n)))
				}
			}
			if sb.insert && rng.IntN(16) == 0 {
				v = n + int32(rng.IntN(3)) // grow the vertex set
			}
			sb.edges = append(sb.edges, [2]int32{u, v})
			// Mirror the application the server will perform (errors are
			// skipped per edge there, so ignore them here too).
			if sb.insert {
				_ = mirror.InsertEdge(u, v)
			} else {
				_ = mirror.DeleteEdge(u, v)
			}
		}
		script = append(script, sb)
	}
	return script
}

// stateAfter replays script[:upto] on a fresh copy of base and returns the
// resulting graph — the ground truth a recovered registry must match.
func stateAfter(base *graph.Graph, script []scriptBatch, upto int) *graph.Graph {
	mirror := graph.DynFromGraph(base)
	for _, sb := range script[:upto] {
		for _, e := range sb.edges {
			if sb.insert {
				_ = mirror.InsertEdge(e[0], e[1])
			} else {
				_ = mirror.DeleteEdge(e[0], e[1])
			}
		}
	}
	return mirror.Freeze(1)
}

// assertTopKEquiv requires got to be a valid top-k of the clean recompute
// want: same length, rank-by-rank scores within scoreEps, and every vertex
// scoring strictly above the boundary (want's k-th score) present — vertices
// tied at the boundary are interchangeable between equally valid top-k sets,
// which is exactly the tie-breaking contract pinned down in internal/topk.
func assertTopKEquiv(t *testing.T, label string, got, want []ego.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	if len(want) == 0 {
		return
	}
	for i := range want {
		if math.Abs(got[i].CB-want[i].CB) > scoreEps {
			t.Fatalf("%s: rank %d score %.9f, want %.9f\ngot  %v\nwant %v",
				label, i, got[i].CB, want[i].CB, got, want)
		}
	}
	boundary := want[len(want)-1].CB
	gotSet := make(map[int32]bool, len(got))
	for _, r := range got {
		gotSet[r.V] = true
	}
	for _, r := range want {
		if r.CB > boundary+scoreEps && !gotSet[r.V] {
			t.Fatalf("%s: vertex %d (cb %.9f, strictly above the boundary %.9f) missing\ngot  %v\nwant %v",
				label, r.V, r.CB, boundary, got, want)
		}
	}
}

// assertRecovered checks every served read shape of graph name against a
// from-scratch recompute on want.
func assertRecovered(t *testing.T, reg *Registry, name, mode string, want *graph.Graph) {
	t.Helper()
	info, err := reg.Info(name)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != want.NumVertices() || info.M != want.NumEdges() {
		t.Fatalf("recovered shape (n=%d,m=%d), want (n=%d,m=%d)", info.N, info.M, want.NumVertices(), want.NumEdges())
	}
	scores := ego.ComputeAll(want)
	algos := []string{AlgoOpt, AlgoBase}
	if mode == ModeLocal {
		algos = append(algos, AlgoScores)
	} else {
		algos = append(algos, AlgoLazy)
	}
	for _, k := range []int{1, 5, 10} {
		want := ego.TopKOfScores(scores, k)
		for _, algo := range algos {
			res, err := reg.TopK(name, k, algo, 1.05)
			if err != nil {
				t.Fatalf("TopK(%s, k=%d): %v", algo, k, err)
			}
			assertTopKEquiv(t, fmt.Sprintf("k=%d algo=%s", k, algo), res.Results, want)
		}
	}
	if mode == ModeLocal {
		// The strongest statement: every maintained per-vertex score equals
		// the recompute.
		for v := int32(0); v < want.NumVertices(); v++ {
			vr, err := reg.EgoBetweenness(name, v)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(vr.CB-scores[v]) > scoreEps {
				t.Fatalf("vertex %d recovered cb %.9f, recompute %.9f", v, vr.CB, scores[v])
			}
		}
	}
}

// durableRegistry builds a registry persisting under dir with an aggressive
// checkpoint policy so short tests cross checkpoint boundaries, plus any
// extra options.
func durableRegistry(dir string, extra ...RegistryOption) *Registry {
	opts := append([]RegistryOption{
		WithDataDir(dir),
		WithBuildWorkers(2),
		WithCheckpointPolicy(3, 1<<20),
	}, extra...)
	return NewRegistry(opts...)
}

// TestRecoveryEquivalence is the core property: for randomized batch
// sequences, kill points, and both maintenance modes, the reopened
// registry's answers equal a clean recompute — and keep doing so after the
// recovered registry applies the rest of the stream and is reopened once
// more (a second, clean restart).
func TestRecoveryEquivalence(t *testing.T) {
	const nBatches = 24
	for _, mode := range []string{ModeLocal, ModeLazy} {
		for _, seed := range []uint64{1, 7} {
			for _, killAt := range []int{0, 1, 7, 16, nBatches} {
				t.Run(fmt.Sprintf("%s/seed%d/kill%d", mode, seed, killAt), func(t *testing.T) {
					rng := rand.New(rand.NewPCG(seed, 0xE60B))
					base := gen.BarabasiAlbert(70, 3, seed)
					script := makeScript(rng, graph.DynFromGraph(base), nBatches)
					dir := t.TempDir()

					victim := durableRegistry(dir)
					if _, err := victim.Add("g", base, mode, 10); err != nil {
						t.Fatal(err)
					}
					for _, sb := range script[:killAt] {
						if _, err := victim.ApplyEdges("g", sb.edges, sb.insert); err != nil {
							t.Fatal(err)
						}
					}
					// Kill: no checkpoint, no flush — only the file contents
					// survive. Close stands in solely for the lock release a
					// real process death performs (it flushes nothing; every
					// durable byte was already written and fsynced).
					victim.Close()

					reborn := durableRegistry(dir)
					infos, err := reborn.Recover()
					if err != nil {
						t.Fatal(err)
					}
					if len(infos) != 1 || !infos[0].Persisted {
						t.Fatalf("recovered %+v, want one persisted graph", infos)
					}
					assertRecovered(t, reborn, "g", mode, stateAfter(base, script, killAt))

					// The recovered registry keeps serving writes durably:
					// finish the stream, restart again, recheck.
					for _, sb := range script[killAt:] {
						if _, err := reborn.ApplyEdges("g", sb.edges, sb.insert); err != nil {
							t.Fatal(err)
						}
					}
					assertRecovered(t, reborn, "g", mode, stateAfter(base, script, nBatches))
					reborn.Close()
					final := durableRegistry(dir)
					if _, err := final.Recover(); err != nil {
						t.Fatal(err)
					}
					defer final.Close()
					assertRecovered(t, final, "g", mode, stateAfter(base, script, nBatches))
				})
			}
		}
	}
}

// TestRecoveryCrashPoints kills the writer at every injectable durability
// point — before/after the WAL append, and at three points inside the
// checkpoint, including between the snapshot rename and the WAL truncation —
// and requires the reopened registry to match the recompute of exactly the
// durable history: batches before the kill, plus the killed batch iff its
// WAL append completed.
func TestRecoveryCrashPoints(t *testing.T) {
	points := []struct {
		point   string
		durable bool // the batch that crashed counts
	}{
		{store.CrashBeforeWALAppend, false},
		{store.CrashAfterWALAppend, true},
		{store.CrashBeforeCheckpoint, true},
		{store.CrashInStateWrite, true},
		{store.CrashAfterSnapshotTmp, true},
		{store.CrashAfterSnapshotRename, true},
	}
	errBoom := errors.New("injected crash")
	const killBatch = 5 // arms on the 6th batch — the checkpoint-every-3 boundary
	for _, mode := range []string{ModeLocal, ModeLazy} {
		for _, tc := range points {
			t.Run(mode+"/"+tc.point, func(t *testing.T) {
				rng := rand.New(rand.NewPCG(99, 0xE60B))
				base := gen.BarabasiAlbert(60, 3, 99)
				script := makeScript(rng, graph.DynFromGraph(base), killBatch+1)
				dir := t.TempDir()

				armed := false
				victim := durableRegistry(dir, WithCrashHook(func(g, p string) error {
					if armed && p == tc.point {
						return errBoom
					}
					return nil
				}))
				if _, err := victim.Add("g", base, mode, 10); err != nil {
					t.Fatal(err)
				}
				for _, sb := range script[:killBatch] {
					if _, err := victim.ApplyEdges("g", sb.edges, sb.insert); err != nil {
						t.Fatal(err)
					}
				}
				armed = true
				last := script[killBatch]
				if _, err := victim.ApplyEdges("g", last.edges, last.insert); !errors.Is(err, errBoom) {
					t.Fatalf("crash not injected: err = %v", err)
				}
				// The injected crash poisons the store: the victim must
				// refuse further durable writes rather than risk appending
				// behind a write of unknown extent.
				if _, err := victim.ApplyEdges("g", last.edges, last.insert); !errors.Is(err, ErrStorage) {
					t.Fatalf("post-crash write: err = %v, want ErrStorage", err)
				}
				victim.Close() // lock release only; content is as the crash left it

				reborn := durableRegistry(dir)
				if _, err := reborn.Recover(); err != nil {
					t.Fatal(err)
				}
				defer reborn.Close()
				upto := killBatch
				if tc.durable {
					upto++
				}
				assertRecovered(t, reborn, "g", mode, stateAfter(base, script, upto))
			})
		}
	}
}

// TestRecoveryGroupCommitCrash kills the write pipeline inside the
// group-commit window — between enqueue and the group WAL append, during
// the append (records written, fsync pending), and between the append and
// the apply / the snapshot publication — while a coalesced multi-batch
// group is in flight. The invariant: whatever prefix of the admitted
// stream the recovered WAL reports durable, the reopened registry serves
// exactly the top-k of a from-scratch recompute of that prefix.
func TestRecoveryGroupCommitCrash(t *testing.T) {
	points := []string{
		store.CrashBeforeWALAppend, // enqueue happened, group append did not: group lost
		store.CrashAfterGroupWrite, // records written, fsync pending: a kill keeps them
		store.CrashAfterWALAppend,  // group durable, never applied
		crashBeforeApply,           // same durability, server-level stage
		crashBeforePublish,         // applied in memory, snapshot never published
		crashAfterPublish,          // overlay published, compaction/checkpoint never ran
	}
	errBoom := errors.New("injected crash")
	const (
		preBatches   = 4 // committed cleanly before arming
		burstBatches = 3 // admitted async, coalesced by the flush window
	)
	for _, mode := range []string{ModeLocal, ModeLazy} {
		for _, point := range points {
			t.Run(mode+"/"+point, func(t *testing.T) {
				rng := rand.New(rand.NewPCG(41, 0xE60B))
				base := gen.BarabasiAlbert(60, 3, 41)
				script := makeScript(rng, graph.DynFromGraph(base), preBatches+burstBatches+1)
				dir := t.TempDir()

				armed := false
				victim := durableRegistry(dir,
					WithFlushInterval(150*time.Millisecond),
					WithCrashHook(func(g, p string) error {
						if armed && p == point {
							return errBoom
						}
						return nil
					}))
				if _, err := victim.Add("g", base, mode, 10); err != nil {
					t.Fatal(err)
				}
				for _, sb := range script[:preBatches] {
					if _, err := victim.ApplyEdges("g", sb.edges, sb.insert); err != nil {
						t.Fatal(err)
					}
				}
				// Arm, then admit the burst async (the writer's flush window
				// coalesces it into one group) and the next script batch
				// durable: its ack is the fence that proves the crash fired.
				armed = true
				for _, sb := range script[preBatches : preBatches+burstBatches] {
					if _, err := victim.ApplyEdgesAck("g", sb.edges, sb.insert, AckAsync); err != nil {
						t.Fatal(err)
					}
				}
				probe := script[preBatches+burstBatches]
				if _, err := victim.ApplyEdges("g", probe.edges, probe.insert); !errors.Is(err, ErrStorage) {
					t.Fatalf("probe after armed crash: err = %v, want ErrStorage", err)
				}
				// The pipeline is poisoned: further writes must keep failing
				// rather than diverge from the durable history.
				if _, err := victim.ApplyEdges("g", probe.edges, probe.insert); !errors.Is(err, ErrStorage) {
					t.Fatalf("second write after crash: err = %v, want ErrStorage", err)
				}
				victim.Close() // lock release only; files are as the crash left them

				reborn := durableRegistry(dir)
				infos, err := reborn.Recover()
				if err != nil {
					t.Fatal(err)
				}
				defer reborn.Close()
				if len(infos) != 1 {
					t.Fatalf("recovered %d graphs, want 1", len(infos))
				}
				// The WAL is the oracle: its last durable sequence names the
				// admitted prefix that survived (admission order is the
				// script order — one enqueueing goroutine). The crash point
				// bounds it: at least the pre-batches, at most everything
				// admitted.
				durable := int(infos[0].WALSeq)
				if durable < preBatches || durable > preBatches+burstBatches+1 {
					t.Fatalf("recovered wal_seq %d outside [%d, %d]", durable, preBatches, preBatches+burstBatches+1)
				}
				if point == store.CrashBeforeWALAppend && durable != preBatches {
					t.Fatalf("wal_seq %d after %s, want %d (group never written)", durable, point, preBatches)
				}
				assertRecovered(t, reborn, "g", mode, stateAfter(base, script, durable))
			})
		}
	}
}

// TestRecoveryTornWALTail simulates the one partial write a real crash can
// leave behind: garbage after the last complete WAL record. Recovery must
// drop exactly the torn bytes and serve the state of the complete prefix.
func TestRecoveryTornWALTail(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 0xE60B))
	base := gen.BarabasiAlbert(60, 3, 3)
	script := makeScript(rng, graph.DynFromGraph(base), 2)
	dir := t.TempDir()

	victim := NewRegistry(WithDataDir(dir), WithBuildWorkers(1), WithCheckpointPolicy(100, 1<<30))
	if _, err := victim.Add("g", base, ModeLocal, 0); err != nil {
		t.Fatal(err)
	}
	for _, sb := range script {
		if _, err := victim.ApplyEdges("g", sb.edges, sb.insert); err != nil {
			t.Fatal(err)
		}
	}

	victim.Close()
	walPath := filepath.Join(store.GraphDir(dir, "g"), "wal.ebwl")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reborn := durableRegistry(dir)
	if _, err := reborn.Recover(); err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	assertRecovered(t, reborn, "g", ModeLocal, stateAfter(base, script, len(script)))
}

// TestRecoveryInfoAndRemove covers the bookkeeping around the property
// tests: persistence fields in GraphInfo, checkpoint advancement, and
// Remove deleting the durable state so a restart no longer resurrects the
// graph.
func TestRecoveryInfoAndRemove(t *testing.T) {
	dir := t.TempDir()
	reg := durableRegistry(dir) // checkpoint every 3 batches
	base := gen.BarabasiAlbert(50, 3, 5)
	if _, err := reg.Add("g", base, ModeLocal, 0); err != nil {
		t.Fatal(err)
	}
	info, _ := reg.Info("g")
	if !info.Persisted || info.WALSeq != 0 || info.SnapshotSeq != 0 {
		t.Fatalf("fresh info = %+v", info)
	}
	for i := 0; i < 4; i++ {
		if _, err := reg.ApplyEdges("g", [][2]int32{{int32(i), int32(i + 10)}}, true); err != nil {
			t.Fatal(err)
		}
	}
	info, _ = reg.Info("g")
	if info.WALSeq != 4 || info.Checkpoints != 1 || info.SnapshotSeq != 3 {
		t.Fatalf("after 4 batches: %+v, want wal_seq=4 checkpoints=1 snapshot_seq=3", info)
	}
	if info.WALBytes <= 0 {
		t.Fatalf("wal_bytes = %d, want > 0", info.WALBytes)
	}

	if err := reg.Remove("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(store.GraphDir(dir, "g")); !os.IsNotExist(err) {
		t.Fatalf("store dir survives Remove: %v", err)
	}
	reborn := durableRegistry(dir)
	if infos, err := reborn.Recover(); err != nil || len(infos) != 0 {
		t.Fatalf("removed graph resurrected: %v %v", infos, err)
	}
}

// TestRecoverRejectsDuplicate: recovering into a registry that already
// serves the name must fail loudly instead of silently replacing state.
func TestRecoverRejectsDuplicate(t *testing.T) {
	dir := t.TempDir()
	reg := durableRegistry(dir)
	base := gen.BarabasiAlbert(30, 2, 1)
	if _, err := reg.Add("g", base, ModeLocal, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Recover(); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}
