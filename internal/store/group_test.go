package store

import (
	"errors"
	"path/filepath"
	"testing"
)

// TestAppendBatchesGroup: a group append produces per-batch records with
// consecutive sequences, indistinguishable on replay from individual
// appends, and mixes with single appends.
func TestAppendBatchesGroup(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	s, err := Create(dir, testGraph(t), SnapshotMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := s.AppendBatch(true, [][2]int32{{0, 3}}); err != nil || seq != 1 {
		t.Fatalf("single append: seq=%d err=%v", seq, err)
	}
	group := []BatchSpec{
		{Insert: true, Edges: [][2]int32{{1, 4}, {2, 5}}},
		{Insert: false, Edges: [][2]int32{{0, 1}}},
		{Insert: true, Edges: [][2]int32{{3, 5}}},
	}
	first, err := s.AppendBatches(group)
	if err != nil {
		t.Fatal(err)
	}
	if first != 2 || s.Seq() != 4 {
		t.Fatalf("first=%d seq=%d, want 2/4", first, s.Seq())
	}
	if seq, err := s.AppendBatch(false, [][2]int32{{4, 5}}); err != nil || seq != 5 {
		t.Fatalf("post-group append: seq=%d err=%v", seq, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.TornBytes != 0 {
		t.Fatalf("torn bytes = %d, want 0", rec.TornBytes)
	}
	if len(rec.Tail) != 5 {
		t.Fatalf("tail has %d batches, want 5", len(rec.Tail))
	}
	for i, b := range rec.Tail {
		if b.Seq != uint64(i+1) {
			t.Fatalf("tail[%d].Seq = %d, want %d", i, b.Seq, i+1)
		}
	}
	for i, sp := range group {
		got := rec.Tail[i+1]
		if got.Insert != sp.Insert || len(got.Edges) != len(sp.Edges) {
			t.Fatalf("tail[%d] = %+v, want spec %+v", i+1, got, sp)
		}
		for j, e := range sp.Edges {
			if got.Edges[j] != e {
				t.Fatalf("tail[%d].Edges[%d] = %v, want %v", i+1, j, got.Edges[j], e)
			}
		}
	}
}

// TestAppendBatchesEmptyGroup: a zero-batch group is a caller bug, rejected
// without touching the WAL or poisoning the store.
func TestAppendBatchesEmptyGroup(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	s, err := Create(dir, testGraph(t), SnapshotMeta{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.AppendBatches(nil); err == nil {
		t.Fatal("empty group accepted")
	}
	if s.Failed() != nil {
		t.Fatalf("empty group poisoned the store: %v", s.Failed())
	}
	if seq, err := s.AppendBatch(true, [][2]int32{{0, 3}}); err != nil || seq != 1 {
		t.Fatalf("append after empty group: seq=%d err=%v", seq, err)
	}
}

// TestAppendBatchesCrashPoints: an injected crash at each point of the group
// append poisons the store with the whole group un-acknowledged (Seq
// unchanged), and recovery sees exactly the records whose write completed —
// none for a crash before the write, all of them (in this process-kill
// model, where written-but-unsynced bytes survive) afterwards.
func TestAppendBatchesCrashPoints(t *testing.T) {
	cases := []struct {
		point  string
		onDisk int // group batches recovery replays
	}{
		{CrashBeforeWALAppend, 0},
		{CrashAfterGroupWrite, 2},
		{CrashAfterWALAppend, 2},
	}
	errBoom := errors.New("boom")
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "g")
			armed := false
			s, err := Create(dir, testGraph(t), SnapshotMeta{}, WithCrashHook(func(p string) error {
				if armed && p == tc.point {
					return errBoom
				}
				return nil
			}))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.AppendBatch(true, [][2]int32{{0, 3}}); err != nil {
				t.Fatal(err)
			}
			armed = true
			group := []BatchSpec{
				{Insert: true, Edges: [][2]int32{{1, 4}}},
				{Insert: true, Edges: [][2]int32{{2, 5}}},
			}
			if _, err := s.AppendBatches(group); !errors.Is(err, errBoom) {
				t.Fatalf("crash not injected: %v", err)
			}
			if _, err := s.AppendBatches(group); err == nil || s.Failed() == nil {
				t.Fatal("store not poisoned after group-append crash")
			}
			s.Close()

			s2, rec, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if len(rec.Tail) != 1+tc.onDisk {
				t.Fatalf("recovered %d batches, want %d", len(rec.Tail), 1+tc.onDisk)
			}
			if s2.Seq() != uint64(1+tc.onDisk) {
				t.Fatalf("recovered seq = %d, want %d", s2.Seq(), 1+tc.onDisk)
			}
		})
	}
}
