package ship

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Header names carrying stream positions alongside binary bodies.
const (
	// HeaderSeq is the leader's durable batch sequence at response time; on
	// a checkpoint response it is the sequence folded into the snapshot
	// (equal to the segment its WAL continues from).
	HeaderSeq = "X-Ship-Seq"
	// HeaderSegment is the WAL segment a checkpoint response anchors.
	HeaderSegment = "X-Ship-Segment"
)

// NewHandler serves a Source over HTTP. Routes (all GET, all read-only):
//
//	/ship/graphs                              JSON ["name", ...]
//	/ship/graphs/{name}/status                JSON Status
//	/ship/graphs/{name}/checkpoint            snapshot bytes + X-Ship-Segment/X-Ship-Seq
//	/ship/graphs/{name}/wal?segment=S&offset=O WAL record bytes + X-Ship-Seq
//
// Error mapping: ErrUnknownGraph → 404, ErrNotShippable → 409,
// ErrSegmentGone → 410 (the follower's cue to resynchronize), bad
// parameters → 400, anything else → 500. Mount it at the server root — the
// routes already carry the /ship/ prefix.
func NewHandler(src Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ship/graphs", func(w http.ResponseWriter, r *http.Request) {
		names := src.ShipGraphs()
		if names == nil {
			names = []string{}
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(names); err != nil {
			return
		}
	})
	mux.HandleFunc("GET /ship/graphs/{name}/status", func(w http.ResponseWriter, r *http.Request) {
		st, err := src.ShipStatus(r.PathValue("name"))
		if err != nil {
			shipError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(st); err != nil {
			return
		}
	})
	mux.HandleFunc("GET /ship/graphs/{name}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		data, err := src.ShipCheckpoint(r.PathValue("name"))
		if err != nil {
			shipError(w, err)
			return
		}
		st, err := src.ShipStatus(r.PathValue("name"))
		if err != nil {
			shipError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set(HeaderSegment, strconv.FormatUint(st.Segment, 10))
		w.Header().Set(HeaderSeq, strconv.FormatUint(st.Seq, 10))
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		_, _ = w.Write(data)
	})
	mux.HandleFunc("GET /ship/graphs/{name}/wal", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		segment, err1 := strconv.ParseUint(q.Get("segment"), 10, 64)
		offset, err2 := strconv.ParseInt(q.Get("offset"), 10, 64)
		if err1 != nil || err2 != nil || offset < 0 {
			http.Error(w, "ship: wal requires numeric segment and offset query parameters", http.StatusBadRequest)
			return
		}
		data, leaderSeq, err := src.ShipWALTail(r.PathValue("name"), segment, offset)
		if err != nil {
			shipError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set(HeaderSeq, strconv.FormatUint(leaderSeq, 10))
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		_, _ = w.Write(data)
	})
	return mux
}

// shipError maps Source sentinels onto HTTP status codes.
func shipError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownGraph):
		code = http.StatusNotFound
	case errors.Is(err, ErrNotShippable):
		code = http.StatusConflict
	case errors.Is(err, ErrSegmentGone):
		code = http.StatusGone
	}
	http.Error(w, err.Error(), code)
}

// statusToError is the client-side inverse of shipError, restoring the
// sentinel so follower logic can match on it regardless of transport.
func statusToError(code int, body string) error {
	switch code {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrUnknownGraph, body)
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", ErrNotShippable, body)
	case http.StatusGone:
		return fmt.Errorf("%w: %s", ErrSegmentGone, body)
	default:
		return fmt.Errorf("ship: leader answered %d: %s", code, body)
	}
}
