package store

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// The snapshot format is little-endian on disk. On little-endian hosts —
// every platform this repository targets — a word array therefore moves
// between file bytes and memory as a single memcpy, or, for the 8-aligned
// maintainer-state payload, as a zero-copy reinterpretation of the file
// buffer. Big-endian hosts take the portable per-element path below. The
// distinction is what turns state decode from O(elements) conversion loops
// into O(1)/O(bytes) moves, which the instant-recovery budget depends on.
var hostLittleEndian = func() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// word is any fixed-width array element the snapshot codec moves in bulk.
type word interface {
	uint32 | int32 | uint64 | int64 | float64
}

// wordData views s's backing array as bytes (host byte order).
func wordData[T word](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*int(unsafe.Sizeof(s[0])))
}

// appendWords appends the little-endian encoding of s to buf.
func appendWords[T word](buf []byte, s []T) []byte {
	if hostLittleEndian {
		return append(buf, wordData(s)...)
	}
	switch s := any(s).(type) {
	case []uint32:
		for _, v := range s {
			buf = binary.LittleEndian.AppendUint32(buf, v)
		}
	case []int32:
		for _, v := range s {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	case []uint64:
		for _, v := range s {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	case []int64:
		for _, v := range s {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	case []float64:
		for _, v := range s {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

// decodeWords fills dst from the first len(dst)*sizeof(T) bytes of src.
func decodeWords[T word](dst []T, src []byte) {
	if hostLittleEndian {
		copy(wordData(dst), src)
		return
	}
	switch dst := any(dst).(type) {
	case []uint32:
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint32(src[4*i:])
		}
	case []int32:
		for i := range dst {
			dst[i] = int32(binary.LittleEndian.Uint32(src[4*i:]))
		}
	case []uint64:
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint64(src[8*i:])
		}
	case []int64:
		for i := range dst {
			dst[i] = int64(binary.LittleEndian.Uint64(src[8*i:]))
		}
	case []float64:
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
		}
	}
}

// aliasWords returns an n-element []T view of src's first n*sizeof(T) bytes.
// On a little-endian host this is zero-copy: the slice aliases src, whose
// backing buffer the caller thereby hands over to whatever outlives the
// decode (the aligned on-disk layout guarantees src is sizeof(T)-aligned
// wherever the codec calls this). Big-endian hosts get a converted copy.
func aliasWords[T word](src []byte, n uint64) []T {
	if n == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*T)(unsafe.Pointer(unsafe.SliceData(src))), n)
	}
	dst := make([]T, n)
	decodeWords(dst, src)
	return dst
}

// aliasBools views src's first n bytes as a []bool. The caller must already
// have validated that every byte is 0 or 1 — any other bit pattern in a Go
// bool is undefined behavior, which is exactly why the decoder checks before
// aliasing rather than after.
func aliasBools(src []byte, n uint64) []bool {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*bool)(unsafe.Pointer(unsafe.SliceData(src))), n)
}
