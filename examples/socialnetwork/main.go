// Social-network influencer search: the paper's motivating use case.
//
// Generates a power-law social graph, finds the top-k "influencers" by
// ego-betweenness, and validates the paper's effectiveness claim by
// comparing against exact betweenness centrality — ego-betweenness is a few
// orders of magnitude cheaper and lands mostly the same vertices.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"time"

	egobw "repro"
)

func main() {
	// A Youtube-like power-law graph: 12k users, heavy-tailed degrees.
	g := egobw.GenerateChungLu(12000, 2.2, 6, 600, 2024)
	fmt.Println("social graph:", egobw.Stats(g))

	const k = 25
	t0 := time.Now()
	influencers, st := egobw.TopK(g, k)
	tEBW := time.Since(t0)
	fmt.Printf("\nTop-%d by ego-betweenness (%v, %d of %d vertices computed exactly):\n",
		k, tEBW.Round(time.Millisecond), st.Computed, g.NumVertices())
	for i, r := range influencers {
		fmt.Printf("  %2d. user %-6d CB=%10.1f degree=%d\n", i+1, r.V, r.CB, g.Degree(r.V))
	}

	// The expensive alternative: exact betweenness over the whole graph.
	t0 = time.Now()
	classic := egobw.BetweennessTopK(g, k, 0)
	tBW := time.Since(t0)
	fmt.Printf("\nTop-%d by classic betweenness (Brandes): %v\n", k, tBW.Round(time.Millisecond))
	fmt.Printf("speedup: %.0fx   top-%d overlap: %.0f%%\n",
		float64(tBW)/float64(tEBW), k, egobw.Overlap(influencers, classic)*100)
	fmt.Println("\nThe overlap is the paper's Fig. 11 effect: ego-betweenness picks")
	fmt.Println("nearly the same bridge vertices at a fraction of the cost.")
}
