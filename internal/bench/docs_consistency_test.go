package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root not found")
		}
		dir = parent
	}
}

// TestDocsCoverEveryExperiment: DESIGN.md and EXPERIMENTS.md must mention
// every experiment id the harness registers, so the documentation cannot
// silently drift from the code.
func TestDocsCoverEveryExperiment(t *testing.T) {
	root := repoRoot(t)
	for _, doc := range []string{"DESIGN.md", "EXPERIMENTS.md"} {
		raw, err := os.ReadFile(filepath.Join(root, doc))
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		text := strings.ToLower(string(raw))
		for _, e := range Experiments {
			// fig6 appears as "fig6" or "Fig. 6"; accept either spelling.
			spaced := strings.Replace(e.ID, "fig", "fig. ", 1)
			spaced = strings.Replace(spaced, "table", "table ", 1)
			if !strings.Contains(text, e.ID) && !strings.Contains(text, spaced) {
				t.Errorf("%s does not mention experiment %q", doc, e.ID)
			}
		}
	}
}

// TestReadmeMentionsDeliverables: the README must point at the design doc,
// the experiment record, and the three CLI tools.
func TestReadmeMentionsDeliverables(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join(repoRoot(t), "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"DESIGN.md", "EXPERIMENTS.md",
		"cmd/egobw", "cmd/benchtab", "cmd/datagen",
		"examples/quickstart",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("README.md does not mention %s", want)
		}
	}
}

// TestRawOutputsExist: the recorded harness outputs referenced by
// EXPERIMENTS.md must be present in the repository.
func TestRawOutputsExist(t *testing.T) {
	root := repoRoot(t)
	for _, f := range []string{"benchtab_part1.txt", "benchtab_part2.txt"} {
		info, err := os.Stat(filepath.Join(root, f))
		if err != nil {
			t.Fatalf("%s missing: %v", f, err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
}
