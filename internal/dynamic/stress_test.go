package dynamic

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/ego"
	"repro/internal/gen"
)

// TestStressMixedOpsWithGrowth drives a long script mixing edge inserts,
// edge deletes, vertex inserts, and vertex deletes — including vertex-set
// growth — on both maintainers, cross-checking against recomputation at
// checkpoints.
func TestStressMixedOpsWithGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("long stress test")
	}
	rng := rand.New(rand.NewPCG(2718, 281))
	g := gen.ErdosRenyi(40, 120, 7)
	const k = 6
	m := NewMaintainer(g)
	lt := NewLazyTopK(g, k)

	for step := 0; step < 250; step++ {
		n := m.Graph().NumVertices()
		switch rng.IntN(10) {
		case 0: // insert a new vertex with up to 4 neighbors
			var nbrs []int32
			seen := map[int32]bool{}
			for len(nbrs) < 1+rng.IntN(4) {
				u := rng.Int32N(n)
				if !seen[u] {
					seen[u] = true
					nbrs = append(nbrs, u)
				}
			}
			v1, err := m.InsertVertex(nbrs)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			v2, err := lt.InsertVertex(nbrs)
			if err != nil || v1 != v2 {
				t.Fatalf("step %d: lazy insert vertex: %v (ids %d/%d)", step, err, v1, v2)
			}
		case 1: // strip a random vertex bare
			v := rng.Int32N(n)
			if err := m.DeleteVertex(v); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if err := lt.DeleteVertex(v); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		default: // toggle a random edge
			u, v := rng.Int32N(n), rng.Int32N(n)
			if u == v {
				continue
			}
			if m.Graph().HasEdge(u, v) {
				if err := m.DeleteEdge(u, v); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if err := lt.DeleteEdge(u, v); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			} else {
				if err := m.InsertEdge(u, v); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if err := lt.InsertEdge(u, v); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		}
		if step%25 == 0 {
			assertMatchesScratch(t, m, "stress checkpoint")
			compareTopK(t, m, lt, k, "stress checkpoint")
		}
	}
	assertMatchesScratch(t, m, "stress final")
	compareTopK(t, m, lt, k, "stress final")
}

// TestMaintainerTopKTracksSearch: after arbitrary updates, the maintainer's
// top-k must equal a fresh OptBSearch on the materialized graph.
func TestMaintainerTopKTracksSearch(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, 77)
	m := NewMaintainer(g)
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 40; i++ {
		u, v := rng.Int32N(500), rng.Int32N(500)
		if u == v {
			continue
		}
		if m.Graph().HasEdge(u, v) {
			_ = m.DeleteEdge(u, v)
		} else {
			_ = m.InsertEdge(u, v)
		}
	}
	snap := m.Graph().Freeze(1)
	want, _ := ego.OptBSearch(snap, 10, 1.05)
	got := m.TopK(10)
	for i := range want {
		if math.Abs(want[i].CB-got[i].CB) > 1e-6 {
			t.Fatalf("rank %d: maintainer %v, search %v", i, got[i].CB, want[i].CB)
		}
	}
}

// TestLazyResultsIdempotent: calling Results repeatedly without updates must
// return identical answers and do no extra recomputation after the first.
func TestLazyResultsIdempotent(t *testing.T) {
	lt := NewLazyTopK(gen.ErdosRenyi(100, 300, 11), 5)
	if err := lt.InsertEdge(0, 99); err != nil {
		t.Fatal(err)
	}
	first := lt.Results()
	work := lt.Stats.Recomputed
	for i := 0; i < 3; i++ {
		again := lt.Results()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("Results changed on repeat call: %v vs %v", again[j], first[j])
			}
		}
	}
	if lt.Stats.Recomputed != work {
		t.Errorf("idle Results recomputed %d extra vertices", lt.Stats.Recomputed-work)
	}
}
