# Targets mirror the CI workflow (.github/workflows/ci.yml); see README.md.

GO ?= go

.PHONY: build test bench bench-pr5 bench-pr6 bench-pr7 bench-pr8 bench-pr9 bench-pr10 bench-recall bench-figs bench-smoke fuzz-smoke cover serve fmt lint vet clean

build:
	$(GO) build ./...

test: vet
	$(GO) test -race ./...

# Bench-regression harness: machine-readable ns/op for the hot paths
# (ComputeAll, OptBSearch, Maintainer.InsertEdge, snapshot build, the
# PR 3 persistence costs, the PR 4 write-throughput rows, the PR 5
# snapshot-publication rows: full-freeze vs copy-on-write overlay at
# 1/16/256-edge batches, plus the background compaction cost, and the
# PR 6 instant-recovery rows: state-carrying checkpoints and fast vs
# rebuild restart, the PR 7 read-path kernel rows: overlay read tax,
# degree-relabeled search, hub×hub scalar vs word-parallel intersection,
# and the PR 8 replication rows: follower bootstrap, read latency under
# open-loop load, and steady-state replica lag, and the PR 9 temporal
# rows: expiry-churn drain cost at 0/16/256/2048 expired edges and
# windowed read p50/p99 under open-loop churn, and the PR 10 approx-tier
# rows: the algo=approx latency/recall frontier at three eps points with a
# paired exact baseline), written to BENCH_PR10.json so the perf
# trajectory is tracked across PRs.
bench: bench-pr10

bench-pr5: build
	$(GO) run ./cmd/benchtab -prbench BENCH_PR5.json

bench-pr6: build
	$(GO) run ./cmd/benchtab -prbench BENCH_PR6.json

bench-pr7: build
	$(GO) run ./cmd/benchtab -prbench BENCH_PR7.json

bench-pr8: build
	$(GO) run ./cmd/benchtab -prbench BENCH_PR8.json

bench-pr9: build
	$(GO) run ./cmd/benchtab -prbench BENCH_PR9.json

bench-pr10: build
	$(GO) run ./cmd/benchtab -prbench BENCH_PR10.json

# Approx-tier recall smoke: the latency/recall frontier table, gated on
# recall@100 >= 0.9 at the default eps (the CI non-gating step).
bench-recall: build
	$(GO) run ./cmd/benchtab -recall dblp,ir -min-recall 0.9

# Regenerate the paper's tables and figures (quick grids; -full for the
# paper's grids). See EXPERIMENTS.md.
bench-figs: build
	$(GO) run ./cmd/benchtab -exp all

# Compile-and-run every Go benchmark once (the CI smoke step; not a
# measurement).
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Short fuzz runs of the persistence decoders (internal/store). `go test`
# accepts one -fuzz pattern per invocation, hence one run per target. CI
# runs this non-gating, like bench-smoke; crank -fuzztime up for a real
# session.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/store -run '^$$' -fuzz FuzzDecodeSnapshot -fuzztime $(FUZZTIME)
	$(GO) test ./internal/store -run '^$$' -fuzz FuzzDecodeMaintainerState -fuzztime $(FUZZTIME)
	$(GO) test ./internal/store -run '^$$' -fuzz FuzzDecodeWAL -fuzztime $(FUZZTIME)

# Coverage profile over every package (atomic mode so it composes with
# -race); CI uploads coverage.out as a workflow artifact.
cover:
	$(GO) test -race -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Run the query-serving daemon on :8080 (README.md has the curl walkthrough).
serve:
	$(GO) run ./cmd/egobwd -addr :8080

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# Static analysis beyond vet (the CI lint step). Uses a PATH-installed
# staticcheck when available, else fetches the pinned version via `go run`
# (needs network; CI always takes this path).
STATICCHECK_VERSION ?= 2025.1.1
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; fi

clean:
	$(GO) clean ./...
