package dynamic

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/ego"
	"repro/internal/graph"
	"repro/internal/nbr"
	"repro/internal/pairmap"
)

// This file is the maintainer-state export/import seam of the durability
// layer (DESIGN.md §11): everything a Maintainer or LazyTopK holds beyond the
// graph itself, flattened into plain slices a binary codec can frame, and the
// inverse constructors that restore a maintainer from those slices in O(load)
// — no score recomputation, no evidence rehashing. The serving layer exports
// at checkpoint time and imports at recovery time; round-tripping reproduces
// the paper's invariants exactly because the evidence tables travel verbatim
// (slot arrays included), so a recovered maintainer is bit-for-bit the
// in-memory state of a process that never crashed.

// LocalState is the flattened state of an exact Maintainer (ModeLocal): the
// score vector, every vertex's evidence table dumped slot-for-slot, and the
// dirty-score bookkeeping of the copy-on-write publication path.
type LocalState struct {
	// Scores is the exact ego-betweenness vector (length n).
	Scores []float64
	// TableSizes[v] is the slot count of v's evidence table (0 = no table
	// was ever allocated for v).
	TableSizes []uint32
	// Keys and Vals are the raw open-addressing slot arrays of every
	// allocated table, concatenated in vertex order; each table occupies
	// TableSizes[v] consecutive slots. Empty and tombstone slots travel
	// too — that is what makes import rehash-free.
	Keys []uint64
	Vals []int32
	// Dirty lists the vertices with score changes not yet drained by
	// TakeDirtyScores, deduplicated.
	Dirty []int32
}

// LazyState is the flattened state of a LazyTopK (ModeLazy): cached scores,
// staleness flags, and the result-set membership. The candidate heap is not
// persisted — every valid heap entry of a non-member v is (v, cached[v]), so
// import rebuilds it canonically from the cache (see NewLazyTopKFromState).
type LazyState struct {
	Cached  []float64
	Stale   []bool
	Members []int32
}

// ExportState flattens the maintainer's full update state. Scores, Keys, and
// Vals alias live internal storage where possible, so the snapshot is only
// consistent until the next InsertEdge/DeleteEdge/TakeDirtyScores — callers
// encode (or copy) before releasing the lock that serialized the export.
func (m *Maintainer) ExportState() *LocalState {
	st := &LocalState{
		Scores:     m.cb,
		TableSizes: make([]uint32, len(m.s)),
		Dirty:      append([]int32(nil), m.dirtyCB...),
	}
	total := 0
	for _, s := range m.s {
		if s != nil {
			keys, _ := s.Table()
			total += len(keys)
		}
	}
	st.Keys = make([]uint64, 0, total)
	st.Vals = make([]int32, 0, total)
	for v, s := range m.s {
		if s == nil {
			continue
		}
		keys, vals := s.Table()
		st.TableSizes[v] = uint32(len(keys))
		st.Keys = append(st.Keys, keys...)
		st.Vals = append(st.Vals, vals...)
	}
	return st
}

// NewMaintainerFromState restores an exact Maintainer over g from an exported
// LocalState, taking ownership of the state's slices. The evidence tables are
// adopted slot-for-slot (each table is a sub-slice of the flat arrays), so
// the cost is one validation scan over the state — O(load) — instead of the
// O(Σ|GE(v)|²) recomputation of NewMaintainer. Structural corruption returns
// an error; callers fall back to the rebuild path.
func NewMaintainerFromState(g *graph.Graph, st *LocalState) (*Maintainer, error) {
	n := g.NumVertices()
	if int32(len(st.Scores)) != n || int32(len(st.TableSizes)) != n {
		return nil, fmt.Errorf("dynamic: state covers %d scores / %d tables, graph has %d vertices",
			len(st.Scores), len(st.TableSizes), n)
	}
	if len(st.Keys) != len(st.Vals) {
		return nil, fmt.Errorf("dynamic: state has %d key slots, %d value slots", len(st.Keys), len(st.Vals))
	}
	for v, cb := range st.Scores {
		// Incremental maintenance can leave a true-zero score at a tiny
		// negative residue, so only non-finite values are structural
		// corruption here.
		if math.IsNaN(cb) || math.IsInf(cb, 0) {
			return nil, fmt.Errorf("dynamic: score of vertex %d is %v", v, cb)
		}
	}
	maps := make([]*pairmap.Map, n)
	// Serial framing pass: which vertices own a table and where each table
	// starts in the flat slot arrays. The per-slot validation below is the
	// expensive part, so it is the part that shards.
	tableVertex := make([]int32, 0, n)
	tableOff := make([]int, 0, n)
	off := 0
	for v := int32(0); v < n; v++ {
		size := int(st.TableSizes[v])
		if size == 0 {
			continue
		}
		if size > len(st.Keys)-off {
			return nil, fmt.Errorf("dynamic: evidence table of vertex %d overruns the slot arrays", v)
		}
		tableVertex = append(tableVertex, v)
		tableOff = append(tableOff, off)
		off += size
	}
	if off != len(st.Keys) {
		return nil, fmt.Errorf("dynamic: %d slot(s) beyond the last evidence table", len(st.Keys)-off)
	}
	// One slab for every Map header (at hundreds of thousands of per-vertex
	// tables, individual allocations would dominate the import), validated
	// and adopted in parallel: tables are disjoint sub-slices of the flat
	// arrays and each worker owns a contiguous range of them, so the only
	// coordination is the join. This scan is the O(load) of the fast boot
	// path — sharding it is what keeps recovery at memory-bandwidth speed.
	slab := make([]pairmap.Map, len(tableVertex))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(tableVertex) {
		workers = len(tableVertex)
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := len(tableVertex) * w / workers
		hi := len(tableVertex) * (w + 1) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				v, start := tableVertex[i], tableOff[i]
				end := start + int(st.TableSizes[v])
				// Full slice expressions cap capacity so a table growing
				// in place can never scribble over its successor's slots.
				if err := slab[i].ResetFromTable(st.Keys[start:end:end], st.Vals[start:end:end], n); err != nil {
					errs[w] = fmt.Errorf("dynamic: evidence table of vertex %d: %w", v, err)
					return
				}
				maps[v] = &slab[i]
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	m := &Maintainer{
		g: graph.DynFromGraph(g), s: maps, cb: st.Scores,
		reg:      nbr.NewRegister(n),
		dirtySet: make([]bool, n),
	}
	for _, v := range st.Dirty {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("dynamic: dirty-score vertex %d out of range", v)
		}
		if !m.dirtySet[v] {
			m.dirtySet[v] = true
			m.dirtyCB = append(m.dirtyCB, v)
		}
	}
	return m, nil
}

// ExportState flattens the lazy maintainer's state. Cached and Stale alias
// live internal storage, so the snapshot is only consistent until the next
// update or query — encode before releasing the serializing lock.
func (lt *LazyTopK) ExportState() *LazyState {
	return &LazyState{
		Cached:  lt.cached,
		Stale:   lt.stale,
		Members: append([]int32(nil), lt.members...),
	}
}

// NewLazyTopKFromState restores a LazyTopK over g from an exported LazyState,
// taking ownership of the state's slices. The candidate heap is rebuilt
// canonically — one entry (v, cached[v]) per non-member — which is exactly
// the set of valid entries a live heap carries (every cache change of a
// non-member pushes the new value, superseding older entries), so recovery
// preserves the upper/lower-bound invariants documented on LazyTopK.
func NewLazyTopKFromState(g *graph.Graph, k int, st *LazyState) (*LazyTopK, error) {
	if k < 1 {
		k = 1
	}
	n := g.NumVertices()
	if int32(len(st.Cached)) != n || int32(len(st.Stale)) != n {
		return nil, fmt.Errorf("dynamic: lazy state covers %d scores / %d flags, graph has %d vertices",
			len(st.Cached), len(st.Stale), n)
	}
	for v, cb := range st.Cached {
		if math.IsNaN(cb) || math.IsInf(cb, 0) {
			return nil, fmt.Errorf("dynamic: cached score of vertex %d is %v", v, cb)
		}
	}
	if len(st.Members) > k {
		return nil, fmt.Errorf("dynamic: %d result-set members exceed k=%d", len(st.Members), k)
	}
	lt := &LazyTopK{
		g: graph.DynFromGraph(g), k: k,
		cached:  st.Cached,
		stale:   st.Stale,
		inR:     make([]bool, n),
		heap:    &lazyHeap{ver: make([]int32, n)},
		scratch: ego.NewScratch(n),
	}
	for _, v := range st.Members {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("dynamic: result-set member %d out of range", v)
		}
		if lt.inR[v] {
			return nil, fmt.Errorf("dynamic: result-set member %d duplicated", v)
		}
		lt.inR[v] = true
		lt.members = append(lt.members, v)
	}
	for v := int32(0); v < n; v++ {
		if !lt.inR[v] {
			lt.heap.push(v, lt.cached[v])
		}
	}
	return lt, nil
}
