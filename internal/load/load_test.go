package load

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
)

// newTarget spins up a real egobwd API server with one generated graph.
func newTarget(t *testing.T) *httptest.Server {
	t.Helper()
	srv := server.New()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	body, _ := json.Marshal(map[string]any{
		"name":      "demo",
		"generator": map[string]any{"model": "ba", "n": 500, "mper": 3, "seed": 7},
	})
	resp, err := http.Post(ts.URL+"/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("load graph: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load graph: status %d", resp.StatusCode)
	}
	return ts
}

func TestRunReadsOnly(t *testing.T) {
	ts := newTarget(t)
	res, err := Run(context.Background(), Config{
		ReadURL:  ts.URL,
		Graph:    "demo",
		Rate:     400,
		Duration: 300 * time.Millisecond,
		K:        5,
		Algo:     "opt",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Reads.Count == 0 {
		t.Fatal("no reads completed")
	}
	if res.Writes.Count != 0 {
		t.Fatalf("writes ran with WriteFrac=0: %d", res.Writes.Count)
	}
	if res.Reads.Errors != 0 {
		t.Fatalf("read errors: %d", res.Reads.Errors)
	}
	if res.Reads.P50 <= 0 || res.Reads.P99 < res.Reads.P50 || res.Reads.Max < res.Reads.P99 {
		t.Fatalf("implausible quantiles: p50=%v p99=%v max=%v", res.Reads.P50, res.Reads.P99, res.Reads.Max)
	}
	if res.Achieved <= 0 {
		t.Fatalf("achieved rate %v", res.Achieved)
	}
}

func TestRunMixed(t *testing.T) {
	ts := newTarget(t)
	res, err := Run(context.Background(), Config{
		ReadURL:   ts.URL,
		Graph:     "demo",
		Rate:      400,
		WriteFrac: 0.5,
		Batch:     4,
		Duration:  300 * time.Millisecond,
		Seed:      42,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Reads.Count == 0 || res.Writes.Count == 0 {
		t.Fatalf("want both classes, got reads=%d writes=%d", res.Reads.Count, res.Writes.Count)
	}
	if res.Reads.Errors != 0 || res.Writes.Errors != 0 {
		t.Fatalf("errors: reads=%d writes=%d", res.Reads.Errors, res.Writes.Errors)
	}
}

func TestRunSeparateWriteTarget(t *testing.T) {
	readTS := newTarget(t)
	writeTS := newTarget(t)
	res, err := Run(context.Background(), Config{
		ReadURL:   readTS.URL,
		WriteURL:  writeTS.URL,
		Graph:     "demo",
		Rate:      300,
		WriteFrac: 0.3,
		Duration:  200 * time.Millisecond,
		Seed:      7,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Writes.Count == 0 {
		t.Fatal("no writes against the separate write target")
	}
	if res.Writes.Errors != 0 {
		t.Fatalf("write errors: %d", res.Writes.Errors)
	}
}

// TestRunWindowedChurn drives a windowed graph with a full write mix —
// back-stamped inserts that expire early plus delete batches aimed at
// recently inserted edges — and checks the drain accounting the summary
// reports: drains happened, expiry batches rode them, and the deletes class
// completed cleanly.
func TestRunWindowedChurn(t *testing.T) {
	srv := server.New()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	body, _ := json.Marshal(map[string]any{
		"name":      "demo",
		"window":    "250ms",
		"generator": map[string]any{"model": "ba", "n": 500, "mper": 3, "seed": 7},
	})
	resp, err := http.Post(ts.URL+"/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load graph: status %d", resp.StatusCode)
	}
	res, err := Run(context.Background(), Config{
		ReadURL:     ts.URL,
		Graph:       "demo",
		Rate:        400,
		WriteFrac:   0.6,
		DeleteFrac:  0.3,
		StampSkewMS: 200, // near the 250ms window: a good share expires fast
		Batch:       4,
		Duration:    600 * time.Millisecond,
		Seed:        42,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Writes.Count == 0 || res.Deletes.Count == 0 {
		t.Fatalf("want inserts and deletes, got writes=%d deletes=%d", res.Writes.Count, res.Deletes.Count)
	}
	if res.Writes.Errors != 0 || res.Deletes.Errors != 0 {
		t.Fatalf("errors: writes=%d deletes=%d", res.Writes.Errors, res.Deletes.Errors)
	}
	if res.GroupCommits <= 0 {
		t.Fatalf("no drains counted: %+v", res)
	}
	if res.ExpiryBatches == 0 || res.ExpiredEdges == 0 {
		t.Fatalf("no expiry churn observed: batches=%d edges=%d", res.ExpiryBatches, res.ExpiredEdges)
	}
}

// Stamp skew against an unwindowed graph must fail at startup, not as a
// stream of per-request 400s.
func TestRunStampSkewNeedsWindow(t *testing.T) {
	ts := newTarget(t)
	_, err := Run(context.Background(), Config{
		ReadURL:     ts.URL,
		Graph:       "demo",
		Rate:        10,
		WriteFrac:   0.5,
		StampSkewMS: 100,
		Duration:    time.Second,
	})
	if err == nil {
		t.Fatal("want startup error for stamp skew on an unwindowed graph")
	}
}

func TestRunUnknownGraphFailsFast(t *testing.T) {
	ts := newTarget(t)
	_, err := Run(context.Background(), Config{
		ReadURL:  ts.URL,
		Graph:    "nope",
		Rate:     10,
		Duration: time.Second,
	})
	if err == nil {
		t.Fatal("want startup error for unknown graph")
	}
}

func TestRunConfigValidation(t *testing.T) {
	cases := []Config{
		{Graph: "g", Rate: 0, Duration: time.Second},
		{Graph: "g", Rate: 10, Duration: 0},
		{Graph: "g", Rate: 10, Duration: time.Second, WriteFrac: 1.5},
		{Graph: "g", Rate: 10, Duration: time.Second, DeleteFrac: -0.1},
		{Graph: "g", Rate: 10, Duration: time.Second, StampSkewMS: -5},
		{Rate: 10, Duration: time.Second},
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: want config error", i)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ts := newTarget(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Run(ctx, Config{
		ReadURL:  ts.URL,
		Graph:    "demo",
		Rate:     100,
		Duration: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation ignored: ran %v", elapsed)
	}
	_ = res
}

func TestQuantile(t *testing.T) {
	s := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := quantile(s, 0.5); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := quantile(s, 0.9); got != 9 {
		t.Errorf("p90 = %v, want 9", got)
	}
	if got := quantile(s, 1.0); got != 10 {
		t.Errorf("p100 = %v, want 10", got)
	}
	if got := quantile(s[:1], 0.99); got != 1 {
		t.Errorf("single-sample p99 = %v, want 1", got)
	}
}
