package ego

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/paperex"
)

// TestSearchStatsConsistency: computed + pruned never exceeds n for Base;
// Opt's computed is bounded by n and its refresh count by computed +
// reinsertions + pruned + 1 per heap pop.
func TestSearchStatsConsistency(t *testing.T) {
	for seed := uint64(400); seed < 420; seed++ {
		g := gen.Random(seed, 60)
		n := int64(g.NumVertices())
		_, bst := BaseBSearch(g, 7)
		if bst.Computed+bst.Pruned > n {
			t.Errorf("seed %d: base computed %d + pruned %d > n=%d",
				seed, bst.Computed, bst.Pruned, n)
		}
		_, ost := OptBSearch(g, 7, 1.05)
		if ost.Computed > n {
			t.Errorf("seed %d: opt computed %d > n=%d", seed, ost.Computed, n)
		}
		// Every pop refreshes exactly one bound, and every refresh ends in
		// a computation, a reinsertion, or a prune — except that early
		// termination bulk-prunes the never-popped heap remainder, so
		// Pruned can exceed the individually popped count.
		if ost.BoundRefreshes < ost.Computed ||
			ost.BoundRefreshes > ost.Computed+ost.Reinserted+ost.Pruned+1 {
			t.Errorf("seed %d: refreshes %d outside [%d, %d]",
				seed, ost.BoundRefreshes, ost.Computed,
				ost.Computed+ost.Reinserted+ost.Pruned+1)
		}
	}
}

// TestSearchDeterminism: repeated runs must return identical vertex lists
// (not just scores) — the tie-breaking is fully deterministic.
func TestSearchDeterminism(t *testing.T) {
	g := gen.ChungLu(500, 2.3, 6, 60, 31)
	first, _ := OptBSearch(g, 20, 1.05)
	for run := 0; run < 3; run++ {
		again, _ := OptBSearch(g, 20, 1.05)
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("run %d: rank %d differs: %v vs %v", run, i, again[i], first[i])
			}
		}
	}
	b1, _ := BaseBSearch(g, 20)
	b2, _ := BaseBSearch(g, 20)
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("base rank %d differs", i)
		}
	}
}

// TestSearchSmallK: k=1 returns the global maximum.
func TestSearchSmallK(t *testing.T) {
	for seed := uint64(500); seed < 520; seed++ {
		g := gen.Random(seed, 50)
		all := ComputeAll(g)
		maxCB := 0.0
		for _, x := range all {
			if x > maxCB {
				maxCB = x
			}
		}
		for name, run := range map[string]func() []Result{
			"base": func() []Result { r, _ := BaseBSearch(g, 1); return r },
			"opt":  func() []Result { r, _ := OptBSearch(g, 1, 1.05); return r },
		} {
			res := run()
			if len(res) != 1 || math.Abs(res[0].CB-maxCB) > 1e-9 {
				t.Errorf("seed %d %s: top-1 = %v, want score %v", seed, name, res, maxCB)
			}
		}
	}
}

// TestSearchAllTiedScores: on vertex-transitive graphs every CB ties; any
// k-subset is valid but scores must all equal the common value.
func TestSearchAllTiedScores(t *testing.T) {
	// Cycle C12: every vertex has CB = 1 (its two neighbors are
	// non-adjacent with no connector in the ego).
	var edges [][2]int32
	for i := int32(0); i < 12; i++ {
		edges = append(edges, [2]int32{i, (i + 1) % 12})
	}
	g := graph.MustFromEdges(12, edges)
	res, _ := OptBSearch(g, 5, 1.05)
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		if math.Abs(r.CB-1) > 1e-9 {
			t.Errorf("cycle CB = %v, want 1", r.CB)
		}
	}
}

// TestOptBSearchThetaClamped: θ < 1 is clamped to 1 rather than corrupting
// the pruning logic.
func TestOptBSearchThetaClamped(t *testing.T) {
	g := paperex.New()
	res, _ := OptBSearch(g, 5, 0.2)
	for i, want := range paperex.Top5 {
		if res[i].V != want {
			t.Fatalf("clamped theta: rank %d = %v", i, res[i])
		}
	}
}

// TestTopKExactMatchesSearchOnPaperGraph: the three top-k paths agree on
// every k for the running example.
func TestTopKExactMatchesSearchOnPaperGraph(t *testing.T) {
	g := paperex.New()
	for k := 1; k <= int(paperex.NumVertices)+2; k++ {
		exact := TopKExact(g, k)
		base, _ := BaseBSearch(g, k)
		opt, _ := OptBSearch(g, k, 1.05)
		if len(exact) != len(base) || len(exact) != len(opt) {
			t.Fatalf("k=%d: sizes %d/%d/%d", k, len(exact), len(base), len(opt))
		}
		for i := range exact {
			if math.Abs(exact[i].CB-base[i].CB) > 1e-9 ||
				math.Abs(exact[i].CB-opt[i].CB) > 1e-9 {
				t.Fatalf("k=%d rank %d: exact %v base %v opt %v",
					k, i, exact[i].CB, base[i].CB, opt[i].CB)
			}
		}
	}
}
