package nbr

import "sync"

// Register is a reusable bitset over vertex identifiers, the third
// intersection strategy. A caller that intersects one fixed neighborhood
// (the "center") against many other lists marks the center once and then
// probes: each probe is one word access, so a scan over list costs
// O(|list|) regardless of the center's degree — the right trade exactly
// when the center is a hub (degree ≥ HubDegree) whose list would otherwise
// be re-walked by every merge.
//
// The marked list is remembered so Unmark clears in O(marked), keeping a
// pooled Register cheap to recycle even over graphs with millions of
// vertices: the words array is allocated once and zeroed incrementally.
type Register struct {
	words  []uint64
	marked []int32
}

// NewRegister returns a Register that can mark vertices in [0, n).
func NewRegister(n int32) *Register {
	r := &Register{}
	r.Ensure(n)
	return r
}

// Ensure grows the register to cover vertices in [0, n).
func (r *Register) Ensure(n int32) {
	need := (int(n) + 63) >> 6
	if need > len(r.words) {
		grown := make([]uint64, need)
		copy(grown, r.words)
		r.words = grown
	}
}

// Mark sets the bits of vs. Vertices already marked are fine to re-mark.
// Callers must have Ensured capacity for every id in vs.
func (r *Register) Mark(vs []int32) {
	for _, v := range vs {
		r.words[uint32(v)>>6] |= 1 << (uint32(v) & 63)
	}
	r.marked = append(r.marked, vs...)
}

// Unmark clears every bit set since the last Unmark, in O(marked).
func (r *Register) Unmark() {
	for _, v := range r.marked {
		r.words[uint32(v)>>6] &^= 1 << (uint32(v) & 63)
	}
	r.marked = r.marked[:0]
}

// Contains reports whether v is marked. v must be within Ensured capacity.
func (r *Register) Contains(v int32) bool {
	return r.words[uint32(v)>>6]&(1<<(uint32(v)&63)) != 0
}

// IntersectInto appends list ∩ marked to dst and returns it. The appended
// run preserves list's order (ascending when list is ascending), matching
// the merge and galloping kernels exactly.
func (r *Register) IntersectInto(dst, list []int32) []int32 {
	for _, v := range list {
		if r.words[uint32(v)>>6]&(1<<(uint32(v)&63)) != 0 {
			dst = append(dst, v)
		}
	}
	return dst
}

// Count returns |list ∩ marked|.
func (r *Register) Count(list []int32) int {
	n := 0
	for _, v := range list {
		if r.words[uint32(v)>>6]&(1<<(uint32(v)&63)) != 0 {
			n++
		}
	}
	return n
}

// registerPool recycles Registers across kernel invocations. Pooled
// registers keep their words array, so a steady-state acquire is
// allocation-free once the pool has warmed to the graph's vertex count.
var registerPool = sync.Pool{New: func() any { return &Register{} }}

// AcquireRegister returns a cleared pooled Register covering [0, n).
func AcquireRegister(n int32) *Register {
	r := registerPool.Get().(*Register)
	r.Ensure(n)
	return r
}

// ReleaseRegister clears r and returns it to the pool.
func ReleaseRegister(r *Register) {
	r.Unmark()
	registerPool.Put(r)
}
