package nbr

import (
	"math/rand/v2"
	"slices"
	"testing"
)

// naiveIntersect is the obviously-correct reference: map membership.
func naiveIntersect(a, b []int32) []int32 {
	set := make(map[int32]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	var out []int32
	for _, y := range b {
		if set[y] {
			out = append(out, y)
		}
	}
	slices.Sort(out)
	return out
}

// sortedList derives a strictly ascending list of up to n elements drawn
// from [0, span).
func sortedList(rng *rand.Rand, n int, span int32) []int32 {
	set := make(map[int32]bool, n)
	for len(set) < n {
		set[rng.Int32N(span)] = true
	}
	out := make([]int32, 0, n)
	for v := range set {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// allStrategies runs every kernel on the same inputs and hands each result
// to check. The register is marked with a, probed with b — the shape hub
// callers use.
func allStrategies(t *testing.T, a, b []int32, check func(name string, got []int32)) {
	t.Helper()
	check("linearInto", linearInto(nil, a, b))
	check("gallopInto(a into b)", func() []int32 {
		small, large := a, b
		if len(small) > len(large) {
			small, large = large, small
		}
		return gallopInto(nil, small, large)
	}())
	check("IntersectInto", IntersectInto(nil, a, b))
	span := int32(1)
	for _, v := range append(append([]int32(nil), a...), b...) {
		if v >= span {
			span = v + 1
		}
	}
	reg := AcquireRegister(span)
	reg.Mark(a)
	check("Register.IntersectInto", reg.IntersectInto(nil, b))
	if got, want := reg.Count(b), len(naiveIntersect(a, b)); got != want {
		t.Errorf("Register.Count = %d, want %d", got, want)
	}
	ReleaseRegister(reg)

	var each []int32
	ForEachCommon(a, b, func(v int32) bool { each = append(each, v); return true })
	check("ForEachCommon", each)

	if got, want := IntersectCount(a, b), len(naiveIntersect(a, b)); got != want {
		t.Errorf("IntersectCount = %d, want %d", got, want)
	}
	if got, want := linearCount(a, b), len(naiveIntersect(a, b)); got != want {
		t.Errorf("linearCount = %d, want %d", got, want)
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	if len(small) > 0 {
		if got, want := gallopCount(small, large), len(naiveIntersect(a, b)); got != want {
			t.Errorf("gallopCount = %d, want %d", got, want)
		}
	}
}

func expectEqual(t *testing.T, want []int32) func(string, []int32) {
	return func(name string, got []int32) {
		t.Helper()
		if len(got) == 0 && len(want) == 0 {
			return
		}
		if !slices.Equal(got, want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

// TestEdgeCases pins the named boundary shapes of the satellite checklist:
// empty, disjoint, identical, and 1-vs-10k skew.
func TestEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	big := sortedList(rng, 10000, 1<<20)

	cases := []struct {
		name string
		a, b []int32
	}{
		{"both empty", nil, nil},
		{"left empty", nil, []int32{1, 2, 3}},
		{"right empty", []int32{1, 2, 3}, nil},
		{"disjoint", []int32{0, 2, 4, 6}, []int32{1, 3, 5, 7}},
		{"identical", []int32{3, 9, 27, 81}, []int32{3, 9, 27, 81}},
		{"single hit in 10k", []int32{big[5000]}, big},
		{"single miss in 10k", []int32{1<<20 + 1}, big},
		{"prefix overlap", []int32{0, 1, 2}, []int32{0, 1, 2, 3, 4, 5}},
		{"suffix overlap", []int32{4, 5}, []int32{0, 1, 2, 3, 4, 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := naiveIntersect(tc.a, tc.b)
			allStrategies(t, tc.a, tc.b, expectEqual(t, want))
			// Symmetry: intersection is commutative.
			allStrategies(t, tc.b, tc.a, expectEqual(t, want))
		})
	}
}

// TestRandomizedAgainstReference drives all strategies over random sorted
// lists of many size mixes, including the skews that flip the adaptive
// dispatch between linear and galloping.
func TestRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	sizes := []int{0, 1, 2, 7, 40, 300, 5000}
	for _, la := range sizes {
		for _, lb := range sizes {
			for trial := 0; trial < 3; trial++ {
				span := int32(la + lb + 10)
				if trial == 1 {
					span *= 8 // sparser overlap
				}
				a := sortedList(rng, la, span)
				b := sortedList(rng, lb, span)
				want := naiveIntersect(a, b)
				allStrategies(t, a, b, expectEqual(t, want))
			}
		}
	}
}

// TestChoose pins the dispatch thresholds.
func TestChoose(t *testing.T) {
	if got := Choose(100, 100); got != StrategyLinear {
		t.Errorf("Choose(100,100) = %v, want linear", got)
	}
	if got := Choose(4, 4*GallopRatio); got != StrategyGallop {
		t.Errorf("Choose(4,%d) = %v, want gallop", 4*GallopRatio, got)
	}
	if got := Choose(4*GallopRatio, 4); got != StrategyGallop {
		t.Errorf("Choose is not symmetric: got %v", got)
	}
	if got := Choose(4, 4*GallopRatio-1); got != StrategyLinear {
		t.Errorf("Choose just under ratio = %v, want linear", got)
	}
	if got := Choose(0, 1000); got != StrategyLinear {
		t.Errorf("Choose(0,1000) = %v, want linear (empty short-circuits)", got)
	}
}

// TestForEachCommonEarlyStop checks that returning false stops iteration.
func TestForEachCommonEarlyStop(t *testing.T) {
	a := []int32{1, 2, 3, 4, 5}
	b := []int32{2, 3, 4}
	var seen []int32
	ForEachCommon(a, b, func(v int32) bool {
		seen = append(seen, v)
		return len(seen) < 2
	})
	if !slices.Equal(seen, []int32{2, 3}) {
		t.Errorf("early stop saw %v, want [2 3]", seen)
	}
}

// TestRegisterReuse exercises mark/unmark cycles through the pool, which is
// exactly the per-center amortization pattern of the evidence engine.
func TestRegisterReuse(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	reg := AcquireRegister(1 << 16)
	defer ReleaseRegister(reg)
	for round := 0; round < 50; round++ {
		center := sortedList(rng, 1+rng.IntN(200), 1<<16)
		reg.Mark(center)
		for scan := 0; scan < 4; scan++ {
			other := sortedList(rng, rng.IntN(100), 1<<16)
			got := reg.IntersectInto(nil, other)
			want := naiveIntersect(center, other)
			if len(got) != 0 || len(want) != 0 {
				if !slices.Equal(got, want) {
					t.Fatalf("round %d: register got %v, want %v", round, got, want)
				}
			}
		}
		reg.Unmark()
		// After Unmark nothing may remain marked.
		for _, v := range center {
			if reg.Contains(v) {
				t.Fatalf("round %d: %d still marked after Unmark", round, v)
			}
		}
	}
}

// TestIntersectIntoAppends verifies the dst-append contract (the kernels
// extend, never clobber, the destination).
func TestIntersectIntoAppends(t *testing.T) {
	dst := []int32{-7}
	got := IntersectInto(dst, []int32{1, 2, 3}, []int32{2, 3, 4})
	if !slices.Equal(got, []int32{-7, 2, 3}) {
		t.Errorf("IntersectInto append = %v, want [-7 2 3]", got)
	}
}

// FuzzIntersect cross-checks the adaptive kernels against the naive
// reference on arbitrary byte-derived sorted lists.
func FuzzIntersect(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{}, []byte{0, 0, 255})
	f.Add([]byte{9}, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		a := bytesToSorted(ab)
		b := bytesToSorted(bb)
		want := naiveIntersect(a, b)
		got := IntersectInto(nil, a, b)
		if len(got) != 0 || len(want) != 0 {
			if !slices.Equal(got, want) {
				t.Fatalf("IntersectInto(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
		if c := IntersectCount(a, b); c != len(want) {
			t.Fatalf("IntersectCount(%v,%v) = %d, want %d", a, b, c, len(want))
		}
	})
}

// bytesToSorted turns fuzz bytes into a strictly ascending list by
// cumulative gaps, so any input is a valid sorted neighbor list.
func bytesToSorted(bs []byte) []int32 {
	out := make([]int32, 0, len(bs))
	cur := int32(-1)
	for _, b := range bs {
		cur += int32(b%16) + 1
		out = append(out, cur)
	}
	return out
}

// TestCommonMarkedCount cross-checks the fused three-way kernel against
// the naive composition (intersect, then filter by membership) across
// random list shapes on both the linear and galloping dispatch paths.
func TestCommonMarkedCount(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 23))
	for trial := 0; trial < 200; trial++ {
		span := int32(64 + rng.IntN(2048))
		clamp := func(n int) int {
			if n > int(span)/2 {
				return int(span) / 2 // sortedList needs n distinct draws from [0, span)
			}
			return n
		}
		a := sortedList(rng, clamp(rng.IntN(80)), span)
		b := a
		if rng.IntN(4) > 0 {
			b = sortedList(rng, clamp(rng.IntN(1200)), span) // often ≥16× |a| → gallop path
		}
		marked := sortedList(rng, clamp(rng.IntN(128)), span)
		reg := AcquireRegister(span)
		reg.Mark(marked)
		want := int32(0)
		for _, v := range naiveIntersect(a, b) {
			if slices.Contains(marked, v) {
				want++
			}
		}
		if got := CommonMarkedCount(reg, a, b); got != want {
			t.Fatalf("CommonMarkedCount(|a|=%d,|b|=%d,|m|=%d) = %d, want %d",
				len(a), len(b), len(marked), got, want)
		}
		if got := CommonMarkedCount(reg, b, a); got != want {
			t.Fatalf("CommonMarkedCount swapped = %d, want %d", got, want)
		}
		ReleaseRegister(reg)
	}
	reg := AcquireRegister(8)
	if got := CommonMarkedCount(reg, nil, []int32{1, 2}); got != 0 {
		t.Fatalf("empty list count = %d, want 0", got)
	}
	ReleaseRegister(reg)
}
