package dynamic

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/ego"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/paperex"
)

const eps = 1e-9

// TestLocalInsertPaperExample reproduces Example 5: inserting (i,k) changes
// exactly i, k, and their common neighbor f — CB(i)=10.5, CB(k)=0.5,
// CB(f): 11 → 9.5 — and nothing else.
func TestLocalInsertPaperExample(t *testing.T) {
	m := NewMaintainer(paperex.New())
	if err := m.InsertEdge(paperex.I, paperex.K); err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < paperex.NumVertices; v++ {
		want, changed := paperex.AfterInsertIK[v]
		if !changed {
			want = paperex.CB[v]
		}
		if math.Abs(m.CB(v)-want) > eps {
			t.Errorf("after insert (i,k): CB(%s) = %v, want %v", paperex.Names[v], m.CB(v), want)
		}
	}
}

// TestLocalDeletePaperExample reproduces Example 6: deleting (c,g) changes
// exactly c, g, and their common neighbors — CB(g): 2/3 → 1/2 as the paper
// computes, with c and e corrected per the paperex package comment.
func TestLocalDeletePaperExample(t *testing.T) {
	m := NewMaintainer(paperex.New())
	if err := m.DeleteEdge(paperex.C, paperex.G); err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < paperex.NumVertices; v++ {
		want, changed := paperex.AfterDeleteCG[v]
		if !changed {
			want = paperex.CB[v]
		}
		if math.Abs(m.CB(v)-want) > eps {
			t.Errorf("after delete (c,g): CB(%s) = %v, want %v", paperex.Names[v], m.CB(v), want)
		}
	}
}

// TestLocalInsertThenDeleteRoundTrip: applying an update and its inverse
// must restore every CB exactly.
func TestLocalInsertThenDeleteRoundTrip(t *testing.T) {
	m := NewMaintainer(paperex.New())
	if err := m.InsertEdge(paperex.I, paperex.K); err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteEdge(paperex.I, paperex.K); err != nil {
		t.Fatal(err)
	}
	for v, want := range paperex.CB {
		if math.Abs(m.CB(v)-want) > eps {
			t.Errorf("round trip: CB(%s) = %v, want %v", paperex.Names[v], m.CB(v), want)
		}
	}
}

func TestMaintainerErrors(t *testing.T) {
	m := NewMaintainer(paperex.New())
	if err := m.InsertEdge(paperex.A, paperex.A); err == nil {
		t.Error("self-loop insert must fail")
	}
	if err := m.InsertEdge(paperex.A, paperex.B); err == nil {
		t.Error("duplicate insert must fail")
	}
	if err := m.DeleteEdge(paperex.A, paperex.I); err == nil {
		t.Error("deleting a non-edge must fail")
	}
	if err := m.InsertEdge(-1, 2); err == nil {
		t.Error("negative vertex must fail")
	}
}

// TestMaintainerGrowsVertices: inserting an edge with unseen endpoints must
// extend the vertex set and keep everything consistent.
func TestMaintainerGrowsVertices(t *testing.T) {
	m := NewMaintainer(paperex.New())
	nv := int32(paperex.NumVertices)
	if err := m.InsertEdge(paperex.A, nv+2); err != nil {
		t.Fatal(err)
	}
	if got := m.Graph().NumVertices(); got != nv+3 {
		t.Fatalf("n = %d, want %d", got, nv+3)
	}
	assertMatchesScratch(t, m, "growth")
}

// assertMatchesScratch compares every maintained CB against a from-scratch
// recomputation of the current graph.
func assertMatchesScratch(t *testing.T, m *Maintainer, stage string) {
	t.Helper()
	g := m.Graph().Freeze(1)
	want := ego.ComputeAll(g)
	for v := int32(0); v < g.NumVertices(); v++ {
		if math.Abs(m.CB(v)-want[v]) > 1e-6 {
			t.Fatalf("%s: CB(%d) = %v, scratch %v", stage, v, m.CB(v), want[v])
		}
	}
}

// TestLocalUpdatesRandomScript drives long random insert/delete scripts on
// random graphs and checks all CBs against recomputation at every step.
func TestLocalUpdatesRandomScript(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewPCG(seed, 99))
		g := gen.Random(seed, 28)
		m := NewMaintainer(g)
		n := g.NumVertices()
		for step := 0; step < 60; step++ {
			u := rng.Int32N(n)
			v := rng.Int32N(n)
			if u == v {
				continue
			}
			if m.Graph().HasEdge(u, v) {
				if err := m.DeleteEdge(u, v); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			} else {
				if err := m.InsertEdge(u, v); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
			assertMatchesScratch(t, m, "script")
		}
	}
}

// TestLocalUpdatesDenseToEmpty deletes every edge one by one; all CBs must
// hit exactly zero at the end (and match recomputation throughout).
func TestLocalUpdatesDenseToEmpty(t *testing.T) {
	g := gen.ErdosRenyi(14, 60, 5)
	m := NewMaintainer(g)
	edges := g.Edges()
	for i, e := range edges {
		if err := m.DeleteEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			assertMatchesScratch(t, m, "draining")
		}
	}
	for v, cb := range m.All() {
		// Incremental float deltas leave ~1e-15 residue; that is inherent
		// to the local-update arithmetic, not an algorithmic error.
		if math.Abs(cb) > 1e-9 {
			t.Errorf("empty graph: CB(%d) = %v", v, cb)
		}
	}
}

// TestLocalObservationOne verifies Observation 1 directly: vertices outside
// {u, v} ∪ L keep bit-identical CB values across an update.
func TestLocalObservationOne(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 17)
	m := NewMaintainer(g)
	before := append([]float64(nil), m.All()...)
	u, v := int32(0), int32(150)
	if m.Graph().HasEdge(u, v) {
		t.Skip("edge exists in this seed; pick different endpoints")
	}
	affected := map[int32]bool{u: true, v: true}
	for _, w := range m.Graph().CommonNeighbors(nil, u, v) {
		affected[w] = true
	}
	if err := m.InsertEdge(u, v); err != nil {
		t.Fatal(err)
	}
	for x := int32(0); x < 200; x++ {
		if !affected[x] && m.CB(x) != before[x] {
			t.Errorf("unaffected vertex %d changed: %v → %v", x, before[x], m.CB(x))
		}
	}
}

// TestLazyTopKPaperExample walks Example 7: k=1, top-1 is f; inserting (i,k)
// drops f to 9.5 and promotes i (10.5).
func TestLazyTopKPaperExample(t *testing.T) {
	lt := NewLazyTopK(paperex.New(), 1)
	res := lt.Results()
	if res[0].V != paperex.F || math.Abs(res[0].CB-11) > eps {
		t.Fatalf("initial top-1 = %v, want f=11", res)
	}
	if err := lt.InsertEdge(paperex.I, paperex.K); err != nil {
		t.Fatal(err)
	}
	res = lt.Results()
	if res[0].V != paperex.I || math.Abs(res[0].CB-10.5) > eps {
		t.Fatalf("top-1 after insert = %v, want i=10.5", res)
	}
}

// TestLazyTopKDeleteExample walks Example 8's k=1 case: deleting (c,g)
// leaves f on top.
func TestLazyTopKDeleteExample(t *testing.T) {
	lt := NewLazyTopK(paperex.New(), 1)
	if err := lt.DeleteEdge(paperex.C, paperex.G); err != nil {
		t.Fatal(err)
	}
	res := lt.Results()
	if res[0].V != paperex.F || math.Abs(res[0].CB-11) > eps {
		t.Fatalf("top-1 after delete = %v, want f=11", res)
	}
}

// TestLazyMatchesLocalOnRandomScripts is the main lazy-correctness property:
// after every update in a random script, LazyTopK's results must carry the
// same score sequence as the exhaustively maintained top-k.
func TestLazyMatchesLocalOnRandomScripts(t *testing.T) {
	for seed := uint64(50); seed < 62; seed++ {
		rng := rand.New(rand.NewPCG(seed, 7))
		g := gen.Random(seed, 30)
		n := g.NumVertices()
		k := 1 + int(rng.Int32N(6))
		lt := NewLazyTopK(g, k)
		m := NewMaintainer(g)
		for step := 0; step < 50; step++ {
			u := rng.Int32N(n)
			v := rng.Int32N(n)
			if u == v {
				continue
			}
			var err1, err2 error
			if m.Graph().HasEdge(u, v) {
				err1 = m.DeleteEdge(u, v)
				err2 = lt.DeleteEdge(u, v)
			} else {
				err1 = m.InsertEdge(u, v)
				err2 = lt.InsertEdge(u, v)
			}
			if err1 != nil || err2 != nil {
				t.Fatalf("seed %d step %d: %v / %v", seed, step, err1, err2)
			}
			want := m.TopK(k)
			got := lt.Results()
			if len(want) != len(got) {
				t.Fatalf("seed %d step %d: size %d vs %d", seed, step, len(got), len(want))
			}
			for i := range want {
				if math.Abs(want[i].CB-got[i].CB) > 1e-6 {
					t.Fatalf("seed %d step %d rank %d: lazy %v, local %v",
						seed, step, i, got[i].CB, want[i].CB)
				}
			}
		}
	}
}

// TestLazyIsActuallyLazy: on a large sparse graph, a single edge insert far
// from the top-k must not recompute more than a handful of vertices.
func TestLazyIsActuallyLazy(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 3, 23)
	lt := NewLazyTopK(g, 10)
	before := lt.Stats.Recomputed
	// Attach a brand-new leaf pair far from any hub.
	if err := lt.InsertEdge(1998, 1999); err != nil {
		// Edge may exist in this seed; use fresh vertices instead.
		if err := lt.InsertEdge(2000, 2001); err != nil {
			t.Fatal(err)
		}
	}
	if did := lt.Stats.Recomputed - before; did > 4 {
		t.Errorf("leaf insert recomputed %d vertices, want ≤ 4", did)
	}
}

func TestLazyErrors(t *testing.T) {
	lt := NewLazyTopK(paperex.New(), 3)
	if err := lt.InsertEdge(paperex.A, paperex.B); err == nil {
		t.Error("duplicate insert must fail")
	}
	if err := lt.DeleteEdge(paperex.A, paperex.I); err == nil {
		t.Error("deleting a non-edge must fail")
	}
	if err := lt.InsertEdge(paperex.A, paperex.A); err == nil {
		t.Error("self-loop must fail")
	}
}

// TestLazyKLargerThanN: k exceeding the vertex count must simply track all
// vertices.
func TestLazyKLargerThanN(t *testing.T) {
	g := graph.MustFromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	lt := NewLazyTopK(g, 10)
	if got := len(lt.Results()); got != 4 {
		t.Fatalf("got %d results, want 4", got)
	}
	if err := lt.InsertEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if got := len(lt.Results()); got != 4 {
		t.Fatalf("got %d results after insert, want 4", got)
	}
}
