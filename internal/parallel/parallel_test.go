package parallel

import (
	"math"
	"testing"

	"repro/internal/ego"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/paperex"
)

// TestParallelMatchesSequentialPaperExample checks both strategies against
// the golden Fig. 1 values.
func TestParallelMatchesSequentialPaperExample(t *testing.T) {
	g := paperex.New()
	for _, strat := range []Strategy{VertexPEBW, EdgePEBW} {
		for _, threads := range []int{1, 2, 4} {
			cb, st := ComputeAll(g, threads, strat)
			if st.Threads != threads || st.Strategy != strat {
				t.Errorf("%v t=%d: stats mismatch %+v", strat, threads, st)
			}
			for v, want := range paperex.CB {
				if math.Abs(cb[v]-want) > 1e-9 {
					t.Errorf("%v t=%d: CB(%s) = %v, want %v",
						strat, threads, paperex.Names[v], cb[v], want)
				}
			}
		}
	}
}

// TestParallelMatchesSequentialRandom cross-validates both strategies
// against the sequential engine on a spread of generator families and
// thread counts.
func TestParallelMatchesSequentialRandom(t *testing.T) {
	graphs := []*graph.Graph{
		gen.ErdosRenyi(400, 1600, 3),
		gen.BarabasiAlbert(400, 4, 4),
		gen.ChungLu(400, 2.1, 8, 100, 5),
		gen.Affiliation(400, 150, 6, 1, 6),
	}
	for gi, g := range graphs {
		want := ego.ComputeAll(g)
		for _, strat := range []Strategy{VertexPEBW, EdgePEBW} {
			for _, threads := range []int{1, 3, 8} {
				got, _ := ComputeAll(g, threads, strat)
				for v := range want {
					if math.Abs(got[v]-want[v]) > 1e-6 {
						t.Fatalf("graph %d %v t=%d: CB(%d) = %v, want %v",
							gi, strat, threads, v, got[v], want[v])
					}
				}
			}
		}
	}
}

// TestParallelDefaultThreads exercises the t ≤ 0 GOMAXPROCS path.
func TestParallelDefaultThreads(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 9)
	cb, st := ComputeAll(g, 0, EdgePEBW)
	if st.Threads < 1 {
		t.Fatalf("threads = %d", st.Threads)
	}
	want := ego.ComputeAll(g)
	for v := range want {
		if math.Abs(cb[v]-want[v]) > 1e-6 {
			t.Fatalf("CB(%d) mismatch", v)
		}
	}
}

// TestEdgeBalancesBetterThanVertex verifies the paper's Section V claim in
// its machine-independent form: on a skewed power-law graph, VertexPEBW's
// heaviest indivisible work unit (a hub vertex) dwarfs EdgePEBW's heaviest
// unit (a fixed edge chunk), so the achievable speedup bound of EdgePEBW is
// at least that of VertexPEBW.
func TestEdgeBalancesBetterThanVertex(t *testing.T) {
	// Heavy skew: a few giant hubs own most oriented edges.
	g := gen.ChungLu(3000, 1.9, 10, 800, 7)
	const threads = 8
	_, stV := ComputeAll(g, threads, VertexPEBW)
	_, stE := ComputeAll(g, threads, EdgePEBW)
	if stV.TotalWork != stE.TotalWork {
		t.Fatalf("total work differs: %d vs %d", stV.TotalWork, stE.TotalWork)
	}
	if stE.MaxUnitWork > stV.MaxUnitWork {
		t.Errorf("EdgePEBW max unit %d should not exceed VertexPEBW %d",
			stE.MaxUnitWork, stV.MaxUnitWork)
	}
	if stE.SpeedupBound(16) < stV.SpeedupBound(16) {
		t.Errorf("EdgePEBW speedup bound %.2f below VertexPEBW %.2f",
			stE.SpeedupBound(16), stV.SpeedupBound(16))
	}
}

// TestWorkConservation: total work is strategy- and thread-invariant (each
// edge processed exactly once by exactly one worker).
func TestWorkConservation(t *testing.T) {
	g := gen.BarabasiAlbert(600, 3, 11)
	var ref int64 = -1
	for _, strat := range []Strategy{VertexPEBW, EdgePEBW} {
		for _, threads := range []int{1, 2, 5} {
			_, st := ComputeAll(g, threads, strat)
			var total int64
			for _, w := range st.WorkPerWorker {
				total += w
			}
			if ref < 0 {
				ref = total
			} else if total != ref {
				t.Errorf("%v t=%d: total work %d, want %d", strat, threads, total, ref)
			}
		}
	}
}

func TestStrategyString(t *testing.T) {
	if VertexPEBW.String() != "VertexPEBW" || EdgePEBW.String() != "EdgePEBW" {
		t.Fatal("strategy names wrong")
	}
}

func TestImbalanceDegenerate(t *testing.T) {
	if (Stats{}).Imbalance() != 1 {
		t.Fatal("empty stats imbalance must be 1")
	}
	s := Stats{WorkPerWorker: []int64{0, 0}}
	if s.Imbalance() != 1 {
		t.Fatal("zero work imbalance must be 1")
	}
}
