// Package paperex provides the paper's running example (Fig. 1) as a
// concrete graph, together with every ground-truth value the paper states
// for it. The golden tests of the core, dynamic, and parallel packages all
// validate against it, and the quickstart example walks through it.
//
// # Reconstruction
//
// The paper shows the graph only as a drawing, so the edge set was
// reconstructed from the numeric constraints scattered through Sections
// II-IV, and is consistent with all of them:
//
//   - the static bounds of Fig. 2: ub(c)=21, ub(i)=ub(f)=ub(d)=15,
//     ub(x)=ub(e)=10, ub(h)=ub(g)=ub(b)=ub(a)=6, ub(j)=3, ub(k)=1,
//     which fixes every degree;
//   - Example 1: the shortest-path structure of GE(d) — gci=3 via g, h, d;
//     b(g,a)=b(g,b)=b(h,a)=b(h,b)=1/2; b(i,a)=b(i,b)=1; CB(d)=14/3;
//   - Example 2/Fig. 2: CB(f)=11, CB(x)=10, CB(i)=8, CB(c)=41/6,
//     CB(e)=9/2, CB(h)=CB(g)=2/3, CB(b)=CB(a)=1; top-5 = {f,x,i,c,d};
//   - Example 5 (insert (i,k)): CB(i)=10.5, CB(k)=0.5, CB(f): 11 → 9.5,
//     including the S-value arithmetic S_k(f,j): 1 and S_f(i,k)=0;
//   - Example 6 (delete (c,g)): CB(g): 2/3 → 1/2 with S_g(c,i)=2 and
//     S_g(e,d)=2 exactly as the example computes.
//
// One caveat, recorded here and in DESIGN.md: the paper's Example 6/8 also
// claims CB(c): 41/6 → 55/6 and CB(e) unchanged at 9/2 after deleting
// (c,g). Both are internally inconsistent with the paper's own Lemmas — for
// a common neighbor w, every term of the Lemma 7 delta is strictly positive,
// so CB(e) cannot stay unchanged, and no edge set consistent with Examples
// 1-5 yields an increase of 14/6 for the endpoint c. On the reconstruction
// the correct post-deletion values are CB(c)=14/3 and CB(e)=13/2, which is
// what the maintenance tests assert (cross-checked against independent
// recomputation from scratch).
package paperex

import "repro/internal/graph"

// Vertex identifiers of the Fig. 1 graph. Alphabetical ids reproduce the
// paper's tie-breaking (among equal degrees, larger id first): the Fig. 2
// processing order c, i, f, d, x, e, h, g, b, a requires id(i)>id(f)>id(d),
// id(x)>id(e) and id(h)>id(g)>id(b)>id(a), all satisfied.
const (
	A int32 = iota
	B
	C
	D
	E
	F
	G
	H
	I
	J
	K
	U
	V
	X
	Y
	Z
	// NumVertices is the vertex count of the example graph.
	NumVertices
)

// Names maps vertex ids to the paper's labels.
var Names = [NumVertices]string{
	"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "u", "v", "x", "y", "z",
}

// Edges is the reconstructed edge set of Fig. 1(a) (30 undirected edges).
var Edges = [][2]int32{
	{A, B}, {A, C}, {A, D}, {A, F},
	{B, C}, {B, D}, {B, E},
	{C, D}, {C, E}, {C, F}, {C, G}, {C, H},
	{D, G}, {D, H}, {D, I},
	{E, G}, {E, I}, {E, J},
	{F, H}, {F, I}, {F, K}, {F, X},
	{G, I},
	{H, I},
	{I, J},
	{J, K},
	{X, Y}, {X, Z}, {X, U}, {X, V},
}

// New returns a fresh copy of the Fig. 1 graph.
func New() *graph.Graph {
	return graph.MustFromEdges(int32(NumVertices), Edges)
}

// CB holds the exact ego-betweenness of every vertex, as stated in
// Examples 1-3 (vertices the paper does not value explicitly — j and the
// degree-1 leaves — follow directly from Definition 2: CB(j)=2, leaves 0).
var CB = map[int32]float64{
	A: 1, B: 1, C: 41.0 / 6, D: 14.0 / 3, E: 4.5, F: 11, G: 2.0 / 3,
	H: 2.0 / 3, I: 8, J: 2, K: 1, U: 0, V: 0, X: 10, Y: 0, Z: 0,
}

// Top5 is the k=5 answer of Examples 3-4, in descending CB order.
var Top5 = []int32{F, X, I, C, D}

// BaseSearchComputed is how many exact computations BaseBSearch performs for
// k=5 before the Lemma 2 bound terminates it (Example 3: the ten vertices
// c, i, f, d, x, e, h, g, b, a).
const BaseSearchComputed = 10

// AfterInsertIK holds the vertices whose CB changes when edge (i,k) is
// inserted, with their new values (Example 5 and Example 7). Example 5
// discusses only the common neighbor f, but on the reconstruction
// L = N(i) ∩ N(k) = {f, j}: j changes as well — the pair (i,k) in GE(j)
// flips from contributing 1 to adjacent (−1), and the pair (k,e) gains the
// connector i (−1/2), so CB(j) = 2 − 3/2 = 1/2.
var AfterInsertIK = map[int32]float64{
	I: 10.5, K: 0.5, F: 9.5, J: 0.5,
}

// AfterDeleteCG holds the vertices whose CB changes when edge (c,g) is
// deleted (Example 6/8 for g; c and e corrected per the package comment).
// On the reconstruction L = N(c) ∩ N(g) = {d, e}, so d changes too (the
// pair (c,g) becomes non-adjacent in GE(d) with no connectors, +1, and the
// pairs (g,a), (g,b), (g,h), (c,i) each lose a connector, +1/2+1/2+1/6+1/6),
// giving CB(d) = 14/3 + 7/3 = 7.
var AfterDeleteCG = map[int32]float64{
	G: 0.5, C: 14.0 / 3, E: 6.5, D: 7,
}
