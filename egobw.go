// Package egobw is a Go implementation of "Efficient Top-k Ego-Betweenness
// Search" (Zhang, Li, Pan, Dai, Wang, Yuan — ICDE 2022, arXiv:2107.10052).
//
// The ego-betweenness CB(p) of a vertex p measures how often p sits on
// shortest paths between its own neighbors inside its ego network — a cheap,
// highly correlated stand-in for classic betweenness centrality. This
// package exposes the paper's full toolkit:
//
//   - exact ego-betweenness for one vertex or all vertices;
//   - the two top-k search algorithms, BaseBSearch (static Lemma 2 bound)
//     and OptBSearch (dynamic Lemma 3 bound with the gradient ratio θ);
//   - dynamic maintenance under edge insertions/deletions, both exact for
//     all vertices (LocalInsert/LocalDelete) and lazily for just the top-k
//     (LazyInsert/LazyDelete);
//   - two parallel all-vertices algorithms (VertexPEBW, EdgePEBW);
//   - Brandes' exact betweenness as the effectiveness baseline;
//   - seeded graph generators and the benchmark dataset registry.
//
// # Quickstart
//
//	g, err := egobw.NewGraph(-1, edges)             // or LoadEdgeList(r)
//	top, stats := egobw.TopK(g, 10)                 // OptBSearch, θ = 1.05
//	for _, r := range top {
//		fmt.Println(r.V, r.CB)
//	}
//
// See examples/ for runnable walkthroughs and DESIGN.md for the
// architecture and the paper-reproduction notes. For serving these
// queries over HTTP while edge updates stream in, see internal/server
// and the cmd/egobwd daemon.
package egobw

import (
	"io"
	"os"

	"repro/internal/brandes"
	"repro/internal/dynamic"
	"repro/internal/ego"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/parallel"
)

// Graph is an immutable undirected graph in CSR form. Construct with
// NewGraph, LoadEdgeList, or the generators in this package.
type Graph = graph.Graph

// DynGraph is the mutable graph representation used by the maintainers.
type DynGraph = graph.DynGraph

// GraphStats summarizes a graph (Table I style).
type GraphStats = graph.Stats

// Result is a vertex paired with its (ego-)betweenness score.
type Result = ego.Result

// SearchStats reports the work a top-k search performed: exact computations,
// pruned vertices, bound refreshes.
type SearchStats = ego.SearchStats

// Maintainer keeps exact ego-betweennesses for every vertex under edge
// updates (the paper's LocalInsert / LocalDelete).
type Maintainer = dynamic.Maintainer

// LazyTopK maintains just the top-k result set under edge updates (the
// paper's LazyInsert / LazyDelete).
type LazyTopK = dynamic.LazyTopK

// Strategy selects the parallel work partitioning.
type Strategy = parallel.Strategy

// ParallelStats reports per-run parallel behavior, including the
// machine-independent load-balance measures.
type ParallelStats = parallel.Stats

// Parallel strategies (Section V of the paper).
const (
	VertexPEBW = parallel.VertexPEBW
	EdgePEBW   = parallel.EdgePEBW
)

// DefaultTheta is the paper's default gradient ratio for OptBSearch.
const DefaultTheta = 1.05

// NewGraph builds a graph over n vertices from an undirected edge list;
// self-loops are dropped and duplicates collapsed. Pass n < 0 to infer the
// vertex count from the largest endpoint.
func NewGraph(n int32, edges [][2]int32) (*Graph, error) {
	return graph.FromEdges(n, edges)
}

// LoadEdgeList parses the SNAP-style text format: "u v" per line, '#'/'%'
// comments.
func LoadEdgeList(r io.Reader) (*Graph, error) {
	return graph.ReadEdgeList(r)
}

// LoadEdgeListFile is LoadEdgeList over a file path.
func LoadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}

// SaveEdgeList writes g in the format accepted by LoadEdgeList.
func SaveEdgeList(w io.Writer, g *Graph) error {
	return graph.WriteEdgeList(w, g)
}

// Stats computes summary statistics for g, including the triangle count.
func Stats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// EgoBetweenness computes the exact CB of a single vertex in O(Σ_{v∈N(u)}
// d(v) + ego-pair) time without touching the rest of the graph.
func EgoBetweenness(g *Graph, v int32) float64 {
	return ego.EgoBetweenness(g, v, nil)
}

// ComputeAll computes the exact ego-betweenness of every vertex with the
// sequential once-per-edge engine (O(α·m·d_max) worst case).
func ComputeAll(g *Graph) []float64 { return ego.ComputeAll(g) }

// ComputeAllParallel computes all ego-betweennesses with t workers using the
// chosen strategy; t ≤ 0 selects GOMAXPROCS.
func ComputeAllParallel(g *Graph, t int, s Strategy) ([]float64, ParallelStats) {
	return parallel.ComputeAll(g, t, s)
}

// options configures TopK.
type options struct {
	useBase bool
	theta   float64
	stats   *SearchStats
}

// Option customizes TopK.
type Option func(*options)

// WithBaseSearch selects BaseBSearch (Algorithm 1) instead of the default
// OptBSearch.
func WithBaseSearch() Option { return func(o *options) { o.useBase = true } }

// WithTheta sets OptBSearch's gradient ratio θ ≥ 1 (default 1.05).
func WithTheta(theta float64) Option { return func(o *options) { o.theta = theta } }

// WithStats captures the search statistics into st.
func WithStats(st *SearchStats) Option { return func(o *options) { o.stats = st } }

// TopK returns the k vertices with the highest ego-betweennesses, sorted by
// descending score (ties by ascending id). The default algorithm is
// OptBSearch with θ = 1.05; see the Options to switch.
func TopK(g *Graph, k int, opts ...Option) ([]Result, SearchStats) {
	o := options{theta: DefaultTheta}
	for _, fn := range opts {
		fn(&o)
	}
	var res []Result
	var st SearchStats
	if o.useBase {
		res, st = ego.BaseBSearch(g, k)
	} else {
		res, st = ego.OptBSearch(g, k, o.theta)
	}
	if o.stats != nil {
		*o.stats = st
	}
	return res, st
}

// NewMaintainer builds the exact all-vertices maintainer from a snapshot.
func NewMaintainer(g *Graph) *Maintainer { return dynamic.NewMaintainer(g) }

// NewLazyTopK builds the lazy top-k maintainer from a snapshot.
func NewLazyTopK(g *Graph, k int) *LazyTopK { return dynamic.NewLazyTopK(g, k) }

// Betweenness computes classic exact betweenness centrality (Brandes'
// algorithm, O(nm)) — the paper's effectiveness baseline.
func Betweenness(g *Graph) []float64 { return brandes.Betweenness(g) }

// BetweennessTopK returns the top-k by classic betweenness, computed with t
// parallel workers (TopBW in the paper).
func BetweennessTopK(g *Graph, k, t int) []Result { return brandes.TopK(g, k, t) }

// BetweennessApprox estimates betweenness from `pivots` sampled BFS sources
// (Brandes–Pich pivot sampling), scaled to be comparable with exact values;
// the cheap classic-betweenness alternative the effectiveness ablation
// compares ego-betweenness against.
func BetweennessApprox(g *Graph, pivots int, seed uint64, t int) []float64 {
	return brandes.BetweennessApprox(g, pivots, seed, t)
}

// Overlap returns |A ∩ B| / max(|A|,|B|) over two result lists' vertex sets,
// the effectiveness metric of the paper's Fig. 11/12.
func Overlap(a, b []Result) float64 { return ego.Overlap(a, b) }

// Jaccard returns |A ∩ B| / |A ∪ B| over two result lists' vertex sets.
func Jaccard(a, b []Result) float64 {
	return metrics.Jaccard(resultIDs(a), resultIDs(b))
}

// SpearmanRho returns the tie-aware Spearman rank correlation between two
// full score vectors (for example ComputeAll versus Betweenness output),
// extending the paper's overlap-based effectiveness analysis to whole
// rankings.
func SpearmanRho(x, y []float64) (float64, error) { return metrics.SpearmanRho(x, y) }

func resultIDs(rs []Result) []int32 {
	ids := make([]int32, len(rs))
	for i, r := range rs {
		ids[i] = r.V
	}
	return ids
}
