package graph

// IntersectSorted appends the intersection of two ascending int32 slices to
// dst and returns the extended slice. When the lengths are lopsided it
// switches to galloping search, which matters on the skewed graphs used in
// the experiments (a hub's list intersected with a leaf's list costs
// O(small · log large) instead of O(large)).
func IntersectSorted(dst, a, b []int32) []int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	// Galloping pays off when one list is much longer than the other.
	if len(b) >= 16*len(a) {
		return intersectGalloping(dst, a, b)
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// intersectGalloping intersects a small ascending list a into a large
// ascending list b by exponential probing followed by binary search.
func intersectGalloping(dst, a, b []int32) []int32 {
	lo := 0
	for _, x := range a {
		// Exponential probe from lo.
		step := 1
		hi := lo
		for hi < len(b) && b[hi] < x {
			lo = hi + 1
			hi = lo + step
			step <<= 1
		}
		if hi > len(b) {
			hi = len(b)
		}
		// Binary search in (lo-1, hi].
		l, h := lo, hi
		for l < h {
			mid := int(uint(l+h) >> 1)
			if b[mid] < x {
				l = mid + 1
			} else {
				h = mid
			}
		}
		lo = l
		if lo < len(b) && b[lo] == x {
			dst = append(dst, x)
			lo++
		}
		if lo >= len(b) {
			break
		}
	}
	return dst
}

// CountCommonSorted returns |a ∩ b| for two ascending slices without
// materializing the intersection.
func CountCommonSorted(a, b []int32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) >= 16*len(a) {
		n := 0
		lo := 0
		for _, x := range a {
			step := 1
			hi := lo
			for hi < len(b) && b[hi] < x {
				lo = hi + 1
				hi = lo + step
				step <<= 1
			}
			if hi > len(b) {
				hi = len(b)
			}
			l, h := lo, hi
			for l < h {
				mid := int(uint(l+h) >> 1)
				if b[mid] < x {
					l = mid + 1
				} else {
					h = mid
				}
			}
			lo = l
			if lo < len(b) && b[lo] == x {
				n++
				lo++
			}
			if lo >= len(b) {
				break
			}
		}
		return n
	}
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// CommonNeighbors appends N(u) ∩ N(v) to dst and returns it. The result is
// ascending. dst may be nil or a reused scratch buffer.
func (g *Graph) CommonNeighbors(dst []int32, u, v int32) []int32 {
	return IntersectSorted(dst, g.Neighbors(u), g.Neighbors(v))
}
