// Package dynamic implements Section IV of the paper: maintaining
// ego-betweenness under edge insertions and deletions.
//
// Two maintainers are provided, matching the paper's two regimes:
//
//   - Maintainer ("local update", Algorithms 4-5): keeps the exact CB of
//     every vertex plus the exact evidence maps S_v, and repairs both with
//     the Lemma 4-7 deltas. Only the vertices of Observation 1 — the two
//     endpoints and their common neighbors L = N(u) ∩ N(v) — are touched.
//
//   - LazyTopK ("lazy update", Algorithm 6): maintains only the top-k result
//     set plus per-vertex cached scores with staleness flags, recomputing a
//     vertex from scratch only when it could actually affect the top-k.
//
// See DESIGN.md §4 for the two corrections applied to the published
// Algorithm 6 pseudocode (loop termination, and keeping stale cached scores
// upper bounds so the (k+1)-th candidate selection stays sound).
package dynamic
