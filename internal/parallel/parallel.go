package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ego"
	"repro/internal/graph"
	"repro/internal/nbr"
	"repro/internal/pairmap"
)

// Strategy selects the work-partitioning scheme.
type Strategy int

const (
	// VertexPEBW partitions work by vertex (Section V-A).
	VertexPEBW Strategy = iota
	// EdgePEBW partitions work by edge chunks (Section V-B).
	EdgePEBW
)

// String names the strategy as in the paper.
func (s Strategy) String() string {
	if s == VertexPEBW {
		return "VertexPEBW"
	}
	return "EdgePEBW"
}

// Stats reports per-run parallel behavior.
type Stats struct {
	Threads       int
	Strategy      Strategy
	WorkPerWorker []int64 // credit+marker operations executed by each worker
	BusyPerWorker []time.Duration
	Elapsed       time.Duration
	TotalWork     int64 // credit+marker operations over the whole run
	MaxUnitWork   int64 // heaviest indivisible work unit (vertex or edge chunk)
}

// SpeedupBound returns the best speedup achievable with t workers given the
// partitioning granularity: total work divided by the larger of an even
// share and the heaviest indivisible unit. This is the machine-independent
// form of the paper's Fig. 10 comparison — on a skewed graph VertexPEBW's
// hub vertices cap its bound well below t, while EdgePEBW's fixed chunks
// keep the bound near t. (Wall-clock speedup additionally requires the host
// to have t physical CPUs; see DESIGN.md §5.)
func (s Stats) SpeedupBound(t int) float64 {
	if s.TotalWork == 0 {
		return 1
	}
	share := float64(s.TotalWork) / float64(t)
	if m := float64(s.MaxUnitWork); m > share {
		share = m
	}
	return float64(s.TotalWork) / share
}

// Imbalance returns max/mean of per-worker work — 1.0 is perfect balance.
// This is the machine-independent quantity behind the paper's Fig. 10
// speedup gap between the two strategies.
func (s Stats) Imbalance() float64 {
	if len(s.WorkPerWorker) == 0 {
		return 1
	}
	var sum, maxW int64
	for _, w := range s.WorkPerWorker {
		sum += w
		if w > maxW {
			maxW = w
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(s.WorkPerWorker))
	return float64(maxW) / mean
}

const (
	stripeCount = 1 << 12 // striped mutexes guarding evidence maps
	edgeChunk   = 256     // edges claimed per cursor increment in EdgePEBW
)

// workerScratch is the per-worker reusable state: the common-neighborhood
// buffer and the collected non-adjacent pair keys of the edge in flight.
// Keeping both on the worker (instead of per processEdge call) makes the
// steady path allocation-free once the buffers have warmed to the graph's
// degree profile.
type workerScratch struct {
	comm  []int32
	pairs []uint64
}

// ComputeAll computes every vertex's exact ego-betweenness with t workers
// using the given strategy. t ≤ 0 selects GOMAXPROCS. The result is
// identical (up to float summation order, bounded by ~1e-12 relative) to the
// sequential ego.ComputeAll.
func ComputeAll(g *graph.Graph, t int, strategy Strategy) ([]float64, Stats) {
	cb, _, st := ComputeAllWithMaps(g, t, strategy)
	return cb, st
}

// ComputeAllWithMaps is ComputeAll but also returns the completed evidence
// maps, which the dynamic maintainers take ownership of — the parallel
// counterpart of ego.ComputeAllWithMaps, used by the serving layer to build
// a graph's initial snapshot with a worker budget.
func ComputeAllWithMaps(g *graph.Graph, t int, strategy Strategy) ([]float64, []*pairmap.Map, Stats) {
	if t <= 0 {
		t = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	st := Stats{
		Threads:       t,
		Strategy:      strategy,
		WorkPerWorker: make([]int64, t),
		BusyPerWorker: make([]time.Duration, t),
	}
	start := time.Now()

	o := graph.Orient(g)
	maps := make([]*pairmap.Map, n)
	var mapInit sync.Mutex // guards lazy map allocation distinctly from stripes
	stripes := make([]sync.Mutex, stripeCount)

	mapFor := func(v int32) *pairmap.Map {
		if m := maps[v]; m != nil {
			return m
		}
		mapInit.Lock()
		m := maps[v]
		if m == nil {
			m = pairmap.NewWithCapacity(int(g.Degree(v)))
			maps[v] = m
		}
		mapInit.Unlock()
		return m
	}
	lockOf := func(v int32) *sync.Mutex { return &stripes[uint32(v)%stripeCount] }

	// processEdge applies the markers and credits of one undirected edge
	// (see internal/ego): the mutation set per call touches each target
	// vertex under its own stripe, one lock at a time (no nesting → no
	// deadlock). All scratch lives on the worker, so the steady path
	// allocates nothing.
	processEdge := func(a, b int32, ws *workerScratch, work *int64) {
		ws.comm = nbr.IntersectInto(ws.comm[:0], g.Neighbors(a), g.Neighbors(b))
		key := pairmap.Key(a, b)
		for _, w := range ws.comm {
			mu := lockOf(w)
			mu.Lock()
			mapFor(w).SetMarker(key)
			mu.Unlock()
			*work++
		}
		// Collect the non-adjacent pairs once, then apply per endpoint
		// under a single lock each.
		ws.pairs = ws.pairs[:0]
		for i := 0; i < len(ws.comm); i++ {
			for j := i + 1; j < len(ws.comm); j++ {
				if !g.HasEdge(ws.comm[i], ws.comm[j]) {
					ws.pairs = append(ws.pairs, pairmap.Key(ws.comm[i], ws.comm[j]))
				}
			}
		}
		if len(ws.pairs) > 0 {
			for _, end := range [2]int32{a, b} {
				mu := lockOf(end)
				mu.Lock()
				m := mapFor(end)
				for _, pk := range ws.pairs {
					m.Add(pk, 1)
				}
				mu.Unlock()
			}
			*work += int64(2 * len(ws.pairs))
		}
	}

	var wg sync.WaitGroup
	var maxUnit atomic.Int64
	bumpMax := func(unit int64) {
		for {
			cur := maxUnit.Load()
			if unit <= cur || maxUnit.CompareAndSwap(cur, unit) {
				return
			}
		}
	}
	switch strategy {
	case VertexPEBW:
		var cursor atomic.Int32
		for w := 0; w < t; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				t0 := time.Now()
				var ws workerScratch
				for {
					v := cursor.Add(1) - 1
					if v >= n {
						break
					}
					var unit int64
					for _, x := range o.OutNeighbors(v) {
						processEdge(v, x, &ws, &unit)
					}
					st.WorkPerWorker[id] += unit
					bumpMax(unit)
				}
				st.BusyPerWorker[id] = time.Since(t0)
			}(w)
		}
	case EdgePEBW:
		edges := o.Edges()
		var cursor atomic.Int64
		for w := 0; w < t; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				t0 := time.Now()
				var ws workerScratch
				for {
					lo := cursor.Add(edgeChunk) - edgeChunk
					if lo >= int64(len(edges)) {
						break
					}
					hi := lo + edgeChunk
					if hi > int64(len(edges)) {
						hi = int64(len(edges))
					}
					var unit int64
					for _, e := range edges[lo:hi] {
						processEdge(e[0], e[1], &ws, &unit)
					}
					st.WorkPerWorker[id] += unit
					bumpMax(unit)
				}
				st.BusyPerWorker[id] = time.Since(t0)
			}(w)
		}
	}
	wg.Wait()
	st.MaxUnitWork = maxUnit.Load()
	for _, w := range st.WorkPerWorker {
		st.TotalWork += w
	}

	// Scoring phase: read-only over completed maps, embarrassingly parallel.
	cb := make([]float64, n)
	var scoreCursor atomic.Int32
	for w := 0; w < t; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v := scoreCursor.Add(1) - 1
				if v >= n {
					break
				}
				cb[v] = ego.ScoreEvidence(g.Degree(v), maps[v])
			}
		}()
	}
	wg.Wait()
	st.Elapsed = time.Since(start)
	return cb, maps, st
}
