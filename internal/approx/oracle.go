package approx

import "repro/internal/graph"

// EverettBorgatti computes CB(p) from the closed form of Everett &
// Borgatti ("Ego network betweenness", Social Networks 2005), the formula
// behind easygraph's ego_betweenness: build the ego network G_p — p, its
// neighbors, and every edge among them — with adjacency matrix A, let
// B = A², and sum 1/B[i][j] over unordered non-adjacent pairs with
// B[i][j] > 0. For a neighbor pair {u, v}, B[u][v] counts their common
// neighbors inside G_p, which is c_p(u,v) + 1 (the +1 is p itself), and
// pairs involving p are all adjacent — so the sum is exactly Definition
// 2's Σ 1/(c_p(u,v)+1).
//
// The implementation is a dense O(d³) matrix product sharing no code with
// the evidence engine, the per-vertex kernel, or the sampled estimator,
// which is what makes it an independent oracle for property tests.
func EverettBorgatti(a graph.Adjacency, p int32) float64 {
	nu := a.Neighbors(p)
	d := len(nu)
	if d < 2 {
		return 0
	}
	// Local ids: 0..d−1 are p's neighbors in list order, d is p itself.
	n := d + 1
	idx := make(map[int32]int, d)
	for i, v := range nu {
		idx[v] = i
	}
	adj := make([]bool, n*n)
	for i, v := range nu {
		adj[i*n+d] = true
		adj[d*n+i] = true
		for _, w := range a.Neighbors(v) {
			if j, ok := idx[w]; ok {
				adj[i*n+j] = true
			}
		}
	}
	total := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if adj[i*n+j] {
				continue
			}
			paths := 0
			for l := 0; l < n; l++ {
				if adj[i*n+l] && adj[l*n+j] {
					paths++
				}
			}
			if paths > 0 {
				total += 1 / float64(paths)
			}
		}
	}
	return total
}
