// Package approx is the approximate serving tier: sampled top-k
// ego-betweenness with probabilistic error bounds, for graphs where the
// exact tier's per-query cost (BENCH_PR9: ~82ms OptBSearch on a 16k-vertex
// slice) is too slow.
//
// The estimator treats CB(p) = Σ_{u<v ∈ N(p)} term(u,v) as ub(p)·E[X]
// where ub(p) = d(d−1)/2 and X is the term of a uniformly drawn neighbor
// pair — 0 when the pair is adjacent, 1/(c_p+1) otherwise — so X ∈ [0, 1]
// and standard concentration bounds apply. Per candidate it draws pairs
// until an empirical-Bernstein stopping rule (Audibert et al.; the
// adaptive-sampling design follows Chehreghani et al.) certifies a
// normalized half-width ≤ ε at confidence 1−δ, capped by the fixed
// Hoeffding budget t_max = ⌈ln(2/δ)/(2ε²)⌉; vertices whose pair count is
// below t_max are computed exactly instead (sampling could not beat
// enumeration there).
//
// Candidates come from a betweenness-ordering prescreen (Singh et al.):
// vertices are visited in the degree total order ≺, an initial pool of
// max(2k, k+64) is estimated, and the pool escalates in batches while the
// next unseen vertex's static upper bound d(d−1)/2 still exceeds the
// certified lower bound of the current k-th estimate — every vertex never
// estimated is provably (up to δ) unable to enter the top-k.
//
// Candidates race rather than resolve one-shot: sampling proceeds in
// global rounds, and at each round barrier a candidate whose upper
// confidence bound has fallen below the k-th best certified lower bound is
// pruned — it provably (up to δ) cannot enter the top-k, so spending its
// remaining budget would buy nothing. Only genuine contenders pay the full
// (ε, δ) budget; on a skewed graph most of the pool exits after a round or
// two, which is where the tier's speedup over exact search comes from.
// Pruned vertices are never returned, so the per-vertex ε guarantee on
// returned results is unaffected. (As is standard practice for these
// stopping rules, the δ accounting treats each candidate's final bound as
// one event rather than union-bounding over every intermediate check.)
//
// Determinism contract: each vertex's sample stream is a pure function of
// (Options.Seed, vertex id) — a per-vertex PCG stream — and pruning
// decisions happen only at round barriers, computed from those streams, so
// results do not depend on worker count or scheduling, and running on any
// view flavor with the same vertex ids (frozen CSR, overlay, dynamic)
// yields bit-identical results. The serving layer always evaluates approx
// on the external-id view, which is what makes answers identical across
// frozen/overlay/relabeled snapshots.
package approx

import (
	"math"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ego"
	"repro/internal/graph"
)

// Default knob values, shared with the serving layer's query parsing.
const (
	DefaultEps  = 0.05 // normalized half-width target
	DefaultConf = 0.95 // confidence 1−δ
	DefaultSeed = 1    // sampling seed when the query leaves it unset
)

const (
	// sampleBatch is how often the sampling loop re-evaluates the
	// empirical-Bernstein stopping rule; checking every draw would put a
	// sqrt+log on the hot loop for no precision gain.
	sampleBatch = 32
	// roundBatches is how many sampleBatch groups a candidate draws per
	// racing round. Larger rounds amortize the per-round center re-marking,
	// smaller rounds prune losers sooner; two batches (64 draws) keeps the
	// marking cost well under the sampling cost while still giving a
	// t_max-budget candidate ~a dozen pruning checkpoints.
	roundBatches = 2
	// escalateMin floors both the initial candidate pool slack and each
	// escalation batch, so tiny k values still amortize the fan-out.
	escalateMin = 64
)

// Options are the approx-tier query knobs.
type Options struct {
	Eps     float64 // target normalized half-width ε ∈ (0, 1); 0 → DefaultEps
	Conf    float64 // confidence 1−δ ∈ (0, 1); 0 → DefaultConf
	Seed    uint64  // sample-stream seed; 0 → DefaultSeed
	Workers int     // parallel estimator workers; ≤ 0 → GOMAXPROCS
}

// withDefaults resolves zero values to the package defaults.
func (o Options) withDefaults() Options {
	if o.Eps <= 0 {
		o.Eps = DefaultEps
	}
	if o.Conf <= 0 {
		o.Conf = DefaultConf
	}
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Stats reports what a TopK call did.
type Stats struct {
	Candidates  int     // vertices admitted to the race (after escalation)
	Escalations int     // candidate-pool extensions beyond the initial pool
	Exact       int64   // candidates resolved on the exact small-pair path
	Sampled     int64   // candidates that entered the sampling loop
	Pruned      int64   // candidates eliminated mid-race by the confidence bounds
	Samples     int64   // total pair samples drawn
	EpsAchieved float64 // max certified normalized half-width over the returned top-k
}

// Candidate states. A candidate enters pending, resolves on the exact
// small-pair path or by sampling to a certified ≤ε half-width, or is
// pruned when its upper confidence bound falls below the k-th best lower
// bound.
const (
	candPending uint8 = iota
	candAlive
	candExact
	candResolved
	candPruned
)

// cand is one candidate's racing state. Workers touch a cand only inside
// the round that owns it; pruning reads happen at the round barrier.
//
// nu/arena/off are the candidate's sampling tables, built once when it
// enters the race: nu is the center's neighbor list, and arena[off[i]:
// off[i+1]] is neighbor nu[i]'s adjacency restricted to the ego net,
// R(nu[i]) = N(nu[i]) ∩ N(p). The pair term then needs only a merge of
// two short restricted lists — c_p(u,v) = |R(u) ∩ R(v)| — instead of a
// full-list three-way intersection per draw, which is where most of the
// sampling time went. The tables are released the moment the candidate
// leaves the race.
type cand struct {
	v        int32
	d        int
	ub       float64
	nu       []int32    // center's neighbor list (copied: stable across views)
	arena    []int32    // concatenated restricted lists
	off      []int32    // len d+1 prefix offsets into arena
	rng      *rand.Rand // per-vertex stream: pure in (seed, v)
	t        int64      // pair samples drawn so far
	mean, m2 float64    // Welford running moments of X
	est      float64    // ub·mean (exact CB on the exact path)
	low      float64    // certified lower bound, clamped ≥ 0
	high     float64    // certified upper bound, clamped ≤ ub
	halfNorm float64    // current certified normalized half-width
	state    uint8
}

// release drops a candidate's sampling tables once it leaves the race.
func (c *cand) release() {
	c.nu, c.arena, c.off, c.rng = nil, nil, nil, nil
}

// estimator carries the per-query constants shared by all workers.
type estimator struct {
	g      graph.View
	eps    float64
	seed   uint64
	tMax   int64   // Hoeffding budget ⌈ln(2/δ)/(2ε²)⌉
	bernL  float64 // ln(3/δ) for the empirical-Bernstein half-width
	hoeffL float64 // ln(2/δ) for the anytime Hoeffding half-width
}

// scratchPool recycles the per-worker ego scratch (center-mark register)
// so the sampling loop itself is allocation-free.
var scratchPool = sync.Pool{New: func() any { return ego.NewScratch(0) }}

// streamOf decorrelates per-vertex PCG streams: a fixed odd multiplier
// spreads consecutive ids across the stream space. Pure in (id), so the
// (seed, id) pair fully determines a vertex's samples.
func streamOf(v int32) uint64 {
	return (uint64(uint32(v)) + 1) * 0x9E3779B97F4A7C15
}

// TopK returns the approximate top-k ego-betweenness vertices of g in
// descending estimated score (ties by ascending id). Results are
// deterministic for a fixed Options.Seed regardless of Workers. With
// probability ≥ 1−δ per returned vertex, |est − CB| ≤ ε·d(d−1)/2.
func TopK(g graph.View, k int, o Options) ([]ego.Result, Stats) {
	o = o.withDefaults()
	var st Stats
	n := int(g.NumVertices())
	if k <= 0 || n == 0 {
		return []ego.Result{}, st
	}
	if k > n {
		k = n
	}
	delta := 1 - o.Conf
	e := &estimator{
		g:      g,
		eps:    o.Eps,
		seed:   o.Seed,
		tMax:   int64(math.Ceil(math.Log(2/delta) / (2 * o.Eps * o.Eps))),
		bernL:  math.Log(3 / delta),
		hoeffL: math.Log(2 / delta),
	}

	order := degreeOrder(g)
	pool := k + escalateMin
	if c := 2 * k; c > pool {
		pool = c
	}
	if pool > n {
		pool = n
	}
	cands := make([]*cand, 0, pool)
	admit := func(to int) {
		for len(cands) < to {
			v := order[len(cands)]
			d := int(g.Degree(v))
			ub := ego.StaticUB(int32(d))
			cands = append(cands, &cand{v: v, d: d, ub: ub, high: ub, state: candPending})
		}
	}
	admit(pool)
	e.race(cands, k, o.Workers)

	// Escalate while the next unseen vertex's static UB could still beat
	// the certified lower bound of the k-th best estimate. order is sorted
	// by non-increasing degree, so the first failing vertex proves every
	// later one out too.
	for len(cands) < n {
		kthLow := kthBestLow(cands, k)
		if ego.StaticUB(g.Degree(order[len(cands)])) <= kthLow {
			break
		}
		add := len(cands) / 2
		if add < escalateMin {
			add = escalateMin
		}
		to := len(cands) + add
		if to > n {
			to = n
		}
		admit(to)
		e.race(cands, k, o.Workers)
		st.Escalations++
	}
	st.Candidates = len(cands)

	// Only resolved candidates are eligible for the answer: a pruned
	// vertex's estimate stopped early, so its noise could exceed ε — but
	// its upper bound already proved it out of the top-k. At least k
	// candidates always resolve (the k holding the k-th best lower bound
	// can never be pruned by it).
	final := cands[:0]
	for _, c := range cands {
		switch c.state {
		case candExact:
			st.Exact++
			final = append(final, c)
		case candResolved:
			final = append(final, c)
		case candPruned:
			st.Pruned++
		}
		if c.t > 0 {
			st.Sampled++
		}
		st.Samples += c.t
	}
	sort.Slice(final, func(i, j int) bool {
		if final[i].est != final[j].est {
			return final[i].est > final[j].est
		}
		return final[i].v < final[j].v
	})
	if k > len(final) {
		k = len(final)
	}
	res := make([]ego.Result, k)
	for i := 0; i < k; i++ {
		res[i] = ego.Result{V: final[i].v, CB: final[i].est}
		if final[i].halfNorm > st.EpsAchieved {
			st.EpsAchieved = final[i].halfNorm
		}
	}
	return res, st
}

// degreeOrder returns g's vertices by non-increasing degree, ties by
// ascending id — the prescreen's total order — via a counting sort over
// degree buckets. The obvious comparison sort costs O(n log n) per query
// and showed up as ~20% of an approx query on the profile; the bucket
// pass is O(n + maxDegree).
func degreeOrder(g graph.View) []int32 {
	n := int(g.NumVertices())
	degs := make([]int32, n)
	maxd := int32(0)
	for v := 0; v < n; v++ {
		d := g.Degree(int32(v))
		degs[v] = d
		if d > maxd {
			maxd = d
		}
	}
	// count[b] buckets degree maxd−b, so bucket order is descending degree.
	count := make([]int32, maxd+1)
	for _, d := range degs {
		count[maxd-d]++
	}
	var sum int32
	for i, c := range count {
		count[i] = sum
		sum += c
	}
	order := make([]int32, n)
	for v := 0; v < n; v++ { // ascending id within each bucket
		b := maxd - degs[v]
		order[count[b]] = int32(v)
		count[b]++
	}
	return order
}

// kthBestLow returns the k-th largest certified lower bound among the
// candidates (the escalation and pruning cutoff). Fewer candidates than k
// means nothing is certified yet, so the cutoff is 0.
func kthBestLow(cands []*cand, k int) float64 {
	if len(cands) < k {
		return 0
	}
	lows := make([]float64, len(cands))
	for i, c := range cands {
		lows[i] = c.low
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(lows)))
	return lows[k-1]
}

// race runs the sampling rounds until every candidate is resolved or
// pruned. Pruning happens only here, at the round barrier, from the
// deterministic per-vertex streams — never inside a worker — which is what
// keeps the outcome independent of worker count and scheduling.
func (e *estimator) race(cands []*cand, k, workers int) {
	work := make([]*cand, 0, len(cands))
	for {
		// Prune before the round, so escalated candidates whose static UB
		// is already beaten never sample at all.
		kthLow := kthBestLow(cands, k)
		work = work[:0]
		for _, c := range cands {
			if c.state != candPending && c.state != candAlive {
				continue
			}
			if c.high < kthLow {
				c.state = candPruned
				c.release()
				continue
			}
			work = append(work, c)
		}
		if len(work) == 0 {
			return
		}
		e.runRound(work, workers)
	}
}

// runRound advances every working candidate by one round, fanning out
// across workers. Each candidate is owned by exactly one worker per round.
func (e *estimator) runRound(work []*cand, workers int) {
	if workers > len(work) {
		workers = len(work)
	}
	if workers <= 1 {
		s := scratchPool.Get().(*ego.Scratch)
		for _, c := range work {
			e.round(c, s)
		}
		scratchPool.Put(s)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := scratchPool.Get().(*ego.Scratch)
			defer scratchPool.Put(s)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(work) {
					break
				}
				e.round(work[i], s)
			}
		}()
	}
	wg.Wait()
}

// buildTables runs the one O(vol) pass over the center's neighborhood
// volume that turns every later draw into a short merge.
func (c *cand) buildTables(e *estimator, s *ego.Scratch) {
	nu := s.BeginCenter(e.g, c.v)
	c.nu = append(make([]int32, 0, len(nu)), nu...)
	c.off = make([]int32, c.d+1)
	c.arena = make([]int32, 0, 4*c.d)
	for i, u := range c.nu {
		c.off[i] = int32(len(c.arena))
		c.arena = s.MarkedOf(c.arena, e.g.Neighbors(u))
	}
	c.off[c.d] = int32(len(c.arena))
	s.EndCenter()
}

// round advances one candidate. Its first touch resolves it exactly when
// its pair count is within the Hoeffding budget (sampling could not beat
// enumeration) or seeds its stream; then it draws up to
// roundBatches·sampleBatch pairs, re-certifying the confidence interval
// after each batch.
//
// Draws run in one of two modes with identical values: direct (mark the
// center, price each pair against the full adjacency rows) or through the
// restricted tables. A direct draw touches two random neighbor rows,
// ~2·vol/d elements, so t draws cost ~t·2·vol/d against the table build's
// one O(vol) pass — tables win exactly when 2·(tMax−t) > d. Deciding at
// the second round keeps first-round losers from paying a build they
// never amortize, and keeps the biggest hubs (d beyond twice the whole
// budget) on the direct path for good.
func (e *estimator) round(c *cand, s *ego.Scratch) {
	if c.state == candPending {
		pairs := int64(c.d) * int64(c.d-1) / 2
		if pairs <= e.tMax {
			cb := ego.EgoBetweenness(e.g, c.v, s)
			c.est, c.low, c.high = cb, cb, cb
			c.state = candExact
			return
		}
		c.rng = rand.New(rand.NewPCG(e.seed, streamOf(c.v)))
		c.state = candAlive
	}
	if c.off == nil && c.t > 0 && 2*(e.tMax-c.t) > int64(c.d) {
		c.buildTables(e, s)
	}
	var nu []int32
	if c.off == nil {
		nu = s.BeginCenter(e.g, c.v)
		defer s.EndCenter()
	}
	d := c.d
	// A candidate's first round is a single batch: losers prune after 32
	// draws instead of 64, halving the pool-wide warm-up cost.
	batches := roundBatches
	if c.t == 0 {
		batches = 1
	}
	for r := 0; r < batches; r++ {
		batch := e.tMax - c.t
		if batch > sampleBatch {
			batch = sampleBatch
		}
		for b := int64(0); b < batch; b++ {
			// Uniform unordered pair {i, j}, i ≠ j, via a shifted second draw.
			i := c.rng.IntN(d)
			j := c.rng.IntN(d - 1)
			if j >= i {
				j++
			}
			var x float64
			if c.off == nil {
				x = s.PairContribution(e.g, nu[i], nu[j])
			} else {
				ru := c.arena[c.off[i]:c.off[i+1]]
				rv := c.arena[c.off[j]:c.off[j+1]]
				// Both endpoints are the center's neighbors, so u and v
				// are adjacent iff v sits in R(u) = N(u) ∩ N(p) — probe
				// the shorter restricted list, not the full adjacency row.
				v := c.nu[j]
				if len(rv) < len(ru) {
					ru, rv = rv, ru
					v = c.nu[i]
				}
				if !containsInt32(ru, v) {
					x = 1 / float64(commonCount(ru, rv)+1)
				}
			}
			c.t++
			delta := x - c.mean
			c.mean += delta / float64(c.t)
			c.m2 += delta * (x - c.mean)
		}
		// Certify the tighter of the empirical-Bernstein and anytime
		// Hoeffding half-widths at confidence 1−δ.
		v := c.m2 / float64(c.t)
		h := math.Sqrt(2*v*e.bernL/float64(c.t)) + 3*e.bernL/float64(c.t)
		if hh := math.Sqrt(e.hoeffL / (2 * float64(c.t))); hh < h {
			h = hh
		}
		if h <= e.eps || c.t >= e.tMax {
			if h > e.eps {
				h = e.eps // the full-budget Hoeffding certificate
			}
			c.state = candResolved
		}
		c.halfNorm = h
		c.est = c.ub * c.mean
		c.low = c.est - c.ub*h
		if c.low < 0 {
			c.low = 0 // CB ≥ 0 always; the clamp only tightens the certificate
		}
		c.high = c.est + c.ub*h
		if c.high > c.ub {
			c.high = c.ub // CB ≤ d(d−1)/2 always
		}
		if c.state == candResolved {
			c.release()
			return
		}
	}
}

// containsInt32 reports whether sorted list holds v; the restricted lists
// it probes are short, so a branchless-ish binary search suffices.
func containsInt32(list []int32, v int32) bool {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(list) && list[lo] == v
}

// commonCount returns |a ∩ b| for two sorted lists. The restricted lists
// it merges are short (a neighbor pair's common candidates within one ego
// net), so a plain two-pointer merge beats anything fancier.
func commonCount(a, b []int32) int32 {
	var c int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}
