package pairmap

// Set is an open-addressing hash set of packed pair keys. The top-k search
// algorithms use it to record which undirected edges have already been
// processed, enforcing the once-per-edge discipline that makes connector
// counts exact (see the package comment and DESIGN.md §2). Deletion is not
// needed for that role, which keeps the table tombstone-free.
type Set struct {
	keys []uint64
	live int
}

// NewSet returns an empty set sized to hold at least c keys without growing.
func NewSet(c int) *Set {
	size := 8
	for size*3 < c*4 {
		size <<= 1
	}
	return &Set{keys: make([]uint64, size)}
}

// Len returns the number of keys in the set.
func (s *Set) Len() int { return s.live }

// Contains reports whether k is in the set.
func (s *Set) Contains(k uint64) bool {
	mask := uint64(len(s.keys) - 1)
	i := hash(k) & mask
	for {
		switch s.keys[i] {
		case k:
			return true
		case emptySlot:
			return false
		}
		i = (i + 1) & mask
	}
}

// Insert adds k and reports whether it was newly inserted (false when k was
// already present).
func (s *Set) Insert(k uint64) bool {
	if (s.live+1)*4 > len(s.keys)*3 {
		s.grow()
	}
	mask := uint64(len(s.keys) - 1)
	i := hash(k) & mask
	for {
		switch s.keys[i] {
		case k:
			return false
		case emptySlot:
			s.keys[i] = k
			s.live++
			return true
		}
		i = (i + 1) & mask
	}
}

func (s *Set) grow() {
	old := s.keys
	s.keys = make([]uint64, len(old)*2)
	s.live = 0
	for _, k := range old {
		if k != emptySlot {
			s.Insert(k)
		}
	}
}
