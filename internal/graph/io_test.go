package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# comment line
% another comment

0 1
1 2
2 0
0 1
3 3
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d, want 4, 3", g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"0\n", "a b\n", "1 x\n", "-1 2\n"} {
		if _, err := ReadEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q: want error", bad)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := mustG(t, 7, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}, {0, 6}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip m=%d, want %d", back.NumEdges(), g.NumEdges())
	}
	g.EachEdge(func(u, v int32) bool {
		if !back.HasEdge(u, v) {
			t.Errorf("edge (%d,%d) lost", u, v)
		}
		return true
	})
}

func TestBinaryRoundTrip(t *testing.T) {
	g := mustG(t, 100, genRing(100))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != 100 || back.NumEdges() != g.NumEdges() {
		t.Fatal("binary round trip changed shape")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("want error on truncated input")
	}
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("want error on zero-magic input")
	}
}

func genRing(n int32) [][2]int32 {
	edges := make([][2]int32, n)
	for i := int32(0); i < n; i++ {
		edges[i] = [2]int32{i, (i + 1) % n}
	}
	return edges
}

func TestSampleEdges(t *testing.T) {
	g := mustG(t, 50, genRing(50))
	sub := SampleEdges(g, 0.5, 7)
	if sub.NumVertices() != 50 {
		t.Fatalf("vertex set changed: %d", sub.NumVertices())
	}
	if sub.NumEdges() >= g.NumEdges() || sub.NumEdges() == 0 {
		t.Fatalf("sampled m=%d of %d, want strict subset", sub.NumEdges(), g.NumEdges())
	}
	sub.EachEdge(func(u, v int32) bool {
		if !g.HasEdge(u, v) {
			t.Errorf("sample invented edge (%d,%d)", u, v)
		}
		return true
	})
	full := SampleEdges(g, 1.0, 7)
	if full.NumEdges() != g.NumEdges() {
		t.Fatal("frac=1 must keep all edges")
	}
	// Determinism.
	again := SampleEdges(g, 0.5, 7)
	if again.NumEdges() != sub.NumEdges() {
		t.Fatal("same seed must give same sample")
	}
}

func TestSampleVertices(t *testing.T) {
	g := mustG(t, 60, genRing(60))
	sub, orig := SampleVertices(g, 0.4, 11)
	if int32(len(orig)) != sub.NumVertices() {
		t.Fatalf("mapping length %d != n %d", len(orig), sub.NumVertices())
	}
	if sub.NumVertices() == 0 || sub.NumVertices() >= 60 {
		t.Fatalf("sampled n=%d, want strict subset", sub.NumVertices())
	}
	// Every sampled edge must map back to an original edge.
	sub.EachEdge(func(u, v int32) bool {
		if !g.HasEdge(orig[u], orig[v]) {
			t.Errorf("induced edge (%d,%d) not present in original", orig[u], orig[v])
		}
		return true
	})
}
