package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/graph"
)

// File names inside a graph's directory. The snapshot is only ever replaced
// by rename, so it is always intact; the WAL is the only file a crash can
// tear, and only at its tail. The lock file carries an exclusive flock held
// for the Store's lifetime, so a second process (or a second Store in this
// process) opening the same directory fails loudly instead of interleaving
// WAL appends; the kernel releases it on any process death, so a kill -9
// never wedges a restart.
const (
	snapshotFile = "snapshot.ebws"
	walFile      = "wal.ebwl"
	lockFile     = "LOCK"
)

// WALHeaderLen is the byte length of the WAL file header — the smallest
// offset a WAL tail stream can start at. Record bytes begin here.
const WALHeaderLen = walHeaderLen

// SnapshotPath returns the snapshot file inside a graph's store directory.
// The file is only ever replaced by an atomic rename, so an independent
// reader (the shipping layer serving a checkpoint) always sees a complete
// snapshot: either the old one or the new one, never a torn mix.
func SnapshotPath(dir string) string { return filepath.Join(dir, snapshotFile) }

// WALPath returns the WAL file inside a graph's store directory. Within one
// segment (between checkpoints) the file is append-only, so any prefix up to
// a byte count observed after a completed append is immutable and safe to
// read from a separate handle while the owner keeps appending.
func WALPath(dir string) string { return filepath.Join(dir, walFile) }

// InstallSnapshot initializes dir with snapshot bytes fetched from elsewhere
// (a leader's checkpoint), validating them first — an unreadable image must
// fail here, not at the Open that follows. No WAL is created and no lock is
// taken: the caller follows up with Open, which starts a fresh log and takes
// the directory lock. Any existing store content in dir is replaced, so a
// replica re-bootstrapping onto a newer checkpoint starts clean.
func InstallSnapshot(dir string, data []byte) error {
	if _, _, err := DecodeSnapshot(data); err != nil {
		return fmt.Errorf("store: install snapshot: %w", err)
	}
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("store: install snapshot: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: install snapshot: %w", err)
	}
	path := SnapshotPath(dir)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: install snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: install snapshot: %w", err)
	}
	return syncDir(dir)
}

// Crash-hook points. The hook runs at each named point of a durability
// operation; a non-nil return aborts the operation exactly there, leaving
// the on-disk files as a real crash at that instant would. The recovery test
// harness uses this to kill the serving layer mid-checkpoint.
const (
	// CrashBeforeWALAppend fires before a batch record is written: the
	// batch is lost, as if the process died before acknowledging it.
	CrashBeforeWALAppend = "before-wal-append"
	// CrashAfterGroupWrite fires after a group's records have been written
	// but before the single group fsync: the OS has the bytes, the disk may
	// not. A process kill at this point leaves the records readable (so
	// recovery replays them); only a power cut could tear them, which the
	// torn-tail repair already covers.
	CrashAfterGroupWrite = "after-group-write"
	// CrashAfterWALAppend fires after the record is written and synced:
	// the batch is durable even though the caller never applied it.
	CrashAfterWALAppend = "after-wal-append"
	// CrashBeforeCheckpoint fires at checkpoint start (WAL intact).
	CrashBeforeCheckpoint = "before-checkpoint"
	// CrashInStateWrite fires inside the snapshot temp-file write, between
	// the graph part and the maintainer-state section: the temp file is torn
	// mid-section, exactly as a crash there would leave it. The previous
	// snapshot still rules (the torn temp is never renamed in), the full WAL
	// still stands.
	CrashInStateWrite = "in-state-write"
	// CrashAfterSnapshotTmp fires after the new snapshot's temp file is
	// written but before it is renamed into place: the old snapshot still
	// rules, the full WAL still stands.
	CrashAfterSnapshotTmp = "after-snapshot-tmp"
	// CrashAfterSnapshotRename fires after the new snapshot is in place
	// but before the WAL is truncated: recovery must skip WAL records
	// already folded into the snapshot (Seq ≤ Meta.Seq).
	CrashAfterSnapshotRename = "after-snapshot-rename"
)

// Store is the durable state of one served graph: the current snapshot file
// plus an append-only WAL of the batches applied since. Methods are not
// goroutine-safe; the serving layer calls them under its per-graph write
// lock, which is also the WAL's append serialization.
type Store struct {
	dir   string
	sync  bool
	crash func(point string) error

	lock     *os.File // holds the exclusive flock on lockFile
	wal      *os.File
	walBytes int64
	seq      uint64 // last batch sequence appended to the WAL
	snapSeq  uint64 // sequence folded into the on-disk snapshot
	ckpts    int64  // checkpoints taken by this Store instance

	// failed poisons the store after any durability error (including an
	// injected crash): once an append or checkpoint has failed, the WAL
	// state on disk is unknown, and continuing to append could silently
	// orphan acknowledged batches behind a torn record — so every
	// subsequent durable operation fails with the original error instead.
	failed error
}

// Option configures a Store at Create/Open time.
type Option func(*Store)

// WithSync controls fsync on WAL appends (default true). Turning it off
// trades the power-loss guarantee for append latency; process crashes are
// still covered because the OS has the write.
func WithSync(sync bool) Option {
	return func(s *Store) { s.sync = sync }
}

// WithCrashHook installs a crash-injection hook for the recovery tests; see
// the Crash* constants.
func WithCrashHook(h func(point string) error) Option {
	return func(s *Store) { s.crash = h }
}

func newStore(dir string, opts ...Option) *Store {
	s := &Store{dir: dir, sync: true, crash: func(string) error { return nil }}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Create initializes dir as a graph store: the initial snapshot (meta.Seq is
// normally 0) and an empty WAL. An existing store in dir is replaced. On any
// failure the directory is removed again, so a graph whose creation was
// reported as failed can never be resurrected by a later recovery scan.
func Create(dir string, g *graph.Graph, meta SnapshotMeta, opts ...Option) (*Store, error) {
	return CreateWithStamps(dir, g, meta, nil, opts...)
}

// CreateWithStamps is Create for a windowed graph: the initial snapshot
// carries the temporal section (window length + per-edge stamps), so a crash
// before the first checkpoint still recovers the window configuration. A nil
// ts degrades to Create exactly.
func CreateWithStamps(dir string, g *graph.Graph, meta SnapshotMeta, ts *TemporalState, opts ...Option) (*Store, error) {
	s := newStore(dir, opts...)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	if err := s.acquireLock(); err != nil {
		return nil, err
	}
	if err := writeSnapshotFile(filepath.Join(dir, snapshotFile), g, meta, nil, nil, ts, s.crash); err != nil {
		s.releaseLock()
		os.RemoveAll(dir)
		return nil, err
	}
	s.snapSeq = meta.Seq
	s.seq = meta.Seq
	if err := s.resetWAL(); err != nil {
		s.releaseLock()
		os.RemoveAll(dir)
		return nil, err
	}
	return s, nil
}

// Recovered is what Open found on disk: the snapshot and the ordered WAL
// tail to replay on top of it.
type Recovered struct {
	Meta  SnapshotMeta
	Graph *graph.Graph
	// Tail holds the WAL batches with Seq > Meta.Seq, in append order, with
	// consecutive sequences. Replaying them through the same deterministic
	// application code the live writer uses reproduces the pre-crash state.
	Tail []Batch
	// TornBytes is how many trailing WAL bytes were dropped (and truncated
	// away) because a crash tore the final record; 0 on a clean shutdown.
	TornBytes int64
	// State is the snapshot's decoded maintainer-state section, when one was
	// written (CheckpointWithState) and decoded cleanly — the fast-recovery
	// input: import it and replay only Tail, skipping the maintainer rebuild.
	// nil means recover by rebuilding; StateErr distinguishes "the snapshot
	// never carried state" (nil — every version-1 file) from "the section was
	// present but unusable" (the decode error). State trouble never fails
	// Open: the graph part is independently checksummed and still serves.
	State    *MaintainerState
	StateErr error
	// Perm is the snapshot's relabel permutation (perm[external] = internal)
	// when one was checkpointed (CheckpointSections) and decoded cleanly;
	// nil means the serving layer derives a fresh relabeling if it needs
	// one. PermErr mirrors StateErr's distinction between "never written"
	// (nil) and "present but unusable" (the decode error); neither fails
	// Open.
	Perm    []int32
	PermErr error
	// Stamps is the snapshot's temporal section (window length + per-edge
	// admission stamps in canonical CSR order) when the graph was windowed;
	// nil for unwindowed graphs. StampsErr mirrors StateErr's distinction
	// between "never written" (nil) and "present but unusable" (the decode
	// error); neither fails Open — the graph serves unwindowed instead.
	Stamps    *TemporalState
	StampsErr error
}

// Open recovers the store in dir: load the snapshot, decode the WAL, repair
// a torn tail by truncation, and hand back the batches that post-date the
// snapshot. The returned Store appends after the repaired tail.
func Open(dir string, opts ...Option) (st *Store, rec *Recovered, err error) {
	s := newStore(dir, opts...)
	if err := s.acquireLock(); err != nil {
		return nil, nil, err
	}
	defer func() {
		if err != nil {
			s.releaseLock()
		}
	}()
	rec, err = readSnapshotFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, nil, err
	}
	meta := rec.Meta
	s.snapSeq = meta.Seq
	s.seq = meta.Seq

	walPath := filepath.Join(dir, walFile)
	data, err := os.ReadFile(walPath)
	switch {
	case os.IsNotExist(err):
		// A crash between Create's snapshot write and WAL creation: no
		// batch was ever acknowledged, start a fresh log.
		if err := s.resetWAL(); err != nil {
			return nil, nil, err
		}
		return s, rec, nil
	case err != nil:
		return nil, nil, fmt.Errorf("store: open wal: %w", err)
	}
	if len(data) < walHeaderLen {
		// A crash inside resetWAL's truncate→header window (checkpoint or
		// create). The snapshot that preceded the truncation is intact and
		// folds every acknowledged batch, and nothing can have been
		// appended after a header that was never completed — so this is an
		// empty log, not corruption.
		rec.TornBytes = int64(len(data))
		if err := s.resetWAL(); err != nil {
			return nil, nil, err
		}
		return s, rec, nil
	}
	batches, valid, err := DecodeWAL(data)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %s: %w", walPath, err)
	}
	rec.TornBytes = int64(len(data)) - int64(valid)
	// Keep the tail that post-dates the snapshot, insisting on consecutive
	// sequences: the writer assigns Seq = prev+1 under its lock, so a gap or
	// regression can only mean corruption that happened to pass the CRCs —
	// fail loud rather than replay a wrong history.
	for _, b := range batches {
		if b.Seq <= meta.Seq {
			continue
		}
		if b.Seq != s.seq+1 {
			return nil, nil, fmt.Errorf("store: %s: batch sequence %d after %d (snapshot at %d)", walPath, b.Seq, s.seq, meta.Seq)
		}
		rec.Tail = append(rec.Tail, b)
		s.seq = b.Seq
	}

	f, err := os.OpenFile(walPath, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open wal: %w", err)
	}
	if rec.TornBytes > 0 {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: repair torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: seek wal end: %w", err)
	}
	s.wal = f
	s.walBytes = int64(valid)
	return s, rec, nil
}

// fail poisons the store with err (keeping the first failure) and returns
// it.
func (s *Store) fail(err error) error {
	if s.failed == nil {
		s.failed = err
	}
	return err
}

// Failed returns the error that poisoned the store, or nil while it is
// healthy.
func (s *Store) Failed() error { return s.failed }

// BatchSpec is one batch of a group append: the client-submitted edges and
// the operation, before a sequence number is assigned. Stamps, when non-nil,
// carries one admission timestamp per edge (windowed graphs); it rides the
// WAL record so replay sees the stamps the live writer applied.
type BatchSpec struct {
	Insert bool
	Edges  [][2]int32
	Stamps []int64
}

// AppendBatch makes one edge-update batch durable and returns its sequence
// number. Callers append before applying: a batch whose append fails must
// not be applied, and a batch whose append succeeded will be replayed on
// recovery even if the process dies before applying it. Any failure — a
// partial write, a failed fsync — poisons the store (see Store.failed):
// accepting further appends after a write of unknown extent could orphan
// them behind a torn record, silently un-acknowledging them.
func (s *Store) AppendBatch(insert bool, edges [][2]int32) (uint64, error) {
	return s.AppendBatches([]BatchSpec{{Insert: insert, Edges: edges}})
}

// AppendBatches is the group commit: it makes n batches durable as n
// consecutive per-batch WAL records — so recovery replay is byte-for-byte
// the same as n individual appends — but pays one write and one fsync for
// the whole group. It returns the sequence assigned to the first batch;
// batch i gets first+i. The failure contract matches AppendBatch: the group
// is durable as a unit (one fsync covers it), and any failure poisons the
// store with the whole group un-acknowledged.
func (s *Store) AppendBatches(specs []BatchSpec) (uint64, error) {
	if len(specs) == 0 {
		return 0, fmt.Errorf("store: empty append group")
	}
	if s.failed != nil {
		return 0, fmt.Errorf("store: poisoned by earlier failure: %w", s.failed)
	}
	if err := s.crash(CrashBeforeWALAppend); err != nil {
		return 0, s.fail(err)
	}
	first := s.seq + 1
	var buf []byte
	for i, sp := range specs {
		buf = append(buf, EncodeBatch(Batch{Seq: first + uint64(i), Insert: sp.Insert, Edges: sp.Edges, Stamps: sp.Stamps})...)
	}
	if _, err := s.wal.Write(buf); err != nil {
		return 0, s.fail(fmt.Errorf("store: wal append: %w", err))
	}
	if err := s.crash(CrashAfterGroupWrite); err != nil {
		return 0, s.fail(err)
	}
	if s.sync {
		if err := s.wal.Sync(); err != nil {
			return 0, s.fail(fmt.Errorf("store: wal sync: %w", err))
		}
	}
	s.seq += uint64(len(specs))
	s.walBytes += int64(len(buf))
	if err := s.crash(CrashAfterWALAppend); err != nil {
		return 0, s.fail(err)
	}
	return first, nil
}

// Checkpoint atomically replaces the snapshot with g (which must reflect
// every batch up to meta.Seq, normally Seq()) and truncates the WAL. A crash
// anywhere inside leaves a recoverable store: either the old snapshot with
// the full WAL, or the new snapshot with a WAL whose stale prefix recovery
// skips by sequence.
func (s *Store) Checkpoint(g *graph.Graph, meta SnapshotMeta) error {
	return s.CheckpointWithState(g, meta, nil)
}

// CheckpointWithState is Checkpoint carrying the maintainer state exported
// at the same instant as g: the snapshot is written in the version-2 format,
// and the next recovery can import the state instead of rebuilding it (nil
// state keeps the version-1 format). The atomicity contract is Checkpoint's.
func (s *Store) CheckpointWithState(g *graph.Graph, meta SnapshotMeta, st *MaintainerState) error {
	return s.CheckpointSections(g, meta, st, nil)
}

// CheckpointSections is CheckpointWithState additionally carrying the
// serving layer's relabel permutation (perm[external] = internal, empty for
// none), persisted as its own checksummed section so the next recovery
// reuses the internal layout instead of re-deriving it. The atomicity
// contract is Checkpoint's.
func (s *Store) CheckpointSections(g *graph.Graph, meta SnapshotMeta, st *MaintainerState, perm []int32) error {
	return s.CheckpointFull(g, meta, st, perm, nil)
}

// CheckpointFull is CheckpointSections additionally carrying the temporal
// state of a windowed graph (window length + per-edge admission stamps), so
// the next recovery resumes expiring without re-deriving any stamp. The
// atomicity contract is Checkpoint's.
func (s *Store) CheckpointFull(g *graph.Graph, meta SnapshotMeta, st *MaintainerState, perm []int32, ts *TemporalState) error {
	if s.failed != nil {
		return fmt.Errorf("store: poisoned by earlier failure: %w", s.failed)
	}
	if err := s.crash(CrashBeforeCheckpoint); err != nil {
		return s.fail(err)
	}
	if err := writeSnapshotFile(filepath.Join(s.dir, snapshotFile), g, meta, st, perm, ts, s.crash); err != nil {
		return s.fail(err)
	}
	s.snapSeq = meta.Seq
	if err := s.crash(CrashAfterSnapshotRename); err != nil {
		return s.fail(err)
	}
	if err := s.resetWAL(); err != nil {
		return s.fail(err)
	}
	s.ckpts++
	return nil
}

// resetWAL (re)creates an empty WAL containing just the file header,
// reusing the open handle when there is one.
func (s *Store) resetWAL() error {
	if s.wal == nil {
		f, err := os.OpenFile(filepath.Join(s.dir, walFile), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("store: create wal: %w", err)
		}
		s.wal = f
	} else {
		if err := s.wal.Truncate(0); err != nil {
			return fmt.Errorf("store: truncate wal: %w", err)
		}
		if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("store: rewind wal: %w", err)
		}
	}
	if _, err := s.wal.Write(walFileHeader()); err != nil {
		return fmt.Errorf("store: wal header: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: wal sync: %w", err)
	}
	s.walBytes = walHeaderLen
	return nil
}

// Seq returns the last batch sequence made durable.
func (s *Store) Seq() uint64 { return s.seq }

// SnapshotSeq returns the sequence folded into the on-disk snapshot.
func (s *Store) SnapshotSeq() uint64 { return s.snapSeq }

// WALBytes returns the current WAL file size.
func (s *Store) WALBytes() int64 { return s.walBytes }

// Checkpoints returns how many checkpoints this Store instance has taken.
func (s *Store) Checkpoints() int64 { return s.ckpts }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the WAL handle and the directory lock. The store stays
// recoverable via Open.
func (s *Store) Close() error {
	var err error
	if s.wal != nil {
		err = s.wal.Close()
		s.wal = nil
	}
	s.releaseLock()
	return err
}

// Remove closes the store and deletes its directory.
func (s *Store) Remove() error {
	s.Close()
	return os.RemoveAll(s.dir)
}

// acquireLock takes the exclusive, non-blocking flock on the store
// directory's lock file. The kernel drops it on process death (including
// kill -9), so crashes never wedge a restart, while a concurrently running
// second opener — same process or another — fails immediately.
func (s *Store) acquireLock() error {
	f, err := os.OpenFile(filepath.Join(s.dir, lockFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: lock file: %w", err)
	}
	if err := flockExclusive(f); err != nil {
		f.Close()
		return fmt.Errorf("store: %s is in use by another opener: %w", s.dir, err)
	}
	s.lock = f
	return nil
}

func (s *Store) releaseLock() {
	if s.lock != nil {
		s.lock.Close() // closing the descriptor releases the flock
		s.lock = nil
	}
}
