package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/store"
)

// The instant-recovery test layer (DESIGN.md §11): a checkpointed graph must
// come back through the fast path — maintainer state imported from the
// snapshot's state section instead of recomputed — and every way that section
// can be missing or damaged must land on the rebuild path with a reason,
// serving answers indistinguishable from the fast path either way.

// checkpointedDir streams enough batches through a durable registry to force
// at least one state-carrying checkpoint, closes it, and returns the ground
// truth graph the durable history implies.
func checkpointedDir(t *testing.T, dir, mode string, seed uint64, nBatches int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0xFA57))
	base := gen.BarabasiAlbert(60, 3, seed)
	script := makeScript(rng, graph.DynFromGraph(base), nBatches)
	reg := durableRegistry(dir)
	if _, err := reg.Add("g", base, mode, 10); err != nil {
		t.Fatal(err)
	}
	for _, sb := range script {
		if _, err := reg.ApplyEdges("g", sb.edges, sb.insert); err != nil {
			t.Fatal(err)
		}
	}
	info, err := reg.Info("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.Checkpoints < 1 {
		t.Fatalf("setup produced no checkpoint (%d batches)", nBatches)
	}
	reg.Close()
	return stateAfter(base, script, nBatches)
}

// recoverDir reopens dir and returns the (single) recovered GraphInfo plus
// the registry, which the caller must Close.
func recoverDir(t *testing.T, dir string) (*Registry, GraphInfo) {
	t.Helper()
	reg := durableRegistry(dir)
	infos, err := reg.Recover()
	if err != nil {
		reg.Close()
		t.Fatal(err)
	}
	if len(infos) != 1 {
		reg.Close()
		t.Fatalf("recovered %d graphs, want 1", len(infos))
	}
	return reg, infos[0]
}

// TestRecoveryFastPath: after a state-carrying checkpoint, recovery imports
// the maintainer state (recover_path=fast, no reason) and the served answers
// match a clean recompute of the durable history — for both maintenance
// modes, including a WAL tail replayed on top of the imported state, and the
// fast-recovered registry keeps taking durable writes that survive a second
// restart.
func TestRecoveryFastPath(t *testing.T) {
	const nBatches = 7 // checkpoint-every-3 → checkpoint at 6, one tail batch
	for _, mode := range []string{ModeLocal, ModeLazy} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			want := checkpointedDir(t, dir, mode, 11, nBatches)

			reborn, gi := recoverDir(t, dir)
			if gi.RecoverPath != "fast" || gi.RecoverReason != "" {
				t.Fatalf("recover_path=%q reason=%q, want fast with no reason", gi.RecoverPath, gi.RecoverReason)
			}
			assertRecovered(t, reborn, "g", mode, want)

			// Still a fully working durable pipeline after a fast boot.
			if _, err := reborn.ApplyEdges("g", [][2]int32{{0, 7}}, false); err != nil {
				t.Fatal(err)
			}
			mirror := graph.DynFromGraph(want)
			_ = mirror.DeleteEdge(0, 7)
			want2 := mirror.Freeze(1)
			assertRecovered(t, reborn, "g", mode, want2)
			reborn.Close()

			final, gi2 := recoverDir(t, dir)
			defer final.Close()
			if gi2.RecoverPath == "" {
				t.Fatal("second recovery reported no recover_path")
			}
			assertRecovered(t, final, "g", mode, want2)
		})
	}
}

// TestRecoveryFallbackPreState: a store that never took a state-carrying
// checkpoint (its snapshot is the version-1 file Create wrote — the pre-PR6
// on-disk era) still recovers, via rebuild, with the reason saying why.
func TestRecoveryFallbackPreState(t *testing.T) {
	for _, mode := range []string{ModeLocal, ModeLazy} {
		t.Run(mode, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(3, 0xFA57))
			base := gen.BarabasiAlbert(50, 3, 3)
			script := makeScript(rng, graph.DynFromGraph(base), 2) // below the every-3 policy
			dir := t.TempDir()
			reg := durableRegistry(dir)
			if _, err := reg.Add("g", base, mode, 10); err != nil {
				t.Fatal(err)
			}
			for _, sb := range script {
				if _, err := reg.ApplyEdges("g", sb.edges, sb.insert); err != nil {
					t.Fatal(err)
				}
			}
			reg.Close()

			reborn, gi := recoverDir(t, dir)
			defer reborn.Close()
			if gi.RecoverPath != "rebuild" || gi.RecoverReason == "" {
				t.Fatalf("recover_path=%q reason=%q, want rebuild with a reason", gi.RecoverPath, gi.RecoverReason)
			}
			assertRecovered(t, reborn, "g", mode, stateAfter(base, script, len(script)))
		})
	}
}

// TestRecoveryFallbackCorruption is the serving half of the corruption
// matrix: each defect is carved into the snapshot file of a healthy
// checkpointed store, and recovery must degrade to the rebuild path — same
// answers, recover_path=rebuild, a non-empty reason — never fail, never
// serve from the damaged state.
func TestRecoveryFallbackCorruption(t *testing.T) {
	stateMagic := []byte("EBMS")
	cases := map[string]func(t *testing.T, snap []byte) []byte{
		"truncated section": func(t *testing.T, snap []byte) []byte {
			return snap[:len(snap)-40]
		},
		"flipped state crc": func(t *testing.T, snap []byte) []byte {
			snap[len(snap)-1] ^= 0x01
			return snap
		},
		"state version bump": func(t *testing.T, snap []byte) []byte {
			at := bytes.LastIndex(snap, stateMagic)
			if at < 0 {
				t.Fatal("no state section in checkpointed snapshot")
			}
			binary.LittleEndian.PutUint16(snap[at+4:at+6], store.StateVersion+1)
			return snap
		},
		"evidence/CSR mismatch": func(t *testing.T, snap []byte) []byte {
			at := bytes.LastIndex(snap, stateMagic)
			if at < 0 {
				t.Fatal("no state section in checkpointed snapshot")
			}
			n := binary.LittleEndian.Uint32(snap[at+8 : at+12])
			binary.LittleEndian.PutUint32(snap[at+8:at+12], n+5)
			return snap
		},
	}
	for _, mode := range []string{ModeLocal, ModeLazy} {
		for name, mutate := range cases {
			t.Run(mode+"/"+name, func(t *testing.T) {
				dir := t.TempDir()
				want := checkpointedDir(t, dir, mode, 17, 7)
				snapPath := filepath.Join(store.GraphDir(dir, "g"), "snapshot.ebws")
				snap, err := os.ReadFile(snapPath)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(snapPath, mutate(t, snap), 0o644); err != nil {
					t.Fatal(err)
				}

				reborn, gi := recoverDir(t, dir)
				defer reborn.Close()
				if gi.RecoverPath != "rebuild" || gi.RecoverReason == "" {
					t.Fatalf("recover_path=%q reason=%q, want rebuild with a reason", gi.RecoverPath, gi.RecoverReason)
				}
				t.Logf("fallback reason: %s", gi.RecoverReason)
				assertRecovered(t, reborn, "g", mode, want)
			})
		}
	}
}

// TestRecoveryFastVsRebuildEquivalence pins the two recovery paths against
// each other on the same durable history: one registry boots fast, another
// boots from the same bytes with the state section stripped (forcing a
// rebuild), and every maintained per-vertex score and top-k shape must agree
// between them — on top of both agreeing with the clean recompute.
func TestRecoveryFastVsRebuildEquivalence(t *testing.T) {
	for _, mode := range []string{ModeLocal, ModeLazy} {
		t.Run(mode, func(t *testing.T) {
			fastDir := t.TempDir()
			want := checkpointedDir(t, fastDir, mode, 23, 7)

			// Clone the store directory, then chop the clone's snapshot back
			// to its graph part: same graph, same WAL tail, no state section.
			rebuildDir := t.TempDir()
			src, dst := store.GraphDir(fastDir, "g"), store.GraphDir(rebuildDir, "g")
			if err := os.MkdirAll(dst, 0o755); err != nil {
				t.Fatal(err)
			}
			ents, err := os.ReadDir(src)
			if err != nil {
				t.Fatal(err)
			}
			for _, ent := range ents {
				data, err := os.ReadFile(filepath.Join(src, ent.Name()))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			snapPath := filepath.Join(dst, "snapshot.ebws")
			snap, err := os.ReadFile(snapPath)
			if err != nil {
				t.Fatal(err)
			}
			at := bytes.LastIndex(snap, []byte("EBMS"))
			if at < 0 {
				t.Fatal("no state section in checkpointed snapshot")
			}
			if err := os.WriteFile(snapPath, snap[:at], 0o644); err != nil {
				t.Fatal(err)
			}

			fast, fgi := recoverDir(t, fastDir)
			defer fast.Close()
			rebuilt, rgi := recoverDir(t, rebuildDir)
			defer rebuilt.Close()
			if fgi.RecoverPath != "fast" {
				t.Fatalf("fast dir recovered via %q (%s)", fgi.RecoverPath, fgi.RecoverReason)
			}
			if rgi.RecoverPath != "rebuild" || rgi.RecoverReason == "" {
				t.Fatalf("stripped dir recovered via %q (%s)", rgi.RecoverPath, rgi.RecoverReason)
			}

			assertRecovered(t, fast, "g", mode, want)
			assertRecovered(t, rebuilt, "g", mode, want)
			algos := []string{AlgoOpt, AlgoBase, AlgoScores}
			if mode == ModeLazy {
				algos = []string{AlgoOpt, AlgoBase, AlgoLazy}
			}
			for _, k := range []int{1, 5, 10} {
				for _, algo := range algos {
					fr, err := fast.TopK("g", k, algo, 1.05)
					if err != nil {
						t.Fatal(err)
					}
					rr, err := rebuilt.TopK("g", k, algo, 1.05)
					if err != nil {
						t.Fatal(err)
					}
					assertTopKEquiv(t, fmt.Sprintf("fast-vs-rebuild k=%d algo=%s", k, algo), fr.Results, rr.Results)
				}
			}
		})
	}
}
