package metrics

import (
	"fmt"
	"math"
	"sort"
)

// TopKOverlap returns |A ∩ B| / max(|A|, |B|) over two id sets.
func TopKOverlap(a, b []int32) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	in := make(map[int32]struct{}, len(a))
	for _, x := range a {
		in[x] = struct{}{}
	}
	inter := 0
	for _, y := range b {
		if _, ok := in[y]; ok {
			inter++
		}
	}
	den := len(a)
	if len(b) > den {
		den = len(b)
	}
	return float64(inter) / float64(den)
}

// Jaccard returns |A ∩ B| / |A ∪ B| over two id sets.
func Jaccard(a, b []int32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	in := make(map[int32]struct{}, len(a))
	for _, x := range a {
		in[x] = struct{}{}
	}
	inter := 0
	seen := make(map[int32]struct{}, len(b))
	for _, y := range b {
		if _, dup := seen[y]; dup {
			continue
		}
		seen[y] = struct{}{}
		if _, ok := in[y]; ok {
			inter++
		}
	}
	union := len(in) + len(seen) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// SpearmanRho returns the Spearman rank correlation between two score
// vectors over the same vertex set (index-aligned). Ties receive fractional
// (average) ranks, the standard treatment. Returns an error if the lengths
// differ or fewer than two vertices are given.
func SpearmanRho(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(x), len(y))
	}
	n := len(x)
	if n < 2 {
		return 0, fmt.Errorf("metrics: need at least 2 observations, got %d", n)
	}
	rx := fractionalRanks(x)
	ry := fractionalRanks(y)
	// Pearson correlation of the rank vectors (robust to ties).
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += rx[i]
		my += ry[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := rx[i]-mx, ry[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("metrics: constant ranking, correlation undefined")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// fractionalRanks assigns 1-based ranks with ties averaged.
func fractionalRanks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
