package bench

// The PR 9 temporal-serving measurement: what a sliding window costs at the
// drain and at the read path. The drain rows time one durable-ack write
// drain while the expiry batch it synthesizes covers 0/16/256/2048 edges —
// with the ring-bucketed timestamp sidecar the cost above the b0 baseline
// must track the expired count, not the graph (DESIGN.md §14). The read
// rows are HTTP top-k percentiles against a windowed graph under open-loop
// churn: back-stamped inserts expiring within the window plus delete
// batches, the steady state a "trending edges" deployment serves in.

import (
	"context"
	"net/http/httptest"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/server"
)

// expiryWindow is the drain measurement's window: long enough (1h) that the
// idle ticker (window/4 capped at 1s) rarely steals the synthesized batch
// from the timed drain — and every sample is verified against the expiry
// counters anyway.
const expiryWindow = time.Hour

// measureWindow runs the temporal-serving benchmark for dataset graph g.
func measureWindow(e *PRBenchEntry, g *graph.Graph) {
	e.ExpiryDrainB0Ns = expiryDrain(g, 0)
	e.ExpiryDrainB16Ns = expiryDrain(g, 16)
	e.ExpiryDrainB256Ns = expiryDrain(g, 256)
	e.ExpiryDrainB2048Ns = expiryDrain(g, 2048)
	if d := e.ExpiryDrainB2048Ns - e.ExpiryDrainB0Ns; d > 0 {
		e.ExpiryPerEdgeNs = float64(d) / 2048
	}
	measureWindowedRead(e, g)
}

// expiryDrain times one probe write drain on a durable windowed registry
// while a cohort of `size` back-stamped edges crosses the window, and
// returns the median of verified samples. Each round re-inserts the cohort
// with stamps already past the cutoff, so the very next drain — the timed
// probe — synthesizes, WALs, and applies the whole expiry batch; rounds
// where the idle ticker stole the batch (the expiry counters say so) are
// discarded and retried.
func expiryDrain(g *graph.Graph, size int) int64 {
	dir, err := os.MkdirTemp("", "egobw-prbench-window-*")
	must(err)
	defer os.RemoveAll(dir)

	var clk atomic.Int64
	clk.Store(1_000_000)
	reg := server.NewRegistry(
		server.WithDataDir(dir), server.WithBuildWorkers(4),
		// No checkpoints mid-measurement: a checkpoint inside a timed drain
		// would bill a full snapshot encode to the expiry row.
		server.WithCheckpointPolicy(1<<30, 1<<62),
		server.WithClock(clk.Load))
	defer reg.Close()
	const name = "w"
	if _, err := reg.AddWindowed(name, g, server.ModeLocal, 10, expiryWindow); err != nil {
		panic(err)
	}

	picked := pickEdges(g, size+1, 0x7E4)
	if len(picked) < size+1 {
		return 0 // dataset smaller than the cohort tier: leave the row zero
	}
	cohort, probe := picked[:size], picked[size]
	if size > 0 {
		// The cohort leaves the graph once up front; every round re-inserts
		// it back-stamped and lets the timed drain expire it again.
		if _, err := reg.ApplyEdges(name, cohort, false); err != nil {
			panic(err)
		}
	}

	var samples []int64
	probeInsert := false // the probe edge exists; start by deleting it
	for attempt := 0; len(samples) < 5 && attempt < 12; attempt++ {
		if size > 0 {
			stamps := make([]int64, size)
			stamp := clk.Load() - int64(expiryWindow/time.Millisecond) - 1
			for i := range stamps {
				stamps[i] = stamp
			}
			if _, err := reg.ApplyEdgesStamped(name, cohort, stamps, true, server.AckDurable); err != nil {
				panic(err)
			}
		}
		before, err := reg.Info(name)
		must(err)
		t0 := time.Now()
		if _, err := reg.ApplyEdges(name, [][2]int32{probe}, probeInsert); err != nil {
			panic(err)
		}
		dt := time.Since(t0)
		probeInsert = !probeInsert
		after, err := reg.Info(name)
		must(err)
		if after.ExpiredEdges-before.ExpiredEdges == int64(size) {
			samples = append(samples, int64(dt))
		}
	}
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2]
}

// measureWindowedRead serves dataset graph g with a real-clock 2s window
// over HTTP and offers the open-loop churn mix: 30% writes, a quarter of
// them deletes of recent inserts, the rest back-stamped up to 1.5s so much
// of the stream expires during the run. The read rows are what a windowed
// top-k costs while retention churns underneath it.
func measureWindowedRead(e *PRBenchEntry, g *graph.Graph) {
	srv := server.New(server.WithRegistryOptions(server.WithBuildWorkers(4)))
	defer srv.Registry().Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	name := e.Dataset
	if _, err := srv.Registry().AddWindowed(name, g, server.ModeLocal, 10, 2*time.Second); err != nil {
		panic(err)
	}
	res, err := load.Run(context.Background(), load.Config{
		ReadURL:     ts.URL,
		Graph:       name,
		Rate:        1500,
		WriteFrac:   0.3,
		DeleteFrac:  0.25,
		StampSkewMS: 1500,
		Batch:       4,
		Duration:    1200 * time.Millisecond,
		K:           100,
		Algo:        "scores",
		Seed:        9,
	})
	must(err)
	e.WindowedReadP50Ns = int64(res.Reads.P50)
	e.WindowedReadP99Ns = int64(res.Reads.P99)
	e.WindowedExpiryBatches = res.ExpiryBatches
	e.WindowedExpiredEdges = res.ExpiredEdges
}
