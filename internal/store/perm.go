package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/graph"
)

// Relabel-permutation section of a version-2 snapshot. When the serving
// layer runs with degree-ordered relabeling it persists the permutation
// alongside the graph, so recovery reuses it instead of re-deriving one —
// the recovered internal layout (and thus every cached artifact keyed on
// it) round-trips. The section mirrors the maintainer-state frame and
// follows it (or the graph part directly, when no state was checkpointed),
// zero-padded to the next 8-byte boundary:
//
//	[S+0]  magic      [4]byte "EBRL"
//	[S+4]  version    uint16 (PermVersion)
//	[S+6]  reserved   uint16 (must be 0)
//	[S+8]  n          uint32 (must equal the graph part's n)
//	[S+12] reserved   uint32 (must be 0)
//	[S+16] payloadLen uint64 = 4n, then n × int32 perm (perm[external] = internal)
//	[..]   crc        uint32 (IEEE, over the section from S through payload)
//
// Like the state section, its CRC covers only itself: a corrupt permutation
// never blocks loading the graph or the maintainer state — recovery falls
// back to recomputing the relabeling, which is always a valid substitute
// (any bijection serves correctly; degree order is a layout heuristic).
const (
	// PermVersion is the relabel-permutation section format version.
	PermVersion = 1
)

var permMagic = [4]byte{'E', 'B', 'R', 'L'}

// EncodeSnapshotSections serializes g, its metadata, and any of the optional
// trailing sections: maintainer state and the relabel permutation. With
// neither present it degrades to the bit-identical version-1 format.
// EncodeSnapshotFull additionally carries the temporal section.
func EncodeSnapshotSections(g *graph.Graph, meta SnapshotMeta, st *MaintainerState, perm []int32) []byte {
	return EncodeSnapshotFull(g, meta, st, perm, nil)
}

// appendPermSection appends the framed relabel-permutation section to buf
// (whose length must already be 8-aligned, making the int32 payload
// mappable).
func appendPermSection(buf []byte, n uint32, perm []int32) []byte {
	start := len(buf)
	buf = append(buf, permMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, PermVersion)
	buf = append(buf, 0, 0)
	buf = binary.LittleEndian.AppendUint32(buf, n)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(4*len(perm)))
	buf = appendWords(buf, perm)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// DecodeSnapshotPerm extracts the relabel permutation of a snapshot image,
// or (nil, nil) when the snapshot carries none (every version-1 file, and
// version-2 files checkpointed without relabeling). An error means the
// section is present but unusable — truncated, checksum mismatch, version
// skew — and the caller should recompute the relabeling instead. The
// returned slice aliases data zero-copy on little-endian hosts; the caller
// must not modify data afterwards.
func DecodeSnapshotPerm(data []byte) ([]int32, error) {
	version, n, graphLen, err := snapshotLayout(data)
	if err != nil {
		return nil, err
	}
	if version == SnapshotVersion {
		return nil, nil
	}
	pos, err := skipSectionPadding(data, graphLen)
	if err != nil || pos == uint64(len(data)) {
		return nil, err
	}
	if uint64(len(data))-pos < stateHeaderLen+4 {
		return nil, fmt.Errorf("store: relabel section truncated (%d bytes after graph part)", uint64(len(data))-pos)
	}
	if [4]byte(data[pos:pos+4]) == stateMagic {
		// Skip the maintainer-state section by its frame; its content is
		// DecodeSnapshotState's concern.
		payloadLen := binary.LittleEndian.Uint64(data[pos+16 : pos+24])
		if payloadLen > uint64(len(data))-pos-stateHeaderLen-4 {
			return nil, fmt.Errorf("store: maintainer-state section overruns the snapshot")
		}
		pos += stateHeaderLen + payloadLen + 4
		pos, err = skipSectionPadding(data, pos)
		if err != nil || pos == uint64(len(data)) {
			return nil, err
		}
	}
	sec := data[pos:]
	if uint64(len(sec)) < stateHeaderLen+4 {
		return nil, fmt.Errorf("store: relabel section truncated (%d trailing bytes)", len(sec))
	}
	if [4]byte(sec[0:4]) == stampsMagic {
		// Sections are ordered state, perm, temporal: a temporal section
		// here means no permutation was checkpointed.
		return nil, nil
	}
	if [4]byte(sec[0:4]) != permMagic {
		return nil, fmt.Errorf("store: bad relabel-section magic %q", sec[0:4])
	}
	if v := binary.LittleEndian.Uint16(sec[4:6]); v != PermVersion {
		return nil, fmt.Errorf("store: unsupported relabel-section version %d (this build reads %d)", v, PermVersion)
	}
	if binary.LittleEndian.Uint16(sec[6:8]) != 0 || binary.LittleEndian.Uint32(sec[12:16]) != 0 {
		return nil, fmt.Errorf("store: corrupt relabel-section header (reserved fields)")
	}
	if secN := binary.LittleEndian.Uint32(sec[8:12]); uint64(secN) != n {
		return nil, fmt.Errorf("store: relabel section covers n=%d, snapshot graph has n=%d", secN, n)
	}
	if n == 0 {
		return nil, fmt.Errorf("store: relabel section present for an empty graph")
	}
	payloadLen := binary.LittleEndian.Uint64(sec[16:24])
	if payloadLen != 4*n {
		return nil, fmt.Errorf("store: relabel payload is %d bytes, n=%d implies %d", payloadLen, n, 4*n)
	}
	if uint64(len(sec)) < stateHeaderLen+payloadLen+4 {
		return nil, fmt.Errorf("store: relabel section truncated (%d of %d bytes)",
			len(sec), stateHeaderLen+payloadLen+4)
	}
	// The section frames its own length; bytes beyond it belong to the
	// temporal section and are not examined here.
	sec = sec[:stateHeaderLen+payloadLen+4]
	body, crcBytes := sec[:stateHeaderLen+payloadLen], sec[stateHeaderLen+payloadLen:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(crcBytes); got != want {
		return nil, fmt.Errorf("store: relabel-section checksum mismatch (file %#x, computed %#x)", want, got)
	}
	return aliasWords[int32](body[stateHeaderLen:], n), nil
}

// skipSectionPadding advances pos over the zero padding to the next 8-byte
// boundary (or to end of input), erroring on a nonzero pad byte.
func skipSectionPadding(data []byte, pos uint64) (uint64, error) {
	for pos%8 != 0 && pos < uint64(len(data)) {
		if data[pos] != 0 {
			return 0, fmt.Errorf("store: nonzero padding between snapshot sections")
		}
		pos++
	}
	return pos, nil
}
