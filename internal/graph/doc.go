// Package graph provides the graph substrate used by every algorithm in this
// repository: an immutable CSR (compressed sparse row) representation for the
// static algorithms, a mutable adjacency-list representation for the dynamic
// maintenance algorithms, the degree-based total order ≺ from the paper, the
// oriented graph G+ used for once-per-edge and once-per-triangle processing,
// sorted-set intersection kernels, edge-list IO, and subgraph sampling for the
// scalability experiments.
//
// Vertices are dense int32 identifiers in [0, NumVertices). Graphs are
// undirected, unweighted, with no self-loops and no parallel edges; builders
// enforce this by removing self-loops and deduplicating.
package graph
