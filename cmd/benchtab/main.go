// Command benchtab regenerates the paper's evaluation tables and figures on
// the synthetic dataset analogs.
//
// Usage:
//
//	benchtab -exp all            # every experiment, quick grids
//	benchtab -exp fig6 -full     # one experiment, the paper's full grids
//	benchtab -list               # what is available
//	benchtab -prbench BENCH.json # machine-readable regression suite
//	benchtab -recall dblp,ir     # approx-tier latency/recall frontier
//	benchtab -recall dblp -min-recall 0.9
//	                             # ...and exit 1 below the recall floor
//	benchtab -readtax-guard BENCH_PR9.json,BENCH_PR10.json
//	                             # flag overlay_read_tax drift > 10%
//
// EGOBW_SCALE=2 benchtab ... doubles every dataset's vertex count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, table2, fig6..fig12, table3, table4, all)")
	full := flag.Bool("full", false, "use the paper's full parameter grids (slower)")
	list := flag.Bool("list", false, "list experiments and exit")
	prbench := flag.String("prbench", "", "write the machine-readable bench-regression JSON to this path and exit")
	recall := flag.String("recall", "", "comma-separated dataset names: run the approx-tier latency/recall frontier and exit")
	minRecall := flag.Float64("min-recall", 0, "with -recall: exit 1 if any dataset's recall@100 at the default eps falls below this floor")
	guard := flag.String("readtax-guard", "", "two bench JSON paths, base,current: exit 1 if overlay_read_tax drifted more than -readtax-drift on any dataset")
	drift := flag.Float64("readtax-drift", 0.10, "relative overlay_read_tax drift threshold for -readtax-guard")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.What)
		}
		return
	}
	if *guard != "" {
		paths := strings.Split(*guard, ",")
		if len(paths) != 2 {
			fmt.Fprintln(os.Stderr, "benchtab: -readtax-guard wants exactly two paths: base.json,current.json")
			os.Exit(2)
		}
		base, err := bench.LoadPRBench(strings.TrimSpace(paths[0]))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cur, err := bench.LoadPRBench(strings.TrimSpace(paths[1]))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		flags := bench.ReadTaxDrift(base, cur, *drift)
		for _, f := range flags {
			fmt.Println("benchtab: read-tax drift:", f)
		}
		if len(flags) > 0 {
			os.Exit(1)
		}
		fmt.Printf("benchtab: overlay_read_tax within ±%.0f%% on every shared dataset\n", 100**drift)
		return
	}
	if *recall != "" {
		names := strings.Split(*recall, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		atDefault, err := bench.RecallReport(os.Stdout, names)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *minRecall > 0 {
			ok := true
			for name, r := range atDefault {
				if r < *minRecall {
					fmt.Fprintf(os.Stderr, "benchtab: %s recall@100 %.3f below floor %.3f\n", name, r, *minRecall)
					ok = false
				}
			}
			if !ok {
				os.Exit(1)
			}
		}
		return
	}
	if *prbench != "" {
		if err := bench.WritePRBench(*prbench, []string{"dblp", "ir"}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("benchtab: wrote %s\n", *prbench)
		return
	}
	cfg := bench.Quick(os.Stdout)
	if *full {
		cfg = bench.Full(os.Stdout)
	}
	if err := bench.Run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
