package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/server"
)

// TestRunRejectsBadPreload: run must fail fast on an unknown dataset or an
// invalid maintenance mode instead of starting a half-configured server.
func TestRunRejectsBadPreload(t *testing.T) {
	err := run(config{addr: "127.0.0.1:0", preload: "not-a-dataset", mode: "local", k: 10})
	if err == nil || !strings.Contains(err.Error(), "not-a-dataset") {
		t.Fatalf("unknown dataset: err = %v", err)
	}
	err = run(config{addr: "127.0.0.1:0", preload: "ir", mode: "bogus-mode", k: 10, buildWorkers: 2})
	if err == nil || !strings.Contains(err.Error(), "bogus-mode") {
		t.Fatalf("bad mode: err = %v", err)
	}
}

// TestSetupRecoversDataDir: the boot path must reload graphs persisted by a
// previous process, and a preload of an already-recovered name must be
// skipped rather than fatal.
func TestSetupRecoversDataDir(t *testing.T) {
	dir := t.TempDir()

	// "Previous process": a durable registry with one graph and an update.
	reg := server.NewRegistry(server.WithDataDir(dir), server.WithBuildWorkers(1))
	g := graph.MustFromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}})
	if _, err := reg.Add("demo", g, server.ModeLocal, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.ApplyEdges("demo", [][2]int32{{1, 3}}, true); err != nil {
		t.Fatal(err)
	}
	// Stand-in for process death: releases the store locks (content is
	// already durable; a real kill would release them via the kernel).
	reg.Close()

	srv, err := setup(config{dataDir: dir, ckptEvery: 4})
	if err != nil {
		t.Fatalf("setup with data dir: %v", err)
	}
	info, err := srv.Registry().Info("demo")
	if err != nil {
		t.Fatalf("recovered graph missing: %v", err)
	}
	if info.M != 6 || !info.Persisted || info.WALSeq != 1 {
		t.Fatalf("recovered info = %+v, want m=6 persisted wal_seq=1", info)
	}
}

// TestSetupRejectsCorruptDataDir: a data directory whose contents cannot be
// recovered must fail the boot loudly, never serve partial state silently.
func TestSetupRejectsCorruptDataDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "stray.txt"), []byte("not a graph dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := setup(config{dataDir: dir}); err == nil {
		t.Fatal("setup accepted a data dir with unrecognized contents")
	}
}
