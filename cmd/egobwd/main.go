// Command egobwd is the ego-betweenness query daemon: it serves the
// internal/server HTTP/JSON API, holding any number of named graphs in
// memory and answering top-k / per-vertex queries lock-free against
// immutable snapshots while edge updates stream in.
//
// Usage:
//
//	egobwd                            # serve on :8080, empty registry
//	egobwd -addr :9090                # another port
//	egobwd -preload dblp,ir           # pre-register dataset analogs
//	egobwd -preload dblp -mode lazy -k 50
//	egobwd -build-workers 8           # snapshot-build worker budget
//
// Walkthrough (see README.md for the full API):
//
//	curl -X POST localhost:8080/graphs \
//	    -d '{"name":"demo","generator":{"model":"ba","n":5000,"mper":4,"seed":7}}'
//	curl 'localhost:8080/graphs/demo/topk?k=10'
//	curl -X POST localhost:8080/graphs/demo/edges -d '{"edges":[[1,4999]]}'
//	curl 'localhost:8080/graphs/demo/stats'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	preload := flag.String("preload", "", "comma-separated dataset names to register at startup (see egobw -dataset)")
	mode := flag.String("mode", server.ModeLocal, "maintenance mode for preloaded graphs: local or lazy")
	k := flag.Int("k", 10, "maintained k for lazy-mode preloads")
	buildWorkers := flag.Int("build-workers", 0, "worker budget for snapshot builds (initial score computation and per-batch CSR export); 0 = GOMAXPROCS")
	flag.Parse()

	if err := run(*addr, *preload, *mode, *k, *buildWorkers); err != nil {
		fmt.Fprintln(os.Stderr, "egobwd:", err)
		os.Exit(1)
	}
}

func run(addr, preload, mode string, k, buildWorkers int) error {
	srv := server.New(server.WithRegistryOptions(server.WithBuildWorkers(buildWorkers)))
	for _, name := range strings.Split(preload, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		g, err := dataset.Load(name)
		if err != nil {
			return fmt.Errorf("preload %q: %w", name, err)
		}
		info, err := srv.Registry().Add(name, g, mode, k)
		if err != nil {
			return fmt.Errorf("preload %q: %w", name, err)
		}
		log.Printf("egobwd: preloaded %q mode=%s n=%d m=%d", info.Name, info.Mode, info.N, info.M)
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("egobwd: serving on %s", addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Printf("egobwd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
