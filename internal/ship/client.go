package ship

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
)

// maxErrorBody bounds how much of an error response is read into messages.
const maxErrorBody = 4 << 10

// Client speaks the shipping protocol to a leader. The base URL is mutable
// (SetBase) so a follower can be repointed — e.g. at a restarted leader on a
// new port — without rebuilding its replication state.
type Client struct {
	base atomic.Pointer[string]
	hc   *http.Client
}

// NewClient returns a client for the leader at base (scheme://host[:port],
// with or without a trailing slash). hc defaults to http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{hc: hc}
	c.SetBase(base)
	return c
}

// SetBase repoints the client at a different leader address.
func (c *Client) SetBase(base string) {
	base = strings.TrimRight(base, "/")
	c.base.Store(&base)
}

// Base returns the current leader address.
func (c *Client) Base() string { return *c.base.Load() }

// Graphs lists the graphs the leader ships.
func (c *Client) Graphs(ctx context.Context) ([]string, error) {
	body, _, err := c.get(ctx, "/ship/graphs")
	if err != nil {
		return nil, err
	}
	var names []string
	if err := json.Unmarshal(body, &names); err != nil {
		return nil, fmt.Errorf("ship: malformed graph list: %w", err)
	}
	return names, nil
}

// Status fetches the leader's current shipping position for one graph.
func (c *Client) Status(ctx context.Context, graph string) (Status, error) {
	body, _, err := c.get(ctx, "/ship/graphs/"+url.PathEscape(graph)+"/status")
	if err != nil {
		return Status{}, err
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		return Status{}, fmt.Errorf("ship: malformed status: %w", err)
	}
	return st, nil
}

// Checkpoint fetches the leader's current snapshot image for one graph.
func (c *Client) Checkpoint(ctx context.Context, graph string) ([]byte, error) {
	body, _, err := c.get(ctx, "/ship/graphs/"+url.PathEscape(graph)+"/checkpoint")
	return body, err
}

// WALTail fetches segment bytes from offset to the leader's durable end.
// leaderSeq is the leader's durable sequence at read time (X-Ship-Seq). An
// empty data slice with a nil error means the follower is at the end of the
// durable log. ErrSegmentGone means the segment was checkpointed away.
func (c *Client) WALTail(ctx context.Context, graph string, segment uint64, offset int64) (data []byte, leaderSeq uint64, err error) {
	path := fmt.Sprintf("/ship/graphs/%s/wal?segment=%d&offset=%d", url.PathEscape(graph), segment, offset)
	body, hdr, err := c.get(ctx, path)
	if err != nil {
		return nil, 0, err
	}
	leaderSeq, err = strconv.ParseUint(hdr.Get(HeaderSeq), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("ship: leader omitted %s on wal response: %w", HeaderSeq, err)
	}
	return body, leaderSeq, nil
}

// get issues one GET against the current base, mapping error statuses back
// to the protocol sentinels.
func (c *Client) get(ctx context.Context, path string) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base()+path, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		return nil, nil, statusToError(resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("ship: reading leader response: %w", err)
	}
	return body, resp.Header, nil
}
