package brandes

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// BetweennessApprox estimates betweenness centrality from `pivots` sampled
// BFS sources (Brandes–Pich style pivot sampling), scaled by n/pivots so the
// estimates are comparable to exact values. This is the standard cheap
// alternative to exact Brandes that the paper's related-work section cites
// (approximate betweenness, e.g. Chehreghani; Furno et al.); the repository
// includes it so the effectiveness experiments can compare ego-betweenness
// not just against exact betweenness but also against the approximation at
// comparable cost — see the ablation benchmark in bench_test.go.
//
// Cost: O(pivots · (n + m)) with t parallel workers (t ≤ 0 = GOMAXPROCS).
// Deterministic for a fixed seed.
func BetweennessApprox(g *graph.Graph, pivots int, seed uint64, t int) []float64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	if pivots <= 0 || int32(pivots) > n {
		pivots = int(n)
	}
	if t <= 0 {
		t = runtime.GOMAXPROCS(0)
	}
	// Sample pivot sources without replacement.
	rng := rand.New(rand.NewPCG(seed, 0xA110C8))
	sources := samplePivots(rng, n, pivots)

	partial := make([][]float64, t)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < t; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			acc := make([]float64, n)
			w := acquireWorker(g)
			defer releaseWorker(w)
			for {
				idx := cursor.Add(1) - 1
				if idx >= int64(len(sources)) {
					break
				}
				w.accumulate(sources[idx], acc)
			}
			partial[id] = acc
		}(i)
	}
	wg.Wait()
	bc := make([]float64, n)
	for _, acc := range partial {
		for v, x := range acc {
			bc[v] += x
		}
	}
	// Scale sampled directed dependencies up to the full-source estimate,
	// then halve for the undirected pair convention (as in Betweenness).
	scale := float64(n) / float64(pivots) / 2
	for v := range bc {
		bc[v] *= scale
	}
	return bc
}

// samplePivots draws pivots distinct vertices uniformly from [0, n) by a
// partial Fisher–Yates shuffle over a sparse swap map: only the entries an
// actual swap touched are stored, so allocation is O(pivots) rather than
// the O(n) of materializing a full permutation — on a million-vertex graph
// with a few hundred pivots that is the difference between kilobytes and
// megabytes per call. Draw i swaps position i with a uniform position in
// [i, n); the map records displaced values where the dense permutation
// array would.
func samplePivots(rng *rand.Rand, n int32, pivots int) []int32 {
	sources := make([]int32, pivots)
	swapped := make(map[int32]int32, 2*pivots)
	at := func(i int32) int32 {
		if v, ok := swapped[i]; ok {
			return v
		}
		return i
	}
	for i := 0; i < pivots; i++ {
		j := int32(i) + rng.Int32N(n-int32(i))
		sources[i] = at(j)
		swapped[j] = at(int32(i))
	}
	return sources
}
