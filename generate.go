package egobw

import (
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Seeded graph generators, re-exported for building workloads. All are
// deterministic functions of their parameters and seed.

// GenerateER samples a uniform Erdős–Rényi G(n, m) graph.
func GenerateER(n int32, m int64, seed uint64) *Graph {
	return gen.ErdosRenyi(n, m, seed)
}

// GenerateBA grows a Barabási–Albert preferential-attachment graph where
// each new vertex attaches to mPer existing ones.
func GenerateBA(n int32, mPer int, seed uint64) *Graph {
	return gen.BarabasiAlbert(n, mPer, seed)
}

// GenerateChungLu samples the Chung–Lu expected-degree model with power-law
// exponent gamma, target average degree avgDeg, and per-vertex weight cap
// maxDeg (0 = uncapped).
func GenerateChungLu(n int32, gamma, avgDeg float64, maxDeg int32, seed uint64) *Graph {
	return gen.ChungLu(n, gamma, avgDeg, maxDeg, seed)
}

// GenerateWS builds a Watts–Strogatz small-world graph (ring degree k,
// rewiring probability beta).
func GenerateWS(n int32, k int, beta float64, seed uint64) *Graph {
	return gen.WattsStrogatz(n, k, beta, seed)
}

// GenerateAffiliation builds a collaboration-style graph from overlapping
// community cliques (the DBLP-like model).
func GenerateAffiliation(nAuthors int32, nCommunities int, meanSize, p float64, seed uint64) *Graph {
	return gen.Affiliation(nAuthors, nCommunities, meanSize, p, seed)
}

// LoadDataset returns one of the named benchmark datasets ("youtube",
// "wikitalk", "dblp", "pokec", "livejournal", "db", "ir") — seeded synthetic
// analogs of the paper's graphs, sized by the EGOBW_SCALE environment
// variable.
func LoadDataset(name string) (*Graph, error) { return dataset.Load(name) }

// DatasetNames lists the dataset registry.
func DatasetNames() []string { return dataset.Names() }

// SampleEdges returns a subgraph keeping a random fraction of edges
// (scalability experiments).
func SampleEdges(g *Graph, frac float64, seed uint64) *Graph {
	return graph.SampleEdges(g, frac, seed)
}

// SampleVertices returns the subgraph induced by a random vertex fraction,
// plus the new-to-original id mapping.
func SampleVertices(g *Graph, frac float64, seed uint64) (*Graph, []int32) {
	return graph.SampleVertices(g, frac, seed)
}
