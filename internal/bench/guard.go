package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// LoadPRBench reads a bench-regression document (the JSON WritePRBench
// emits) back from path.
func LoadPRBench(path string) (PRBench, error) {
	var doc PRBench
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, fmt.Errorf("bench: read %s: %w", path, err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return doc, nil
}

// ReadTaxDrift compares overlay_read_tax per dataset between a baseline
// and a current bench document and returns one human-readable flag per
// dataset whose tax moved by more than threshold (relative, e.g. 0.10 =
// ±10%). Datasets missing from either side, or with a zero tax row, are
// skipped: the guard exists to catch drift like the PR7→PR9 episode —
// where a cross-stage measurement artifact moved the ratio ≈0.93→≈1.12
// with no read-path change — not to gate on incomplete documents.
func ReadTaxDrift(base, cur PRBench, threshold float64) []string {
	baseline := make(map[string]float64, len(base.Datasets))
	for _, d := range base.Datasets {
		baseline[d.Dataset] = d.OverlayReadTax
	}
	var flags []string
	for _, d := range cur.Datasets {
		b, ok := baseline[d.Dataset]
		if !ok || b <= 0 || d.OverlayReadTax <= 0 {
			continue
		}
		drift := d.OverlayReadTax/b - 1
		if math.Abs(drift) > threshold {
			flags = append(flags, fmt.Sprintf(
				"%s: overlay_read_tax %.3f -> %.3f (%+.1f%%, threshold ±%.0f%%)",
				d.Dataset, b, d.OverlayReadTax, 100*drift, 100*threshold))
		}
	}
	return flags
}
