package server

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"testing"

	"repro/internal/ego"
	"repro/internal/gen"
	"repro/internal/graph"
)

// The relabeling equivalence property at the serving layer (DESIGN.md §12):
// degree-ordered relabeling is a pure representation change, so two
// registries serving the same update stream — one relabeling, one not —
// must return byte-identical external-id top-k answers for every k, algo,
// and maintenance mode, and keep doing so after a checkpoint + recovery
// cycle restores the permuted layout from the snapshot's EBRL section.

// relabelAlgoGrid enumerates the (k, algo, θ) query shapes compared between
// the plain and relabeled registries for one maintenance mode.
func relabelAlgoGrid(mode string) []struct {
	k     int
	algo  string
	theta float64
} {
	var grid []struct {
		k     int
		algo  string
		theta float64
	}
	algos := []string{AlgoOpt, AlgoBase}
	if mode == ModeLocal {
		algos = append(algos, AlgoScores)
	} else {
		algos = append(algos, AlgoLazy)
	}
	for _, k := range []int{1, 5, 10} {
		for _, algo := range algos {
			thetas := []float64{1.05}
			if algo == AlgoOpt {
				thetas = []float64{1.05, 2.0}
			}
			for _, th := range thetas {
				grid = append(grid, struct {
					k     int
					algo  string
					theta float64
				}{k, algo, th})
			}
		}
	}
	return grid
}

// assertBitIdentical requires the two result slices to agree exactly:
// same external vertices in the same order, scores equal down to the bit.
func assertBitIdentical(t *testing.T, label string, plain, relab []ego.Result) {
	t.Helper()
	if len(plain) != len(relab) {
		t.Fatalf("%s: plain returned %d results, relabeled %d", label, len(plain), len(relab))
	}
	for i := range plain {
		if plain[i].V != relab[i].V {
			t.Fatalf("%s: rank %d vertex %d (plain) vs %d (relabeled)\nplain %v\nrelab %v",
				label, i, plain[i].V, relab[i].V, plain, relab)
		}
		if math.Float64bits(plain[i].CB) != math.Float64bits(relab[i].CB) {
			t.Fatalf("%s: rank %d score %.17g (plain) vs %.17g (relabeled) — not bitwise equal",
				label, i, plain[i].CB, relab[i].CB)
		}
	}
}

// compareRegistries runs the full query grid against both registries and
// requires bit-identical answers.
func compareRegistries(t *testing.T, plain, relab *Registry, mode, stage string) {
	t.Helper()
	for _, q := range relabelAlgoGrid(mode) {
		pr, err := plain.TopK("g", q.k, q.algo, q.theta)
		if err != nil {
			t.Fatalf("%s: plain TopK(k=%d, %s, θ=%v): %v", stage, q.k, q.algo, q.theta, err)
		}
		rr, err := relab.TopK("g", q.k, q.algo, q.theta)
		if err != nil {
			t.Fatalf("%s: relabeled TopK(k=%d, %s, θ=%v): %v", stage, q.k, q.algo, q.theta, err)
		}
		assertBitIdentical(t, fmt.Sprintf("%s k=%d algo=%s θ=%v", stage, q.k, q.algo, q.theta),
			pr.Results, rr.Results)
	}
	// Per-vertex reads stay in external-id space on both sides.
	n := int32(0)
	if info, err := relab.Info("g"); err == nil {
		n = info.N
	}
	for v := int32(0); v < n; v += 7 {
		pv, err := plain.EgoBetweenness("g", v)
		if err != nil {
			t.Fatal(err)
		}
		rv, err := relab.EgoBetweenness("g", v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(pv.CB) != math.Float64bits(rv.CB) || pv.Degree != rv.Degree {
			t.Fatalf("%s: vertex %d (cb=%v°%d plain, cb=%v°%d relabeled)",
				stage, v, pv.CB, pv.Degree, rv.CB, rv.Degree)
		}
	}
}

// servedRelab returns the relabeling attached to the currently published
// snapshot of graph name, or nil.
func servedRelab(t *testing.T, reg *Registry, name string) *graph.Relabeled {
	t.Helper()
	e, err := reg.get(name)
	if err != nil {
		t.Fatal(err)
	}
	return e.snap.Load().relab
}

func TestRelabelServingEquivalence(t *testing.T) {
	const nBatches = 12
	for _, mode := range []string{ModeLocal, ModeLazy} {
		t.Run(mode, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(5, 0x7E1A))
			base := gen.BarabasiAlbert(80, 3, 5)
			script := makeScript(rng, graph.DynFromGraph(base), nBatches)

			// Checkpoint every batch: each drain forces a synchronous
			// compaction, so the relabeled registry actually serves the
			// permuted CSR (overlay snapshots keep relab nil by design).
			plainDir, relabDir := t.TempDir(), t.TempDir()
			plain := durableRegistry(plainDir, WithCheckpointPolicy(1, 1<<30))
			relab := durableRegistry(relabDir, WithCheckpointPolicy(1, 1<<30), WithRelabeling(true))
			for _, reg := range []*Registry{plain, relab} {
				if _, err := reg.Add("g", base, mode, 10); err != nil {
					t.Fatal(err)
				}
			}
			if info, _ := relab.Info("g"); !info.Relabeled {
				t.Fatal("relabeled registry does not report Relabeled")
			}
			if info, _ := plain.Info("g"); info.Relabeled {
				t.Fatal("plain registry reports Relabeled")
			}
			if servedRelab(t, relab, "g") == nil {
				t.Fatal("initial snapshot of the relabeling registry carries no relabeling")
			}
			if servedRelab(t, plain, "g") != nil {
				t.Fatal("plain registry snapshot carries a relabeling")
			}

			compareRegistries(t, plain, relab, mode, "initial")
			for i, sb := range script {
				for _, reg := range []*Registry{plain, relab} {
					if _, err := reg.ApplyEdges("g", sb.edges, sb.insert); err != nil {
						t.Fatal(err)
					}
				}
				if i%3 == 2 {
					compareRegistries(t, plain, relab, mode, fmt.Sprintf("batch %d", i))
				}
			}
			// The per-batch checkpoints force compaction, so by the end the
			// relabeled registry must be serving the permuted twin.
			rl := servedRelab(t, relab, "g")
			if rl == nil {
				t.Fatal("relabeling registry never served a relabeled snapshot")
			}
			permBefore := slices.Clone(rl.Perm)

			// Restart both registries: the relabeled one must come back
			// serving a permuted layout restored from the checkpoint's EBRL
			// section (the WAL tail is empty — every batch checkpointed — so
			// the persisted permutation is still a valid bijection).
			if err := plain.Close(); err != nil {
				t.Fatal(err)
			}
			if err := relab.Close(); err != nil {
				t.Fatal(err)
			}
			plain2 := durableRegistry(plainDir, WithCheckpointPolicy(1, 1<<30))
			relab2 := durableRegistry(relabDir, WithCheckpointPolicy(1, 1<<30), WithRelabeling(true))
			if _, err := plain2.Recover(); err != nil {
				t.Fatal(err)
			}
			if _, err := relab2.Recover(); err != nil {
				t.Fatal(err)
			}
			rl2 := servedRelab(t, relab2, "g")
			if rl2 == nil {
				t.Fatal("recovered relabeling registry serves no relabeling")
			}
			if !slices.Equal(rl2.Perm, permBefore) {
				t.Fatalf("recovered permutation differs from the checkpointed one\nbefore %v\nafter  %v",
					permBefore, rl2.Perm)
			}
			compareRegistries(t, plain2, relab2, mode, "recovered")

			// And the recovered answers still match a clean recompute.
			assertRecovered(t, relab2, "g", mode, stateAfter(base, script, nBatches))
			if err := plain2.Close(); err != nil {
				t.Fatal(err)
			}
			if err := relab2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRelabelRecoveryFallback pins the fallback: when WAL-tail replay grows
// the graph past the checkpointed permutation, recovery must discard the
// stale permutation and serve a freshly computed degree order — never a
// broken translation.
func TestRelabelRecoveryFallback(t *testing.T) {
	dir := t.TempDir()
	base := gen.BarabasiAlbert(60, 3, 9)
	// Checkpoint on the first batch only (policy 2: Add's creation snapshot
	// is not a checkpoint; the second batch stays in the WAL tail).
	reg := durableRegistry(dir, WithCheckpointPolicy(2, 1<<30), WithRelabeling(true))
	if _, err := reg.Add("g", base, ModeLocal, 0); err != nil {
		t.Fatal(err)
	}
	n := base.NumVertices()
	if _, err := reg.ApplyEdges("g", [][2]int32{{0, 1}}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.ApplyEdges("g", [][2]int32{{1, 0}}, true); err != nil {
		t.Fatal(err)
	}
	// This batch grows the vertex set past the checkpointed permutation and
	// stays in the WAL tail.
	if _, err := reg.ApplyEdges("g", [][2]int32{{n, n + 1}}, true); err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reborn := durableRegistry(dir, WithCheckpointPolicy(2, 1<<30), WithRelabeling(true))
	if _, err := reborn.Recover(); err != nil {
		t.Fatal(err)
	}
	rl := servedRelab(t, reborn, "g")
	if rl == nil {
		t.Fatal("recovered registry serves no relabeling")
	}
	if got := rl.G.NumVertices(); got != n+2 {
		t.Fatalf("relabeled twin has n=%d, want %d", got, n+2)
	}
	if len(rl.Perm) != int(n+2) {
		t.Fatalf("served permutation covers %d vertices, want %d", len(rl.Perm), n+2)
	}
	mirror := graph.DynFromGraph(base)
	_ = mirror.DeleteEdge(0, 1)
	_ = mirror.InsertEdge(1, 0)
	_ = mirror.InsertEdge(n, n+1)
	assertRecovered(t, reborn, "g", ModeLocal, mirror.Freeze(1))
	if err := reborn.Close(); err != nil {
		t.Fatal(err)
	}
}
